(* Benchmark harness: regenerates every figure of the paper's evaluation
   (Figures 6, 7, 8), the protocol-comparison table implied by §4's
   opening claim, and the CBT trade-off discussion of §5 — plus bechamel
   micro-benchmarks of the computational kernels (one per table/figure).

   Usage: main.exe [fig6] [fig7] [fig8] [compare] [cbt] [ablation] [hierarchy]
   [extra] [micro] [quick] [--domains N] [--json FILE]
   With no section argument, everything runs.  [quick] shrinks the seed
   set (3 instead of 10 graphs per size) for a fast smoke run.
   [--domains N] spreads the figure sweeps' (size × seed) cells over N
   OCaml domains via Runner.Pool; every table is byte-identical for any
   N (the timing-reporting sections — ablation's host-time columns and
   the bechamel micro-benchmarks — report wall clock by design and vary
   run to run regardless of N).  [--json FILE] additionally records
   per-figure cell timings, speedup vs the sequential estimate, and
   commit/seed metadata — the BENCH_dgmc.json perf trajectory. *)

let quick = ref false

let domains = ref 1

(* The figure seed sets are 1..k; their base names the whole family. *)
let master_seed = 1

let seeds () =
  if !quick then [ 1; 2; 3 ] else Experiments.Figures.default_seeds

(* ------------------------------------------------------------------ *)
(* BENCH_dgmc.json accumulation *)

let bench_sections : Metrics.Bench.section list ref = ref []

let record name (t : Experiments.Figures.timing) =
  bench_sections :=
    {
      Metrics.Bench.name;
      elapsed_s = t.Experiments.Figures.elapsed_s;
      seq_estimate_s = t.Experiments.Figures.seq_estimate_s;
      domains = t.Experiments.Figures.domains_used;
      cells =
        List.map
          (fun (c : Experiments.Figures.cell_time) ->
            {
              Metrics.Bench.series = c.Experiments.Figures.ct_series;
              size = c.Experiments.Figures.ct_size;
              seed = c.Experiments.Figures.ct_seed;
              wall_s = c.Experiments.Figures.ct_wall_s;
            })
          t.Experiments.Figures.cells;
    }
    :: !bench_sections

let read_file path =
  try Some (In_channel.with_open_text path In_channel.input_all)
  with Sys_error _ -> None

(* Enough git plumbing to stamp the record without shelling out: HEAD,
   one level of symbolic ref, packed-refs fallback. *)
let commit () =
  match Sys.getenv_opt "DGMC_COMMIT" with
  | Some c -> c
  | None -> (
    match read_file ".git/HEAD" with
    | None -> "unknown"
    | Some head -> (
      let head = String.trim head in
      match String.length head >= 5 && String.sub head 0 5 = "ref: " with
      | false -> head
      | true -> (
        let r = String.sub head 5 (String.length head - 5) in
        match read_file (".git/" ^ r) with
        | Some sha -> String.trim sha
        | None -> (
          match read_file ".git/packed-refs" with
          | None -> "unknown"
          | Some txt ->
            let matching =
              List.find_opt
                (fun line ->
                  match String.index_opt line ' ' with
                  | Some i -> String.sub line (i + 1) (String.length line - i - 1) = r
                  | None -> false)
                (String.split_on_char '\n' txt)
            in
            (match matching with
            | Some line -> String.sub line 0 (String.index line ' ')
            | None -> "unknown")))))

let heading title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

let ci (s : Metrics.Stats.summary) = Metrics.Table.cell_ci ~mean:s.mean ~ci:s.ci95

let print_bursty title note (r : Experiments.Figures.bursty_result) =
  heading title;
  print_endline note;
  let row (n, p) =
    let f = List.assoc n r.floodings.points in
    let c = List.assoc n r.convergence.points in
    [ string_of_int n; ci p; ci f; ci c ]
  in
  Metrics.Table.print
    ~headers:
      [
        "switches";
        "(a) proposals/event";
        "(b) floodings/event";
        "(c) convergence (rounds)";
      ]
    (List.map row r.proposals.points);
  Printf.printf "all runs converged to network-wide agreement: %b\n" r.all_converged

let fig6 () =
  let r = Experiments.Figures.fig6 ~domains:!domains ~seeds:(seeds ()) () in
  record "fig6" r.Experiments.Figures.b_timing;
  print_bursty "Figure 6 - Experiment 1: bursty events, computation dominates"
    "(Tc = 400 us, t_hop = 4 us; 10-member join burst within one flooding \
     diameter;\n mean +/- 95% CI over the random graphs of each size)"
    r

let fig7 () =
  let r = Experiments.Figures.fig7 ~domains:!domains ~seeds:(seeds ()) () in
  record "fig7" r.Experiments.Figures.b_timing;
  print_bursty "Figure 7 - Experiment 2: bursty events, communication dominates"
    "(Tc = 100 us, t_hop = 5 ms - WAN regime; same workload as Figure 6)"
    r

let fig8 () =
  heading "Figure 8 - Experiment 3: normal traffic periods";
  print_endline
    "(established 5-member MC; 40 Poisson membership events, mean gap 50 \
     rounds;\n events handled individually => both ratios stay minimal)";
  let r = Experiments.Figures.fig8 ~domains:!domains ~seeds:(seeds ()) () in
  record "fig8" r.Experiments.Figures.n_timing;
  let row (n, p) =
    let f = List.assoc n r.n_floodings.points in
    [ string_of_int n; ci p; ci f ]
  in
  Metrics.Table.print
    ~headers:[ "switches"; "(a) proposals/event"; "(b) floodings/event" ]
    (List.map row r.n_proposals.points);
  Printf.printf "all runs converged to network-wide agreement: %b\n"
    r.n_all_converged

let compare () =
  heading "Comparison - per-event signaling cost: D-GMC vs brute-force vs MOSPF";
  print_endline
    "(same bursty workload; brute-force recomputes at every switch per \
     event;\n MOSPF recomputes at every on-tree router per source after each \
     change)";
  let c =
    Experiments.Figures.compare_protocols ~domains:!domains ~seeds:(seeds ()) ()
  in
  record "compare" c.Experiments.Figures.c_timing;
  let row n =
    let get (s : Experiments.Figures.series) = ci (List.assoc n s.points) in
    [
      string_of_int n;
      get c.dgmc_computations;
      get c.brute_computations;
      get c.mospf_computations;
      get c.dgmc_floodings;
      get c.brute_floodings;
      get c.mospf_floodings;
    ]
  in
  Metrics.Table.print
    ~headers:
      [
        "switches";
        "dgmc comp/ev";
        "brute comp/ev";
        "mospf comp/ev";
        "dgmc flood/ev";
        "brute flood/ev";
        "mospf flood/ev";
      ]
    (List.map row c.c_sizes)

let cbt () =
  heading "CBT trade-off (paper 5) - shared-tree traffic concentration";
  print_endline
    "(60 switches, 12 receivers, 6 off-tree senders x 5 packets; shared \
     trees\n carry every packet on every tree link, per-source trees spread \
     the load;\n CBT cost/delay depend on a core placement the network \
     cannot really pick)";
  let rows = Experiments.Figures.cbt_comparison () in
  Metrics.Table.print
    ~align:[ Metrics.Table.Left ]
    ~headers:
      [
        "configuration";
        "tree cost";
        "max link load";
        "mean link load";
        "links used";
        "mean delay";
        "control msgs";
      ]
    (List.map
       (fun (r : Experiments.Figures.cbt_row) ->
         [
           r.strategy;
           Metrics.Table.cell_f r.tree_cost;
           string_of_int r.max_link_load;
           Metrics.Table.cell_f r.mean_link_load;
           string_of_int r.links_used;
           Metrics.Table.cell_f r.mean_delay;
           string_of_int r.control_messages;
         ])
       rows)

let ablation () =
  heading "Ablations - design choices called out in DESIGN.md";
  print_endline "\n[a] incremental updates (paper 3.5) vs from-scratch computation";
  print_endline
    "(8-member burst + 20 churn events; tree quality = final cost / fresh KMB)";
  Metrics.Table.print
    ~align:[ Metrics.Table.Left ]
    ~headers:[ "strategy"; "mean cost ratio"; "all converged" ]
    (List.map
       (fun (r : Experiments.Ablation.incremental_row) ->
         [
           r.label;
           Metrics.Table.cell_f r.mean_cost_ratio;
           string_of_bool r.all_converged;
         ])
       (Experiments.Ablation.incremental_vs_scratch ~seeds:(seeds ()) ()));
  print_endline "\n[b] Steiner heuristic choice (n = 60)";
  Metrics.Table.print
    ~align:[ Metrics.Table.Left ]
    ~headers:[ "heuristic"; "members"; "cost / lower bound"; "cpu time" ]
    (List.map
       (fun (r : Experiments.Ablation.heuristic_row) ->
         [
           r.algo;
           string_of_int r.members;
           Metrics.Table.cell_f r.mean_cost_vs_bound;
           Printf.sprintf "%.0f us" r.mean_time_us;
         ])
       (Experiments.Ablation.steiner_heuristics ~seeds:(seeds ()) ()));
  print_endline "\n[c] drift threshold for from-scratch recomputation";
  Metrics.Table.print
    ~headers:[ "threshold"; "final cost ratio"; "all converged" ]
    (List.map
       (fun (r : Experiments.Ablation.drift_row) ->
         [
           Metrics.Table.cell_f r.threshold;
           Metrics.Table.cell_f r.final_cost_ratio;
           string_of_bool r.d_converged;
         ])
       (Experiments.Ablation.drift_threshold ~seeds:(seeds ()) ()));
  print_endline "\n[d] flooding simulation mode (n = 80, 12-member burst)";
  Metrics.Table.print
    ~align:[ Metrics.Table.Left ]
    ~headers:[ "mode"; "same outcome"; "host time"; "engine events" ]
    (List.map
       (fun (r : Experiments.Ablation.flooding_row) ->
         [
           r.mode;
           string_of_bool r.same_topology_as_hop_by_hop;
           Printf.sprintf "%.1f ms" r.wall_time_ms;
           string_of_int r.sim_events;
         ])
       (Experiments.Ablation.flooding_modes ()))

let hierarchy () =
  heading "Hierarchical D-GMC - the paper's scalability extension (2)";
  print_endline "(10 areas x 20 switches = 200; 20 sparse membership events";
  print_endline " confined to 3 areas; 'reach' = switches receiving signaling per";
  print_endline " event: flat D-GMC floods all n switches, the hierarchy floods";
  print_endline " one area plus the logical level when area membership flips)";
  let rows =
    Experiments.Scale.hier_vs_flat ~domains:!domains
      ~seeds:(if !quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ])
      ()
  in
  Metrics.Table.print
    ~align:[ Metrics.Table.Left ]
    ~headers:
      [
        "protocol"; "switches"; "floodings/event"; "messages/event";
        "reach/event"; "converged";
      ]
    (List.map
       (fun (r : Experiments.Scale.row) ->
         [
           r.protocol;
           string_of_int r.n;
           Metrics.Table.cell_f r.floodings_per_event;
           Metrics.Table.cell_f r.messages_per_event;
           Metrics.Table.cell_f r.reach_per_event;
           string_of_bool r.converged;
         ])
       rows)

let extra () =
  heading "Extension experiments - axes the paper implies but does not sweep";
  print_endline "\n[a] burst-size sensitivity (n = 60, computation-dominated regime)";
  Metrics.Table.print
    ~headers:
      [ "burst"; "proposals/event"; "floodings/event"; "convergence (rounds)"; "ok" ]
    (List.map
       (fun (r : Experiments.Extra.burst_row) ->
         [
           string_of_int r.members;
           ci r.proposals_per_event;
           ci r.floodings_per_event;
           ci r.convergence_rounds;
           string_of_bool r.all_converged;
         ])
       (Experiments.Extra.burst_size ~seeds:(seeds ()) ()));
  print_endline
    "\n[b] per-MC independence (3.1): k concurrent 6-member bursts, n = 60";
  Metrics.Table.print
    ~headers:
      [ "concurrent MCs"; "computations/event/MC"; "floodings/event/MC"; "ok" ]
    (List.map
       (fun (r : Experiments.Extra.independence_row) ->
         [
           string_of_int r.mcs;
           ci r.per_mc_computations;
           ci r.per_mc_floodings;
           string_of_bool r.i_all_converged;
         ])
       (Experiments.Extra.mc_independence ~seeds:(seeds ()) ()))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the computational kernel behind each
   table/figure, measured in wall-clock time per run. *)

let micro () =
  heading "Micro-benchmarks (bechamel, monotonic clock)";
  let open Bechamel in
  let graph = Experiments.Harness.graph_for ~seed:1 ~n:100 in
  let members =
    let rng = Sim.Rng.create 7 in
    Sim.Rng.sample rng 10 (List.init 100 (fun i -> i))
  in
  let mc_members =
    Dgmc.Member.of_list (List.map (fun x -> (x, Dgmc.Member.Both)) members)
  in
  let stamp_a = Dgmc.Timestamp.of_array (Array.init 100 (fun i -> i mod 5)) in
  let stamp_b = Dgmc.Timestamp.of_array (Array.init 100 (fun i -> (i + 1) mod 5)) in
  let tests =
    [
      (* Figure 6/7 kernel: one bursty D-GMC run on a small network. *)
      Test.make ~name:"fig6/7 kernel: bursty run (n=20)"
        (Staged.stage (fun () ->
             ignore
               (Experiments.Harness.bursty_run ~seed:1 ~n:20
                  ~config:Dgmc.Config.atm_lan ~members:10 ())));
      (* Figure 8 kernel: sparse-event run. *)
      Test.make ~name:"fig8 kernel: poisson run (n=20, 10 events)"
        (Staged.stage (fun () ->
             ignore
               (Experiments.Harness.poisson_run ~seed:1 ~n:20
                  ~config:Dgmc.Config.atm_lan ~events:10 ~gap_rounds:50.0 ())));
      (* Comparison kernels: the per-switch work each protocol repeats. *)
      Test.make ~name:"steiner kmb (n=100, 10 members)"
        (Staged.stage (fun () -> ignore (Mctree.Steiner.kmb graph members)));
      Test.make ~name:"steiner sph (n=100, 10 members)"
        (Staged.stage (fun () -> ignore (Mctree.Steiner.sph graph members)));
      Test.make ~name:"spt (n=100, 10 receivers)"
        (Staged.stage (fun () ->
             ignore
               (Mctree.Spt.source_rooted graph ~root:(List.hd members)
                  ~receivers:(List.tl members))));
      Test.make ~name:"incremental join (n=100)"
        (Staged.stage
           (let tree = Mctree.Steiner.sph graph (List.tl members) in
            fun () ->
              ignore (Mctree.Incremental.join graph tree (List.hd members))));
      Test.make ~name:"compute proposal (protocol entry point)"
        (Staged.stage (fun () ->
             ignore
               (Dgmc.Compute.topology Dgmc.Config.atm_lan Dgmc.Mc_id.Symmetric
                  graph mc_members ~self:0 ~current:None)));
      (* Timestamp machinery: the per-LSA cost of the D-GMC bookkeeping. *)
      Test.make ~name:"timestamp merge (n=100)"
        (Staged.stage (fun () -> ignore (Dgmc.Timestamp.merge stamp_a stamp_b)));
      Test.make ~name:"timestamp geq (n=100)"
        (Staged.stage (fun () -> ignore (Dgmc.Timestamp.geq stamp_a stamp_b)));
      (* CBT kernel: one leave+join grafting cycle. *)
      Test.make ~name:"cbt join+leave (n=100)"
        (Staged.stage
           (let cbt = Baselines.Cbt.create ~graph ~core:(List.hd members) () in
            List.iter (Baselines.Cbt.join cbt) (List.tl members);
            fun () ->
              Baselines.Cbt.leave cbt (List.nth members 3);
              Baselines.Cbt.join cbt (List.nth members 3)));
    ]
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second (if !quick then 0.25 else 0.5))
      ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"micro" tests) in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let nanos =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> est
        | Some [] | None -> nan
      in
      rows := (name, nanos) :: !rows)
    results;
  let pretty ns =
    if Float.is_nan ns then "n/a"
    else if ns >= 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  Metrics.Table.print
    ~align:[ Metrics.Table.Left ]
    ~headers:[ "benchmark"; "time/run" ]
    (List.sort Stdlib.compare !rows |> List.map (fun (n, v) -> [ n; pretty v ]))

let usage () =
  prerr_endline
    "usage: main.exe [SECTION...] [quick] [--domains N] [--json FILE] [--csv \
     FILE]\n\
     sections: fig6 fig7 fig8 compare cbt ablation hierarchy extra micro";
  exit 2

let () =
  let json = ref None in
  let csv = ref None in
  let rec parse = function
    | [] -> []
    | "quick" :: rest ->
      quick := true;
      parse rest
    | "--domains" :: v :: rest -> (
      match int_of_string_opt v with
      | Some d when d >= 1 ->
        domains := d;
        parse rest
      | _ -> usage ())
    | [ "--domains" ] -> usage ()
    | "--json" :: v :: rest ->
      json := Some v;
      parse rest
    | [ "--json" ] -> usage ()
    | "--csv" :: v :: rest ->
      csv := Some v;
      parse rest
    | [ "--csv" ] -> usage ()
    | a :: rest when String.length a >= 2 && String.sub a 0 2 = "--" -> (
      match String.index_opt a '=' with
      | Some i ->
        parse
          (String.sub a 0 i
           :: String.sub a (i + 1) (String.length a - i - 1)
           :: rest)
      | None -> usage ())
    | a :: rest -> a :: parse rest
  in
  let sections = parse (List.tl (Array.to_list Sys.argv)) in
  let all = sections = [] in
  let want s = all || List.mem s sections in
  if want "fig6" then fig6 ();
  if want "fig7" then fig7 ();
  if want "fig8" then fig8 ();
  if want "compare" then compare ();
  if want "cbt" then cbt ();
  if want "ablation" then ablation ();
  if want "hierarchy" then hierarchy ();
  if want "extra" then extra ();
  if want "micro" then micro ();
  (if !json <> None || !csv <> None then begin
     (* The flight-recorder probe: one pinned, fully instrumented run of
        the reference kernel (bursty burst on atm_lan, master seed).  All
        of registry counters, windowed series, trace-derived SLIs ride on
        simulated time, so they are deterministic for the seed — the
        bench differ holds them exact.  The phase table is host
        wall/alloc and informational. *)
     let registry = Metrics.Registry.create () in
     (match !json with
     | None -> ()
     | Some _ ->
       (* pool.task_* histograms from a parallel batch; workers record
          protocol counters through per-domain child registries that the
          pool merges deterministically at join. *)
       let (_ : Experiments.Harness.run Runner.Pool.timed list), _ =
         Runner.Pool.map_registered ~domains:!domains ~metrics:registry
           (fun ?metrics seed ->
             Experiments.Harness.bursty_run ?metrics ~seed ~n:20
               ~config:Dgmc.Config.atm_lan ~members:10 ())
           [ 1; 2; 3; 4 ]
       in
       ());
     let trace = Sim.Trace.create () in
     let series = Metrics.Series.create ~bucket:1e-3 ~cap:512 () in
     let phase = Metrics.Phase.create () in
     Metrics.Phase.set_ambient phase;
     ignore
       (Experiments.Harness.bursty_run ~trace ~metrics:registry ~series
          ~seed:master_seed ~n:20 ~config:Dgmc.Config.atm_lan ~members:10 ());
     Metrics.Phase.set_ambient Metrics.Phase.disabled;
     (* SLI sessionization gap: two protocol rounds of the probe network
        — long enough to hold one reconfiguration together, short enough
        to separate the burst from any later event. *)
     let gap =
       2.0
       *. Dgmc.Config.round_length Dgmc.Config.atm_lan
            ~graph:(Experiments.Harness.graph_for ~seed:master_seed ~n:20)
     in
     let sli =
       Metrics.Sli.summarize ~gap
         (Report.Run_report.sli_of_trace (Sim.Trace.entries trace))
     in
     (match !csv with
     | None -> ()
     | Some path ->
       Metrics.Csv.write ~path
         ~headers:
           [
             "record"; "name"; "switch"; "start_s"; "end_s"; "count"; "sum";
             "min"; "max"; "last";
           ]
         (Metrics.Series.csv_rows series @ Metrics.Sli.csv_rows sli);
       Printf.printf "telemetry csv written to %s\n" path);
     match !json with
     | None -> ()
     | Some path ->
       let meta =
         {
           Metrics.Bench.commit = commit ();
           master_seed;
           domains = !domains;
           quick = !quick;
         }
       in
       Metrics.Bench.write ~path ~meta
         ~metrics:(Metrics.Registry.snapshot registry)
         ~series ~sli ~phase
         (List.rev !bench_sections);
       print_string "phase attribution (probe run):\n";
       Metrics.Table.print
         ~align:[ Metrics.Table.Left ]
         ~headers:[ "phase"; "calls"; "wall"; "self"; "minor words" ]
         (List.map
            (fun (r : Metrics.Phase.row) ->
              [
                r.r_name;
                string_of_int r.r_calls;
                (* dgmc-analyze: allow float-format — human-facing table;
                   the JSON record keeps full precision *)
                Printf.sprintf "%.3f ms" (1e3 *. r.r_wall_s);
                (* dgmc-analyze: allow float-format — human-facing table *)
                Printf.sprintf "%.3f ms" (1e3 *. r.r_self_wall_s);
                (* dgmc-analyze: allow float-format — human-facing table *)
                Printf.sprintf "%.0f" r.r_minor_words;
              ])
            (Metrics.Phase.snapshot phase));
       Printf.printf "bench record written to %s\n" path
   end);
  print_newline ()
