(** Deterministic fault injection for message delivery.

    A fault plan sits between a sender and the simulation calendar: every
    per-link transmission is submitted to {!transmit}, which decides —
    from the plan's own seeded {!Sim.Rng} stream — whether the message is
    dropped, duplicated, delayed (jitter), or delayed far enough to be
    overtaken (reordering), and whether a scheduled switch crash or
    partition window currently severs the (src, dst) pair.  The caller
    schedules one delivery per returned delay; an empty list means the
    message is lost.

    Everything is deterministic: a plan built from the same seed and
    subjected to the same sequence of {!transmit} calls (which a seeded
    simulation guarantees) makes identical decisions and records an
    identical fault trace.  That is what makes a fuzz failure replayable
    from its printed seed.

    Probabilistic faults (drop/duplicate/reorder/jitter) are memoryless
    and never end; scheduled faults (crashes, partitions) are windows in
    simulated time, and {!quiescent_after} reports when the last one
    closes — the moment after which convergence may be demanded. *)

(** {1 Fault specification} *)

type spec = {
  drop : float;  (** Per-transmission loss probability, in [[0, 1]]. *)
  duplicate : float;
      (** Probability that a transmission is delivered twice, in
          [[0, 1]].  The copy draws its own jitter/reorder delay. *)
  reorder : float;
      (** Probability that a copy is held back by an extra delay of up
          to [reorder_span × base_delay], letting later transmissions
          overtake it.  In [[0, 1]]. *)
  reorder_span : float;
      (** Maximum reordering delay, as a multiple of the base per-hop
          delay.  Non-negative; default [4.0]. *)
  jitter : float;
      (** Every copy gets a uniform extra delay in
          [[0, jitter × base_delay]].  Non-negative. *)
}

val spec_default : spec
(** The transparent spec: all probabilities and delays zero. *)

val spec_of_string : string -> (spec, string) result
(** Parse ["drop=0.3,dup=0.1,reorder=0.2,jitter=0.5,span=4"] — comma- or
    semicolon-separated [key=value] pairs over {!spec_default}.  Keys:
    [drop], [dup], [reorder], [jitter], [span].  Probabilities must lie
    in [[0, 1]], delays must be non-negative and finite. *)

val spec_to_string : spec -> string
(** Canonical rendering, re-parseable by {!spec_of_string} — used in
    fuzz reproduction lines. *)

val spec_is_transparent : spec -> bool
(** No probabilistic fault can fire under this spec. *)

(** {1 Plans} *)

type t

val create : ?spec:spec -> seed:int -> unit -> t
(** A fresh plan applying [spec] (default {!spec_default}) to every
    link, drawing from a private generator seeded with [seed]. *)

val seed : t -> int

val instrument :
  t -> ?trace:Sim.Trace.t -> ?metrics:Metrics.Registry.t -> unit -> unit
(** Attach observability sinks (only the arguments given are replaced).
    With a trace, every injected fault additionally emits a
    [Fault_injected] event; with a registry, the counters are mirrored
    into [faults.*] metrics.  {!Protocol.create} calls this on the plan
    it is handed. *)

val default_spec : t -> spec

val set_link_spec : t -> int -> int -> spec -> unit
(** Override the spec for one undirected link (both directions). *)

val crash_switch : t -> switch:int -> from_:float -> until:float -> unit
(** The switch is fail-silent during [[from_, until)): every transmission
    to or from it is blocked.  Protocol state survives (the model is a
    forwarding-plane outage, equivalent to all incident links being
    dead), so recovery needs no reboot.  [from_ <= until] required. *)

val partition : t -> side:int list -> from_:float -> until:float -> unit
(** During [[from_, until)), transmissions between a switch in [side]
    and a switch outside it are blocked in both directions. *)

val quiescent_after : t -> float
(** The close of the last scheduled crash/partition window ([0.] when
    none are scheduled).  Probabilistic faults are memoryless and have
    no quiescence time. *)

val crash_windows : t -> (int * (float * float)) list
(** Scheduled crashes as [(switch, (from, until))], in scheduling order —
    lets a traced run mark [Crash]/[Recover] events on the timeline. *)

val partition_windows : t -> (int list * (float * float)) list
(** Scheduled partitions as [(side, (from, until))], in scheduling
    order. *)

(** {1 Mediating transmissions} *)

val transmit :
  t -> src:int -> dst:int -> now:float -> base_delay:float -> float list
(** Decide the fate of one [src → dst] transmission submitted at [now]
    with fault-free delivery delay [base_delay] ([> 0]).  Returns the
    delay of every copy to deliver: [[]] when lost or blocked, one
    element normally, two when duplicated.  Delays are [>= base_delay].
    Counters and the fault trace are updated as a side effect. *)

(** {1 Accounting} *)

type counters = {
  transmissions : int;  (** {!transmit} calls. *)
  delivered : int;  (** Copies actually scheduled for delivery. *)
  dropped : int;
  duplicated : int;
  reordered : int;
  blocked_crash : int;
  blocked_partition : int;
}

val counters : t -> counters

type link_counters = {
  l_transmissions : int;
  l_dropped : int;
  l_duplicated : int;
  l_reordered : int;
  l_blocked : int;  (** Crash- plus partition-blocked transmissions. *)
}

val link_counters : t -> ((int * int) * link_counters) list
(** Exact per-directed-link fault accounting as [((src, dst), counts)],
    sorted by [(src, dst)] — every pair that ever transmitted appears.
    Unlike {!trace}, never capped. *)

type fault_kind =
  | Drop
  | Duplicate
  | Reorder of float  (** Extra delay added. *)
  | Crash_block of int  (** The crashed endpoint. *)
  | Partition_block

type event = { time : float; src : int; dst : int; fault : fault_kind }

val trace : t -> event list
(** Every injected fault in injection order (clean deliveries are not
    recorded).  Capped at 100_000 entries; {!counters} keeps exact
    totals regardless. *)

val pp_event : Format.formatter -> event -> unit

val pp_spec : Format.formatter -> spec -> unit
