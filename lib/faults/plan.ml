type spec = {
  drop : float;
  duplicate : float;
  reorder : float;
  reorder_span : float;
  jitter : float;
}

let spec_default =
  { drop = 0.0; duplicate = 0.0; reorder = 0.0; reorder_span = 4.0; jitter = 0.0 }

let check_spec s =
  let prob name v =
    if not (v >= 0.0 && v <= 1.0) then
      (* dgmc-analyze: allow float-format — human-readable error message *)
      Error (Printf.sprintf "%s must be a probability in [0, 1], got %g" name v)
    else Ok ()
  in
  let non_neg name v =
    if not (v >= 0.0 && v = v && v < infinity) then
      (* dgmc-analyze: allow float-format — human-readable error message *)
      Error (Printf.sprintf "%s must be non-negative and finite, got %g" name v)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = prob "drop" s.drop in
  let* () = prob "dup" s.duplicate in
  let* () = prob "reorder" s.reorder in
  let* () = non_neg "span" s.reorder_span in
  let* () = non_neg "jitter" s.jitter in
  Ok s

let spec_of_string text =
  let fields =
    String.split_on_char ',' text
    |> List.concat_map (String.split_on_char ';')
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let parse acc field =
    Result.bind acc (fun spec ->
        match String.index_opt field '=' with
        | None -> Error (Printf.sprintf "expected key=value, got %S" field)
        | Some i ->
          let key = String.sub field 0 i in
          let v = String.sub field (i + 1) (String.length field - i - 1) in
          (match float_of_string_opt v with
          | None -> Error (Printf.sprintf "%s: expected a number, got %S" key v)
          | Some v ->
            (match key with
            | "drop" -> Ok { spec with drop = v }
            | "dup" | "duplicate" -> Ok { spec with duplicate = v }
            | "reorder" -> Ok { spec with reorder = v }
            | "jitter" -> Ok { spec with jitter = v }
            | "span" -> Ok { spec with reorder_span = v }
            | _ ->
              Error
                (Printf.sprintf
                   "unknown fault key %S (allowed: drop, dup, reorder, \
                    jitter, span)"
                   key))))
  in
  Result.bind (List.fold_left parse (Ok spec_default) fields) check_spec

let spec_to_string s =
  (* dgmc-analyze: allow float-format — human-readable spec echo; specs are
     short hand-written probabilities, not computed schema values *)
  Printf.sprintf "drop=%g,dup=%g,reorder=%g,jitter=%g,span=%g" s.drop
    s.duplicate s.reorder s.jitter s.reorder_span

let spec_is_transparent s =
  s.drop = 0.0 && s.duplicate = 0.0 && s.reorder = 0.0 && s.jitter = 0.0

type counters = {
  transmissions : int;
  delivered : int;
  dropped : int;
  duplicated : int;
  reordered : int;
  blocked_crash : int;
  blocked_partition : int;
}

type link_counters = {
  l_transmissions : int;
  l_dropped : int;
  l_duplicated : int;
  l_reordered : int;
  l_blocked : int;
}

(* Mutable accumulator behind {!link_counters} — one per directed
   (src, dst) pair that ever transmitted. *)
type link_acc = {
  mutable a_transmissions : int;
  mutable a_dropped : int;
  mutable a_duplicated : int;
  mutable a_reordered : int;
  mutable a_blocked : int;
}

type fault_kind =
  | Drop
  | Duplicate
  | Reorder of float
  | Crash_block of int
  | Partition_block

type event = { time : float; src : int; dst : int; fault : fault_kind }

type window = { w_from : float; w_until : float }

let trace_cap = 100_000

type t = {
  rng : Sim.Rng.t;
  plan_seed : int;
  spec : spec;
  link_specs : (int * int, spec) Hashtbl.t;  (* key (min, max) *)
  link_accs : (int * int, link_acc) Hashtbl.t;  (* key (src, dst), directed *)
  mutable crashes : (int * window) list;
  mutable partitions : (bool array * window) list;
      (* membership is precomputed up to the largest id mentioned;
         switches beyond the array are outside the side *)
  mutable c_transmissions : int;
  mutable c_delivered : int;
  mutable c_dropped : int;
  mutable c_duplicated : int;
  mutable c_reordered : int;
  mutable c_blocked_crash : int;
  mutable c_blocked_partition : int;
  mutable events : event list;  (* newest first *)
  mutable n_events : int;
  mutable sim_trace : Sim.Trace.t;
  mutable metrics : Metrics.Registry.t option;
}

let create ?(spec = spec_default) ~seed () =
  (match check_spec spec with
  | Ok _ -> ()
  | Error m -> invalid_arg ("Faults.Plan.create: " ^ m));
  {
    rng = Sim.Rng.create seed;
    plan_seed = seed;
    spec;
    link_specs = Hashtbl.create 8;
    link_accs = Hashtbl.create 32;
    crashes = [];
    partitions = [];
    c_transmissions = 0;
    c_delivered = 0;
    c_dropped = 0;
    c_duplicated = 0;
    c_reordered = 0;
    c_blocked_crash = 0;
    c_blocked_partition = 0;
    events = [];
    n_events = 0;
    sim_trace = Sim.Trace.disabled;
    metrics = None;
  }

let instrument t ?trace ?metrics () =
  Option.iter (fun tr -> t.sim_trace <- tr) trace;
  Option.iter (fun m -> t.metrics <- Some m) metrics

let seed t = t.plan_seed

let default_spec t = t.spec

let set_link_spec t u v spec =
  (match check_spec spec with
  | Ok _ -> ()
  | Error m -> invalid_arg ("Faults.Plan.set_link_spec: " ^ m));
  Hashtbl.replace t.link_specs (min u v, max u v) spec

let window ~who ~from_ ~until =
  if not (from_ >= 0.0 && until >= from_ && until < infinity) then
    invalid_arg
      (* dgmc-analyze: allow float-format — human-readable error message *)
      (Printf.sprintf "Faults.Plan.%s: bad window [%g, %g)" who from_ until);
  { w_from = from_; w_until = until }

let crash_switch t ~switch ~from_ ~until =
  if switch < 0 then invalid_arg "Faults.Plan.crash_switch: negative switch";
  t.crashes <- (switch, window ~who:"crash_switch" ~from_ ~until) :: t.crashes

let partition t ~side ~from_ ~until =
  (match side with
  | [] -> invalid_arg "Faults.Plan.partition: empty side"
  | _ -> ());
  List.iter
    (fun s ->
      if s < 0 then invalid_arg "Faults.Plan.partition: negative switch")
    side;
  let hi = List.fold_left max 0 side in
  let membership = Array.make (hi + 1) false in
  List.iter (fun s -> membership.(s) <- true) side;
  t.partitions <-
    (membership, window ~who:"partition" ~from_ ~until) :: t.partitions

let quiescent_after t =
  let close acc (_, w) = Float.max acc w.w_until in
  List.fold_left close (List.fold_left close 0.0 t.crashes) t.partitions

let active w now = now >= w.w_from && now < w.w_until

let crashed t sw now =
  List.exists (fun (s, w) -> s = sw && active w now) t.crashes

let separated t a b now =
  let in_side membership sw =
    sw < Array.length membership && membership.(sw)
  in
  List.exists
    (fun (membership, w) ->
      active w now && in_side membership a <> in_side membership b)
    t.partitions

let fault_label = function
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  (* dgmc-analyze: allow float-format — human-readable trace label *)
  | Reorder extra -> Printf.sprintf "reorder(+%g)" extra
  | Crash_block who -> Printf.sprintf "blocked(crash %d)" who
  | Partition_block -> "blocked(partition)"

let metric_of_fault = function
  | Drop -> "faults.dropped"
  | Duplicate -> "faults.duplicated"
  | Reorder _ -> "faults.reordered"
  | Crash_block _ -> "faults.blocked_crash"
  | Partition_block -> "faults.blocked_partition"

let bump t name =
  match t.metrics with Some m -> Metrics.Registry.incr m name | None -> ()

let record t ev =
  if t.n_events < trace_cap then begin
    t.events <- ev :: t.events;
    t.n_events <- t.n_events + 1
  end;
  bump t (metric_of_fault ev.fault);
  if Sim.Trace.enabled t.sim_trace then
    ignore
      (Sim.Trace.emit t.sim_trace ~time:ev.time
         (Fault_injected
            { src = ev.src; dst = ev.dst; fault = fault_label ev.fault }))

let link_spec t src dst =
  match Hashtbl.find_opt t.link_specs (min src dst, max src dst) with
  | Some s -> s
  | None -> t.spec

let link_acc t src dst =
  match Hashtbl.find_opt t.link_accs (src, dst) with
  | Some a -> a
  | None ->
    let a =
      {
        a_transmissions = 0;
        a_dropped = 0;
        a_duplicated = 0;
        a_reordered = 0;
        a_blocked = 0;
      }
    in
    Hashtbl.add t.link_accs (src, dst) a;
    a

let transmit t ~src ~dst ~now ~base_delay =
  if not (base_delay > 0.0) then
    invalid_arg "Faults.Plan.transmit: base_delay must be positive";
  t.c_transmissions <- t.c_transmissions + 1;
  let la = link_acc t src dst in
  la.a_transmissions <- la.a_transmissions + 1;
  bump t "faults.transmissions";
  if crashed t src now || crashed t dst now then begin
    let who = if crashed t src now then src else dst in
    t.c_blocked_crash <- t.c_blocked_crash + 1;
    la.a_blocked <- la.a_blocked + 1;
    record t { time = now; src; dst; fault = Crash_block who };
    []
  end
  else if separated t src dst now then begin
    t.c_blocked_partition <- t.c_blocked_partition + 1;
    la.a_blocked <- la.a_blocked + 1;
    record t { time = now; src; dst; fault = Partition_block };
    []
  end
  else begin
    let spec = link_spec t src dst in
    (* One probability draw per potential fault, in a fixed order, so
       the stream stays aligned across specs that differ only in their
       probabilities. *)
    let draw () = Sim.Rng.float t.rng 1.0 in
    let dropped = draw () < spec.drop in
    let duplicated = draw () < spec.duplicate in
    if dropped then begin
      t.c_dropped <- t.c_dropped + 1;
      la.a_dropped <- la.a_dropped + 1;
      record t { time = now; src; dst; fault = Drop };
      []
    end
    else begin
      let copy () =
        let d =
          if spec.jitter > 0.0 then
            base_delay +. Sim.Rng.float t.rng (spec.jitter *. base_delay)
          else base_delay
        in
        if spec.reorder > 0.0 && draw () < spec.reorder then begin
          let extra =
            if spec.reorder_span > 0.0 then
              Sim.Rng.float t.rng (spec.reorder_span *. base_delay)
            else 0.0
          in
          t.c_reordered <- t.c_reordered + 1;
          la.a_reordered <- la.a_reordered + 1;
          record t { time = now; src; dst; fault = Reorder extra };
          d +. extra
        end
        else d
      in
      let copies =
        let first = copy () in
        if duplicated then begin
          t.c_duplicated <- t.c_duplicated + 1;
          la.a_duplicated <- la.a_duplicated + 1;
          record t { time = now; src; dst; fault = Duplicate };
          [ first; copy () ]
        end
        else [ first ]
      in
      t.c_delivered <- t.c_delivered + List.length copies;
      (match t.metrics with
      | Some m ->
        Metrics.Registry.incr m ~by:(List.length copies) "faults.delivered"
      | None -> ());
      copies
    end
  end

let counters t =
  {
    transmissions = t.c_transmissions;
    delivered = t.c_delivered;
    dropped = t.c_dropped;
    duplicated = t.c_duplicated;
    reordered = t.c_reordered;
    blocked_crash = t.c_blocked_crash;
    blocked_partition = t.c_blocked_partition;
  }

let link_counters t =
  Hashtbl.fold
    (fun key a acc ->
      ( key,
        {
          l_transmissions = a.a_transmissions;
          l_dropped = a.a_dropped;
          l_duplicated = a.a_duplicated;
          l_reordered = a.a_reordered;
          l_blocked = a.a_blocked;
        } )
      :: acc)
    t.link_accs []
  |> List.sort (fun ((a1, a2), _) ((b1, b2), _) ->
         match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c)

let trace t = List.rev t.events

let crash_windows t =
  List.rev_map (fun (s, w) -> (s, (w.w_from, w.w_until))) t.crashes

let partition_windows t =
  List.rev_map
    (fun (membership, w) ->
      let side = ref [] in
      for s = Array.length membership - 1 downto 0 do
        if membership.(s) then side := s :: !side
      done;
      (!side, (w.w_from, w.w_until)))
    t.partitions

let pp_spec ppf s = Format.pp_print_string ppf (spec_to_string s)

let pp_event ppf { time; src; dst; fault } =
  let kind =
    match fault with
    | Drop -> "drop"
    | Duplicate -> "duplicate"
    (* dgmc-analyze: allow float-format — human-readable event printer *)
    | Reorder extra -> Printf.sprintf "reorder(+%g)" extra
    | Crash_block who -> Printf.sprintf "blocked(crash %d)" who
    | Partition_block -> "blocked(partition)"
  in
  (* dgmc-analyze: allow float-format — human-readable event printer *)
  Format.fprintf ppf "@[<h>%.6g %d->%d %s@]" time src dst kind
