(** The per-switch hello agent: periodic keepalives out, a failure
    detector (and optional flap damping) per configured adjacency in.

    The agent never touches the network or the protocol directly — the
    embedder supplies [send] (put one hello on the wire towards a peer)
    and [declare] (this switch's belief about an incident link changed;
    originate the LSA).  Hellos keep flowing regardless of belief — a
    down link must keep being probed or recovery would never be seen —
    but stop towards a peer whose adjacency is damping-suppressed: a
    suppressed interface is held down in both directions, which is what
    keeps the remote end from believing the link is usable.

    All timers live on the simulation engine; emission and evaluation
    stop at the configured horizon so runs quiesce. *)

type t

val create :
  engine:Sim.Engine.t ->
  config:Config.t ->
  self:int ->
  peers:int list ->
  send:(peer:int -> unit) ->
  declare:(peer:int -> up:bool -> unit) ->
  ?on_suppress:(peer:int -> resumed:bool -> unit) ->
  unit ->
  t
(** [peers] are the switches sharing a configured (up or down) edge with
    [self]; every adjacency starts believed up with a fresh detector.
    [declare] is invoked only on belief {e changes}. *)

val start : t -> unit
(** Begin the hello schedule (first round immediately) and arm the
    per-adjacency down-verdict checks.  Call once, before running. *)

val on_hello : t -> from:int -> unit
(** A hello from [from] arrived on the wire.  Ignored while the
    adjacency is suppressed (the interface is administratively down). *)

val pause : t -> unit
(** The switch crashed: stop sending hellos and disarm every down-check
    (a dead switch observes nothing and declares nothing).  Beliefs are
    frozen as they were. *)

val resume : t -> unit
(** The switch recovered: restart sensing with {e fresh} detectors (the
    silence accumulated while down must not instantly fire them) and
    resume the hello schedule on its next tick. *)

val believed_up : t -> peer:int -> bool

val suppressed : t -> peer:int -> bool

val view : t -> (int * bool * bool) list
(** [(peer, believed_up, suppressed)] per adjacency, ascending peer. *)

val flaps : t -> int
(** Total down declarations made by this agent. *)

val suppressions : t -> int
(** Adjacencies this agent has placed into suppression (cumulative). *)
