(** Per-key origination pacing: coalesce and rate-limit LSA origination
    under churn.

    Each key (a link) may emit at most once per [min_interval] of
    simulated time.  A submission arriving inside a key's hold-down is
    parked; a later submission for the same key {e replaces} the parked
    payload (only the latest state of a link matters — intermediate
    flaps are shed and counted).  Parked payloads flush on a timer when
    the hold-down expires, so the final state of a link is always
    emitted, never dropped.

    The pending queue is bounded: when [cap] keys are already parked, a
    submission for a new key is emitted immediately (bypassing its
    hold-down) rather than parked — pacing degrades to pass-through
    under extreme churn instead of accumulating unbounded state.  Both
    shedding modes are counted ({!coalesced}, {!forced}).

    Timers run on the simulation engine only; emission order among keys
    is the engine's deterministic FIFO order. *)

type 'a t

val create :
  engine:Sim.Engine.t ->
  min_interval:float ->
  cap:int ->
  emit:(int * int -> 'a -> unit) ->
  unit ->
  'a t
(** [min_interval] in seconds (>= 0); [cap >= 1] bounds the number of
    simultaneously parked keys. *)

val submit : 'a t -> key:int * int -> 'a -> unit
(** Offer the latest payload for [key]; emitted now, parked, or
    coalesced into an already-parked slot per the policy above. *)

val pending : 'a t -> int
(** Keys currently parked. *)

val emitted : 'a t -> int

val coalesced : 'a t -> int
(** Parked payloads replaced by a newer submission (shed). *)

val forced : 'a t -> int
(** Submissions emitted immediately because the queue was full. *)
