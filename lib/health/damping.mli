(** BGP-style link-flap damping: exponential penalty decay with
    suppress/reuse hysteresis.

    Every down transition ("flap") adds [penalty] figure of merit; the
    accumulated figure decays exponentially with [half_life].  When it
    crosses [suppress] the link is administratively suppressed — the
    local interface is held down, hellos stop in both the sending and
    the accepting direction, and no further up/down LSAs are originated
    for the link — until decay brings the figure back under [reuse].

    All arithmetic is over caller-supplied simulated time; the module is
    deterministic and timer-free (the hello agent polls it at its own
    deterministic instants). *)

type config = {
  penalty : float;  (** Figure added per flap. *)
  suppress : float;  (** Suppress when the figure reaches this. *)
  reuse : float;  (** Lift suppression when decay reaches this. *)
  half_life : float;  (** Seconds for the figure to halve. *)
}

val validate : config -> (unit, string) result
(** Requires [0 < penalty], [0 < reuse < suppress] and [0 < half_life]. *)

type t

val create : config -> t

val flap : t -> now:float -> unit
(** Charge one down transition at time [now]. *)

val penalty : t -> now:float -> float
(** The decayed figure of merit at [now]. *)

val suppressed : t -> now:float -> bool
(** Whether the link is suppressed at [now] (decaying first, so a long
    calm period observed through this call lifts suppression). *)

val reuse_time : t -> now:float -> float option
(** Absolute time at which suppression will lift if no further flap
    occurs; [None] when not suppressed. *)

val flaps : t -> int
(** Total flaps charged. *)
