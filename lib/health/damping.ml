type config = {
  penalty : float;
  suppress : float;
  reuse : float;
  half_life : float;
}

let validate cfg =
  if cfg.penalty <= 0.0 then Error "damping penalty must be positive"
  else if cfg.reuse <= 0.0 then Error "damping reuse threshold must be positive"
  else if cfg.suppress <= cfg.reuse then
    Error "damping suppress threshold must exceed the reuse threshold"
  else if cfg.half_life <= 0.0 then Error "damping half-life must be positive"
  else Ok ()

type t = {
  cfg : config;
  mutable figure : float;  (* penalty figure as of [at] *)
  mutable at : float;
  mutable is_suppressed : bool;
  mutable n_flaps : int;
}

let create cfg =
  (match validate cfg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Damping.create: " ^ e));
  { cfg; figure = 0.0; at = neg_infinity; is_suppressed = false; n_flaps = 0 }

let decay t ~now =
  if now > t.at then begin
    if Float.is_finite t.at then
      t.figure <- t.figure *. (0.5 ** ((now -. t.at) /. t.cfg.half_life));
    t.at <- now
  end;
  if t.is_suppressed && t.figure <= t.cfg.reuse then t.is_suppressed <- false

let flap t ~now =
  decay t ~now;
  t.figure <- t.figure +. t.cfg.penalty;
  t.n_flaps <- t.n_flaps + 1;
  if t.figure >= t.cfg.suppress then t.is_suppressed <- true

let penalty t ~now =
  decay t ~now;
  t.figure

let suppressed t ~now =
  decay t ~now;
  t.is_suppressed

let reuse_time t ~now =
  decay t ~now;
  if not t.is_suppressed then None
  else
    (* figure · 2^(−dt / half_life) = reuse  ⇒  dt = half_life · log2 (figure / reuse) *)
    Some (t.at +. (t.cfg.half_life *. (Float.log2 (t.figure /. t.cfg.reuse))))

let flaps t = t.n_flaps
