(** Link-health layer configuration.

    The layer is strictly opt-in: a protocol instance without a health
    config behaves exactly as before (scripted link events are applied
    to switch images directly).  With one, scripted and fault-plan link
    changes become {e ground truth only} — switches must discover them
    through hello silence, and originate their own link LSAs. *)

type damping = {
  d_penalty : float;
  d_suppress : float;
  d_reuse : float;
  d_half_life : float;  (** Seconds. *)
}

type pacing = { p_min_interval : float; p_cap : int }

type t = {
  period : float;  (** Hello period, seconds. *)
  grace : float;  (** Transit allowance added to every tolerance, seconds. *)
  detector : Detector.kind;
  reup : int;  (** Consecutive hellos heard before re-declaring up. *)
  damping : damping option;
  pacing : pacing option;
  horizon : float;
      (** Absolute simulated time after which hello emission (and
          down-verdict evaluation) stops, so runs still quiesce.  Pick it
          past the last scripted event plus {!detect_bound} plus
          convergence slack. *)
}

val make :
  period:float ->
  ?grace:float ->
  ?detector:Detector.kind ->
  ?reup:int ->
  ?damping:damping ->
  ?pacing:pacing ->
  horizon:float ->
  unit ->
  t
(** Defaults: [grace = period / 2], [detector = K_missed 3],
    [reup = 2], no damping, no pacing. *)

val validate : t -> (unit, string) result

val detect_bound : t -> float
(** Worst-case detection latency the configuration promises, from the
    moment a link's ground truth changes to the down declaration: the
    detector's maximum silence tolerance plus one period of send phase.
    The CI gate holds the observed p99 under this. *)

type abstract = {
  a_detect_rounds : int;
      (** Hello rounds of silence after which the abstract (model
          checker) detector must have declared down. *)
  a_suppress_flaps : int option;
      (** Down declarations that trigger suppression, when damping on. *)
  a_reuse_rounds : int;
      (** Calm hello rounds after which abstract suppression lifts. *)
}

val abstract : t -> abstract
(** The round-granular abstraction of this configuration that the
    {!module:Check} harness model-checks (see DESIGN.md §3f). *)

val describe : t -> string
(** One-line human summary for run headers. *)
