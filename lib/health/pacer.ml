type 'a slot = {
  mutable payload : 'a option;  (* parked payload awaiting flush *)
  mutable last_emit : float;
  mutable timer : Sim.Engine.handle option;
}

type 'a t = {
  engine : Sim.Engine.t;
  min_interval : float;
  cap : int;
  emit : int * int -> 'a -> unit;
  slots : (int * int, 'a slot) Hashtbl.t;  (* lookup only; never iterated *)
  mutable n_pending : int;
  mutable n_emitted : int;
  mutable n_coalesced : int;
  mutable n_forced : int;
}

let create ~engine ~min_interval ~cap ~emit () =
  if min_interval < 0.0 then
    invalid_arg "Pacer.create: min_interval must be >= 0";
  if cap < 1 then invalid_arg "Pacer.create: cap must be >= 1";
  {
    engine;
    min_interval;
    cap;
    emit;
    slots = Hashtbl.create 16;
    n_pending = 0;
    n_emitted = 0;
    n_coalesced = 0;
    n_forced = 0;
  }

let slot t key =
  match Hashtbl.find_opt t.slots key with
  | Some s -> s
  | None ->
    let s = { payload = None; last_emit = neg_infinity; timer = None } in
    Hashtbl.replace t.slots key s;
    s

let do_emit t key s payload =
  s.last_emit <- Sim.Engine.now t.engine;
  t.n_emitted <- t.n_emitted + 1;
  t.emit key payload

let flush t key s () =
  s.timer <- None;
  match s.payload with
  | None -> ()
  | Some payload ->
    s.payload <- None;
    t.n_pending <- t.n_pending - 1;
    do_emit t key s payload

let submit t ~key payload =
  let s = slot t key in
  match s.payload with
  | Some _ ->
    (* Already parked: the newer state supersedes the parked one. *)
    s.payload <- Some payload;
    t.n_coalesced <- t.n_coalesced + 1
  | None ->
    let now = Sim.Engine.now t.engine in
    let due = s.last_emit +. t.min_interval in
    if now >= due then do_emit t key s payload
    else if t.n_pending >= t.cap then begin
      (* Queue full: degrade to pass-through rather than grow state. *)
      t.n_forced <- t.n_forced + 1;
      do_emit t key s payload
    end
    else begin
      s.payload <- Some payload;
      t.n_pending <- t.n_pending + 1;
      s.timer <- Some (Sim.Engine.schedule_at t.engine ~time:due (flush t key s))
    end

let pending t = t.n_pending

let emitted t = t.n_emitted

let coalesced t = t.n_coalesced

let forced t = t.n_forced
