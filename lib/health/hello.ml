type nb = {
  peer : int;
  det : Detector.t;
  damp : Damping.t option;
  mutable up : bool;  (* this agent's belief about the adjacency *)
  mutable streak : int;  (* consecutive hellos heard while believed down *)
  mutable check : Sim.Engine.handle option;
  mutable suppress_flag : bool;
}

type t = {
  engine : Sim.Engine.t;
  cfg : Config.t;
  self : int;
  nbs : nb array;  (* ascending peer order *)
  send : peer:int -> unit;
  declare : peer:int -> up:bool -> unit;
  on_suppress : peer:int -> resumed:bool -> unit;
  mutable n_flaps : int;
  mutable n_suppressions : int;
  mutable paused : bool;
}

let create ~engine ~config ~self ~peers ~send ~declare
    ?(on_suppress = fun ~peer:_ ~resumed:_ -> ()) () =
  (match Config.validate config with
  | Ok () -> ()
  | Error e -> invalid_arg ("Hello.create: " ^ e));
  let start = Sim.Engine.now engine in
  let nbs =
    List.sort_uniq Int.compare peers
    |> List.map (fun peer ->
           {
             peer;
             det =
               Detector.create config.Config.detector
                 ~period:config.Config.period ~grace:config.Config.grace ~start;
             damp =
               Option.map
                 (fun (d : Config.damping) ->
                   Damping.create
                     {
                       Damping.penalty = d.Config.d_penalty;
                       suppress = d.Config.d_suppress;
                       reuse = d.Config.d_reuse;
                       half_life = d.Config.d_half_life;
                     })
                 config.Config.damping;
             up = true;
             streak = 0;
             check = None;
             suppress_flag = false;
           })
    |> Array.of_list
  in
  { engine; cfg = config; self; nbs; send; declare; on_suppress;
    n_flaps = 0; n_suppressions = 0; paused = false }

let find t peer =
  let rec go i =
    if i >= Array.length t.nbs then None
    else if t.nbs.(i).peer = peer then Some t.nbs.(i)
    else go (i + 1)
  in
  go 0

(* Down-verdict checks are armed at the detector's deadline, but only
   while hellos are still flowing at that instant (deadline within the
   horizon): silence after the horizon is the schedule ending, not the
   link failing. *)
let rec arm_check t nb =
  (match nb.check with Some h -> Sim.Engine.cancel h | None -> ());
  nb.check <- None;
  let deadline = Detector.deadline nb.det in
  if deadline <= t.cfg.Config.horizon then
    nb.check <- Some (Sim.Engine.schedule_at t.engine ~time:deadline (check t nb))

and check t nb () =
  nb.check <- None;
  if (not t.paused) && not nb.suppress_flag then begin
    let now = Sim.Engine.now t.engine in
    if Detector.down nb.det ~now then begin
      if nb.up then begin
        nb.up <- false;
        nb.streak <- 0;
        t.n_flaps <- t.n_flaps + 1;
        t.declare ~peer:nb.peer ~up:false;
        match nb.damp with
        | None -> ()
        | Some damp ->
          Damping.flap damp ~now;
          if Damping.suppressed damp ~now then begin
            nb.suppress_flag <- true;
            t.n_suppressions <- t.n_suppressions + 1;
            t.on_suppress ~peer:nb.peer ~resumed:false;
            arm_unsuppress t nb damp
          end
      end
      (* Already believed down: stay silent; the next arrival re-arms. *)
    end
    else
      (* An arrival moved the deadline since this check was scheduled. *)
      arm_check t nb
  end

and arm_unsuppress t nb damp =
  let now = Sim.Engine.now t.engine in
  match Damping.reuse_time damp ~now with
  | None -> unsuppress t nb
  | Some at ->
    (* One extra period of margin absorbs float rounding in the decay
       solve; the handler re-checks and re-arms, so progress is sure. *)
    ignore
      (Sim.Engine.schedule_at t.engine
         ~time:(at +. t.cfg.Config.period)
         (fun () ->
           let now = Sim.Engine.now t.engine in
           if nb.suppress_flag then
             if Damping.suppressed damp ~now then arm_unsuppress t nb damp
             else unsuppress t nb))

and unsuppress t nb =
  let now = Sim.Engine.now t.engine in
  nb.suppress_flag <- false;
  nb.streak <- 0;
  Detector.reset nb.det ~now;
  t.on_suppress ~peer:nb.peer ~resumed:true;
  arm_check t nb

let rec tick t () =
  let now = Sim.Engine.now t.engine in
  if not t.paused then
    Array.iter
      (fun nb -> if not nb.suppress_flag then t.send ~peer:nb.peer)
      t.nbs;
  let next = now +. t.cfg.Config.period in
  if next <= t.cfg.Config.horizon then
    ignore (Sim.Engine.schedule_at t.engine ~time:next (tick t))

let start t =
  Array.iter (arm_check t) t.nbs;
  tick t ()

let pause t =
  t.paused <- true;
  Array.iter
    (fun nb ->
      (match nb.check with Some h -> Sim.Engine.cancel h | None -> ());
      nb.check <- None)
    t.nbs

let resume t =
  let now = Sim.Engine.now t.engine in
  t.paused <- false;
  Array.iter
    (fun nb ->
      Detector.reset nb.det ~now;
      nb.streak <- 0;
      if not nb.suppress_flag then arm_check t nb)
    t.nbs

let on_hello t ~from =
  match find t from with
  | None -> ()
  | Some nb ->
    if (not t.paused) && not nb.suppress_flag then begin
      let now = Sim.Engine.now t.engine in
      Detector.note_arrival nb.det ~now;
      if not nb.up then begin
        nb.streak <- nb.streak + 1;
        if nb.streak >= t.cfg.Config.reup then begin
          nb.up <- true;
          nb.streak <- 0;
          t.declare ~peer:nb.peer ~up:true
        end
      end;
      arm_check t nb
    end

let believed_up t ~peer =
  match find t peer with Some nb -> nb.up | None -> false

let suppressed t ~peer =
  match find t peer with Some nb -> nb.suppress_flag | None -> false

let view t =
  Array.to_list (Array.map (fun nb -> (nb.peer, nb.up, nb.suppress_flag)) t.nbs)

let flaps t = t.n_flaps

let suppressions t = t.n_suppressions
