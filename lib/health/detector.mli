(** Per-adjacency failure detectors fed by hello arrivals.

    A detector watches one directed adjacency (this switch listening for
    a neighbor's hellos) and answers a single question: how long may the
    line stay silent before the neighbor is declared unreachable?

    Two variants:

    - {!K_missed}[ k]: the classic OLSR-style rule — silence longer than
      [k] hello periods (plus a grace allowance for transit time) means
      down.  The tolerance is constant.
    - {!Phi}: an adaptive, phi-accrual-style rule — the tolerance is
      derived from the observed inter-arrival distribution (mean plus
      [threshold] mean absolute deviations over a sliding [window] of
      samples), so a jittery path earns a longer timeout than a quiet
      one.  The tolerance is clamped to [[2, phi_cap_mult]] hello
      periods, so detection latency stays bounded no matter what the
      samples say.

    All state advances on simulated time supplied by the caller; the
    module never reads a clock, so detection is deterministic. *)

type kind =
  | K_missed of int  (** Down after [k] consecutive missed hellos. *)
  | Phi of { window : int; threshold : float }
      (** Adaptive tolerance from inter-arrival jitter: a sliding window
          of [window] samples, tolerance [2·mean + threshold·mad],
          clamped (see {!phi_timeout}). *)

val phi_cap_mult : float
(** Upper clamp for the adaptive tolerance, in hello periods (8.0). *)

val phi_timeout :
  period:float -> grace:float -> threshold:float -> float list -> float
(** [phi_timeout ~period ~grace ~threshold intervals] is the silence
    tolerance the {!Phi} detector derives from the observed inter-arrival
    [intervals]: [clamp (2·mean + threshold·mad) [2·period,
    phi_cap_mult·period] + grace], where [mad] is the mean absolute
    deviation and an empty window falls back to [mean = period].
    Exposed pure so the monotonicity property (more jitter never shrinks
    the tolerance) is directly testable. *)

type t

val create : kind -> period:float -> grace:float -> start:float -> t
(** A fresh detector that treats [start] as the last heard-from time. *)

val kind : t -> kind

val note_arrival : t -> now:float -> unit
(** Record a hello arrival at simulated time [now]. *)

val timeout : t -> float
(** Current silence tolerance in seconds (≥ period + grace always). *)

val deadline : t -> float
(** Absolute time at which continued silence becomes a down verdict:
    last arrival + {!timeout}.  Recomputing it after an arrival yields a
    later deadline; the caller re-arms its check timer from this. *)

val down : t -> now:float -> bool
(** [now >= deadline t]: the adjacency has been silent too long. *)

val reset : t -> now:float -> unit
(** Forget the past: treat [now] as the last arrival and drop the jitter
    window.  Used when an interface leaves administrative suppression —
    stale silence must not instantly re-fire the detector. *)

val max_timeout : kind -> period:float -> grace:float -> float
(** Worst-case silence tolerance the [kind] can ever report — the static
    ingredient of the configured detection bound. *)

val abstract_rounds : kind -> int
(** Hello rounds of total silence after which the abstract model-checker
    detector must have declared down (zero-jitter schedule): [k + 1] for
    {!K_missed}[ k], [3] for {!Phi} (clean-window tolerance is two
    periods). *)
