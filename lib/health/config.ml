type damping = {
  d_penalty : float;
  d_suppress : float;
  d_reuse : float;
  d_half_life : float;
}

type pacing = { p_min_interval : float; p_cap : int }

type t = {
  period : float;
  grace : float;
  detector : Detector.kind;
  reup : int;
  damping : damping option;
  pacing : pacing option;
  horizon : float;
}

let make ~period ?grace ?(detector = Detector.K_missed 3) ?(reup = 2) ?damping
    ?pacing ~horizon () =
  let grace = match grace with Some g -> g | None -> period /. 2.0 in
  { period; grace; detector; reup; damping; pacing; horizon }

let validate t =
  if not (Float.is_finite t.period && t.period > 0.0) then
    Error "health hello period must be positive and finite"
  else if not (Float.is_finite t.grace && t.grace >= 0.0) then
    Error "health grace must be >= 0 and finite"
  else if t.reup < 1 then Error "health reup must be >= 1"
  else if not (Float.is_finite t.horizon && t.horizon > 0.0) then
    Error "health horizon must be positive and finite"
  else
    match
      ( t.detector,
        Option.map
          (fun d ->
            Damping.validate
              {
                Damping.penalty = d.d_penalty;
                suppress = d.d_suppress;
                reuse = d.d_reuse;
                half_life = d.d_half_life;
              })
          t.damping )
    with
    | Detector.K_missed k, _ when k < 1 ->
      Error "health detector k must be >= 1"
    | Detector.Phi { window; threshold }, _
      when window < 1 || not (Float.is_finite threshold && threshold >= 0.0) ->
      Error "health phi detector needs window >= 1 and threshold >= 0"
    | _, Some (Error e) -> Error ("health " ^ e)
    | _, (Some (Ok ()) | None) -> (
      match t.pacing with
      | Some p when not (Float.is_finite p.p_min_interval && p.p_min_interval >= 0.0) ->
        Error "health pacing interval must be >= 0 and finite"
      | Some p when p.p_cap < 1 -> Error "health pacing cap must be >= 1"
      | Some _ | None -> Ok ())

let detect_bound t =
  Detector.max_timeout t.detector ~period:t.period ~grace:t.grace +. t.period

type abstract = {
  a_detect_rounds : int;
  a_suppress_flaps : int option;
  a_reuse_rounds : int;
}

let abstract t =
  {
    a_detect_rounds = Detector.abstract_rounds t.detector;
    a_suppress_flaps =
      Option.map
        (fun d -> max 1 (int_of_float (ceil (d.d_suppress /. d.d_penalty))))
        t.damping;
    a_reuse_rounds =
      (match t.damping with
      | None -> 1
      | Some d ->
        max 1
          (int_of_float
             (ceil
                (d.d_half_life
                 *. Float.log2 (d.d_suppress /. d.d_reuse)
                 /. t.period))));
  }

let describe t =
  let det =
    match t.detector with
    | Detector.K_missed k -> Printf.sprintf "k-missed=%d" k
    | Detector.Phi { window; threshold } ->
      (* dgmc-analyze: allow float-format — human-readable config summary *)
      Printf.sprintf "phi(window=%d, threshold=%g)" window threshold
  in
  (* dgmc-analyze: allow float-format — human-readable config summary *)
  Printf.sprintf
    "hello period %gs grace %gs detector %s reup %d%s%s horizon %gs" t.period
    t.grace det t.reup
    (match t.damping with
    | None -> ""
    | Some d ->
      (* dgmc-analyze: allow float-format — human-readable config summary *)
      Printf.sprintf " damping(penalty %g suppress %g reuse %g half-life %gs)"
        d.d_penalty d.d_suppress d.d_reuse d.d_half_life)
    (match t.pacing with
    | None -> ""
    | Some p ->
      (* dgmc-analyze: allow float-format — human-readable config summary *)
      Printf.sprintf " pacing(%gs cap %d)" p.p_min_interval p.p_cap)
    t.horizon
