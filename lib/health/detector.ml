type kind =
  | K_missed of int
  | Phi of { window : int; threshold : float }

let phi_cap_mult = 8.0

let clamp lo hi x = Float.min hi (Float.max lo x)

let phi_timeout ~period ~grace ~threshold intervals =
  let mean =
    match intervals with
    | [] -> period
    | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  let mad =
    match intervals with
    | [] -> 0.0
    | xs ->
      List.fold_left (fun acc x -> acc +. Float.abs (x -. mean)) 0.0 xs
      /. float_of_int (List.length xs)
  in
  clamp (2.0 *. period) (phi_cap_mult *. period)
    ((2.0 *. mean) +. (threshold *. mad))
  +. grace

type t = {
  kind : kind;
  period : float;
  grace : float;
  mutable last : float;
  mutable intervals : float list;  (* newest first, length <= window *)
  mutable n_intervals : int;
}

let create kind ~period ~grace ~start =
  (match kind with
  | K_missed k when k < 1 -> invalid_arg "Detector.create: k must be >= 1"
  | Phi { window; threshold } when window < 1 || threshold < 0.0 ->
    invalid_arg "Detector.create: phi window >= 1 and threshold >= 0 required"
  | K_missed _ | Phi _ -> ());
  if period <= 0.0 then invalid_arg "Detector.create: period must be positive";
  if grace < 0.0 then invalid_arg "Detector.create: grace must be >= 0";
  { kind; period; grace; last = start; intervals = []; n_intervals = 0 }

let kind t = t.kind

let take n xs =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n xs

let note_arrival t ~now =
  (match t.kind with
  | K_missed _ -> ()
  | Phi { window; _ } ->
    let sample = Float.max 0.0 (now -. t.last) in
    t.intervals <- sample :: take (window - 1) t.intervals;
    t.n_intervals <- min window (t.n_intervals + 1));
  t.last <- Float.max t.last now

let timeout t =
  match t.kind with
  | K_missed k -> (float_of_int k *. t.period) +. t.grace
  | Phi { threshold; _ } ->
    phi_timeout ~period:t.period ~grace:t.grace ~threshold t.intervals

let deadline t = t.last +. timeout t

let down t ~now = now >= deadline t

let reset t ~now =
  t.last <- now;
  t.intervals <- [];
  t.n_intervals <- 0

let max_timeout kind ~period ~grace =
  match kind with
  | K_missed k -> (float_of_int k *. period) +. grace
  | Phi _ -> (phi_cap_mult *. period) +. grace

let abstract_rounds = function K_missed k -> k + 1 | Phi _ -> 3
