type burst_row = {
  members : int;
  proposals_per_event : Metrics.Stats.summary;
  floodings_per_event : Metrics.Stats.summary;
  convergence_rounds : Metrics.Stats.summary;
  all_converged : bool;
}

let burst_size ?(seeds = Figures.default_seeds) ?(n = 60)
    ?(sizes = [ 2; 5; 10; 20; 30 ]) () =
  let config = Dgmc.Config.atm_lan in
  List.map
    (fun members ->
      let runs =
        List.map (fun seed -> Harness.bursty_run ~seed ~n ~config ~members ()) seeds
      in
      {
        members;
        proposals_per_event =
          Metrics.Stats.summarize
            (List.map (fun r -> r.Harness.computations_per_event) runs);
        floodings_per_event =
          Metrics.Stats.summarize
            (List.map (fun r -> r.Harness.floodings_per_event) runs);
        convergence_rounds =
          Metrics.Stats.summarize
            (List.map
               (fun r -> Option.value ~default:0.0 r.Harness.convergence_rounds)
               runs);
        all_converged = List.for_all (fun r -> r.Harness.converged) runs;
      })
    sizes

type independence_row = {
  mcs : int;
  per_mc_computations : Metrics.Stats.summary;
  per_mc_floodings : Metrics.Stats.summary;
  i_all_converged : bool;
}

let mc_independence ?(seeds = Figures.default_seeds) ?(n = 60)
    ?(counts = [ 1; 2; 4; 8 ]) ?(members = 6) () =
  let config = Dgmc.Config.atm_lan in
  List.map
    (fun k ->
      let runs =
        List.map
          (fun seed ->
            let graph = Harness.graph_for ~seed ~n in
            let net = Dgmc.Protocol.create ~graph ~config () in
            let rng = Sim.Rng.create (seed lxor 0x7a3d) in
            let window =
              Float.max config.Dgmc.Config.tc
                (Lsr.Flooding.flood_diameter ~graph ~t_hop:config.Dgmc.Config.t_hop)
            in
            let mcs =
              List.init k (fun i -> Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric (i + 1))
            in
            (* k independent bursts in the same window: the worst case
               for cross-MC interference, if there were any. *)
            List.iter
              (fun mc ->
                Workload.Events.apply_dgmc net
                  (Workload.Bursty.joins rng ~n ~mc ~members ~window ()))
              mcs;
            Dgmc.Protocol.run net;
            let totals = Dgmc.Protocol.totals net in
            let converged = List.for_all (Dgmc.Protocol.converged net) mcs in
            let per_mc_events = float_of_int (totals.events / k) in
            ( float_of_int totals.computations /. float_of_int k /. per_mc_events,
              float_of_int totals.mc_floodings /. float_of_int k /. per_mc_events,
              converged ))
          seeds
      in
      {
        mcs = k;
        per_mc_computations =
          Metrics.Stats.summarize (List.map (fun (c, _, _) -> c) runs);
        per_mc_floodings =
          Metrics.Stats.summarize (List.map (fun (_, f, _) -> f) runs);
        i_all_converged = List.for_all (fun (_, _, ok) -> ok) runs;
      })
    counts
