type incremental_row = {
  label : string;
  mean_cost_ratio : float;
  all_converged : bool;
}

let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1

(* Burst-then-churn session; returns (final cost / fresh KMB cost,
   converged). *)
let churn_session ~seed ~n ~churn_events config =
  let graph = Harness.graph_for ~seed ~n in
  let net = Dgmc.Protocol.create ~graph ~config () in
  let rng = Sim.Rng.create (seed * 131) in
  let round = Dgmc.Config.round_length config ~graph in
  Workload.Events.apply_dgmc net
    (Workload.Bursty.joins rng ~n ~mc ~members:8 ~window:round ());
  Dgmc.Protocol.run net;
  let initial =
    Dgmc.Member.ids
      (Option.value ~default:Dgmc.Member.empty
         (Dgmc.Switch.members (Dgmc.Protocol.switch net 0) mc))
  in
  let start = Sim.Engine.now (Dgmc.Protocol.engine net) +. round in
  Workload.Events.apply_dgmc net
    (Workload.Poisson.membership rng ~n ~mc ~events:churn_events
       ~mean_gap:(5.0 *. round) ~initial ~start ()
    |> List.filter (fun (e : Workload.Events.t) -> e.time > start));
  Dgmc.Protocol.run net;
  let converged = Dgmc.Protocol.converged net mc in
  match Dgmc.Protocol.agreed_topology net mc with
  | Some tree when not (Mctree.Tree.Int_set.is_empty (Mctree.Tree.terminals tree))
    ->
    let members = Mctree.Tree.Int_set.elements (Mctree.Tree.terminals tree) in
    let fresh = Mctree.Steiner.kmb graph members in
    let fresh_cost = Mctree.Tree.cost graph fresh in
    let ratio =
      if fresh_cost <= 0.0 then 1.0 else Mctree.Tree.cost graph tree /. fresh_cost
    in
    (ratio, converged)
  | Some _ | None -> (1.0, converged)

let incremental_vs_scratch ?(seeds = Figures.default_seeds) ?(n = 40)
    ?(churn_events = 20) () =
  let run label config =
    let results =
      List.map (fun seed -> churn_session ~seed ~n ~churn_events config) seeds
    in
    {
      label;
      mean_cost_ratio = Metrics.Stats.mean (List.map fst results);
      all_converged = List.for_all snd results;
    }
  in
  [
    run "incremental (drift 1.5)" Dgmc.Config.atm_lan;
    run "from-scratch every event"
      { Dgmc.Config.atm_lan with incremental = false };
  ]

type heuristic_row = {
  algo : string;
  members : int;
  mean_cost_vs_bound : float;
  mean_time_us : float;
}

let steiner_heuristics ?(seeds = Figures.default_seeds) ?(n = 60)
    ?(member_counts = [ 5; 10; 20 ]) () =
  List.concat_map
    (fun count ->
      List.map
        (fun (name, algo) ->
          let ratios = ref [] and times = ref [] in
          List.iter
            (fun seed ->
              let graph = Harness.graph_for ~seed ~n in
              let rng = Sim.Rng.create (seed * 733) in
              let members = Sim.Rng.sample rng count (List.init n (fun i -> i)) in
              let bound = Mctree.Steiner.lower_bound graph members in
              (* Repeat enough to out-resolve Sys.time's clock ticks. *)
              let reps = 20 in
              (* dgmc-analyze: allow nondet-source — CPU-time measurement of
                 the algorithm itself, reported as a timing figure *)
              let t0 = Sys.time () in
              let tree = algo graph members in
              for _ = 2 to reps do
                ignore (algo graph members)
              done;
              (* dgmc-analyze: allow nondet-source — CPU-time measurement *)
              let elapsed = (Sys.time () -. t0) /. float_of_int reps in
              times := elapsed *. 1e6 :: !times;
              if bound > 0.0 then
                ratios := (Mctree.Tree.cost graph tree /. bound) :: !ratios)
            seeds;
          {
            algo = name;
            members = count;
            mean_cost_vs_bound =
              (if !ratios = [] then 1.0 else Metrics.Stats.mean !ratios);
            mean_time_us = Metrics.Stats.mean !times;
          })
        [ ("kmb", Mctree.Steiner.kmb); ("sph", Mctree.Steiner.sph) ])
    member_counts

type drift_row = {
  threshold : float;
  final_cost_ratio : float;
  d_converged : bool;
}

let drift_threshold ?(seeds = Figures.default_seeds) ?(n = 40)
    ?(thresholds = [ 1.05; 1.2; 1.5; 2.0; 10.0 ]) () =
  List.map
    (fun threshold ->
      let config = { Dgmc.Config.atm_lan with drift_threshold = threshold } in
      let results =
        List.map (fun seed -> churn_session ~seed ~n ~churn_events:25 config) seeds
      in
      {
        threshold;
        final_cost_ratio = Metrics.Stats.mean (List.map fst results);
        d_converged = List.for_all snd results;
      })
    thresholds

type flooding_row = {
  mode : string;
  same_topology_as_hop_by_hop : bool;
  wall_time_ms : float;
  sim_events : int;
}

let flooding_modes ?(seed = 1) ?(n = 80) () =
  let run mode =
    let config = { Dgmc.Config.atm_lan with flood_mode = mode } in
    let graph = Harness.graph_for ~seed ~n in
    let net = Dgmc.Protocol.create ~graph ~config () in
    let rng = Sim.Rng.create (seed * 17) in
    let round = Dgmc.Config.round_length config ~graph in
    Workload.Events.apply_dgmc net
      (Workload.Bursty.joins rng ~n ~mc ~members:12 ~window:round ());
    (* dgmc-analyze: allow nondet-source — CPU-time measurement of the run *)
    let t0 = Sys.time () in
    Dgmc.Protocol.run net;
    (* dgmc-analyze: allow nondet-source — CPU-time measurement *)
    let elapsed = (Sys.time () -. t0) *. 1e3 in
    ( Dgmc.Protocol.agreed_topology net mc,
      elapsed,
      Sim.Engine.events_executed (Dgmc.Protocol.engine net) )
  in
  let topo_h, time_h, events_h = run Lsr.Flooding.Hop_by_hop in
  let topo_i, time_i, events_i = run Lsr.Flooding.Ideal in
  let same =
    match (topo_h, topo_i) with
    | Some a, Some b -> Mctree.Tree.equal a b
    | None, None -> true
    | _ -> false
  in
  [
    {
      mode = "hop-by-hop";
      same_topology_as_hop_by_hop = true;
      wall_time_ms = time_h;
      sim_events = events_h;
    };
    {
      mode = "ideal";
      same_topology_as_hop_by_hop = same;
      wall_time_ms = time_i;
      sim_events = events_i;
    };
  ]
