type run = {
  n : int;
  events : int;
  computations_per_event : float;
  floodings_per_event : float;
  messages_per_event : float;
  convergence_rounds : float option;
  converged : bool;
}

let graph_for ~seed ~n =
  let rng = Sim.Rng.create ((seed * 7919) + n) in
  Net.Topo_gen.waxman rng ~n ~target_degree:3.5 ()

let per_event count events =
  if events = 0 then 0.0 else float_of_int count /. float_of_int events

let measure net mcs =
  let totals = Dgmc.Protocol.totals net in
  {
    n = Dgmc.Protocol.n_switches net;
    events = totals.events;
    computations_per_event = per_event totals.computations totals.events;
    floodings_per_event = per_event totals.mc_floodings totals.events;
    messages_per_event = per_event totals.messages totals.events;
    convergence_rounds = Dgmc.Protocol.convergence_rounds net;
    converged = List.for_all (Dgmc.Protocol.converged net) mcs;
  }

let bursty_run ?trace ?metrics ?series ~seed ~n ~config ~members () =
  let graph = graph_for ~seed ~n in
  let net = Dgmc.Protocol.create ~graph ~config ?trace ?metrics ?series () in
  let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1 in
  let rng = Sim.Rng.create (seed lxor 0x5bd1e995) in
  let window =
    Float.max config.Dgmc.Config.tc
      (Lsr.Flooding.flood_diameter ~graph ~t_hop:config.Dgmc.Config.t_hop)
  in
  let events = Workload.Bursty.joins rng ~n ~mc ~members ~window () in
  Workload.Events.apply_dgmc net events;
  Dgmc.Protocol.run net;
  measure net [ mc ]

let poisson_run ?trace ?metrics ?series ~seed ~n ~config ~events ~gap_rounds () =
  let graph = graph_for ~seed ~n in
  let net = Dgmc.Protocol.create ~graph ~config ?trace ?metrics ?series () in
  let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1 in
  let rng = Sim.Rng.create (seed lxor 0x2545f491) in
  (* Establish a 5-member MC first; that setup is not measured. *)
  let initial = Sim.Rng.sample rng 5 (List.init n (fun i -> i)) in
  List.iter
    (fun switch -> Dgmc.Protocol.join net ~switch mc Dgmc.Member.Both)
    initial;
  Dgmc.Protocol.run net;
  Dgmc.Protocol.reset_counters net;
  let round = Dgmc.Config.round_length config ~graph in
  let start = Sim.Engine.now (Dgmc.Protocol.engine net) +. round in
  let schedule =
    Workload.Poisson.membership rng ~n ~mc ~events
      ~mean_gap:(gap_rounds *. round) ~initial ~start ()
    (* the seed joins already happened; keep only the churn *)
    |> List.filter (fun (e : Workload.Events.t) -> e.time > start)
  in
  Workload.Events.apply_dgmc net schedule;
  Dgmc.Protocol.run net;
  measure net [ mc ]

let brute_force_bursty_run ~seed ~n ~config ~members =
  let graph = graph_for ~seed ~n in
  let bf = Baselines.Brute_force.create ~graph ~config () in
  let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1 in
  let rng = Sim.Rng.create (seed lxor 0x5bd1e995) in
  let window =
    Float.max config.Dgmc.Config.tc
      (Lsr.Flooding.flood_diameter ~graph ~t_hop:config.Dgmc.Config.t_hop)
  in
  let events = Workload.Bursty.joins rng ~n ~mc ~members ~window () in
  List.iter
    (fun (e : Workload.Events.t) ->
      match e.action with
      | Workload.Events.Join { switch; mc; role } ->
        Baselines.Brute_force.schedule_join bf ~at:e.time ~switch mc role
      | Workload.Events.Leave { switch; mc } ->
        Baselines.Brute_force.schedule_leave bf ~at:e.time ~switch mc
      | Workload.Events.Link_down _ | Workload.Events.Link_up _ -> ())
    events;
  let first = List.fold_left (fun a (e : Workload.Events.t) -> Float.min a e.time) infinity events in
  Baselines.Brute_force.run bf;
  let totals = Baselines.Brute_force.totals bf in
  let round = Dgmc.Config.round_length config ~graph in
  let settle = (Sim.Engine.now (Baselines.Brute_force.engine bf) -. first) /. round in
  {
    n;
    events = totals.events;
    computations_per_event = per_event totals.computations totals.events;
    floodings_per_event = per_event totals.floodings totals.events;
    messages_per_event = per_event totals.messages totals.events;
    convergence_rounds = Some settle;
    converged = Baselines.Brute_force.converged bf mc;
  }

let mospf_bursty_run ~seed ~n ~config ~members ~sources =
  let graph = graph_for ~seed ~n in
  let m = Baselines.Mospf.create ~graph ~config () in
  let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1 in
  let group = 1 in
  let rng = Sim.Rng.create (seed lxor 0x5bd1e995) in
  let window =
    Float.max config.Dgmc.Config.tc
      (Lsr.Flooding.flood_diameter ~graph ~t_hop:config.Dgmc.Config.t_hop)
  in
  let events = Workload.Bursty.joins rng ~n ~mc ~members ~window () in
  let member_switches =
    List.filter_map
      (fun (e : Workload.Events.t) ->
        match e.action with
        | Workload.Events.Join { switch; _ } -> Some switch
        | _ -> None)
      events
  in
  List.iter
    (fun (e : Workload.Events.t) ->
      match e.action with
      | Workload.Events.Join { switch; _ } ->
        Baselines.Mospf.schedule_join m ~at:e.time ~switch ~group
      | Workload.Events.Leave { switch; _ } ->
        Baselines.Mospf.schedule_leave m ~at:e.time ~switch ~group
      | Workload.Events.Link_down _ | Workload.Events.Link_up _ -> ())
    events;
  Baselines.Mospf.run m;
  (* Membership has settled; now the data-driven computations happen when
     the sources speak.  One datagram per source — the minimum that
     rebuilds the forwarding state after the burst. *)
  let senders =
    List.filteri
      (fun i _ -> i < sources)
      (List.sort_uniq Int.compare member_switches)
  in
  List.iter (fun src -> Baselines.Mospf.send_packet m ~src ~group) senders;
  Baselines.Mospf.run m;
  let totals = Baselines.Mospf.totals m in
  {
    n;
    events = totals.events;
    computations_per_event = per_event totals.computations totals.events;
    floodings_per_event = per_event totals.floodings totals.events;
    messages_per_event = per_event totals.messages totals.events;
    convergence_rounds = None;
    converged = true;
  }
