type series = {
  label : string;
  points : (int * Metrics.Stats.summary) list;
}

type cell_time = {
  ct_series : string;
  ct_size : int;
  ct_seed : int;
  ct_wall_s : float;
}

type timing = {
  elapsed_s : float;
  seq_estimate_s : float;
  domains_used : int;
  cells : cell_time list;
}

type bursty_result = {
  proposals : series;
  floodings : series;
  convergence : series;
  all_converged : bool;
  b_timing : timing;
}

let default_sizes = [ 20; 40; 60; 80; 100 ]

let default_seeds = List.init 10 (fun i -> i + 1)

(* Run one (size × seed) sweep through the domain pool and regroup the
   flat results by size.  Each cell derives all randomness from its own
   (seed, n), so results are identical for any domain count; only the
   wall-clock timings vary. *)
let sweep_cells ?domains ~series_label ~sizes ~seeds run =
  let cells =
    List.concat_map (fun n -> List.map (fun seed -> (n, seed)) seeds) sizes
  in
  let timed, batch =
    Runner.Pool.map_timed ?domains (fun (n, seed) -> run ~seed ~n) cells
  in
  let tagged = List.combine cells timed in
  let by_size =
    List.map
      (fun n ->
        ( n,
          List.filter_map
            (fun ((n', _), (t : _ Runner.Pool.timed)) ->
              if n' = n then Some t.Runner.Pool.value else None)
            tagged ))
      sizes
  in
  let timing =
    {
      elapsed_s = batch.Runner.Pool.elapsed_s;
      seq_estimate_s = batch.Runner.Pool.seq_estimate_s;
      domains_used = batch.Runner.Pool.domains;
      cells =
        List.map
          (fun ((n, seed), (t : _ Runner.Pool.timed)) ->
            {
              ct_series = series_label;
              ct_size = n;
              ct_seed = seed;
              ct_wall_s = t.Runner.Pool.stats.Runner.Pool.wall_s;
            })
          tagged;
    }
  in
  (by_size, timing)

let merge_timings ts =
  {
    elapsed_s = List.fold_left (fun a t -> a +. t.elapsed_s) 0.0 ts;
    seq_estimate_s = List.fold_left (fun a t -> a +. t.seq_estimate_s) 0.0 ts;
    domains_used =
      List.fold_left (fun a t -> max a t.domains_used) 1 ts;
    cells = List.concat_map (fun t -> t.cells) ts;
  }

let bursty ?domains config ~sizes ~seeds ~members =
  let runs, timing =
    sweep_cells ?domains ~series_label:"dgmc" ~sizes ~seeds
      (fun ~seed ~n -> Harness.bursty_run ~seed ~n ~config ~members ())
  in
  let series label extract =
    {
      label;
      points =
        List.map
          (fun (n, rs) -> (n, Metrics.Stats.summarize (List.map extract rs)))
          runs;
    }
  in
  {
    proposals = series "proposals/event" (fun r -> r.Harness.computations_per_event);
    floodings = series "floodings/event" (fun r -> r.Harness.floodings_per_event);
    convergence =
      series "convergence (rounds)" (fun r ->
          Option.value ~default:0.0 r.Harness.convergence_rounds);
    all_converged =
      List.for_all
        (fun (_, rs) -> List.for_all (fun r -> r.Harness.converged) rs)
        runs;
    b_timing = timing;
  }

let fig6 ?domains ?(sizes = default_sizes) ?(seeds = default_seeds)
    ?(members = 10) () =
  bursty ?domains Dgmc.Config.atm_lan ~sizes ~seeds ~members

let fig7 ?domains ?(sizes = default_sizes) ?(seeds = default_seeds)
    ?(members = 10) () =
  bursty ?domains Dgmc.Config.wan ~sizes ~seeds ~members

type normal_result = {
  n_proposals : series;
  n_floodings : series;
  n_all_converged : bool;
  n_timing : timing;
}

let fig8 ?domains ?(sizes = default_sizes) ?(seeds = default_seeds)
    ?(events = 40) ?(gap_rounds = 50.0) () =
  let config = Dgmc.Config.atm_lan in
  let runs, timing =
    sweep_cells ?domains ~series_label:"dgmc" ~sizes ~seeds
      (fun ~seed ~n -> Harness.poisson_run ~seed ~n ~config ~events ~gap_rounds ())
  in
  let series label extract =
    {
      label;
      points =
        List.map
          (fun (n, rs) -> (n, Metrics.Stats.summarize (List.map extract rs)))
          runs;
    }
  in
  {
    n_proposals = series "proposals/event" (fun r -> r.Harness.computations_per_event);
    n_floodings = series "floodings/event" (fun r -> r.Harness.floodings_per_event);
    n_all_converged =
      List.for_all
        (fun (_, rs) -> List.for_all (fun r -> r.Harness.converged) rs)
        runs;
    n_timing = timing;
  }

type comparison = {
  c_sizes : int list;
  dgmc_computations : series;
  brute_computations : series;
  mospf_computations : series;
  dgmc_floodings : series;
  brute_floodings : series;
  mospf_floodings : series;
  c_timing : timing;
}

let compare_protocols ?domains ?(sizes = default_sizes)
    ?(seeds = default_seeds) ?(members = 10) ?(sources = 3) () =
  let config = Dgmc.Config.atm_lan in
  let timings = ref [] in
  let sweep label runner =
    let per_size, timing =
      sweep_cells ?domains ~series_label:label ~sizes ~seeds runner
    in
    timings := timing :: !timings;
    let reduce extract =
      {
        label;
        points =
          List.map
            (fun (n, rs) -> (n, Metrics.Stats.summarize (List.map extract rs)))
            per_size;
      }
    in
    ( reduce (fun r -> r.Harness.computations_per_event),
      reduce (fun r -> r.Harness.floodings_per_event) )
  in
  let dgmc_c, dgmc_f =
    sweep "dgmc" (fun ~seed ~n -> Harness.bursty_run ~seed ~n ~config ~members ())
  in
  let brute_c, brute_f =
    sweep "brute-force" (fun ~seed ~n ->
        Harness.brute_force_bursty_run ~seed ~n ~config ~members)
  in
  let mospf_c, mospf_f =
    sweep "mospf" (fun ~seed ~n ->
        Harness.mospf_bursty_run ~seed ~n ~config ~members ~sources)
  in
  {
    c_sizes = sizes;
    dgmc_computations = dgmc_c;
    brute_computations = brute_c;
    mospf_computations = mospf_c;
    dgmc_floodings = dgmc_f;
    brute_floodings = brute_f;
    mospf_floodings = mospf_f;
    c_timing = merge_timings (List.rev !timings);
  }

type cbt_row = {
  strategy : string;
  tree_cost : float;
  max_link_load : int;
  mean_link_load : float;
  links_used : int;
  mean_delay : float;
  control_messages : int;
}

let cbt_comparison ?(seed = 1) ?(n = 60) ?(receivers = 12) ?(senders = 6)
    ?(packets_per_sender = 5) () =
  let graph = Harness.graph_for ~seed ~n in
  let rng = Sim.Rng.create (seed lxor 0x9e3779b9) in
  let all = List.init n (fun i -> i) in
  let receiver_set = Sim.Rng.sample rng receivers all in
  let sender_pool = List.filter (fun x -> not (List.mem x receiver_set)) all in
  let sender_set = Sim.Rng.sample rng senders sender_pool in
  let load_run tree ~deliver ~control ~strategy =
    let loads = Hashtbl.create 64 in
    let delays = ref [] in
    List.iter
      (fun src ->
        for _ = 1 to packets_per_sender do
          let report = deliver ~src in
          Mctree.Delivery.accumulate_loads loads report;
          List.iter
            (fun (d : Mctree.Delivery.delivery) -> delays := d.delay :: !delays)
            report.Mctree.Delivery.deliveries
        done)
      sender_set;
    (* Sort before averaging: float addition is not associative, so the
       mean depends on summation order, and Hashtbl.fold enumerates in
       representation order (which varies with insertion history). *)
    let link_loads =
      Hashtbl.fold (fun _ l acc -> float_of_int l :: acc) loads []
      |> List.sort Float.compare
    in
    {
      strategy;
      tree_cost = Mctree.Tree.cost graph tree;
      max_link_load = Mctree.Delivery.max_load loads;
      mean_link_load =
        (if link_loads = [] then 0.0 else Metrics.Stats.mean link_loads);
      links_used = Hashtbl.length loads;
      mean_delay = (if !delays = [] then 0.0 else Metrics.Stats.mean !delays);
      control_messages = control;
    }
  in
  (* D-GMC receiver-only MC: Steiner tree over the receivers, any node
     can be the contact (nearest tree node). *)
  let dgmc_tree = Mctree.Steiner.kmb graph receiver_set in
  let dgmc_row =
    load_run dgmc_tree
      ~deliver:(fun ~src -> Mctree.Delivery.two_stage graph dgmc_tree ~src)
      ~control:0 ~strategy:"dgmc shared (kmb, any contact)"
  in
  (* D-GMC asymmetric MCs: one source-rooted tree per sender.  This is
     the configuration that spreads load — the shared-tree rows below
     necessarily funnel every packet over every tree link, which is the
     traffic concentration the paper attributes to CBT. *)
  let spt_row =
    let trees =
      List.map
        (fun src ->
          (src, Mctree.Spt.source_rooted graph ~root:src ~receivers:receiver_set))
        sender_set
    in
    let total_cost =
      List.fold_left (fun acc (_, t) -> acc +. Mctree.Tree.cost graph t) 0.0 trees
    in
    let row =
      load_run Mctree.Tree.empty
        ~deliver:(fun ~src ->
          Mctree.Delivery.multicast graph (List.assoc src trees) ~src)
        ~control:0 ~strategy:"dgmc per-source (spt)"
    in
    { row with tree_cost = total_cost }
  in
  let cbt_with core strategy =
    let cbt = Baselines.Cbt.create ~graph ~core () in
    List.iter (Baselines.Cbt.join cbt) receiver_set;
    load_run (Baselines.Cbt.tree cbt)
      ~deliver:(fun ~src -> Baselines.Cbt.deliver cbt ~src)
      ~control:(Baselines.Cbt.control_messages cbt)
      ~strategy
  in
  [
    spt_row;
    dgmc_row;
    cbt_with (Baselines.Core_select.median graph ~members:receiver_set)
      "cbt (median core)";
    cbt_with (Baselines.Core_select.center graph ~members:receiver_set)
      "cbt (center core)";
    cbt_with (Baselines.Core_select.first_member receiver_set)
      "cbt (first-member core)";
    cbt_with (Baselines.Core_select.random (Sim.Rng.create (seed + 77)) graph)
      "cbt (random core)";
  ]
