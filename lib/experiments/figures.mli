(** Figure and table regeneration (paper §4 and §5).

    Each function reproduces one evaluation artifact as data series —
    mean ± 95% CI over the seed set at each network size, exactly the
    reduction the paper plots.  Rendering to text tables is left to the
    callers (bench harness and CLI).

    Defaults follow DESIGN.md's reconstruction of the paper's setup:
    sizes 20–100 step 20, 10 random graphs per size, 10-member bursts. *)

type series = {
  label : string;
  points : (int * Metrics.Stats.summary) list;  (** (network size, summary). *)
}

type cell_time = {
  ct_series : string;  (** Which sweep the cell belongs to (protocol). *)
  ct_size : int;  (** Network size of the cell. *)
  ct_seed : int;  (** Graph seed of the cell. *)
  ct_wall_s : float;  (** Wall-clock seconds spent simulating the cell. *)
}

type timing = {
  elapsed_s : float;  (** Wall clock for the whole sweep. *)
  seq_estimate_s : float;
      (** Sum of per-cell wall times — the sequential estimate, so
          speedup = [seq_estimate_s /. elapsed_s]. *)
  domains_used : int;
  cells : cell_time list;
}
(** Where the time went.  Timings are the only part of a result that is
    {e not} deterministic; every data series is byte-identical for any
    [?domains] (each cell derives its randomness from its own (seed,
    size), see {!Runner.Pool}). *)

type bursty_result = {
  proposals : series;  (** Figure (a): topology computations per event. *)
  floodings : series;  (** Figure (b): flooding operations per event. *)
  convergence : series;  (** Figure (c): convergence time in rounds. *)
  all_converged : bool;  (** Every run reached network-wide agreement. *)
  b_timing : timing;
}

val default_sizes : int list

val default_seeds : int list

val fig6 :
  ?domains:int ->
  ?sizes:int list -> ?seeds:int list -> ?members:int -> unit -> bursty_result
(** Experiment 1: bursty joins, computation-dominated regime
    ({!Dgmc.Config.atm_lan}).  [domains] (default 1) spreads the
    (size × seed) cells over that many OCaml domains. *)

val fig7 :
  ?domains:int ->
  ?sizes:int list -> ?seeds:int list -> ?members:int -> unit -> bursty_result
(** Experiment 2: bursty joins, communication-dominated regime
    ({!Dgmc.Config.wan}). *)

type normal_result = {
  n_proposals : series;  (** Figure 8(a). *)
  n_floodings : series;  (** Figure 8(b). *)
  n_all_converged : bool;
  n_timing : timing;
}

val fig8 :
  ?domains:int ->
  ?sizes:int list ->
  ?seeds:int list ->
  ?events:int ->
  ?gap_rounds:float ->
  unit ->
  normal_result
(** Experiment 3: sparse Poisson membership events (default 40 events,
    mean gap 50 rounds). *)

type comparison = {
  c_sizes : int list;
  dgmc_computations : series;
  brute_computations : series;
  mospf_computations : series;
  dgmc_floodings : series;
  brute_floodings : series;
  mospf_floodings : series;
  c_timing : timing;  (** All three sweeps merged. *)
}

val compare_protocols :
  ?domains:int ->
  ?sizes:int list -> ?seeds:int list -> ?members:int -> ?sources:int -> unit -> comparison
(** §4's claim quantified: per-event topology computations and floodings
    for D-GMC vs. the brute-force LSR protocol vs. MOSPF (with the given
    number of active sources) on identical bursty workloads. *)

type cbt_row = {
  strategy : string;  (** Core selection strategy, or "dgmc" row. *)
  tree_cost : float;
  max_link_load : int;  (** Heaviest-loaded link over the packet batch. *)
  mean_link_load : float;
      (** Mean load over the links that carried traffic — shared trees
          drive this toward [max_link_load] (every tree link carries
          every packet: traffic concentration), per-source trees spread
          it out. *)
  links_used : int;  (** Distinct links that carried at least one packet. *)
  mean_delay : float;  (** Mean sender-to-receiver delivery delay. *)
  control_messages : int;
}

val cbt_comparison :
  ?seed:int -> ?n:int -> ?receivers:int -> ?senders:int -> ?packets_per_sender:int ->
  unit -> cbt_row list
(** §5's CBT trade-off: the D-GMC receiver-only shared tree vs. CBT
    trees under different core placements, loaded with the same packet
    batch from off-tree senders. *)
