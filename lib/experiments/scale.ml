type row = {
  protocol : string;
  n : int;
  areas : int;
  floodings_per_event : float;
  messages_per_event : float;
  reach_per_event : float;
  converged : bool;
}

let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1

(* A sparse membership schedule confined to the first three areas, so
   the hierarchy's locality has something to exploit (a global
   conference would touch every area no matter what). *)
let schedule rng ~partition ~events ~gap =
  let pool = List.concat [ partition.(0); partition.(1); partition.(2) ] in
  let members = ref [] in
  List.init events (fun i ->
      let at = float_of_int (i + 1) *. gap in
      let joinable = List.filter (fun s -> not (List.mem s !members)) pool in
      let do_join =
        match (joinable, !members) with
        | [], _ -> false
        | _, [] | _, [ _ ] -> true
        | _ -> Sim.Rng.bool rng
      in
      if do_join then begin
        let s = Sim.Rng.pick rng joinable in
        members := s :: !members;
        `Join (at, s)
      end
      else begin
        let s = Sim.Rng.pick rng !members in
        members := List.filter (fun x -> x <> s) !members;
        `Leave (at, s)
      end)

let per_event x events = float_of_int x /. float_of_int events

let hier_vs_flat ?domains ?(seeds = [ 1; 2; 3; 4; 5 ]) ?(areas = 10)
    ?(per_area = 20) ?(events = 20) () =
  let n = areas * per_area in
  let config = Dgmc.Config.atm_lan in
  (* One task per seed; both protocols run inside the task so the pair
     shares its topology.  Results come back in seed order. *)
  let samples =
    Runner.Pool.map ?domains
      (fun seed ->
        let rng = Sim.Rng.create (seed * 977) in
        let graph, partition = Net.Topo_gen.clustered rng ~areas ~per_area () in
        let round = Dgmc.Config.round_length config ~graph in
        let gap = 50.0 *. round in
        let plan = schedule (Sim.Rng.create (seed + 4242)) ~partition ~events ~gap in
        (* Flat D-GMC on the full graph. *)
        let flat = Dgmc.Protocol.create ~graph:(Net.Graph.copy graph) ~config () in
        List.iter
          (function
            | `Join (at, s) ->
              Dgmc.Protocol.schedule_join flat ~at ~switch:s mc Dgmc.Member.Both
            | `Leave (at, s) -> Dgmc.Protocol.schedule_leave flat ~at ~switch:s mc)
          plan;
        Dgmc.Protocol.run flat;
        let ft = Dgmc.Protocol.totals flat in
        let flat_row =
          {
            protocol = "flat";
            n;
            areas;
            floodings_per_event = per_event ft.mc_floodings events;
            messages_per_event = per_event ft.messages events;
            reach_per_event =
              per_event (ft.mc_floodings * (n - 1)) events;
            converged = Dgmc.Protocol.converged flat mc;
          }
        in
        (* Hierarchical D-GMC on the same topology. *)
        let hier = Hierarchy.Hmc.create ~graph ~partition ~config () in
        List.iter
          (function
            | `Join (at, s) ->
              Hierarchy.Hmc.schedule_join hier ~at ~switch:s mc Dgmc.Member.Both
            | `Leave (at, s) -> Hierarchy.Hmc.schedule_leave hier ~at ~switch:s mc)
          plan;
        Hierarchy.Hmc.run hier;
        let ht = Hierarchy.Hmc.totals hier in
        let hier_row =
          {
            protocol = "hierarchical";
            n;
            areas;
            floodings_per_event =
              per_event (ht.intra_floodings + ht.logical_floodings) events;
            messages_per_event =
              per_event (ht.intra_messages + ht.logical_messages) events;
            reach_per_event =
              per_event
                ((ht.intra_floodings * (per_area - 1))
                + (ht.logical_floodings * (areas - 1)))
                events;
            converged = Hierarchy.Hmc.converged hier mc;
          }
        in
        (flat_row, hier_row))
      seeds
  in
  let mean f rows = Metrics.Stats.mean (List.map f rows) in
  let reduce protocol rows =
    {
      protocol;
      n;
      areas;
      floodings_per_event = mean (fun r -> r.floodings_per_event) rows;
      messages_per_event = mean (fun r -> r.messages_per_event) rows;
      reach_per_event = mean (fun r -> r.reach_per_event) rows;
      converged = List.for_all (fun r -> r.converged) rows;
    }
  in
  [
    reduce "flat" (List.map fst samples);
    reduce "hierarchical" (List.map snd samples);
  ]
