(** Scalability experiment for the hierarchical extension (DESIGN.md §2,
    paper §2's closing remark).

    The flat protocol floods every event to all [n] switches; the
    hierarchical protocol floods an event inside its area and touches
    the [k]-node logical level only when an area's membership flips.
    This experiment runs the same sparse membership workload through
    both on the same clustered topology and reports the per-event
    signaling scope. *)

type row = {
  protocol : string;  (** "flat" or "hierarchical". *)
  n : int;  (** Total switches. *)
  areas : int;
  floodings_per_event : float;
      (** MC LSA floods (intra + logical for the hierarchy). *)
  messages_per_event : float;  (** Link-level LSA transmissions. *)
  reach_per_event : float;
      (** Mean number of switches receiving signaling per event — the
          scalability headline. *)
  converged : bool;
}

val hier_vs_flat :
  ?domains:int ->
  ?seeds:int list ->
  ?areas:int ->
  ?per_area:int ->
  ?events:int ->
  unit ->
  row list
(** Defaults: 10 areas × 20 switches (n = 200), 20 sparse membership
    events confined to 3 areas, seeds 1-5.  [domains] (default 1) runs
    one seed per pool task; the rows are identical for any value. *)
