(** Single-run experiment harness.

    One {e run} = one random graph + one workload + one protocol
    execution to quiescence, reduced to the per-event ratios the paper
    reports.  The figure sweeps ({!Figures}) aggregate runs over seeds.

    All randomness derives from the run's seed: the same seed always
    yields the same graph, workload and measurements. *)

type run = {
  n : int;  (** Switches. *)
  events : int;  (** Membership events injected (measured phase only). *)
  computations_per_event : float;
      (** Paper's "topology computations / proposals per event". *)
  floodings_per_event : float;  (** Paper's "flooding operations per event". *)
  messages_per_event : float;  (** Link-level LSA transmissions per event. *)
  convergence_rounds : float option;
      (** Time from first event to last state change, in rounds. *)
  converged : bool;  (** Network-wide agreement held at quiescence. *)
}

val graph_for : seed:int -> n:int -> Net.Graph.t
(** The experiment topology: Waxman graph, mean degree ≈ 3.5, connected
    (see DESIGN.md). *)

val bursty_run :
  ?trace:Sim.Trace.t ->
  ?metrics:Metrics.Registry.t ->
  ?series:Metrics.Series.t ->
  seed:int ->
  n:int ->
  config:Dgmc.Config.t ->
  members:int ->
  unit ->
  run
(** Experiments 1 and 2: [members] switches join a fresh symmetric MC
    within one flooding-diameter window — the conflicting-burst regime.
    [trace]/[metrics]/[series] are forwarded to {!Dgmc.Protocol.create}
    for observability; they never change the measured run. *)

val poisson_run :
  ?trace:Sim.Trace.t ->
  ?metrics:Metrics.Registry.t ->
  ?series:Metrics.Series.t ->
  seed:int ->
  n:int ->
  config:Dgmc.Config.t ->
  events:int ->
  gap_rounds:float ->
  unit ->
  run
(** Experiment 3: an MC with 5 established members (set up and excluded
    from the measurement) churns through [events] membership events with
    mean inter-arrival [gap_rounds] rounds. *)

val brute_force_bursty_run :
  seed:int -> n:int -> config:Dgmc.Config.t -> members:int -> run
(** The same bursty workload through the brute-force baseline
    ([convergence_rounds] reports its settle time; agreement checked the
    same way). *)

val mospf_bursty_run :
  seed:int -> n:int -> config:Dgmc.Config.t -> members:int -> sources:int -> run
(** The same membership workload through MOSPF: after the burst settles,
    [sources] member switches each send one datagram, triggering the
    data-driven computations; the computation ratio counts those. *)
