module Int_set = Set.Make (Int)

type t = {
  graph : Net.Graph.t;
  core : int;
  mutable tree : Mctree.Tree.t;
  mutable members : Int_set.t;
  mutable messages : int;
}

let create ~graph ~core () =
  if core < 0 || core >= Net.Graph.n_nodes graph then
    invalid_arg "Cbt.create: core out of range";
  {
    graph;
    core;
    tree = Mctree.Tree.of_terminals [ core ];
    members = Int_set.empty;
    messages = 0;
  }

let core t = t.core

let tree t = t.tree

let members t = Int_set.elements t.members

let is_member t x = Int_set.mem x t.members

let control_messages t = t.messages

(* The unicast route from [x] toward the core, cut at the first on-tree
   switch: this is the path a CBT join request travels and grafts. *)
let graft_path t x =
  match Net.Dijkstra.path t.graph ~src:x ~dst:t.core with
  | None -> failwith "Cbt: core unreachable"
  | Some path ->
    let rec take acc = function
      | [] -> List.rev acc
      | node :: rest ->
        if Mctree.Tree.mem_node t.tree node then List.rev (node :: acc)
        else take (node :: acc) rest
    in
    take [] path

let join_impl t x =
  if not (Int_set.mem x t.members) then begin
    t.members <- Int_set.add x t.members;
    if Mctree.Tree.mem_node t.tree x then
      t.tree <- Mctree.Tree.add_terminal t.tree x
    else begin
      let path = graft_path t x in
      (* One join request per hop toward the tree, one ack per hop back. *)
      t.messages <- t.messages + (2 * Net.Path.hops path);
      t.tree <- Mctree.Tree.add_terminal (Mctree.Tree.add_path t.tree path) x
    end
  end

(* Closure-free phase wrappers; see Net.Dijkstra.run. *)
let join t x =
  let ph = Metrics.Phase.ambient () in
  Metrics.Phase.enter ph "cbt.compute";
  match join_impl t x with
  | () -> Metrics.Phase.leave ph
  | exception e ->
    Metrics.Phase.leave ph;
    raise e

let leave_impl t x =
  if Int_set.mem x t.members then begin
    t.members <- Int_set.remove x t.members;
    let before = Mctree.Tree.n_edges t.tree in
    t.tree <- Mctree.Tree.prune (Mctree.Tree.remove_terminal t.tree x) ;
    (* One prune message per branch link torn down. *)
    t.messages <- t.messages + (before - Mctree.Tree.n_edges t.tree)
  end

let leave t x =
  let ph = Metrics.Phase.ambient () in
  Metrics.Phase.enter ph "cbt.compute";
  match leave_impl t x with
  | () -> Metrics.Phase.leave ph
  | exception e ->
    Metrics.Phase.leave ph;
    raise e

(* The core anchors the tree as a terminal but is not a member; only
   member switches count as packet recipients. *)
let members_only t (report : Mctree.Delivery.report) =
  {
    report with
    deliveries =
      List.filter
        (fun (d : Mctree.Delivery.delivery) -> Int_set.mem d.receiver t.members)
        report.deliveries;
  }

let deliver t ~src =
  if Mctree.Tree.mem_node t.tree src then
    members_only t
      { (Mctree.Delivery.multicast t.graph t.tree ~src) with contact = Some src }
  else begin
    (* Data from an off-tree sender travels toward the core until it
       hits the tree — the core-ward contact restriction of CBT. *)
    let path = graft_path t src in
    let contact = List.nth path (List.length path - 1) in
    let base_delay = Net.Path.cost t.graph path in
    let base_hops = Net.Path.hops path in
    let inner = Mctree.Delivery.multicast t.graph t.tree ~src:contact in
    let deliveries =
      List.map
        (fun (d : Mctree.Delivery.delivery) ->
          { d with delay = d.delay +. base_delay; hops = d.hops + base_hops })
        inner.deliveries
    in
    let deliveries =
      if Int_set.mem contact t.members then
        { Mctree.Delivery.receiver = contact; delay = base_delay; hops = base_hops }
        :: deliveries
      else deliveries
    in
    let unicast_links =
      List.map (fun (u, v) -> if u < v then (u, v) else (v, u)) (Net.Path.edges path)
    in
    members_only t
      {
        Mctree.Delivery.deliveries =
          List.sort Mctree.Delivery.compare_delivery deliveries;
        links_used =
          List.sort_uniq Mctree.Tree.compare_edge
            (unicast_links @ inner.links_used);
        contact = Some contact;
      }
  end

let handle_link_down t u v =
  if Mctree.Tree.mem_edge t.tree u v then begin
    let live =
      List.fold_left
        (fun tr (a, b) ->
          if Net.Graph.link_is_up t.graph a b then tr
          else Mctree.Tree.remove_edge tr a b)
        t.tree (Mctree.Tree.edges t.tree)
    in
    (* Keep the core-side fragment; downstream members re-join through
       live unicast routes. *)
    let keep = Int_set.of_list (Mctree.Tree.dfs_order live ~root:t.core) in
    let kept_edges =
      List.filter
        (fun (a, b) -> Int_set.mem a keep && Int_set.mem b keep)
        (Mctree.Tree.edges live)
    in
    let survivors = Int_set.elements (Int_set.inter t.members keep) in
    t.tree <-
      Mctree.Tree.of_edges ~terminals:(t.core :: survivors) kept_edges
      |> Mctree.Tree.prune;
    let orphans = Int_set.elements (Int_set.diff t.members keep) in
    t.members <- Int_set.of_list survivors;
    List.iter (fun x -> try join t x with Failure _ -> ()) orphans
  end
