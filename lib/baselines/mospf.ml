module Int_set = Set.Make (Int)

type membership_lsa = { src : int; group : int; change : [ `Join | `Leave ] }

type router = {
  members : (int, Int_set.t) Hashtbl.t;  (** group → member switches *)
  cache : (int * int, Mctree.Tree.t) Hashtbl.t;  (** (src, group) → SPT *)
}

type totals = {
  events : int;
  computations : int;
  floodings : int;
  messages : int;
  packets_forwarded : int;
}

type t = {
  engine : Sim.Engine.t;
  graph : Net.Graph.t;
  config : Dgmc.Config.t;
  flooding : membership_lsa Lsr.Flooding.t;
  seqs : Lsr.Lsa.Seq.counter array;
  routers : router array;
  mutable events : int;
  mutable computations : int;
  mutable packets_forwarded : int;
}

let members_of router group =
  Option.value ~default:Int_set.empty (Hashtbl.find_opt router.members group)

let apply_membership router { src; group; change } =
  let current = members_of router group in
  let updated =
    match change with
    | `Join -> Int_set.add src current
    | `Leave -> Int_set.remove src current
  in
  Hashtbl.replace router.members group updated;
  (* A membership change invalidates every cached entry of the group:
     the next datagram recomputes (RFC 1584 behaviour). *)
  (* dgmc-analyze: allow iteration-order — per-key membership test; the set
     of removed keys does not depend on enumeration order *)
  Hashtbl.iter
    (fun ((_, g) as key) _ ->
      if Int.equal g group then Hashtbl.remove router.cache key)
    (Hashtbl.copy router.cache)

let create ~graph ~config () =
  let n = Net.Graph.n_nodes graph in
  if n < 2 then invalid_arg "Mospf.create: need at least 2 switches";
  let engine = Sim.Engine.create () in
  let routers =
    Array.init n (fun _ -> { members = Hashtbl.create 4; cache = Hashtbl.create 8 })
  in
  let deliver ~switch (lsa : membership_lsa Lsr.Lsa.t) =
    apply_membership routers.(switch) lsa.payload
  in
  let flooding =
    Lsr.Flooding.create ~engine ~graph ~t_hop:config.Dgmc.Config.t_hop
      ~mode:config.Dgmc.Config.flood_mode ~deliver ()
  in
  {
    engine;
    graph;
    config;
    flooding;
    seqs = Array.init n (fun _ -> Lsr.Lsa.Seq.create ());
    routers;
    events = 0;
    computations = 0;
    packets_forwarded = 0;
  }

let engine t = t.engine

let membership_event t ~switch ~group change =
  t.events <- t.events + 1;
  apply_membership t.routers.(switch) { src = switch; group; change };
  let seq = Lsr.Lsa.Seq.next t.seqs.(switch) in
  Lsr.Flooding.flood t.flooding
    (Lsr.Lsa.make ~origin:switch ~seq { src = switch; group; change })

let join t ~switch ~group = membership_event t ~switch ~group `Join

let leave t ~switch ~group = membership_event t ~switch ~group `Leave

let schedule_join t ~at ~switch ~group =
  ignore (Sim.Engine.schedule_at t.engine ~time:at (fun () -> join t ~switch ~group))

let schedule_leave t ~at ~switch ~group =
  ignore (Sim.Engine.schedule_at t.engine ~time:at (fun () -> leave t ~switch ~group))

(* Source-rooted tree as THIS router currently sees the group. *)
let local_tree t router ~src ~group =
  let receivers = Int_set.elements (members_of t.routers.(router) group) in
  Mctree.Spt.source_rooted t.graph ~root:src
    ~receivers:(List.filter (fun x -> x <> src) receivers)

let rec packet_at t ~src ~group ~router ~parent =
  let r = t.routers.(router) in
  match Hashtbl.find_opt r.cache (src, group) with
  | Some tree -> forward t tree ~src ~group ~router ~parent
  | None ->
    (* Cache miss: the datagram waits while the router computes the
       source-rooted tree — the paper's on-demand, data-driven model. *)
    ignore
      (Sim.Engine.schedule t.engine ~delay:t.config.Dgmc.Config.tc (fun () ->
           t.computations <- t.computations + 1;
           let tree = local_tree t router ~src ~group in
           Hashtbl.replace r.cache (src, group) tree;
           forward t tree ~src ~group ~router ~parent))

and forward t tree ~src ~group ~router ~parent =
  if Mctree.Tree.mem_node tree router then
    Mctree.Tree.Int_set.iter
      (fun child ->
        if (match parent with Some p -> p <> child | None -> true) then begin
          t.packets_forwarded <- t.packets_forwarded + 1;
          ignore
            (Sim.Engine.schedule t.engine ~delay:t.config.Dgmc.Config.t_hop
               (fun () ->
                 packet_at t ~src ~group ~router:child ~parent:(Some router)))
        end)
      (Mctree.Tree.neighbors tree router)

let send_packet t ~src ~group = packet_at t ~src ~group ~router:src ~parent:None

let schedule_packet t ~at ~src ~group =
  ignore (Sim.Engine.schedule_at t.engine ~time:at (fun () -> send_packet t ~src ~group))

let run ?until ?max_events t = Sim.Engine.run ?until ?max_events t.engine

let totals t =
  {
    events = t.events;
    computations = t.computations;
    floodings = Lsr.Flooding.floods_started t.flooding;
    messages = Lsr.Flooding.messages_sent t.flooding;
    packets_forwarded = t.packets_forwarded;
  }

let reset_counters t =
  t.events <- 0;
  t.computations <- 0;
  t.packets_forwarded <- 0;
  Lsr.Flooding.reset_counters t.flooding

let members t ~switch ~group =
  Int_set.elements (members_of t.routers.(switch) group)

let cache_size t ~switch = Hashtbl.length t.routers.(switch).cache
