(** Flooding of LSAs over the network, with an optional reliable mode.

    The default mode propagates hop by hop: each switch, on first receipt
    of an (origin, seq) pair, delivers the LSA locally and forwards it on
    every live incident link except the arrival link, each hop taking
    [t_hop] of simulated time.  This is classic LSR flooding; an LSA
    reaches a switch after (hop distance × [t_hop]), and a partitioned
    switch does not receive it at all.

    [Ideal] mode schedules deliveries directly at hop-distance times,
    computed when the flood starts — faster to simulate and identical in
    delivery times on a static graph; it differs only under mid-flood
    topology changes.

    [Reliable] mode is hop-by-hop flooding hardened for lossy delivery:
    every per-link data transmission is acknowledged by the receiver, and
    the sender retransmits on a capped exponential backoff until acked or
    a retry budget is exhausted (so a dead neighbor times out cleanly
    instead of being retried forever).  Duplicate-suppression on
    (origin, seq) guarantees [deliver] still fires exactly once per
    switch however many copies arrive; per-destination retransmit state
    ages out on ack or on retry exhaustion.  Under the default
    (transparent) [transmit] hook its data-message schedule is exactly
    [Hop_by_hop]'s; the acks ride on top.

    {b Fault injection.}  All per-link transmissions — [Hop_by_hop] and
    [Reliable] data, and [Reliable] acks — pass through the [transmit]
    hook, which maps one submitted transmission to the delivery delays of
    its copies ([[]] = lost).  Plug [Faults.Plan.transmit] in to subject
    the flood to loss, duplication, reordering, jitter, crashes and
    partitions; the default hook delivers one copy after [base_delay].
    [Ideal] mode bypasses links entirely and ignores the hook.

    {b Counters.}  The instance keeps the signaling-overhead counters the
    paper's evaluation reports — flooding operations and first-copy
    per-link data transmissions ({!messages_sent}) — plus, in reliable
    mode, separate {!acks_sent}, {!retransmissions} and
    {!deliveries_abandoned} counters, so the paper's figures stay
    comparable across modes: lossless [Reliable] ≡ [Hop_by_hop] on
    {!messages_sent}, with reliability's cost isolated in the ack and
    retransmission counters. *)

type mode = Hop_by_hop | Ideal | Reliable

type reliability = {
  rto : float;
      (** Initial retransmit timeout, as a multiple of [t_hop].  Must
          exceed [2] (a round trip) to avoid spurious retransmissions on
          a clean link.  In adaptive mode this is the {e floor} of the
          per-destination estimate. *)
  rto_max : float;  (** Backoff cap, as a multiple of [t_hop]. *)
  max_retries : int;
      (** Retransmissions per (link, LSA) before the sender gives up. *)
  adaptive : bool;
      (** When set, the initial timeout of each transfer is the
          Jacobson/Karn estimate for its destination — srtt + 4·rttvar
          from ack round-trip samples (RFC 6298 smoothing, samples taken
          only from transfers acked without a retransmission, per Karn's
          rule) — clamped into [[rto, rto_max]] hop times.  The doubling
          backoff and the cap apply unchanged on top. *)
}

val default_reliability : reliability
(** [rto = 4], [rto_max = 64], [max_retries = 10], [adaptive = false]. *)

val giveup_span_hops : reliability -> float
(** Worst-case simulated time, in [t_hop] multiples, between a transfer's
    first transmission and its giveup: the sum of the [max_retries + 1]
    timeout waits under doubling capped at [rto_max] (508 under the
    defaults).  Adaptive mode may start a transfer at the cap, so its
    worst case sums from [rto_max].  {!Config.resync_deadline_hops}
    validation derives from this — a resync session must outlive its
    slowest possible transport attempt. *)

type transmit = src:int -> dst:int -> base_delay:float -> float list

type 'a t

val create :
  engine:Sim.Engine.t ->
  graph:Net.Graph.t ->
  t_hop:float ->
  ?mode:mode ->
  ?reliability:reliability ->
  ?transmit:transmit ->
  ?trace:Sim.Trace.t ->
  ?metrics:Metrics.Registry.t ->
  ?series:Metrics.Series.t ->
  deliver:(switch:int -> 'a Lsa.t -> unit) ->
  unit ->
  'a t
(** [deliver] is invoked once per switch (except the origin) per flooded
    LSA, at the simulated arrival time.  [t_hop] must be positive.

    {b Observability.}  With an enabled [trace], every per-link data
    transmission emits [Lsa_forwarded] (with [retransmit] set on reliable
    retries), every first receipt emits [Lsa_delivered], and losses emit
    [Lsa_dropped] with the reason ([fault] for injected loss, [link-down]
    for mid-flight link failure, [abandoned] for an exhausted reliable
    transfer).  Causal parents link each event to the transmission that
    caused it, and the ambient trace context at {!flood} time (normally
    the origination event) roots the tree; [deliver] runs under the
    delivery's context so protocol reactions chain on.  With [metrics],
    the per-instance counters are mirrored into [flood.*] counters
    labelled by the sending switch.

    With an enabled [series], the flight recorder samples two windowed
    time-series in simulated time: [flood.lsas] (one point per data
    transmission, retransmissions included — bucket counts give LSAs per
    tick) and [flood.inflight_rtx] (the reliable-mode in-flight
    retransmit-table size, sampled at every arm/ack/abandon transition —
    bucket [last] gives the depth profile).  All recording sites are
    guarded on [Metrics.Series.enabled], so a disabled series costs one
    field read per site and allocates nothing. *)

val flood : 'a t -> 'a Lsa.t -> unit
(** Start flooding from the LSA's origin at the current simulated time.
    The origin is {e not} delivered its own LSA. *)

val send : 'a t -> src:int -> dst:int -> ?on_giveup:(unit -> unit) ->
  'a Lsa.t -> unit
(** Unicast one LSA to a single adjacent switch — the transport for the
    database-resynchronisation exchange (summaries and deltas are
    addressed, not flooded).  [dst] must share a link with [src]
    ([Invalid_argument] otherwise); whether that link is {e up} is
    checked at each copy's arrival time, like any transmission.

    In [Reliable] mode the full ack/retransmit/backoff machinery of the
    mode applies to the single hop, the receiver acks and deduplicates on
    [Lsa.id] but never forwards, and [on_giveup] fires once if the retry
    budget is exhausted without an ack.  In [Hop_by_hop] and [Ideal]
    modes the copy is fire-and-forget and [on_giveup] never fires —
    callers needing liveness there must keep their own deadline. *)

val floods_started : 'a t -> int
(** Number of {!flood} calls. *)

val messages_sent : 'a t -> int
(** First-copy data transmissions per link (hop-by-hop and reliable
    modes) or deliveries (ideal mode).  Retransmissions and acks are
    counted separately so this figure is comparable across modes. *)

val acks_sent : 'a t -> int
(** Reliable mode: acknowledgements submitted (0 in other modes). *)

val retransmissions : 'a t -> int
(** Reliable mode: data copies retransmitted after a timeout. *)

val deliveries_abandoned : 'a t -> int
(** Reliable mode: (link, LSA) transfers abandoned after exhausting
    [max_retries] — the clean timeout for an unreachable neighbor. *)

val pending_retransmits : 'a t -> int
(** Reliable mode: (link, LSA) transfers currently awaiting an ack. *)

val abandon_link : 'a t -> src:int -> dst:int -> int
(** Cancel every pending transfer from [src] to [dst] — the link-health
    layer calls this when its detector declares the neighbor dead, so
    stale transfers stop retransmitting into a black hole immediately
    instead of spinning until [max_retries].  Each cancelled transfer
    counts as abandoned, leaves an [Lsa_dropped] breadcrumb with reason
    [neighbor-down], and fires its [on_giveup] exactly once (a transfer
    already acked or timed out is untouched).  Returns the number of
    transfers cancelled.  Giveups fire in (origin, seq) order. *)

val rtt_estimate : 'a t -> src:int -> dst:int -> (float * float) option
(** Adaptive reliable mode: the current [(srtt, rttvar)] for the directed
    adjacency, in seconds; [None] before the first sample. *)

val reset_counters : 'a t -> unit

val flood_diameter : graph:Net.Graph.t -> t_hop:float -> float
(** Worst-case time for a flood to reach every switch: hop diameter of
    the graph times [t_hop].  This is the paper's [Tf]. *)
