(** Per-switch link-state database: the switch's local image of the
    network.

    Under link-state routing every switch maintains a complete picture of
    the topology, learned from flooded link-event LSAs (paper §1).  A
    switch's D-GMC topology computations run against {e its own} image —
    which may briefly lag reality while link events propagate — so each
    simulated switch owns an independent copy of the graph.

    Link events are {e versioned}: a link's state changes are totally
    ordered in real time, so the driver stamps the n-th change of a link
    with version n.  The database applies an event only when its version
    exceeds the last one applied for that link, which makes merging two
    images (database resynchronisation after a healed partition or a
    crash recovery) a simple per-link max — duplicates and stale
    re-floods are no-ops. *)

type link_event = { u : int; v : int; up : bool; version : int }
(** Payload of a non-MC LSA: the operational state change of one link
    (the paper's event description [D]).  [version] is the per-link
    monotone change counter assigned by the detecting side. *)

type t

val create : Net.Graph.t -> t
(** [create g] — local image initialised to a deep copy of [g] (switches
    boot with a converged unicast database; every link starts at
    version 0). *)

val graph : t -> Net.Graph.t
(** The switch's current image.  Callers must not mutate it. *)

val apply : t -> link_event -> unit
(** Update the image.  Unknown links are ignored (robustness against
    reordered information about links this image never had); events whose
    [version] does not exceed the last applied version for the link are
    ignored (stale or duplicate knowledge). *)

val version : t -> u:int -> v:int -> int
(** Last applied version for link [(u, v)]; 0 if no event was ever
    applied. *)

val entries : t -> link_event list
(** Every link this image has applied an event for, with its current
    state and version, sorted by endpoints.  This is the compact summary
    exchanged during database resynchronisation: links still at version 0
    are in boot state on both sides and need no exchange. *)

val pp_link_event : Format.formatter -> link_event -> unit

val changed_count : t -> int
(** Number of links this image holds versioned (non-boot) state for —
    the size figure the flight recorder samples per switch.  O(1), no
    allocation: it reads the version-table length, unlike {!entries}. *)
