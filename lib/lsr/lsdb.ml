type link_event = { u : int; v : int; up : bool; version : int }

module Link_tbl = Hashtbl.Make (struct
  type t = int * int

  let equal (a, b) (c, d) = Int.equal a c && Int.equal b d

  let hash (a, b) = (a * 1000003) lxor b
end)

type t = { image : Net.Graph.t; versions : int Link_tbl.t }

let create g = { image = Net.Graph.copy g; versions = Link_tbl.create 16 }

let graph t = t.image

let key u v = if u < v then (u, v) else (v, u)

let version t ~u ~v =
  Option.value ~default:0 (Link_tbl.find_opt t.versions (key u v))

let apply t { u; v; up; version = ver } =
  if Net.Graph.has_edge t.image u v && ver > version t ~u ~v then begin
    Link_tbl.replace t.versions (key u v) ver;
    Net.Graph.set_link t.image u v ~up
  end

let entries t =
  Link_tbl.fold
    (fun (u, v) ver acc ->
      { u; v; up = Net.Graph.link_is_up t.image u v; version = ver } :: acc)
    t.versions []
  |> List.sort (fun a b ->
         if a.u <> b.u then Int.compare a.u b.u else Int.compare a.v b.v)

let pp_link_event ppf { u; v; up; version } =
  Format.fprintf ppf "link(%d, %d) %s v%d" u v
    (if up then "up" else "down")
    version

let changed_count t = Link_tbl.length t.versions
