type mode = Hop_by_hop | Ideal | Reliable

type reliability = {
  rto : float;
  rto_max : float;
  max_retries : int;
  adaptive : bool;
}

let default_reliability =
  { rto = 4.0; rto_max = 64.0; max_retries = 10; adaptive = false }

(* Worst-case simulated time (in t_hop multiples) between a transfer's
   first transmission and its giveup: the sum of all max_retries + 1
   waits, each double the last up to rto_max.  Adaptive mode may start
   anywhere in [rto, rto_max], so its worst case starts at the cap. *)
let giveup_span_hops rel =
  let initial = if rel.adaptive then rel.rto_max else rel.rto in
  let rec go timeout i acc =
    if i > rel.max_retries then acc
    else go (Float.min (2.0 *. timeout) rel.rto_max) (i + 1) (acc +. timeout)
  in
  go initial 0 0.0

type transmit = src:int -> dst:int -> base_delay:float -> float list

(* Retransmit state for one in-flight (src, dst, lsa) transfer.  Entries
   live in [pending] and age out on ack or on retry exhaustion.
   [rtx_first] is the trace id of the first data copy's forward event;
   retransmissions and the final abandonment hang off it causally. *)
type rtx = {
  mutable rtx_handle : Sim.Engine.handle option;
  mutable tries : int;
  mutable timeout : float;
  rtx_first : int;
  rtx_sent_at : float;  (* first transmission time — the RTT sample base *)
  rtx_origin : int;
  rtx_seq : int;
  rtx_giveup : unit -> unit;
      (* Stored so an external cancellation ({!abandon_link}) resolves
         the transfer through the same single giveup path the timer
         uses; removal from [pending] before either call site fires it
         makes exactly-once structural. *)
}

(* Jacobson/Karn smoothed RTT state for one directed adjacency. *)
type rtt_est = { mutable srtt : float; mutable rttvar : float }

type 'a t = {
  engine : Sim.Engine.t;
  graph : Net.Graph.t;
  t_hop : float;
  mode : mode;
  rel : reliability;
  transmit : transmit;
  deliver : switch:int -> 'a Lsa.t -> unit;
  trace : Sim.Trace.t;
  metrics : Metrics.Registry.t option;
  series : Metrics.Series.t;
  seen : (int * int, unit) Hashtbl.t array;
      (** Per switch: (origin, seq) pairs already received. *)
  pending : (int * int * (int * int), rtx) Hashtbl.t;
      (** Reliable mode: (src, dst, lsa id) transfers awaiting an ack. *)
  rtt : (int * int, rtt_est) Hashtbl.t;
      (** Adaptive reliable mode: per directed adjacency SRTT/RTTVAR. *)
  mutable floods : int;
  mutable messages : int;
  mutable acks : int;
  mutable rtx_count : int;
  mutable abandoned : int;
}

let default_transmit ~src:_ ~dst:_ ~base_delay = [ base_delay ]

let create ~engine ~graph ~t_hop ?(mode = Hop_by_hop)
    ?(reliability = default_reliability) ?(transmit = default_transmit)
    ?(trace = Sim.Trace.disabled) ?metrics
    ?(series = Metrics.Series.disabled) ~deliver () =
  if t_hop <= 0.0 then invalid_arg "Flooding.create: t_hop must be positive";
  if reliability.rto <= 2.0 then
    invalid_arg
      "Flooding.create: rto must exceed 2 hop times (one ack round trip)";
  if reliability.rto_max < reliability.rto then
    invalid_arg "Flooding.create: rto_max must be >= rto";
  if reliability.max_retries < 0 then
    invalid_arg "Flooding.create: max_retries must be non-negative";
  {
    engine;
    graph;
    t_hop;
    mode;
    rel = reliability;
    transmit;
    deliver;
    trace;
    metrics;
    series;
    seen = Array.init (Net.Graph.n_nodes graph) (fun _ -> Hashtbl.create 64);
    pending = Hashtbl.create 64;
    rtt = Hashtbl.create 16;
    floods = 0;
    messages = 0;
    acks = 0;
    rtx_count = 0;
    abandoned = 0;
  }

let bump t ?switch name =
  match t.metrics with
  | Some m -> Metrics.Registry.incr m ?switch name
  | None -> ()

let traced t = Sim.Trace.enabled t.trace

let now t = Sim.Engine.now t.engine

(* Schedule every surviving copy of one link transmission.  Link state is
   re-checked at arrival time, so a message in flight over a link that
   fails is lost, as on a real wire. *)
let transmit_copies t ~src ~dst k =
  List.iter
    (fun delay ->
      ignore
        (Sim.Engine.schedule t.engine ~delay (fun () ->
             if Net.Graph.link_is_up t.graph src dst then k ())))
    (t.transmit ~src ~dst ~base_delay:t.t_hop)

(* Trace + schedule the copies of one data transmission; returns the
   forward's trace id (-1 untraced).  [k fid] runs per copy that arrives
   over a live link; fault losses and mid-flight link failures leave
   [Lsa_dropped] children on the forward event instead. *)
(* Flight-recorder sampling.  Both sites are guarded on [Series.enabled]
   at the call site — the guard is one field read, and the float
   arguments ([now t], the pending count) would otherwise box even when
   recording is off. *)
let record_lsa t =
  Metrics.Series.add t.series ~name:"flood.lsas" ~time:(now t) 1.0

let record_inflight t =
  Metrics.Series.add t.series ~name:"flood.inflight_rtx" ~time:(now t)
    (float_of_int (Hashtbl.length t.pending))

let send_data t ~src ~dst ~retransmit ~parent lsa k =
  if Metrics.Series.enabled t.series then record_lsa t;
  let origin = lsa.Lsa.origin and seq = lsa.Lsa.seq in
  let fid =
    if traced t then
      Sim.Trace.emit t.trace ~time:(now t)
        ?parent:(if parent >= 0 then Some parent else None)
        (Lsa_forwarded { src; dst; origin; seq; retransmit })
    else -1
  in
  let copies = t.transmit ~src ~dst ~base_delay:t.t_hop in
  if copies = [] && traced t then
    ignore
      (Sim.Trace.emit t.trace ~time:(now t) ~parent:fid
         (Lsa_dropped { src; dst; origin; seq; reason = "fault" }));
  List.iter
    (fun delay ->
      ignore
        (Sim.Engine.schedule t.engine ~delay (fun () ->
             if Net.Graph.link_is_up t.graph src dst then k fid
             else if traced t then
               ignore
                 (Sim.Trace.emit t.trace ~time:(now t) ~parent:fid
                    (Lsa_dropped { src; dst; origin; seq; reason = "link-down" })))))
    copies;
  fid

let deliver_traced t lsa ~switch ~source ~fid k =
  let did =
    if traced t then
      Sim.Trace.emit t.trace ~time:(now t) ~parent:fid
        (Lsa_delivered
           { switch; source; origin = lsa.Lsa.origin; seq = lsa.Lsa.seq })
    else -1
  in
  Sim.Trace.with_context t.trace did (fun () ->
      t.deliver ~switch lsa;
      k did)

(* ------------------------------------------------------------------ *)
(* Hop-by-hop (fire and forget) *)

let rec receive t lsa ~at:switch ~from ~fid =
  let key = Lsa.id lsa in
  if not (Hashtbl.mem t.seen.(switch) key) then begin
    Hashtbl.replace t.seen.(switch) key ();
    deliver_traced t lsa ~switch ~source:from ~fid (fun did ->
        (* Forward on every live link except the arrival link. *)
        List.iter
          (fun (next, _) ->
            if next <> from then begin
              t.messages <- t.messages + 1;
              bump t ~switch "flood.messages";
              ignore
                (send_data t ~src:switch ~dst:next ~retransmit:false
                   ~parent:did lsa (fun fid ->
                     receive t lsa ~at:next ~from:switch ~fid))
            end)
          (Net.Graph.neighbors t.graph switch))
  end

(* ------------------------------------------------------------------ *)
(* Reliable (ack + retransmit) *)

(* Abandon one pending transfer: age the entry out, account, leave the
   trace breadcrumb, and fire its giveup callback.  Both callers remove
   the entry from [pending] before anything observable runs, so a
   transfer's giveup can fire at most once however the timer and an
   external {!abandon_link} interleave. *)
let drop_pending t key rtx ~reason =
  let src, dst, _ = key in
  Hashtbl.remove t.pending key;
  if Metrics.Series.enabled t.series then record_inflight t;
  t.abandoned <- t.abandoned + 1;
  bump t ~switch:src "flood.abandoned";
  if traced t then
    ignore
      (Sim.Trace.emit t.trace ~time:(now t) ~parent:rtx.rtx_first
         (Lsa_dropped
            { src; dst; origin = rtx.rtx_origin; seq = rtx.rtx_seq; reason }));
  rtx.rtx_giveup ()

(* Initial retransmit timeout for a fresh transfer.  The static mode uses
   the configured rto; adaptive mode uses the Jacobson estimate
   srtt + 4·rttvar for the destination when samples exist, clamped into
   [rto, rto_max] so the configured bounds still hold. *)
let initial_rto t ~src ~dst =
  let floor_ = t.rel.rto *. t.t_hop in
  if not t.rel.adaptive then floor_
  else
    match Hashtbl.find_opt t.rtt (src, dst) with
    | None -> floor_
    | Some est ->
      Float.max floor_
        (Float.min
           (est.srtt +. (4.0 *. est.rttvar))
           (t.rel.rto_max *. t.t_hop))

(* Fold one ack round-trip sample into the estimator (RFC 6298 smoothing:
   rttvar ← 3/4·rttvar + 1/4·|srtt − s|, srtt ← 7/8·srtt + 1/8·s). *)
let note_rtt t ~src ~dst sample =
  (match Hashtbl.find_opt t.rtt (src, dst) with
  | None -> Hashtbl.replace t.rtt (src, dst) { srtt = sample; rttvar = sample /. 2.0 }
  | Some est ->
    est.rttvar <- (0.75 *. est.rttvar) +. (0.25 *. Float.abs (est.srtt -. sample));
    est.srtt <- (0.875 *. est.srtt) +. (0.125 *. sample));
  bump t ~switch:src "flood.rtt_samples";
  match t.metrics with
  | Some m -> Metrics.Registry.observe m ~switch:src "flood.rtt" sample
  | None -> ()

(* [arrive fid] runs per data copy landing over a live link (flood
   forwarding or unicast terminal delivery); the giveup stored in the
   entry fires once when retries are exhausted — unicast
   resynchronisation uses it to count a neighbor exchange as failed. *)
let rec arm_retransmit t key lsa rtx ~arrive =
  let src, dst, _ = key in
  rtx.rtx_handle <-
    Some
      (Sim.Engine.schedule t.engine ~delay:rtx.timeout (fun () ->
           (* The entry is removed the moment an ack arrives (or the
              transfer is externally abandoned), so reaching this point
              with it still present means the transfer is live and
              unacknowledged. *)
           if Hashtbl.mem t.pending key then
             if rtx.tries >= t.rel.max_retries then
               drop_pending t key rtx ~reason:"abandoned"
             else begin
               rtx.tries <- rtx.tries + 1;
               t.rtx_count <- t.rtx_count + 1;
               bump t ~switch:src "flood.retransmissions";
               ignore
                 (send_data t ~src ~dst ~retransmit:true ~parent:rtx.rtx_first
                    lsa arrive);
               rtx.timeout <-
                 Float.min (2.0 *. rtx.timeout) (t.rel.rto_max *. t.t_hop);
               arm_retransmit t key lsa rtx ~arrive
             end))

and start_reliable t ~src ~dst ~parent ~arrive ~on_giveup lsa =
  let key = (src, dst, Lsa.id lsa) in
  if not (Hashtbl.mem t.pending key) then begin
    t.messages <- t.messages + 1;
    bump t ~switch:src "flood.messages";
    let fid = send_data t ~src ~dst ~retransmit:false ~parent lsa arrive in
    let rtx =
      {
        rtx_handle = None;
        tries = 0;
        timeout = initial_rto t ~src ~dst;
        rtx_first = fid;
        rtx_sent_at = now t;
        rtx_origin = lsa.Lsa.origin;
        rtx_seq = lsa.Lsa.seq;
        rtx_giveup = on_giveup;
      }
    in
    Hashtbl.add t.pending key rtx;
    if Metrics.Series.enabled t.series then record_inflight t;
    arm_retransmit t key lsa rtx ~arrive
  end

and send_reliable t ~src ~dst ~parent lsa =
  start_reliable t ~src ~dst ~parent lsa
    ~arrive:(fun fid -> receive_reliable t lsa ~at:dst ~from:src ~fid)
    ~on_giveup:(fun () -> ())

and send_ack t ~src ~dst key =
  t.acks <- t.acks + 1;
  bump t ~switch:src "flood.acks";
  transmit_copies t ~src ~dst (fun () -> ack_received t key)

and ack_received t key =
  match Hashtbl.find_opt t.pending key with
  | Some rtx ->
    Option.iter Sim.Engine.cancel rtx.rtx_handle;
    Hashtbl.remove t.pending key;
    if Metrics.Series.enabled t.series then record_inflight t;
    (* Karn's rule: only transfers acked without any retransmission
       yield an RTT sample — after a retry the ack is ambiguous. *)
    if t.rel.adaptive && rtx.tries = 0 then begin
      let src, dst, _ = key in
      note_rtt t ~src ~dst (now t -. rtx.rtx_sent_at)
    end
  | None -> ()  (* late duplicate ack, or the sender already gave up *)

and receive_reliable t lsa ~at:switch ~from ~fid =
  (* Every arriving copy is acked, duplicates included: this copy may be
     a retransmission whose predecessor's ack was lost. *)
  send_ack t ~src:switch ~dst:from (from, switch, Lsa.id lsa);
  let key = Lsa.id lsa in
  if not (Hashtbl.mem t.seen.(switch) key) then begin
    Hashtbl.replace t.seen.(switch) key ();
    deliver_traced t lsa ~switch ~source:from ~fid (fun did ->
        List.iter
          (fun (next, _) ->
            if next <> from then
              send_reliable t ~src:switch ~dst:next ~parent:did lsa)
          (Net.Graph.neighbors t.graph switch))
  end

(* Unicast terminal delivery: ack and dedup like a flood hop, but never
   forward — the payload is addressed to [switch] alone. *)
and receive_unicast t lsa ~at:switch ~from ~fid =
  send_ack t ~src:switch ~dst:from (from, switch, Lsa.id lsa);
  let key = Lsa.id lsa in
  if not (Hashtbl.mem t.seen.(switch) key) then begin
    Hashtbl.replace t.seen.(switch) key ();
    deliver_traced t lsa ~switch ~source:from ~fid (fun _ -> ())
  end

(* ------------------------------------------------------------------ *)

let send t ~src ~dst ?(on_giveup = fun () -> ()) lsa =
  if not (Net.Graph.has_edge t.graph src dst) then
    invalid_arg (Printf.sprintf "Flooding.send: no link (%d, %d)" src dst);
  let parent = Sim.Trace.context t.trace in
  match t.mode with
  | Reliable ->
    Hashtbl.replace t.seen.(src) (Lsa.id lsa) ();
    start_reliable t ~src ~dst ~parent lsa
      ~arrive:(fun fid -> receive_unicast t lsa ~at:dst ~from:src ~fid)
      ~on_giveup
  | Hop_by_hop | Ideal ->
    (* Fire and forget: one copy, lost if the link is down at arrival.
       No acks means no giveup signal either — callers needing liveness
       under these modes must rely on their own deadlines. *)
    t.messages <- t.messages + 1;
    bump t ~switch:src "flood.messages";
    ignore
      (send_data t ~src ~dst ~retransmit:false ~parent lsa (fun fid ->
           deliver_traced t lsa ~switch:dst ~source:src ~fid (fun _ -> ())))

let flood_impl t lsa =
  t.floods <- t.floods + 1;
  let origin = lsa.Lsa.origin in
  bump t ~switch:origin "flood.floods";
  (* The ambient context at flood time (normally the Lsa_originated
     event) roots the whole propagation tree; it must be captured here
     because the per-copy callbacks run later, under other contexts. *)
  let parent = Sim.Trace.context t.trace in
  match t.mode with
  | Hop_by_hop ->
    Hashtbl.replace t.seen.(origin) (Lsa.id lsa) ();
    List.iter
      (fun (next, _) ->
        t.messages <- t.messages + 1;
        bump t ~switch:origin "flood.messages";
        ignore
          (send_data t ~src:origin ~dst:next ~retransmit:false ~parent lsa
             (fun fid -> receive t lsa ~at:next ~from:origin ~fid)))
      (Net.Graph.neighbors t.graph origin)
  | Reliable ->
    Hashtbl.replace t.seen.(origin) (Lsa.id lsa) ();
    List.iter
      (fun (next, _) -> send_reliable t ~src:origin ~dst:next ~parent lsa)
      (Net.Graph.neighbors t.graph origin)
  | Ideal ->
    let hops = Net.Bfs.hops t.graph origin in
    Array.iteri
      (fun switch h ->
        if switch <> origin && h <> max_int then begin
          t.messages <- t.messages + 1;
          bump t ~switch:origin "flood.messages";
          ignore
            (Sim.Engine.schedule t.engine
               ~delay:(float_of_int h *. t.t_hop)
               (fun () ->
                 deliver_traced t lsa ~switch ~source:origin ~fid:parent
                   (fun _ -> ())))
        end)
      hops

let flood t lsa =
  let ph = Metrics.Phase.ambient () in
  Metrics.Phase.enter ph "flood.dispatch";
  match flood_impl t lsa with
  | () -> Metrics.Phase.leave ph
  | exception e ->
    Metrics.Phase.leave ph;
    raise e

let floods_started t = t.floods

let messages_sent t = t.messages

let acks_sent t = t.acks

let retransmissions t = t.rtx_count

let deliveries_abandoned t = t.abandoned

let pending_retransmits t = Hashtbl.length t.pending

(* A failure detector declared [dst] unreachable from [src]: cancel every
   transfer still spinning toward it instead of letting each burn through
   its remaining backoff.  Keys are collected then sorted, so giveup
   callbacks fire in a deterministic order independent of hash layout. *)
let abandon_link t ~src ~dst =
  let keys =
    Hashtbl.fold
      (fun ((s, d, _) as key) _ acc ->
        if s = src && d = dst then key :: acc else acc)
      t.pending []
    |> List.sort (fun (_, _, (ao, as_)) (_, _, (bo, bs)) ->
           match Int.compare ao bo with 0 -> Int.compare as_ bs | c -> c)
  in
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.pending key with
      | Some rtx ->
        Option.iter Sim.Engine.cancel rtx.rtx_handle;
        drop_pending t key rtx ~reason:"neighbor-down"
      | None -> ())
    keys;
  List.length keys

let rtt_estimate t ~src ~dst =
  Option.map
    (fun est -> (est.srtt, est.rttvar))
    (Hashtbl.find_opt t.rtt (src, dst))

let reset_counters t =
  t.floods <- 0;
  t.messages <- 0;
  t.acks <- 0;
  t.rtx_count <- 0;
  t.abandoned <- 0

let flood_diameter ~graph ~t_hop =
  float_of_int (Net.Bfs.hop_diameter graph) *. t_hop
