type event =
  | Lsa_originated of {
      switch : int;
      mc : string;
      seq : int;
      ev : string;
      proposal : bool;
      stamp : int array;
    }
  | Lsa_forwarded of {
      src : int;
      dst : int;
      origin : int;
      seq : int;
      retransmit : bool;
    }
  | Lsa_delivered of { switch : int; source : int; origin : int; seq : int }
  | Lsa_dropped of { src : int; dst : int; origin : int; seq : int; reason : string }
  | Compute_started of { switch : int; mc : string; trigger : string; r : int array }
  | Proposal_made of { switch : int; mc : string; withdrawn : bool; stamp : int array }
  | Topology_installed of {
      switch : int;
      mc : string;
      r : int array;
      e : int array;
      c : int array;
      members : string;
      tree : string;
    }
  | Fault_injected of { src : int; dst : int; fault : string }
  | Crash of { switch : int }
  | Recover of { switch : int }
  | Resync of { switch : int; peer : int; mc : string }
  | Link_detected of {
      switch : int;
      peer : int;
      up : bool;
      latency : float;
      spurious : bool;
    }
  | Link_suppressed of { switch : int; peer : int; resumed : bool }
  | Note of { category : string; message : string }

type entry = { id : int; parent : int; time : float; event : event }

type t = {
  keep : bool;
  echo : bool;
  cap : int;
  cats : string list option;
  mutable buf : entry array;
  mutable start : int;  (* index of the oldest retained entry *)
  mutable len : int;
  mutable next_id : int;
  mutable evicted : int;
  mutable ctx : int;
}

let default_cap = 1_000_000

let create ?(keep = true) ?(echo = false) ?(cap = default_cap) ?cats () =
  if cap < 1 then invalid_arg "Trace.create: cap must be positive";
  {
    keep;
    echo;
    cap;
    cats;
    buf = [||];
    start = 0;
    len = 0;
    next_id = 0;
    evicted = 0;
    ctx = -1;
  }

let disabled =
  {
    keep = false;
    echo = false;
    cap = 1;
    cats = None;
    buf = [||];
    start = 0;
    len = 0;
    next_id = 0;
    evicted = 0;
    ctx = -1;
  }

let enabled t = t.keep || t.echo

let category = function
  | Lsa_originated _ -> "flood"
  | Lsa_forwarded _ -> "forward"
  | Lsa_delivered _ -> "deliver"
  | Lsa_dropped _ -> "drop"
  | Compute_started _ -> "compute"
  | Proposal_made _ -> "proposal"
  | Topology_installed _ -> "install"
  | Fault_injected _ -> "fault"
  | Crash _ -> "crash"
  | Recover _ -> "recover"
  | Resync _ -> "resync"
  | Link_detected _ -> "detect"
  | Link_suppressed _ -> "suppress"
  | Note n -> n.category

(* ------------------------------------------------------------------ *)
(* Human rendering *)

let pp_vec ppf v =
  Format.pp_print_char ppf '[';
  Array.iteri
    (fun i x ->
      if i > 0 then Format.pp_print_char ppf ' ';
      Format.pp_print_int ppf x)
    v;
  Format.pp_print_char ppf ']'

let message = function
  | Lsa_originated { switch; mc; seq; ev; proposal; stamp } ->
    Format.asprintf "switch %d originates lsa seq=%d%s ev=%s%s stamp=%a" switch
      seq
      (if String.equal mc "" then "" else " mc=" ^ mc)
      ev
      (if proposal then " +proposal" else "")
      pp_vec stamp
  | Lsa_forwarded { src; dst; origin; seq; retransmit } ->
    Format.asprintf "%d->%d lsa %d/%d%s" src dst origin seq
      (if retransmit then " (retransmit)" else "")
  | Lsa_delivered { switch; source; origin; seq } ->
    Format.asprintf "switch %d receives lsa %d/%d from %d" switch origin seq
      source
  | Lsa_dropped { src; dst; origin; seq; reason } ->
    Format.asprintf "%d->%d lsa %d/%d lost (%s)" src dst origin seq reason
  | Compute_started { switch; mc; trigger; r } ->
    Format.asprintf "switch %d computes mc=%s on %s r=%a" switch mc trigger
      pp_vec r
  | Proposal_made { switch; mc; withdrawn; stamp } ->
    Format.asprintf "switch %d %s mc=%s stamp=%a" switch
      (if withdrawn then "withdraws proposal" else "proposes tree")
      mc pp_vec stamp
  | Topology_installed { switch; mc; r; e; c; members; tree } ->
    Format.asprintf "switch %d installs mc=%s r=%a e=%a c=%a members=%s tree=%s"
      switch mc pp_vec r pp_vec e pp_vec c members tree
  | Fault_injected { src; dst; fault } ->
    Format.asprintf "fault %s on %d->%d" fault src dst
  | Crash { switch } -> Format.asprintf "switch %d crashes" switch
  | Recover { switch } -> Format.asprintf "switch %d recovers" switch
  | Resync { switch; peer; mc } ->
    Format.asprintf "switch %d resyncs mc=%s from %d" switch mc peer
  | Link_detected { switch; peer; up; latency; spurious } ->
    Format.asprintf "switch %d detects link %d-%d %s%s" switch switch peer
      (if up then "up" else "down")
      (if spurious then " (spurious)"
       else
         (* dgmc-analyze: allow float-format — human-readable timeline view *)
         Printf.sprintf " (latency %gs)" latency)
  | Link_suppressed { switch; peer; resumed } ->
    Format.asprintf "switch %d %s link %d-%d" switch
      (if resumed then "releases" else "suppresses")
      switch peer
  | Note n -> n.message

let pp_entry ppf e =
  (* dgmc-analyze: allow float-format — human-readable timeline view; the
     trace JSON writer emits times via Json.number *)
  Format.fprintf ppf "[%12.6f] #%-5d %s%-10s %s" e.time e.id
    (if e.parent >= 0 then Printf.sprintf "<-#%-5d " e.parent else "         ")
    (category e.event) (message e.event)

(* ------------------------------------------------------------------ *)
(* Emission *)

let retains t ev =
  match t.cats with
  | None -> true
  | Some cats -> List.exists (String.equal (category ev)) cats

let push t e =
  let capacity = Array.length t.buf in
  if t.len < t.cap then begin
    (* Still growing: [start] is 0 and entries are densely packed. *)
    if t.len = capacity then begin
      let grown = Array.make (min t.cap (max 256 (2 * capacity))) e in
      Array.blit t.buf 0 grown 0 t.len;
      t.buf <- grown
    end;
    t.buf.(t.len) <- e;
    t.len <- t.len + 1
  end
  else begin
    (* Full: overwrite the oldest. [capacity = cap] from the growth rule. *)
    t.buf.(t.start) <- e;
    t.start <- (t.start + 1) mod capacity;
    t.evicted <- t.evicted + 1
  end

let emit t ~time ?parent event =
  if not (enabled t) then -1
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let parent = match parent with Some p -> p | None -> t.ctx in
    let e = { id; parent; time; event } in
    if t.echo then Format.eprintf "%a@." pp_entry e;
    if t.keep && retains t event then push t e;
    id
  end

let context t = t.ctx

let with_context t id f =
  if id < 0 then f ()
  else begin
    let saved = t.ctx in
    t.ctx <- id;
    match f () with
    | v ->
      t.ctx <- saved;
      v
    | exception exn ->
      t.ctx <- saved;
      raise exn
  end

let record t ~time ~category message =
  if enabled t then ignore (emit t ~time (Note { category; message }))

let recordf t ~time ~category fmt =
  if enabled t then
    Format.kasprintf (fun message -> record t ~time ~category message) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

(* ------------------------------------------------------------------ *)
(* Accessors *)

let nth t i = t.buf.((t.start + i) mod Array.length t.buf)

let entries t = List.init t.len (nth t)

let count t = t.len

let count_category t cat =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if String.equal (category (nth t i).event) cat then incr n
  done;
  !n

let emitted t = t.next_id

let dropped t = t.evicted

let clear t =
  t.buf <- [||];
  t.start <- 0;
  t.len <- 0;
  t.next_id <- 0;
  t.evicted <- 0;
  t.ctx <- -1

(* ------------------------------------------------------------------ *)
(* JSONL: schema dgmc-trace/1 *)

let schema = "dgmc-trace/1"

let field_int b key v =
  Buffer.add_string b ",\"";
  Buffer.add_string b key;
  Buffer.add_string b "\":";
  Buffer.add_string b (string_of_int v)

let field_str b key v =
  Buffer.add_string b ",\"";
  Buffer.add_string b key;
  Buffer.add_string b "\":\"";
  Buffer.add_string b (Json.escape v);
  Buffer.add_char b '"'

let field_bool b key v =
  Buffer.add_string b ",\"";
  Buffer.add_string b key;
  Buffer.add_string b (if v then "\":true" else "\":false")

let field_vec b key v =
  Buffer.add_string b ",\"";
  Buffer.add_string b key;
  Buffer.add_string b "\":[";
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int x))
    v;
  Buffer.add_char b ']'

let add_event b = function
  | Lsa_originated { switch; mc; seq; ev; proposal; stamp } ->
    field_str b "kind" "lsa-originated";
    field_int b "switch" switch;
    field_str b "mc" mc;
    field_int b "seq" seq;
    field_str b "ev" ev;
    field_bool b "proposal" proposal;
    field_vec b "stamp" stamp
  | Lsa_forwarded { src; dst; origin; seq; retransmit } ->
    field_str b "kind" "lsa-forwarded";
    field_int b "src" src;
    field_int b "dst" dst;
    field_int b "origin" origin;
    field_int b "seq" seq;
    field_bool b "retransmit" retransmit
  | Lsa_delivered { switch; source; origin; seq } ->
    field_str b "kind" "lsa-delivered";
    field_int b "switch" switch;
    field_int b "source" source;
    field_int b "origin" origin;
    field_int b "seq" seq
  | Lsa_dropped { src; dst; origin; seq; reason } ->
    field_str b "kind" "lsa-dropped";
    field_int b "src" src;
    field_int b "dst" dst;
    field_int b "origin" origin;
    field_int b "seq" seq;
    field_str b "reason" reason
  | Compute_started { switch; mc; trigger; r } ->
    field_str b "kind" "compute-started";
    field_int b "switch" switch;
    field_str b "mc" mc;
    field_str b "trigger" trigger;
    field_vec b "r" r
  | Proposal_made { switch; mc; withdrawn; stamp } ->
    field_str b "kind" "proposal-made";
    field_int b "switch" switch;
    field_str b "mc" mc;
    field_bool b "withdrawn" withdrawn;
    field_vec b "stamp" stamp
  | Topology_installed { switch; mc; r; e; c; members; tree } ->
    field_str b "kind" "topology-installed";
    field_int b "switch" switch;
    field_str b "mc" mc;
    field_vec b "r" r;
    field_vec b "e" e;
    field_vec b "c" c;
    field_str b "members" members;
    field_str b "tree" tree
  | Fault_injected { src; dst; fault } ->
    field_str b "kind" "fault-injected";
    field_int b "src" src;
    field_int b "dst" dst;
    field_str b "fault" fault
  | Crash { switch } ->
    field_str b "kind" "crash";
    field_int b "switch" switch
  | Recover { switch } ->
    field_str b "kind" "recover";
    field_int b "switch" switch
  | Resync { switch; peer; mc } ->
    field_str b "kind" "resync";
    field_int b "switch" switch;
    field_int b "peer" peer;
    field_str b "mc" mc
  | Link_detected { switch; peer; up; latency; spurious } ->
    field_str b "kind" "link-detected";
    field_int b "switch" switch;
    field_int b "peer" peer;
    field_bool b "up" up;
    Buffer.add_string b ",\"latency\":";
    Buffer.add_string b (Json.number latency);
    field_bool b "spurious" spurious
  | Link_suppressed { switch; peer; resumed } ->
    field_str b "kind" "link-suppressed";
    field_int b "switch" switch;
    field_int b "peer" peer;
    field_bool b "resumed" resumed
  | Note { category; message } ->
    field_str b "kind" "note";
    field_str b "cat" category;
    field_str b "msg" message

let to_jsonl t =
  let b = Buffer.create (256 * (t.len + 1)) in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":\"%s\",\"emitted\":%d,\"dropped\":%d}\n" schema
       (emitted t) (dropped t));
  for i = 0 to t.len - 1 do
    let e = nth t i in
    Buffer.add_string b "{\"id\":";
    Buffer.add_string b (string_of_int e.id);
    Buffer.add_string b ",\"parent\":";
    Buffer.add_string b (string_of_int e.parent);
    Buffer.add_string b ",\"t\":";
    Buffer.add_string b (Json.number e.time);
    add_event b e.event;
    Buffer.add_string b "}\n"
  done;
  Buffer.contents b

let write_jsonl t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl t))

type archive = { a_emitted : int; a_dropped : int; a_entries : entry list }

let get name conv json =
  match Option.bind (Json.member name json) conv with
  | Some v -> v
  | None -> failwith (Printf.sprintf "missing or ill-typed field %S" name)

let get_vec name json =
  let items = get name Json.to_list json in
  Array.of_list
    (List.map
       (fun j ->
         match Json.to_int j with
         | Some x -> x
         | None -> failwith (Printf.sprintf "non-integer in vector %S" name))
       items)

let event_of_json json =
  let int n = get n Json.to_int json
  and str n = get n Json.to_string json
  and bool n = get n Json.to_bool json
  and vec n = get_vec n json in
  match get "kind" Json.to_string json with
  | "lsa-originated" ->
    Lsa_originated
      {
        switch = int "switch";
        mc = str "mc";
        seq = int "seq";
        ev = str "ev";
        proposal = bool "proposal";
        stamp = vec "stamp";
      }
  | "lsa-forwarded" ->
    Lsa_forwarded
      {
        src = int "src";
        dst = int "dst";
        origin = int "origin";
        seq = int "seq";
        retransmit = bool "retransmit";
      }
  | "lsa-delivered" ->
    Lsa_delivered
      {
        switch = int "switch";
        source = int "source";
        origin = int "origin";
        seq = int "seq";
      }
  | "lsa-dropped" ->
    Lsa_dropped
      {
        src = int "src";
        dst = int "dst";
        origin = int "origin";
        seq = int "seq";
        reason = str "reason";
      }
  | "compute-started" ->
    Compute_started
      { switch = int "switch"; mc = str "mc"; trigger = str "trigger"; r = vec "r" }
  | "proposal-made" ->
    Proposal_made
      {
        switch = int "switch";
        mc = str "mc";
        withdrawn = bool "withdrawn";
        stamp = vec "stamp";
      }
  | "topology-installed" ->
    Topology_installed
      {
        switch = int "switch";
        mc = str "mc";
        r = vec "r";
        e = vec "e";
        c = vec "c";
        members = str "members";
        tree = str "tree";
      }
  | "fault-injected" ->
    Fault_injected { src = int "src"; dst = int "dst"; fault = str "fault" }
  | "crash" -> Crash { switch = int "switch" }
  | "recover" -> Recover { switch = int "switch" }
  | "resync" -> Resync { switch = int "switch"; peer = int "peer"; mc = str "mc" }
  | "link-detected" ->
    Link_detected
      {
        switch = int "switch";
        peer = int "peer";
        up = bool "up";
        latency = get "latency" Json.to_float json;
        spurious = bool "spurious";
      }
  | "link-suppressed" ->
    Link_suppressed
      { switch = int "switch"; peer = int "peer"; resumed = bool "resumed" }
  | "note" -> Note { category = str "cat"; message = str "msg" }
  | kind -> failwith (Printf.sprintf "unknown event kind %S" kind)

let of_jsonl text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> not (String.equal (String.trim l) ""))
  in
  match lines with
  | [] -> Error "empty trace"
  | header :: rest -> (
    let parse_line lineno line k =
      match Json.parse line with
      | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
      | Ok json -> (
        match k json with
        | v -> Ok v
        | exception Failure e -> Error (Printf.sprintf "line %d: %s" lineno e))
    in
    let header_result =
      parse_line 1 header (fun json ->
          let s = get "schema" Json.to_string json in
          if not (String.equal s schema) then
            failwith (Printf.sprintf "unsupported schema %S (want %S)" s schema);
          (get "emitted" Json.to_int json, get "dropped" Json.to_int json))
    in
    match header_result with
    | Error _ as e -> e
    | Ok (a_emitted, a_dropped) -> (
      let rec go lineno acc = function
        | [] -> Ok { a_emitted; a_dropped; a_entries = List.rev acc }
        | line :: rest -> (
          let entry =
            parse_line lineno line (fun json ->
                {
                  id = get "id" Json.to_int json;
                  parent = get "parent" Json.to_int json;
                  time = get "t" Json.to_float json;
                  event = event_of_json json;
                })
          in
          match entry with
          | Error _ as e -> e
          | Ok e -> go (lineno + 1) (e :: acc) rest)
      in
      go 2 [] rest))

let read_jsonl ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_jsonl text
  | exception Sys_error e -> Error e
