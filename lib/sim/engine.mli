(** Discrete-event simulation engine.

    The engine advances a virtual clock by executing scheduled thunks in
    time order (FIFO among equal times).  It replaces the CSIM package the
    paper's study used: protocol entities are modelled as callbacks that
    schedule further work, rather than as coroutines, which is sufficient
    because D-GMC switches only react to message arrivals, local events and
    computation completions.

    Typical use:
    {[
      let eng = Engine.create () in
      ignore (Engine.schedule eng ~delay:1.0 (fun () -> ...));
      Engine.run eng
    ]} *)

type t

type handle = Event_queue.handle

val create : unit -> t
(** A fresh engine with clock at [0.0]. *)

val now : t -> float
(** Current virtual time. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay].  [delay] must be
    non-negative and finite. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** [schedule_at t ~time f] runs [f] at absolute [time], which must not be
    in the engine's past. *)

val cancel : handle -> unit
(** Cancel a pending action.  No-op if it already ran. *)

val pending : t -> int
(** Number of actions still scheduled. *)

val events_executed : t -> int
(** Total number of actions executed since creation. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Execute scheduled actions in order until the calendar drains, the
    clock would pass [until], or [max_events] actions have run.  When
    stopped by [until], the clock is left at [until] and later events
    remain pending. *)

val step : t -> bool
(** Execute the single next action.  Returns [false] if none was pending. *)

val set_probe : t -> (unit -> unit) -> unit
(** Install a telemetry probe invoked after every executed event, with
    the clock still at that event's time.  At most one probe is
    installed (a second call replaces the first); with none installed
    the per-event cost is a single pattern-match branch.  The probe
    observes — it must not schedule or cancel events, and a probe that
    raises aborts the run. *)

val clear_probe : t -> unit
(** Remove the installed probe, if any. *)

val stop : t -> unit
(** Request that [run] return after the action currently executing. *)

val reset : t -> unit
(** Drop all pending events and reset the clock to [0.0].  Counters are
    preserved so long-lived harnesses can keep global totals. *)
