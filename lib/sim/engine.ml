type handle = Event_queue.handle

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : float;
  mutable executed : int;
  mutable stop_requested : bool;
  mutable probe : (unit -> unit) option;
      (* Telemetry hook run after each executed event; [None] (the
         default) costs one pattern-match branch per step. *)
}

let create () =
  {
    queue = Event_queue.create ();
    clock = 0.0;
    executed = 0;
    stop_requested = false;
    probe = None;
  }

let now t = t.clock

let schedule t ~delay f =
  if not (Float.is_finite delay) || delay < 0.0 then
    invalid_arg "Engine.schedule: delay must be finite and non-negative";
  Event_queue.schedule t.queue ~time:(t.clock +. delay) f

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time is in the past";
  Event_queue.schedule t.queue ~time f

let cancel = Event_queue.cancel

let pending t = Event_queue.length t.queue

let events_executed t = t.executed

let set_probe t f = t.probe <- Some f

let clear_probe t = t.probe <- None

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    t.executed <- t.executed + 1;
    f ();
    (match t.probe with None -> () | Some probe -> probe ());
    true

let run ?until ?max_events t =
  t.stop_requested <- false;
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue do
    if t.stop_requested || !budget = 0 then continue := false
    else
      match Event_queue.peek_time t.queue with
      | None -> continue := false
      | Some time ->
        (match until with
        | Some horizon when time > horizon ->
          t.clock <- horizon;
          continue := false
        | Some _ | None ->
          ignore (step t);
          decr budget)
  done

let stop t = t.stop_requested <- true

let reset t =
  Event_queue.clear t.queue;
  t.clock <- 0.0;
  t.stop_requested <- false
