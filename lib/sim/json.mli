(** Minimal JSON values: a hand-rolled parser and printing helpers.

    The repo's serialization formats (dgmc-bench/1, dgmc-trace/1) are
    written by hand; this module is the matching reader, plus the string
    escaping and float rendering rules the writers share.  It supports
    the full JSON grammar (objects, arrays, strings with escapes,
    numbers, booleans, null) — enough to round-trip anything this
    codebase emits, with no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one complete JSON value; trailing non-whitespace is an error. *)

val escape : string -> string
(** Escape a string's content for embedding between double quotes. *)

val number : float -> string
(** Render a float: integral values without a fraction part, others with
    17 significant digits so parsing recovers the exact bits.  Non-finite
    values render as [null]. *)

val member : string -> t -> t option
(** [member key json] — field lookup on objects, [None] otherwise. *)

val to_float : t -> float option

val to_int : t -> int option
(** Numbers with an integral value only. *)

val to_string : t -> string option

val to_list : t -> t list option

val to_bool : t -> bool option
