type handle = { mutable cancelled : bool }

type 'a entry = { time : float; seq : int; payload : 'a; handle : handle }

type 'a t = { heap : 'a entry Heap.t; mutable next_seq : int }

let compare_entry a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () = { heap = Heap.create ~cmp:compare_entry; next_seq = 0 }

let schedule q ~time payload =
  if not (Float.is_finite time) then
    invalid_arg "Event_queue.schedule: non-finite time";
  let handle = { cancelled = false } in
  Heap.add q.heap { time; seq = q.next_seq; payload; handle };
  q.next_seq <- q.next_seq + 1;
  handle

let cancel handle = handle.cancelled <- true

let is_cancelled handle = handle.cancelled

(* Cancellation is lazy: a cancelled entry stays in the heap and is
   discarded when it surfaces. *)
let rec pop q =
  match Heap.pop q.heap with
  | None -> None
  | Some e -> if e.handle.cancelled then pop q else Some (e.time, e.payload)

let rec peek_time q =
  match Heap.peek q.heap with
  | None -> None
  | Some e ->
    if e.handle.cancelled then begin
      ignore (Heap.pop q.heap);
      peek_time q
    end
    else Some e.time

let length q =
  let count = ref 0 in
  List.iter
    (fun e -> if not e.handle.cancelled then incr count)
    (Heap.to_sorted_list q.heap);
  !count

let is_empty q = peek_time q = None

let clear q = Heap.clear q.heap
