(** Deterministic, splittable pseudo-random number generator.

    Every stochastic component of the simulator (topology generation,
    workload generation, jitter) draws from an explicit [Rng.t] so that a
    scenario is fully reproducible from its seed.  The generator is
    SplitMix64 (Steele, Lea & Flood 2014): tiny state, good statistical
    quality, and cheap splitting into independent streams. *)

type t

val create : int -> t
(** [create seed] is a fresh generator.  Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Use one split per subsystem so adding draws in one place does not
    perturb the stream seen by another. *)

val derive : master:int -> index:int -> t
(** [derive ~master ~index] is the generator for shard [index] of the
    stream family named by [master] — a pure function of both, so a
    parallel runner assigning one shard per task gets the same stream
    for a task no matter which worker runs it or in what order
    (contrast {!split}, which advances shared state).  [index >= 0]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val bool : t -> bool

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] (inclusive).  [lo <= hi]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean; used for Poisson
    inter-arrival times. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val pick_array : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] is [k] distinct elements of [xs] chosen uniformly
    (all of [xs] if [k >= List.length xs]).  Order is unspecified. *)
