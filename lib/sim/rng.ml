type t = { mutable state : int64 }

(* SplitMix64 constants. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 = next_int64

let split t =
  let seed = next_int64 t in
  { state = seed }

let derive ~master ~index =
  if index < 0 then invalid_arg "Rng.derive: negative index";
  (* A pure function of (master, index): jump the master stream to slot
     [index + 1] and mix once, so shard streams are independent of each
     other and of the order in which shards are executed. *)
  let t =
    {
      state =
        Int64.add (Int64.of_int master)
          (Int64.mul (Int64.of_int (index + 1)) golden_gamma);
    }
  in
  { state = next_int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int as a
     non-negative number. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  if bound <= 0. then invalid_arg "Rng.float: bound must be positive";
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  let unit = Int64.to_float bits /. 9007199254740992.0 in
  unit *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let range t lo hi =
  if lo > hi then invalid_arg "Rng.range: lo > hi";
  lo + int t (hi - lo + 1)

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean must be positive";
  let u = float t 1.0 in
  (* u is in [0, 1); 1 - u is in (0, 1] so log is finite. *)
  -.mean *. log (1.0 -. u)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_array: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t k xs =
  let a = Array.of_list xs in
  if k >= Array.length a then xs
  else begin
    shuffle t a;
    Array.to_list (Array.sub a 0 k)
  end
