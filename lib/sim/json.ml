type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Malformed of string

(* ------------------------------------------------------------------ *)
(* Printing helpers (shared by every hand-rolled JSON writer) *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* dgmc-analyze: allow float-format — %.0f on an exactly-integral float
       below 2^53 round-trips; non-integral values take the %.17g branch *)
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else "null"

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the input string *)

type cursor = { src : string; mutable pos : int }

let fail cur msg = raise (Malformed (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    cur.pos < String.length cur.src
    &&
    match cur.src.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some d when Char.equal c d -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.src
    && String.equal (String.sub cur.src cur.pos n) word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let utf8_of_code buf code =
  (* Encode a Unicode scalar value (from \uXXXX) as UTF-8 bytes. *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur with
      | None -> fail cur "unterminated escape"
      | Some c ->
        advance cur;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if cur.pos + 4 > String.length cur.src then fail cur "short \\u escape";
          let hex = String.sub cur.src cur.pos 4 in
          cur.pos <- cur.pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code -> utf8_of_code buf code
          | None -> fail cur "bad \\u escape")
        | _ -> fail cur "unknown escape"));
      go ()
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let numeric c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek cur with Some c when numeric c -> true | _ -> false do
    advance cur
  done;
  let text = String.sub cur.src start (cur.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail cur (Printf.sprintf "bad number %S" text)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if (match peek cur with Some '}' -> true | _ -> false) then begin
      advance cur;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws cur;
        let key = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        fields := (key, v) :: !fields;
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          members ()
        | Some '}' -> advance cur
        | _ -> fail cur "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if (match peek cur with Some ']' -> true | _ -> false) then begin
      advance cur;
      Arr []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value cur in
        items := v :: !items;
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          elements ()
        | Some ']' -> advance cur
        | _ -> fail cur "expected ',' or ']'"
      in
      elements ();
      Arr (List.rev !items)
    end
  | Some '"' -> Str (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some _ -> Num (parse_number cur)

let parse s =
  let cur = { src = s; pos = 0 } in
  match parse_value cur with
  | v ->
    skip_ws cur;
    if cur.pos <> String.length s then Error "trailing garbage after JSON value"
    else Ok v
  | exception Malformed msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
