(** Structured, causally-linked trace of simulation activity.

    A trace is a bounded sequence of {!entry} values: each carries a
    monotonically increasing event id, the id of the event that caused it
    (or [-1] for roots), the simulation time, and a structured {!event}
    payload.  LSA floods therefore replay as trees — an origination is
    the root, each per-link forward points at the origination (or at the
    delivery that triggered the forward), and each delivery points at the
    forward that carried it.

    Protocol code guards every emission with {!enabled}, so the hot path
    costs one branch when tracing is off: no payload is allocated, no id
    is assigned.  Enabled traces retain at most [cap] entries in a ring
    buffer (oldest evicted first, counted by {!dropped}).

    Traces serialize to JSON Lines under the versioned schema
    [dgmc-trace/1]: a header object followed by one object per entry.
    {!of_jsonl} inverts {!to_jsonl} exactly. *)

(** Structured payloads.  Conventions: [switch], [src], [dst], [peer]
    are switch ids; [origin]/[seq] identify an LSA instance network-wide;
    [mc] is the rendered MC identifier ([""] when not MC-specific, e.g.
    link-state LSAs); timestamp vectors ([stamp], [r], [e], [c]) are
    per-member event counts in member order. *)
type event =
  | Lsa_originated of {
      switch : int;
      mc : string;
      seq : int;
      ev : string;  (** what the LSA announces, e.g. [join]/[leave]/[link-down] *)
      proposal : bool;  (** does the LSA carry a tree proposal? *)
      stamp : int array;
    }
  | Lsa_forwarded of {
      src : int;
      dst : int;
      origin : int;
      seq : int;
      retransmit : bool;
    }
  | Lsa_delivered of { switch : int; source : int; origin : int; seq : int }
  | Lsa_dropped of {
      src : int;
      dst : int;
      origin : int;
      seq : int;
      reason : string;  (** [fault], [link-down] or [abandoned] *)
    }
  | Compute_started of { switch : int; mc : string; trigger : string; r : int array }
  | Proposal_made of {
      switch : int;
      mc : string;
      withdrawn : bool;
      stamp : int array;
    }
  | Topology_installed of {
      switch : int;
      mc : string;
      r : int array;
      e : int array;
      c : int array;
      members : string;
      tree : string;
    }
  | Fault_injected of { src : int; dst : int; fault : string }
  | Crash of { switch : int }
  | Recover of { switch : int }
  | Resync of { switch : int; peer : int; mc : string }
  | Link_detected of {
      switch : int;
      peer : int;
      up : bool;
      latency : float;
          (** Seconds since the link's (or the peer's crash window's)
              last ground-truth change; [0] when [spurious]. *)
      spurious : bool;
          (** The verdict contradicts ground truth — a false positive. *)
    }
      (** A link-health failure detector changed this switch's belief
          about an incident link (category [detect]). *)
  | Link_suppressed of { switch : int; peer : int; resumed : bool }
      (** Flap damping placed the adjacency into — or released it from —
          administrative suppression (category [suppress]). *)
  | Note of { category : string; message : string }

type entry = { id : int; parent : int; time : float; event : event }

type t

val create :
  ?keep:bool -> ?echo:bool -> ?cap:int -> ?cats:string list -> unit -> t
(** [create ()] — [keep] retains entries in memory (default [true]);
    [echo] additionally prints each entry to stderr as it is emitted
    (default [false]); [cap] bounds retained entries (default
    [1_000_000], ring-buffer eviction); [cats] restricts {e retention} to
    the given categories (ids are still assigned to filtered-out events,
    so causal parents stay meaningful). *)

val disabled : t
(** A shared trace that drops everything. *)

val enabled : t -> bool
(** [true] when the trace retains or echoes entries.  Guard event
    construction with this so disabled traces cost one branch. *)

val category : event -> string
(** The event's category: [flood], [forward], [deliver], [drop],
    [compute], [proposal], [install], [fault], [crash], [recover],
    [resync], or a {!Note}'s own category. *)

val emit : t -> time:float -> ?parent:int -> event -> int
(** Append an event; returns its id, or [-1] if the trace is disabled.
    [parent] defaults to the ambient causal context (see
    {!with_context}); pass it explicitly when the causing event's id was
    captured across a scheduling boundary. *)

val context : t -> int
(** The ambient causal context: the id new events default their parent
    to, [-1] when none. *)

val with_context : t -> int -> (unit -> 'a) -> 'a
(** [with_context t id f] runs [f] with the ambient context set to [id]
    (restored afterwards, also on exceptions).  [id = -1] leaves the
    context untouched — so wrapping code in a disabled trace's context is
    free. *)

val record : t -> time:float -> category:string -> string -> unit
(** Record a {!Note} (if the trace is enabled). *)

val recordf :
  t -> time:float -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted {!Note}; the format arguments are not evaluated when the
    trace is disabled. *)

val entries : t -> entry list
(** Retained entries, oldest first. *)

val count : t -> int
(** Number of retained entries. *)

val count_category : t -> string -> int
(** Retained entries in the given category. *)

val emitted : t -> int
(** Ids assigned so far (including filtered-out and evicted events). *)

val dropped : t -> int
(** Retained-then-evicted entries (ring-buffer overflow). *)

val clear : t -> unit
(** Forget everything: entries, ids, context, drop count. *)

val message : event -> string
(** One-line human rendering of the payload. *)

val pp_entry : Format.formatter -> entry -> unit

(** {2 JSONL (schema [dgmc-trace/1])} *)

type archive = { a_emitted : int; a_dropped : int; a_entries : entry list }
(** A deserialized trace: header counters plus entries oldest first. *)

val to_jsonl : t -> string
(** Header line + one JSON object per retained entry. *)

val write_jsonl : t -> path:string -> unit

val of_jsonl : string -> (archive, string) result
(** Parse what {!to_jsonl} produced; [Error] carries the offending line
    number and reason. *)

val read_jsonl : path:string -> (archive, string) result
