let leader_at net ~switch mc =
  let sw = Dgmc.Protocol.switch net switch in
  match Dgmc.Switch.members sw mc with
  | None -> None
  | Some members ->
    let image = Dgmc.Switch.image sw in
    let reachable = Net.Bfs.reachable image switch in
    List.find_opt (fun m -> reachable.(m)) (Dgmc.Member.ids members)

let leaders_by_view net mc =
  List.init (Dgmc.Protocol.n_switches net) (fun s ->
      (s, leader_at net ~switch:s mc))

let agreed_leader net mc =
  match leaders_by_view net mc with
  | [] -> None
  | (_, first) :: rest ->
    if first <> None && List.for_all (fun (_, l) -> l = first) rest then first
    else None

type transition = { at : float; previous : int option; current : int option }

type monitor = {
  net : Dgmc.Protocol.t;
  switch : int;
  mc : Dgmc.Mc_id.t;
  mutable cur : int option;
  mutable log : transition list;
}

let monitor net ~switch mc =
  let m = { net; switch; mc; cur = leader_at net ~switch mc; log = [] } in
  Dgmc.Protocol.add_observer net (fun () ->
      let l = leader_at m.net ~switch:m.switch m.mc in
      if l <> m.cur then begin
        m.log <-
          { at = Sim.Engine.now (Dgmc.Protocol.engine m.net); previous = m.cur; current = l }
          :: m.log;
        m.cur <- l
      end);
  m

let current m = m.cur

let transitions m = List.rev m.log

let pp_transition ppf { at; previous; current } =
  let pp_leader ppf = function
    | Some l -> Format.fprintf ppf "switch %d" l
    | None -> Format.pp_print_string ppf "none"
  in
  (* dgmc-analyze: allow float-format — human-readable transition log *)
  Format.fprintf ppf "[%g] leader %a -> %a" at pp_leader previous pp_leader current
