(** Data-plane simulation: forwarding packets over an MC topology.

    Used by the examples and the CBT comparison: given a topology and a
    sender, compute who receives the packet, when, and which links carry
    it.  For receiver-only MCs the paper's two-stage delivery applies —
    the packet is first unicast to a {e contact node} on the tree, then
    forwarded along the tree (Figure 1(b)). *)

type delivery = {
  receiver : int;
  delay : float;  (** Accumulated link weight from the sender. *)
  hops : int;     (** Links traversed from the sender. *)
}

val compare_delivery : delivery -> delivery -> int
(** Typed ordering by receiver, then delay, then hops — the comparison
    used to sort {!report.deliveries} deterministically. *)

type report = {
  deliveries : delivery list;  (** One entry per terminal reached,
                                   excluding the sender; sorted by id. *)
  links_used : (int * int) list;  (** Each link that carried the packet,
                                      [(u, v)] with [u < v], sorted. *)
  contact : int option;
      (** Two-stage only: the tree node the sender's unicast reached. *)
}

val multicast : Net.Graph.t -> Tree.t -> src:int -> report
(** Flood from [src] (which must be a tree node) along tree edges to all
    terminals.  Raises [Failure] if [src] is not on the tree. *)

val two_stage : Net.Graph.t -> Tree.t -> src:int -> report
(** Receiver-only delivery: unicast from [src] to the nearest tree node
    (the contact), then {!multicast} from there.  Delays and hops include
    the unicast stage.  If [src] is already on the tree this equals
    {!multicast} with [contact = Some src].
    Raises [Failure] if the tree is unreachable from [src]. *)

val accumulate_loads :
  (int * int, int) Hashtbl.t -> report -> unit
(** Add each link of [report.links_used] into a load table (creating
    entries as needed); used to measure traffic concentration across many
    packets. *)

val max_load : (int * int, int) Hashtbl.t -> int
(** Largest accumulated per-link load (0 when empty). *)
