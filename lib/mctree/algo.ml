type t = { name : string; compute : Net.Graph.t -> int list -> Tree.t }

let kmb = { name = "kmb"; compute = Steiner.kmb }

let sph = { name = "sph"; compute = Steiner.sph }

let spt =
  let compute g members =
    match List.sort_uniq Int.compare members with
    | [] -> failwith "Algo.spt: empty member set"
    | root :: receivers -> Spt.source_rooted g ~root ~receivers
  in
  { name = "spt"; compute }

let all = [ kmb; sph; spt ]

let of_string name = List.find_opt (fun a -> String.equal a.name name) all

let pp ppf a = Format.pp_print_string ppf a.name
