let source_rooted g ~root ~receivers =
  let n = Net.Graph.n_nodes g in
  if root < 0 || root >= n then failwith "Spt: root out of range";
  List.iter
    (fun x -> if x < 0 || x >= n then failwith "Spt: receiver out of range")
    receivers;
  let r = Net.Dijkstra.run g root in
  let terminals = List.sort_uniq Int.compare (root :: receivers) in
  List.fold_left
    (fun tree dst ->
      if dst = root then tree
      else
        match Net.Dijkstra.path_of_result r ~src:root ~dst with
        | Some p -> Tree.add_path tree p
        | None -> failwith (Printf.sprintf "Spt: receiver %d unreachable" dst))
    (Tree.of_terminals terminals)
    terminals

let depth t ~root =
  let is_parent parent v =
    match parent with Some p -> p = v | None -> false
  in
  let rec go u parent d best =
    Tree.Int_set.fold
      (fun v best ->
        if is_parent parent v then best
        else go v (Some u) (d + 1) (max best (d + 1)))
      (Tree.neighbors t u) best
  in
  if Tree.mem_node t root then go root None 0 0 else 0

let receivers_cost g t ~root =
  Tree.Int_set.fold
    (fun dst acc ->
      if dst = root then acc
      else
        match Tree.path_between t root dst with
        | Some p -> (dst, Net.Path.cost g p) :: acc
        | None -> acc)
    (Tree.terminals t) []
  |> List.sort (fun (d1, c1) (d2, c2) ->
         match Int.compare d1 d2 with 0 -> Float.compare c1 c2 | c -> c)
