type delivery = { receiver : int; delay : float; hops : int }

type report = {
  deliveries : delivery list;
  links_used : (int * int) list;
  contact : int option;
}

let norm u v = if u < v then (u, v) else (v, u)

let compare_delivery a b =
  match Int.compare a.receiver b.receiver with
  | 0 -> (
    match Float.compare a.delay b.delay with
    | 0 -> Int.compare a.hops b.hops
    | c -> c)
  | c -> c

(* Walk tree edges outward from [start], excluding [start] itself from the
   deliveries (the caller decides whether the start node is a recipient). *)
let walk g tree ~start ~base_delay ~base_hops ~prefix_links =
  let deliveries = ref [] in
  let links = ref prefix_links in
  let rec visit u parent delay hops =
    if Tree.is_terminal tree u && u <> start then
      deliveries := { receiver = u; delay; hops } :: !deliveries;
    Tree.Int_set.iter
      (fun v ->
        if (match parent with Some p -> p <> v | None -> true) then begin
          links := norm u v :: !links;
          visit v (Some u) (delay +. Net.Graph.weight g u v) (hops + 1)
        end)
      (Tree.neighbors tree u)
  in
  visit start None base_delay base_hops;
  (!deliveries, !links)

let multicast g tree ~src =
  if not (Tree.mem_node tree src) then failwith "Delivery.multicast: sender not on tree";
  let deliveries, links = walk g tree ~start:src ~base_delay:0.0 ~base_hops:0 ~prefix_links:[] in
  {
    deliveries = List.sort compare_delivery deliveries;
    links_used = List.sort_uniq Tree.compare_edge links;
    contact = None;
  }

let two_stage g tree ~src =
  if Tree.mem_node tree src then
    { (multicast g tree ~src) with contact = Some src }
  else begin
    let r = Net.Dijkstra.run g src in
    let best = ref None in
    Tree.Int_set.iter
      (fun v ->
        let d = r.dist.(v) in
        let better = match !best with Some (_, d') -> d < d' | None -> true in
        if Float.is_finite d && better then
          match Net.Dijkstra.path_of_result r ~src ~dst:v with
          | Some p -> best := Some (p, d)
          | None -> ())
      (Tree.nodes tree);
    match !best with
    | None -> failwith "Delivery.two_stage: tree unreachable from sender"
    | Some (path, d) ->
      let contact = List.nth path (List.length path - 1) in
      let unicast_links = List.map (fun (u, v) -> norm u v) (Net.Path.edges path) in
      let unicast_hops = Net.Path.hops path in
      let deliveries, links =
        walk g tree ~start:contact ~base_delay:d ~base_hops:unicast_hops
          ~prefix_links:unicast_links
      in
      (* The contact itself may be a terminal that must also receive. *)
      let deliveries =
        if Tree.is_terminal tree contact then
          { receiver = contact; delay = d; hops = unicast_hops } :: deliveries
        else deliveries
      in
      {
        deliveries = List.sort compare_delivery deliveries;
        links_used = List.sort_uniq Tree.compare_edge links;
        contact = Some contact;
      }
  end

let accumulate_loads table report =
  List.iter
    (fun link ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt table link) in
      Hashtbl.replace table link (prev + 1))
    report.links_used

(* dgmc-analyze: allow iteration-order — max over ints is order-insensitive *)
let max_load table = Hashtbl.fold (fun _ load acc -> max load acc) table 0
