let check_terminals g terminals =
  if terminals = [] then failwith "Steiner: empty terminal set";
  let n = Net.Graph.n_nodes g in
  List.iter
    (fun x ->
      if x < 0 || x >= n then
        failwith (Printf.sprintf "Steiner: terminal %d out of range" x))
    terminals;
  let sorted = List.sort_uniq Int.compare terminals in
  if List.length sorted <> List.length terminals then
    failwith "Steiner: duplicate terminals";
  sorted

(* Metric closure among terminals: pairwise shortest-path distances, plus
   the per-terminal Dijkstra results for later path expansion. *)
let closure g tarray =
  let k = Array.length tarray in
  let sssp = Array.map (fun t -> Net.Dijkstra.run g t) tarray in
  let matrix = Array.make_matrix k k infinity in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if i <> j then begin
        matrix.(i).(j) <- sssp.(i).dist.(tarray.(j));
        if not (Float.is_finite matrix.(i).(j)) then
          failwith "Steiner: terminals not mutually reachable"
      end
    done
  done;
  (sssp, matrix)

let kmb_impl g terminals =
  let terminals = check_terminals g terminals in
  match terminals with
  | [ only ] -> Tree.of_terminals [ only ]
  | _ ->
    let tarray = Array.of_list terminals in
    let sssp, matrix = closure g tarray in
    (* MST of the closure, each edge expanded into a real shortest path. *)
    let closure_mst = Net.Mst.mst_of_matrix matrix in
    let expanded =
      List.fold_left
        (fun tree (i, j, _) ->
          match
            Net.Dijkstra.path_of_result sssp.(i) ~src:tarray.(i) ~dst:tarray.(j)
          with
          | Some p -> Tree.add_path tree p
          | None -> assert false (* closure checked reachability *))
        (Tree.of_terminals terminals) closure_mst
    in
    (* The union of paths may contain cycles: take an MST of the induced
       subgraph, then prune non-terminal leaves. *)
    let sub = Net.Graph.create (Net.Graph.n_nodes g) in
    List.iter
      (fun (u, v) -> Net.Graph.add_edge sub u v ~weight:(Net.Graph.weight g u v))
      (Tree.edges expanded);
    let tree =
      List.fold_left
        (fun t (e : Net.Graph.edge) -> Tree.add_edge t e.u e.v)
        (Tree.of_terminals terminals)
        (Net.Mst.kruskal sub)
    in
    Tree.prune tree

(* Closure-free phase wrappers; see Net.Dijkstra.run.  Dijkstra and MST
   work inside shows up as child time of these phases. *)
let kmb g terminals =
  let ph = Metrics.Phase.ambient () in
  Metrics.Phase.enter ph "mctree.kmb";
  match kmb_impl g terminals with
  | r ->
    Metrics.Phase.leave ph;
    r
  | exception e ->
    Metrics.Phase.leave ph;
    raise e

let sph_impl g terminals =
  let terminals = check_terminals g terminals in
  match terminals with
  | [] -> assert false (* check_terminals rejects the empty set *)
  | [ only ] -> Tree.of_terminals [ only ]
  | seed :: rest ->
    let tree = ref (Tree.of_terminals terminals) in
    let in_tree = ref (Tree.Int_set.singleton seed) in
    let remaining = ref rest in
    while !remaining <> [] do
      (* Attach the remaining terminal closest to the current tree.  One
         Dijkstra per remaining terminal; tree nodes act as targets. *)
      let best = ref None in
      List.iter
        (fun t ->
          let r = Net.Dijkstra.run g t in
          Tree.Int_set.iter
            (fun v ->
              let d = r.dist.(v) in
              let better =
                match !best with Some (_, _, d') -> d < d' | None -> true
              in
              if Float.is_finite d && better then
                match Net.Dijkstra.path_of_result r ~src:t ~dst:v with
                | Some p -> best := Some (t, p, d)
                | None -> ())
            !in_tree)
        !remaining;
      match !best with
      | None -> failwith "Steiner.sph: terminals not mutually reachable"
      | Some (t, path, _) ->
        tree := Tree.add_path !tree path;
        List.iter (fun v -> in_tree := Tree.Int_set.add v !in_tree) path;
        remaining := List.filter (fun x -> x <> t) !remaining
    done;
    Tree.prune !tree

let sph g terminals =
  let ph = Metrics.Phase.ambient () in
  Metrics.Phase.enter ph "mctree.sph";
  match sph_impl g terminals with
  | r ->
    Metrics.Phase.leave ph;
    r
  | exception e ->
    Metrics.Phase.leave ph;
    raise e

let lower_bound g terminals =
  let terminals = check_terminals g terminals in
  match terminals with
  | [ _ ] -> 0.0
  | _ ->
    let tarray = Array.of_list terminals in
    let _, matrix = closure g tarray in
    let max_pair = ref 0.0 in
    Array.iter
      (Array.iter (fun d -> if Float.is_finite d && d > !max_pair then max_pair := d))
      matrix;
    let mst_cost =
      List.fold_left
        (fun acc (_, _, w) -> acc +. w)
        0.0
        (Net.Mst.mst_of_matrix matrix)
    in
    Float.max !max_pair (mst_cost /. 2.0)
