module Int_map = Map.Make (Int)

type t = { trees : Tree.t Int_map.t; receivers : int list }

let spt g ~root ~receivers =
  Spt.source_rooted g ~root ~receivers:(List.filter (fun r -> r <> root) receivers)

let build g ~senders ~receivers =
  let senders = List.sort_uniq Int.compare senders in
  let receivers = List.sort_uniq Int.compare receivers in
  if senders = [] then failwith "Forest.build: no senders";
  {
    trees =
      List.fold_left
        (fun acc s -> Int_map.add s (spt g ~root:s ~receivers) acc)
        Int_map.empty senders;
    receivers;
  }

let senders t = List.map fst (Int_map.bindings t.trees)

let receivers t = t.receivers

let tree_of t ~sender = Int_map.find sender t.trees

let add_receiver g t r =
  if List.mem r t.receivers then t
  else begin
    (* Recompute each sender's tree: a greedy graft onto the old tree
       would break the SPT invariant (tree delay = shortest-path
       distance); the recomputation is one Dijkstra per sender. *)
    let receivers = List.sort Int.compare (r :: t.receivers) in
    {
      trees = Int_map.mapi (fun sender _ -> spt g ~root:sender ~receivers) t.trees;
      receivers;
    }
  end

let remove_receiver g t r =
  ignore g;
  if not (List.mem r t.receivers) then t
  else
    let receivers = List.filter (fun x -> x <> r) t.receivers in
    {
      trees =
        Int_map.mapi
          (fun sender tree ->
            if sender = r then tree
            else Tree.prune (Tree.remove_terminal tree r))
          t.trees;
      receivers;
    }

let add_sender g t s =
  if Int_map.mem s t.trees then t
  else { t with trees = Int_map.add s (spt g ~root:s ~receivers:t.receivers) t.trees }

let remove_sender t s = { t with trees = Int_map.remove s t.trees }

let total_cost g t =
  Int_map.fold (fun _ tree acc -> acc +. Tree.cost g tree) t.trees 0.0

let link_occurrences t =
  let table = Hashtbl.create 64 in
  Int_map.iter
    (fun _ tree ->
      List.iter
        (fun link ->
          Hashtbl.replace table link
            (1 + Option.value ~default:0 (Hashtbl.find_opt table link)))
        (Tree.edges tree))
    t.trees;
  Hashtbl.fold (fun link n acc -> (link, n) :: acc) table []
  |> List.sort (fun (l1, n1) (l2, n2) ->
         match Tree.compare_edge l1 l2 with 0 -> Int.compare n1 n2 | c -> c)

let deliver g t ~sender = Delivery.multicast g (tree_of t ~sender) ~src:sender
