(** Multipoint-connection topologies: trees embedded in the network graph.

    A [Tree.t] is the virtual topology of one multipoint connection — a
    set of undirected edges of the underlying network plus the set of
    {e terminal} nodes (the connection members it must span).  Values are
    immutable; protocol code ships them inside LSAs as topology proposals
    and compares them for equality when checking network-wide agreement.

    A value of this type is not forced to be a valid tree — algorithms
    build edge sets incrementally — so {!is_tree}, {!spans_terminals} and
    {!is_embedded} exist to check the invariants tests and the protocol
    rely on. *)

module Int_set : Set.S with type elt = int
module Int_map : Map.S with type key = int

type t

val empty : t
(** No edges, no terminals. *)

val of_terminals : int list -> t
(** Terminals only (the degenerate connection before any edge exists;
    also a complete single-member connection). *)

val of_edges : terminals:int list -> (int * int) list -> t
(** Build from an explicit edge list. *)

(** {1 Construction} *)

val add_edge : t -> int -> int -> t
(** Idempotent; raises [Invalid_argument] on a self-loop. *)

val remove_edge : t -> int -> int -> t

val add_path : t -> int list -> t
(** Add every consecutive edge of a node path. *)

val add_terminal : t -> int -> t

val remove_terminal : t -> int -> t
(** Remove from the terminal set; the node's edges are kept (use
    {!prune} afterwards to trim the branch). *)

val with_terminals : t -> int list -> t
(** Replace the terminal set. *)

(** {1 Observation} *)

val terminals : t -> Int_set.t

val nodes : t -> Int_set.t
(** Every node incident to an edge, plus every terminal. *)

val compare_edge : int * int -> int * int -> int
(** Lexicographic [Int.compare] on normalised [(lo, hi)] edges — the
    typed comparison for edge lists (deterministic, no polymorphic
    compare). *)

val edges : t -> (int * int) list
(** Each undirected edge once, as [(u, v)] with [u < v], sorted. *)

val n_edges : t -> int

val mem_edge : t -> int -> int -> bool

val mem_node : t -> int -> bool

val is_terminal : t -> int -> bool

val neighbors : t -> int -> Int_set.t

val degree : t -> int -> int

val cost : Net.Graph.t -> t -> float
(** Sum of the tree edges' weights in the graph.
    Raises [Not_found] if an edge is absent from the graph. *)

(** {1 Invariants} *)

val is_tree : t -> bool
(** The edge set is acyclic and connects all its incident nodes into one
    component (the empty edge set qualifies). *)

val spans_terminals : t -> bool
(** Every terminal is a node of the tree, and all terminals lie in one
    connected component ([true] when there are 0 or 1 terminals and the
    terminal, if any, may be edge-free). *)

val is_embedded : Net.Graph.t -> t -> bool
(** Every tree edge is a live link of the graph. *)

val is_valid_mc_topology : Net.Graph.t -> t -> bool
(** Conjunction of {!is_tree}, {!spans_terminals} and {!is_embedded}:
    what a correct topology proposal must satisfy. *)

(** {1 Transformation} *)

val prune : t -> t
(** Repeatedly remove non-terminal leaves, so every remaining leaf is a
    terminal. *)

val path_between : t -> int -> int -> int list option
(** The unique tree path between two tree nodes, if both are present and
    connected. *)

val dfs_order : t -> root:int -> int list
(** Nodes reachable from [root] through tree edges, in deterministic
    depth-first order (smallest neighbour first).  [root] itself included. *)

(** {1 Comparison and printing} *)

val fingerprint : t -> string
(** Compact canonical rendering ["T{u-v,…|t1,…}"] — equal trees produce
    equal strings.  Used as the per-MC tree digest in database
    resynchronisation summaries (a neighbor compares fingerprints instead
    of shipping whole trees) and by {!Check.Fingerprint}'s state
    hashing, which renders the same format. *)

val of_fingerprint : string -> t option
(** Parse a {!fingerprint} back; [None] on malformed input.
    [of_fingerprint (fingerprint t)] reconstructs a tree equal to [t]. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
