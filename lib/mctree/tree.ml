module Int_set = Set.Make (Int)
module Int_map = Map.Make (Int)

type t = { terminals : Int_set.t; adj : Int_set.t Int_map.t }

let empty = { terminals = Int_set.empty; adj = Int_map.empty }

let of_terminals ts = { empty with terminals = Int_set.of_list ts }

let neighbors t u = Option.value ~default:Int_set.empty (Int_map.find_opt u t.adj)

let add_edge t u v =
  if u = v then invalid_arg "Tree.add_edge: self-loop";
  let attach a b adj = Int_map.add a (Int_set.add b (Option.value ~default:Int_set.empty (Int_map.find_opt a adj))) adj in
  { t with adj = attach u v (attach v u t.adj) }

let remove_edge t u v =
  let detach a b adj =
    match Int_map.find_opt a adj with
    | None -> adj
    | Some set ->
      let set = Int_set.remove b set in
      if Int_set.is_empty set then Int_map.remove a adj else Int_map.add a set adj
  in
  { t with adj = detach u v (detach v u t.adj) }

let rec add_path t = function
  | [] | [ _ ] -> t
  | u :: (v :: _ as rest) -> add_path (add_edge t u v) rest

let add_terminal t x = { t with terminals = Int_set.add x t.terminals }

let remove_terminal t x = { t with terminals = Int_set.remove x t.terminals }

let with_terminals t ts = { t with terminals = Int_set.of_list ts }

let of_edges ~terminals edges =
  List.fold_left
    (fun t (u, v) -> add_edge t u v)
    (of_terminals terminals) edges

let terminals t = t.terminals

let nodes t =
  Int_map.fold (fun u _ acc -> Int_set.add u acc) t.adj t.terminals

let compare_edge (u1, v1) (u2, v2) =
  match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c

let edges t =
  Int_map.fold
    (fun u nbrs acc ->
      Int_set.fold (fun v acc -> if u < v then (u, v) :: acc else acc) nbrs acc)
    t.adj []
  |> List.sort compare_edge

let n_edges t = List.length (edges t)

let mem_edge t u v = Int_set.mem v (neighbors t u)

let mem_node t x = Int_map.mem x t.adj || Int_set.mem x t.terminals

let is_terminal t x = Int_set.mem x t.terminals

let degree t u = Int_set.cardinal (neighbors t u)

let cost g t =
  List.fold_left (fun acc (u, v) -> acc +. Net.Graph.weight g u v) 0.0 (edges t)

(* Nodes incident to at least one edge. *)
let edge_nodes t = Int_map.fold (fun u _ acc -> Int_set.add u acc) t.adj Int_set.empty

let component_of t start =
  let rec grow frontier seen =
    if Int_set.is_empty frontier then seen
    else begin
      let next =
        Int_set.fold
          (fun u acc -> Int_set.union acc (Int_set.diff (neighbors t u) seen))
          frontier Int_set.empty
      in
      grow next (Int_set.union seen next)
    end
  in
  grow (Int_set.singleton start) (Int_set.singleton start)

let is_tree t =
  let vs = edge_nodes t in
  Int_set.is_empty vs
  ||
  let n = Int_set.cardinal vs in
  let e = n_edges t in
  (* Connected + |E| = |V| - 1 characterises a tree. *)
  e = n - 1 && Int_set.cardinal (component_of t (Int_set.min_elt vs)) = n

let spans_terminals t =
  match Int_set.cardinal t.terminals with
  | 0 | 1 -> true
  | _ ->
    let first = Int_set.min_elt t.terminals in
    Int_map.mem first t.adj
    && Int_set.subset t.terminals (component_of t first)

let is_embedded g t =
  List.for_all (fun (u, v) -> Net.Graph.link_is_up g u v) (edges t)

let is_valid_mc_topology g t =
  is_tree t && spans_terminals t && is_embedded g t

let prune t =
  let rec go t =
    let removable =
      Int_map.fold
        (fun u nbrs acc ->
          if Int_set.cardinal nbrs <= 1 && not (Int_set.mem u t.terminals) then
            u :: acc
          else acc)
        t.adj []
    in
    if removable = [] then t
    else
      go
        (List.fold_left
           (fun t u ->
             Int_set.fold (fun v t -> remove_edge t u v) (neighbors t u) t)
           t removable)
  in
  go t

let path_between t src dst =
  if not (mem_node t src && mem_node t dst) then None
  else if src = dst then Some [ src ]
  else begin
    (* DFS with parent tracking; the tree path is unique when it exists. *)
    let rec search u parent path =
      if u = dst then Some (List.rev (u :: path))
      else
        Int_set.fold
          (fun v found ->
            match found with
            | Some _ -> found
            | None -> (
              match parent with
              | Some p when p = v -> None
              | _ -> search v (Some u) (u :: path)))
          (neighbors t u) None
    in
    search src None []
  end

let dfs_order t ~root =
  let visited = ref Int_set.empty in
  let order = ref [] in
  let rec visit u =
    if not (Int_set.mem u !visited) then begin
      visited := Int_set.add u !visited;
      order := u :: !order;
      Int_set.iter visit (neighbors t u)
    end
  in
  visit root;
  List.rev !order

let compare a b =
  let c = Int_set.compare a.terminals b.terminals in
  if c <> 0 then c else List.compare compare_edge (edges a) (edges b)

let equal a b = compare a b = 0

let fingerprint t =
  let b = Buffer.create 48 in
  Buffer.add_string b "T{";
  List.iteri
    (fun i (u, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int u);
      Buffer.add_char b '-';
      Buffer.add_string b (string_of_int v))
    (edges t);
  Buffer.add_char b '|';
  List.iteri
    (fun i n ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int n))
    (Int_set.elements t.terminals);
  Buffer.add_char b '}';
  Buffer.contents b

let of_fingerprint s =
  let len = String.length s in
  if len < 4 || not (String.equal (String.sub s 0 2) "T{") || s.[len - 1] <> '}'
  then None
  else
    match String.index_opt s '|' with
    | None -> None
    | Some bar -> (
      let edges_s = String.sub s 2 (bar - 2) in
      let terms_s = String.sub s (bar + 1) (len - bar - 2) in
      let fields str =
        if String.length str = 0 then [] else String.split_on_char ',' str
      in
      try
        let parsed_edges =
          List.map
            (fun e ->
              match String.split_on_char '-' e with
              | [ u; v ] -> (int_of_string u, int_of_string v)
              | _ -> failwith "Tree.of_fingerprint: malformed edge")
            (fields edges_s)
        in
        let terminals = List.map int_of_string (fields terms_s) in
        Some (of_edges ~terminals parsed_edges)
      with Failure _ | Invalid_argument _ -> None)

let pp ppf t =
  let pp_set ppf s =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Format.pp_print_int)
      (Int_set.elements s)
  in
  Format.fprintf ppf "@[<h>tree terminals=%a edges=[%a]@]" pp_set t.terminals
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf (u, v) -> Format.fprintf ppf "%d-%d" u v))
    (edges t)
