(** A D-GMC network: all switches, the shared flooding substrate, event
    injection, and the measurements the paper's evaluation reports.

    This is the top-level façade of the library.  Typical use:

    {[
      let rng = Sim.Rng.create 42 in
      let g = Net.Topo_gen.waxman rng ~n:40 () in
      let net = Protocol.create ~graph:g ~config:Config.default () in
      let mc = Mc_id.make Symmetric 1 in
      Protocol.schedule_join net ~at:0.0 ~switch:3 mc Member.Both;
      Protocol.schedule_join net ~at:0.0 ~switch:17 mc Member.Both;
      Protocol.run net;
      assert (Protocol.converged net mc)
    ]} *)

type payload =
  | Mc of Mc_lsa.t  (** An MC LSA ([F = mc]). *)
  | Link of Lsr.Lsdb.link_event  (** A non-MC LSA ([F = ¬mc]). *)
  | Resync of Resync.msg
      (** A crash-recovery resynchronisation message, unicast between
          neighbors via {!Lsr.Flooding.send} — never flooded (extension;
          see {!Switch.begin_resync}). *)

type totals = {
  events : int;  (** Local events injected (join/leave/link per MC). *)
  computations : int;  (** Topology computations completed, network-wide. *)
  computations_withdrawn : int;
  mc_floodings : int;  (** MC LSA flooding operations. *)
  link_floodings : int;  (** Non-MC (link event) flooding operations. *)
  proposals_flooded : int;
  proposals_accepted : int;
  messages : int;
      (** First-copy per-link LSA transmissions — comparable across
          flooding modes (see {!Lsr.Flooding.messages_sent}). *)
  acks : int;  (** Reliable flooding: acknowledgements sent. *)
  retransmissions : int;  (** Reliable flooding: data copies retransmitted. *)
}

type health_summary = {
  h_detections : int;
      (** Down verdicts that matched ground truth (link down or peer
          inside a crash window). *)
  h_recoveries : int;  (** Up re-declarations. *)
  h_false_positives : int;
      (** Down verdicts contradicting ground truth. *)
  h_latencies : float list;
      (** Detection latencies of the true down verdicts, sorted
          ascending. *)
  h_bound : float;  (** {!Health.Config.detect_bound} of the config. *)
  h_suppressed : int;  (** Adjacency directions suppressed right now. *)
  h_hellos : int;  (** Hellos put on the wire. *)
  h_flaps : int;  (** Down declarations across all agents. *)
  h_pacer_emitted : int;
  h_pacer_coalesced : int;
  h_pacer_forced : int;
}

type t

val create :
  graph:Net.Graph.t ->
  config:Config.t ->
  ?faults:Faults.Plan.t ->
  ?trace:Sim.Trace.t ->
  ?metrics:Metrics.Registry.t ->
  ?series:Metrics.Series.t ->
  unit ->
  t
(** Build a network of [Net.Graph.n_nodes graph] switches, each booted
    with a converged link-state image of [graph].

    [faults] subjects every per-link LSA (and ack) transmission to the
    given fault plan — loss, duplication, reordering, jitter, crash and
    partition windows — in the engine's simulated time.  Pair it with
    [config.flood_mode = Reliable], or floods will silently lose LSAs
    and the network will not converge.

    An enabled [trace] captures the full causal story of a run: every
    flood starts with an [Lsa_originated] event (MC LSAs carry the MC
    id, advertised event and R stamp; link LSAs carry ["link-up"] /
    ["link-down"]), and the per-hop forwarding, delivery, protocol
    reaction and eventual [Topology_installed] it causes are chained to
    it through parent ids.  When a fault plan is present its scheduled
    crash windows additionally appear as [Crash]/[Recover] marks (and
    partitions as ["partition"] notes) — these extra trace entries are
    only scheduled when tracing is on, so untraced runs stay
    byte-for-byte deterministic.  [metrics] mirrors the counters of
    {!totals} (and the per-switch/flooding/fault internals) into a
    {!Metrics.Registry} under [protocol.*], [switch.*], [flood.*] and
    [faults.*] names.

    An enabled [series] turns on the flight recorder: an engine probe
    samples [engine.events] (executed events per bucket) and
    [engine.queue_depth] after every event, [switch.lsdb_entries] per
    switch once per bucket boundary, and the flooding layer contributes
    [flood.lsas] and [flood.inflight_rtx] (see {!Lsr.Flooding.create}).
    The probe only observes — the event calendar, protocol state and
    figure output are byte-identical with recording on or off — and a
    disabled series leaves the engine probe uninstalled entirely. *)

val engine : t -> Sim.Engine.t

val faults : t -> Faults.Plan.t option
(** The fault plan delivery runs under, if any. *)

val add_observer : t -> (unit -> unit) -> unit
(** Register a callback invoked after every protocol state change at any
    switch (member list or topology installed, state deleted).  Used by
    layers built on the protocol's complete-knowledge model, e.g.
    {!Election.Leader} monitors.  Observers must not inject events
    synchronously; schedule through the engine instead. *)

val graph : t -> Net.Graph.t
(** The real (ground-truth) topology. *)

val config : t -> Config.t

val n_switches : t -> int

val switch : t -> int -> Switch.t

(** {1 Event injection} *)

val join : t -> switch:int -> Mc_id.t -> Member.role -> unit
(** Host join at the given ingress switch, {e now} (at the engine's
    current time). *)

val leave : t -> switch:int -> Mc_id.t -> unit

val link_down : t -> int -> int -> unit
(** Take a live link down now: the real graph changes, both endpoint
    switches detect it, flood a non-MC LSA each, and run [EventHandler]
    for the MCs whose local topology used the link.

    With [Config.health] set, the change touches {e ground truth only}:
    no switch is notified and nothing is flooded here — the hello agents
    must discover the silence, and the declaring endpoints originate the
    link LSAs themselves. *)

val link_up : t -> int -> int -> unit
(** Restore a link; endpoints flood non-MC LSAs (no MC LSAs: an MC
    topology is never improved reactively by a link recovery).  Under
    [Config.health], ground truth only — see {!link_down}. *)

val schedule_join :
  t -> at:float -> switch:int -> Mc_id.t -> Member.role -> unit

val schedule_leave : t -> at:float -> switch:int -> Mc_id.t -> unit

val schedule_link_down : t -> at:float -> int -> int -> unit

val schedule_link_up : t -> at:float -> int -> int -> unit

(** {1 Running} *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Advance the simulation until quiescence (or the given bounds). *)

(** {1 Measurements} *)

val totals : t -> totals
(** Aggregated counters since creation (or the last {!reset_counters}). *)

val reset_counters : t -> unit
(** Zero all counters and the activity clock, and set the measurement
    epoch to the current simulated time.  Call between workload phases. *)

val first_event_time : t -> float option
(** Time of the first injected event since the last reset. *)

val last_change_time : t -> float option
(** Time of the last member-list or topology change at any switch since
    the last reset. *)

val convergence_rounds : t -> float option
(** [(last_change - first_event) / round_length] — the paper's
    convergence time in rounds (Figure 6(c)).  [None] until an event and
    a change have happened. *)

val health_summary : t -> health_summary option
(** Aggregated link-health statistics; [None] when [Config.health] is
    unset. *)

val health_views : t -> (int * (int * bool * bool) list) list
(** Per switch, the hello agent's [(peer, believed_up, suppressed)]
    adjacency beliefs — empty when the health layer is off. *)

(** {1 Agreement} *)

val converged : t -> Mc_id.t -> bool
(** Every switch holding state for the MC agrees on the member list and
    the topology, every such topology is valid for the real graph and
    the real member set, and no mailbox or computation is pending.
    Vacuously true when no switch holds state. *)

val divergence : t -> Mc_id.t -> string list
(** Human-readable reasons why {!converged} is false (empty when true) —
    for tests and debugging. *)

val agreed_topology : t -> Mc_id.t -> Mctree.Tree.t option
(** The common topology when {!converged} holds and at least one switch
    has state. *)

val converged_among : t -> Mc_id.t -> int list -> bool
(** Mutual agreement (member lists, topologies, quiescence) restricted
    to the given switches, without the ground-truth and validity checks.
    This is the meaningful property when the network has partitioned —
    global agreement is unattainable then (the paper leaves partitions
    to future work), but every switch {e within} one partition side must
    still agree. *)
