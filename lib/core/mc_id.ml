type kind = Symmetric | Receiver_only | Asymmetric

type t = { id : int; kind : kind }

let make kind id = { id; kind }

let kind_rank = function Symmetric -> 0 | Receiver_only -> 1 | Asymmetric -> 2

let compare a b =
  let c = Int.compare a.id b.id in
  if c <> 0 then c else Int.compare (kind_rank a.kind) (kind_rank b.kind)

let equal a b = compare a b = 0

let hash t = (t.id * 4) + kind_rank t.kind

let kind_to_string = function
  | Symmetric -> "symmetric"
  | Receiver_only -> "receiver-only"
  | Asymmetric -> "asymmetric"

let pp ppf t = Format.fprintf ppf "mc#%d(%s)" t.id (kind_to_string t.kind)
