type payload =
  | Mc of Mc_lsa.t
  | Link of Lsr.Lsdb.link_event
  | Resync of Resync.msg
      (** Unicast crash-recovery exchange (never flooded). *)

type totals = {
  events : int;
  computations : int;
  computations_withdrawn : int;
  mc_floodings : int;
  link_floodings : int;
  proposals_flooded : int;
  proposals_accepted : int;
  messages : int;
  acks : int;
  retransmissions : int;
}

module Mc_table = Hashtbl.Make (struct
  type t = Mc_id.t

  let equal = Mc_id.equal

  let hash = Mc_id.hash
end)

module Link_tbl = Hashtbl.Make (struct
  type t = int * int

  let equal (a, b) (c, d) = Int.equal a c && Int.equal b d

  let hash (a, b) = (a * 1000003) lxor b
end)

(* Link-health layer state (opt-in, [Config.health]).  When present,
   scripted and fault-plan link changes touch ground truth only — the
   hello agents must discover them, and the declaring switch originates
   the link LSAs itself (paced when pacing is configured). *)
type health_state = {
  hc : Health.Config.t;
  mutable agents : Health.Hello.t array;
  pacers : Lsr.Lsdb.link_event Health.Pacer.t array;
      (* Per switch when pacing is on; [[||]] otherwise. *)
  truth_changed : float Link_tbl.t;
      (* Last ground-truth change instant per link — detection-latency
         base.  Crashes use the window bounds instead (see [truth_down]). *)
  mutable hs_detections : int;  (* down verdicts matching ground truth *)
  mutable hs_recoveries : int;  (* up verdicts *)
  mutable hs_false_positives : int;
  mutable hs_latencies : float list;  (* down-detection latencies *)
  mutable hs_hellos_sent : int;
  mutable hs_hellos_received : int;
}

type health_summary = {
  h_detections : int;
  h_recoveries : int;
  h_false_positives : int;
  h_latencies : float list;  (** Sorted ascending. *)
  h_bound : float;
  h_suppressed : int;
  h_hellos : int;
  h_flaps : int;
  h_pacer_emitted : int;
  h_pacer_coalesced : int;
  h_pacer_forced : int;
}

type t = {
  engine : Sim.Engine.t;
  graph : Net.Graph.t;
  config : Config.t;
  faults : Faults.Plan.t option;
  switches : Switch.t array;
  flooding : payload Lsr.Flooding.t;
  mutable health : health_state option;
  seqs : Lsr.Lsa.Seq.counter array;
  link_versions : int Link_tbl.t;
      (** Ground-truth per-link change counter: a link's state changes
          are totally ordered in real time, so the n-th change of a link
          is stamped version n — both detecting endpoints flood the same
          versioned event, and {!Lsr.Lsdb} images merge by per-link max
          during resynchronisation. *)
  truth : Member.t Mc_table.t;  (** Ground-truth membership per MC. *)
  trace : Sim.Trace.t;
  metrics : Metrics.Registry.t option;
  mutable events : int;
  mutable mc_floodings : int;
  mutable link_floodings : int;
  mutable first_event : float option;
  mutable last_change : float option;
  mutable observers : (unit -> unit) list;
}

let bump t name =
  match t.metrics with
  | Some m -> Metrics.Registry.incr m name
  | None -> ()

let flood_link_event t ~from (ev : Lsr.Lsdb.link_event) =
  t.link_floodings <- t.link_floodings + 1;
  bump t "protocol.link_floodings";
  let seq = Lsr.Lsa.Seq.next t.seqs.(from) in
  let lsa = Lsr.Lsa.make ~origin:from ~seq (Link ev) in
  if Sim.Trace.enabled t.trace then begin
    let oid =
      Sim.Trace.emit t.trace ~time:(Sim.Engine.now t.engine)
        (Lsa_originated
           {
             switch = from;
             mc = "";
             seq;
             ev = (if ev.up then "link-up" else "link-down");
             proposal = false;
             stamp = [||];
           })
    in
    Sim.Trace.with_context t.trace oid (fun () ->
        Lsr.Flooding.flood t.flooding lsa)
  end
  else Lsr.Flooding.flood t.flooding lsa

let create ~graph ~config ?faults ?(trace = Sim.Trace.disabled) ?metrics
    ?(series = Metrics.Series.disabled) () =
  let n = Net.Graph.n_nodes graph in
  if n < 2 then invalid_arg "Protocol.create: need at least 2 switches";
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Protocol.create: " ^ msg));
  let engine = Sim.Engine.create () in
  let switches =
    Array.init n (fun id ->
        Switch.create ~id ~n ~config ~engine ~graph ~trace ?metrics ())
  in
  let deliver ~switch (lsa : payload Lsr.Lsa.t) =
    match lsa.payload with
    | Mc mc_lsa -> Switch.receive switches.(switch) mc_lsa
    | Link ev -> Switch.link_event switches.(switch) ev ~detector:false
    | Resync msg -> Switch.receive_resync switches.(switch) msg
  in
  let transmit =
    match faults with
    | None -> None
    | Some plan ->
      Faults.Plan.instrument plan ~trace ?metrics ();
      Some
        (fun ~src ~dst ~base_delay ->
          Faults.Plan.transmit plan ~src ~dst ~now:(Sim.Engine.now engine)
            ~base_delay)
  in
  let flooding =
    Lsr.Flooding.create ~engine ~graph ~t_hop:config.Config.t_hop
      ~mode:config.Config.flood_mode ~reliability:config.Config.reliability
      ?transmit ~trace ?metrics ~series ~deliver ()
  in
  (* Flight-recorder probe: one engine-level sample per executed event.
     Installed only when the series is live — the disabled engine path
     stays a single [None] branch — and it only observes: reading the
     clock, the calendar length, and per-switch LSDB sizes can neither
     schedule events nor perturb protocol state, so figure output stays
     byte-identical with recording on.  LSDB sizes are sampled once per
     bucket boundary (first event at or past it), not per event. *)
  if Metrics.Series.enabled series then begin
    let width = Metrics.Series.bucket_width series in
    let last_bucket = ref min_int in
    Sim.Engine.set_probe engine (fun () ->
        let now = Sim.Engine.now engine in
        Metrics.Series.add series ~name:"engine.events" ~time:now 1.0;
        Metrics.Series.add series ~name:"engine.queue_depth" ~time:now
          (float_of_int (Sim.Engine.pending engine));
        let bucket = int_of_float (Float.floor (now /. width)) in
        if bucket <> !last_bucket then begin
          last_bucket := bucket;
          Array.iter
            (fun sw ->
              Metrics.Series.add series ~switch:(Switch.id sw)
                ~name:"switch.lsdb_entries" ~time:now
                (float_of_int (Switch.lsdb_changed_count sw)))
            switches
        end)
  end;
  let net =
    {
      engine;
      graph;
      config;
      faults;
      switches;
      flooding;
      health = None;
      seqs = Array.init n (fun _ -> Lsr.Lsa.Seq.create ());
      link_versions = Link_tbl.create 16;
      truth = Mc_table.create 8;
      trace;
      metrics;
      events = 0;
      mc_floodings = 0;
      link_floodings = 0;
      first_event = None;
      last_change = None;
      observers = [];
    }
  in
  let bump name =
    match metrics with
    | Some m -> Metrics.Registry.incr m name
    | None -> ()
  in
  Array.iteri
    (fun id sw ->
      Switch.set_flood sw (fun (mc_lsa : Mc_lsa.t) ->
          net.mc_floodings <- net.mc_floodings + 1;
          bump "protocol.mc_floodings";
          let seq = Lsr.Lsa.Seq.next net.seqs.(id) in
          let lsa = Lsr.Lsa.make ~origin:id ~seq (Mc mc_lsa) in
          if Sim.Trace.enabled trace then begin
            let oid =
              Sim.Trace.emit trace ~time:(Sim.Engine.now engine)
                (Lsa_originated
                   {
                     switch = id;
                     mc = Format.asprintf "%a" Mc_id.pp mc_lsa.mc;
                     seq;
                     ev = Mc_lsa.event_to_string mc_lsa.event;
                     proposal = mc_lsa.proposal <> None;
                     stamp = Timestamp.to_array mc_lsa.stamp;
                   })
            in
            Sim.Trace.with_context trace oid (fun () ->
                Lsr.Flooding.flood net.flooding lsa)
          end
          else Lsr.Flooding.flood net.flooding lsa);
      Switch.set_flood_link sw (fun ev -> flood_link_event net ~from:id ev);
      Switch.set_send_resync sw (fun ~peer msg ->
          bump "protocol.resync_messages";
          let seq = Lsr.Lsa.Seq.next net.seqs.(id) in
          let lsa = Lsr.Lsa.make ~origin:id ~seq (Resync msg) in
          (* Only the recoverer's summary needs a failure signal: a lost
             delta is covered by the recoverer's session deadline. *)
          let on_giveup =
            match msg with
            | Resync.Summary _ ->
              fun () -> Switch.resync_transport_failed sw ~peer
            | Resync.Delta _ -> fun () -> ()
          in
          if Sim.Trace.enabled trace then begin
            let oid =
              Sim.Trace.emit trace ~time:(Sim.Engine.now engine)
                (Lsa_originated
                   {
                     switch = id;
                     mc = "";
                     seq;
                     ev =
                       (match msg with
                       | Resync.Summary _ -> "resync-summary"
                       | Resync.Delta _ -> "resync-delta");
                     proposal = false;
                     stamp = [||];
                   })
            in
            Sim.Trace.with_context trace oid (fun () ->
                Lsr.Flooding.send net.flooding ~src:id ~dst:peer ~on_giveup lsa)
          end
          else Lsr.Flooding.send net.flooding ~src:id ~dst:peer ~on_giveup lsa);
      Switch.set_on_change sw (fun () ->
          net.last_change <- Some (Sim.Engine.now engine);
          List.iter (fun f -> f ()) net.observers))
    switches;
  (* Crash recovery: at each crash window's close the switch's forwarding
     plane returns, but every LSA flooded meanwhile is gone for good —
     the plan dropped deliveries to it and floods from it.  Schedule the
     resynchronisation exchange at that instant, traced or not (protocol
     behavior must never depend on tracing). *)
  (match faults with
  | Some plan ->
    List.iter
      (fun (sw, (_, until)) ->
        ignore
          (Sim.Engine.schedule_at engine ~time:until (fun () ->
               Switch.begin_resync switches.(sw))))
      (Faults.Plan.crash_windows plan)
  | None -> ());
  (* Traced runs get the fault plan's scheduled windows marked on the
     timeline, so an analyzer can correlate what a switch missed with
     when it was down.  Scheduled only when tracing: untraced runs must
     keep a byte-identical event calendar. *)
  (match faults with
  | Some plan when Sim.Trace.enabled trace ->
    let mark ~time event =
      ignore
        (Sim.Engine.schedule_at engine ~time (fun () ->
             ignore (Sim.Trace.emit trace ~time event)))
    in
    List.iter
      (fun (sw, (from_, until)) ->
        mark ~time:from_ (Sim.Trace.Crash { switch = sw });
        mark ~time:until (Sim.Trace.Recover { switch = sw }))
      (Faults.Plan.crash_windows plan);
    List.iter
      (fun (side, (from_, until)) ->
        let side_str = String.concat "," (List.map string_of_int side) in
        mark ~time:from_
          (Sim.Trace.Note
             {
               category = "partition";
               message = Printf.sprintf "partition {%s} begins" side_str;
             });
        mark ~time:until
          (Sim.Trace.Note
             {
               category = "partition";
               message = Printf.sprintf "partition {%s} heals" side_str;
             }))
      (Faults.Plan.partition_windows plan)
  | _ -> ());
  (* Link-health layer (opt-in).  Hello agents probe every configured
     adjacency; scripted/fault-plan link changes become ground truth the
     detectors must discover (see [link_change]).  Crash windows pause
     the crashed switch's own sensing — a dead switch observes nothing —
     and restart it with fresh detectors on recovery. *)
  (match config.Config.health with
  | None -> ()
  | Some hc ->
    let mbump ?switch name =
      match metrics with
      | Some m -> Metrics.Registry.incr m ?switch name
      | None -> ()
    in
    let mobserve ?switch name v =
      match metrics with
      | Some m -> Metrics.Registry.observe m ?switch name v
      | None -> ()
    in
    let crash_windows =
      match faults with
      | Some plan -> Faults.Plan.crash_windows plan
      | None -> []
    in
    let crashed sw at =
      List.exists
        (fun (s, (from_, until)) -> s = sw && at >= from_ && at < until)
        crash_windows
    in
    (* When the peer is inside a crash window, the instant it opened:
       silence from a crashed switch is a genuine failure with the
       window's start as its ground-truth change time. *)
    let crash_since peer at =
      List.fold_left
        (fun acc (s, (from_, until)) ->
          if s = peer && at >= from_ && at < until then Some from_ else acc)
        None crash_windows
    in
    let all_edges = Net.Graph.all_edges graph in
    let adjacency i =
      List.filter_map
        (fun ((e : Net.Graph.edge), _up) ->
          if e.Net.Graph.u = i then Some e.Net.Graph.v
          else if e.Net.Graph.v = i then Some e.Net.Graph.u
          else None)
        all_edges
    in
    let pacers =
      match hc.Health.Config.pacing with
      | None -> [||]
      | Some p ->
        Array.init n (fun i ->
            Health.Pacer.create ~engine
              ~min_interval:p.Health.Config.p_min_interval
              ~cap:p.Health.Config.p_cap
              ~emit:(fun _key ev -> flood_link_event net ~from:i ev)
              ())
    in
    let h =
      {
        hc;
        agents = [||];
        pacers;
        truth_changed = Link_tbl.create 16;
        hs_detections = 0;
        hs_recoveries = 0;
        hs_false_positives = 0;
        hs_latencies = [];
        hs_hellos_sent = 0;
        hs_hellos_received = 0;
      }
    in
    (* One hello on the wire, subject to the same fault plan as LSAs:
       drops, duplication and jitter are exactly the adversities the
       detectors must tolerate.  Arrival is gated on the link being up
       and the receiver being alive {e at delivery time}. *)
    let send i ~peer =
      let at = Sim.Engine.now engine in
      if not (crashed i at) then begin
        h.hs_hellos_sent <- h.hs_hellos_sent + 1;
        mbump ~switch:i "health.hellos_sent";
        let delays =
          match transmit with
          | Some f -> f ~src:i ~dst:peer ~base_delay:config.Config.t_hop
          | None -> [ config.Config.t_hop ]
        in
        List.iter
          (fun delay ->
            ignore
              (Sim.Engine.schedule engine ~delay (fun () ->
                   if Net.Graph.link_is_up graph i peer then begin
                     let at = Sim.Engine.now engine in
                     if not (crashed peer at) then begin
                       h.hs_hellos_received <- h.hs_hellos_received + 1;
                       mbump ~switch:peer "health.hellos_received";
                       Health.Hello.on_hello h.agents.(peer) ~from:i
                     end
                   end)))
          delays
      end
    in
    (* A detector verdict: the switch's belief about an incident link
       changed.  Version the event, judge it against ground truth, tell
       the switch, and originate the link LSA — directly or through the
       pacer. *)
    let declare i ~peer ~up =
      let at = Sim.Engine.now engine in
      let lo, hi = if i < peer then (i, peer) else (peer, i) in
      let version =
        1 + Option.value ~default:0 (Link_tbl.find_opt net.link_versions (lo, hi))
      in
      Link_tbl.replace net.link_versions (lo, hi) version;
      let ev = { Lsr.Lsdb.u = i; v = peer; up; version } in
      let truth_since =
        if not (Net.Graph.link_is_up graph i peer) then
          Some (Option.value ~default:0.0 (Link_tbl.find_opt h.truth_changed (lo, hi)))
        else crash_since peer at
      in
      let latency, spurious =
        if up then
          (* Up verdicts rest on hellos that genuinely arrived; measure
             recovery latency from the last ground-truth change. *)
          ( (match Link_tbl.find_opt h.truth_changed (lo, hi) with
            | Some since -> at -. since
            | None -> 0.0),
            false )
        else
          match truth_since with
          | Some since -> (at -. since, false)
          | None -> (0.0, true)
      in
      if up then begin
        h.hs_recoveries <- h.hs_recoveries + 1;
        mbump ~switch:i "health.recoveries";
        mobserve ~switch:i "health.recovery_latency" latency
      end
      else begin
        (* Retransmitting into a dead adjacency is pointless; cancel the
           pending state and fire the give-ups exactly once each. *)
        ignore (Lsr.Flooding.abandon_link flooding ~src:i ~dst:peer);
        if spurious then begin
          h.hs_false_positives <- h.hs_false_positives + 1;
          mbump ~switch:i "health.false_positives"
        end
        else begin
          h.hs_detections <- h.hs_detections + 1;
          h.hs_latencies <- latency :: h.hs_latencies;
          mbump ~switch:i "health.detections";
          mobserve ~switch:i "health.detection_latency" latency
        end
      end;
      if Sim.Trace.enabled trace then
        ignore
          (Sim.Trace.emit trace ~time:at
             (Sim.Trace.Link_detected { switch = i; peer; up; latency; spurious }));
      Switch.link_event switches.(i) ev ~detector:true;
      if Array.length h.pacers > 0 then
        Health.Pacer.submit h.pacers.(i) ~key:(lo, hi) ev
      else flood_link_event net ~from:i ev;
      if up then
        ignore
          (Sim.Engine.schedule engine ~delay:config.Config.t_hop (fun () ->
               Switch.resync switches.(i) ~peer:switches.(peer)))
    in
    h.agents <-
      Array.init n (fun i ->
          Health.Hello.create ~engine ~config:hc ~self:i ~peers:(adjacency i)
            ~send:(fun ~peer -> send i ~peer)
            ~declare:(fun ~peer ~up -> declare i ~peer ~up)
            ~on_suppress:(fun ~peer ~resumed ->
              mbump ~switch:i
                (if resumed then "health.unsuppressions"
                 else "health.suppressions");
              if Sim.Trace.enabled trace then
                ignore
                  (Sim.Trace.emit trace ~time:(Sim.Engine.now engine)
                     (Sim.Trace.Link_suppressed { switch = i; peer; resumed })))
            ());
    net.health <- Some h;
    Array.iter Health.Hello.start h.agents;
    List.iter
      (fun (sw, (from_, until)) ->
        ignore
          (Sim.Engine.schedule_at engine ~time:from_ (fun () ->
               Health.Hello.pause h.agents.(sw)));
        ignore
          (Sim.Engine.schedule_at engine ~time:until (fun () ->
               Health.Hello.resume h.agents.(sw))))
      crash_windows);
  net

let engine t = t.engine

let add_observer t f = t.observers <- t.observers @ [ f ]

let graph t = t.graph

let config t = t.config

let faults t = t.faults

let n_switches t = Array.length t.switches

let switch t i = t.switches.(i)

(* ------------------------------------------------------------------ *)
(* Event injection *)

let note_event t =
  t.events <- t.events + 1;
  bump t "protocol.events";
  if t.first_event = None then t.first_event <- Some (Sim.Engine.now t.engine)

let check_switch t i =
  if i < 0 || i >= Array.length t.switches then
    invalid_arg (Printf.sprintf "Protocol: switch %d out of range" i)

let truth_members t mc =
  Option.value ~default:Member.empty (Mc_table.find_opt t.truth mc)

let join t ~switch:i mc role =
  check_switch t i;
  note_event t;
  Mc_table.replace t.truth mc (Member.join (truth_members t mc) i role);
  Switch.host_join t.switches.(i) mc role

let leave t ~switch:i mc =
  check_switch t i;
  note_event t;
  Mc_table.replace t.truth mc (Member.leave (truth_members t mc) i);
  Switch.host_leave t.switches.(i) mc

let link_change t u v ~up =
  if not (Net.Graph.has_edge t.graph u v) then
    invalid_arg (Printf.sprintf "Protocol: no link (%d, %d)" u v);
  note_event t;
  Net.Graph.set_link t.graph u v ~up;
  let lo, hi = if u < v then (u, v) else (v, u) in
  match t.health with
  | Some h ->
    (* Health layer on: the change is ground truth only.  No switch is
       told, nothing is flooded — the hello agents must discover it, and
       detection latency is measured from this instant. *)
    let now = Sim.Engine.now t.engine in
    Link_tbl.replace h.truth_changed (lo, hi) now;
    if Sim.Trace.enabled t.trace then
      Sim.Trace.recordf t.trace ~time:now ~category:"truth"
        "link %d-%d ground truth now %s (detectors must discover it)" lo hi
        (if up then "up" else "down")
  | None ->
  let version =
    1 + Option.value ~default:0 (Link_tbl.find_opt t.link_versions (lo, hi))
  in
  Link_tbl.replace t.link_versions (lo, hi) version;
  let ev = { Lsr.Lsdb.u; v; up; version } in
  (* Both endpoints detect the change: each updates its image, floods a
     non-MC LSA, and raises the MC link events for the connections whose
     topology used the link (the paper's Figure 2 draws one detecting
     switch; detection at both ends is what keeps BOTH sides of the cut
     repairing when the failure splits the network). *)
  Switch.link_event t.switches.(hi) ev ~detector:true;
  flood_link_event t ~from:hi ev;
  Switch.link_event t.switches.(lo) ev ~detector:true;
  flood_link_event t ~from:lo ev;
  (* A recovered adjacency triggers an MC database exchange between its
     endpoints (one hop of delay), so the two sides of a healed
     partition reconcile — see Switch.resync. *)
  if up then
    ignore
      (Sim.Engine.schedule t.engine ~delay:t.config.Config.t_hop (fun () ->
           Switch.resync t.switches.(lo) ~peer:t.switches.(hi);
           Switch.resync t.switches.(hi) ~peer:t.switches.(lo)))

let link_down t u v = link_change t u v ~up:false

let link_up t u v = link_change t u v ~up:true

let schedule_join t ~at ~switch:i mc role =
  ignore (Sim.Engine.schedule_at t.engine ~time:at (fun () -> join t ~switch:i mc role))

let schedule_leave t ~at ~switch:i mc =
  ignore (Sim.Engine.schedule_at t.engine ~time:at (fun () -> leave t ~switch:i mc))

let schedule_link_down t ~at u v =
  ignore (Sim.Engine.schedule_at t.engine ~time:at (fun () -> link_down t u v))

let schedule_link_up t ~at u v =
  ignore (Sim.Engine.schedule_at t.engine ~time:at (fun () -> link_up t u v))

(* ------------------------------------------------------------------ *)
(* Running and measurements *)

let run ?until ?max_events t = Sim.Engine.run ?until ?max_events t.engine

let totals t =
  let computations = ref 0
  and withdrawn = ref 0
  and proposals_flooded = ref 0
  and proposals_accepted = ref 0 in
  Array.iter
    (fun sw ->
      let s = Switch.stats sw in
      computations := !computations + s.Switch.computations;
      withdrawn := !withdrawn + s.Switch.computations_withdrawn;
      proposals_flooded := !proposals_flooded + s.Switch.proposals_flooded;
      proposals_accepted := !proposals_accepted + s.Switch.proposals_accepted)
    t.switches;
  {
    events = t.events;
    computations = !computations;
    computations_withdrawn = !withdrawn;
    mc_floodings = t.mc_floodings;
    link_floodings = t.link_floodings;
    proposals_flooded = !proposals_flooded;
    proposals_accepted = !proposals_accepted;
    messages = Lsr.Flooding.messages_sent t.flooding;
    acks = Lsr.Flooding.acks_sent t.flooding;
    retransmissions = Lsr.Flooding.retransmissions t.flooding;
  }

let reset_counters t =
  Array.iter
    (fun sw ->
      let s = Switch.stats sw in
      s.Switch.computations <- 0;
      s.Switch.computations_withdrawn <- 0;
      s.Switch.proposals_flooded <- 0;
      s.Switch.event_lsas_flooded <- 0;
      s.Switch.proposals_accepted <- 0;
      s.Switch.lsas_received <- 0)
    t.switches;
  Lsr.Flooding.reset_counters t.flooding;
  t.events <- 0;
  t.mc_floodings <- 0;
  t.link_floodings <- 0;
  t.first_event <- None;
  t.last_change <- None

let first_event_time t = t.first_event

let last_change_time t = t.last_change

let convergence_rounds t =
  match (t.first_event, t.last_change) with
  | Some first, Some last ->
    let round = Config.round_length t.config ~graph:t.graph in
    if round <= 0.0 then None else Some ((last -. first) /. round)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Agreement *)

let states t mc =
  Array.to_list t.switches
  |> List.filter_map (fun sw ->
         match (Switch.members sw mc, Switch.topology sw mc) with
         | Some m, Some tree -> Some (Switch.id sw, m, tree)
         | _ -> None)

let divergence t mc =
  let problems = ref [] in
  let report fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  (match states t mc with
  | [] -> ()
  | (ref_id, ref_members, ref_tree) :: rest ->
    List.iter
      (fun (id, m, tree) ->
        if not (Member.equal m ref_members) then
          report "switch %d member list differs from switch %d" id ref_id;
        if not (Mctree.Tree.equal tree ref_tree) then
          report "switch %d topology differs from switch %d" id ref_id)
      rest;
    let truth = truth_members t mc in
    if not (Member.equal ref_members truth) then
      report "member lists do not match injected ground truth";
    if not (Member.is_empty truth) then begin
      if not (Mctree.Tree.is_valid_mc_topology t.graph ref_tree) then
        report "agreed topology is not a valid embedded tree";
      let terminals = Mctree.Tree.Int_set.elements (Mctree.Tree.terminals ref_tree) in
      if terminals <> Member.ids truth then
        report "agreed topology terminals do not match the member set"
    end);
  Array.iter
    (fun sw ->
      if not (Switch.quiescent sw mc) then
        report "switch %d still has pending work" (Switch.id sw))
    t.switches;
  List.rev !problems

let converged t mc = divergence t mc = []

let agreed_topology t mc =
  match states t mc with
  | (_, _, tree) :: _ when converged t mc -> Some tree
  | _ -> None

let converged_among t mc ids =
  let sub =
    List.filter_map
      (fun i ->
        let sw = t.switches.(i) in
        match (Switch.members sw mc, Switch.topology sw mc) with
        | Some m, Some tree -> Some (m, tree)
        | _ -> None)
      ids
  in
  List.for_all (fun i -> Switch.quiescent t.switches.(i) mc) ids
  &&
  match sub with
  | [] -> true
  | (m0, t0) :: rest ->
    List.for_all
      (fun (m, tree) -> Member.equal m m0 && Mctree.Tree.equal tree t0)
      rest

(* ------------------------------------------------------------------ *)
(* Link-health observability *)

let health_summary t =
  Option.map
    (fun h ->
      let suppressed =
        Array.fold_left
          (fun acc agent ->
            List.fold_left
              (fun acc (_, _, s) -> if s then acc + 1 else acc)
              acc
              (Health.Hello.view agent))
          0 h.agents
      in
      let flaps =
        Array.fold_left (fun acc a -> acc + Health.Hello.flaps a) 0 h.agents
      in
      let pe, pc, pf =
        Array.fold_left
          (fun (e, c, f) p ->
            ( e + Health.Pacer.emitted p,
              c + Health.Pacer.coalesced p,
              f + Health.Pacer.forced p ))
          (0, 0, 0) h.pacers
      in
      {
        h_detections = h.hs_detections;
        h_recoveries = h.hs_recoveries;
        h_false_positives = h.hs_false_positives;
        h_latencies = List.sort Float.compare h.hs_latencies;
        h_bound = Health.Config.detect_bound h.hc;
        h_suppressed = suppressed;
        h_hellos = h.hs_hellos_sent;
        h_flaps = flaps;
        h_pacer_emitted = pe;
        h_pacer_coalesced = pc;
        h_pacer_forced = pf;
      })
    t.health

let health_views t =
  match t.health with
  | None -> []
  | Some h ->
    Array.to_list (Array.mapi (fun i a -> (i, Health.Hello.view a)) h.agents)
