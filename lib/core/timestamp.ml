type t = int array
(* Never mutated after construction; every operation returns a copy. *)

let zero n =
  if n <= 0 then invalid_arg "Timestamp.zero: size must be positive";
  Array.make n 0

let size = Array.length

let get t x =
  if x < 0 || x >= Array.length t then invalid_arg "Timestamp.get: out of range";
  t.(x)

let bump t x =
  if x < 0 || x >= Array.length t then invalid_arg "Timestamp.bump: out of range";
  let copy = Array.copy t in
  copy.(x) <- copy.(x) + 1;
  copy

let raise_to t x v =
  if x < 0 || x >= Array.length t then
    invalid_arg "Timestamp.raise_to: out of range";
  if v <= t.(x) then t
  else begin
    let copy = Array.copy t in
    copy.(x) <- v;
    copy
  end

let check_sizes a b =
  if Array.length a <> Array.length b then
    invalid_arg "Timestamp: size mismatch"

let merge a b =
  check_sizes a b;
  Array.mapi (fun i ai -> max ai b.(i)) a

let geq a b =
  check_sizes a b;
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) >= b.(i) && go (i + 1)) in
  go 0

let equal a b =
  check_sizes a b;
  a = b

let gt a b = geq a b && not (equal a b)

let order a b =
  match (geq a b, geq b a) with
  | true, true -> `Eq
  | true, false -> `Gt
  | false, true -> `Lt
  | false, false -> `Concurrent

let compare_total a b =
  check_sizes a b;
  let n = Array.length a in
  let rec go i =
    if i >= n then 0
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let sum t = Array.fold_left ( + ) 0 t

let of_array a =
  Array.iter (fun x -> if x < 0 then invalid_arg "Timestamp.of_array: negative") a;
  if Array.length a = 0 then invalid_arg "Timestamp.of_array: empty";
  Array.copy a

let to_array t = Array.copy t

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_seq t)
