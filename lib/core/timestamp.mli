(** Vector timestamps (paper §3).

    A timestamp is an n-tuple of natural numbers, where n is the number
    of switches; component [x] counts how many events have been heard
    from switch [x] for a given MC.  Timestamps are partially ordered
    componentwise; D-GMC uses them to detect topology proposals based on
    incomplete or obsolete information.

    Values are immutable: protocol state updates replace whole
    timestamps, which makes the saved-[old_R]-versus-current-[R]
    comparisons of the paper's algorithms trivially safe. *)

type t

val zero : int -> t
(** [zero n] is the n-component all-zero timestamp. *)

val size : t -> int

val get : t -> int -> int
(** Component access; raises [Invalid_argument] when out of range. *)

val bump : t -> int -> t
(** [bump t x] increments component [x]. *)

val raise_to : t -> int -> int -> t
(** [raise_to t x v] sets component [x] to [max (get t x) v] — used when
    an LSA's stamp conveys how many events its source had produced,
    which supersedes counting arrivals one by one. *)

val merge : t -> t -> t
(** Componentwise maximum — the least upper bound.  This is the paper's
    "E\[i\] = max(E\[i\], T\[i\])" update.  Sizes must agree. *)

val geq : t -> t -> bool
(** [geq a b] is the paper's [a >= b]: every component of [a] is at least
    the corresponding component of [b]. *)

val gt : t -> t -> bool
(** Strict: [geq a b] and [a <> b]. *)

val equal : t -> t -> bool

val order : t -> t -> [ `Eq | `Lt | `Gt | `Concurrent ]
(** Full classification under the partial order. *)

val compare_total : t -> t -> int
(** Lexicographic comparison — an arbitrary {e total} order extending
    [equal], for use as a deterministic tie-breaker (e.g. canonical state
    hashing in the model checker).  Unrelated to the causal partial
    order: concurrent stamps still compare unequal, consistently. *)

val sum : t -> int
(** Total number of events counted — handy in tests and traces. *)

val of_array : int array -> t
(** Copies; components must be non-negative. *)

val to_array : t -> int array
(** Fresh copy. *)

val pp : Format.formatter -> t -> unit
