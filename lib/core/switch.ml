module Mc_table = Hashtbl.Make (struct
  type t = Mc_id.t

  let equal = Mc_id.equal

  let hash = Mc_id.hash
end)

type stats = {
  mutable computations : int;
  mutable computations_withdrawn : int;
  mutable proposals_flooded : int;
  mutable event_lsas_flooded : int;
  mutable proposals_accepted : int;
  mutable lsas_received : int;
}

(* One in-flight crash-recovery resynchronisation exchange (see
   [begin_resync]).  The switch stays in this state — deferring normal
   MC-LSA handling — until [rs_quorum] neighbor exchanges complete, every
   neighbor resolves (delta applied or transport giveup), or the deadline
   fires. *)
type resync_session = {
  rs_id : int;  (** Session id echoed by deltas (stale deltas ignored). *)
  mutable rs_outstanding : int list;  (** Neighbors not yet resolved. *)
  mutable rs_completed : int;  (** Deltas applied. *)
  rs_quorum : int;
  mutable rs_deadline : Sim.Engine.handle option;
  rs_started : float;  (** Simulated start time, for the duration SLI. *)
}

type t = {
  id : int;
  n : int;
  config : Config.t;
  engine : Sim.Engine.t;
  lsdb : Lsr.Lsdb.t;
  mcs : Mc_state.t Mc_table.t;
  tombstones : (Timestamp.t * Timestamp.t * int array) Mc_table.t;
      (** (R, E, membership_seen) captured when an MC's state is deleted.
          Deletion frees the member list and topology, but event
          numbering must survive: a leave racing with a remote join can
          delete state while the MC lives on, and if a recreated state
          restarted its counters from zero, its events would read as
          stale (and merged E promises could never be met).  Recreation
          resumes from the tombstone. *)
  mutable flood : Mc_lsa.t -> unit;
  mutable flood_link : Lsr.Lsdb.link_event -> unit;
  mutable send_resync : peer:int -> Resync.msg -> unit;
  mutable on_change : unit -> unit;
  mutable resync_session : resync_session option;
  mutable resync_seq : int;  (** Fresh session ids. *)
  deferred : Mc_lsa.t Queue.t;
      (** MC LSAs received while RESYNCING, replayed in arrival order
          when the session finishes. *)
  stats : stats;
  trace : Sim.Trace.t;
  metrics : Metrics.Registry.t option;
}

let create ~id ~n ~config ~engine ~graph ?(trace = Sim.Trace.disabled) ?metrics
    () =
  {
    id;
    n;
    config;
    engine;
    lsdb = Lsr.Lsdb.create graph;
    mcs = Mc_table.create 8;
    tombstones = Mc_table.create 8;
    flood = (fun _ -> failwith "Switch: flood callback not installed");
    (* Defaults to a no-op (unlike [flood]): only resynchronisation
       re-disseminates link events, and standalone switches in unit
       tests never resync. *)
    flood_link = (fun _ -> ());
    send_resync =
      (fun ~peer:_ _ -> failwith "Switch: send_resync callback not installed");
    on_change = (fun () -> ());
    resync_session = None;
    resync_seq = 0;
    deferred = Queue.create ();
    stats =
      {
        computations = 0;
        computations_withdrawn = 0;
        proposals_flooded = 0;
        event_lsas_flooded = 0;
        proposals_accepted = 0;
        lsas_received = 0;
      };
    trace;
    metrics;
  }

let id t = t.id

let stats t = t.stats

let image t = Lsr.Lsdb.graph t.lsdb

let set_flood t f = t.flood <- f

let set_flood_link t f = t.flood_link <- f

let set_send_resync t f = t.send_resync <- f

let set_on_change t f = t.on_change <- f

let tracef t category fmt =
  Sim.Trace.recordf t.trace ~time:(Sim.Engine.now t.engine) ~category fmt

let traced t = Sim.Trace.enabled t.trace

(* Emit a structured event; -1 when tracing is off.  Callers build the
   payload inside a [traced t] guard so the hot path stays one branch. *)
let emit t ?parent event =
  Sim.Trace.emit t.trace ~time:(Sim.Engine.now t.engine) ?parent event

let metric t name =
  match t.metrics with
  | Some m -> Metrics.Registry.incr m ~switch:t.id name
  | None -> ()

let metric_observe t name v =
  match t.metrics with
  | Some m -> Metrics.Registry.observe m ~switch:t.id name v
  | None -> ()

let mc_str mc = Format.asprintf "%a" Mc_id.pp mc

(* ------------------------------------------------------------------ *)
(* State table *)

let get_state t mc = Mc_table.find_opt t.mcs mc

let get_or_create t mc =
  match Mc_table.find_opt t.mcs mc with
  | Some st -> st
  | None ->
    let st = Mc_state.create ~n:t.n in
    (* Resume event numbering where the previous incarnation left off. *)
    (match Mc_table.find_opt t.tombstones mc with
    | Some (r, e, seen) ->
      st.r <- r;
      st.e <- Timestamp.merge e r;
      Array.blit seen 0 st.membership_seen 0 t.n
    | None -> ());
    Mc_table.replace t.mcs mc st;
    st

(* A completion callback may fire after its state was deleted (and
   possibly recreated); physical equality identifies the incarnation. *)
let state_current t mc st =
  match Mc_table.find_opt t.mcs mc with Some s -> s == st | None -> false

(* MC destruction (paper §3.4): drop the state once the member list is
   empty — guarded so that no promised LSAs, queued LSAs or in-flight
   computations are abandoned, which keeps the timestamp accounting of
   the remaining switches sound. *)
let maybe_delete t mc (st : Mc_state.t) =
  if
    state_current t mc st
    && Member.is_empty st.members
    && Timestamp.geq st.r st.e
    && Queue.is_empty st.mailbox
    && st.event_computations = []
    && st.triggered = None
  then begin
    tracef t "mc-delete" "%a deleted" Mc_id.pp mc;
    Mc_table.replace t.tombstones mc
      (st.r, st.e, Array.copy st.membership_seen);
    Mc_table.remove t.mcs mc;
    (* Deletion is a state change observers care about (e.g. hierarchy
       leaders watching the logical level). *)
    t.on_change ()
  end

(* ------------------------------------------------------------------ *)
(* Flooding and installation *)

let flood_lsa t mc ~event ~proposal ?members ~stamp () =
  (match proposal with
  | Some _ ->
    t.stats.proposals_flooded <- t.stats.proposals_flooded + 1;
    metric t "switch.proposals_flooded"
  | None ->
    t.stats.event_lsas_flooded <- t.stats.event_lsas_flooded + 1;
    metric t "switch.event_lsas_flooded");
  t.flood (Mc_lsa.make ~src:t.id ~event ~mc ?proposal ?members ~stamp ())

(* A proposal computed before a link failure can be installed after it:
   the sender never saw the failure, and the usual detection (an incident
   link goes down while the INSTALLED topology uses it) fires too early
   to notice.  A switch knows the state of its own incident links
   authoritatively, so installation is a second detection point; every
   tree edge has two endpoint switches, which makes incident-only
   checking sufficient network-wide. *)
let tree_uses_dead_incident_link t tree =
  let img = Lsr.Lsdb.graph t.lsdb in
  List.exists
    (fun (u, v) ->
      (u = t.id || v = t.id)
      && Net.Graph.has_edge img u v
      && not (Net.Graph.link_is_up img u v))
    (Mctree.Tree.edges tree)

let compute_proposal t (st : Mc_state.t) (mc : Mc_id.t) =
  Compute.topology t.config mc.kind (Lsr.Lsdb.graph t.lsdb) st.members
    ~self:t.id ~current:(Some st.topology)

(* ------------------------------------------------------------------ *)
(* EventHandler (Figure 4) *)

let remove_computation (st : Mc_state.t) comp =
  st.event_computations <- List.filter (fun c -> c != comp) st.event_computations

let rec install t (st : Mc_state.t) mc ~stamp ~tree =
  st.c <- stamp;
  st.topology <- tree;
  metric t "switch.installs";
  if traced t then
    ignore
      (emit t
         (Topology_installed
            {
              switch = t.id;
              mc = mc_str mc;
              r = Timestamp.to_array st.r;
              e = Timestamp.to_array st.e;
              c = Timestamp.to_array stamp;
              members = Format.asprintf "%a" Member.pp st.members;
              tree = Format.asprintf "%a" Mctree.Tree.pp tree;
            }));
  t.on_change ();
  if tree_uses_dead_incident_link t tree then begin
    tracef t "detect" "sw%d installed a tree over a dead incident link" t.id;
    event_handler t mc Mc_lsa.Link
  end

and event_handler t mc event =
  let st = get_or_create t mc in
  (* The switch's own membership change applies immediately; received
     LSAs apply it at the other switches (Figure 5 line 8). *)
  (match event with
  | Mc_lsa.Join role ->
    st.members <- Member.join st.members t.id role;
    t.on_change ()
  | Mc_lsa.Leave ->
    st.members <- Member.leave st.members t.id;
    t.on_change ()
  | Mc_lsa.Link | Mc_lsa.No_event -> ());
  (* Line 1: R[x]++, E[x]++ — numbering is continuous across state
     incarnations because recreation resumes from the tombstone. *)
  st.r <- Timestamp.bump st.r t.id;
  st.e <- Timestamp.bump st.e t.id;
  st.membership_seen.(t.id) <- Timestamp.get st.r t.id;
  if Timestamp.geq st.r st.e then begin
    (* Lines 3-5: no outstanding LSAs — compute a proposal.  The result
       is fixed by the inputs now; validity is re-checked at +Tc. *)
    let old_r = st.r in
    let proposal = compute_proposal t st mc in
    let trace_id =
      if traced t then
        emit t
          (Compute_started
             {
               switch = t.id;
               mc = mc_str mc;
               trigger = "event:" ^ Mc_lsa.event_to_string event;
               r = Timestamp.to_array old_r;
             })
      else -1
    in
    let rec comp =
      lazy
        ({
           old_r;
           event;
           proposal;
           handle =
             Sim.Engine.schedule t.engine ~delay:t.config.tc (fun () ->
                 event_completion t mc st (Lazy.force comp));
           trace_id;
         }
          : Mc_state.computation)
    in
    let comp = Lazy.force comp in
    st.event_computations <- st.event_computations @ [ comp ]
  end
  else begin
    (* Lines 15-17: outstanding LSAs — flood the bare event and defer the
       proposal decision to ReceiveLSA. *)
    flood_lsa t mc ~event ~proposal:None ~stamp:st.r ();
    st.flag <- true
  end;
  maybe_delete t mc st

(* Lines 6-14, run at computation completion. *)
and event_completion t mc (st : Mc_state.t) (comp : Mc_state.computation) =
  remove_computation st comp;
  if state_current t mc st then begin
    t.stats.computations <- t.stats.computations + 1;
    metric t "switch.computations";
    if
      Timestamp.equal comp.old_r st.r
      (* Fault injection (Config.withdraw_stale_proposals = false): treat
         a stale result as valid — the protocol bug the model checker
         exists to catch. *)
      || not t.config.Config.withdraw_stale_proposals
    then begin
      (* Line 7-10: proposal still valid — flood it and adopt it.  The
         member snapshot corresponds to [old_r] (= R, no events arrived
         during the computation). *)
      let pid =
        if traced t then
          emit t ~parent:comp.trace_id
            (Proposal_made
               {
                 switch = t.id;
                 mc = mc_str mc;
                 withdrawn = false;
                 stamp = Timestamp.to_array comp.old_r;
               })
        else -1
      in
      Sim.Trace.with_context t.trace pid (fun () ->
          flood_lsa t mc ~event:comp.event ~proposal:(Some comp.proposal)
            ~members:st.members ~stamp:comp.old_r ();
          st.flag <- false;
          install t st mc ~stamp:comp.old_r ~tree:comp.proposal)
    end
    else begin
      (* Lines 11-13: R advanced during the computation — withdraw, but
         the event itself must still be advertised. *)
      t.stats.computations_withdrawn <- t.stats.computations_withdrawn + 1;
      metric t "switch.computations_withdrawn";
      let pid =
        if traced t then
          emit t ~parent:comp.trace_id
            (Proposal_made
               {
                 switch = t.id;
                 mc = mc_str mc;
                 withdrawn = true;
                 stamp = Timestamp.to_array comp.old_r;
               })
        else -1
      in
      Sim.Trace.with_context t.trace pid (fun () ->
          flood_lsa t mc ~event:comp.event ~proposal:None ~stamp:comp.old_r ());
      st.flag <- true
    end;
    maybe_delete t mc st
  end

(* ------------------------------------------------------------------ *)
(* ReceiveLSA (Figure 5) *)

(* Lines 4-17: consume one LSA. *)
let process_lsa t (st : Mc_state.t) (lsa : Mc_lsa.t) candidate =
  let s = lsa.src in
  if Mc_lsa.is_event lsa then begin
    (* Line 7: count the event.  The stamp's own component carries the
       event's index at its source, so "raise to" rather than increment —
       equivalent on in-order floods, and robust when knowledge arrived
       in aggregated form (post-partition resynchronisation). *)
    st.r <- Timestamp.raise_to st.r s (Timestamp.get lsa.stamp s);
    (* Line 8: apply membership changes.  T[S] sequences the events of
       switch S, so a reordered stale membership LSA is counted but not
       applied over a newer one. *)
    if Mc_lsa.is_membership_event lsa then begin
      let seq = Timestamp.get lsa.stamp s in
      if seq > st.membership_seen.(s) then begin
        st.membership_seen.(s) <- seq;
        tracef t "member" "sw%d applies %s from %d seq %d" t.id
          (Mc_lsa.event_to_string lsa.event) s seq;
        (match lsa.event with
        | Mc_lsa.Join role -> st.members <- Member.join st.members s role
        | Mc_lsa.Leave -> st.members <- Member.leave st.members s
        | Mc_lsa.Link | Mc_lsa.No_event -> ());
        t.on_change ()
      end
      else
        tracef t "member" "sw%d SKIPS stale %s from %d seq %d (seen %d)" t.id
          (Mc_lsa.event_to_string lsa.event) s seq st.membership_seen.(s)
    end
  end;
  (* Line 10: learn what to expect. *)
  st.e <- Timestamp.merge st.e lsa.stamp;
  (* Resynchronisation extension: an up-to-date proposal's member-list
     snapshot is authoritative for everything its stamp covers.  This is
     how a switch that missed events across a healed partition catches
     up without replaying them. *)
  (match lsa.members with
  | Some snapshot when Timestamp.geq lsa.stamp st.e ->
    if not (Member.equal st.members snapshot) then begin
      tracef t "adopt" "sw%d adopts snapshot %s from src %d stamp %s E=%s R=%s (was %s)"
        t.id (Format.asprintf "%a" Member.pp snapshot) lsa.src
        (Format.asprintf "%a" Timestamp.pp lsa.stamp)
        (Format.asprintf "%a" Timestamp.pp st.e)
        (Format.asprintf "%a" Timestamp.pp st.r)
        (Format.asprintf "%a" Member.pp st.members);
      st.members <- snapshot;
      t.on_change ()
    end;
    Array.iteri
      (fun i seen ->
        let promised = Timestamp.get lsa.stamp i in
        if promised > seen then st.membership_seen.(i) <- promised)
      st.membership_seen;
    st.r <- Timestamp.merge st.r lsa.stamp
  | Some _ | None -> ());
  (* Lines 11-17: accept an up-to-date proposal, or detect that the
     sender did not know all our local events.

     Tie-break extension: two switches holding the same event knowledge
     can legitimately flood different trees under the SAME stamp, because
     incremental updates (§3.5) are history-dependent.  The paper
     implicitly assumes deterministic computation; with incremental
     updates we restore network-wide determinism by preferring, among
     equal-stamp proposals, the Tree.compare-minimal one — every switch
     sees every flooded proposal, so every switch settles on the same
     winner regardless of arrival order. *)
  match lsa.proposal with
  | Some tree when Timestamp.geq lsa.stamp st.e ->
    let replaces =
      match !candidate with
      | None -> true
      | Some (cur_tree, cur_stamp) ->
        Timestamp.gt lsa.stamp cur_stamp
        || (Timestamp.equal lsa.stamp cur_stamp
            && Mctree.Tree.compare tree cur_tree < 0)
    in
    if replaces then candidate := Some (tree, lsa.stamp);
    st.flag <- false
  | Some _ | None ->
    (* The sender's stamp is behind our own event count: it computed (or
       refrained) without knowing our events, so we owe the network a
       proposal.  (Config.flag_stale_senders = false suppresses this —
       the fault the model checker demonstrates against.) *)
    if
      t.config.Config.flag_stale_senders
      && Timestamp.get st.r t.id > Timestamp.get lsa.stamp t.id
    then st.flag <- true

let rec run_invocation t mc (st : Mc_state.t) =
  (* Lines 1-2: candidate proposal local to this invocation. *)
  let candidate = ref None in
  (* Lines 3-18: drain the mailbox. *)
  while not (Queue.is_empty st.mailbox) do
    process_lsa t st (Queue.pop st.mailbox) candidate
  done;
  (* Line 19: decide whether to compute. *)
  if st.flag && Timestamp.geq st.r st.e && Timestamp.gt st.r st.c then
    start_triggered t mc st
  else begin
    (* Lines 32-35: adopt an accepted proposal.  A candidate whose stamp
       only ties the installed topology's C replaces it solely when it
       wins the deterministic tie-break (see process_lsa). *)
    match !candidate with
    | Some (tree, stamp) ->
      let replaces =
        Timestamp.gt stamp st.c
        || (Timestamp.equal stamp st.c
            && Mctree.Tree.compare tree st.topology < 0)
      in
      if replaces then begin
        t.stats.proposals_accepted <- t.stats.proposals_accepted + 1;
        metric t "switch.proposals_accepted";
        install t st mc ~stamp ~tree
      end
    | None -> ()
  end;
  maybe_delete t mc st

and start_triggered t mc (st : Mc_state.t) =
  let old_r = st.r in
  let proposal = compute_proposal t st mc in
  let trace_id =
    if traced t then
      emit t
        (Compute_started
           {
             switch = t.id;
             mc = mc_str mc;
             trigger = "receive-lsa";
             r = Timestamp.to_array old_r;
           })
    else -1
  in
  let rec comp =
    lazy
      ({
         old_r;
         event = Mc_lsa.No_event;
         proposal;
         handle =
           Sim.Engine.schedule t.engine ~delay:t.config.tc (fun () ->
               triggered_completion t mc st (Lazy.force comp));
         trace_id;
       }
        : Mc_state.computation)
  in
  st.triggered <- Some (Lazy.force comp)

(* Lines 22-31, run at computation completion. *)
and triggered_completion t mc (st : Mc_state.t) (comp : Mc_state.computation) =
  if st.triggered <> None then begin
    st.triggered <- None;
    if state_current t mc st then begin
      t.stats.computations <- t.stats.computations + 1;
      metric t "switch.computations";
      if Queue.is_empty st.mailbox && Timestamp.equal comp.old_r st.r then begin
        (* Lines 23-27: still up to date — flood, install, expect no
           more. *)
        let pid =
          if traced t then
            emit t ~parent:comp.trace_id
              (Proposal_made
                 {
                   switch = t.id;
                   mc = mc_str mc;
                   withdrawn = false;
                   stamp = Timestamp.to_array comp.old_r;
                 })
          else -1
        in
        Sim.Trace.with_context t.trace pid (fun () ->
            flood_lsa t mc ~event:Mc_lsa.No_event
              ~proposal:(Some comp.proposal) ~members:st.members
              ~stamp:comp.old_r ();
            st.e <- comp.old_r;
            st.flag <- false;
            install t st mc ~stamp:comp.old_r ~tree:comp.proposal)
      end
      else begin
        (* Lines 28-30: obsolete — withdraw silently. *)
        t.stats.computations_withdrawn <- t.stats.computations_withdrawn + 1;
        metric t "switch.computations_withdrawn"
      end;
      if not (Queue.is_empty st.mailbox) then run_invocation t mc st
      else maybe_delete t mc st
    end
  end

(* ------------------------------------------------------------------ *)
(* Database resynchronisation (extension; see mli) *)

(* An installed topology is contradicted by the switch's (possibly just
   merged) image when it is no longer a valid embedded tree or no longer
   spans exactly the member set. *)
let topology_stale t (st : Mc_state.t) =
  (not (Member.is_empty st.members))
  && (let img = Lsr.Lsdb.graph t.lsdb in
      (not (Mctree.Tree.is_valid_mc_topology img st.topology))
      || not
           (List.equal Int.equal
              (Mctree.Tree.Int_set.elements
                 (Mctree.Tree.terminals st.topology))
              (Member.ids st.members)))

(* Version-gated merge of link entries into the local image.  A link
   event flooded while this switch was unreachable died at the severed
   links — flooding only forwards over live links — and nothing re-floods
   it spontaneously; D-GMC's agreement argument assumes the unicast
   databases converge (paper §1).  Versioned entries make the merge a
   per-link max; adopted events are re-flooded under this switch's own
   origin so switches BEHIND it learn them too (receivers version-gate,
   so duplicates are no-ops).  Returns whether the image changed. *)
let merge_links t ~source entries =
  let changed = ref false in
  List.iter
    (fun (ev : Lsr.Lsdb.link_event) ->
      if ev.version > Lsr.Lsdb.version t.lsdb ~u:ev.u ~v:ev.v then begin
        Lsr.Lsdb.apply t.lsdb ev;
        changed := true;
        tracef t "resync" "sw%d adopts %a from sw%d" t.id
          Lsr.Lsdb.pp_link_event ev source;
        t.flood_link ev
      end)
    entries;
  !changed

(* A changed image invalidates installs computed on the old one even for
   MCs a resynchronisation taught us nothing about.  Re-propose for every
   MC whose installed topology is contradicted by the merged image;
   consistent MCs saw nothing new and stay silent, keeping exchanges
   idempotent. *)
let revalidate_installs t ~peer =
  List.iter
    (fun mc ->
      match get_state t mc with
      | Some st
        when st.triggered = None
             && Timestamp.geq st.r st.e
             && topology_stale t st ->
        let rid =
          if traced t then
            emit t (Resync { switch = t.id; peer; mc = mc_str mc })
          else -1
        in
        Sim.Trace.with_context t.trace rid (fun () ->
            st.flag <- true;
            start_triggered t mc st)
      | Some _ | None -> ())
    (Mc_table.fold (fun mc _ acc -> mc :: acc) t.mcs []
    |> List.sort Mc_id.compare)

let resync t ~peer =
  (* Phase 1: merge the peer's link-state image. *)
  let image_changed =
    merge_links t ~source:peer.id (Lsr.Lsdb.entries peer.lsdb)
  in
  (* Phase 2: merge the peer's per-MC state. *)
  Mc_table.iter
    (fun mc (pst : Mc_state.t) ->
      let st = get_or_create t mc in
      let merged_r = Timestamp.merge st.r pst.r in
      let learned = not (Timestamp.equal merged_r st.r) in
      st.e <- Timestamp.merge st.e pst.e;
      if learned then begin
        let rid =
          if traced t then
            emit t (Resync { switch = t.id; peer = peer.id; mc = mc_str mc })
          else -1
        in
        Sim.Trace.with_context t.trace rid (fun () ->
            (* Merge R before adopting the peer's membership cursors: each
               cursor is covered by the peer's R, so observers fired from
               the loop below never see a cursor ahead of R. *)
            st.r <- merged_r;
            (* Adopt the peer's per-source membership knowledge where it
               is newer; its member entry for source [s] reflects all of
               [s]'s events up to pst.membership_seen.(s). *)
            Array.iteri
              (fun src peer_seen ->
                if peer_seen > st.membership_seen.(src) then begin
                  st.membership_seen.(src) <- peer_seen;
                  (match Member.role pst.members src with
                  | Some role -> st.members <- Member.join st.members src role
                  | None -> st.members <- Member.leave st.members src);
                  t.on_change ()
                end)
              pst.membership_seen;
            (* Adopt the peer's installed topology when based on newer
               state (same acceptance rule as for received proposals). *)
            if
              Timestamp.gt pst.c st.c
              || (Timestamp.equal pst.c st.c
                 && Mctree.Tree.compare pst.topology st.topology < 0)
            then install t st mc ~stamp:pst.c ~tree:pst.topology;
            st.flag <- true;
            (* Reflood even when the adopted topology already covers R
               (R = C): adopting silently would strand every switch
               BEHIND this one — they never see what this exchange
               learned, and nobody else will re-flood it (the peer's
               original flood died at the severed link).  The extra
               proposal is idempotent for up-to-date receivers. *)
            if st.triggered = None && Timestamp.geq st.r st.e then
              start_triggered t mc st)
      end)
    peer.mcs;
  (* Phase 3: re-propose wherever the merged image contradicts an
     install (the peer may never have been a member of the MC). *)
  if image_changed then revalidate_installs t ~peer:peer.id

(* ------------------------------------------------------------------ *)
(* Public entry points *)

let host_join t mc role = event_handler t mc (Mc_lsa.Join role)

let host_leave t mc = event_handler t mc Mc_lsa.Leave

let link_event t (ev : Lsr.Lsdb.link_event) ~detector =
  Lsr.Lsdb.apply t.lsdb ev;
  if detector && not ev.up then begin
    let affected =
      Mc_table.fold
        (fun mc (st : Mc_state.t) acc ->
          if Mctree.Tree.mem_edge st.topology ev.u ev.v then mc :: acc
          else acc)
        t.mcs []
    in
    (* One MC LSA per affected connection (paper Figure 2). *)
    List.iter (fun mc -> event_handler t mc Mc_lsa.Link) affected
  end

let receive_now t lsa =
  match get_state t lsa.Mc_lsa.mc with
  | None when not (Mc_lsa.is_event lsa) ->
    (* A bare proposal for an MC this switch holds no state for: the MC
       is already destroyed locally; ignore rather than resurrect. *)
    ()
  | maybe_state ->
    let st =
      match maybe_state with
      | Some st -> st
      | None -> get_or_create t lsa.Mc_lsa.mc
    in
    Queue.push lsa st.mailbox;
    (* ReceiveLSA is activated whenever LSAs are present — unless its
       single process is mid-computation, in which case the mailbox
       accumulates until the completion handler re-invokes it. *)
    if st.triggered = None then run_invocation t lsa.Mc_lsa.mc st

let receive t lsa =
  t.stats.lsas_received <- t.stats.lsas_received + 1;
  metric t "switch.lsas_received";
  match t.resync_session with
  | Some _ ->
    (* RESYNCING: normal MC handling is suspended so the switch never
       computes or proposes on partially reconciled state.  The LSA is
       replayed in arrival order when the session finishes. *)
    tracef t "resync" "sw%d defers %a while resyncing" t.id Mc_lsa.pp lsa;
    metric t "switch.resync_deferred_lsas";
    Queue.push lsa t.deferred
  | None -> receive_now t lsa

(* ------------------------------------------------------------------ *)
(* Crash-recovery resynchronisation (see resync.mli and DESIGN.md).

   The paper has no recovery story: it assumes every LSA reaches every
   live switch.  A switch whose forwarding plane was down for a crash
   window silently missed floods and would diverge forever.  On recovery
   it therefore summarises its databases to each live neighbor, applies
   their deltas, and only then replays the MC LSAs that arrived while it
   was reconciling. *)

let resyncing t = Option.is_some t.resync_session

let deferred_lsas t = List.of_seq (Queue.to_seq t.deferred)

let resync_state t =
  Option.map
    (fun s ->
      (s.rs_id, List.sort Int.compare s.rs_outstanding, s.rs_completed,
       s.rs_quorum))
    t.resync_session

let build_summary t session =
  let live =
    Mc_table.fold
      (fun mc (st : Mc_state.t) acc ->
        {
          Resync.sum_mc = mc;
          sum_r = st.r;
          sum_e = st.e;
          sum_c = st.c;
          sum_tree_fp = Mctree.Tree.fingerprint st.topology;
        }
        :: acc)
      t.mcs []
  in
  (* Tombstones carry surviving event numbering; summarising them lets a
     neighbor that still holds live state for the MC push it back. *)
  let all =
    Mc_table.fold
      (fun mc (r, e, _) acc ->
        if Mc_table.mem t.mcs mc then acc
        else
          {
            Resync.sum_mc = mc;
            sum_r = r;
            sum_e = e;
            sum_c = Timestamp.zero t.n;
            sum_tree_fp = Mctree.Tree.fingerprint Mctree.Tree.empty;
          }
          :: acc)
      t.tombstones live
  in
  Resync.Summary
    {
      session;
      origin = t.id;
      links = Lsr.Lsdb.entries t.lsdb;
      mcs =
        List.sort (fun a b -> Mc_id.compare a.Resync.sum_mc b.Resync.sum_mc) all;
    }

let finish_resync t ~reason =
  match t.resync_session with
  | None -> ()
  | Some s ->
    Option.iter Sim.Engine.cancel s.rs_deadline;
    t.resync_session <- None;
    tracef t "resync" "sw%d session %d finished (%s) after %d exchange(s)" t.id
      s.rs_id reason s.rs_completed;
    metric t
      (if s.rs_completed >= s.rs_quorum then "switch.resyncs_completed"
       else "switch.resyncs_degraded");
    metric_observe t "switch.resync_duration_s"
      (Sim.Engine.now t.engine -. s.rs_started);
    (* Replay LSAs that arrived during the exchange, in arrival order.
       [resync_session] is already [None], so replay goes through the
       normal machinery and may start computations. *)
    while not (Queue.is_empty t.deferred) do
      receive_now t (Queue.pop t.deferred)
    done;
    (* Re-propose wherever the reconciled state demands it: exports set
       the recompute flag but deliberately do not trigger mid-session
       (a later delta could supersede); installs may also contradict the
       merged image.  Same idempotence argument as [revalidate_installs]. *)
    List.iter
      (fun mc ->
        match get_state t mc with
        | Some st ->
          if
            st.triggered = None
            && Timestamp.geq st.r st.e
            && (st.flag || topology_stale t st)
          then begin
            let rid =
              if traced t then
                emit t (Resync { switch = t.id; peer = t.id; mc = mc_str mc })
              else -1
            in
            Sim.Trace.with_context t.trace rid (fun () ->
                st.flag <- true;
                start_triggered t mc st)
          end;
          maybe_delete t mc st
        | None -> ())
      (Mc_table.fold (fun mc _ acc -> mc :: acc) t.mcs []
      |> List.sort Mc_id.compare)

let resync_transport_failed t ~peer =
  match t.resync_session with
  | None -> ()
  | Some s ->
    if List.exists (fun p -> p = peer) s.rs_outstanding then begin
      s.rs_outstanding <- List.filter (fun p -> p <> peer) s.rs_outstanding;
      tracef t "resync" "sw%d gives up on neighbor sw%d" t.id peer;
      metric t "switch.resync_giveups";
      (* The quorum may have become unreachable: every neighbor resolved
         (delta or giveup) yet fewer than [rs_quorum] deltas arrived. *)
      if s.rs_outstanding = [] then finish_resync t ~reason:"exhausted"
    end

let begin_resync_impl t =
  (* A second crash window can close while an earlier session is still in
     flight; the fresh recovery supersedes it (deferred LSAs survive the
     restart — the queue belongs to the switch, not the session). *)
  (match t.resync_session with
  | Some s ->
    Option.iter Sim.Engine.cancel s.rs_deadline;
    t.resync_session <- None;
    tracef t "resync" "sw%d restarts resync (session %d superseded)" t.id
      s.rs_id
  | None -> ());
  t.resync_seq <- t.resync_seq + 1;
  let sid = t.resync_seq in
  metric t "switch.resyncs_started";
  (* [Net.Graph.neighbors] yields live neighbors only — by this switch's
     own (possibly stale) image, which is exactly the set it can try. *)
  match List.map fst (Net.Graph.neighbors (Lsr.Lsdb.graph t.lsdb) t.id) with
  | [] ->
    tracef t "resync" "sw%d recovers with no live neighbors (degraded)" t.id;
    metric t "switch.resyncs_degraded"
  | neighbors ->
    let quorum =
      max 1 (min t.config.Config.resync_quorum (List.length neighbors))
    in
    let s =
      {
        rs_id = sid;
        rs_outstanding = neighbors;
        rs_completed = 0;
        rs_quorum = quorum;
        rs_deadline = None;
        rs_started = Sim.Engine.now t.engine;
      }
    in
    (* Install the session before sending: under the model-checking
       harness a summary to a crashed neighbor gives up synchronously. *)
    t.resync_session <- Some s;
    s.rs_deadline <-
      Some
        (Sim.Engine.schedule t.engine
           ~delay:(t.config.Config.resync_deadline_hops *. t.config.Config.t_hop)
           (fun () ->
             match t.resync_session with
             | Some s' when s'.rs_id = sid -> finish_resync t ~reason:"deadline"
             | Some _ | None -> ()));
    let summary = build_summary t sid in
    List.iter
      (fun nb ->
        let rid =
          if traced t then emit t (Resync { switch = t.id; peer = nb; mc = "" })
          else -1
        in
        Sim.Trace.with_context t.trace rid (fun () ->
            metric t "switch.resync_summaries_sent";
            t.send_resync ~peer:nb summary))
      neighbors

let begin_resync t =
  let ph = Metrics.Phase.ambient () in
  Metrics.Phase.enter ph "dgmc.resync";
  match begin_resync_impl t with
  | () -> Metrics.Phase.leave ph
  | exception e ->
    Metrics.Phase.leave ph;
    raise e

(* Apply one exported MC state from a delta.  Mirrors the pairwise
   [resync] phase 2, except re-proposal is deferred to [finish_resync]
   (a later delta in the same session could supersede this one). *)
let apply_export t (e : Resync.mc_export) =
  let st = get_or_create t e.exp_mc in
  let merged_r = Timestamp.merge st.r e.exp_r in
  let learned = not (Timestamp.equal merged_r st.r) in
  st.e <- Timestamp.merge st.e e.exp_e;
  if learned then begin
    st.r <- merged_r;
    Array.iteri
      (fun src peer_seen ->
        if peer_seen > st.membership_seen.(src) then begin
          st.membership_seen.(src) <- peer_seen;
          (match Member.role e.exp_members src with
          | Some role -> st.members <- Member.join st.members src role
          | None -> st.members <- Member.leave st.members src);
          t.on_change ()
        end)
      e.exp_membership_seen;
    if
      Timestamp.gt e.exp_c st.c
      || (Timestamp.equal e.exp_c st.c
         && Mctree.Tree.compare e.exp_topology st.topology < 0)
    then install t st e.exp_mc ~stamp:e.exp_c ~tree:e.exp_topology;
    st.flag <- true
  end

(* Stateless delta responder: ship link entries strictly newer than the
   summary's and full exports for every MC where this switch knows
   events the summary's R does not cover (or holds a different
   same-stamp tree). *)
let answer_summary t ~session ~peer (sum_links : Lsr.Lsdb.link_event list)
    (sum_mcs : Resync.mc_summary list) =
  let summarised_version u v =
    match
      List.find_opt
        (fun (l : Lsr.Lsdb.link_event) -> l.u = u && l.v = v)
        sum_links
    with
    | Some l -> l.version
    | None -> 0
  in
  let links =
    List.filter
      (fun (ev : Lsr.Lsdb.link_event) ->
        ev.version > summarised_version ev.u ev.v)
      (Lsr.Lsdb.entries t.lsdb)
  in
  let summary_of mc =
    List.find_opt (fun s -> Mc_id.equal s.Resync.sum_mc mc) sum_mcs
  in
  let live =
    Mc_table.fold
      (fun mc (st : Mc_state.t) acc ->
        let behind =
          match summary_of mc with
          | None -> true
          | Some s ->
            (not (Timestamp.geq s.sum_r st.r))
            || (not (Timestamp.geq s.sum_e st.e))
            || Timestamp.gt st.c s.sum_c
            || (Timestamp.equal st.c s.sum_c
               && not
                    (String.equal s.sum_tree_fp
                       (Mctree.Tree.fingerprint st.topology)))
        in
        if behind then
          {
            Resync.exp_mc = mc;
            exp_r = st.r;
            exp_e = st.e;
            exp_c = st.c;
            exp_members = st.members;
            exp_membership_seen = Array.copy st.membership_seen;
            exp_topology = st.topology;
          }
          :: acc
        else acc)
      t.mcs []
  in
  (* Tombstoned MCs: the recoverer may have missed the leaves that
     emptied the MC; exporting the surviving accounting with an empty
     member list replays them. *)
  let all =
    Mc_table.fold
      (fun mc (r, e, seen) acc ->
        if Mc_table.mem t.mcs mc then acc
        else
          let behind =
            match summary_of mc with
            | None -> true
            | Some s ->
              (not (Timestamp.geq s.sum_r r))
              || not (Timestamp.geq s.sum_e e)
          in
          if behind then
            {
              Resync.exp_mc = mc;
              exp_r = r;
              exp_e = e;
              exp_c = Timestamp.zero t.n;
              exp_members = Member.empty;
              exp_membership_seen = Array.copy seen;
              exp_topology = Mctree.Tree.empty;
            }
            :: acc
          else acc)
      t.tombstones live
  in
  let mcs =
    List.sort (fun a b -> Mc_id.compare a.Resync.exp_mc b.Resync.exp_mc) all
  in
  (* Reply even when empty: the recoverer counts the exchange toward its
     quorum either way. *)
  metric t "switch.resync_deltas_sent";
  t.send_resync ~peer (Resync.Delta { session; origin = t.id; links; mcs })

let receive_resync_impl t msg =
  match msg with
  | Resync.Summary { session; origin = peer; links; mcs } ->
    metric t "switch.resync_summaries_received";
    let rid =
      if traced t then emit t (Resync { switch = t.id; peer; mc = "" }) else -1
    in
    Sim.Trace.with_context t.trace rid (fun () ->
        (* The recoverer's own incident links may have changed during its
           outage, and their floods died with it: adopt (and re-flood)
           anything newer its summary proves, then revalidate installs
           against the merged image — the responder is NOT suspended. *)
        if merge_links t ~source:peer links then revalidate_installs t ~peer;
        answer_summary t ~session ~peer links mcs)
  | Resync.Delta { session; origin = peer; links; mcs } -> (
    match t.resync_session with
    | Some s
      when s.rs_id = session && List.exists (fun p -> p = peer) s.rs_outstanding
      ->
      metric t "switch.resync_deltas_applied";
      let rid =
        if traced t then emit t (Resync { switch = t.id; peer; mc = "" })
        else -1
      in
      Sim.Trace.with_context t.trace rid (fun () ->
          ignore (merge_links t ~source:peer links);
          List.iter (apply_export t) mcs);
      s.rs_outstanding <- List.filter (fun p -> p <> peer) s.rs_outstanding;
      s.rs_completed <- s.rs_completed + 1;
      if s.rs_completed >= s.rs_quorum then finish_resync t ~reason:"quorum"
      else if s.rs_outstanding = [] then finish_resync t ~reason:"exhausted"
    | Some _ | None ->
      (* Stale: from a superseded session, after the deadline fired, or a
         duplicate delivery.  Everything it carries was either applied
         already or will be re-learned; dropping is safe. *)
      tracef t "resync" "sw%d drops stale resync delta from sw%d" t.id peer;
      metric t "switch.resync_stale_deltas")

let receive_resync t msg =
  let ph = Metrics.Phase.ambient () in
  Metrics.Phase.enter ph "dgmc.resync";
  match receive_resync_impl t msg with
  | () -> Metrics.Phase.leave ph
  | exception e ->
    Metrics.Phase.leave ph;
    raise e

(* ------------------------------------------------------------------ *)
(* Introspection *)

let lsdb_entries t = Lsr.Lsdb.entries t.lsdb

let lsdb_changed_count t = Lsr.Lsdb.changed_count t.lsdb

let mc_ids t =
  Mc_table.fold (fun mc _ acc -> mc :: acc) t.mcs []
  |> List.sort Mc_id.compare

let members t mc =
  Option.map (fun (st : Mc_state.t) -> st.members) (get_state t mc)

let topology t mc =
  Option.map (fun (st : Mc_state.t) -> st.topology) (get_state t mc)

let stamps t mc =
  Option.map (fun (st : Mc_state.t) -> (st.r, st.e, st.c)) (get_state t mc)

let quiescent t mc =
  Option.is_none t.resync_session
  && Queue.fold
       (fun acc (lsa : Mc_lsa.t) -> acc && not (Mc_id.equal lsa.mc mc))
       true t.deferred
  &&
  match get_state t mc with
  | None -> true
  | Some st ->
    Queue.is_empty st.mailbox
    && st.event_computations = []
    && st.triggered = None

type mc_snapshot = {
  snap_mc : Mc_id.t;
  snap_r : Timestamp.t;
  snap_e : Timestamp.t;
  snap_c : Timestamp.t;
  snap_flag : bool;
  snap_members : Member.t;
  snap_topology : Mctree.Tree.t;
  snap_membership_seen : int array;
  snap_mailbox : Mc_lsa.t list;
  snap_computations : Timestamp.t list;
  snap_triggered : Timestamp.t option;
}

let snapshots t =
  Mc_table.fold
    (fun mc (st : Mc_state.t) acc ->
      {
        snap_mc = mc;
        snap_r = st.r;
        snap_e = st.e;
        snap_c = st.c;
        snap_flag = st.flag;
        snap_members = st.members;
        snap_topology = st.topology;
        snap_membership_seen = Array.copy st.membership_seen;
        snap_mailbox = List.of_seq (Queue.to_seq st.mailbox);
        snap_computations =
          List.map (fun (c : Mc_state.computation) -> c.old_r) st.event_computations;
        snap_triggered =
          Option.map (fun (c : Mc_state.computation) -> c.old_r) st.triggered;
      }
      :: acc)
    t.mcs []
  |> List.sort (fun a b -> Mc_id.compare a.snap_mc b.snap_mc)
