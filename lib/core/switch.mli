(** A D-GMC protocol switch: the two protocol entities of paper §3.3.

    [EventHandler()] (Figure 4) runs when a local event — a host
    join/leave through this ingress switch, or an incident link event
    affecting an MC — occurs.  [ReceiveLSA()] (Figure 5) runs whenever MC
    LSAs are present in the switch's mailbox.  Topology computations take
    [Config.tc] of simulated time; both entities re-validate their saved
    [old_R] against the live [R] at completion and withdraw proposals that
    became stale, exactly as the paper prescribes.

    A switch never floods LSAs itself: it calls the [flood] callback
    installed by {!Protocol}, which wraps the payload in an {!Lsr.Lsa.t}
    envelope and runs the shared flooding machinery. *)

type stats = {
  mutable computations : int;
      (** Topology computations completed (proposals per event metric). *)
  mutable computations_withdrawn : int;
      (** Completed computations whose proposal was withdrawn. *)
  mutable proposals_flooded : int;
  mutable event_lsas_flooded : int;  (** MC LSAs flooded without proposal. *)
  mutable proposals_accepted : int;  (** Received proposals installed. *)
  mutable lsas_received : int;
}

type t

val create :
  id:int ->
  n:int ->
  config:Config.t ->
  engine:Sim.Engine.t ->
  graph:Net.Graph.t ->
  ?trace:Sim.Trace.t ->
  ?metrics:Metrics.Registry.t ->
  unit ->
  t
(** [graph] seeds the switch's private link-state image (a deep copy).

    An enabled [trace] receives structured events for every protocol
    transition: [Compute_started] when a topology computation begins
    (trigger [event:<v>] for [EventHandler], [receive-lsa] for the
    triggered entity), [Proposal_made] at completion (with [withdrawn]
    set when the result was stale), [Topology_installed] whenever [C]
    and the installed tree change (carrying the full R/E/C vectors,
    member list and tree), and [Resync] per MC pulled from a peer; the
    flooding and adoption these cause are linked to them causally.
    [metrics] mirrors {!stats} into [switch.*] counters labelled with
    this switch's id. *)

val id : t -> int

val stats : t -> stats

val image : t -> Net.Graph.t
(** The switch's current link-state image. *)

val lsdb_entries : t -> Lsr.Lsdb.link_event list
(** Versioned link entries of the image ({!Lsr.Lsdb.entries}): the
    version knowledge behind [image], which up/down flags alone do not
    capture (the model checker hashes it; resynchronisation ships it). *)

val lsdb_changed_count : t -> int
(** [List.length (lsdb_entries t)] in O(1) without allocation — the
    per-switch LSDB-size figure the flight recorder samples. *)

val set_flood : t -> (Mc_lsa.t -> unit) -> unit
(** Install the flooding callback.  Must be called before any event. *)

val set_flood_link : t -> (Lsr.Lsdb.link_event -> unit) -> unit
(** Install the link-event re-flooding callback, used by {!resync} to
    re-disseminate link knowledge adopted from a peer (version gating at
    receivers makes duplicates no-ops).  Defaults to a no-op. *)

val set_send_resync : t -> (peer:int -> Resync.msg -> unit) -> unit
(** Install the unicast transport for crash-recovery resynchronisation
    messages ({!begin_resync}/{!receive_resync}).  Defaults to raising:
    only {!Protocol} (and the {!module:Check} harness) wire it, and a
    switch only uses it when a crash recovery is injected. *)

val set_on_change : t -> (unit -> unit) -> unit
(** Hook invoked whenever this switch installs a topology or updates a
    member list — used for convergence-time measurement. *)

(** {1 Local events (EventHandler)} *)

val host_join : t -> Mc_id.t -> Member.role -> unit
(** A host attached to this switch joins the MC. *)

val host_leave : t -> Mc_id.t -> unit
(** The switch's last interested host leaves. *)

val link_event : t -> Lsr.Lsdb.link_event -> detector:bool -> unit
(** Apply a link status change to the local image (version-gated; see
    {!Lsr.Lsdb.apply}).  When [detector] is true (the link is incident to
    this switch, which noticed the change) and the link went down,
    [EventHandler] runs for every MC whose current local topology uses
    the link (paper Figure 2). *)

(** {1 LSA reception (ReceiveLSA)} *)

val receive : t -> Mc_lsa.t -> unit
(** Deliver one MC LSA into the mailbox; triggers a [ReceiveLSA()]
    invocation unless one is mid-computation. *)

(** {1 Database resynchronisation (extension)} *)

val resync : t -> peer:t -> unit
(** Pull the peer switch's knowledge into this switch — the analogue of
    an OSPF database exchange when an adjacency forms.  Three phases:
    merge the peer's versioned link-state image (adopted link events are
    re-flooded via {!set_flood_link} so switches behind this one learn
    them too); for every MC the peer tracks, merge its [R]/[E] vectors,
    adopt its per-source membership knowledge where newer, adopt its
    topology where based on newer state, and — when anything new was
    learned — schedule a topology computation whose proposal refloods
    the reconciled state; finally, if the image changed, re-propose for
    every MC whose installed topology the merged image contradicts.  The
    paper leaves network partitioning "for further study"; this is the
    missing piece that lets the two sides of a healed partition
    reconverge (see DESIGN.md). *)

(** {1 Crash-recovery resynchronisation (extension)} *)

val begin_resync : t -> unit
(** Enter the RESYNCING state: unicast a {!Resync.Summary} of this
    switch's databases (via {!set_send_resync}) to every neighbor its
    image shows live, and suspend normal MC-LSA handling — LSAs received
    meanwhile are deferred and replayed in arrival order when the session
    finishes.  The session finishes when [Config.resync_quorum] neighbor
    deltas have been applied, when every neighbor has resolved (delta or
    transport giveup), or when [Config.resync_deadline_hops × t_hop]
    elapses; on finish, deferred LSAs are replayed and a topology
    computation is scheduled for every MC the reconciled state flagged.
    With no live neighbors the switch finishes degraded immediately.
    Calling this while a session is in flight supersedes it (the crash
    recurred); deferred LSAs survive the restart. *)

val receive_resync : t -> Resync.msg -> unit
(** Deliver one resynchronisation message.  A [Summary] is answered
    statelessly with a [Delta] of everything the summary proves its
    origin is behind on (newer link versions are also adopted and
    re-flooded locally).  A [Delta] is applied only when it echoes the
    live session's id and comes from a still-outstanding neighbor;
    anything else is dropped as stale. *)

val resync_transport_failed : t -> peer:int -> unit
(** The unicast transport gave up delivering to [peer] (its retransmit
    budget exhausted — the neighbor is crashed or unreachable).  Resolves
    the neighbor without counting it toward the quorum; finishes the
    session degraded once no outstanding neighbor remains. *)

val resyncing : t -> bool
(** A resynchronisation session is in flight. *)

val resync_state : t -> (int * int list * int * int) option
(** [(session id, outstanding neighbors (sorted), completed exchanges,
    quorum)] of the in-flight session — model-checker state-hash fodder. *)

val deferred_lsas : t -> Mc_lsa.t list
(** MC LSAs deferred by the in-flight (or a finished-degraded) session,
    in arrival order.  Empty when not resyncing. *)

(** {1 Introspection} *)

val mc_ids : t -> Mc_id.t list
(** MCs this switch currently holds state for, sorted. *)

val members : t -> Mc_id.t -> Member.t option

val topology : t -> Mc_id.t -> Mctree.Tree.t option

val stamps : t -> Mc_id.t -> (Timestamp.t * Timestamp.t * Timestamp.t) option
(** [(R, E, C)]. *)

val quiescent : t -> Mc_id.t -> bool
(** No pending computations, an empty mailbox for the MC, no deferred
    LSA touching it, and no resynchronisation session in flight
    (vacuously true when no state exists). *)

type mc_snapshot = {
  snap_mc : Mc_id.t;
  snap_r : Timestamp.t;
  snap_e : Timestamp.t;
  snap_c : Timestamp.t;
  snap_flag : bool;  (** The paper's [make_proposal_flag]. *)
  snap_members : Member.t;
  snap_topology : Mctree.Tree.t;
  snap_membership_seen : int array;
      (** Per-source index of the newest membership event applied. *)
  snap_mailbox : Mc_lsa.t list;  (** Queued LSAs, arrival order. *)
  snap_computations : Timestamp.t list;
      (** [old_R] of each in-flight [EventHandler] computation, start order. *)
  snap_triggered : Timestamp.t option;
      (** [old_R] of the in-flight [ReceiveLSA]-triggered computation. *)
}
(** A faithful copy of one MC's complete protocol state at this switch —
    everything [EventHandler]/[ReceiveLSA] read or write.  The {!module:
    Check} analyses consume these: the invariant catalogue checks the
    timestamp lattice laws on them, and the model checker derives its
    state-hash from them. *)

val snapshots : t -> mc_snapshot list
(** One snapshot per MC this switch holds state for, sorted by MC id.
    Immutable copies throughout; holding one does not alias live state. *)
