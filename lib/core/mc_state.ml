type computation = {
  old_r : Timestamp.t;
  event : Mc_lsa.event;
  proposal : Mctree.Tree.t;
  handle : Sim.Engine.handle;
  trace_id : int;
      (** The [Compute_started] trace event, or [-1] untraced — the
          completion fires from an engine timer, where the ambient trace
          context is long gone, so causality is carried explicitly. *)
}

type t = {
  mutable r : Timestamp.t;
  mutable e : Timestamp.t;
  mutable c : Timestamp.t;
  mutable flag : bool;
  mutable members : Member.t;
  mutable topology : Mctree.Tree.t;
  mutable membership_seen : int array;
  mailbox : Mc_lsa.t Queue.t;
  mutable event_computations : computation list;
  mutable triggered : computation option;
}

let create ~n =
  {
    r = Timestamp.zero n;
    e = Timestamp.zero n;
    c = Timestamp.zero n;
    flag = false;
    members = Member.empty;
    topology = Mctree.Tree.empty;
    membership_seen = Array.make n 0;
    mailbox = Queue.create ();
    event_computations = [];
    triggered = None;
  }

let cancel_computations t =
  List.iter (fun c -> Sim.Engine.cancel c.handle) t.event_computations;
  t.event_computations <- [];
  (match t.triggered with
  | Some c -> Sim.Engine.cancel c.handle
  | None -> ());
  t.triggered <- None

let pp ppf t =
  Format.fprintf ppf
    "@[<v>R=%a@,E=%a@,C=%a@,flag=%b members=%a@,topology=%a@,mailbox=%d \
     event-comps=%d triggered=%b@]"
    Timestamp.pp t.r Timestamp.pp t.e Timestamp.pp t.c t.flag Member.pp
    t.members Mctree.Tree.pp t.topology
    (Queue.length t.mailbox)
    (List.length t.event_computations)
    (t.triggered <> None)
