(** Protocol and simulation parameters.

    The paper's experiments are characterised by the relation between
    [tc] (time to compute a topology) and [tf] (the flooding diameter,
    itself [t_hop × hop-diameter]); presets for the two published regimes
    are provided.  A {e round} is [tf + tc] and is the unit in which
    convergence time is reported. *)

type steiner = Kmb | Sph

type t = {
  tc : float;  (** Topology-computation latency at a switch (seconds). *)
  t_hop : float;  (** Per-hop LSA transmission time (seconds). *)
  flood_mode : Lsr.Flooding.mode;
      (** [Hop_by_hop] (default) and [Ideal] assume lossless delivery;
          use [Reliable] (ack + retransmit) when running under a
          {!Faults.Plan} that can lose or reorder messages. *)
  reliability : Lsr.Flooding.reliability;
      (** Reliable-mode parameters handed to {!Lsr.Flooding.create}
          ({!Lsr.Flooding.default_reliability} in every preset; set
          [adaptive] for the Jacobson/Karn per-neighbor RTO). *)
  steiner : steiner;
      (** From-scratch heuristic for shared trees (symmetric and
          receiver-only MCs). *)
  incremental : bool;
      (** Use incremental branch add/remove when possible (§3.5);
          [false] forces every computation from scratch. *)
  drift_threshold : float;
      (** Incrementally maintained trees are recomputed from scratch
          when their cost exceeds this multiple of a fresh heuristic
          tree's cost (§3.5's "deviates significantly"). *)
  withdraw_stale_proposals : bool;
      (** Fault-injection knob, [true] in every preset.  When [false],
          [EventHandler] skips the paper's stale-proposal withdrawal
          (Figure 4 lines 11-13) and floods/installs a proposal even
          when [R] advanced during its computation.  The {!module:Check}
          model checker exhaustively verified that on small
          configurations this fault {e self-heals}: acceptance is gated
          on [stamp >= E], so stale proposals are rejected wherever they
          could mislead, and their stale stamps set the receiver's
          recompute flag.  Never disable it in a real run — it exists
          for that experiment (and skipping it still wastes floods). *)
  flag_stale_senders : bool;
      (** Fault-injection knob, [true] in every preset.  When [false],
          [ReceiveLSA] skips the step that arms [make_proposal_flag]
          upon receiving an LSA whose sender provably did not know this
          switch's local events (Figure 5: the received stamp is behind
          the receiver's own event count).  That step is what guarantees
          someone recomputes after concurrent events collide, so
          disabling it lets two concurrent joins settle into permanent
          topology disagreement — the {!module:Check} model checker
          catches it with a minimal counterexample.  Never disable it in
          a real run. *)
  span_secondary_senders : bool;
      (** Fault-injection knob, [true] in every preset.  When [false],
          the from-scratch asymmetric computation reverts to the
          historical (pre-fix) behaviour: only role-[Receiver]/[Both]
          members become terminals of the source-rooted tree, so a
          sender-only second member is left off the topology entirely and
          cannot inject traffic — the asymmetric-tree bug the protocol
          fuzzer originally found, kept re-injectable so the guided
          scenario search ({!module:Check}'s [Search]) can prove it still
          rediscovers the minimal counterexample.  Never disable it in a
          real run. *)
  resync_quorum : int;
      (** Crash-recovery resynchronisation: number of completed neighbor
          exchanges (delta applied, or the transport gave the neighbor
          up) required before the recovering switch re-enters normal MC
          handling.  Clamped to the number of live neighbors at recovery
          time; a partitioned recoverer with no live neighbors finishes
          degraded immediately.  Default 1: any single up-to-date
          neighbor's delta carries the full missed history, because
          every LSA reached every live switch. *)
  resync_deadline_hops : float;
      (** Crash-recovery resynchronisation: overall deadline for the
          exchange, as a multiple of [t_hop].  On expiry the switch
          re-enters normal handling with whatever it has (degraded
          finish).  Must be at least the reliable transport's worst-case
          giveup span ({!Lsr.Flooding.giveup_span_hops}; {!validate}
          rejects configs that violate this).  The preset value is
          {e derived} from the preset reliability — span + one rto,
          512 hop times under the defaults — no longer hand-tuned. *)
  health : Health.Config.t option;
      (** Opt-in link-health layer (hello-based failure detection, flap
          damping, LSA pacing — DESIGN.md §3f).  [None] in every preset:
          without it scripted link events are applied to switch images
          directly; with it they only change ground truth and switches
          must detect them. *)
}

val default : t
(** [atm_lan] with hop-by-hop flooding. *)

val atm_lan : t
(** Experiment-1 regime: computation dominates communication
    ([t_hop = 4 µs], [tc = 400 µs]), from the authors' ATM testbed
    measurements. *)

val wan : t
(** Experiment-2 regime: communication dominates computation
    ([t_hop = 5 ms], [tc = 100 µs]). *)

val round_length : t -> graph:Net.Graph.t -> float
(** [tf + tc] for the given network (paper §4.1). *)

val validate : t -> (unit, string) result
(** Cross-field sanity: [resync_deadline_hops] must cover the reliable
    transport's worst-case giveup span for the configured [reliability]
    (adaptive RTO widens the span — it may start every backoff at
    [rto_max]), and an enabled [health] section must itself validate.
    {!Protocol.create} enforces this. *)

val pp : Format.formatter -> t -> unit
