(* Domain-local so parallel experiment runners (Runner.Pool) don't race
   on this introspection flag; each task observes its own last
   computation. *)
let last_incremental_key = Domain.DLS.new_key (fun () -> ref false)

let set_last_incremental v = Domain.DLS.get last_incremental_key := v

let was_incremental () = !(Domain.DLS.get last_incremental_key)

(* Restrict member ids to the image component containing the computing
   switch, so that a partitioned network still yields a usable topology
   for the side this switch lives on. *)
let reachable_subset image ~self ids =
  let ok = Net.Bfs.reachable image self in
  List.filter (fun x -> ok.(x)) ids

let steiner config image terminals =
  match config.Config.steiner with
  | Config.Kmb -> Mctree.Steiner.kmb image terminals
  | Config.Sph -> Mctree.Steiner.sph image terminals

let scratch config kind image members ~self =
  set_last_incremental false;
  let ids = Member.ids members in
  match ids with
  | [] -> Mctree.Tree.empty
  | _ -> (
    match (kind : Mc_id.kind) with
    | Symmetric | Receiver_only -> (
      try steiner config image ids
      with Failure _ -> (
        match reachable_subset image ~self ids with
        | [] -> Mctree.Tree.empty
        | reachable -> steiner config image reachable))
    | Asymmetric -> (
      let root =
        match Member.senders members with r :: _ -> r | [] -> List.hd ids
      in
      (* Every member is a terminal: secondary senders reach the shared
         source-rooted tree over shortest paths too, or they could not
         inject traffic into it (found by the protocol fuzzer: a
         sender-only second member used to be left off the tree, which
         the agreement check rightly rejects).  The pre-fix behaviour —
         terminals drawn from the receiver roles only — stays available
         behind [span_secondary_senders = false] so the guided scenario
         search can re-derive the minimal counterexample. *)
      let receivers =
        if config.Config.span_secondary_senders then
          List.filter (fun x -> x <> root) ids
        else List.filter (fun x -> x <> root) (Member.receivers members)
      in
      try Mctree.Spt.source_rooted image ~root ~receivers
      with Failure _ -> (
        (* Partition: root the tree in this switch's component — at the
           surviving sender if there is one, else the smallest member. *)
        match reachable_subset image ~self ids with
        | [] -> Mctree.Tree.empty
        | reachable ->
          let local_root =
            match
              List.filter (fun x -> List.mem x reachable) (Member.senders members)
            with
            | r :: _ -> r
            | [] -> List.hd reachable
          in
          Mctree.Spt.source_rooted image ~root:local_root
            ~receivers:(List.filter (fun x -> x <> local_root) reachable))))

let incremental config kind image members ~self current =
  let ids = Member.ids members in
  let old_ids = Mctree.Tree.Int_set.elements (Mctree.Tree.terminals current) in
  let leavers = List.filter (fun x -> not (Member.mem members x)) old_ids in
  let joiners = List.filter (fun x -> not (List.mem x old_ids)) ids in
  let after_leaves =
    List.fold_left (fun t x -> Mctree.Incremental.leave image t x) current leavers
  in
  match Mctree.Incremental.repair image after_leaves with
  | None -> scratch config kind image members ~self
  | Some repaired -> (
    try
      let grown =
        List.fold_left (fun t x -> Mctree.Incremental.join image t x) repaired joiners
      in
      if
        Mctree.Tree.is_valid_mc_topology image grown
        && not
             (Mctree.Incremental.needs_recompute
                ~threshold:config.Config.drift_threshold image grown)
      then begin
        set_last_incremental true;
        grown
      end
      else scratch config kind image members ~self
    with Failure _ -> scratch config kind image members ~self)

let topology_impl config kind image members ~self ~current =
  if Member.is_empty members then begin
    set_last_incremental false;
    Mctree.Tree.empty
  end
  else
    match (kind : Mc_id.kind) with
    | Asymmetric -> scratch config kind image members ~self
    | Symmetric | Receiver_only -> (
      match current with
      | Some cur
        when config.Config.incremental
             && not (Mctree.Tree.Int_set.is_empty (Mctree.Tree.terminals cur)) ->
        incremental config kind image members ~self cur
      | Some _ | None -> scratch config kind image members ~self)

(* Closure-free phase wrapper; see Net.Dijkstra.run.  The tree-kernel
   phases — mctree and net — appear as child time of [dgmc.compute]. *)
let topology config kind image members ~self ~current =
  let ph = Metrics.Phase.ambient () in
  Metrics.Phase.enter ph "dgmc.compute";
  match topology_impl config kind image members ~self ~current with
  | r ->
    Metrics.Phase.leave ph;
    r
  | exception e ->
    Metrics.Phase.leave ph;
    raise e
