type steiner = Kmb | Sph

type t = {
  tc : float;
  t_hop : float;
  flood_mode : Lsr.Flooding.mode;
  steiner : steiner;
  incremental : bool;
  drift_threshold : float;
  withdraw_stale_proposals : bool;
  flag_stale_senders : bool;
  span_secondary_senders : bool;
  resync_quorum : int;
  resync_deadline_hops : float;
}

let atm_lan =
  {
    tc = 400e-6;
    t_hop = 4e-6;
    flood_mode = Lsr.Flooding.Hop_by_hop;
    steiner = Sph;
    incremental = true;
    drift_threshold = 1.5;
    withdraw_stale_proposals = true;
    flag_stale_senders = true;
    span_secondary_senders = true;
    resync_quorum = 1;
    resync_deadline_hops = 512.0;
  }

let wan = { atm_lan with tc = 100e-6; t_hop = 5e-3 }

let default = atm_lan

let round_length t ~graph =
  Lsr.Flooding.flood_diameter ~graph ~t_hop:t.t_hop +. t.tc

let pp ppf t =
  (* dgmc-analyze: allow float-format — human-readable config echo, not schema output *)
  Format.fprintf ppf
    "@[<h>config(tc=%gs, t_hop=%gs, steiner=%s, incremental=%b, drift=%g)@]"
    t.tc t.t_hop
    (match t.steiner with Kmb -> "kmb" | Sph -> "sph")
    t.incremental t.drift_threshold
