type steiner = Kmb | Sph

type t = {
  tc : float;
  t_hop : float;
  flood_mode : Lsr.Flooding.mode;
  reliability : Lsr.Flooding.reliability;
  steiner : steiner;
  incremental : bool;
  drift_threshold : float;
  withdraw_stale_proposals : bool;
  flag_stale_senders : bool;
  span_secondary_senders : bool;
  resync_quorum : int;
  resync_deadline_hops : float;
  health : Health.Config.t option;
}

(* The resync deadline is derived, not hand-tuned: a session must outlive
   the reliable transport's worst-case giveup span (so a transport-failed
   neighbor always resolves before the deadline), plus one initial rto of
   headroom for the summary leg.  Under the default reliability this is
   508 + 4 = 512 hop times — the historical constant, now earned. *)
let derived_resync_deadline_hops rel =
  Lsr.Flooding.giveup_span_hops rel +. rel.Lsr.Flooding.rto

let atm_lan =
  {
    tc = 400e-6;
    t_hop = 4e-6;
    flood_mode = Lsr.Flooding.Hop_by_hop;
    reliability = Lsr.Flooding.default_reliability;
    steiner = Sph;
    incremental = true;
    drift_threshold = 1.5;
    withdraw_stale_proposals = true;
    flag_stale_senders = true;
    span_secondary_senders = true;
    resync_quorum = 1;
    resync_deadline_hops =
      derived_resync_deadline_hops Lsr.Flooding.default_reliability;
    health = None;
  }

let wan = { atm_lan with tc = 100e-6; t_hop = 5e-3 }

let default = atm_lan

let round_length t ~graph =
  Lsr.Flooding.flood_diameter ~graph ~t_hop:t.t_hop +. t.tc

let validate t =
  let span = Lsr.Flooding.giveup_span_hops t.reliability in
  if t.resync_deadline_hops < span then
    Error
      ((* dgmc-analyze: allow float-format — human-readable diagnostic *)
       Printf.sprintf
         "resync_deadline_hops (%g) is below the reliable transport's \
          worst-case giveup span (%g hop times for rto=%g rto_max=%g \
          max_retries=%d%s): a resync session could expire while its \
          transport still retries; raise the deadline or shrink the \
          retry budget"
         t.resync_deadline_hops span t.reliability.Lsr.Flooding.rto
         t.reliability.Lsr.Flooding.rto_max
         t.reliability.Lsr.Flooding.max_retries
         (if t.reliability.Lsr.Flooding.adaptive then ", adaptive" else ""))
  else
    match t.health with
    | None -> Ok ()
    | Some h -> Health.Config.validate h

let pp ppf t =
  (* dgmc-analyze: allow float-format — human-readable config echo, not schema output *)
  Format.fprintf ppf
    "@[<h>config(tc=%gs, t_hop=%gs, steiner=%s, incremental=%b, drift=%g)@]"
    t.tc t.t_hop
    (match t.steiner with Kmb -> "kmb" | Sph -> "sph")
    t.incremental t.drift_threshold
