(** Crash-recovery database resynchronisation messages (extension).

    The paper assumes every LSA reaches every live switch, so it has no
    recovery story: a switch whose forwarding plane was down for a window
    silently misses installs and diverges forever.  On recovery a switch
    therefore runs an OSPF-style database exchange with its live
    neighbors before re-entering normal MC handling (see
    {!Switch.begin_resync} and DESIGN.md):

    - it unicasts a {!constructor:Summary} of everything it knows — its
      versioned link-state entries, and per MC its R/E/C vectors plus a
      compact {!Mctree.Tree.fingerprint} of its installed tree;
    - each neighbor answers with a {!constructor:Delta} containing only
      what the summary proves the recoverer is behind on: link entries
      with newer versions, and full per-MC state exports where the
      neighbor knows events the summary's R does not cover (or holds a
      different same-stamp tree);
    - the recoverer applies deltas and finishes once
      [Config.resync_quorum] exchanges complete.

    Messages ride the regular {!Lsr.Flooding} transport in unicast mode
    ({!Lsr.Flooding.send}), so under faults they get the Reliable mode's
    ack/retransmit/backoff for free, and a dead neighbor resolves to a
    transport giveup rather than a hang. *)

type mc_summary = {
  sum_mc : Mc_id.t;
  sum_r : Timestamp.t;
  sum_e : Timestamp.t;
  sum_c : Timestamp.t;
  sum_tree_fp : string;  (** {!Mctree.Tree.fingerprint} of the install. *)
}
(** One MC's compact digest in a summary: enough for a neighbor to
    decide whether it knows anything the recoverer lacks, without
    shipping members or trees. *)

type mc_export = {
  exp_mc : Mc_id.t;
  exp_r : Timestamp.t;
  exp_e : Timestamp.t;
  exp_c : Timestamp.t;
  exp_members : Member.t;
  exp_membership_seen : int array;
  exp_topology : Mctree.Tree.t;
}
(** One MC's full transferable state in a delta.  A tombstoned MC
    exports its surviving accounting (R/E/membership cursors) with an
    empty member list and topology. *)

type msg =
  | Summary of {
      session : int;  (** Recoverer-chosen exchange id; deltas echo it. *)
      origin : int;  (** The recovering switch. *)
      links : Lsr.Lsdb.link_event list;  (** {!Lsr.Lsdb.entries}. *)
      mcs : mc_summary list;
    }
  | Delta of {
      session : int;  (** Echoed from the summary answered. *)
      origin : int;  (** The responding neighbor. *)
      links : Lsr.Lsdb.link_event list;
          (** Entries strictly newer than the summary's. *)
      mcs : mc_export list;
    }

val session : msg -> int

val origin : msg -> int

val equal : msg -> msg -> bool

val equal_export : mc_export -> mc_export -> bool

val equal_summary : mc_summary -> mc_summary -> bool

(** {1 Wire codec}

    Compact line-oriented text encoding; {!of_string} inverts
    {!to_string} exactly (pinned by round-trip tests). *)

val to_string : msg -> string

val of_string : string -> (msg, string) result
(** [Error reason] on malformed input; never raises. *)

val pp : Format.formatter -> msg -> unit
