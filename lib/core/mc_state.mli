(** Per-switch, per-MC protocol state (paper §3.2, Figure 3).

    Each switch keeps, for every MC it knows of: the three vector
    timestamps [R] (events received), [E] (events expected) and [C]
    (state the current topology is based on); the [make_proposal_flag]
    shared between the two protocol entities; its image of the member
    list and of the MC topology; and the mailbox of MC LSAs waiting to
    be consumed by [ReceiveLSA()]. *)

type computation = {
  old_r : Timestamp.t;  (** [R] saved when the computation started. *)
  event : Mc_lsa.event;
      (** Event the resulting LSA advertises ([No_event] for triggered
          computations). *)
  proposal : Mctree.Tree.t;
      (** Result — fixed by the inputs at start time; the protocol
          decides at completion whether it is still valid to flood. *)
  handle : Sim.Engine.handle;  (** Scheduled completion, cancellable. *)
  trace_id : int;
      (** Trace id of the [Compute_started] event ([-1] untraced) — the
          completion fires from an engine timer where the ambient trace
          context is gone, so the causal link is carried explicitly. *)
}

type t = {
  mutable r : Timestamp.t;
  mutable e : Timestamp.t;
  mutable c : Timestamp.t;
  mutable flag : bool;  (** [make_proposal_flag]. *)
  mutable members : Member.t;
  mutable topology : Mctree.Tree.t;
  mutable membership_seen : int array;
      (** [membership_seen.(s)] is the highest [T\[s\]] among membership
          LSAs from [s] whose join/leave has been applied; stale
          (reordered) membership LSAs still count as events but do not
          regress the member list. *)
  mailbox : Mc_lsa.t Queue.t;
  mutable event_computations : computation list;
      (** In-flight [EventHandler()] computations, any number (the
          paper's entities run concurrently). *)
  mutable triggered : computation option;
      (** In-flight [ReceiveLSA()] computation; while one is pending the
          mailbox accumulates, exactly as the paper's single-process
          [ReceiveLSA()] loop implies. *)
}

val create : n:int -> t
(** Fresh state for an n-switch network: zero timestamps, no members,
    empty topology. *)

val cancel_computations : t -> unit
(** Cancel every scheduled completion.  The protocol itself never needs
    this — deletion waits for in-flight computations (see
    [Switch.maybe_delete]) — but embedders tearing a switch down
    mid-simulation do. *)

val pp : Format.formatter -> t -> unit
