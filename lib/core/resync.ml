type mc_summary = {
  sum_mc : Mc_id.t;
  sum_r : Timestamp.t;
  sum_e : Timestamp.t;
  sum_c : Timestamp.t;
  sum_tree_fp : string;
}

type mc_export = {
  exp_mc : Mc_id.t;
  exp_r : Timestamp.t;
  exp_e : Timestamp.t;
  exp_c : Timestamp.t;
  exp_members : Member.t;
  exp_membership_seen : int array;
  exp_topology : Mctree.Tree.t;
}

type msg =
  | Summary of {
      session : int;
      origin : int;
      links : Lsr.Lsdb.link_event list;
      mcs : mc_summary list;
    }
  | Delta of {
      session : int;
      origin : int;
      links : Lsr.Lsdb.link_event list;
      mcs : mc_export list;
    }

let session = function Summary { session; _ } | Delta { session; _ } -> session

let origin = function Summary { origin; _ } | Delta { origin; _ } -> origin

(* ------------------------------------------------------------------ *)
(* Equality (round-trip tests and harness dedup) *)

let equal_summary a b =
  Mc_id.equal a.sum_mc b.sum_mc
  && Timestamp.equal a.sum_r b.sum_r
  && Timestamp.equal a.sum_e b.sum_e
  && Timestamp.equal a.sum_c b.sum_c
  && String.equal a.sum_tree_fp b.sum_tree_fp

let equal_export a b =
  Mc_id.equal a.exp_mc b.exp_mc
  && Timestamp.equal a.exp_r b.exp_r
  && Timestamp.equal a.exp_e b.exp_e
  && Timestamp.equal a.exp_c b.exp_c
  && Member.equal a.exp_members b.exp_members
  && Array.length a.exp_membership_seen = Array.length b.exp_membership_seen
  && Array.for_all2 Int.equal a.exp_membership_seen b.exp_membership_seen
  && Mctree.Tree.equal a.exp_topology b.exp_topology

let equal_link (a : Lsr.Lsdb.link_event) (b : Lsr.Lsdb.link_event) =
  a.u = b.u && a.v = b.v && Bool.equal a.up b.up && a.version = b.version

let equal a b =
  match (a, b) with
  | ( Summary { session = s1; origin = o1; links = l1; mcs = m1 },
      Summary { session = s2; origin = o2; links = l2; mcs = m2 } ) ->
    s1 = s2 && o1 = o2
    && List.equal equal_link l1 l2
    && List.equal equal_summary m1 m2
  | ( Delta { session = s1; origin = o1; links = l1; mcs = m1 },
      Delta { session = s2; origin = o2; links = l2; mcs = m2 } ) ->
    s1 = s2 && o1 = o2
    && List.equal equal_link l1 l2
    && List.equal equal_export m1 m2
  | Summary _, Delta _ | Delta _, Summary _ -> false

(* ------------------------------------------------------------------ *)
(* Wire codec.

   A compact line-oriented text format: one header line, then one line
   per link entry and per MC record.  No field contains a space — member
   lists render as [id:role,…], timestamps as comma-separated vectors,
   trees in {!Mctree.Tree.fingerprint} form — so lines split cleanly on
   single spaces.  The simulator passes [msg] values in memory; the codec
   is the compaction story (and the round-trip tests pin the format). *)

let stamp_to_string ts =
  let a = Timestamp.to_array ts in
  String.concat "," (Array.to_list (Array.map string_of_int a))

let stamp_of_string s =
  Timestamp.of_array
    (Array.of_list (List.map int_of_string (String.split_on_char ',' s)))

let seen_to_string seen =
  String.concat "," (Array.to_list (Array.map string_of_int seen))

let seen_of_string s =
  Array.of_list (List.map int_of_string (String.split_on_char ',' s))

let members_to_string m =
  match Member.ids m with
  | [] -> "-"
  | ids ->
    String.concat ","
      (List.map
         (fun id ->
           let role =
             match Member.role m id with
             | Some r -> Member.role_to_string r
             | None -> "?"
           in
           Printf.sprintf "%d:%s" id role)
         ids)

let role_of_string = function
  | "sender" -> Member.Sender
  | "receiver" -> Member.Receiver
  | "both" -> Member.Both
  | s -> failwith (Printf.sprintf "Resync: unknown role %S" s)

let members_of_string s =
  if String.equal s "-" then Member.empty
  else
    Member.of_list
      (List.map
         (fun entry ->
           match String.split_on_char ':' entry with
           | [ id; role ] -> (int_of_string id, role_of_string role)
           | _ -> failwith (Printf.sprintf "Resync: malformed member %S" entry))
         (String.split_on_char ',' s))

let kind_of_string = function
  | "symmetric" -> Mc_id.Symmetric
  | "receiver-only" -> Mc_id.Receiver_only
  | "asymmetric" -> Mc_id.Asymmetric
  | s -> failwith (Printf.sprintf "Resync: unknown MC kind %S" s)

let tree_of_string s =
  match Mctree.Tree.of_fingerprint s with
  | Some t -> t
  | None -> failwith (Printf.sprintf "Resync: malformed tree %S" s)

let to_string msg =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let links_lines links =
    List.iter
      (fun (ev : Lsr.Lsdb.link_event) ->
        line "link %d %d %s %d" ev.u ev.v (if ev.up then "up" else "down")
          ev.version)
      links
  in
  (match msg with
  | Summary { session; origin; links; mcs } ->
    line "summary %d %d" session origin;
    links_lines links;
    List.iter
      (fun s ->
        line "mc %s %d %s %s %s %s"
          (Mc_id.kind_to_string s.sum_mc.kind)
          s.sum_mc.id (stamp_to_string s.sum_r) (stamp_to_string s.sum_e)
          (stamp_to_string s.sum_c) s.sum_tree_fp)
      mcs
  | Delta { session; origin; links; mcs } ->
    line "delta %d %d" session origin;
    links_lines links;
    List.iter
      (fun e ->
        line "export %s %d %s %s %s %s %s %s"
          (Mc_id.kind_to_string e.exp_mc.kind)
          e.exp_mc.id (stamp_to_string e.exp_r) (stamp_to_string e.exp_e)
          (stamp_to_string e.exp_c)
          (seen_to_string e.exp_membership_seen)
          (members_to_string e.exp_members)
          (Mctree.Tree.fingerprint e.exp_topology))
      mcs);
  Buffer.contents b

let of_string s =
  let parse () =
    let lines =
      String.split_on_char '\n' s
      |> List.filter (fun l -> String.length l > 0)
    in
    match lines with
    | [] -> failwith "Resync: empty message"
    | header :: body -> (
      let link_of = function
        | [ "link"; u; v; state; version ] ->
          let up =
            match state with
            | "up" -> true
            | "down" -> false
            | s -> failwith (Printf.sprintf "Resync: bad link state %S" s)
          in
          {
            Lsr.Lsdb.u = int_of_string u;
            v = int_of_string v;
            up;
            version = int_of_string version;
          }
        | _ -> failwith "Resync: malformed link line"
      in
      let split = String.split_on_char ' ' in
      match split header with
      | [ "summary"; session; origin ] ->
        let links, mcs =
          List.fold_left
            (fun (links, mcs) l ->
              match split l with
              | "link" :: _ as f -> (link_of f :: links, mcs)
              | [ "mc"; kind; id; r; e; c; fp ] ->
                ( links,
                  {
                    sum_mc = Mc_id.make (kind_of_string kind) (int_of_string id);
                    sum_r = stamp_of_string r;
                    sum_e = stamp_of_string e;
                    sum_c = stamp_of_string c;
                    sum_tree_fp = fp;
                  }
                  :: mcs )
              | _ -> failwith (Printf.sprintf "Resync: malformed line %S" l))
            ([], []) body
        in
        Summary
          {
            session = int_of_string session;
            origin = int_of_string origin;
            links = List.rev links;
            mcs = List.rev mcs;
          }
      | [ "delta"; session; origin ] ->
        let links, mcs =
          List.fold_left
            (fun (links, mcs) l ->
              match split l with
              | "link" :: _ as f -> (link_of f :: links, mcs)
              | [ "export"; kind; id; r; e; c; seen; members; tree ] ->
                ( links,
                  {
                    exp_mc = Mc_id.make (kind_of_string kind) (int_of_string id);
                    exp_r = stamp_of_string r;
                    exp_e = stamp_of_string e;
                    exp_c = stamp_of_string c;
                    exp_membership_seen = seen_of_string seen;
                    exp_members = members_of_string members;
                    exp_topology = tree_of_string tree;
                  }
                  :: mcs )
              | _ -> failwith (Printf.sprintf "Resync: malformed line %S" l))
            ([], []) body
        in
        Delta
          {
            session = int_of_string session;
            origin = int_of_string origin;
            links = List.rev links;
            mcs = List.rev mcs;
          }
      | _ -> failwith "Resync: unknown message header")
  in
  try Ok (parse ()) with Failure m -> Error m

let pp ppf msg = Format.pp_print_string ppf (to_string msg)
