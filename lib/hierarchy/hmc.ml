module Int_set = Set.Make (Int)

module Mc_table = Hashtbl.Make (struct
  type t = Dgmc.Mc_id.t

  let equal = Dgmc.Mc_id.equal

  let hash = Dgmc.Mc_id.hash
end)

type totals = {
  events : int;
  intra_floodings : int;
  logical_floodings : int;
  intra_messages : int;
  logical_messages : int;
  computations : int;
  gateway_instructions : int;
  switches_touched : int;
}

type t = {
  engine : Sim.Engine.t;
  graph : Net.Graph.t;
  config : Dgmc.Config.t;
  partition : int list array;
  area_of : int array;
  leaders : int array;
  (* Intra level: one D-GMC flooding scope per area, full switch set. *)
  area_graphs : Net.Graph.t array;
  switches : Dgmc.Switch.t array;
  area_floodings : Dgmc.Mc_lsa.t Lsr.Flooding.t array;
  seqs : Lsr.Lsa.Seq.counter array;
  (* Logical level: one D-GMC node per area. *)
  logical_graph : Net.Graph.t;
  logical_switches : Dgmc.Switch.t array;
  logical_flooding : Dgmc.Mc_lsa.t Lsr.Flooding.t;
  logical_seqs : Lsr.Lsa.Seq.counter array;
  edge_map : (int * int, int * int) Hashtbl.t;
      (** logical (a, b) with a < b → cheapest real link (u, v), u ∈ a. *)
  (* Leader bookkeeping. *)
  registry : unit Mc_table.t;  (** every MC id ever seen *)
  host_members : Int_set.t Mc_table.t array;  (** per area: real members *)
  logical_joined : bool Mc_table.t array;
  gateways : Int_set.t Mc_table.t array;  (** per area: instructed gateways *)
  check_pending : bool array;
  mutable events : int;
  mutable intra_flood_count : int;
  mutable logical_flood_count : int;
  mutable gateway_instructions : int;
}

let engine t = t.engine

let n_areas t = Array.length t.partition

let area_of t s = t.area_of.(s)

let leader t a = t.leaders.(a)

let logical_graph t = t.logical_graph

(* ------------------------------------------------------------------ *)
(* Construction *)

let validate_partition graph partition =
  let n = Net.Graph.n_nodes graph in
  let seen = Array.make n false in
  Array.iteri
    (fun a members ->
      if members = [] then
        invalid_arg (Printf.sprintf "Hmc: area %d is empty" a);
      List.iter
        (fun s ->
          if s < 0 || s >= n then invalid_arg "Hmc: switch out of range";
          if seen.(s) then
            invalid_arg (Printf.sprintf "Hmc: switch %d in two areas" s);
          seen.(s) <- true)
        members)
    partition;
  if not (Array.for_all (fun b -> b) seen) then
    invalid_arg "Hmc: partition does not cover the graph"

let build_area_graph graph area_of a =
  let n = Net.Graph.n_nodes graph in
  let g = Net.Graph.create n in
  List.iter
    (fun (e : Net.Graph.edge) ->
      if area_of.(e.u) = a && area_of.(e.v) = a then
        Net.Graph.add_edge g e.u e.v ~weight:e.weight)
    (Net.Graph.edges graph);
  g

let build_logical graph area_of k =
  let edge_map = Hashtbl.create 16 in
  List.iter
    (fun (e : Net.Graph.edge) ->
      let a = area_of.(e.u) and b = area_of.(e.v) in
      if a <> b then begin
        let key = (min a b, max a b) in
        let better =
          match Hashtbl.find_opt edge_map key with
          | None -> true
          | Some (u', v') -> e.weight < Net.Graph.weight graph u' v'
        in
        if better then
          (* Store with the first endpoint in the lower-numbered area. *)
          Hashtbl.replace edge_map key (if a < b then (e.u, e.v) else (e.v, e.u))
      end)
    (Net.Graph.edges graph);
  let logical = Net.Graph.create k in
  (* dgmc-analyze: allow iteration-order — each logical edge is a distinct
     key inserted exactly once, so the resulting graph value does not
     depend on enumeration order *)
  Hashtbl.iter
    (fun (a, b) (u, v) ->
      Net.Graph.add_edge logical a b ~weight:(Net.Graph.weight graph u v))
    edge_map;
  (logical, edge_map)

let rec create ~graph ~partition ~config ?logical_t_hop () =
  validate_partition graph partition;
  let n = Net.Graph.n_nodes graph in
  let k = Array.length partition in
  if k < 2 then invalid_arg "Hmc: need at least 2 areas";
  let area_of = Array.make n (-1) in
  Array.iteri
    (fun a members -> List.iter (fun s -> area_of.(s) <- a) members)
    partition;
  let area_graphs = Array.init k (build_area_graph graph area_of) in
  Array.iteri
    (fun a g ->
      (* Connectivity check restricted to the area's switches. *)
      let seed = List.hd partition.(a) in
      let reach = Net.Bfs.reachable g seed in
      List.iter
        (fun s ->
          if not reach.(s) then
            invalid_arg (Printf.sprintf "Hmc: area %d is not connected" a))
        partition.(a))
    area_graphs;
  let logical_graph, edge_map = build_logical graph area_of k in
  let logical_t_hop =
    match logical_t_hop with Some x -> x | None -> 3.0 *. config.Dgmc.Config.t_hop
  in
  let engine = Sim.Engine.create () in
  let switches =
    Array.init n (fun id ->
        Dgmc.Switch.create ~id ~n ~config ~engine ~graph:area_graphs.(area_of.(id)) ())
  in
  let logical_switches =
    Array.init k (fun id ->
        Dgmc.Switch.create ~id ~n:k ~config ~engine ~graph:logical_graph ())
  in
  let area_floodings =
    Array.init k (fun a ->
        Lsr.Flooding.create ~engine ~graph:area_graphs.(a)
          ~t_hop:config.Dgmc.Config.t_hop ~mode:config.Dgmc.Config.flood_mode
          ~deliver:(fun ~switch lsa -> Dgmc.Switch.receive switches.(switch) lsa.payload)
          ())
  in
  let logical_flooding =
    Lsr.Flooding.create ~engine ~graph:logical_graph ~t_hop:logical_t_hop
      ~mode:config.Dgmc.Config.flood_mode
      ~deliver:(fun ~switch lsa ->
        Dgmc.Switch.receive logical_switches.(switch) lsa.payload)
      ()
  in
  let t =
    {
      engine;
      graph;
      config;
      partition;
      area_of;
      leaders = Array.map (fun members -> List.fold_left min max_int members) partition;
      area_graphs;
      switches;
      area_floodings;
      seqs = Array.init n (fun _ -> Lsr.Lsa.Seq.create ());
      logical_graph;
      logical_switches;
      logical_flooding;
      logical_seqs = Array.init k (fun _ -> Lsr.Lsa.Seq.create ());
      edge_map;
      registry = Mc_table.create 4;
      host_members = Array.init k (fun _ -> Mc_table.create 4);
      logical_joined = Array.init k (fun _ -> Mc_table.create 4);
      gateways = Array.init k (fun _ -> Mc_table.create 4);
      check_pending = Array.make k false;
      events = 0;
      intra_flood_count = 0;
      logical_flood_count = 0;
      gateway_instructions = 0;
    }
  in
  (* Wire intra-area flooding. *)
  Array.iteri
    (fun id sw ->
      Dgmc.Switch.set_flood sw (fun mc_lsa ->
          t.intra_flood_count <- t.intra_flood_count + 1;
          let a = t.area_of.(id) in
          let seq = Lsr.Lsa.Seq.next t.seqs.(id) in
          Lsr.Flooding.flood t.area_floodings.(a)
            (Lsr.Lsa.make ~origin:id ~seq mc_lsa)))
    switches;
  (* Wire the logical level; any logical state change wakes the area's
     leader to re-derive gateways. *)
  Array.iteri
    (fun a sw ->
      Dgmc.Switch.set_flood sw (fun mc_lsa ->
          t.logical_flood_count <- t.logical_flood_count + 1;
          let seq = Lsr.Lsa.Seq.next t.logical_seqs.(a) in
          Lsr.Flooding.flood t.logical_flooding (Lsr.Lsa.make ~origin:a ~seq mc_lsa));
      Dgmc.Switch.set_on_change sw (fun () -> schedule_leader_check t a))
    logical_switches;
  t

(* ------------------------------------------------------------------ *)
(* Leader behaviour *)

and schedule_leader_check t a =
  if not t.check_pending.(a) then begin
    t.check_pending.(a) <- true;
    ignore
      (Sim.Engine.schedule t.engine ~delay:t.config.Dgmc.Config.t_hop (fun () ->
           leader_check t a))
  end

(* Derive the gateway switches area [a] owes to the given logical tree:
   for every logical tree edge incident to [a], the local endpoint of
   the mapped real link. *)
and derive_gateways t a ltree =
  List.fold_left
    (fun acc (x, y) ->
      if x = a || y = a then begin
        match Hashtbl.find_opt t.edge_map (min x y, max x y) with
        | Some (u, v) ->
          let local = if t.area_of.(u) = a then u else v in
          Int_set.add local acc
        | None -> acc
      end
      else acc)
    Int_set.empty (Mctree.Tree.edges ltree)

and leader_check t a =
  t.check_pending.(a) <- false;
  Mc_table.iter
    (fun mc () ->
      let wanted =
        match Dgmc.Switch.topology t.logical_switches.(a) mc with
        | Some ltree -> derive_gateways t a ltree
        | None -> Int_set.empty
      in
      let current =
        Option.value ~default:Int_set.empty
          (Mc_table.find_opt t.gateways.(a) mc)
      in
      if not (Int_set.equal wanted current) then begin
        Mc_table.replace t.gateways.(a) mc wanted;
        (* Leader → gateway control messages, one hop of delay each. *)
        Int_set.iter
          (fun g ->
            t.gateway_instructions <- t.gateway_instructions + 1;
            ignore
              (Sim.Engine.schedule t.engine ~delay:t.config.Dgmc.Config.t_hop
                 (fun () -> Dgmc.Switch.host_join t.switches.(g) mc Dgmc.Member.Both)))
          (Int_set.diff wanted current);
        Int_set.iter
          (fun g ->
            t.gateway_instructions <- t.gateway_instructions + 1;
            ignore
              (Sim.Engine.schedule t.engine ~delay:t.config.Dgmc.Config.t_hop
                 (fun () ->
                   (* Only withdraw the gateway role if no host at [g] is
                      a real member. *)
                   let real =
                     Option.value ~default:Int_set.empty
                       (Mc_table.find_opt t.host_members.(a) mc)
                   in
                   if not (Int_set.mem g real) then
                     Dgmc.Switch.host_leave t.switches.(g) mc)))
          (Int_set.diff current wanted)
      end)
    t.registry

(* ------------------------------------------------------------------ *)
(* Host events *)

let logical_membership_update t a mc =
  let real =
    Option.value ~default:Int_set.empty (Mc_table.find_opt t.host_members.(a) mc)
  in
  let joined =
    Option.value ~default:false (Mc_table.find_opt t.logical_joined.(a) mc)
  in
  if (not (Int_set.is_empty real)) && not joined then begin
    Mc_table.replace t.logical_joined.(a) mc true;
    Dgmc.Switch.host_join t.logical_switches.(a) mc Dgmc.Member.Both
  end
  else if Int_set.is_empty real && joined then begin
    Mc_table.replace t.logical_joined.(a) mc false;
    Dgmc.Switch.host_leave t.logical_switches.(a) mc
  end

let join t ~switch mc role =
  if switch < 0 || switch >= Array.length t.switches then
    invalid_arg "Hmc.join: switch out of range";
  t.events <- t.events + 1;
  Mc_table.replace t.registry mc ();
  let a = t.area_of.(switch) in
  let real =
    Option.value ~default:Int_set.empty (Mc_table.find_opt t.host_members.(a) mc)
  in
  Mc_table.replace t.host_members.(a) mc (Int_set.add switch real);
  Dgmc.Switch.host_join t.switches.(switch) mc role;
  (* The ingress switch notifies its leader (one hop). *)
  ignore
    (Sim.Engine.schedule t.engine ~delay:t.config.Dgmc.Config.t_hop (fun () ->
         logical_membership_update t a mc))

let leave t ~switch mc =
  if switch < 0 || switch >= Array.length t.switches then
    invalid_arg "Hmc.leave: switch out of range";
  t.events <- t.events + 1;
  let a = t.area_of.(switch) in
  let real =
    Option.value ~default:Int_set.empty (Mc_table.find_opt t.host_members.(a) mc)
  in
  Mc_table.replace t.host_members.(a) mc (Int_set.remove switch real);
  (* The switch stays in the MC if it still serves as a gateway. *)
  let gw =
    Option.value ~default:Int_set.empty (Mc_table.find_opt t.gateways.(a) mc)
  in
  if not (Int_set.mem switch gw) then Dgmc.Switch.host_leave t.switches.(switch) mc;
  ignore
    (Sim.Engine.schedule t.engine ~delay:t.config.Dgmc.Config.t_hop (fun () ->
         logical_membership_update t a mc))

let schedule_join t ~at ~switch mc role =
  ignore (Sim.Engine.schedule_at t.engine ~time:at (fun () -> join t ~switch mc role))

let schedule_leave t ~at ~switch mc =
  ignore (Sim.Engine.schedule_at t.engine ~time:at (fun () -> leave t ~switch mc))

let run ?until ?max_events t = Sim.Engine.run ?until ?max_events t.engine

(* ------------------------------------------------------------------ *)
(* Measurements *)

let totals t =
  let computations = ref 0 in
  Array.iter
    (fun sw -> computations := !computations + (Dgmc.Switch.stats sw).computations)
    t.switches;
  Array.iter
    (fun sw -> computations := !computations + (Dgmc.Switch.stats sw).computations)
    t.logical_switches;
  let intra_messages =
    Array.fold_left (fun acc f -> acc + Lsr.Flooding.messages_sent f) 0 t.area_floodings
  in
  let touched = ref 0 in
  Array.iteri
    (fun a f ->
      if Lsr.Flooding.floods_started f > 0 then
        touched := !touched + List.length t.partition.(a))
    t.area_floodings;
  if Lsr.Flooding.floods_started t.logical_flooding > 0 then
    touched := !touched + Array.length t.logical_switches;
  {
    events = t.events;
    intra_floodings = t.intra_flood_count;
    logical_floodings = t.logical_flood_count;
    intra_messages;
    logical_messages = Lsr.Flooding.messages_sent t.logical_flooding;
    computations = !computations;
    gateway_instructions = t.gateway_instructions;
    switches_touched = !touched;
  }

let reset_counters t =
  let reset_switch sw =
    let s = Dgmc.Switch.stats sw in
    s.Dgmc.Switch.computations <- 0;
    s.Dgmc.Switch.computations_withdrawn <- 0;
    s.Dgmc.Switch.proposals_flooded <- 0;
    s.Dgmc.Switch.event_lsas_flooded <- 0;
    s.Dgmc.Switch.proposals_accepted <- 0;
    s.Dgmc.Switch.lsas_received <- 0
  in
  Array.iter reset_switch t.switches;
  Array.iter reset_switch t.logical_switches;
  Array.iter Lsr.Flooding.reset_counters t.area_floodings;
  Lsr.Flooding.reset_counters t.logical_flooding;
  t.events <- 0;
  t.intra_flood_count <- 0;
  t.logical_flood_count <- 0;
  t.gateway_instructions <- 0

(* ------------------------------------------------------------------ *)
(* Agreement *)

let divergence t mc =
  let problems = ref [] in
  let report fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  let member_areas =
    List.filter
      (fun a ->
        not
          (Int_set.is_empty
             (Option.value ~default:Int_set.empty
                (Mc_table.find_opt t.host_members.(a) mc))))
      (List.init (n_areas t) (fun a -> a))
  in
  (* Logical level agreement. *)
  let logical_states =
    Array.to_list t.logical_switches
    |> List.filter_map (fun sw ->
           match (Dgmc.Switch.members sw mc, Dgmc.Switch.topology sw mc) with
           | Some m, Some tree -> Some (Dgmc.Switch.id sw, m, tree)
           | _ -> None)
  in
  let logical_tree =
    match logical_states with
    | [] ->
      if member_areas <> [] then report "no logical state but areas have members";
      None
    | (a0, m0, t0) :: rest ->
      List.iter
        (fun (a, m, tree) ->
          if not (Dgmc.Member.equal m m0) then
            report "logical members differ between areas %d and %d" a a0;
          if not (Mctree.Tree.equal tree t0) then
            report "logical topology differs between areas %d and %d" a a0)
        rest;
      if Dgmc.Member.ids m0 <> member_areas then
        report "logical membership does not match the areas holding members";
      if member_areas <> [] && not (Mctree.Tree.is_valid_mc_topology t.logical_graph t0)
      then report "logical topology is not a valid tree of areas";
      Some t0
  in
  Array.iter
    (fun sw ->
      if not (Dgmc.Switch.quiescent sw mc) then
        report "logical node %d has pending work" (Dgmc.Switch.id sw))
    t.logical_switches;
  (* Per-area agreement and expected member sets. *)
  let area_trees = Array.make (n_areas t) None in
  Array.iteri
    (fun a members ->
      let states =
        List.filter_map
          (fun s ->
            match
              ( Dgmc.Switch.members t.switches.(s) mc,
                Dgmc.Switch.topology t.switches.(s) mc )
            with
            | Some m, Some tree -> Some (s, m, tree)
            | _ -> None)
          members
      in
      List.iter
        (fun s ->
          if not (Dgmc.Switch.quiescent t.switches.(s) mc) then
            report "switch %d has pending work" s)
        members;
      match states with
      | [] -> ()
      | (s0, m0, t0) :: rest ->
        List.iter
          (fun (s, m, tree) ->
            if not (Dgmc.Member.equal m m0) then
              report "area %d: members differ at switches %d and %d" a s s0;
            if not (Mctree.Tree.equal tree t0) then
              report "area %d: topology differs at switches %d and %d" a s s0)
          rest;
        let real =
          Option.value ~default:Int_set.empty
            (Mc_table.find_opt t.host_members.(a) mc)
        in
        let gw =
          Option.value ~default:Int_set.empty (Mc_table.find_opt t.gateways.(a) mc)
        in
        let expected = Int_set.elements (Int_set.union real gw) in
        if Dgmc.Member.ids m0 <> expected then
          report "area %d: member list does not match hosts + gateways" a;
        if expected <> [] then begin
          if not (Mctree.Tree.is_valid_mc_topology t.area_graphs.(a) t0) then
            report "area %d: invalid intra-area topology" a;
          area_trees.(a) <- Some t0
        end)
    t.partition;
  (* Gateways must match the agreed logical tree. *)
  (match logical_tree with
  | Some ltree ->
    Array.iteri
      (fun a _ ->
        let wanted = derive_gateways t a ltree in
        let current =
          Option.value ~default:Int_set.empty (Mc_table.find_opt t.gateways.(a) mc)
        in
        if not (Int_set.equal wanted current) then
          report "area %d: gateway set does not match the logical tree" a)
      t.partition
  | None ->
    Array.iteri
      (fun a _ ->
        let current =
          Option.value ~default:Int_set.empty (Mc_table.find_opt t.gateways.(a) mc)
        in
        if not (Int_set.is_empty current) then
          report "area %d: stale gateways with no logical MC" a)
      t.partition);
  (* Stitch and validate the global tree. *)
  (if member_areas <> [] then
     match logical_tree with
     | None -> ()
     | Some ltree ->
       let union = ref (Mctree.Tree.empty) in
       Array.iter
         (fun tree_opt ->
           match tree_opt with
           | Some tree ->
             List.iter
               (fun (u, v) -> union := Mctree.Tree.add_edge !union u v)
               (Mctree.Tree.edges tree)
           | None -> ())
         area_trees;
       List.iter
         (fun (x, y) ->
           match Hashtbl.find_opt t.edge_map (min x y, max x y) with
           | Some (u, v) -> union := Mctree.Tree.add_edge !union u v
           | None -> report "logical edge (%d, %d) has no mapped link" x y)
         (Mctree.Tree.edges ltree);
       let all_members =
         List.concat_map
           (fun a ->
             Int_set.elements
               (Option.value ~default:Int_set.empty
                  (Mc_table.find_opt t.host_members.(a) mc)))
           member_areas
         |> List.sort Int.compare
       in
       let global = Mctree.Tree.with_terminals !union all_members in
       if not (Mctree.Tree.is_tree global) then report "stitched global graph has a cycle";
       if not (Mctree.Tree.spans_terminals global) then
         report "stitched global tree does not span all members";
       if not (Mctree.Tree.is_embedded t.graph global) then
         report "stitched global tree uses dead links");
  List.rev !problems

let converged t mc = divergence t mc = []

let global_tree t mc =
  if not (converged t mc) then None
  else begin
    let union = ref Mctree.Tree.empty in
    Array.iteri
      (fun a members ->
        ignore a;
        match members with
        | s :: _ -> (
          match Dgmc.Switch.topology t.switches.(s) mc with
          | Some tree ->
            List.iter
              (fun (u, v) -> union := Mctree.Tree.add_edge !union u v)
              (Mctree.Tree.edges tree)
          | None -> ())
        | [] -> ())
      t.partition;
    (match
       Array.to_list t.logical_switches
       |> List.find_map (fun sw -> Dgmc.Switch.topology sw mc)
     with
    | Some ltree ->
      List.iter
        (fun (x, y) ->
          match Hashtbl.find_opt t.edge_map (min x y, max x y) with
          | Some (u, v) -> union := Mctree.Tree.add_edge !union u v
          | None -> ())
        (Mctree.Tree.edges ltree)
    | None -> ());
    let members =
      Array.to_list t.host_members
      |> List.concat_map (fun table ->
             match Mc_table.find_opt table mc with
             | Some set -> Int_set.elements set
             | None -> [])
      |> List.sort Int.compare
    in
    if members = [] then None else Some (Mctree.Tree.with_terminals !union members)
  end
