let norm u v = if u < v then (u, v) else (v, u)

type t = {
  graph : Net.Graph.t;
  capacities : (int * int, float) Hashtbl.t;
  default_capacity : float;
  reserved : (int * int, float) Hashtbl.t;
  reservations : (int, float * Mctree.Tree.t) Hashtbl.t;
}

let create graph ~default_capacity =
  if default_capacity < 0.0 then
    invalid_arg "Capacity.create: negative default capacity";
  {
    graph;
    capacities = Hashtbl.create 64;
    default_capacity;
    reserved = Hashtbl.create 64;
    reservations = Hashtbl.create 16;
  }

let graph t = t.graph

let capacity t u v =
  if not (Net.Graph.has_edge t.graph u v) then raise Not_found;
  Option.value ~default:t.default_capacity (Hashtbl.find_opt t.capacities (norm u v))

let reserved t u v =
  Option.value ~default:0.0 (Hashtbl.find_opt t.reserved (norm u v))

let set_capacity t u v cap =
  if cap < 0.0 then invalid_arg "Capacity.set_capacity: negative capacity";
  if not (Net.Graph.has_edge t.graph u v) then raise Not_found;
  if reserved t u v > cap then
    invalid_arg "Capacity.set_capacity: below current reservations";
  Hashtbl.replace t.capacities (norm u v) cap

let residual t u v =
  if not (Net.Graph.link_is_up t.graph u v) then 0.0
  else Float.max 0.0 (capacity t u v -. reserved t u v)

let add_reserved t u v amount =
  let key = norm u v in
  Hashtbl.replace t.reserved key (reserved t u v +. amount)

let reserve_tree t ~key ~bandwidth tree =
  if bandwidth <= 0.0 then invalid_arg "Capacity.reserve_tree: bandwidth <= 0";
  if Hashtbl.mem t.reservations key then
    invalid_arg "Capacity.reserve_tree: key already reserved";
  let edges = Mctree.Tree.edges tree in
  List.iter
    (fun (u, v) ->
      if residual t u v +. 1e-9 < bandwidth then
        failwith
          (* dgmc-analyze: allow float-format — human-readable error message *)
          (Printf.sprintf "Capacity: link (%d, %d) lacks %.3g of capacity" u v
             bandwidth))
    edges;
  List.iter (fun (u, v) -> add_reserved t u v bandwidth) edges;
  Hashtbl.replace t.reservations key (bandwidth, tree)

let release t ~key =
  match Hashtbl.find_opt t.reservations key with
  | None -> ()
  | Some (bandwidth, tree) ->
    List.iter
      (fun (u, v) -> add_reserved t u v (-.bandwidth))
      (Mctree.Tree.edges tree);
    Hashtbl.remove t.reservations key

let reservation t ~key = Hashtbl.find_opt t.reservations key

let constrained_image t ~bandwidth =
  let n = Net.Graph.n_nodes t.graph in
  let g = Net.Graph.create n in
  List.iter
    (fun (e : Net.Graph.edge) ->
      if residual t e.u e.v +. 1e-9 >= bandwidth then
        Net.Graph.add_edge g e.u e.v ~weight:e.weight)
    (Net.Graph.edges t.graph);
  g

let totals t =
  Net.Graph.fold_edges
    (fun e (cap, res) -> (cap +. capacity t e.u e.v, res +. reserved t e.u e.v))
    t.graph (0.0, 0.0)

let utilization t =
  let cap, res = totals t in
  if cap <= 0.0 then 0.0 else res /. cap

let max_utilization t =
  Net.Graph.fold_edges
    (fun e acc ->
      let cap = capacity t e.u e.v in
      if cap <= 0.0 then acc else Float.max acc (reserved t e.u e.v /. cap))
    t.graph 0.0
