(** Work-stealing domain pool for embarrassingly parallel task batches.

    The evaluation workloads of this repository — figure sweeps over
    (graph × seed × regime) cells and fuzz batches over seeds — are
    lists of independent, CPU-bound tasks.  [Pool] runs such a batch
    across OCaml 5 domains while keeping the results {e deterministic}:

    - results are collected by task index, never by completion order;
    - tasks must derive any randomness from their own identity (their
      seed or {!Sim.Rng.derive} on their index), never from shared
      state, so the values computed are independent of which domain
      runs which task and in what order;
    - [~domains:1] executes the batch sequentially in the calling
      domain — byte-for-byte the pre-pool behaviour.

    Scheduling: each worker owns a contiguous block of task indices and
    consumes it front to back; an idle worker steals single tasks from
    the {e back} of the fullest remaining block.  With coarse tasks
    (every cell here simulates a full protocol run) this balances load
    to within one task without the overhead of per-task queues.

    Tasks must not share mutable state.  All protocol state in this
    repository is per-run ([Protocol.create] per task); the only
    process-global mutable — [Dgmc.Compute.was_incremental] — is
    domain-local storage. *)

type stats = {
  task : int;  (** Task index within the batch. *)
  wall_s : float;  (** Wall-clock seconds spent inside the task. *)
  alloc_bytes : float;
      (** Bytes allocated by the running domain during the task
          (approximate when other tasks share the domain's GC). *)
  domain : int;  (** Worker slot (0 .. domains-1) that ran the task. *)
}

type 'a timed = { value : 'a; stats : stats }

type batch = {
  elapsed_s : float;  (** Wall clock for the whole batch, fork to join. *)
  seq_estimate_s : float;
      (** Sum of per-task wall times — the sequential-run estimate used
          to report speedup ([seq_estimate_s /. elapsed_s]). *)
  domains : int;  (** Worker count actually used. *)
}

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware's suggestion. *)

val run :
  ?domains:int -> ?metrics:Metrics.Registry.t -> (unit -> 'a) array -> 'a array
(** [run ~domains tasks] evaluates every task and returns the results
    in task order.  [domains] defaults to [1]; it is capped at the task
    count.  If any task raises, the batch is still drained and the
    exception of the lowest-indexed failing task is re-raised.

    [metrics] receives one [pool.task_wall_s] and [pool.task_alloc_bytes]
    histogram observation per task.  The registry is {e not} domain-safe,
    so observations happen on the calling domain after the join, from the
    already-collected per-task stats. *)

val map :
  ?domains:int -> ?metrics:Metrics.Registry.t -> ('a -> 'b) -> 'a list ->
  'b list
(** [map ~domains f xs] is [List.map f xs] with the applications spread
    over [domains] workers; result order follows [xs]. *)

val map_timed :
  ?domains:int -> ?metrics:Metrics.Registry.t -> ('a -> 'b) -> 'a list ->
  'b timed list * batch
(** [map] plus per-task wall-clock/allocation counters and whole-batch
    timing, for benchmark reporting. *)

val map_registered :
  ?domains:int ->
  metrics:Metrics.Registry.t ->
  (?metrics:Metrics.Registry.t -> 'a -> 'b) ->
  'a list ->
  'b timed list * batch
(** {!map_timed} for tasks that record metrics {e while running}.  Each
    worker slot creates a child registry inside its own domain (so the
    child is owned where the recording happens — {!Metrics.Registry} is
    domain-pinned) and passes it to every task it runs as [?metrics];
    after all workers join, the quiescent children are merged into
    [metrics] in worker-slot order ({!Metrics.Registry.merge}: counters
    add, histograms merge bucket-exactly), followed by the usual
    post-join [pool.task_*] observations.  Since tasks are deterministic
    functions of their input and merging commutes, the merged counters
    and histograms are identical at any domain count and under any
    stealing schedule; gauges merge by max and are only schedule-free
    when one task sets them. *)
