type stats = {
  task : int;
  wall_s : float;
  alloc_bytes : float;
  domain : int;
}

type 'a timed = { value : 'a; stats : stats }

type batch = {
  elapsed_s : float;
  seq_estimate_s : float;
  domains : int;
}

let default_domains () = Domain.recommended_domain_count ()

(* ------------------------------------------------------------------ *)
(* Scheduling: block-per-worker with back-end stealing.

   Worker [k] owns the contiguous index block [next, limit); it consumes
   from [next].  A worker whose block is empty locks the victim with the
   most remaining work and takes one index off [limit].  Determinism
   does not depend on any of this: results land in a slot array by task
   index, and tasks derive their randomness from their index alone. *)

type block = {
  lock : Mutex.t;
  mutable next : int;
  mutable limit : int;
}

let take_own b =
  Mutex.lock b.lock;
  let r =
    if b.next < b.limit then begin
      let i = b.next in
      b.next <- i + 1;
      Some i
    end
    else None
  in
  Mutex.unlock b.lock;
  r

let steal b =
  Mutex.lock b.lock;
  let r =
    if b.next < b.limit then begin
      b.limit <- b.limit - 1;
      Some b.limit
    end
    else None
  in
  Mutex.unlock b.lock;
  r

let remaining b =
  Mutex.lock b.lock;
  let r = b.limit - b.next in
  Mutex.unlock b.lock;
  r

(* A full scan finding every block empty terminates the worker: no task
   is ever added after the fork, so emptiness is stable. *)
let next_task blocks k =
  match take_own blocks.(k) with
  | Some i -> Some i
  | None ->
    let victim = ref (-1) and best = ref 0 in
    Array.iteri
      (fun j b ->
        if j <> k then begin
          let r = remaining b in
          if r > !best then begin
            best := r;
            victim := j
          end
        end)
      blocks;
    if !victim < 0 then None else steal blocks.(!victim)

let run_task f i slot results =
  (* dgmc-analyze: allow nondet-source — wall-clock timing of task
     execution; never feeds simulation state *)
  let t0 = Unix.gettimeofday () in
  let a0 = Gc.allocated_bytes () in
  let outcome =
    match f () with
    | v -> Ok v
    | exception exn ->
      let bt = Printexc.get_raw_backtrace () in
      Error (exn, bt)
  in
  (* dgmc-analyze: allow nondet-source — wall-clock timing measurement *)
  let wall_s = Unix.gettimeofday () -. t0 in
  let alloc_bytes = Gc.allocated_bytes () -. a0 in
  results.(i) <-
    Some (outcome, { task = i; wall_s; alloc_bytes; domain = slot })

let raise_first results =
  Array.iter
    (function
      | Some (Error (exn, bt), _) -> Printexc.raise_with_backtrace exn bt
      | Some (Ok _, _) | None -> ())
    results

(* Registry is not domain-safe: per-task stats are observed here, on the
   calling domain, after every worker has joined. *)
let observe_stats metrics timed =
  match metrics with
  | None -> ()
  | Some m ->
    Array.iter
      (fun t ->
        Metrics.Registry.observe m "pool.task_wall_s" t.stats.wall_s;
        Metrics.Registry.observe m "pool.task_alloc_bytes" t.stats.alloc_bytes)
      timed

(* Generalized batch core: tasks receive a per-worker child registry
   (or [None] when the batch is unmetered).  Registry is not domain-safe,
   so a worker can never record into the caller's registry directly;
   instead each worker slot creates a registry {e inside its own domain}
   — making it that domain's owner — and after every worker has joined,
   the quiescent children are folded into the parent in worker-slot
   order, which is deterministic however the work was stolen (counter
   and histogram merges commute; see {!Metrics.Registry.merge}). *)
let run_batch_gen ?(domains = 1) ?metrics tasks =
  let n = Array.length tasks in
  (* dgmc-analyze: allow nondet-source — wall-clock timing of the batch *)
  let started = Unix.gettimeofday () in
  let workers = max 1 (min domains n) in
  let results = Array.make n None in
  let children = Array.make workers None in
  (* Called on the worker's own domain, so the child is owned there. *)
  let child_registry slot =
    match metrics with
    | None -> None
    | Some _ ->
      let r = Metrics.Registry.create () in
      children.(slot) <- Some r;
      Some r
  in
  if workers <= 1 then begin
    let reg = child_registry 0 in
    Array.iteri (fun i f -> run_task (fun () -> f reg) i 0 results) tasks
  end
  else begin
    let blocks =
      Array.init workers (fun k ->
          let chunk = n / workers and rem = n mod workers in
          let lo = (k * chunk) + min k rem in
          let hi = lo + chunk + if k < rem then 1 else 0 in
          { lock = Mutex.create (); next = lo; limit = hi })
    in
    let worker k =
      let reg = child_registry k in
      let rec loop () =
        match next_task blocks k with
        | Some i ->
          run_task (fun () -> tasks.(i) reg) i k results;
          loop ()
        | None -> ()
      in
      loop ()
    in
    let spawned =
      Array.init (workers - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    worker 0;
    Array.iter Domain.join spawned
  end;
  raise_first results;
  let timed =
    Array.map
      (function
        | Some (Ok value, stats) -> { value; stats }
        | Some (Error _, _) | None -> assert false (* raise_first covered it *))
      results
  in
  (* dgmc-analyze: allow nondet-source — wall-clock timing of the batch *)
  let elapsed_s = Unix.gettimeofday () -. started in
  let seq_estimate_s =
    Array.fold_left (fun acc t -> acc +. t.stats.wall_s) 0.0 timed
  in
  (match metrics with
  | None -> ()
  | Some m ->
    Array.iter
      (function Some c -> Metrics.Registry.merge ~into:m c | None -> ())
      children);
  observe_stats metrics timed;
  (timed, { elapsed_s; seq_estimate_s; domains = workers })

let run_batch ?domains ?metrics tasks =
  run_batch_gen ?domains ?metrics (Array.map (fun f _reg -> f ()) tasks)

let run ?domains ?metrics tasks =
  let timed, _ = run_batch ?domains ?metrics tasks in
  Array.map (fun t -> t.value) timed

let map ?domains ?metrics f xs =
  let tasks = Array.of_list (List.map (fun x () -> f x) xs) in
  Array.to_list (run ?domains ?metrics tasks)

let map_timed ?domains ?metrics f xs =
  let tasks = Array.of_list (List.map (fun x () -> f x) xs) in
  let timed, batch = run_batch ?domains ?metrics tasks in
  (Array.to_list timed, batch)

let map_registered ?domains ~metrics f xs =
  let tasks = Array.of_list (List.map (fun x reg -> f ?metrics:reg x) xs) in
  let timed, batch = run_batch_gen ?domains ~metrics tasks in
  (Array.to_list timed, batch)
