(** Regression gate over two [dgmc-bench/1] documents.

    The schema carries both deterministic simulation figures and
    wall-clock measurements; the differ holds them to different
    standards:

    - {e Exact} (any difference is a [Fail]): the schema tag, per-figure
      cell identity sets (series × size × seed), metric counter values,
      histogram sample counts, and the [series]/[sli] telemetry sections
      when both documents carry them.
    - {e Tolerated}: per-section and total [seq_estimate_s] — the sum of
      per-task wall times, so independent of the domain count — gated by
      a relative [wall_tol]; regressions beyond it are [Fail],
      improvements beyond it are [Info].
    - {e Informational only}: meta fields (commit, seed, quick,
      domains), gauge values, histogram float stats, sections new in the
      candidate, and the [phase] wall/alloc table (never compared).

    A baseline section missing from the candidate is a structural
    [Fail]. *)

type severity = Info | Fail

type finding = { severity : severity; area : string; detail : string }

type outcome = { findings : finding list }

val failed : outcome -> bool
(** Any [Fail] finding present. *)

val compare_json : wall_tol:float -> Sim.Json.t -> Sim.Json.t -> outcome
(** [compare_json ~wall_tol baseline candidate]. *)

val compare_strings :
  wall_tol:float -> baseline:string -> candidate:string ->
  (outcome, string) result
(** Parse both documents and compare; [Error] names the side that failed
    to parse. *)

val render :
  wall_tol:float -> baseline_name:string -> candidate_name:string ->
  outcome -> string
(** Markdown report: verdict line, then findings with failures first. *)
