(* The trace → SLI adapter and the human/machine run report.

   This module owns the one piece of protocol knowledge the SLI layer
   deliberately does not have: which trace events anchor, cost, and
   close a reconfiguration window (Metrics.Sli is trace-agnostic). *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Reduce a causal trace to SLI observations.

   - Anchors are the local membership/link events: a [Compute_started]
     whose trigger is ["event:<ev>"] (switches tag local triggers that
     way; remote ones read ["receive-lsa"]), and the matching non-proposal
     MC-LSA origination that announces the event to the network.
   - Control cost is every MC-LSA origination plus every per-link copy of
     one ([Lsa_forwarded], retransmissions included).  Forwards carry
     only (origin, seq), so originations are indexed as they pass — a
     forward always trails its origination in emission order.
   - Installs close windows ([Topology_installed]). *)
let sli_of_trace entries =
  let mc_of = Hashtbl.create 256 in
  let obs = ref [] in
  let push o = obs := o :: !obs in
  List.iter
    (fun (e : Sim.Trace.entry) ->
      let time = e.time in
      match e.event with
      | Lsa_originated { switch; mc; seq; ev; proposal; _ } when mc <> "" ->
        Hashtbl.replace mc_of (switch, seq) mc;
        if (not proposal) && ev <> "none" then
          push (Metrics.Sli.anchor ~mc ~time);
        push (Metrics.Sli.control ~mc ~time)
      | Compute_started { mc; trigger; _ }
        when mc <> "" && starts_with ~prefix:"event:" trigger ->
        push (Metrics.Sli.anchor ~mc ~time)
      | Lsa_forwarded { origin; seq; _ } -> (
        match Hashtbl.find_opt mc_of (origin, seq) with
        | Some mc -> push (Metrics.Sli.control ~mc ~time)
        | None -> ())
      | Topology_installed { mc; _ } when mc <> "" ->
        push (Metrics.Sli.install ~mc ~time)
      | _ -> ())
    entries;
  List.rev !obs

let span entries =
  match entries with
  | [] -> 0.0
  | (first : Sim.Trace.entry) :: _ ->
    let last = List.fold_left (fun _ (e : Sim.Trace.entry) -> e.time) first.time entries in
    last -. first.time

(* With no better knowledge of the workload, call gaps longer than 1/20
   of the run separate reconfigurations; degenerate spans fall back to
   one simulated second. *)
let default_gap entries =
  let s = span entries /. 20.0 in
  if s > 0.0 then s else 1.0

(* ------------------------------------------------------------------ *)
(* Rendering helpers *)

(* dgmc-analyze: allow float-format — human-facing report rendering; the
   JSON form uses round-trip rendering *)
let num f = if Float.is_finite f then Printf.sprintf "%.6g" f else "nan"

let category_counts entries =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : Sim.Trace.entry) ->
      let c = Sim.Trace.category e.event in
      Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
    entries;
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let dropped_note (a : Sim.Trace.archive) =
  Printf.sprintf
    "%d event(s) were evicted from the trace ring buffer; counts and SLI \
     windows below understate the run (raise the trace cap)"
    a.a_dropped

let phase_table_of_bench bench =
  let open Sim.Json in
  match Option.bind (member "phase" bench) (member "phases") with
  | Some (Arr rows) when rows <> [] ->
    let b = Buffer.create 512 in
    Buffer.add_string b
      "| phase | calls | wall s | self wall s | minor words | self minor |\n";
    Buffer.add_string b "|---|---:|---:|---:|---:|---:|\n";
    List.iter
      (fun row ->
        let str k = Option.bind (member k row) to_string in
        let fl k = Option.bind (member k row) to_float in
        let cell = function Some f -> num f | None -> "-" in
        Buffer.add_string b
          (Printf.sprintf "| %s | %s | %s | %s | %s | %s |\n"
             (Option.value ~default:"?" (str "phase"))
             (cell (fl "calls"))
             (cell (fl "wall_s"))
             (cell (fl "self_wall_s"))
             (cell (fl "minor_words"))
             (cell (fl "self_minor_words"))))
      rows;
    Some (Buffer.contents b)
  | _ -> None

let dist_row label (d : Metrics.Sli.dist) =
  Printf.sprintf "| %s | %d | %s | %s | %s | %s | %s |\n" label d.d_count
    (num d.d_mean) (num d.d_p50) (num d.d_p90) (num d.d_p99) (num d.d_max)

let markdown ?bench ~gap (a : Sim.Trace.archive) =
  let b = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let entries = a.a_entries in
  out "# D-GMC run report\n\n";
  out "## Trace\n\n";
  out "- events: %d retained, %d emitted, %d evicted\n" (List.length entries)
    a.a_emitted a.a_dropped;
  if a.a_dropped > 0 then out "- **warning**: %s\n" (dropped_note a);
  out "- simulated span: %s s\n\n" (num (span entries));
  if entries <> [] then begin
    out "| category | events |\n|---|---:|\n";
    List.iter (fun (c, n) -> out "| %s | %d |\n" c n) (category_counts entries);
    out "\n"
  end;
  let summary = Metrics.Sli.summarize ~gap (sli_of_trace entries) in
  out "## Reconfiguration SLIs (gap = %s s)\n\n" (num gap);
  out "- windows: %d (%d unconverged)\n\n"
    (List.length summary.s_windows)
    summary.s_unconverged;
  if summary.s_windows <> [] then begin
    out "| figure | n | mean | p50 | p90 | p99 | max |\n";
    out "|---|---:|---:|---:|---:|---:|---:|\n";
    Buffer.add_string b (dist_row "convergence latency (s)" summary.s_latency);
    Buffer.add_string b (dist_row "control messages" summary.s_control);
    out "\n| mc | start s | end s | latency s | anchors | installs | control |\n";
    out "|---|---:|---:|---:|---:|---:|---:|\n";
    List.iter
      (fun (w : Metrics.Sli.window) ->
        out "| %s | %s | %s | %s | %d | %d | %d |\n" w.w_mc (num w.w_start)
          (num w.w_end)
          (num (Metrics.Sli.latency w))
          w.w_anchors w.w_installs w.w_control)
      summary.s_windows;
    out "\n"
  end;
  (match Option.bind bench phase_table_of_bench with
  | Some table ->
    out "## Phase attribution (bench)\n\n";
    Buffer.add_string b table;
    out "\n"
  | None -> ());
  Buffer.contents b

let render_json j =
  let b = Buffer.create 1024 in
  let rec go j =
    match (j : Sim.Json.t) with
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Num f -> Buffer.add_string b (Sim.Json.number f)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (Sim.Json.escape s);
      Buffer.add_char b '"'
    | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ", ";
          go x)
        xs;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_char b '"';
          Buffer.add_string b (Sim.Json.escape k);
          Buffer.add_string b "\": ";
          go v)
        kvs;
      Buffer.add_char b '}'
  in
  go j;
  Buffer.contents b

let json ?bench ~gap (a : Sim.Trace.archive) =
  let entries = a.a_entries in
  let summary = Metrics.Sli.summarize ~gap (sli_of_trace entries) in
  let note =
    if a.a_dropped > 0 then
      Printf.sprintf ",\n    \"note\": \"%s\"" (Metrics.Jsonf.escape (dropped_note a))
    else ""
  in
  let bench_field =
    match bench with
    | Some (Sim.Json.Obj _ as b) -> render_json b
    | Some _ | None -> "null"
  in
  Printf.sprintf
    {|{
  "schema": "dgmc-report/1",
  "trace": {
    "emitted": %d,
    "retained": %d,
    "dropped": %d%s
  },
  "sli": %s,
  "bench": %s
}
|}
    a.a_emitted (List.length entries) a.a_dropped note
    (Metrics.Sli.to_json summary)
    bench_field
