(* The trace → SLI adapter and the human/machine run report.

   This module owns the one piece of protocol knowledge the SLI layer
   deliberately does not have: which trace events anchor, cost, and
   close a reconfiguration window (Metrics.Sli is trace-agnostic). *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Reduce a causal trace to SLI observations.

   - Anchors are the local membership/link events: a [Compute_started]
     whose trigger is ["event:<ev>"] (switches tag local triggers that
     way; remote ones read ["receive-lsa"]), and the matching non-proposal
     MC-LSA origination that announces the event to the network.
   - Control cost is every MC-LSA origination plus every per-link copy of
     one ([Lsa_forwarded], retransmissions included).  Forwards carry
     only (origin, seq), so originations are indexed as they pass — a
     forward always trails its origination in emission order.
   - Installs close windows ([Topology_installed]). *)
let sli_of_trace entries =
  let mc_of = Hashtbl.create 256 in
  let obs = ref [] in
  let push o = obs := o :: !obs in
  List.iter
    (fun (e : Sim.Trace.entry) ->
      let time = e.time in
      match e.event with
      | Lsa_originated { switch; mc; seq; ev; proposal; _ } when mc <> "" ->
        Hashtbl.replace mc_of (switch, seq) mc;
        if (not proposal) && ev <> "none" then
          push (Metrics.Sli.anchor ~mc ~time);
        push (Metrics.Sli.control ~mc ~time)
      | Compute_started { mc; trigger; _ }
        when mc <> "" && starts_with ~prefix:"event:" trigger ->
        push (Metrics.Sli.anchor ~mc ~time)
      | Lsa_forwarded { origin; seq; _ } -> (
        match Hashtbl.find_opt mc_of (origin, seq) with
        | Some mc -> push (Metrics.Sli.control ~mc ~time)
        | None -> ())
      | Topology_installed { mc; _ } when mc <> "" ->
        push (Metrics.Sli.install ~mc ~time)
      | _ -> ())
    entries;
  List.rev !obs

let span entries =
  match entries with
  | [] -> 0.0
  | (first : Sim.Trace.entry) :: _ ->
    let last = List.fold_left (fun _ (e : Sim.Trace.entry) -> e.time) first.time entries in
    last -. first.time

(* With no better knowledge of the workload, call gaps longer than 1/20
   of the run separate reconfigurations; degenerate spans fall back to
   one simulated second. *)
let default_gap entries =
  let s = span entries /. 20.0 in
  if s > 0.0 then s else 1.0

(* ------------------------------------------------------------------ *)
(* Rendering helpers *)

(* dgmc-analyze: allow float-format — human-facing report rendering; the
   JSON form uses round-trip rendering *)
let num f = if Float.is_finite f then Printf.sprintf "%.6g" f else "nan"

let category_counts entries =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : Sim.Trace.entry) ->
      let c = Sim.Trace.category e.event in
      Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
    entries;
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let dropped_note (a : Sim.Trace.archive) =
  Printf.sprintf
    "%d event(s) were evicted from the trace ring buffer; counts and SLI \
     windows below understate the run (raise the trace cap)"
    a.a_dropped

let phase_table_of_bench bench =
  let open Sim.Json in
  match Option.bind (member "phase" bench) (member "phases") with
  | Some (Arr rows) when rows <> [] ->
    let b = Buffer.create 512 in
    Buffer.add_string b
      "| phase | calls | wall s | self wall s | minor words | self minor |\n";
    Buffer.add_string b "|---|---:|---:|---:|---:|---:|\n";
    List.iter
      (fun row ->
        let str k = Option.bind (member k row) to_string in
        let fl k = Option.bind (member k row) to_float in
        let cell = function Some f -> num f | None -> "-" in
        Buffer.add_string b
          (Printf.sprintf "| %s | %s | %s | %s | %s | %s |\n"
             (Option.value ~default:"?" (str "phase"))
             (cell (fl "calls"))
             (cell (fl "wall_s"))
             (cell (fl "self_wall_s"))
             (cell (fl "minor_words"))
             (cell (fl "self_minor_words"))))
      rows;
    Some (Buffer.contents b)
  | _ -> None

(* Per-directed-link fault aggregation from [Fault_injected] events —
   the trace-side view of [Faults.Plan.link_counters] (capped at the
   trace ring size, unlike the plan's exact totals). *)
type link_faults = {
  mutable f_drops : int;
  mutable f_dups : int;
  mutable f_reorders : int;
  mutable f_blocked : int;
}

let fault_links entries =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : Sim.Trace.entry) ->
      match e.event with
      | Fault_injected { src; dst; fault } ->
        let f =
          match Hashtbl.find_opt tbl (src, dst) with
          | Some f -> f
          | None ->
            let f =
              { f_drops = 0; f_dups = 0; f_reorders = 0; f_blocked = 0 }
            in
            Hashtbl.add tbl (src, dst) f;
            f
        in
        if fault = "drop" then f.f_drops <- f.f_drops + 1
        else if fault = "duplicate" then f.f_dups <- f.f_dups + 1
        else if starts_with ~prefix:"reorder" fault then
          f.f_reorders <- f.f_reorders + 1
        else if starts_with ~prefix:"blocked" fault then
          f.f_blocked <- f.f_blocked + 1
      | _ -> ())
    entries;
  Hashtbl.fold (fun k f acc -> (k, f) :: acc) tbl []
  |> List.sort (fun ((a1, a2), _) ((b1, b2), _) ->
         match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c)

(* Link-health detection summary from [Link_detected] events. *)
type detection = {
  det_downs : int;  (** True down verdicts. *)
  det_ups : int;
  det_spurious : int;
  det_latencies : float list;  (** Of the true downs, sorted ascending. *)
}

let detections entries =
  let downs = ref 0 and ups = ref 0 and spurious = ref 0 in
  let lats = ref [] in
  List.iter
    (fun (e : Sim.Trace.entry) ->
      match e.event with
      | Link_detected { up; latency; spurious = sp; _ } ->
        if sp then incr spurious
        else if up then incr ups
        else begin
          incr downs;
          lats := latency :: !lats
        end
      | _ -> ())
    entries;
  {
    det_downs = !downs;
    det_ups = !ups;
    det_spurious = !spurious;
    det_latencies = List.sort Float.compare !lats;
  }

let percentile sorted p =
  match sorted with
  | [] -> 0.0
  | ls ->
    let n = List.length ls in
    let idx = min (n - 1) (max 0 (int_of_float (ceil (p *. float_of_int n)) - 1)) in
    List.nth ls idx

let dist_row label (d : Metrics.Sli.dist) =
  Printf.sprintf "| %s | %d | %s | %s | %s | %s | %s |\n" label d.d_count
    (num d.d_mean) (num d.d_p50) (num d.d_p90) (num d.d_p99) (num d.d_max)

let markdown ?bench ~gap (a : Sim.Trace.archive) =
  let b = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let entries = a.a_entries in
  out "# D-GMC run report\n\n";
  out "## Trace\n\n";
  out "- events: %d retained, %d emitted, %d evicted\n" (List.length entries)
    a.a_emitted a.a_dropped;
  if a.a_dropped > 0 then out "- **warning**: %s\n" (dropped_note a);
  out "- simulated span: %s s\n\n" (num (span entries));
  if entries <> [] then begin
    out "| category | events |\n|---|---:|\n";
    List.iter (fun (c, n) -> out "| %s | %d |\n" c n) (category_counts entries);
    out "\n"
  end;
  let summary = Metrics.Sli.summarize ~gap (sli_of_trace entries) in
  out "## Reconfiguration SLIs (gap = %s s)\n\n" (num gap);
  out "- windows: %d (%d unconverged)\n\n"
    (List.length summary.s_windows)
    summary.s_unconverged;
  if summary.s_windows <> [] then begin
    out "| figure | n | mean | p50 | p90 | p99 | max |\n";
    out "|---|---:|---:|---:|---:|---:|---:|\n";
    Buffer.add_string b (dist_row "convergence latency (s)" summary.s_latency);
    Buffer.add_string b (dist_row "control messages" summary.s_control);
    out "\n| mc | start s | end s | latency s | anchors | installs | control |\n";
    out "|---|---:|---:|---:|---:|---:|---:|\n";
    List.iter
      (fun (w : Metrics.Sli.window) ->
        out "| %s | %s | %s | %s | %d | %d | %d |\n" w.w_mc (num w.w_start)
          (num w.w_end)
          (num (Metrics.Sli.latency w))
          w.w_anchors w.w_installs w.w_control)
      summary.s_windows;
    out "\n"
  end;
  (match fault_links entries with
  | [] -> ()
  | links ->
    out "## Fault injections by link\n\n";
    out "| link | drops | duplicates | reorders | blocked |\n";
    out "|---|---:|---:|---:|---:|\n";
    List.iter
      (fun ((src, dst), f) ->
        out "| %d → %d | %d | %d | %d | %d |\n" src dst f.f_drops f.f_dups
          f.f_reorders f.f_blocked)
      links;
    out "\n");
  (let d = detections entries in
   if d.det_downs + d.det_ups + d.det_spurious > 0 then begin
     out "## Link-health detection\n\n";
     out "- down verdicts: %d true, %d spurious\n" d.det_downs d.det_spurious;
     out "- up (recovery) verdicts: %d\n\n" d.det_ups;
     match d.det_latencies with
     | [] -> ()
     | ls ->
       let n = List.length ls in
       let mean = List.fold_left ( +. ) 0.0 ls /. float_of_int n in
       out "| figure | n | mean | p50 | p90 | p99 | max |\n";
       out "|---|---:|---:|---:|---:|---:|---:|\n";
       out "| detection latency (s) | %d | %s | %s | %s | %s | %s |\n\n" n
         (num mean)
         (num (percentile ls 0.50))
         (num (percentile ls 0.90))
         (num (percentile ls 0.99))
         (num (List.nth ls (n - 1)))
   end);
  (match Option.bind bench phase_table_of_bench with
  | Some table ->
    out "## Phase attribution (bench)\n\n";
    Buffer.add_string b table;
    out "\n"
  | None -> ());
  Buffer.contents b

let render_json j =
  let b = Buffer.create 1024 in
  let rec go j =
    match (j : Sim.Json.t) with
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Num f -> Buffer.add_string b (Sim.Json.number f)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (Sim.Json.escape s);
      Buffer.add_char b '"'
    | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ", ";
          go x)
        xs;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_char b '"';
          Buffer.add_string b (Sim.Json.escape k);
          Buffer.add_string b "\": ";
          go v)
        kvs;
      Buffer.add_char b '}'
  in
  go j;
  Buffer.contents b

let json ?bench ~gap (a : Sim.Trace.archive) =
  let entries = a.a_entries in
  let summary = Metrics.Sli.summarize ~gap (sli_of_trace entries) in
  let note =
    if a.a_dropped > 0 then
      Printf.sprintf ",\n    \"note\": \"%s\"" (Metrics.Jsonf.escape (dropped_note a))
    else ""
  in
  let bench_field =
    match bench with
    | Some (Sim.Json.Obj _ as b) -> render_json b
    | Some _ | None -> "null"
  in
  let faults_field =
    match fault_links entries with
    | [] -> "[]"
    | links ->
      "["
      ^ String.concat ", "
          (List.map
             (fun ((src, dst), f) ->
               Printf.sprintf
                 {|{"src": %d, "dst": %d, "drops": %d, "duplicates": %d, "reorders": %d, "blocked": %d}|}
                 src dst f.f_drops f.f_dups f.f_reorders f.f_blocked)
             links)
      ^ "]"
  in
  let detection_field =
    let d = detections entries in
    if d.det_downs + d.det_ups + d.det_spurious = 0 then "null"
    else
      let ls = d.det_latencies in
      let n = List.length ls in
      let mean =
        if n = 0 then 0.0 else List.fold_left ( +. ) 0.0 ls /. float_of_int n
      in
      Printf.sprintf
        {|{"downs": %d, "ups": %d, "spurious": %d, "latency": {"count": %d, "mean": %s, "p50": %s, "p90": %s, "p99": %s, "max": %s}}|}
        d.det_downs d.det_ups d.det_spurious n (Sim.Json.number mean)
        (Sim.Json.number (percentile ls 0.50))
        (Sim.Json.number (percentile ls 0.90))
        (Sim.Json.number (percentile ls 0.99))
        (Sim.Json.number (if n = 0 then 0.0 else List.nth ls (n - 1)))
  in
  Printf.sprintf
    {|{
  "schema": "dgmc-report/1",
  "trace": {
    "emitted": %d,
    "retained": %d,
    "dropped": %d%s
  },
  "sli": %s,
  "faults_by_link": %s,
  "detection": %s,
  "bench": %s
}
|}
    a.a_emitted (List.length entries) a.a_dropped note
    (Metrics.Sli.to_json summary)
    faults_field detection_field bench_field
