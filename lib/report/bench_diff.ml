(* Regression gate over two dgmc-bench/1 documents.

   The schema mixes two kinds of data and the comparison must not
   confuse them:

   - {e exact} figures — cell identities (series × size × seed), metric
     counters, histogram sample counts, the series and sli telemetry —
     are simulation outputs of a fixed seed and must match byte-exactly;
     any difference is a determinism or workload regression.
   - {e wall-clock} figures — elapsed_s, per-task histograms' float
     stats, the phase table — vary run to run.  The gate is the
     per-section and total [seq_estimate_s] (sum of per-task walls, so
     independent of how many domains ran the batch), compared under a
     relative tolerance; everything else wall-flavored is informational. *)

type severity = Info | Fail

type finding = { severity : severity; area : string; detail : string }

type outcome = { findings : finding list }

let failed o = List.exists (fun f -> f.severity = Fail) o.findings

(* ------------------------------------------------------------------ *)
(* JSON access helpers *)

let str_of m j = Option.bind (Sim.Json.member m j) Sim.Json.to_string

let num_of m j = Option.bind (Sim.Json.member m j) Sim.Json.to_float

let list_of m j = Option.bind (Sim.Json.member m j) Sim.Json.to_list

(* dgmc-analyze: allow float-format — human-facing diff rendering *)
let num f = if Float.is_finite f then Printf.sprintf "%.6g" f else "nan"

let pct f = num (100.0 *. f)

(* ------------------------------------------------------------------ *)
(* Structural JSON equality with a first-difference path *)

let rec diff_json path a b =
  let open Sim.Json in
  match (a, b) with
  | Null, Null -> None
  | Bool x, Bool y when Bool.equal x y -> None
  | Num x, Num y when Float.equal x y -> None
  | Str x, Str y when String.equal x y -> None
  | Arr xs, Arr ys ->
    if List.length xs <> List.length ys then
      Some
        (Printf.sprintf "%s: array length %d vs %d" path (List.length xs)
           (List.length ys))
    else
      List.find_map
        (fun (i, (x, y)) -> diff_json (Printf.sprintf "%s[%d]" path i) x y)
        (List.mapi (fun i p -> (i, p)) (List.combine xs ys))
  | Obj xs, Obj ys ->
    let keys kvs = List.map fst kvs in
    if keys xs <> keys ys then Some (Printf.sprintf "%s: object keys differ" path)
    else
      List.find_map
        (fun ((k, x), (_, y)) -> diff_json (path ^ "." ^ k) x y)
        (List.combine xs ys)
  | _ -> Some (Printf.sprintf "%s: values differ" path)

(* ------------------------------------------------------------------ *)
(* Pieces of the comparison *)

let wall_findings ~wall_tol ~area base cand =
  if base <= 0.0 then []
  else
    let ratio = (cand -. base) /. base in
    if ratio > wall_tol then
      [
        {
          severity = Fail;
          area;
          detail =
            Printf.sprintf
              "seq_estimate_s regressed %s%% (%s s -> %s s, tolerance %s%%)"
              (pct ratio) (num base) (num cand) (pct wall_tol);
        };
      ]
    else if ratio < -.wall_tol then
      [
        {
          severity = Info;
          area;
          detail =
            Printf.sprintf "seq_estimate_s improved %s%% (%s s -> %s s)"
              (pct (-.ratio)) (num base) (num cand);
        };
      ]
    else []

let cell_key cell =
  ( Option.value ~default:"?" (str_of "series" cell),
    Option.bind (Sim.Json.member "size" cell) Sim.Json.to_int,
    Option.bind (Sim.Json.member "seed" cell) Sim.Json.to_int )

let compare_cell_key (s1, z1, d1) (s2, z2, d2) =
  match String.compare s1 s2 with
  | 0 -> (
    match Option.compare Int.compare z1 z2 with
    | 0 -> Option.compare Int.compare d1 d2
    | c -> c)
  | c -> c

let section_findings ~wall_tol name base cand =
  let area = "section " ^ name in
  let walls =
    match (num_of "seq_estimate_s" base, num_of "seq_estimate_s" cand) with
    | Some b, Some c -> wall_findings ~wall_tol ~area b c
    | _ -> [ { severity = Fail; area; detail = "missing seq_estimate_s" } ]
  in
  let cells j = List.map cell_key (Option.value ~default:[] (list_of "cells" j)) in
  let bc = List.sort compare_cell_key (cells base)
  and cc = List.sort compare_cell_key (cells cand) in
  let cells_f =
    if bc <> cc then
      [
        {
          severity = Fail;
          area;
          detail =
            Printf.sprintf
              "cell set differs: %d vs %d cells (series x size x seed must \
               match exactly)"
              (List.length bc) (List.length cc);
        };
      ]
    else []
  in
  walls @ cells_f

let metric_key j =
  ( Option.value ~default:"?" (str_of "name" j),
    Option.bind (Sim.Json.member "switch" j) Sim.Json.to_int )

let compare_metric_key (n1, s1) (n2, s2) =
  match String.compare n1 n2 with
  | 0 -> Option.compare Int.compare s1 s2
  | c -> c

let label (name, switch) =
  match switch with
  | None -> name
  | Some s -> Printf.sprintf "%s{switch=%d}" name s

(* Counters compare exactly; histograms compare on sample count only
   (sums and quantiles of the pool.task_* histograms are wall-clock);
   gauges are informational. *)
let metrics_findings base cand =
  let index kind j =
    List.map (fun m -> (metric_key m, m)) (Option.value ~default:[] (list_of kind j))
  in
  let compare_keyed kind ~severity ~field =
    let bi = index kind base and ci = index kind cand in
    let keys l = List.sort compare_metric_key (List.map fst l) in
    let structural =
      if keys bi <> keys ci then
        [
          {
            severity;
            area = "metrics." ^ kind;
            detail =
              Printf.sprintf "%s set differs (%d vs %d entries)" kind
                (List.length bi) (List.length ci);
          };
        ]
      else []
    in
    let value_diffs =
      List.filter_map
        (fun (k, bm) ->
          match List.assoc_opt k ci with
          | None -> None
          | Some cm -> (
            match (num_of field bm, num_of field cm) with
            | Some bv, Some cv when not (Float.equal bv cv) ->
              Some
                {
                  severity;
                  area = "metrics." ^ kind;
                  detail =
                    Printf.sprintf "%s %s: %s %s -> %s" kind (label k) field
                      (num bv) (num cv);
                }
            | _ -> None))
        bi
    in
    structural @ value_diffs
  in
  compare_keyed "counters" ~severity:Fail ~field:"value"
  @ compare_keyed "histograms" ~severity:Fail ~field:"count"
  @ compare_keyed "gauges" ~severity:Info ~field:"value"

let optional_exact ~name base cand =
  match (Sim.Json.member name base, Sim.Json.member name cand) with
  | None, None -> []
  | Some _, None | None, Some _ ->
    [
      {
        severity = Info;
        area = name;
        detail = "present in only one document (not compared)";
      };
    ]
  | Some b, Some c -> (
    match diff_json name b c with
    | None -> []
    | Some where ->
      [
        {
          severity = Fail;
          area = name;
          detail = "deterministic telemetry differs at " ^ where;
        };
      ])

(* ------------------------------------------------------------------ *)

let compare_json ~wall_tol baseline candidate =
  let schema j = Option.value ~default:"?" (str_of "schema" j) in
  if schema baseline <> "dgmc-bench/1" || schema candidate <> "dgmc-bench/1" then
    {
      findings =
        [
          {
            severity = Fail;
            area = "schema";
            detail =
              Printf.sprintf "expected dgmc-bench/1 on both sides, got %s vs %s"
                (schema baseline) (schema candidate);
          };
        ];
    }
  else begin
    let findings = ref [] in
    let add fs = findings := !findings @ fs in
    (* Meta drift is worth a note: figures from different seeds or
       quick-flags are not comparable, and the cell check will fail. *)
    List.iter
      (fun key ->
        let v j =
          Option.map Run_report.render_json (Sim.Json.member key j)
        in
        if v baseline <> v candidate then
          add
            [
              {
                severity = Info;
                area = "meta";
                detail =
                  Printf.sprintf "%s differs: %s vs %s" key
                    (Option.value ~default:"absent" (v baseline))
                    (Option.value ~default:"absent" (v candidate));
              };
            ])
      [ "master_seed"; "quick"; "domains"; "commit" ];
    (match (num_of "seq_estimate_s" baseline, num_of "seq_estimate_s" candidate) with
    | Some b, Some c -> add (wall_findings ~wall_tol ~area:"total" b c)
    | _ -> add [ { severity = Fail; area = "total"; detail = "missing seq_estimate_s" } ]);
    let sections j =
      List.filter_map
        (fun s -> Option.map (fun n -> (n, s)) (str_of "name" s))
        (Option.value ~default:[] (list_of "figures" j))
    in
    let bs = sections baseline and cs = sections candidate in
    List.iter
      (fun (name, b) ->
        match List.assoc_opt name cs with
        | Some c -> add (section_findings ~wall_tol name b c)
        | None ->
          add
            [
              {
                severity = Fail;
                area = "section " ^ name;
                detail = "missing from candidate";
              };
            ])
      bs;
    List.iter
      (fun (name, _) ->
        if not (List.mem_assoc name bs) then
          add
            [
              {
                severity = Info;
                area = "section " ^ name;
                detail = "new in candidate (no baseline to compare)";
              };
            ])
      cs;
    (match (Sim.Json.member "metrics" baseline, Sim.Json.member "metrics" candidate) with
    | Some b, Some c -> add (metrics_findings b c)
    | Some _, None | None, Some _ ->
      add
        [
          {
            severity = Info;
            area = "metrics";
            detail = "present in only one document (not compared)";
          };
        ]
    | None, None -> ());
    add (optional_exact ~name:"series" baseline candidate);
    add (optional_exact ~name:"sli" baseline candidate);
    (* The phase table is pure wall/alloc attribution — never gated. *)
    { findings = !findings }
  end

let compare_strings ~wall_tol ~baseline ~candidate =
  match (Sim.Json.parse baseline, Sim.Json.parse candidate) with
  | Error e, _ -> Error ("baseline: " ^ e)
  | _, Error e -> Error ("candidate: " ^ e)
  | Ok b, Ok c -> Ok (compare_json ~wall_tol b c)

(* ------------------------------------------------------------------ *)

let render ~wall_tol ~baseline_name ~candidate_name outcome =
  let b = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  out "# Bench diff\n\n";
  out "- baseline: `%s`\n- candidate: `%s`\n- wall tolerance: %s%% on \
       seq_estimate_s\n\n"
    baseline_name candidate_name (pct wall_tol);
  let fails = List.filter (fun f -> f.severity = Fail) outcome.findings in
  let infos = List.filter (fun f -> f.severity = Info) outcome.findings in
  if fails = [] then out "**PASS** — no regressions.\n\n"
  else out "**FAIL** — %d regression(s).\n\n" (List.length fails);
  if outcome.findings <> [] then begin
    out "| severity | area | detail |\n|---|---|---|\n";
    List.iter
      (fun f ->
        out "| %s | %s | %s |\n"
          (match f.severity with Fail -> "FAIL" | Info -> "info")
          f.area f.detail)
      (fails @ infos)
  end;
  Buffer.contents b
