(** Run reports: trace → SLI reduction and markdown/JSON rendering.

    This module holds the protocol-specific adapter that
    {!Metrics.Sli} deliberately lacks: which [dgmc-trace/1] events
    anchor a reconfiguration window (local membership/link events),
    which count as control cost (MC-LSA originations and their per-link
    forwards, retransmissions included), and which close it (topology
    installs).  On top of it, {!markdown} and {!json} render a full run
    report from a trace archive, optionally embedding a [dgmc-bench/1]
    document's phase-attribution table. *)

val sli_of_trace : Sim.Trace.entry list -> Metrics.Sli.obs list
(** Reduce trace entries (oldest first, as {!Sim.Trace.entries} and
    archives yield them) to SLI observations in the same order.
    Anchors: [Compute_started] with an ["event:"]-prefixed trigger, and
    non-proposal MC-LSA originations announcing an event.  Control: MC
    originations plus every [Lsa_forwarded] copy of one.  Installs:
    [Topology_installed]. *)

val default_gap : Sim.Trace.entry list -> float
(** Sessionization gap when the caller has none: 1/20 of the trace's
    simulated span, or [1.0] when the span is degenerate. *)

val span : Sim.Trace.entry list -> float
(** Simulated time covered: last entry time minus first, [0.] when
    empty. *)

val render_json : Sim.Json.t -> string
(** Compact re-rendering of a parsed JSON value (round-trip floats). *)

val markdown : ?bench:Sim.Json.t -> gap:float -> Sim.Trace.archive -> string
(** The report as markdown: trace inventory (with an eviction warning
    when the ring buffer dropped events), per-category counts, SLI
    window and distribution tables, a per-link fault-injection table
    (from [Fault_injected] events), a link-health detection-latency
    section (from [Link_detected] events), and — when [bench] is a
    parsed [dgmc-bench/1] document carrying a [phase] section — the
    phase-attribution table.  Trace-empty sections are omitted. *)

val json : ?bench:Sim.Json.t -> gap:float -> Sim.Trace.archive -> string
(** The same report under schema [dgmc-report/1]: trace counters (plus
    a machine-readable [note] field if and only if events were
    evicted), the {!Metrics.Sli.to_json} summary, [faults_by_link]
    ([[]] when the trace has no fault events), [detection] ([null]
    without link-health events), and the raw [bench] document ([null]
    when absent). *)
