(** Deterministic protocol fuzzing under fault injection.

    One integer seed determines an entire fuzz case: a random topology, a
    random multi-MC membership/link workload, and a random fault plan
    (loss, duplication, reordering, jitter, plus bounded switch-crash and
    partition windows).  The case runs the full {!Dgmc.Protocol} network
    with reliable flooding and the runtime invariant monitor
    ({!Monitor}) attached, then demands the whole catalogue: no invariant
    violation during the run, engine quiescence, and — once all scheduled
    faults are over and every downed link restored — network-wide
    agreement on every MC's member list and installed topology with
    [C = E = R] (the terminal laws).

    Fault windows are generated shorter than the reliable-flooding
    retransmission span, so every flood can bridge them; this is what
    makes "converges after fault quiescence" a fair demand (a window
    longer than the retry budget models a {e durable} partition, which
    the paper leaves to protocol-level link events and database
    resynchronisation).

    On failure the workload is shrunk (greedy event removal, re-running
    the deterministic case each time) and the failure report carries a
    replayable reproduction line: the same seed regenerates the same
    case, byte for byte. *)

type case = {
  seed : int;  (** The generation seed; regenerates everything below. *)
  graph : Net.Graph.t;  (** Pristine topology (copied for each run). *)
  config : Dgmc.Config.t;  (** Reliable flood mode, ATM or WAN regime. *)
  regime : string;  (** ["atm"] or ["wan"], for reports. *)
  fault_spec : Faults.Plan.spec;
  fault_seed : int;
  crashes : (int * float * float) list;  (** (switch, from, until). *)
  partitions : (int list * float * float) list;  (** (side, from, until). *)
  mcs : Dgmc.Mc_id.t list;
  events : Workload.Events.t list;
}

type stats = {
  s_totals : Dgmc.Protocol.totals;
  s_faults : Faults.Plan.counters;
  s_sweeps : int;  (** Monitor sweeps performed. *)
}

type failure = {
  f_case : case;
  f_problems : string list;  (** Violations and divergence reasons. *)
  f_shrunk : Workload.Events.t list;
      (** Minimal failing sub-workload of [f_case.events]. *)
  f_shrink_runs : int;  (** Simulations spent shrinking. *)
}

type outcome = {
  o_iterations : int;
  o_failures : failure list;  (** In seed order; empty on success. *)
  o_stats : stats list;  (** Per passing iteration, in seed order. *)
}

val case_of_seed :
  ?n_max:int -> ?mcs_max:int -> ?events_max:int -> ?health:bool -> int -> case
(** Generate the case a seed denotes.  [n_max] (default 20) bounds the
    switch count from above (the minimum is 4), [mcs_max] (default 3)
    the number of MCs, [events_max] (default 20) the workload length
    (link restorations may add a few more).

    [health] (default [false]) selects the {e health band}: the same
    seed draws the identical topology, workload and message-fault spec
    — the default stream is untouched — and the case is then
    transformed to run with the opt-in link-health layer (default
    [health] directive: 0.5-round hellos, k:3 detector), so detectors
    must discover every scripted link change.  Message drops are zeroed
    and crash/partition windows stripped in this band: sustained hello
    silence from those faults would be a true detection that the
    terminal ground-truth oracle cannot tell apart from a stale
    believed-down adjacency. *)

val run_case : ?trace:Sim.Trace.t -> case -> (stats, string list) result
(** Execute one case end to end.  [Error problems] lists every invariant
    violation and divergence reason; deterministic — equal cases yield
    equal results.

    An enabled [trace] captures the run's full causal event record —
    LSA provenance, per-switch installs, fault injections, and any
    invariant violations (via {!Monitor.attach}).  A fuzz case can flood
    heavily; create the trace with a bounded ring (e.g.
    [Sim.Trace.create ~cap:200_000 ()]) so a pathological case degrades
    to keeping the newest events instead of exhausting memory.  Tracing
    never changes the simulated run: same seed, same outcome. *)

val run_events :
  ?trace:Sim.Trace.t ->
  case ->
  Workload.Events.t list ->
  (stats, string list) result
(** [run_case] with the case's workload replaced by [events] — the probe
    the shrinker applies to sub-workloads. *)

val max_shrink_runs : int
(** Budget of probe simulations one shrink may spend (200). *)

val shrink : case -> Workload.Events.t list * int
(** Greedy one-event removal to a fixed point, then a timing pass that
    pulls each surviving event back to its predecessor's time (the first
    to 0) wherever the failure survives: returns a sub-workload that
    still fails (assuming the case itself fails) from which no single
    event can be removed — and in which no single gap remains — without
    the failure disappearing, plus the number of probe runs spent (both
    passes share the {!max_shrink_runs} cap).  Deterministic. *)

val run :
  ?n_max:int ->
  ?mcs_max:int ->
  ?events_max:int ->
  ?health:bool ->
  ?domains:int ->
  ?progress:(int -> unit) ->
  seed:int ->
  iterations:int ->
  unit ->
  outcome
(** Run cases for seeds [seed .. seed + iterations - 1], shrinking each
    failure.  [domains] (default 1) spreads the cases over a
    {!Runner.Pool}; generation, execution and shrinking are pure
    functions of each case's seed, so the outcome — stats, failures,
    shrunk workloads, repro lines — is identical for any domain count.
    [progress] is called with every case's seed, in order, before the
    batch starts. *)

val repro_line : failure -> string
(** The command that replays the failing case, e.g.
    ["dgmc_sim --fuzz --seed 47 --iterations 1"]. *)

val pp_case : Format.formatter -> case -> unit

val pp_failure : Format.formatter -> failure -> unit
(** Full failure report: case, problems, shrunk workload, repro line. *)
