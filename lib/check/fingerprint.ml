(* These renderers run on every edge the model checker replays —
   hundreds of thousands of times per exploration — so everything is
   Buffer-based; Format would dominate the profile. *)

let add_int b i = Buffer.add_string b (string_of_int i)

let add_timestamp b ts =
  let n = Dgmc.Timestamp.size ts in
  Buffer.add_char b '(';
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_char b ',';
    add_int b (Dgmc.Timestamp.get ts i)
  done;
  Buffer.add_char b ')'

let add_mc_id b (m : Dgmc.Mc_id.t) =
  Buffer.add_string b (Dgmc.Mc_id.kind_to_string m.kind);
  Buffer.add_char b '#';
  add_int b m.id

let add_members b m =
  List.iteri
    (fun i id ->
      if i > 0 then Buffer.add_char b ',';
      add_int b id;
      Buffer.add_char b ':';
      Buffer.add_string b
        (match Dgmc.Member.role m id with
        | Some r -> Dgmc.Member.role_to_string r
        | None -> "?"))
    (Dgmc.Member.ids m)

let add_tree b t =
  Buffer.add_string b "T{";
  List.iteri
    (fun i (u, v) ->
      if i > 0 then Buffer.add_char b ',';
      add_int b u;
      Buffer.add_char b '-';
      add_int b v)
    (Mctree.Tree.edges t);
  Buffer.add_char b '|';
  List.iteri
    (fun i n ->
      if i > 0 then Buffer.add_char b ',';
      add_int b n)
    (Mctree.Tree.Int_set.elements (Mctree.Tree.terminals t));
  Buffer.add_char b '}'

let add_mc_lsa b (l : Dgmc.Mc_lsa.t) =
  Buffer.add_string b "mc(";
  add_int b l.src;
  Buffer.add_char b ',';
  Buffer.add_string b (Dgmc.Mc_lsa.event_to_string l.event);
  Buffer.add_char b ',';
  add_mc_id b l.mc;
  Buffer.add_char b ',';
  (match l.proposal with Some t -> add_tree b t | None -> Buffer.add_char b '-');
  Buffer.add_char b ',';
  (match l.members with
  | Some m -> add_members b m
  | None -> Buffer.add_char b '-');
  Buffer.add_char b ',';
  add_timestamp b l.stamp;
  Buffer.add_char b ')'

let add_link_event b (e : Lsr.Lsdb.link_event) =
  Buffer.add_string b "link(";
  add_int b e.u;
  Buffer.add_char b ',';
  add_int b e.v;
  Buffer.add_char b ',';
  Buffer.add_string b (string_of_bool e.up);
  Buffer.add_char b ',';
  add_int b e.version;
  Buffer.add_char b ')'

let add_graph_links b g =
  List.iteri
    (fun i ((e : Net.Graph.edge), up) ->
      if i > 0 then Buffer.add_char b ',';
      add_int b e.u;
      Buffer.add_char b '-';
      add_int b e.v;
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_bool up))
    (Net.Graph.all_edges g)

let add_snapshot b (s : Dgmc.Switch.mc_snapshot) =
  add_mc_id b s.snap_mc;
  Buffer.add_string b "{r=";
  add_timestamp b s.snap_r;
  Buffer.add_string b ";e=";
  add_timestamp b s.snap_e;
  Buffer.add_string b ";c=";
  add_timestamp b s.snap_c;
  Buffer.add_string b ";f=";
  Buffer.add_string b (string_of_bool s.snap_flag);
  Buffer.add_string b ";m=";
  add_members b s.snap_members;
  Buffer.add_string b ";t=";
  add_tree b s.snap_topology;
  Buffer.add_string b ";seen=";
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      add_int b x)
    s.snap_membership_seen;
  Buffer.add_string b ";box=[";
  List.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char b ';';
      add_mc_lsa b l)
    s.snap_mailbox;
  Buffer.add_string b "];comp=[";
  List.iteri
    (fun i ts ->
      if i > 0 then Buffer.add_char b ';';
      add_timestamp b ts)
    s.snap_computations;
  Buffer.add_string b "];trig=";
  (match s.snap_triggered with
  | Some ts -> add_timestamp b ts
  | None -> Buffer.add_char b '-');
  Buffer.add_char b '}'

let add_switch b sw =
  Buffer.add_string b "sw";
  add_int b (Dgmc.Switch.id sw);
  Buffer.add_char b '[';
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ' ';
      add_snapshot b s)
    (Dgmc.Switch.snapshots sw);
  Buffer.add_string b "|img=";
  add_graph_links b (Dgmc.Switch.image sw);
  (* Link versions behave (version-gated apply, resync deltas) even when
     the up/down flags above agree. *)
  Buffer.add_string b "|db=";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char b ',';
      add_link_event b ev)
    (Dgmc.Switch.lsdb_entries sw);
  (* Crash-recovery session: its id/outstanding/quorum gate which deltas
     apply, and deferred LSAs replay at finish. *)
  Buffer.add_string b "|rs=";
  (match Dgmc.Switch.resync_state sw with
  | None -> Buffer.add_char b '-'
  | Some (sid, outstanding, completed, quorum) ->
    add_int b sid;
    Buffer.add_char b ':';
    List.iteri
      (fun i p ->
        if i > 0 then Buffer.add_char b ',';
        add_int b p)
      outstanding;
    Buffer.add_char b ':';
    add_int b completed;
    Buffer.add_char b '/';
    add_int b quorum);
  Buffer.add_string b "|defer=[";
  List.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char b ';';
      add_mc_lsa b l)
    (Dgmc.Switch.deferred_lsas sw);
  Buffer.add_string b "]]"

let via size f x =
  let b = Buffer.create size in
  f b x;
  Buffer.contents b

let timestamp = via 16 add_timestamp
let members = via 32 add_members
let tree = via 48 add_tree
let mc_id = via 16 add_mc_id
let mc_lsa = via 96 add_mc_lsa
let link_event = via 24 add_link_event
let graph_links = via 64 add_graph_links
let switch = via 512 add_switch
