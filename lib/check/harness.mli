(** An explorer-controlled D-GMC network.

    {!Dgmc.Protocol} delivers every flooded LSA in one fixed
    (hop-latency-driven) order.  To model-check the protocol we instead
    need to drive a network of {!Dgmc.Switch} instances through {e
    chosen} delivery orders: the harness intercepts every flood into a
    pending-message pool and exposes the enabled next steps as explicit
    {!action}s.

    {b Causal delivery.}  Arbitrary pool orderings would be too
    permissive: under real hop-by-hop flooding an LSA flooded {e as a
    consequence of} receiving another can never overtake its cause at a
    third switch (the triangle inequality — the effect leaves its origin
    strictly after the cause arrived there, and the cause was already in
    flight everywhere).  Exploring acausal orderings would report
    "violations" no execution can exhibit.  Each pooled message
    therefore records its causal [past] — everything its origin had
    delivered or flooded at flood time — and delivering [m] to [dst] is
    enabled only once no message of [past m] is still pending towards
    [dst].  Per-origin FIFO is the special case [own floods ∈ past].

    {b Computations.}  Each switch gets a private {!Sim.Engine}, so the
    {e completion order} of concurrent topology computations at
    different switches is also explorer-chosen ({!Complete}), while
    completions within one switch stay FIFO, as on real hardware.

    {b Crashes.}  {!Crash} mirrors {!Faults.Plan}'s crash model: a
    forwarding-plane outage.  Messages in flight to or from the switch
    are lost (a pending summary towards it resolves to the transport
    giveup its sender would eventually see), floods occurring while it
    is down never reach it, its own floods die at its ports — yet its
    protocol state and running computations survive.  {!Recover} ends
    the outage and starts the crash-recovery resynchronisation exchange
    ({!Dgmc.Switch.begin_resync}); the summaries, deltas and deferred
    LSA replays it produces become ordinary pool messages, so the
    explorer drives every interleaving of recovery against live
    traffic.

    Limitations (documented, deliberate): floods reach every live
    switch (no partitions — link up/down only changes images and
    triggers [EventHandler]), and the link-up pairwise database
    resynchronisation extension is not modelled ({!Crash}/{!Recover}
    cover the crash-recovery exchange instead). *)

type payload =
  | Mc of Dgmc.Mc_lsa.t
  | Link of Lsr.Lsdb.link_event
  | Resync of Dgmc.Resync.msg
      (** Unicast: pooled with exactly one destination. *)

type event =
  | Join of { switch : int; mc : Dgmc.Mc_id.t; role : Dgmc.Member.role }
  | Leave of { switch : int; mc : Dgmc.Mc_id.t }
  | Link_down of int * int
  | Link_up of int * int
  | Crash of int  (** Begin a forwarding-plane outage at the switch. *)
  | Recover of int
      (** End the outage; the switch enters RESYNCING
          ({!Dgmc.Switch.begin_resync}). *)
  | Hello_round
      (** Advance the abstract link-health layer by one hello round
          (requires [config.health]; [Invalid_argument] otherwise).
          Every directed adjacency either hears a hello — possible iff
          the link is up, the sender is alive and neither direction is
          suppressed — or counts a miss; detectors declare down after
          [a_detect_rounds] misses and the declaring switch floods the
          link LSA itself, exactly as {!Dgmc.Protocol} does under
          [Config.health]. *)

type action =
  | Deliver of { dst : int; msg : int }
      (** Deliver pooled message [msg] to switch [dst]. *)
  | Complete of int  (** Finish the next pending computation at a switch. *)

type t

val create : graph:Net.Graph.t -> config:Dgmc.Config.t -> unit -> t
(** Fresh network; [graph] is copied (the harness owns the ground
    truth).  When [config.health] is set, the harness runs the
    round-granular abstraction of the link-health layer
    ({!Health.Config.abstract}): {!event.Link_down}/{!event.Link_up}
    touch ground truth only, and {!event.Hello_round}s drive the
    abstract detectors that must discover them. *)

val n_switches : t -> int

val switches : t -> Dgmc.Switch.t array

val graph : t -> Net.Graph.t
(** Ground-truth topology (reflects injected link events). *)

val truth : t -> (Dgmc.Mc_id.t * Dgmc.Member.t) list
(** Ground-truth membership per MC, from injected joins/leaves. *)

val inject : t -> event -> unit
(** Apply a local event, mirroring {!Dgmc.Protocol}'s order for link
    events (higher endpoint detects and floods first). *)

val pending_count : t -> int
(** Pending work items: pooled (destination, message) deliveries plus
    unfinished topology computations across all switches.  Every
    {!action} removes exactly one such item (and may add more), so this
    is an admissible, consistent lower bound on the number of actions
    separating the state from any terminal state — the primary key of
    {!Search}'s best-first priority. *)

val enabled : t -> action list
(** Every causally-enabled next step, deterministically ordered, with
    equivalent deliveries (same destination, same payload fingerprint,
    same blocker set) deduplicated.  Empty iff the state is terminal. *)

val apply : t -> action -> unit
(** Execute one action.  Raises [Invalid_argument] if it is not
    currently enabled ({!Deliver} of an absent message, {!Complete} with
    nothing pending). *)

val settle : t -> unit
(** Drain deterministically: repeatedly apply the first enabled action.
    Used to reach a converged starting state before a race is
    injected. *)

val digest : t -> string
(** Canonical fingerprint of the full network state: every switch's
    protocol state and image, the causally-relevant structure of the
    pending pool, the ground truth.  Message identities are abstracted
    (only payload content and blocking structure matter), so two
    prefixes reaching semantically identical states collide. *)

val describe : t -> action -> string
(** Human-readable rendering for counterexample traces. *)

(** {2 Link-health observation}

    All of these are empty/[None] unless the config had [health] set. *)

type adjacency_view = {
  av_watcher : int;
  av_peer : int;
  av_up : bool;  (** The watcher's belief about the adjacency. *)
  av_suppressed : bool;
  av_truth_down : bool;
      (** Ground truth: link down or peer inside an outage. *)
  av_stable_rounds : int;
      (** Hello rounds since the adjacency's ground truth last changed
          while the watcher was alive. *)
}

val health_enabled : t -> bool

val health_adjacencies : t -> adjacency_view list
(** Every directed adjacency's abstract detector state, sorted by
    (watcher, peer). *)

val health_spurious : t -> string list
(** Down declarations that contradicted ground truth at declaration
    time, oldest first.  Any entry is a false positive — the abstract
    model loses no hellos, so this list must stay empty. *)

val health_detect_rounds : t -> int option
(** [a_detect_rounds] of the abstract detector, when health is on. *)

val suppressed_links : t -> (int * int) list
(** Links at least one of whose directions is currently
    damping-suppressed, normalised [(lo, hi)], sorted, deduplicated. *)
