let cap = 100

type t = {
  net : Dgmc.Protocol.t;
  trace : Sim.Trace.t;
  mutable sweeps : int;
  mutable boundary_pending : bool;
      (* a delay-0 boundary sweep is already in the engine's calendar *)
  seen : (string, unit) Hashtbl.t;  (* dedup of rendered violations *)
  mutable violations : string list;  (* reverse first-seen order *)
  history : (int * Dgmc.Mc_id.t, Dgmc.Timestamp.t) Hashtbl.t;
      (* last observed C per (switch, mc); entries dropped when the MC's
         state is deleted, because a recreated incarnation restarts its
         installed-state basis from zero. *)
}

let record t v =
  let s = Invariant.to_string v in
  if (not (Hashtbl.mem t.seen s)) && Hashtbl.length t.seen < cap then begin
    Hashtbl.add t.seen s ();
    t.violations <- s :: t.violations;
    if Sim.Trace.enabled t.trace then
      ignore
        (Sim.Trace.emit t.trace
           ~time:(Sim.Engine.now (Dgmc.Protocol.engine t.net))
           (Note { category = "violation"; message = s }))
  end

let sweep ~boundary t =
  t.sweeps <- t.sweeps + 1;
  let n = Dgmc.Protocol.n_switches t.net in
  for id = 0 to n - 1 do
    let sw = Dgmc.Protocol.switch t.net id in
    List.iter (record t) (Invariant.check_switch ~boundary ~id sw);
    let snaps = Dgmc.Switch.snapshots sw in
    (* C-monotonicity against the last sweep, then refresh the history:
       present MCs update their entry, absent ones lose it. *)
    List.iter
      (fun (s : Dgmc.Switch.mc_snapshot) ->
        (match Hashtbl.find_opt t.history (id, s.snap_mc) with
        | Some old_c when not (Dgmc.Timestamp.geq s.snap_c old_c) ->
          record t
            {
              Invariant.switch = Some id;
              mc = Some s.snap_mc;
              law = "C-monotone";
              detail =
                Format.asprintf
                  "installed-state basis regressed from C=%a to C=%a"
                  Dgmc.Timestamp.pp old_c Dgmc.Timestamp.pp s.snap_c;
            }
        | _ -> ());
        Hashtbl.replace t.history (id, s.snap_mc) s.snap_c)
      snaps;
    (* dgmc-analyze: allow iteration-order — per-key membership test; the
       set of removed keys does not depend on enumeration order *)
    Hashtbl.iter
      (fun ((id', mc) as key) _ ->
        if
          id' = id
          && not
               (List.exists
                  (fun (s : Dgmc.Switch.mc_snapshot) ->
                    Dgmc.Mc_id.equal s.snap_mc mc)
                  snaps)
        then Hashtbl.remove t.history key)
      (Hashtbl.copy t.history)
  done

let attach ?(trace = Sim.Trace.disabled) net =
  let t =
    {
      net;
      trace;
      sweeps = 0;
      boundary_pending = false;
      seen = Hashtbl.create 16;
      violations = [];
      history = Hashtbl.create 64;
    }
  in
  (* Observers fire mid-action (e.g. between the R raise and the E merge
     of one ReceiveLSA step), so the synchronous sweep checks only the
     mid-action-safe laws.  A coalesced delay-0 follow-up sweep lands on
     an engine-event boundary, where the full catalogue — R<=E included
     — applies. *)
  Dgmc.Protocol.add_observer net (fun () ->
      sweep ~boundary:false t;
      if not t.boundary_pending then begin
        t.boundary_pending <- true;
        ignore
          (Sim.Engine.schedule (Dgmc.Protocol.engine net) ~delay:0.0
             (fun () ->
               t.boundary_pending <- false;
               sweep ~boundary:true t))
      end);
  sweep ~boundary:true t;
  t

let sweeps t = t.sweeps

let violations t = List.rev t.violations

let ok t = t.violations = []

let check_terminal t =
  let n = Dgmc.Protocol.n_switches t.net in
  let switches = Array.init n (Dgmc.Protocol.switch t.net) in
  (* Ground truth: the real graph; membership is not tracked by the
     protocol façade per se, so recover it from the agreement the
     terminal laws themselves verify — callers that know the intended
     membership should prefer Explore or Protocol.converged.  Here we
     check the membership-independent terminal laws only. *)
  List.iter (record t)
    (List.filter
       (fun (v : Invariant.violation) ->
         v.law <> "truth-members" && v.law <> "terminals-match"
         && v.law <> "valid-topology")
       (Invariant.check_terminal ~graph:(Dgmc.Protocol.graph t.net) ~truth:[]
          switches));
  (* With the link-health layer on, a quiesced network must not keep a
     damping-suppressed link inside any installed tree. *)
  let suppressed =
    Dgmc.Protocol.health_views t.net
    |> List.concat_map (fun (i, view) ->
           List.filter_map
             (fun (peer, _, s) ->
               if s then Some (min i peer, max i peer) else None)
             view)
    |> List.sort_uniq (fun (a, b) (c, d) ->
           match Int.compare a c with 0 -> Int.compare b d | r -> r)
  in
  List.iter (record t) (Invariant.check_health_terminal ~suppressed switches)

let assert_ok t =
  if not (ok t) then
    failwith
      (Printf.sprintf "invariant monitor: %d violation(s) after %d sweeps:\n%s"
         (List.length (violations t))
         t.sweeps
         (String.concat "\n" (violations t)))
