(** Guided forward/backward fault-scenario search.

    {!Explore} covers a scenario's whole interleaving space; that is the
    right tool for proofs but the wrong one for {e finding} a violation
    quickly, and it says nothing about {e which faults} to inject in the
    first place.  This module adds both directions of the systematic
    search that Helmy–Estrin's protocol-testing methodology prescribes
    (see PAPERS.md), on top of the same {!Harness} event model and the
    same deduped state graph:

    {b Forward} ({!forward}): best-first search from an initial topology
    toward a violation of a {!target} invariant.  The frontier is
    ordered by a violation-distance heuristic: the primary key is
    {!Harness.pending_count} — a provable, consistent lower bound on the
    actions separating the state from any terminal state, where the
    agreement laws are checked — and ties break toward states with more
    divergence evidence (disagreeing per-MC installed-state fingerprint
    classes, outstanding resynchronisation peers, deferred mid-resync
    LSAs).  States are deduplicated by canonical {!Harness.digest}
    exactly as in {!Explore}, so with no bound hit an empty-handed
    forward search is as conclusive as an exhaustive one.

    {b Backward} ({!backward}): from a target invariant (a known
    violation's law, optionally narrowed to an MC kind), search for a
    {e minimal} fault sequence — join/leave placement, link-down/up,
    crash/recover timing — that reproduces it.  Sequences are
    enumerated shortest-first over the well-formed event alphabet
    (leaves follow joins, recovers follow crashes, link-ups follow
    link-downs, and every candidate ends healed so the terminal laws
    are a fair demand; a partition is the set of link-downs that cut
    it), and each candidate is checked by a bounded forward search, so
    the first hit is minimal by construction.  The result renders in
    {!Check.Fuzz}'s shrunk-workload line format ({!event_lines}) for a
    deterministic repro.

    {b Determinism.}  Both modes shard work over a {!Runner.Pool} in
    {e fixed-size} waves/chunks whose composition does not depend on the
    domain count, and merge results in enumeration order; outcomes are
    byte-identical at any [domains]. *)

(** {1 Targets} *)

type target = {
  law : string;
      (** Law-name prefix to hunt, e.g. ["agreement"] matches both
          [agreement-members] and [agreement-topology]; ["any"] matches
          every law. *)
  kind : Dgmc.Mc_id.kind option;
      (** When set, only violations attributed to an MC of this kind
          match. *)
}

val any : target
(** Every violation matches. *)

val target_of_string : string -> (target, string) result
(** Parse ["law"] or ["law\@kind"] with kind one of [symmetric],
    [receiver-only], [asymmetric]. *)

val target_to_string : target -> string

val matches : target -> Invariant.violation -> bool

(** {1 The violation-distance heuristic} *)

type score = {
  bound : int;
      (** {!Harness.pending_count}: admissible-consistent lower bound on
          the actions left to any terminal state (each action retires
          exactly one pending item). *)
  discord : int;
      (** Per MC, the number of distinct (member list, installed
          topology) fingerprint classes across the switches holding
          state, minus one — summed.  0 means installed-state
          agreement. *)
  resync_depth : int;
      (** Outstanding crash-recovery resynchronisation peers, summed
          over switches. *)
  deferred : int;  (** LSAs deferred by in-flight resyncs, summed. *)
}

val score : Harness.t -> score

(** {1 Forward search} *)

type found = {
  laws : string list;  (** Matching violated laws, sorted, deduped. *)
  message : string;  (** The matching violations, rendered. *)
  trace : string list;  (** Action sequence from the post-race state. *)
  depth : int;  (** Actions from the post-race state. *)
  state_digest : string;  (** {!Harness.digest} of the violating state. *)
}

type forward_outcome = {
  f_states : int;
  f_transitions : int;
  f_terminals : int;
  f_other_violations : int;
      (** Violating states whose laws missed the target: counted,
          reported in {!pp_forward}, but neither returned as the hit nor
          expanded further. *)
  f_complete : bool;
      (** No violation, no bound hit, no off-target violation: the whole
          deduped reachable space was covered. *)
  f_found : found option;
}

val forward :
  ?target:target ->
  ?max_states:int ->
  ?max_depth:int ->
  ?domains:int ->
  Explore.scenario ->
  forward_outcome
(** Best-first search of the scenario's post-race state space.
    Defaults: [target = any], [max_states = 50_000],
    [max_depth = 10_000], [domains = 1].  The frontier is expanded in
    fixed-width waves (8 entries) regardless of [domains], so the
    outcome is byte-identical at any domain count. *)

(** {1 Backward search} *)

type backward_outcome = {
  b_candidates : int;  (** Healed candidate sequences evaluated. *)
  b_max_len : int;
  b_truncated : bool;  (** The candidate budget cut enumeration short. *)
  b_found : (Harness.event list * found) option;
      (** The shortest reproducing fault sequence — first in the fixed
          enumeration order among those of minimal length — and the
          violation its forward check reached. *)
}

val backward :
  ?target:target ->
  ?max_len:int ->
  ?per_candidate_states:int ->
  ?max_candidates:int ->
  ?domains:int ->
  graph:Net.Graph.t ->
  config:Dgmc.Config.t ->
  ?setup:Harness.event list ->
  mcs:Dgmc.Mc_id.t list ->
  unit ->
  backward_outcome
(** Iterative-deepening search for a minimal fault sequence (lengths
    [1 .. max_len], default 4) whose race reproduces the target.  Each
    candidate is checked by a sequential {!forward} bounded at
    [per_candidate_states] (default 20_000); candidates are dispatched
    in fixed chunks of 16 over [domains] and the first failure in
    enumeration order wins, so the result is byte-identical at any
    domain count.  [setup] events are injected and settled before each
    candidate's race ([[]] by default); [max_candidates] (default
    50_000) bounds the total enumeration, setting {!b_truncated} when
    hit. *)

(** {1 Event rendering and parsing} *)

val event_line : int -> Harness.event -> string
(** ["[<tick>] join switch=0 mc#1(symmetric) (both)"] — {!Check.Fuzz}'s
    shrunk-workload line format with the sequence index as the tick
    (the harness is untimed: interleaving order {e is} the timing);
    [crash switch=i] / [recover switch=i] extend the vocabulary. *)

val event_lines : Harness.event list -> string list

val events_of_string :
  mcs:Dgmc.Mc_id.t list -> string -> (Harness.event list, string) result
(** Parse a semicolon-separated event list, e.g.
    ["join 0 mc=1; crash 3; recover 3; down 0 1; up 0 1"].  Joins
    default their role by MC kind (asymmetric defaults to [sender]). *)

(** {1 Reporting} *)

val pp_found : Format.formatter -> found -> unit

val pp_forward : Format.formatter -> forward_outcome -> unit

val pp_backward : Format.formatter -> backward_outcome -> unit
