(* Guided forward/backward fault-scenario search (ROADMAP: Helmy–Estrin
   style systematic testing).  Forward mode is a best-first walk of the
   same deduped state graph Explore covers exhaustively; backward mode
   enumerates fault sequences shortest-first and forward-checks each, so
   the first hit is a minimal repro. *)

(* ------------------------------------------------------------------ *)
(* Targets *)

type target = { law : string; kind : Dgmc.Mc_id.kind option }

let any = { law = "any"; kind = None }

let kind_of_string = function
  | "symmetric" -> Some Dgmc.Mc_id.Symmetric
  | "receiver-only" -> Some Dgmc.Mc_id.Receiver_only
  | "asymmetric" -> Some Dgmc.Mc_id.Asymmetric
  | _ -> None

let target_of_string s =
  match String.index_opt s '@' with
  | None -> Ok { law = s; kind = None }
  | Some i -> (
    let law = String.sub s 0 i in
    let kind_s = String.sub s (i + 1) (String.length s - i - 1) in
    match kind_of_string kind_s with
    | Some k -> Ok { law; kind = Some k }
    | None ->
      Error
        (Printf.sprintf
           "unknown MC kind %S in target (expected symmetric, \
            receiver-only or asymmetric)"
           kind_s))

let target_to_string t =
  match t.kind with
  | None -> t.law
  | Some k -> t.law ^ "@" ^ Dgmc.Mc_id.kind_to_string k

let kind_equal a b =
  match ((a : Dgmc.Mc_id.kind), (b : Dgmc.Mc_id.kind)) with
  | Symmetric, Symmetric | Receiver_only, Receiver_only
  | Asymmetric, Asymmetric ->
    true
  | (Symmetric | Receiver_only | Asymmetric), _ -> false

let is_prefix ~prefix s =
  String.length prefix <= String.length s
  && String.equal prefix (String.sub s 0 (String.length prefix))

(* A target law is matched by prefix, so "agreement" covers both
   agreement-members and agreement-topology. *)
let matches target (v : Invariant.violation) =
  (String.equal target.law "any" || is_prefix ~prefix:target.law v.law)
  &&
  match (target.kind, v.mc) with
  | None, _ -> true
  | Some _, None -> false
  | Some k, Some mc -> kind_equal k mc.Dgmc.Mc_id.kind

(* ------------------------------------------------------------------ *)
(* Violation-distance heuristic *)

type score = {
  bound : int;
      (* Harness.pending_count: provable lower bound on actions left to
         any terminal state. *)
  discord : int;
      (* Divergent installed-state fingerprint classes, summed over
         MCs: for each MC, the number of distinct (members, topology)
         snapshots across its holders minus one.  0 = full agreement. *)
  resync_depth : int;  (* Outstanding resynchronisation peers, summed. *)
  deferred : int;  (* Deferred mid-resync LSAs, summed. *)
}

let score h =
  let bound = Harness.pending_count h in
  let pairs = ref [] in
  let resync_depth = ref 0 in
  let deferred = ref 0 in
  Array.iter
    (fun sw ->
      List.iter
        (fun (s : Dgmc.Switch.mc_snapshot) ->
          pairs :=
            ( Fingerprint.mc_id s.snap_mc,
              Fingerprint.members s.snap_members
              ^ "/"
              ^ Fingerprint.tree s.snap_topology )
            :: !pairs)
        (Dgmc.Switch.snapshots sw);
      (match Dgmc.Switch.resync_state sw with
      | Some (_, outstanding, _, _) ->
        resync_depth := !resync_depth + List.length outstanding
      | None -> ());
      deferred := !deferred + List.length (Dgmc.Switch.deferred_lsas sw))
    (Harness.switches h);
  let sorted =
    List.sort_uniq
      (fun (m1, f1) (m2, f2) ->
        let c = String.compare m1 m2 in
        if c <> 0 then c else String.compare f1 f2)
      !pairs
  in
  (* Distinct (mc, fingerprint) pairs minus distinct mcs = sum over MCs
     of (classes - 1). *)
  let mcs =
    List.sort_uniq String.compare (List.map (fun (m, _) -> m) sorted)
  in
  {
    bound;
    discord = List.length sorted - List.length mcs;
    resync_depth = !resync_depth;
    deferred = !deferred;
  }

(* ------------------------------------------------------------------ *)
(* Forward search *)

type found = {
  laws : string list;  (* Matching law names, deduplicated. *)
  message : string;  (* Matching violations, rendered. *)
  trace : string list;
  depth : int;
  state_digest : string;  (* Harness digest of the violating state. *)
}

type forward_outcome = {
  f_states : int;
  f_transitions : int;
  f_terminals : int;
  f_other_violations : int;
      (* Violating states whose laws did not match the target; recorded
         but neither reported as hits nor expanded. *)
  f_complete : bool;
  f_found : found option;
}

(* Frontier keys: pop order is the violation-distance heuristic.
   [bound] ascending is the admissible primary key (closest to a
   checkable terminal first); the divergence evidence — discord, resync
   depth, deferred queue — breaks ties descending (most evidence
   first); depth then digest make the order total and deterministic. *)
module Key = struct
  type t = {
    k_bound : int;
    k_discord : int;
    k_resync : int;
    k_deferred : int;
    k_depth : int;
    k_digest : string;
  }

  let compare a b =
    let c = Int.compare a.k_bound b.k_bound in
    if c <> 0 then c
    else
      let c = Int.compare b.k_discord a.k_discord in
      if c <> 0 then c
      else
        let c = Int.compare b.k_resync a.k_resync in
        if c <> 0 then c
        else
          let c = Int.compare b.k_deferred a.k_deferred in
          if c <> 0 then c
          else
            let c = Int.compare a.k_depth b.k_depth in
            if c <> 0 then c else String.compare a.k_digest b.k_digest
end

module Frontier = Map.Make (Key)

let key_of ~score:s ~depth ~digest =
  {
    Key.k_bound = s.bound;
    k_discord = s.discord;
    k_resync = s.resync_depth;
    k_deferred = s.deferred;
    k_depth = depth;
    k_digest = digest;
  }

(* One explored edge, computed inside a (possibly parallel) expansion
   task.  Everything the sequential merge needs to dedup, report or
   push is precomputed here; actions survive the replay because the
   harness is deterministic for a fixed prefix. *)
type edge = {
  e_prefix : Harness.action list;  (* parent prefix @ [act] *)
  e_trace : string list;  (* rendered actions, initial state to child *)
  e_digest : string;
  e_score : score;
  e_enabled : Harness.action list;  (* child's enabled actions *)
  e_matching : Invariant.violation list;
  e_all_violations : int;
  e_terminal_marker : bool;  (* violations found at a terminal state *)
}

let check_edges target scenario (prefix, acts) =
  List.map
    (fun act ->
      let h, descs = Explore.build scenario prefix in
      let before = Array.map Invariant.installed_stamps (Harness.switches h) in
      let desc = Harness.describe h act in
      Harness.apply h act;
      let trace = descs @ [ desc ] in
      let viols =
        Explore.check_state h
        @ (Array.to_list
             (Array.mapi
                (fun i sw ->
                  Invariant.check_monotone ~id:i ~before:before.(i) sw)
                (Harness.switches h))
          |> List.concat)
      in
      let enabled = Harness.enabled h in
      let terminal_viols =
        if enabled = [] && viols = [] then
          Invariant.check_terminal ~graph:(Harness.graph h)
            ~truth:(Harness.truth h) (Harness.switches h)
          @ Invariant.check_health_terminal
              ~suppressed:(Harness.suppressed_links h) (Harness.switches h)
        else []
      in
      let all = viols @ terminal_viols in
      {
        e_prefix = prefix @ [ act ];
        e_trace = trace;
        e_digest = Harness.digest h;
        e_score = score h;
        e_enabled = enabled;
        e_matching = List.filter (matches target) all;
        e_all_violations = List.length all;
        e_terminal_marker = terminal_viols <> [];
      })
    acts

let render_found ~depth ~digest ~trace ~terminal viols =
  let trace = if terminal then trace @ [ "(terminal state)" ] else trace in
  {
    laws =
      List.sort_uniq String.compare
        (List.map (fun (v : Invariant.violation) -> v.law) viols);
    message = String.concat "\n" (List.map Invariant.to_string viols);
    trace;
    depth;
    state_digest = digest;
  }

(* The wave width is a fixed property of the algorithm, NOT of the
   domain count: every run — sequential or parallel — pops the same
   wave_size best frontier entries, expands them as independent pure
   tasks, and merges the results in wave order.  That is what makes the
   outcome byte-identical at any --domains. *)
let wave_size = 8

let forward ?(target = any) ?(max_states = 50_000) ?(max_depth = 10_000)
    ?domains (scenario : Explore.scenario) =
  let seen = Hashtbl.create 4096 in
  let states = ref 0 in
  let transitions = ref 0 in
  let terminals = ref 0 in
  let others = ref 0 in
  let truncated = ref false in
  let found = ref None in
  let frontier = ref Frontier.empty in
  let admit ~digest ~score:s ~depth ~prefix ~enabled =
    if not (Hashtbl.mem seen digest) then begin
      Hashtbl.add seen digest ();
      incr states;
      if !states > max_states then truncated := true
      else if enabled = [] then incr terminals
      else if depth >= max_depth then truncated := true
      else
        frontier :=
          Frontier.add (key_of ~score:s ~depth ~digest) (prefix, enabled)
            !frontier
    end
  in
  (* Initial state: per-state laws first (mirroring Explore), then the
     terminal laws if the race produced nothing to deliver. *)
  let h0, _ = Explore.build scenario [] in
  let enabled0 = Harness.enabled h0 in
  let viols0 =
    Explore.check_state h0
    @
    if enabled0 = [] then
      Invariant.check_terminal ~graph:(Harness.graph h0)
        ~truth:(Harness.truth h0) (Harness.switches h0)
      @ Invariant.check_health_terminal
          ~suppressed:(Harness.suppressed_links h0) (Harness.switches h0)
    else []
  in
  let digest0 = Harness.digest h0 in
  (match List.filter (matches target) viols0 with
  | [] ->
    if viols0 <> [] then incr others
    else admit ~digest:digest0 ~score:(score h0) ~depth:0 ~prefix:[]
        ~enabled:enabled0
  | matching ->
    found :=
      Some
        (render_found ~depth:0 ~digest:digest0
           ~trace:[ "(initial state, before any race delivery)" ]
           ~terminal:(enabled0 = []) matching));
  let rec loop () =
    if !found = None && not (Frontier.is_empty !frontier) then begin
      (* Pop the best wave_size entries... *)
      let wave = ref [] in
      for _ = 1 to wave_size do
        match Frontier.min_binding_opt !frontier with
        | None -> ()
        | Some (k, entry) ->
          frontier := Frontier.remove k !frontier;
          wave := entry :: !wave
      done;
      let wave = List.rev !wave in
      (* ... expand them as pure tasks (deterministic replay), ... *)
      let results =
        Runner.Pool.map ?domains (check_edges target scenario) wave
      in
      (* ... and merge sequentially in wave order: the first matching
         violation in (wave, enabled) order wins regardless of which
         domain computed it. *)
      List.iter
        (fun edges ->
          List.iter
            (fun e ->
              if !found = None then begin
                incr transitions;
                match e.e_matching with
                | _ :: _ ->
                  found :=
                    Some
                      (render_found
                         ~depth:(List.length e.e_prefix)
                         ~digest:e.e_digest ~trace:e.e_trace
                         ~terminal:e.e_terminal_marker e.e_matching)
                | [] ->
                  if e.e_all_violations > 0 then incr others
                  else
                    admit ~digest:e.e_digest ~score:e.e_score
                      ~depth:(List.length e.e_prefix) ~prefix:e.e_prefix
                      ~enabled:e.e_enabled
              end)
            edges)
        results;
      loop ()
    end
  in
  loop ();
  {
    f_states = !states;
    f_transitions = !transitions;
    f_terminals = !terminals;
    f_other_violations = !others;
    f_complete = !found = None && (not !truncated) && !others = 0;
    f_found = !found;
  }

(* ------------------------------------------------------------------ *)
(* Backward search: minimal fault sequences *)

type backward_outcome = {
  b_candidates : int;  (* Well-formed healed sequences evaluated. *)
  b_max_len : int;
  b_truncated : bool;  (* Candidate budget hit before exhaustion. *)
  b_found : (Harness.event list * found) option;
      (* Shortest reproducing fault sequence, first in enumeration
         order among those of its length. *)
}

(* Well-formedness state threaded through candidate enumeration: only
   sequences an operator could actually inject are generated (leave
   after join, recover after crash, link-up after link-down), and only
   sequences that END healed are evaluated — the terminal laws demand
   agreement, which is only fair once every fault is lifted.  A durable
   partition is expressed as the set of link-downs that cut it. *)
type wstate = {
  ws_members : (int * int) list;  (* (mc id, switch) *)
  ws_down : (int * int) list;  (* (u, v) with u < v *)
  ws_crashed : int list;
}

let mem_pair xs (a, b) = List.exists (fun (x, y) -> x = a && y = b) xs

let apply_event st (ev : Harness.event) =
  match ev with
  | Harness.Join { switch; mc; _ } ->
    { st with ws_members = (mc.Dgmc.Mc_id.id, switch) :: st.ws_members }
  | Harness.Leave { switch; mc } ->
    {
      st with
      ws_members =
        List.filter
          (fun (m, s) -> not (m = mc.Dgmc.Mc_id.id && s = switch))
          st.ws_members;
    }
  | Harness.Link_down (u, v) ->
    { st with ws_down = (min u v, max u v) :: st.ws_down }
  | Harness.Link_up (u, v) ->
    let key = (min u v, max u v) in
    {
      st with
      ws_down = List.filter (fun (x, y) -> not (x = fst key && y = snd key)) st.ws_down;
    }
  | Harness.Crash i -> { st with ws_crashed = i :: st.ws_crashed }
  | Harness.Recover i ->
    { st with ws_crashed = List.filter (fun j -> j <> i) st.ws_crashed }
  | Harness.Hello_round -> st

let roles_for = function
  | Dgmc.Mc_id.Symmetric -> [ Dgmc.Member.Both ]
  | Dgmc.Mc_id.Receiver_only -> [ Dgmc.Member.Receiver ]
  | Dgmc.Mc_id.Asymmetric -> [ Dgmc.Member.Sender; Dgmc.Member.Receiver ]

(* The event alphabet at a well-formedness state, in the fixed order
   that defines which minimal counterexample is reported: membership
   events first (most protocol-relevant), then link faults, then
   crash/recover. *)
let successors ~graph ~mcs st =
  let n = Net.Graph.n_nodes graph in
  let joins =
    List.concat_map
      (fun (mc : Dgmc.Mc_id.t) ->
        List.concat_map
          (fun switch ->
            if mem_pair st.ws_members (mc.id, switch) then []
            else
              List.map
                (fun role -> Harness.Join { switch; mc; role })
                (roles_for mc.kind))
          (List.init n Fun.id))
      mcs
  in
  let leaves =
    List.concat_map
      (fun (mc : Dgmc.Mc_id.t) ->
        List.filter_map
          (fun (m, switch) ->
            if m = mc.id then Some (Harness.Leave { switch; mc }) else None)
          (List.sort
             (fun (m1, s1) (m2, s2) ->
               let c = Int.compare m1 m2 in
               if c <> 0 then c else Int.compare s1 s2)
             st.ws_members))
      mcs
  in
  let edges =
    List.sort
      (fun (e1 : Net.Graph.edge) (e2 : Net.Graph.edge) ->
        let c = Int.compare e1.u e2.u in
        if c <> 0 then c else Int.compare e1.v e2.v)
      (Net.Graph.edges graph)
  in
  let downs =
    List.filter_map
      (fun (e : Net.Graph.edge) ->
        if mem_pair st.ws_down (min e.u e.v, max e.u e.v) then None
        else Some (Harness.Link_down (e.u, e.v)))
      edges
  in
  let ups =
    List.filter_map
      (fun (e : Net.Graph.edge) ->
        if mem_pair st.ws_down (min e.u e.v, max e.u e.v) then
          Some (Harness.Link_up (e.u, e.v))
        else None)
      edges
  in
  let crashes =
    List.filter_map
      (fun i ->
        if List.exists (fun j -> j = i) st.ws_crashed then None
        else Some (Harness.Crash i))
      (List.init n Fun.id)
  in
  let recovers =
    List.filter_map
      (fun i ->
        if List.exists (fun j -> j = i) st.ws_crashed then
          Some (Harness.Recover i)
        else None)
      (List.init n Fun.id)
  in
  joins @ leaves @ downs @ ups @ crashes @ recovers

let healed st = st.ws_down = [] && st.ws_crashed = []

(* Steps still owed before the sequence can end healed: each downed
   link needs its link-up, each crashed switch its recover. *)
let heal_debt st = List.length st.ws_down + List.length st.ws_crashed

let initial_wstate setup =
  List.fold_left apply_event
    { ws_members = []; ws_down = []; ws_crashed = [] }
    setup

(* All well-formed, healed-at-the-end candidate sequences of exactly
   [len] events, in lexicographic successor order, capped at [budget]
   (returns them reversed-appended; the caller re-reverses). *)
let candidates_of_length ~graph ~mcs ~setup ~budget len =
  let out = ref [] in
  let count = ref 0 in
  let truncated = ref false in
  let rec go acc_rev st remaining =
    if !truncated then ()
    else if remaining = 0 then begin
      if healed st then
        if !count >= budget then truncated := true
        else begin
          incr count;
          out := List.rev acc_rev :: !out
        end
    end
    else if heal_debt st > remaining then ()
    else
      List.iter
        (fun ev -> go (ev :: acc_rev) (apply_event st ev) (remaining - 1))
        (successors ~graph ~mcs st)
  in
  go [] (initial_wstate setup) len;
  (List.rev !out, !truncated)

(* Candidate evaluation must be a pure function of the candidate, so
   the chunked parallel dispatch below is deterministic; the inner
   forward search therefore always runs sequentially. *)
let eval_candidate ~target ~per_candidate_states ~graph ~config ~setup race =
  (forward ~target ~max_states:per_candidate_states ~domains:1
     { Explore.graph; config; setup; race })
    .f_found

let chunk_size = 16

let rec chunks k = function
  | [] -> []
  | xs ->
    let rec take n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (n - 1) (x :: acc) rest
    in
    let c, rest = take k [] xs in
    c :: chunks k rest

let backward ?(target = any) ?(max_len = 4) ?(per_candidate_states = 20_000)
    ?(max_candidates = 50_000) ?domains ~graph ~config
    ?(setup = ([] : Harness.event list)) ~mcs () =
  let evaluated = ref 0 in
  let truncated = ref false in
  let found = ref None in
  let len = ref 1 in
  while !found = None && !len <= max_len && not !truncated do
    let cands, cut =
      candidates_of_length ~graph ~mcs ~setup
        ~budget:(max 0 (max_candidates - !evaluated))
        !len
    in
    if cut then truncated := true;
    (* Fixed-size chunks, evaluated in enumeration order; within a
       chunk every candidate is checked (in parallel), but the first
       failing one in chunk order is the one reported — identical at
       any domain count. *)
    List.iter
      (fun chunk ->
        if !found = None then begin
          let results =
            Runner.Pool.map ?domains
              (eval_candidate ~target ~per_candidate_states ~graph ~config
                 ~setup)
              chunk
          in
          evaluated := !evaluated + List.length chunk;
          List.iter2
            (fun cand result ->
              match (!found, result) with
              | None, Some f -> found := Some (cand, f)
              | _, _ -> ())
            chunk results
        end)
      (chunks chunk_size cands);
    incr len
  done;
  {
    b_candidates = !evaluated;
    b_max_len = max_len;
    b_truncated = !truncated;
    b_found = !found;
  }

(* ------------------------------------------------------------------ *)
(* Event rendering and parsing *)

(* One line per fault event in Check.Fuzz's shrunk-workload format
   ("[<time>] <event>", cf. Workload.Events.pp), with the sequence
   index as the tick: the harness is untimed — the explored
   interleavings are the timing — so the tick is placement, not
   seconds.  crash/recover extend the fuzzer's vocabulary. *)
let event_line i (ev : Harness.event) =
  let describe =
    match ev with
    | Harness.Join { switch; mc; role } ->
      Format.asprintf "join switch=%d %a (%s)" switch Dgmc.Mc_id.pp mc
        (Dgmc.Member.role_to_string role)
    | Harness.Leave { switch; mc } ->
      Format.asprintf "leave switch=%d %a" switch Dgmc.Mc_id.pp mc
    | Harness.Link_down (u, v) -> Printf.sprintf "link-down (%d, %d)" u v
    | Harness.Link_up (u, v) -> Printf.sprintf "link-up (%d, %d)" u v
    | Harness.Crash i -> Printf.sprintf "crash switch=%d" i
    | Harness.Recover i -> Printf.sprintf "recover switch=%d" i
    | Harness.Hello_round -> "hello-round"
  in
  Printf.sprintf "[%d] %s" i describe

let event_lines events = List.mapi event_line events

(* Parse a semicolon-separated event list, e.g.
   "join 0 mc=1; join 2 mc=1 role=sender; crash 3; recover 3".
   Verbs: join, leave, linkdown/down, linkup/up, crash, recover. *)
let events_of_string ~mcs s =
  let ( let* ) = Result.bind in
  let int_of what tok =
    match int_of_string_opt tok with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "%s: expected an integer, got %S" what tok)
  in
  let opt_value opts key =
    List.find_map
      (fun tok ->
        match String.index_opt tok '=' with
        | Some i when String.equal (String.sub tok 0 i) key ->
          Some (String.sub tok (i + 1) (String.length tok - i - 1))
        | _ -> None)
      opts
  in
  let find_mc opts =
    match opt_value opts "mc" with
    | None -> Error "event needs mc=<id>"
    | Some id_s -> (
      let* id = int_of "mc id" id_s in
      match List.find_opt (fun (m : Dgmc.Mc_id.t) -> m.id = id) mcs with
      | Some m -> Ok m
      | None -> Error (Printf.sprintf "mc %d not declared" id))
  in
  let parse_one part =
    let toks =
      String.split_on_char ' ' part |> List.filter (fun t -> t <> "")
    in
    match toks with
    | "join" :: sw :: opts ->
      let* switch = int_of "switch" sw in
      let* mc = find_mc opts in
      let* role =
        match opt_value opts "role" with
        | None -> (
          match mc.kind with
          | Dgmc.Mc_id.Symmetric -> Ok Dgmc.Member.Both
          | Dgmc.Mc_id.Receiver_only -> Ok Dgmc.Member.Receiver
          | Dgmc.Mc_id.Asymmetric -> Ok Dgmc.Member.Sender)
        | Some "sender" -> Ok Dgmc.Member.Sender
        | Some "receiver" -> Ok Dgmc.Member.Receiver
        | Some "both" -> Ok Dgmc.Member.Both
        | Some r -> Error (Printf.sprintf "unknown role %S" r)
      in
      Ok (Harness.Join { switch; mc; role })
    | "leave" :: sw :: opts ->
      let* switch = int_of "switch" sw in
      let* mc = find_mc opts in
      Ok (Harness.Leave { switch; mc })
    | [ ("linkdown" | "down"); u; v ] ->
      let* u = int_of "u" u in
      let* v = int_of "v" v in
      Ok (Harness.Link_down (u, v))
    | [ ("linkup" | "up"); u; v ] ->
      let* u = int_of "u" u in
      let* v = int_of "v" v in
      Ok (Harness.Link_up (u, v))
    | [ "crash"; sw ] ->
      let* switch = int_of "switch" sw in
      Ok (Harness.Crash switch)
    | [ "recover"; sw ] ->
      let* switch = int_of "switch" sw in
      Ok (Harness.Recover switch)
    | [ ("hello-round" | "hello") ] -> Ok Harness.Hello_round
    | verb :: _ -> Error (Printf.sprintf "unknown event %S" verb)
    | [] -> Error "empty event"
  in
  let parts =
    String.split_on_char ';' s
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  List.fold_left
    (fun acc part ->
      let* events = acc in
      let* ev = parse_one part in
      Ok (events @ [ ev ]))
    (Ok []) parts

(* ------------------------------------------------------------------ *)
(* Reporting *)

let pp_found ppf f =
  Format.fprintf ppf "@[<v>VIOLATION (depth %d): %s@,state digest %s@,%s@,"
    f.depth
    (String.concat ", " f.laws)
    (Digest.to_hex f.state_digest)
    f.message;
  Format.fprintf ppf "trace (%d steps):@," (List.length f.trace);
  List.iteri (fun i d -> Format.fprintf ppf "  %2d. %s@," (i + 1) d) f.trace;
  Format.fprintf ppf "@]"

let pp_forward ppf o =
  Format.fprintf ppf
    "forward search: %d states, %d transitions, %d terminal states%s"
    o.f_states o.f_transitions o.f_terminals
    (if o.f_complete then " (exhaustive)" else " (bounded)");
  if o.f_other_violations > 0 then
    Format.fprintf ppf "; %d off-target violating state(s) not expanded"
      o.f_other_violations;
  match o.f_found with
  | None -> Format.fprintf ppf "; no matching invariant violation"
  | Some f -> Format.fprintf ppf "@.%a" pp_found f

let pp_backward ppf o =
  Format.fprintf ppf "backward search: %d candidate sequence(s) to length %d%s"
    o.b_candidates o.b_max_len
    (if o.b_truncated then " (budget hit)" else "");
  match o.b_found with
  | None ->
    Format.fprintf ppf
      "@.no fault sequence up to length %d reproduces the target" o.b_max_len
  | Some (events, f) ->
    Format.fprintf ppf "@.minimal fault sequence (%d event(s)):@."
      (List.length events);
    List.iter
      (fun line -> Format.fprintf ppf "  %s@." line)
      (event_lines events);
    Format.fprintf ppf "%a" pp_found f
