module Timestamp = Dgmc.Timestamp
module Switch = Dgmc.Switch

type violation = {
  switch : int option;
  mc : Dgmc.Mc_id.t option;
  law : string;
  detail : string;
}

let pp ppf v =
  Format.fprintf ppf "[%s]" v.law;
  (match v.switch with
  | Some s -> Format.fprintf ppf " switch %d" s
  | None -> Format.fprintf ppf " network");
  (match v.mc with
  | Some m -> Format.fprintf ppf " %a" Dgmc.Mc_id.pp m
  | None -> ());
  Format.fprintf ppf ": %s" v.detail

let to_string v = Format.asprintf "%a" pp v

let stamp ts = Format.asprintf "%a" Timestamp.pp ts

let check_snapshot ~boundary id (s : Switch.mc_snapshot) =
  let v law detail = { switch = Some id; mc = Some s.snap_mc; law; detail } in
  let out = ref [] in
  let push x = out := x :: !out in
  if not (Timestamp.geq s.snap_r s.snap_c) then
    push
      (v "C<=R"
         (Printf.sprintf "installed stamp C=%s not covered by R=%s"
            (stamp s.snap_c) (stamp s.snap_r)));
  if boundary && not (Timestamp.geq s.snap_e s.snap_r) then
    push
      (v "R<=E"
         (Printf.sprintf "received count R=%s exceeds expected E=%s"
            (stamp s.snap_r) (stamp s.snap_e)));
  Array.iteri
    (fun i seen ->
      if seen > Timestamp.get s.snap_r i then
        push
          (v "seen<=R"
             (Printf.sprintf
                "membership cursor for source %d is %d but R[%d]=%d" i seen i
                (Timestamp.get s.snap_r i))))
    s.snap_membership_seen;
  if not (Mctree.Tree.is_tree s.snap_topology) then
    push
      (v "tree"
         (Format.asprintf "installed topology is not a tree: %a"
            Mctree.Tree.pp s.snap_topology));
  if not (Mctree.Tree.spans_terminals s.snap_topology) then
    push
      (v "span"
         (Format.asprintf "installed topology does not span its terminals: %a"
            Mctree.Tree.pp s.snap_topology));
  List.rev !out

let check_switch ?(boundary = true) ~id sw =
  List.concat_map (check_snapshot ~boundary id) (Switch.snapshots sw)

let installed_stamps sw =
  List.map
    (fun (s : Switch.mc_snapshot) -> (s.snap_mc, s.snap_c))
    (Switch.snapshots sw)

let check_monotone ~id ~before sw =
  List.filter_map
    (fun (s : Switch.mc_snapshot) ->
      match
        List.find_opt (fun (mc, _) -> Dgmc.Mc_id.equal mc s.snap_mc) before
      with
      | None -> None
      | Some (_, old_c) ->
        if Timestamp.geq s.snap_c old_c then None
        else
          Some
            {
              switch = Some id;
              mc = Some s.snap_mc;
              law = "C-monotone";
              detail =
                Printf.sprintf
                  "installed-state basis regressed from C=%s to C=%s"
                  (stamp old_c) (stamp s.snap_c);
            })
    (Switch.snapshots sw)

(* Collect every MC any switch holds state for, plus the ground-truth MCs
   (so an MC wrongly deleted everywhere is still examined). *)
let all_mcs ~truth switches =
  let add acc mc =
    if List.exists (Dgmc.Mc_id.equal mc) acc then acc else mc :: acc
  in
  let acc = List.fold_left (fun acc (mc, _) -> add acc mc) [] truth in
  Array.fold_left
    (fun acc sw -> List.fold_left add acc (Switch.mc_ids sw))
    acc switches
  |> List.sort Dgmc.Mc_id.compare

(* ------------------------------------------------------------------ *)
(* Link-health laws (over the harness's abstract hello model) *)

let check_health_state ~detect_rounds ~spurious adjacencies =
  let out = ref [] in
  let push x = out := x :: !out in
  (* The abstract model loses no hellos, so any down declaration made
     while ground truth said the adjacency was usable is a detector
     false positive — on every schedule, not just fault-free ones. *)
  List.iter
    (fun msg ->
      push { switch = None; mc = None; law = "hello-false-positive"; detail = msg })
    spurious;
  (* Every persistent failure is detected within the configured bound:
     once an adjacency has been truth-down for [detect_rounds] hello
     rounds with its watcher alive, the watcher must believe it down. *)
  List.iter
    (fun (a : Harness.adjacency_view) ->
      if
        a.av_truth_down && a.av_up
        && (not a.av_suppressed)
        && a.av_stable_rounds >= detect_rounds
      then
        push
          {
            switch = Some a.av_watcher;
            mc = None;
            law = "hello-detect";
            detail =
              Printf.sprintf
                "adjacency to %d truth-down for %d hello rounds (bound %d) \
                 but still believed up"
                a.av_peer a.av_stable_rounds detect_rounds;
          })
    adjacencies;
  List.rev !out

let check_health_terminal ~suppressed switches =
  match suppressed with
  | [] -> []
  | _ ->
    let out = ref [] in
    Array.iteri
      (fun id sw ->
        List.iter
          (fun (s : Switch.mc_snapshot) ->
            List.iter
              (fun (u, v) ->
                if Mctree.Tree.mem_edge s.snap_topology u v then
                  out :=
                    {
                      switch = Some id;
                      mc = Some s.snap_mc;
                      law = "suppress-install";
                      detail =
                        Printf.sprintf
                          "installed tree uses damping-suppressed link \
                           (%d, %d)"
                          u v;
                    }
                    :: !out)
              suppressed)
          (Switch.snapshots sw))
      switches;
    List.rev !out

let check_terminal ~graph ~truth switches =
  let out = ref [] in
  let push x = out := x :: !out in
  let viol ?switch ?mc law detail = push { switch; mc; law; detail } in
  List.iter
    (fun mc ->
      let truth_members =
        match List.find_opt (fun (m, _) -> Dgmc.Mc_id.equal m mc) truth with
        | Some (_, members) -> members
        | None -> Dgmc.Member.empty
      in
      (* Per-switch terminal laws, and gather the holders of state. *)
      let holders = ref [] in
      Array.iteri
        (fun id sw ->
          if not (Switch.quiescent sw mc) then
            viol ~switch:id ~mc "quiescent"
              "terminal state but mailbox or computation still pending";
          match
            List.find_opt
              (fun (s : Switch.mc_snapshot) -> Dgmc.Mc_id.equal s.snap_mc mc)
              (Switch.snapshots sw)
          with
          | None -> ()
          | Some s ->
            holders := (id, s) :: !holders;
            if not (Timestamp.equal s.snap_r s.snap_e) then
              viol ~switch:id ~mc "terminal-R=E"
                (Printf.sprintf
                   "promised events never accounted: R=%s, E=%s"
                   (stamp s.snap_r) (stamp s.snap_e));
            if
              s.snap_flag
              && Timestamp.geq s.snap_r s.snap_e
              && Timestamp.gt s.snap_r s.snap_c
            then
              viol ~switch:id ~mc "pending-duty"
                (Printf.sprintf
                   "make_proposal_flag set with R=%s > C=%s and nothing in \
                    flight: a recomputation is owed but will never run"
                   (stamp s.snap_r) (stamp s.snap_c)))
        switches;
      let holders = List.rev !holders in
      (* Network-wide agreement among holders. *)
      (match holders with
      | [] ->
        if not (Dgmc.Member.is_empty truth_members) then
          viol ~mc "truth-members"
            (Format.asprintf
               "no switch holds state but the real member set is %a"
               Dgmc.Member.pp truth_members)
      | (id0, s0) :: rest ->
        List.iter
          (fun (id, (s : Switch.mc_snapshot)) ->
            if not (Dgmc.Member.equal s.snap_members s0.snap_members) then
              viol ~switch:id ~mc "agreement-members"
                (Format.asprintf "member list %a disagrees with switch %d's %a"
                   Dgmc.Member.pp s.snap_members id0 Dgmc.Member.pp
                   s0.snap_members);
            if not (Mctree.Tree.equal s.snap_topology s0.snap_topology) then
              viol ~switch:id ~mc "agreement-topology"
                (Format.asprintf "topology %a disagrees with switch %d's %a"
                   Mctree.Tree.pp s.snap_topology id0 Mctree.Tree.pp
                   s0.snap_topology))
          rest;
        if not (Dgmc.Member.equal s0.snap_members truth_members) then
          viol ~switch:id0 ~mc "truth-members"
            (Format.asprintf "agreed member list %a but the real one is %a"
               Dgmc.Member.pp s0.snap_members Dgmc.Member.pp truth_members);
        if not (Dgmc.Member.is_empty truth_members) then begin
          if not (Mctree.Tree.is_valid_mc_topology graph s0.snap_topology)
          then
            viol ~switch:id0 ~mc "valid-topology"
              (Format.asprintf
                 "agreed topology %a is not a valid embedded spanning tree"
                 Mctree.Tree.pp s0.snap_topology);
          let term_ids =
            Mctree.Tree.Int_set.elements
              (Mctree.Tree.terminals s0.snap_topology)
          in
          if term_ids <> Dgmc.Member.ids truth_members then
            viol ~switch:id0 ~mc "terminals-match"
              (Format.asprintf
                 "agreed topology terminals %a do not match the real member \
                  set %a"
                 (Format.pp_print_list
                    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
                    Format.pp_print_int)
                 term_ids Dgmc.Member.pp truth_members)
        end))
    (all_mcs ~truth switches);
  List.rev !out
