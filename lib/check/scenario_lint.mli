(** Static analysis of [.dgmc] scenario scripts.

    {!Workload.Script.parse} stops at the first malformed directive; the
    linter instead analyses a whole file without running it, collects
    {e every} problem, and adds semantic checks the parser cannot make
    (it replays membership and link state over the event timeline):

    {b Errors} (the scenario is wrong and {!Workload.Script} would
    either reject it or simulate something unintended):
    - unknown directives, events, options, or stray non-[key=value]
      tokens;
    - malformed integer, time, role, MC-type or graph arguments;
    - a missing [graph] directive;
    - an MC id used before (or without) its [mc] declaration, or
      declared twice;
    - a [join]/[leave] switch id outside the graph's node range;
    - [linkdown]/[linkup] on a link the graph does not have;
    - a [leave] with no preceding [join] for that switch and MC;
    - two events identical in resolved time and action.

    {b Warnings} (legal but suspicious):
    - event times that go backwards in file order;
    - [linkdown] on an already-down link / [linkup] on an already-up
      link at that point of the timeline;
    - an MC declared but never used by any event;
    - duplicate [graph]/[config] directives (the later one wins). *)

type severity = Error | Warning

type diagnostic = { line : int; severity : severity; message : string }
(** [line] is 1-based; [0] means the file as a whole. *)

val lint : string -> diagnostic list
(** Analyse script text; diagnostics sorted by line. *)

val lint_file : string -> (diagnostic list, string) result
(** [Error] is an I/O failure (unreadable file), not a lint finding. *)

val errors : diagnostic list -> int

val warnings : diagnostic list -> int

val render : ?file:string -> diagnostic -> string
(** ["file:line: error: message"] — the conventional compiler format. *)
