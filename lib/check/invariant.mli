(** The D-GMC invariant catalogue.

    D-GMC's correctness argument (paper §3.4) rests on its timestamp
    machinery: obsolete or incomplete proposals must be detected and
    withdrawn no matter how LSA floods interleave.  This module states
    the machine-checkable laws that argument needs, split into three
    groups:

    {b Per-state laws} — must hold at {e every} reachable state of every
    switch, mid-convergence included:
    - [C <= R]: the installed topology is based only on events the
      switch has actually counted (the member-snapshot merge on proposal
      acceptance maintains this).
    - [R <= E]: a switch never counts an event it was not promised.
    - [seen <= R]: the per-source membership cursor never runs ahead of
      the received-event count.
    - the installed topology is structurally a tree and spans its own
      terminal set.

    {b Transition laws} — relate consecutive states of one switch:
    - [C] never regresses: a topology based on state older than (or
      causally concurrent with) an already-installed one is never
      installed over it.

    {b Terminal laws} — must hold when no message or computation is in
    flight anywhere:
    - network-wide agreement on member list and topology;
    - agreement with the injected ground truth;
    - the agreed topology is a valid embedded tree spanning the member
      set;
    - [R = E] at every switch holding state (every promised LSA was
      delivered and accounted);
    - no abandoned proposal duty ([flag] set with [R >= E], [R > C]
      would mean the protocol stopped with a recomputation owed). *)

type violation = {
  switch : int option;  (** Offending switch, when attributable. *)
  mc : Dgmc.Mc_id.t option;
  law : string;  (** Short law name, e.g. ["C<=R"]. *)
  detail : string;
}

val to_string : violation -> string

val pp : Format.formatter -> violation -> unit

val check_switch : ?boundary:bool -> id:int -> Dgmc.Switch.t -> violation list
(** All per-state laws over every MC snapshot of one switch.

    [boundary] (default [true]) states whether the switch is known to be
    between protocol actions.  [R <= E] only holds there: within one
    [ReceiveLSA] step, [R] is raised (and [on_change] observers run)
    before [E] is merged with the same stamp.  Observers sweeping
    mid-action must pass [~boundary:false], which skips that law; the
    other laws hold at every observation point. *)

val installed_stamps : Dgmc.Switch.t -> (Dgmc.Mc_id.t * Dgmc.Timestamp.t) list
(** The [C] stamp per MC — capture before a transition and feed to
    {!check_monotone} after it. *)

val check_monotone :
  id:int ->
  before:(Dgmc.Mc_id.t * Dgmc.Timestamp.t) list ->
  Dgmc.Switch.t ->
  violation list
(** Transition law: for every MC present in [before] and still present
    now, the new [C] must be [>=] the old one under the causal partial
    order.  (An MC deleted and recreated restarts its history; callers
    drop its [before] entry.) *)

val check_terminal :
  graph:Net.Graph.t ->
  truth:(Dgmc.Mc_id.t * Dgmc.Member.t) list ->
  Dgmc.Switch.t array ->
  violation list
(** All terminal laws over the whole network.  [graph] is the real
    (ground-truth) topology, [truth] the injected membership per MC. *)

val check_health_state :
  detect_rounds:int ->
  spurious:string list ->
  Harness.adjacency_view list ->
  violation list
(** Link-health per-state laws over the harness's abstract hello model:
    - [hello-false-positive] — a recorded down declaration contradicted
      ground truth (the abstract model loses no hellos, so there is no
      legitimate cause);
    - [hello-detect] — an adjacency truth-down for [detect_rounds]
      hello rounds with a live watcher is still believed up. *)

val check_health_terminal :
  suppressed:(int * int) list -> Dgmc.Switch.t array -> violation list
(** Terminal link-health law [suppress-install]: no installed topology
    at any switch contains a link under damping suppression.  Transient
    states may legally keep an old tree across a suppression — the law
    binds only once the network has quiesced. *)
