(** Runtime invariant monitoring for full simulations.

    The model checker ({!Explore}) proves small configurations
    exhaustively; the monitor carries the same per-state laws
    ({!Invariant.check_switch}) and the C-monotonicity transition law
    into {e every} simulation run, at full scale, by sweeping all
    switches on each protocol state change ({!Dgmc.Protocol.add_observer}).

    Observer callbacks fire {e mid}-action, where [R <= E] does not yet
    hold (see {!Invariant.check_switch}); the monitor therefore checks
    the mid-action-safe laws synchronously on every change and schedules
    a coalesced zero-delay engine event to apply the full catalogue at
    the next action boundary.

    Attach before the first event; violations accumulate (deduplicated,
    capped) and are reported at the end — a monitor never interferes
    with the run it watches. *)

type t

val attach : ?trace:Sim.Trace.t -> Dgmc.Protocol.t -> t
(** Register on the protocol's observer hook and sweep once
    immediately.  An enabled [trace] receives each first-seen violation
    as a ["violation"] note at the simulated time it was detected, so a
    captured trace places invariant breakage on the causal timeline. *)

val sweeps : t -> int
(** Number of sweeps performed so far. *)

val violations : t -> string list
(** Distinct violations observed, in first-seen order (capped at 100). *)

val ok : t -> bool

val check_terminal : t -> unit
(** After the run has quiesced, additionally apply the terminal laws
    (agreement, ground truth, R=E) — see {!Invariant.check_terminal}.
    Any failures join {!violations}. *)

val assert_ok : t -> unit
(** Raise [Failure] with a readable report unless {!ok}.  Intended for
    tests: [let m = Monitor.attach net in ...run...; Monitor.assert_ok m]. *)
