(** Canonical textual digests of protocol values.

    The model checker ({!Explore}) prunes its search through delivery
    interleavings with a state-hash cache: two exploration prefixes that
    produce the same network state need not both be expanded.  That
    requires a {e canonical} encoding — one string per semantically
    identical state, independent of incidental identities such as
    message sequence numbers or hash-table iteration order.  Everything
    here sorts its components and prints through deterministic
    pretty-printers. *)

val timestamp : Dgmc.Timestamp.t -> string

val members : Dgmc.Member.t -> string
(** Ascending [id:role] pairs. *)

val tree : Mctree.Tree.t -> string
(** Sorted edge list plus sorted terminal set. *)

val mc_id : Dgmc.Mc_id.t -> string

val mc_lsa : Dgmc.Mc_lsa.t -> string
(** Source, event, MC, proposal, member snapshot and stamp — the full
    payload identity.  Two LSAs with equal fingerprints are
    interchangeable for every receiver. *)

val link_event : Lsr.Lsdb.link_event -> string

val graph_links : Net.Graph.t -> string
(** The up/down state of every edge (weights are static, so state is the
    only varying part of a link-state image). *)

val switch : Dgmc.Switch.t -> string
(** Complete protocol state of one switch: every MC snapshot (sorted by
    MC id) plus the link-state image. *)

val add_switch : Buffer.t -> Dgmc.Switch.t -> unit
(** As {!switch}, appended to a buffer — the model checker digests every
    replayed edge, so the hot path avoids intermediate strings. *)
