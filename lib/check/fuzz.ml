type case = {
  seed : int;
  graph : Net.Graph.t;
  config : Dgmc.Config.t;
  regime : string;
  fault_spec : Faults.Plan.spec;
  fault_seed : int;
  crashes : (int * float * float) list;
  partitions : (int list * float * float) list;
  mcs : Dgmc.Mc_id.t list;
  events : Workload.Events.t list;
}

type stats = {
  s_totals : Dgmc.Protocol.totals;
  s_faults : Faults.Plan.counters;
  s_sweeps : int;
}

type failure = {
  f_case : case;
  f_problems : string list;
  f_shrunk : Workload.Events.t list;
  f_shrink_runs : int;
}

type outcome = {
  o_iterations : int;
  o_failures : failure list;
  o_stats : stats list;
}

(* ------------------------------------------------------------------ *)
(* Case generation *)

(* Scheduled fault windows must be bridgeable by reliable flooding:
   under the default reliability parameters a transfer keeps retrying
   for [Lsr.Flooding.giveup_span_hops] hop times (508 with rto 4
   doubling to a 64 cap over 10 retries), so any outage shorter than
   [max_window_hops] hop times is guaranteed to be spanned by at least
   one retransmission landing after the window closes. *)
let max_window_hops = 100.0

let default_n_max = 20

let default_mcs_max = 3

let default_events_max = 20

let case_of_seed ?(n_max = default_n_max) ?(mcs_max = default_mcs_max)
    ?(events_max = default_events_max) ?(health = false) seed =
  let master = Sim.Rng.create seed in
  let topo_rng = Sim.Rng.split master in
  let fault_rng = Sim.Rng.split master in
  let work_rng = Sim.Rng.split master in
  let n = Sim.Rng.range topo_rng 4 (max 4 n_max) in
  let graph = Net.Topo_gen.waxman topo_rng ~n ~target_degree:3.5 () in
  let regime, base =
    if Sim.Rng.int work_rng 4 = 0 then ("wan", Dgmc.Config.wan)
    else ("atm", Dgmc.Config.atm_lan)
  in
  let config = { base with Dgmc.Config.flood_mode = Lsr.Flooding.Reliable } in
  let t_hop = config.Dgmc.Config.t_hop in
  let round = Dgmc.Config.round_length config ~graph in
  let horizon = 20.0 *. round in
  let fault_spec =
    {
      Faults.Plan.drop = Sim.Rng.float fault_rng 0.35;
      duplicate = Sim.Rng.float fault_rng 0.3;
      reorder = Sim.Rng.float fault_rng 0.3;
      reorder_span = 4.0;
      jitter = Sim.Rng.float fault_rng 1.0;
    }
  in
  let window () =
    let start = Sim.Rng.float fault_rng (0.6 *. horizon) in
    let len = (10.0 +. Sim.Rng.float fault_rng (max_window_hops -. 10.0)) *. t_hop in
    (start, start +. len)
  in
  let crashes =
    if Sim.Rng.int fault_rng 2 = 0 then begin
      let sw = Sim.Rng.int fault_rng n in
      let a, b = window () in
      [ (sw, a, b) ]
    end
    else []
  in
  let partitions =
    if Sim.Rng.int fault_rng 3 = 0 then begin
      let side_size = 1 + Sim.Rng.int fault_rng (max 1 (n / 2)) in
      let side =
        List.sort Int.compare
          (Sim.Rng.sample fault_rng side_size (List.init n Fun.id))
      in
      let a, b = window () in
      [ (side, a, b) ]
    end
    else []
  in
  let n_mcs = 1 + Sim.Rng.int work_rng (max 1 mcs_max) in
  let mcs =
    List.init n_mcs (fun i ->
        let kind =
          match Sim.Rng.int work_rng 3 with
          | 0 -> Dgmc.Mc_id.Symmetric
          | 1 -> Dgmc.Mc_id.Receiver_only
          | _ -> Dgmc.Mc_id.Asymmetric
        in
        Dgmc.Mc_id.make kind (i + 1))
  in
  (* Workload: a time-ordered schedule built left to right so that every
     leave targets a current member and every link failure is restored
     (the terminal agreement demanded afterwards is only meaningful on
     the healed network). *)
  let n_events = Sim.Rng.range work_rng 5 (max 5 events_max) in
  let joined = Hashtbl.create 16 in (* (mc id, switch) -> () *)
  let join_order = Hashtbl.create 4 in (* mc id -> joins so far *)
  let down = ref [] in (* (u, v) currently down, with scheduled heal *)
  let events = ref [] in
  let emit time action = events := { Workload.Events.time; action } :: !events in
  let members_of mc =
    Hashtbl.fold
      (fun (m, sw) () acc -> if Int.equal m mc then sw :: acc else acc)
      joined []
    |> List.sort Int.compare
  in
  let role_for (mc : Dgmc.Mc_id.t) =
    match mc.kind with
    | Dgmc.Mc_id.Symmetric -> Dgmc.Member.Both
    | Dgmc.Mc_id.Receiver_only -> Dgmc.Member.Receiver
    | Dgmc.Mc_id.Asymmetric ->
      let order =
        Option.value ~default:0 (Hashtbl.find_opt join_order mc.id)
      in
      if order = 0 || Sim.Rng.int work_rng 5 = 0 then Dgmc.Member.Sender
      else Dgmc.Member.Receiver
  in
  for i = 0 to n_events - 1 do
    let time = float_of_int (i + 1) /. float_of_int n_events *. horizon in
    let time = time -. Sim.Rng.float work_rng (horizon /. float_of_int n_events) in
    let mc = List.nth mcs (Sim.Rng.int work_rng n_mcs) in
    match Sim.Rng.int work_rng 100 with
    | p when p < 55 ->
      (* join at a switch not yet a member of this MC *)
      let candidates =
        List.filter
          (fun sw -> not (Hashtbl.mem joined (mc.Dgmc.Mc_id.id, sw)))
          (List.init n Fun.id)
      in
      (match candidates with
      | [] -> ()
      | _ ->
        let sw = Sim.Rng.pick work_rng candidates in
        let role = role_for mc in
        Hashtbl.replace joined (mc.Dgmc.Mc_id.id, sw) ();
        Hashtbl.replace join_order mc.Dgmc.Mc_id.id
          (1 + Option.value ~default:0 (Hashtbl.find_opt join_order mc.Dgmc.Mc_id.id));
        emit time (Workload.Events.Join { switch = sw; mc; role }))
    | p when p < 80 -> (
      match members_of mc.Dgmc.Mc_id.id with
      | [] -> ()
      | members ->
        let sw = Sim.Rng.pick work_rng members in
        Hashtbl.remove joined (mc.Dgmc.Mc_id.id, sw);
        emit time (Workload.Events.Leave { switch = sw; mc }))
    | _ ->
      (* Fail a live link and schedule its restoration; at most two
         concurrent failures keeps runs from degenerating into a fully
         dark network. *)
      if List.length !down < 2 then begin
        let live =
          List.filter
            (fun (e : Net.Graph.edge) ->
              not (List.mem (e.u, e.v) !down))
            (Net.Graph.edges graph)
        in
        match live with
        | [] -> ()
        | _ ->
          let e = Sim.Rng.pick work_rng live in
          let heal = time +. (0.5 +. Sim.Rng.float work_rng 2.5) *. round in
          down := (e.Net.Graph.u, e.Net.Graph.v) :: !down;
          emit time (Workload.Events.Link_down (e.Net.Graph.u, e.Net.Graph.v));
          emit heal (Workload.Events.Link_up (e.Net.Graph.u, e.Net.Graph.v))
      end
  done;
  let case =
    {
      seed;
      graph;
      config;
      regime;
      fault_spec;
      fault_seed = seed;
      crashes;
      partitions;
      mcs;
      events = Workload.Events.sort (List.rev !events);
    }
  in
  if not health then case
  else begin
    (* Health band: the same seed draws the same topology, workload and
       message faults, then the case is transformed AFTER generation so
       the default stream stays byte-identical.  Detectors must discover
       every scripted link change themselves, so the oracle (terminal
       agreement with ground truth) is only sound when hellos cannot be
       silently eaten: message drops are zeroed (duplication, reordering
       and jitter stay) and crash/partition windows are stripped —
       sustained hello silence would otherwise be a TRUE detection the
       terminal laws cannot distinguish from a stale believed-down. *)
    let directive =
      match Workload.Script.health_of_args ~line:0 [] with
      | Ok d -> d
      | Error e -> invalid_arg ("fuzz health defaults: " ^ e)
    in
    let hc =
      Workload.Script.health_config ~graph ~config
        ~last_event:(Workload.Script.last_event_time case.events)
        directive
    in
    {
      case with
      config = { config with Dgmc.Config.health = Some hc };
      fault_spec = { case.fault_spec with Faults.Plan.drop = 0.0 };
      crashes = [];
      partitions = [];
    }
  end

(* ------------------------------------------------------------------ *)
(* Execution *)

let max_engine_events = 20_000_000

let build_plan case =
  let plan = Faults.Plan.create ~spec:case.fault_spec ~seed:case.fault_seed () in
  List.iter
    (fun (sw, from_, until) -> Faults.Plan.crash_switch plan ~switch:sw ~from_ ~until)
    case.crashes;
  List.iter
    (fun (side, from_, until) -> Faults.Plan.partition plan ~side ~from_ ~until)
    case.partitions;
  plan

let run_events ?(trace = Sim.Trace.disabled) case events =
  let plan = build_plan case in
  let net =
    Dgmc.Protocol.create
      ~graph:(Net.Graph.copy case.graph)
      ~config:case.config ~faults:plan ~trace ()
  in
  let monitor = Monitor.attach ~trace net in
  Workload.Events.apply_dgmc net events;
  Dgmc.Protocol.run net ~max_events:max_engine_events;
  let problems = ref [] in
  if Sim.Engine.pending (Dgmc.Protocol.engine net) > 0 then
    problems :=
      [
        Printf.sprintf
          "run did not quiesce within %d engine events (retransmission \
           storm or livelock?)"
          max_engine_events;
      ]
  else begin
    Monitor.check_terminal monitor;
    problems :=
      List.concat_map
        (fun mc ->
          List.map
            (fun reason -> Format.asprintf "%a: %s" Dgmc.Mc_id.pp mc reason)
            (Dgmc.Protocol.divergence net mc))
        case.mcs
      @ Monitor.violations monitor
  end;
  match !problems with
  | [] ->
    Ok
      {
        s_totals = Dgmc.Protocol.totals net;
        s_faults = Faults.Plan.counters plan;
        s_sweeps = Monitor.sweeps monitor;
      }
  | problems -> Error problems

let run_case ?trace case = run_events ?trace case case.events

(* ------------------------------------------------------------------ *)
(* Shrinking *)

let max_shrink_runs = 200

(* Greedy one-event removal to a fixed point: deterministic, and every
   probe is a full (cheap, seeded) simulation of the same case with a
   sub-workload. *)
let shrink case =
  let runs = ref 0 in
  let fails events =
    incr runs;
    match run_events case events with Ok _ -> false | Error _ -> true
  in
  let rec pass events i =
    if !runs >= max_shrink_runs || i >= List.length events then events
    else
      let candidate = List.filteri (fun j _ -> j <> i) events in
      if fails candidate then pass candidate i else pass events (i + 1)
  in
  (* Timing pass, left to right: pull each surviving event back to its
     predecessor's time (the first to 0), keeping the change only if the
     failure survives.  Minimality then covers placement AND timing: an
     event that stays separated in the repro is separated because the
     bug needs the gap, not because the generator happened to draw one.
     Pulling back to an earlier time preserves the sort order, so probes
     replay exactly the schedule the repro prints. *)
  let rec time_pass events i =
    if !runs >= max_shrink_runs || i >= List.length events then events
    else begin
      let target =
        if i = 0 then 0.0 else (List.nth events (i - 1)).Workload.Events.time
      in
      let e_i = List.nth events i in
      if e_i.Workload.Events.time <= target then time_pass events (i + 1)
      else
        let candidate =
          List.mapi
            (fun j e -> if j = i then { e with Workload.Events.time = target } else e)
            events
        in
        if fails candidate then time_pass candidate (i + 1)
        else time_pass events (i + 1)
    end
  in
  let shrunk = time_pass (pass case.events 0) 0 in
  (shrunk, !runs)

(* ------------------------------------------------------------------ *)
(* Batch driver *)

let run ?n_max ?mcs_max ?events_max ?health ?domains ?(progress = ignore)
    ~seed ~iterations () =
  let seeds = List.init iterations (fun i -> seed + i) in
  (* The progress callback fires in seed order before the batch is
     dispatched: worker domains never touch the caller's output stream,
     so a parallel batch prints exactly what a sequential one does. *)
  List.iter progress seeds;
  (* Everything a case does — generation, execution, shrinking — is a
     pure function of its seed, so the per-seed tasks commute and the
     outcome is identical for any domain count. *)
  let outcomes =
    Runner.Pool.map ?domains
      (fun case_seed ->
        let case = case_of_seed ?n_max ?mcs_max ?events_max ?health case_seed in
        match run_case case with
        | Ok s -> Ok s
        | Error problems ->
          let f_shrunk, f_shrink_runs = shrink case in
          Error { f_case = case; f_problems = problems; f_shrunk; f_shrink_runs })
      seeds
  in
  {
    o_iterations = iterations;
    o_failures =
      List.filter_map (function Error f -> Some f | Ok _ -> None) outcomes;
    o_stats =
      List.filter_map (function Ok s -> Some s | Error _ -> None) outcomes;
  }

(* ------------------------------------------------------------------ *)
(* Reporting *)

let repro_line f =
  Printf.sprintf "dgmc_sim --fuzz --seed %d --iterations 1%s" f.f_case.seed
    (match f.f_case.config.Dgmc.Config.health with
    | Some _ -> " --health-band"
    | None -> "")

let pp_case ppf c =
  Format.fprintf ppf "@[<v>seed %d:@," c.seed;
  Format.fprintf ppf "  graph: %d switches, %d links (waxman)@,"
    (Net.Graph.n_nodes c.graph) (Net.Graph.n_edges c.graph);
  Format.fprintf ppf "  config: %s, reliable flooding@," c.regime;
  (match c.config.Dgmc.Config.health with
  | Some hc ->
    Format.fprintf ppf "  health: %s@," (Health.Config.describe hc)
  | None -> ());
  Format.fprintf ppf "  faults: %s (seed %d)@,"
    (Faults.Plan.spec_to_string c.fault_spec)
    c.fault_seed;
  List.iter
    (fun (sw, a, b) ->
      (* dgmc-analyze: allow float-format — human-readable case description *)
      Format.fprintf ppf "  crash: switch %d during [%g, %g)@," sw a b)
    c.crashes;
  List.iter
    (fun (side, a, b) ->
      (* dgmc-analyze: allow float-format — human-readable case description *)
      Format.fprintf ppf "  partition: {%s} during [%g, %g)@,"
        (String.concat ", " (List.map string_of_int side))
        a b)
    c.partitions;
  Format.fprintf ppf "  mcs: %s@,"
    (String.concat ", "
       (List.map (fun m -> Format.asprintf "%a" Dgmc.Mc_id.pp m) c.mcs));
  Format.fprintf ppf "  workload (%d events):@," (List.length c.events);
  List.iter
    (fun e -> Format.fprintf ppf "    %a@," Workload.Events.pp e)
    c.events;
  Format.fprintf ppf "@]"

let pp_failure ppf f =
  Format.fprintf ppf "@[<v>FUZZ FAILURE@,%a" pp_case f.f_case;
  Format.fprintf ppf "problems (%d):@," (List.length f.f_problems);
  List.iter (fun p -> Format.fprintf ppf "  %s@," p) f.f_problems;
  Format.fprintf ppf
    "shrunk workload (%d of %d events, %d shrink runs):@,"
    (List.length f.f_shrunk)
    (List.length f.f_case.events)
    f.f_shrink_runs;
  List.iter
    (fun e -> Format.fprintf ppf "  %a@," Workload.Events.pp e)
    f.f_shrunk;
  Format.fprintf ppf "reproduce: %s@," (repro_line f);
  Format.fprintf ppf "capture a causal trace: %s --trace seed-%d.jsonl@]"
    (repro_line f) f.f_case.seed
