(** Bounded interleaving model checker for D-GMC.

    Explores {e every} causally-possible ordering of LSA deliveries and
    computation completions that a {!Harness} scenario can produce,
    checking the {!Invariant} catalogue at each reached state:
    per-state laws and C-monotonicity on every transition, the terminal
    laws (agreement, ground truth, quiescence) at every terminal state.

    {b Exploration.}  Breadth-first by default, so the first violation
    found comes with a minimal-length counterexample trace.  States are
    deduplicated by their canonical {!Harness.digest}; since
    {!Dgmc.Switch.t} is not cloneable, each state is reconstructed by
    replaying its action prefix from the initial state (sound because
    the harness is deterministic for a fixed action sequence).

    {b Scenario shape.}  [setup] events are injected and deterministically
    drained first ({!Harness.settle}) to reach a converged base state;
    [race] events are then injected {e simultaneously} and the resulting
    in-flight message multiset is explored exhaustively. *)

type scenario = {
  graph : Net.Graph.t;
  config : Dgmc.Config.t;
  setup : Harness.event list;  (** Injected and settled before the race. *)
  race : Harness.event list;  (** Injected concurrently, then explored. *)
}

type violation = {
  message : string;  (** The violated laws, rendered. *)
  trace : string list;
      (** Human-readable action sequence from the post-race initial
          state to the violating state (minimal under BFS). *)
}

type outcome = {
  states : int;  (** Distinct states visited. *)
  transitions : int;  (** Edges expanded. *)
  terminals : int;  (** Distinct terminal states reached. *)
  complete : bool;
      (** Whole reachable space covered — no bound was hit and no
          violation cut the search short. *)
  violation : violation option;  (** First violation found, if any. *)
}

val build : scenario -> Harness.action list -> Harness.t * string list
(** Materialise the state reached by an action prefix: create the
    harness, inject and settle [setup], inject [race], then replay the
    prefix, collecting each action's {!Harness.describe} rendering.
    Deterministic — two builds of the same prefix are digest-identical —
    which is what lets both this checker and {!Search} substitute replay
    for cloning. *)

val check_state : Harness.t -> Invariant.violation list
(** The per-state law catalogue ({!Invariant.check_switch}) over every
    switch — the check applied at each visited state by both this
    checker and {!Search}. *)

val run :
  ?strategy:[ `Bfs | `Dfs ] ->
  ?max_states:int ->
  ?max_depth:int ->
  scenario ->
  outcome
(** Explore the scenario.  Defaults: [`Bfs], [max_states = 200_000],
    [max_depth = 10_000].  The per-state invariants are also checked on
    the settled base state before the race is injected
    ([Invalid_argument] if the setup itself cannot settle).

    No partial-order reduction is applied: the state space is covered in
    full, up to the interchangeability dedup of {!Harness.enabled} and
    the canonical-digest dedup of states (both of which only merge
    provably indistinguishable successors). *)

val pp_outcome : Format.formatter -> outcome -> unit
