module Int_set = Set.Make (Int)

module Link_tbl = Hashtbl.Make (struct
  type t = int * int

  let equal (a, b) (c, d) = Int.equal a c && Int.equal b d

  let hash (a, b) = (a * 1000003) lxor b
end)

type payload =
  | Mc of Dgmc.Mc_lsa.t
  | Link of Lsr.Lsdb.link_event
  | Resync of Dgmc.Resync.msg  (* unicast: exactly one pending entry *)

type event =
  | Join of { switch : int; mc : Dgmc.Mc_id.t; role : Dgmc.Member.role }
  | Leave of { switch : int; mc : Dgmc.Mc_id.t }
  | Link_down of int * int
  | Link_up of int * int
  | Crash of int
  | Recover of int
  | Hello_round

(* Round-granular abstraction of one hello agent's view of one directed
   adjacency (DESIGN.md §3f): real sim-time detector deadlines become
   "misses >= a_detect_rounds", damping penalty decay becomes
   "a_reuse_rounds calm rounds lift suppression".  State is mutable and
   part of the digest. *)
type health_link = {
  watcher : int;
  hl_peer : int;
  mutable hl_up : bool;  (* the watcher's belief *)
  mutable hl_misses : int;  (* consecutive silent rounds *)
  mutable hl_streak : int;  (* consecutive arrivals while believed down *)
  mutable hl_flaps : int;  (* cumulative down declarations *)
  mutable hl_suppressed : bool;
  mutable hl_calm : int;  (* suppressed rounds so far *)
  mutable hl_truth_rounds : int;
      (* Rounds since the adjacency's ground truth last changed (or the
         watcher recovered) — the clock the detection-bound law reads. *)
}

type health = {
  hcfg : Health.Config.t;
  habs : Health.Config.abstract;
  hlinks : health_link array;  (* sorted by (watcher, peer) *)
  mutable hspurious : string list;
      (* Down declarations made against ground truth, newest first. *)
}

type action = Deliver of { dst : int; msg : int } | Complete of int

type msg = {
  origin : int;
  payload : payload;
  past : Int_set.t;
      (* Ids the origin had delivered or flooded when this was flooded:
         every one of them causally precedes this message at every
         destination (triangle inequality of hop-by-hop flooding). *)
  fp : string;
}

type t = {
  n : int;
  net_graph : Net.Graph.t;  (* ground truth *)
  switches : Dgmc.Switch.t array;
  engines : Sim.Engine.t array;
  msgs : (int, msg) Hashtbl.t;
  mutable next_id : int;
  mutable pending : (int * int) list;  (* (dst, msg id), arrival order *)
  known : Int_set.t array;
      (* Per switch: causal context = delivered ids, their pasts, and own
         floods.  Becomes the [past] of this switch's next flood. *)
  link_versions : int Link_tbl.t;
      (* Ground-truth per-link change counter, mirroring
         Protocol.link_change's version assignment. *)
  crashed : bool array;
      (* Forwarding-plane outage, mirroring Faults.Plan's crash windows:
         a crashed switch neither sends nor receives (messages are LOST,
         not queued), but its protocol state and computations survive. *)
  mutable truth : (Dgmc.Mc_id.t * Dgmc.Member.t) list;
  health : health option;
      (* Present iff [config.health] was set: link events touch ground
         truth only and {!Hello_round}s drive the abstract detectors. *)
}

let compare_pairs (a, b) (c, d) =
  match Int.compare a c with 0 -> Int.compare b d | r -> r

let msg_exn t id =
  match Hashtbl.find_opt t.msgs id with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Harness: unknown message %d" id)

let payload_fp = function
  | Mc l -> Fingerprint.mc_lsa l
  | Link e -> Fingerprint.link_event e
  | Resync m ->
    (* One line: the blocker lists and digest are line-oriented. *)
    String.map
      (fun c -> if Char.equal c '\n' then ';' else c)
      (Dgmc.Resync.to_string m)

let record t origin payload =
  let id = t.next_id in
  t.next_id <- id + 1;
  let m = { origin; payload; past = t.known.(origin); fp = payload_fp payload } in
  Hashtbl.replace t.msgs id m;
  t.known.(origin) <- Int_set.add id t.known.(origin);
  id

let flood t origin payload =
  let id = record t origin payload in
  if not t.crashed.(origin) then begin
    (* Deliveries to crashed switches are dropped at flood time, not
       queued: the fault model loses messages during an outage. *)
    let additions = ref [] in
    for dst = t.n - 1 downto 0 do
      if dst <> origin && not t.crashed.(dst) then
        additions := (dst, id) :: !additions
    done;
    t.pending <- t.pending @ !additions
  end

(* Unicast transport for resynchronisation messages.  A send towards a
   crashed neighbor resolves synchronously the way the reliable
   transport eventually would: summaries report a giveup to their
   session, deltas are simply lost (the recoverer's deadline covers
   them). *)
let unicast t origin dst msg =
  if not t.crashed.(origin) then
    if t.crashed.(dst) then (
      match msg with
      | Dgmc.Resync.Summary _ ->
        Dgmc.Switch.resync_transport_failed t.switches.(origin) ~peer:dst
      | Dgmc.Resync.Delta _ -> ())
    else begin
      let id = record t origin (Resync msg) in
      t.pending <- t.pending @ [ (dst, id) ]
    end

let create ~graph ~config () =
  let graph = Net.Graph.copy graph in
  let n = Net.Graph.n_nodes graph in
  let engines = Array.init n (fun _ -> Sim.Engine.create ()) in
  let switches =
    Array.init n (fun id ->
        Dgmc.Switch.create ~id ~n ~config ~engine:engines.(id) ~graph ())
  in
  let health =
    Option.map
      (fun hcfg ->
        let hlinks =
          Net.Graph.all_edges graph
          |> List.concat_map (fun ((e : Net.Graph.edge), _) ->
                 [ (e.Net.Graph.u, e.Net.Graph.v); (e.Net.Graph.v, e.Net.Graph.u) ])
          |> List.sort compare_pairs
          |> List.map (fun (watcher, peer) ->
                 {
                   watcher;
                   hl_peer = peer;
                   hl_up = true;
                   hl_misses = 0;
                   hl_streak = 0;
                   hl_flaps = 0;
                   hl_suppressed = false;
                   hl_calm = 0;
                   hl_truth_rounds = 0;
                 })
          |> Array.of_list
        in
        { hcfg; habs = Health.Config.abstract hcfg; hlinks; hspurious = [] })
      config.Dgmc.Config.health
  in
  let t =
    {
      n;
      net_graph = graph;
      switches;
      engines;
      msgs = Hashtbl.create 64;
      next_id = 0;
      pending = [];
      known = Array.make n Int_set.empty;
      link_versions = Link_tbl.create 16;
      crashed = Array.make n false;
      truth = [];
      health;
    }
  in
  Array.iteri
    (fun i sw ->
      Dgmc.Switch.set_flood sw (fun lsa -> flood t i (Mc lsa));
      Dgmc.Switch.set_flood_link sw (fun ev -> flood t i (Link ev));
      Dgmc.Switch.set_send_resync sw (fun ~peer msg -> unicast t i peer msg))
    switches;
  t

let n_switches t = t.n
let switches t = t.switches

let pending_count t =
  List.length t.pending
  + Array.fold_left (fun acc e -> acc + Sim.Engine.pending e) 0 t.engines
let graph t = t.net_graph
let truth t = t.truth

let truth_members t mc =
  match List.find_opt (fun (m, _) -> Dgmc.Mc_id.equal m mc) t.truth with
  | Some (_, m) -> m
  | None -> Dgmc.Member.empty

let set_truth t mc members =
  t.truth <-
    (mc, members)
    :: List.filter (fun (m, _) -> not (Dgmc.Mc_id.equal m mc)) t.truth
    |> List.sort (fun (a, _) (b, _) -> Dgmc.Mc_id.compare a b)

(* A belief change at [hl.watcher] about its adjacency to [hl.hl_peer]:
   version the event (same counter Protocol.link_change uses), judge a
   down verdict against ground truth, tell the switch, flood the link
   LSA, and apply abstract damping. *)
let health_declare t h (hl : health_link) ~up =
  let w = hl.watcher and p = hl.hl_peer in
  let lo = min w p and hi = max w p in
  let version =
    1 + Option.value ~default:0 (Link_tbl.find_opt t.link_versions (lo, hi))
  in
  Link_tbl.replace t.link_versions (lo, hi) version;
  let link_ev = { Lsr.Lsdb.u = w; v = p; up; version } in
  hl.hl_up <- up;
  if not up then begin
    hl.hl_flaps <- hl.hl_flaps + 1;
    if Net.Graph.link_is_up t.net_graph w p && not t.crashed.(p) then
      h.hspurious <-
        Printf.sprintf
          "switch %d declared its link to %d down against ground truth" w p
        :: h.hspurious
  end;
  Dgmc.Switch.link_event t.switches.(w) link_ev ~detector:true;
  flood t w (Link link_ev);
  if not up then
    match h.habs.Health.Config.a_suppress_flaps with
    | Some k when hl.hl_flaps >= k ->
      hl.hl_suppressed <- true;
      hl.hl_calm <- 0
    | _ -> ()

(* One abstract hello round, every directed adjacency in deterministic
   order.  An arrival happens iff ground truth allows it: link up,
   sender alive, and neither direction suppressed (a suppressed
   interface neither sends nor listens).  A crashed watcher is paused —
   its detectors restart fresh, as Hello.resume does. *)
let hello_round t h =
  Array.iter
    (fun hl ->
      let w = hl.watcher and p = hl.hl_peer in
      if t.crashed.(w) then begin
        hl.hl_misses <- 0;
        hl.hl_streak <- 0;
        hl.hl_truth_rounds <- 0
      end
      else begin
        hl.hl_truth_rounds <- hl.hl_truth_rounds + 1;
        if hl.hl_suppressed then begin
          hl.hl_calm <- hl.hl_calm + 1;
          if hl.hl_calm >= h.habs.Health.Config.a_reuse_rounds then begin
            hl.hl_suppressed <- false;
            hl.hl_misses <- 0;
            hl.hl_streak <- 0
          end
        end
        else
          let reverse_suppressed =
            Array.exists
              (fun o -> o.watcher = p && o.hl_peer = w && o.hl_suppressed)
              h.hlinks
          in
          let arrival =
            Net.Graph.link_is_up t.net_graph w p
            && (not t.crashed.(p))
            && not reverse_suppressed
          in
          if arrival then begin
            hl.hl_misses <- 0;
            if not hl.hl_up then begin
              hl.hl_streak <- hl.hl_streak + 1;
              if hl.hl_streak >= h.hcfg.Health.Config.reup then begin
                hl.hl_streak <- 0;
                health_declare t h hl ~up:true
              end
            end
          end
          else begin
            hl.hl_streak <- 0;
            hl.hl_misses <- hl.hl_misses + 1;
            if hl.hl_up && hl.hl_misses >= h.habs.Health.Config.a_detect_rounds
            then health_declare t h hl ~up:false
          end
      end)
    h.hlinks

let inject t ev =
  match ev with
  | Join { switch; mc; role } ->
    set_truth t mc (Dgmc.Member.join (truth_members t mc) switch role);
    Dgmc.Switch.host_join t.switches.(switch) mc role
  | Leave { switch; mc } ->
    set_truth t mc (Dgmc.Member.leave (truth_members t mc) switch);
    Dgmc.Switch.host_leave t.switches.(switch) mc
  | Hello_round -> (
    match t.health with
    | None ->
      invalid_arg "Harness: Hello_round requires a config with health set"
    | Some h -> hello_round t h)
  | Link_down (u, v) | Link_up (u, v) -> (
    let up = match ev with Link_up _ -> true | _ -> false in
    Net.Graph.set_link t.net_graph u v ~up;
    match t.health with
    | Some h ->
      (* Ground truth only: the detectors must discover the change over
         the coming hello rounds. *)
      Array.iter
        (fun hl ->
          if
            (hl.watcher = u && hl.hl_peer = v)
            || (hl.watcher = v && hl.hl_peer = u)
          then hl.hl_truth_rounds <- 0)
        h.hlinks
    | None ->
      let lo = min u v and hi = max u v in
      let version =
        1 + Option.value ~default:0 (Link_tbl.find_opt t.link_versions (lo, hi))
      in
      Link_tbl.replace t.link_versions (lo, hi) version;
      let link_ev = { Lsr.Lsdb.u = lo; v = hi; up; version } in
      (* Same order as Protocol.link_change: the higher endpoint detects
         and floods first, then the lower one. *)
      List.iter
        (fun d ->
          Dgmc.Switch.link_event t.switches.(d) link_ev ~detector:true;
          flood t d (Link link_ev))
        [ hi; lo ])
  | Crash i ->
    if t.crashed.(i) then invalid_arg "Harness: switch already crashed";
    t.crashed.(i) <- true;
    (match t.health with
    | Some h ->
      (* The crash is a ground-truth change for everyone watching i, and
         freezes i's own sensing clocks. *)
      Array.iter
        (fun hl ->
          if hl.hl_peer = i || hl.watcher = i then hl.hl_truth_rounds <- 0)
        h.hlinks
    | None -> ());
    (* Everything in flight to or from the crashed switch is lost, as
       under Faults.Plan (transmissions blocked both ways).  A lost
       summary resolves to the transport giveup its sender would
       eventually see. *)
    let dropped, kept =
      List.partition
        (fun (d, id) -> d = i || (msg_exn t id).origin = i)
        t.pending
    in
    t.pending <- kept;
    List.iter
      (fun (d, id) ->
        let m = msg_exn t id in
        match m.payload with
        | Resync (Dgmc.Resync.Summary _) when d = i ->
          Dgmc.Switch.resync_transport_failed t.switches.(m.origin) ~peer:i
        | Resync _ | Mc _ | Link _ -> ())
      dropped
  | Recover i ->
    if not t.crashed.(i) then invalid_arg "Harness: switch not crashed";
    t.crashed.(i) <- false;
    (match t.health with
    | Some h ->
      Array.iter
        (fun hl ->
          (* The recoverer resumes with fresh detectors; its return is a
             ground-truth change for everyone watching it. *)
          if hl.watcher = i then begin
            hl.hl_misses <- 0;
            hl.hl_streak <- 0;
            hl.hl_truth_rounds <- 0
          end;
          if hl.hl_peer = i then hl.hl_truth_rounds <- 0)
        h.hlinks
    | None -> ());
    Dgmc.Switch.begin_resync t.switches.(i)

let pending_to t =
  let arr = Array.make t.n Int_set.empty in
  List.iter (fun (d, id) -> arr.(d) <- Int_set.add id arr.(d)) t.pending;
  arr

let blocker_fps t ptol (m : msg) d =
  Int_set.inter m.past ptol.(d)
  |> Int_set.elements
  |> List.map (fun id -> (msg_exn t id).fp)
  |> List.sort String.compare

(* Two enabled deliveries are interchangeable — lead to digest-identical
   successors — when they target the same switch with the same payload
   AND play the same role in everyone else's causal structure: same
   membership in each switch's known set, same relation to every other
   pending message.  Only then is it sound to expand just one. *)
let delivery_signature t ptol (d, id) =
  let m = msg_exn t id in
  let ctx =
    Array.to_list t.known
    |> List.map (fun k -> if Int_set.mem id k then "1" else "0")
    |> String.concat ""
  in
  let rel =
    List.filter_map
      (fun (d', id') ->
        if d' = d && id' = id then None
        else
          let m' = msg_exn t id' in
          let tag =
            if id' = id then
              "self:" ^ String.concat ";" (blocker_fps t ptol m d')
            else if Int_set.mem id m'.past then "blocks"
            else "-"
          in
          Some (Printf.sprintf "%d|%s|%s" d' m'.fp tag))
      t.pending
    |> List.sort String.compare
  in
  Printf.sprintf "%d|%s|%s|%s" d m.fp ctx (String.concat "&" rel)

let enabled t =
  let ptol = pending_to t in
  let causally_free (d, id) =
    Int_set.is_empty (Int_set.inter (msg_exn t id).past ptol.(d))
  in
  let seen = Hashtbl.create 16 in
  let deliveries =
    List.filter
      (fun p ->
        causally_free p
        &&
        let s = delivery_signature t ptol p in
        if Hashtbl.mem seen s then false
        else begin
          Hashtbl.add seen s ();
          true
        end)
      t.pending
    |> List.map (fun (d, id) -> Deliver { dst = d; msg = id })
  in
  let completions =
    List.init t.n (fun i -> i)
    |> List.filter_map (fun i ->
           if Sim.Engine.pending t.engines.(i) > 0 then Some (Complete i)
           else None)
  in
  deliveries @ completions

let remove_pending t dst id =
  let rec go = function
    | [] -> invalid_arg "Harness.apply: message not pending at destination"
    | (d, i) :: rest when d = dst && i = id -> rest
    | p :: rest -> p :: go rest
  in
  t.pending <- go t.pending

let apply t action =
  match action with
  | Deliver { dst; msg } ->
    let m = msg_exn t msg in
    let ptol = pending_to t in
    if not (Int_set.is_empty (Int_set.inter m.past ptol.(dst))) then
      invalid_arg "Harness.apply: delivery not causally enabled";
    remove_pending t dst msg;
    t.known.(dst) <- Int_set.add msg (Int_set.union t.known.(dst) m.past);
    (match m.payload with
    | Mc lsa -> Dgmc.Switch.receive t.switches.(dst) lsa
    | Link ev -> Dgmc.Switch.link_event t.switches.(dst) ev ~detector:false
    | Resync msg -> Dgmc.Switch.receive_resync t.switches.(dst) msg)
  | Complete i ->
    if not (Sim.Engine.step t.engines.(i)) then
      invalid_arg "Harness.apply: no computation pending at switch"

(* Same selection rule as [enabled]'s head — first causally-free
   delivery in pool order, else first switch with a pending computation
   — but without the interchangeability signatures, which replay makes
   hot: every explored edge re-runs the whole setup settle. *)
let first_enabled t =
  let ptol = pending_to t in
  match
    List.find_opt
      (fun (d, id) ->
        Int_set.is_empty (Int_set.inter (msg_exn t id).past ptol.(d)))
      t.pending
  with
  | Some (d, id) -> Some (Deliver { dst = d; msg = id })
  | None ->
    let rec comp i =
      if i >= t.n then None
      else if Sim.Engine.pending t.engines.(i) > 0 then Some (Complete i)
      else comp (i + 1)
    in
    comp 0

let settle t =
  let budget = ref 200_000 in
  let rec loop () =
    match first_enabled t with
    | None -> ()
    | Some a ->
      decr budget;
      if !budget <= 0 then invalid_arg "Harness.settle: no quiescence reached";
      apply t a;
      loop ()
  in
  loop ()

let digest t =
  let ptol = pending_to t in
  let b = Buffer.create 2048 in
  Array.iter
    (fun sw ->
      Fingerprint.add_switch b sw;
      Buffer.add_char b '\n')
    t.switches;
  let pool =
    List.map
      (fun (d, id) ->
        let m = msg_exn t id in
        Printf.sprintf "%d|%s|[%s]" d m.fp
          (String.concat ";" (blocker_fps t ptol m d)))
      t.pending
    |> List.sort String.compare
  in
  List.iter
    (fun line ->
      Buffer.add_string b line;
      Buffer.add_char b '\n')
    pool;
  Array.iteri
    (fun i k ->
      let entries =
        List.filter_map
          (fun (d, id) ->
            if Int_set.mem id k then
              Some (Printf.sprintf "%d:%s" d (msg_exn t id).fp)
            else None)
          t.pending
        |> List.sort String.compare
      in
      Buffer.add_string b (Printf.sprintf "k%d=[%s]\n" i (String.concat ";" entries)))
    t.known;
  List.iter
    (fun (mc, m) ->
      Buffer.add_string b (Fingerprint.mc_id mc);
      Buffer.add_char b '=';
      Buffer.add_string b (Fingerprint.members m);
      Buffer.add_char b '\n')
    t.truth;
  Buffer.add_string b "crashed=";
  Array.iter (fun c -> Buffer.add_char b (if c then '1' else '0')) t.crashed;
  Buffer.add_char b '\n';
  (match t.health with
  | None -> ()
  | Some h ->
    Array.iter
      (fun hl ->
        Buffer.add_string b
          (Printf.sprintf "h%d>%d=%b|%d|%d|%d|%b|%d|%d\n" hl.watcher
             hl.hl_peer hl.hl_up hl.hl_misses hl.hl_streak hl.hl_flaps
             hl.hl_suppressed hl.hl_calm hl.hl_truth_rounds))
      h.hlinks;
    Buffer.add_string b
      (Printf.sprintf "hspurious=%d\n" (List.length h.hspurious)));
  Buffer.add_string b (Fingerprint.graph_links t.net_graph);
  Digest.string (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Link-health observation (abstract model; see DESIGN.md §3f) *)

type adjacency_view = {
  av_watcher : int;
  av_peer : int;
  av_up : bool;  (* the watcher's belief *)
  av_suppressed : bool;
  av_truth_down : bool;
      (* Ground truth: the adjacency is unusable (link down or peer
         crashed). *)
  av_stable_rounds : int;
      (* Hello rounds since the adjacency's truth last changed while the
         watcher was alive. *)
}

let health_enabled t = t.health <> None

let health_adjacencies t =
  match t.health with
  | None -> []
  | Some h ->
    Array.to_list h.hlinks
    |> List.map (fun hl ->
           {
             av_watcher = hl.watcher;
             av_peer = hl.hl_peer;
             av_up = hl.hl_up;
             av_suppressed = hl.hl_suppressed;
             av_truth_down =
               (not (Net.Graph.link_is_up t.net_graph hl.watcher hl.hl_peer))
               || t.crashed.(hl.hl_peer);
             av_stable_rounds = hl.hl_truth_rounds;
           })

let health_spurious t =
  match t.health with None -> [] | Some h -> List.rev h.hspurious

let health_detect_rounds t =
  Option.map (fun h -> h.habs.Health.Config.a_detect_rounds) t.health

let suppressed_links t =
  match t.health with
  | None -> []
  | Some h ->
    Array.to_list h.hlinks
    |> List.filter_map (fun hl ->
           if hl.hl_suppressed then
             Some (min hl.watcher hl.hl_peer, max hl.watcher hl.hl_peer)
           else None)
    |> List.sort_uniq compare_pairs

let describe t action =
  match action with
  | Deliver { dst; msg } ->
    let m = msg_exn t msg in
    let pl =
      match m.payload with
      | Mc lsa -> Format.asprintf "%a" Dgmc.Mc_lsa.pp lsa
      | Link e -> Format.asprintf "%a" Lsr.Lsdb.pp_link_event e
      | Resync (Dgmc.Resync.Summary { session; _ }) ->
        Printf.sprintf "resync summary (session %d)" session
      | Resync (Dgmc.Resync.Delta { session; _ }) ->
        Printf.sprintf "resync delta (session %d)" session
    in
    Printf.sprintf "deliver to switch %d (flooded by %d): %s" dst m.origin pl
  | Complete i -> Printf.sprintf "complete topology computation at switch %d" i
