type scenario = {
  graph : Net.Graph.t;
  config : Dgmc.Config.t;
  setup : Harness.event list;
  race : Harness.event list;
}

type violation = { message : string; trace : string list }

type outcome = {
  states : int;
  transitions : int;
  terminals : int;
  complete : bool;
  violation : violation option;
}

(* Rebuild the state reached by [prefix]: the harness is deterministic
   for a fixed action sequence, so replay substitutes for cloning.
   Returns the live harness and the rendered action descriptions. *)
let build scenario prefix =
  let h = Harness.create ~graph:scenario.graph ~config:scenario.config () in
  List.iter (Harness.inject h) scenario.setup;
  Harness.settle h;
  List.iter (Harness.inject h) scenario.race;
  let descs =
    List.map
      (fun a ->
        let d = Harness.describe h a in
        Harness.apply h a;
        d)
      prefix
  in
  (h, descs)

let check_state h =
  let base =
    Array.to_list (Harness.switches h)
    |> List.concat_map (fun sw ->
           Invariant.check_switch ~id:(Dgmc.Switch.id sw) sw)
  in
  match Harness.health_detect_rounds h with
  | None -> base
  | Some detect_rounds ->
    base
    @ Invariant.check_health_state ~detect_rounds
        ~spurious:(Harness.health_spurious h)
        (Harness.health_adjacencies h)

(* No partial-order reduction here, deliberately.  The tempting
   persistent set — all enabled actions of one switch d — is unsound in
   this system: a Complete at another switch can flood a FRESH message
   to d whose delivery is immediately enabled and dependent (same
   mailbox) with d's currently-enabled deliveries, so the orderings
   where it arrives at d first would never be explored, and terminal
   states differing only in which proposal a switch last installed (its
   C stamp) would be silently lost.  Exhaustiveness over the deduped
   state graph is the whole point of this checker; the per-edge replay
   is kept cheap instead (see Harness.first_enabled). *)
let run ?(strategy = `Bfs) ?(max_states = 200_000) ?(max_depth = 10_000)
    scenario =
  let seen = Hashtbl.create 4096 in
  let states = ref 0 in
  let transitions = ref 0 in
  let terminals = ref 0 in
  let truncated = ref false in
  let violation = ref None in
  let queue = Queue.create () in
  let stack = ref [] in
  let push item =
    match strategy with
    | `Bfs -> Queue.add item queue
    | `Dfs -> stack := item :: !stack
  in
  let pop () =
    match strategy with
    | `Bfs -> if Queue.is_empty queue then None else Some (Queue.pop queue)
    | `Dfs -> (
      match !stack with
      | [] -> None
      | x :: rest ->
        stack := rest;
        Some x)
  in
  let report descs viols =
    violation :=
      Some
        {
          message = String.concat "\n" (List.map Invariant.to_string viols);
          trace = descs;
        }
  in
  (* A freshly materialised state: dedup, check, classify. *)
  let examine h prefix descs =
    let d = Harness.digest h in
    if not (Hashtbl.mem seen d) then begin
      Hashtbl.add seen d ();
      incr states;
      if !states > max_states then truncated := true
      else
        match Harness.enabled h with
        | [] ->
          let tv =
            Invariant.check_terminal ~graph:(Harness.graph h)
              ~truth:(Harness.truth h) (Harness.switches h)
            @ Invariant.check_health_terminal
                ~suppressed:(Harness.suppressed_links h)
                (Harness.switches h)
          in
          if tv <> [] then report (descs @ [ "(terminal state)" ]) tv
          else incr terminals
        | acts ->
          if List.length prefix >= max_depth then truncated := true
          else push (prefix, acts)
    end
  in
  let h0, _ = build scenario [] in
  (match check_state h0 with
  | [] -> examine h0 [] []
  | viols -> report [ "(initial state, before any race delivery)" ] viols);
  let rec loop () =
    if !violation = None then
      match pop () with
      | None -> ()
      | Some (prefix, acts) ->
        List.iter
          (fun act ->
            if !violation = None then begin
              incr transitions;
              let h, descs = build scenario prefix in
              let before =
                Array.map Invariant.installed_stamps (Harness.switches h)
              in
              let desc = Harness.describe h act in
              Harness.apply h act;
              let descs = descs @ [ desc ] in
              let viols =
                check_state h
                @ (Array.to_list
                     (Array.mapi
                        (fun i sw ->
                          Invariant.check_monotone ~id:i ~before:before.(i) sw)
                        (Harness.switches h))
                  |> List.concat)
              in
              if viols <> [] then report descs viols
              else examine h (prefix @ [ act ]) descs
            end)
          acts;
        loop ()
  in
  loop ();
  {
    states = !states;
    transitions = !transitions;
    terminals = !terminals;
    complete = !violation = None && not !truncated;
    violation = !violation;
  }

let pp_outcome ppf o =
  Format.fprintf ppf "%d states, %d transitions, %d terminal states%s"
    o.states o.transitions o.terminals
    (if o.complete then " (exhaustive)" else " (bounded)");
  match o.violation with
  | None -> Format.fprintf ppf "; no invariant violations"
  | Some v ->
    Format.fprintf ppf "@.VIOLATION: %s@.trace (%d steps):@." v.message
      (List.length v.trace);
    List.iteri (fun i d -> Format.fprintf ppf "  %2d. %s@." (i + 1) d) v.trace
