type severity = Error | Warning

type diagnostic = { line : int; severity : severity; message : string }

(* Fully-resolved events for the semantic (timeline-replay) pass. *)
type act =
  | Join of { switch : int; mc : int }
  | Leave of { switch : int; mc : int }
  | Link of { u : int; v : int; up : bool }

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let opt_value opts key =
  List.find_map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i when String.sub tok 0 i = key ->
        Some (String.sub tok (i + 1) (String.length tok - i - 1))
      | _ -> None)
    opts

let lint text =
  let diags = ref [] in
  let emit severity line fmt =
    Printf.ksprintf
      (fun message -> diags := { line; severity; message } :: !diags)
      fmt
  in
  let err line fmt = emit Error line fmt in
  let warn line fmt = emit Warning line fmt in
  let graph = ref None in
  let graph_declared = ref false in
  let faults_declared = ref false in
  let config = ref Dgmc.Config.atm_lan in
  let mcs = ref [] in (* (decl line, id, kind) — in declaration order *)
  let used = ref [] in (* mc ids referenced by some event *)
  let events = ref [] in (* (line, time, rounds?, act) — file order *)
  let churns = ref [] in (* (line, churn_directive) — file order *)
  let health_decl = ref None in (* (line, health_directive) *)
  let parse_int line what s =
    match int_of_string_opt s with
    | Some v -> Some v
    | None ->
      err line "%s: expected an integer, got %S" what s;
      None
  in
  (* Mirrors Workload.Script.check_opts, but reports every offender. *)
  let check_opts line ~allowed opts =
    List.iter
      (fun tok ->
        match String.index_opt tok '=' with
        | None -> err line "unexpected token %S (options are key=value)" tok
        | Some i ->
          let key = String.sub tok 0 i in
          if not (List.mem key allowed) then
            err line "unknown option %S (allowed: %s)" key
              (String.concat ", " allowed))
      opts
  in
  let find_mc line opts =
    match opt_value opts "mc" with
    | None ->
      err line "event needs mc=<id>";
      None
    | Some id_s -> (
      match parse_int line "mc id" id_s with
      | None -> None
      | Some id ->
        if not (List.exists (fun (_, i, _) -> i = id) !mcs) then begin
          err line "mc %d not declared (use a 'mc %d <type>' line first)" id
            id;
          None
        end
        else begin
          used := id :: !used;
          Some id
        end)
  in
  (* The declared MCs as Mc_id values (only those with a valid kind) —
     what the shared churn parser resolves mc= against. *)
  let declared_mc_ids () =
    List.filter_map
      (fun (_, id, kind) ->
        match kind with
        | "symmetric" -> Some (Dgmc.Mc_id.make Symmetric id)
        | "receiver-only" -> Some (Dgmc.Mc_id.make Receiver_only id)
        | "asymmetric" -> Some (Dgmc.Mc_id.make Asymmetric id)
        | _ -> None)
      !mcs
  in
  (* ---- pass 1: line-by-line structure ---- *)
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let body =
        match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      match tokens body with
      | [] -> ()
      | "graph" :: args ->
        if !graph_declared then
          warn line "duplicate 'graph' directive overrides the previous one";
        graph_declared := true;
        (match Workload.Script.graph_of_args ~line args with
        | Ok g -> graph := Some g
        | Error m ->
          err line "%s" m;
          (* the semantic pass is skipped: no graph to check against *)
          graph := None)
      | "config" :: args -> (
        match args with
        | [ "atm" ] -> config := Dgmc.Config.atm_lan
        | [ "wan" ] -> config := Dgmc.Config.wan
        | _ ->
          err line "config: expected 'atm' or 'wan', got %S"
            (String.concat " " args))
      | "faults" :: args -> (
        if !faults_declared then
          warn line "duplicate 'faults' directive overrides the previous one";
        faults_declared := true;
        match Workload.Script.faults_of_args ~line args with
        | Ok (spec, _) ->
          if Faults.Plan.spec_is_transparent spec then
            warn line
              "fault plan injects nothing (all probabilities and delays \
               are zero)"
        | Error m -> err line "%s" m)
      | [ "mc"; id; kind ] ->
        (match parse_int line "mc id" id with
        | None -> ()
        | Some id ->
          if List.exists (fun (_, i, _) -> i = id) !mcs then
            err line "mc %d declared twice" id
          else mcs := !mcs @ [ (line, id, kind) ]);
        if not (List.mem kind [ "symmetric"; "receiver-only"; "asymmetric" ])
        then err line "unknown MC type %S" kind
      | "mc" :: _ -> err line "mc: expected 'mc <id> <type>'"
      | "at" :: time :: action ->
        let time =
          let rounds =
            String.length time > 1 && time.[String.length time - 1] = 'r'
          in
          let body =
            if rounds then String.sub time 0 (String.length time - 1)
            else time
          in
          match float_of_string_opt body with
          | Some v when v >= 0.0 -> Some (v, rounds)
          | Some _ ->
            err line "time must be non-negative";
            None
          | None ->
            err line "bad time literal %S" time;
            None
        in
        let act =
          match action with
          | "join" :: sw :: opts ->
            check_opts line ~allowed:[ "mc"; "role" ] opts;
            (match opt_value opts "role" with
            | Some r when not (List.mem r [ "sender"; "receiver"; "both" ])
              ->
              err line "unknown role %S" r
            | _ -> ());
            let sw = parse_int line "switch" sw in
            let mc = find_mc line opts in
            (match (sw, mc) with
            | Some switch, Some mc -> Some (Join { switch; mc })
            | _ -> None)
          | "leave" :: sw :: opts -> (
            check_opts line ~allowed:[ "mc" ] opts;
            let sw = parse_int line "switch" sw in
            let mc = find_mc line opts in
            match (sw, mc) with
            | Some switch, Some mc -> Some (Leave { switch; mc })
            | _ -> None)
          | [ ("linkdown" | "linkup") ] | [ ("linkdown" | "linkup"); _ ] ->
            err line "%s: expected two switch ids" (List.hd action);
            None
          | [ ("linkdown" | "linkup") as verb; u; v ] -> (
            match (parse_int line "u" u, parse_int line "v" v) with
            | Some u, Some v ->
              Some (Link { u; v; up = verb = "linkup" })
            | _ -> None)
          | verb :: _ ->
            err line "unknown event %S" verb;
            None
          | [] ->
            err line "at: missing event";
            None
        in
        (match (time, act) with
        | Some (v, rounds), Some act ->
          events := !events @ [ (line, v, rounds, act) ]
        | _ -> ())
      | [ "at" ] -> err line "at: missing time and event"
      | "health" :: opts -> (
        if !health_decl <> None then
          warn line "duplicate 'health' directive overrides the previous one";
        check_opts line ~allowed:Workload.Script.health_allowed_keys opts;
        let known =
          List.filter
            (fun tok ->
              match String.index_opt tok '=' with
              | Some i ->
                List.mem (String.sub tok 0 i)
                  Workload.Script.health_allowed_keys
              | None -> false)
            opts
        in
        match Workload.Script.health_of_args ~line known with
        | Ok d -> health_decl := Some (line, d)
        | Error m -> err line "%s" m)
      | "churn" :: opts -> (
        (* Report every bad key here, then hand only the known ones to
           the shared parser (which stops at the first problem). *)
        check_opts line ~allowed:Workload.Script.churn_allowed_keys opts;
        let known =
          List.filter
            (fun tok ->
              match String.index_opt tok '=' with
              | Some i ->
                List.mem (String.sub tok 0 i)
                  Workload.Script.churn_allowed_keys
              | None -> false)
            opts
        in
        match
          Workload.Script.churn_of_args ~line ~mcs:(declared_mc_ids ()) known
        with
        | Ok d ->
          used := d.Workload.Script.churn_mc.id :: !used;
          churns := !churns @ [ (line, d) ]
        | Error m -> err line "%s" m)
      | verb :: _ -> err line "unknown directive %S" verb)
    (String.split_on_char '\n' text);
  (* ---- pass 2: semantics over the resolved timeline ---- *)
  (match !graph with
  | None -> if not !graph_declared then err 0 "missing 'graph' directive"
  | Some g ->
    let n = Net.Graph.n_nodes g in
    let round = Dgmc.Config.round_length !config ~graph:g in
    let resolved =
      List.filter_map
        (fun (line, v, rounds, act) ->
          let time = if rounds then v *. round else v in
          let ok =
            match act with
            | Join { switch; _ } | Leave { switch; _ } ->
              if switch < 0 || switch >= n then begin
                err line "switch %d out of range (graph has %d switches)"
                  switch n;
                false
              end
              else true
            | Link { u; v; _ } ->
              if not (Net.Graph.has_edge g u v) then begin
                err line "no link (%d, %d) in the graph" u v;
                false
              end
              else true
          in
          if ok then Some (line, time, act) else None)
        !events
    in
    (* Monotone file order: later lines should not move back in time. *)
    ignore
      (List.fold_left
         (fun prev (line, time, _) ->
           (match prev with
           | Some (pline, ptime) when time < ptime ->
             warn line
               "event time moves backwards (earlier than line %d); events \
                still run in time order"
               pline
           | _ -> ());
           Some (line, time))
         None resolved);
    (* Exact duplicates. *)
    let rec dup_scan = function
      | [] -> []
      | (line, time, act) :: rest ->
        (match
           List.find_opt (fun (_, t, a) -> t = time && a = act) rest
         with
        | Some (line', _, _) ->
          err line' "duplicate event (same time and action as line %d)" line
        | None -> ());
        dup_scan rest
    in
    ignore (dup_scan resolved);
    (* Churn directives expand deterministically; an expansion the graph
       cannot host is an error, and the expanded events join the replay
       below so scripted events are checked against churn-held state. *)
    let churn_resolved =
      List.concat_map
        (fun (line, d) ->
          match
            Workload.Churn.generate
              (Sim.Rng.create d.Workload.Script.churn_seed)
              ~graph:g
              (Workload.Script.churn_spec ~graph:g ~config:!config d)
          with
          | evs ->
            List.map
              (fun (e : Workload.Events.t) ->
                let act =
                  match e.action with
                  | Workload.Events.Join { switch; mc; _ } ->
                    Join { switch; mc = mc.id }
                  | Workload.Events.Leave { switch; mc } ->
                    Leave { switch; mc = mc.id }
                  | Workload.Events.Link_down (u, v) ->
                    Link { u; v; up = false }
                  | Workload.Events.Link_up (u, v) -> Link { u; v; up = true }
                in
                (line, e.time, act))
              evs
          | exception Invalid_argument m ->
            err line "%s" m;
            [])
        !churns
    in
    (* Replay membership and link state in event-time order (stable on
       ties, matching Workload.Events.sort). *)
    let timeline =
      List.stable_sort
        (fun (_, t1, _) (_, t2, _) -> Float.compare t1 t2)
        (resolved @ churn_resolved)
    in
    let member = Hashtbl.create 16 in (* (mc, switch) -> () *)
    let link_down = Hashtbl.create 16 in (* (u, v) with u < v *)
    List.iter
      (fun (line, _, act) ->
        match act with
        | Join { switch; mc } -> Hashtbl.replace member (mc, switch) ()
        | Leave { switch; mc } ->
          if not (Hashtbl.mem member (mc, switch)) then
            err line
              "leave without a preceding join (switch %d is not a member \
               of mc %d at this time)"
              switch mc
          else Hashtbl.remove member (mc, switch)
        | Link { u; v; up } ->
          let key = (min u v, max u v) in
          let down = Hashtbl.mem link_down key in
          if up && not down then
            warn line "link (%d, %d) is already up" u v
          else if (not up) && down then
            warn line "link (%d, %d) is already down" u v;
          if up then Hashtbl.remove link_down key
          else Hashtbl.replace link_down key ())
      timeline;
    (* A health directive must resolve to a valid configuration against
       this graph and regime — the same resolution Script.parse does. *)
    match !health_decl with
    | None -> ()
    | Some (hline, d) ->
      let last_event =
        List.fold_left (fun acc (_, t, _) -> Float.max acc t) 0.0 timeline
      in
      let hc =
        Workload.Script.health_config ~graph:g ~config:!config ~last_event d
      in
      (match Health.Config.validate hc with
      | Ok () -> ()
      | Error m -> err hline "%s" m);
      if
        not
          (List.exists
             (fun (_, _, act) ->
               match act with Link _ -> true | _ -> false)
             timeline)
      then
        warn hline
          "health directive but no scripted link events: the detectors \
           have nothing to discover");
  List.iter
    (fun (line, id, _) ->
      if not (List.mem id !used) then
        warn line "mc %d declared but never used by any event" id)
    !mcs;
  List.stable_sort
    (fun a b -> Int.compare a.line b.line)
    (List.rev !diags)

let lint_file path =
  match open_in path with
  | exception Sys_error e -> Stdlib.Error e
  | ic ->
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    Stdlib.Ok (lint text)

let errors diags =
  List.length (List.filter (fun d -> d.severity = Error) diags)

let warnings diags =
  List.length (List.filter (fun d -> d.severity = Warning) diags)

let render ?file d =
  let prefix =
    match (file, d.line) with
    | Some f, 0 -> f ^ ": "
    | Some f, l -> Printf.sprintf "%s:%d: " f l
    | None, 0 -> ""
    | None, l -> Printf.sprintf "line %d: " l
  in
  Printf.sprintf "%s%s: %s" prefix
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.message
