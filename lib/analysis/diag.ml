type severity = Error | Warning

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  message : string;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> (
        match String.compare a.rule b.rule with
        | 0 -> String.compare a.message b.message
        | c -> c)
      | c -> c)
    | c -> c)
  | c -> c

let render d =
  Printf.sprintf "%s:%d:%d: %s: %s: %s" d.file d.line d.col
    (severity_name d.severity) d.rule d.message

let json d =
  Printf.sprintf
    {|{"file": "%s", "line": %d, "col": %d, "rule": "%s", "severity": "%s", "message": "%s"}|}
    (Sim.Json.escape d.file) d.line d.col (Sim.Json.escape d.rule)
    (severity_name d.severity)
    (Sim.Json.escape d.message)
