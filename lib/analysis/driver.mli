(** End-to-end analysis: discover files, scan, apply suppressions,
    classify against a baseline, render. *)

type status = New | Baselined

type result = {
  diags : (Diag.t * status) list;  (** Sorted by {!Diag.compare}. *)
  suppressed : int;
  files_scanned : int;
  unused_suppressions : (string * Suppress.t) list;
      (** Suppression comments that matched no finding. *)
}

val gather_files : string list -> string list
(** [.ml] files under the given files/directories, sorted; skips
    [_build], hidden directories, and [analysis_fixtures] (the
    analyzer's own deliberately-failing test corpus). *)

val run :
  ?enabled:(Rules.id -> bool) -> baseline:Baseline.t -> string list -> result

val new_count : result -> int
(** Findings not covered by the baseline — nonzero fails the run. *)

val render_human : ?show_baselined:bool -> result -> string

val render_json : result -> string
(** The [kind = "report"] document of the [dgmc-analyze/1] schema. *)
