type id =
  | Nondet_source
  | Iteration_order
  | Poly_compare
  | Float_format
  | Domain_unsafe_capture
  | Parse_error

let all =
  [
    Nondet_source;
    Iteration_order;
    Poly_compare;
    Float_format;
    Domain_unsafe_capture;
    Parse_error;
  ]

let name = function
  | Nondet_source -> "nondet-source"
  | Iteration_order -> "iteration-order"
  | Poly_compare -> "poly-compare"
  | Float_format -> "float-format"
  | Domain_unsafe_capture -> "domain-unsafe-capture"
  | Parse_error -> "parse-error"

let of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "nondet-source" -> Some Nondet_source
  | "iteration-order" -> Some Iteration_order
  | "poly-compare" -> Some Poly_compare
  | "float-format" -> Some Float_format
  | "domain-unsafe-capture" -> Some Domain_unsafe_capture
  | "parse-error" -> Some Parse_error
  | _ -> None

let describe = function
  | Nondet_source ->
    "ambient nondeterminism: Random.*, Unix.gettimeofday/Unix.time/Sys.time \
     outside the sim clock, Hashtbl.hash on unconstrained values"
  | Iteration_order ->
    "Hashtbl.iter/fold whose result feeds output or state without a sort"
  | Poly_compare ->
    "polymorphic compare/(=) where a typed comparison is required for \
     deterministic, future-proof ordering"
  | Float_format ->
    "float printed with a non-round-trip format (schemas require %.17g or %h)"
  | Domain_unsafe_capture ->
    "top-level mutable state captured by a closure passed to Runner.Pool or \
     Domain.spawn without Domain.DLS / Mutex / Atomic"
  | Parse_error -> "source file does not parse"
