(** Committed inventory of accepted pre-existing findings.

    Keyed by (file, rule) with a count: counts survive unrelated edits
    (line numbers would not), and a rule firing more often than its
    baseline count in a file is a {e new} finding.  Serialized as the
    [kind = "baseline"] document of the [dgmc-analyze/1] schema. *)

type entry = { b_file : string; b_rule : string; b_count : int }

type t = entry list

val empty : t

val of_diags : Diag.t list -> t
(** Aggregate current findings into baseline entries (sorted). *)

val count : t -> file:string -> rule:string -> int

val to_string : t -> string

val of_json : Sim.Json.t -> (t, string) result

val load : string -> (t, string) result
(** A missing file is an empty baseline, not an error. *)

val save : string -> t -> unit
