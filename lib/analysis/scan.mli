(** AST-level rule checks over OCaml sources (compiler-libs Parsetree).

    Rules are syntactic approximations of the determinism and
    domain-safety contracts documented in DESIGN.md §5: every hit is a
    true positive, a site worth a written suppression rationale, or a
    pre-existing finding held in the committed baseline. *)

type file = {
  path : string;
  modname : string;  (** Capitalized basename — the module this file defines. *)
  source : string;
  structure : Parsetree.structure;  (** Empty when the file does not parse. *)
  parse_error : Diag.t option;
  sup : Suppress.scan;
  top_mutables : (string * int) list;
      (** Top-level bindings initialised to [ref]/[Hashtbl.create]/
          [Buffer.create]/[Array.make]/... with their definition line. *)
  top_refs : (string * string list) list;
      (** Identifier paths referenced by each top-level binding's body
          (used to resolve closures passed by name). *)
  top_defs : (string * int) list;
}

type env
(** Cross-file context: every top-level mutable binding in the analyzed
    set, so a closure in one module capturing another module's global is
    caught. *)

val load : string -> file
(** Read and parse one [.ml] file.  Parse failures are recorded as a
    [parse-error] diagnostic, not raised. *)

val env_of : file list -> env

val check : env -> enabled:(Rules.id -> bool) -> file -> Diag.t list
(** Raw findings for one file, before suppression and baseline
    filtering, in source order.  Includes the parse error (if any) and
    malformed suppression comments (rule ["suppression-syntax"],
    warnings). *)
