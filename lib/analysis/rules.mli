(** The rule registry of [dgmc_analyze].

    Every rule is individually toggleable from the command line
    ([--rules] / [--disable]) and addressable from suppression comments
    ([(* dgmc-analyze: allow <rule> — reason *)]) by its {!name}.
    [Parse_error] is a pseudo-rule for sources the parser rejects; it
    cannot be suppressed. *)

type id =
  | Nondet_source
  | Iteration_order
  | Poly_compare
  | Float_format
  | Domain_unsafe_capture
  | Parse_error

val all : id list

val name : id -> string
(** Kebab-case identifier, e.g. ["iteration-order"]. *)

val of_name : string -> id option

val describe : id -> string
(** One-line summary shown by [--list-rules]. *)
