(* Suppression comments:

     (* dgmc-analyze: allow <rule>[, <rule>...] — reason *)

   A suppression covers findings of the named rules on every line the
   comment spans plus the line immediately after it — so it can sit at
   the end of the offending line or on its own line just above.  The
   reason text is mandatory: a suppression without one is itself
   reported (rule "suppression"), because the whole point is a written
   rationale next to the exception. *)

type t = {
  s_line_start : int;
  s_line_end : int;
  rules : string list;
  reason : string;
  mutable used : bool;
}

let parse_body body =
  (* body is the comment text without the delimiters. *)
  let body = String.trim body in
  let prefix = "dgmc-analyze:" in
  if not (String.length body >= String.length prefix
          && String.sub body 0 (String.length prefix) = prefix)
  then None
  else begin
    let rest = String.trim (String.sub body (String.length prefix)
                              (String.length body - String.length prefix)) in
    let allow = "allow" in
    if not (String.length rest >= String.length allow
            && String.sub rest 0 (String.length allow) = allow)
    then Some (Error "expected `allow` after `dgmc-analyze:`")
    else begin
      let rest = String.sub rest (String.length allow)
          (String.length rest - String.length allow) in
      (* Split off the reason at an em-dash or a double hyphen. *)
      let emdash = "\xe2\x80\x94" in
      let cut sep s =
        let slen = String.length sep in
        let rec find i =
          if i + slen > String.length s then None
          else if String.sub s i slen = sep then
            Some (String.sub s 0 i,
                  String.sub s (i + slen) (String.length s - i - slen))
          else find (i + 1)
        in
        find 0
      in
      let rules_part, reason =
        match cut emdash rest with
        | Some (a, b) -> (a, String.trim b)
        | None -> (
          match cut "--" rest with
          | Some (a, b) -> (a, String.trim b)
          | None -> (rest, ""))
      in
      let rules =
        String.split_on_char ',' rules_part
        |> List.concat_map (String.split_on_char ' ')
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      Some (Ok (rules, reason))
    end
  end

type scan = {
  suppressions : t list;
  malformed : (int * string) list;  (* line, problem *)
}

(* A minimal OCaml surface scanner: tracks strings ("..." with escapes,
   {tag|...|tag}), char literals, and nested (* *) comments, and yields
   each comment's body with its line span.  It does not need to be a
   full lexer — only good enough to find comments in this repo's
   sources. *)
let scan source =
  let n = String.length source in
  let line = ref 1 in
  let suppressions = ref [] in
  let malformed = ref [] in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_' || c = '\''
  in
  let skip_string () =
    (* at opening quote *)
    incr i;
    let continue = ref true in
    while !continue && !i < n do
      (match source.[!i] with
      | '\\' -> if !i + 1 < n then begin bump source.[!i + 1]; incr i end
      | '"' -> continue := false
      | c -> bump c);
      incr i
    done
  in
  let skip_quoted_string () =
    (* at an opening brace; check for a quoted-string opener *)
    let j = ref (!i + 1) in
    while !j < n && ((source.[!j] >= 'a' && source.[!j] <= 'z') || source.[!j] = '_') do incr j done;
    if !j < n && source.[!j] = '|' then begin
      let tag = String.sub source (!i + 1) (!j - !i - 1) in
      let closer = "|" ^ tag ^ "}" in
      let clen = String.length closer in
      i := !j + 1;
      let continue = ref true in
      while !continue && !i < n do
        if !i + clen <= n && String.sub source !i clen = closer then begin
          i := !i + clen;
          continue := false
        end
        else begin
          bump source.[!i];
          incr i
        end
      done
    end
    else incr i
  in
  let skip_comment () =
    (* at "(*" *)
    let start_line = !line in
    let buf = Buffer.create 64 in
    i := !i + 2;
    let depth = ref 1 in
    while !depth > 0 && !i < n do
      if !i + 1 < n && source.[!i] = '(' && source.[!i + 1] = '*' then begin
        incr depth;
        Buffer.add_string buf "(*";
        i := !i + 2
      end
      else if !i + 1 < n && source.[!i] = '*' && source.[!i + 1] = ')' then begin
        decr depth;
        if !depth > 0 then Buffer.add_string buf "*)";
        i := !i + 2
      end
      else begin
        bump source.[!i];
        Buffer.add_char buf source.[!i];
        incr i
      end
    done;
    let end_line = !line in
    match parse_body (Buffer.contents buf) with
    | None -> ()
    | Some (Error msg) -> malformed := (start_line, msg) :: !malformed
    | Some (Ok (rules, reason)) ->
      if rules = [] then
        malformed := (start_line, "no rule names given") :: !malformed
      else if reason = "" then
        malformed :=
          (start_line, "missing rationale (text after `—`)") :: !malformed
      else
        suppressions :=
          { s_line_start = start_line; s_line_end = end_line; rules; reason;
            used = false }
          :: !suppressions
  in
  while !i < n do
    let c = source.[!i] in
    if c = '"' then skip_string ()
    else if c = '{' then skip_quoted_string ()
    else if c = '(' && !i + 1 < n && source.[!i + 1] = '*' then skip_comment ()
    else if c = '\'' then begin
      (* Char literal ('x' or '\...') vs prime in an identifier/tyvar. *)
      if !i > 0 && is_ident_char source.[!i - 1] then incr i
      else if !i + 2 < n && source.[!i + 1] = '\\' then begin
        (* escape: skip to closing quote *)
        i := !i + 2;
        while !i < n && source.[!i] <> '\'' do bump source.[!i]; incr i done;
        incr i
      end
      else if !i + 2 < n && source.[!i + 2] = '\'' then begin
        bump source.[!i + 1];
        i := !i + 3
      end
      else incr i
    end
    else begin
      bump c;
      incr i
    end
  done;
  { suppressions = List.rev !suppressions; malformed = List.rev !malformed }

let covers scan ~rule ~line =
  match
    List.find_opt
      (fun s ->
        line >= s.s_line_start
        && line <= s.s_line_end + 1
        && List.mem rule s.rules)
      scan.suppressions
  with
  | Some s ->
    s.used <- true;
    true
  | None -> false

let unused scan =
  List.filter (fun s -> not s.used) scan.suppressions
