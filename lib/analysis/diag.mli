(** The diagnostic record shared by every dgmc linter.

    Both [dgmc_analyze] (OCaml source analysis) and [dgmc_lint]
    (scenario scripts) emit this shape, so downstream tooling — the CI
    baseline diff, editors, dashboards — parses one format.  The JSON
    rendering is one record of the [dgmc-analyze/1] schema. *)

type severity = Error | Warning

type t = {
  file : string;
  line : int;  (** 1-based; 0 means the file as a whole. *)
  col : int;  (** 0-based column of the offending expression. *)
  rule : string;  (** Rule identifier, e.g. ["poly-compare"]. *)
  severity : severity;
  message : string;
}

val severity_name : severity -> string

val compare : t -> t -> int
(** Order by (file, line, col, rule, message) — the stable output
    order. *)

val render : t -> string
(** ["file:line:col: severity: rule: message"] — compiler style. *)

val json : t -> string
(** One JSON object per record (strings escaped via {!Sim.Json}). *)
