type status = New | Baselined

type result = {
  diags : (Diag.t * status) list;  (* sorted by Diag.compare *)
  suppressed : int;
  files_scanned : int;
  unused_suppressions : (string * Suppress.t) list;
}

(* ------------------------------------------------------------------ *)
(* File discovery *)

let skip_dir name =
  name = "_build" || name = "analysis_fixtures"
  || (String.length name > 0 && name.[0] = '.')

let gather_files paths =
  let out = ref [] in
  let rec walk p =
    if Sys.is_directory p then
      Array.iter
        (fun entry ->
          let child = Filename.concat p entry in
          if Sys.is_directory child then begin
            if not (skip_dir entry) then walk child
          end
          else if Filename.check_suffix entry ".ml" then out := child :: !out)
        (Sys.readdir p)
    else if Filename.check_suffix p ".ml" then out := p :: !out
    else ()
  in
  List.iter walk paths;
  List.sort_uniq String.compare !out

(* ------------------------------------------------------------------ *)

let analyze ?(enabled = fun _ -> true) paths =
  let files = List.map Scan.load (gather_files paths) in
  let env = Scan.env_of files in
  let suppressed = ref 0 in
  let unused = ref [] in
  let raw =
    List.concat_map
      (fun (f : Scan.file) ->
        let kept =
          List.filter
            (fun (d : Diag.t) ->
              if
                d.rule = Rules.name Rules.Parse_error
                || d.rule = "suppression-syntax"
              then true (* not suppressible *)
              else if Suppress.covers f.sup ~rule:d.rule ~line:d.line then begin
                incr suppressed;
                false
              end
              else true)
            (Scan.check env ~enabled f)
        in
        List.iter
          (fun s -> unused := (f.path, s) :: !unused)
          (Suppress.unused f.sup);
        kept)
      files
  in
  let sorted = List.sort Diag.compare raw in
  (sorted, !suppressed, List.length files, List.rev !unused)

let against_baseline baseline (sorted, suppressed, files_scanned, unused) =
  (* Findings are sorted, so same (file, rule) groups are contiguous in
     line order; the first [baseline count] of each group are treated as
     pre-existing, anything beyond is new. *)
  let seen = Hashtbl.create 64 in
  let diags =
    List.map
      (fun (d : Diag.t) ->
        let key = (d.file, d.rule) in
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt seen key) in
        Hashtbl.replace seen key n;
        let status =
          if n <= Baseline.count baseline ~file:d.file ~rule:d.rule then
            Baselined
          else New
        in
        (d, status))
      sorted
  in
  { diags; suppressed; files_scanned; unused_suppressions = unused }

let run ?enabled ~baseline paths =
  against_baseline baseline (analyze ?enabled paths)

let new_count r =
  List.length (List.filter (fun (_, s) -> s = New) r.diags)

(* ------------------------------------------------------------------ *)
(* Rendering *)

let render_human ?(show_baselined = false) r =
  let b = Buffer.create 1024 in
  List.iter
    (fun ((d : Diag.t), status) ->
      match status with
      | New -> Buffer.add_string b (Diag.render d ^ "\n")
      | Baselined ->
        if show_baselined then
          Buffer.add_string b (Diag.render d ^ " [baseline]\n"))
    r.diags;
  let news = new_count r in
  Buffer.add_string b
    (Printf.sprintf
       "%d finding%s (%d new, %d baselined, %d suppressed) in %d files\n"
       (List.length r.diags)
       (if List.length r.diags = 1 then "" else "s")
       news
       (List.length r.diags - news)
       r.suppressed r.files_scanned);
  Buffer.contents b

let render_json r =
  let finding ((d : Diag.t), status) =
    let record = Diag.json d in
    (* Splice the status into the shared diagnostic record. *)
    String.sub record 0 (String.length record - 1)
    ^ Printf.sprintf {|, "status": "%s"}|}
        (match status with New -> "new" | Baselined -> "baseline")
  in
  Printf.sprintf
    {|{
  "schema": "dgmc-analyze/1",
  "kind": "report",
  "files_scanned": %d,
  "suppressed": %d,
  "new": %d,
  "findings": [
%s
  ]
}
|}
    r.files_scanned r.suppressed (new_count r)
    (String.concat ",\n" (List.map (fun f -> "    " ^ finding f) r.diags))
