(** Per-site suppression comments for [dgmc_analyze].

    Syntax, anywhere a comment is legal:

    {v (* dgmc-analyze: allow <rule>[, <rule>...] — reason *) v}

    The rationale after the em-dash (a [--] also works) is mandatory.
    A suppression covers findings of the named rules on the lines the
    comment spans and on the line immediately following it, so it can
    sit at the end of the offending line or alone on the line above. *)

type t = {
  s_line_start : int;
  s_line_end : int;
  rules : string list;
  reason : string;
  mutable used : bool;
}

type scan = {
  suppressions : t list;
  malformed : (int * string) list;
      (** [dgmc-analyze:] comments that do not parse (missing rule names
          or missing rationale), with the line they start on. *)
}

val scan : string -> scan
(** Scan raw source text.  Comments are found with a minimal OCaml
    surface lexer (strings, quoted strings, char literals, nested
    comments). *)

val covers : scan -> rule:string -> line:int -> bool
(** Whether a suppression for [rule] covers [line]; marks it used. *)

val unused : scan -> t list
(** Suppressions that matched no finding (candidates for removal). *)
