(* The baseline is a committed inventory of accepted pre-existing
   findings, keyed by (file, rule) with a count.  Counts (rather than
   line numbers) survive unrelated edits to the same file; a rule firing
   more often than its baseline count in a file is a NEW finding and
   fails the run.  Fixing findings leaves the baseline stale on the
   generous side — regenerate with --update-baseline to ratchet down. *)

type entry = { b_file : string; b_rule : string; b_count : int }

type t = entry list

let empty = []

let compare_entry a b =
  match String.compare a.b_file b.b_file with
  | 0 -> String.compare a.b_rule b.b_rule
  | c -> c

let of_diags diags =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (d : Diag.t) ->
      let key = (d.file, d.rule) in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    diags;
  Hashtbl.fold (fun (f, r) n acc -> { b_file = f; b_rule = r; b_count = n } :: acc) tbl []
  |> List.sort compare_entry

let count t ~file ~rule =
  match
    List.find_opt (fun e -> e.b_file = file && e.b_rule = rule) t
  with
  | Some e -> e.b_count
  | None -> 0

let to_string t =
  let entry e =
    Printf.sprintf {|    {"file": "%s", "rule": "%s", "count": %d}|}
      (Sim.Json.escape e.b_file) (Sim.Json.escape e.b_rule) e.b_count
  in
  Printf.sprintf
    {|{
  "schema": "dgmc-analyze/1",
  "kind": "baseline",
  "entries": [
%s
  ]
}
|}
    (String.concat ",\n" (List.map entry t))

let of_json json =
  let open Sim.Json in
  match member "schema" json with
  | Some (Str "dgmc-analyze/1") -> (
    match Option.bind (member "entries" json) to_list with
    | None -> Error "baseline: missing entries array"
    | Some entries ->
      let parse_entry e =
        match
          ( Option.bind (member "file" e) to_string,
            Option.bind (member "rule" e) to_string,
            Option.bind (member "count" e) to_int )
        with
        | Some b_file, Some b_rule, Some b_count ->
          Ok { b_file; b_rule; b_count }
        | _ -> Error "baseline: entry needs file, rule, count"
      in
      List.fold_left
        (fun acc e ->
          match (acc, parse_entry e) with
          | Ok l, Ok x -> Ok (x :: l)
          | (Error _ as err), _ | _, (Error _ as err) -> err)
        (Ok []) entries
      |> Result.map List.rev)
  | _ -> Error "baseline: schema is not dgmc-analyze/1"

let load path =
  if not (Sys.file_exists path) then Ok empty
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Sim.Json.parse s with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok json -> of_json json
  end

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
