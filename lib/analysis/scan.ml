(* AST-level rule checks over one parsed source file.

   The scanner works on the Parsetree (compiler-libs), not the typed
   tree: rules are deliberately syntactic approximations, tuned so that
   every hit is either a true positive, a site worth a written
   suppression rationale, or a pre-existing finding held in the
   committed baseline.  See DESIGN.md §5 for the catalogue. *)

open Parsetree

type file = {
  path : string;
  modname : string;
  source : string;
  structure : structure;
  parse_error : Diag.t option;
  sup : Suppress.scan;
  top_mutables : (string * int) list;  (* name -> definition line *)
  top_refs : (string * string list) list;  (* top binding -> idents used *)
  top_defs : (string * int) list;  (* every top-level binding name -> line *)
}

type env = {
  (* Every top-level mutable binding across the analyzed file set:
     (module name, value name, file, definition line). *)
  globals : (string * string * string * int) list;
}

(* ------------------------------------------------------------------ *)
(* Longident / expression helpers *)

let path_of_lid lid = String.concat "." (Longident.flatten lid)

let path_of_expr e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (path_of_lid txt)
  | _ -> None

let head_path e =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> path_of_expr f
  | _ -> path_of_expr e

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let line_col (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

(* All identifier paths referenced anywhere under an expression. *)
let idents_of_expr e =
  let acc = ref [] in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> acc := path_of_lid txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  iter.expr iter e;
  !acc

(* ------------------------------------------------------------------ *)
(* Loading and per-file collection *)

let mutable_ctors =
  [
    "ref";
    "Stdlib.ref";
    "Hashtbl.create";
    "Buffer.create";
    "Queue.create";
    "Stack.create";
    "Bytes.create";
    "Bytes.make";
    "Array.make";
    "Array.init";
    "Array.create_float";
  ]

let rec mutable_kind e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> mutable_kind e
  | Pexp_apply (f, _) -> (
    match path_of_expr f with
    | Some p when List.mem p mutable_ctors -> Some p
    | _ -> None)
  | _ -> None

let top_level_bindings structure =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.filter_map
          (fun vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } -> Some (txt, vb)
            | _ -> None)
          vbs
      | _ -> [])
    structure

let modname_of_path path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

let load path =
  let source =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let sup = Suppress.scan source in
  let structure, parse_error =
    let lexbuf = Lexing.from_string source in
    Location.init lexbuf path;
    match Parse.implementation lexbuf with
    | s -> (s, None)
    | exception exn ->
      let line =
        match exn with
        | Syntaxerr.Error _ -> lexbuf.lex_curr_p.pos_lnum
        | _ -> 0
      in
      ( [],
        Some
          {
            Diag.file = path;
            line;
            col = 0;
            rule = Rules.name Rules.Parse_error;
            severity = Diag.Error;
            message = Printexc.to_string exn;
          } )
  in
  let tops = top_level_bindings structure in
  let top_mutables =
    List.filter_map
      (fun (name, vb) ->
        match mutable_kind vb.pvb_expr with
        | Some _ -> Some (name, fst (line_col vb.pvb_loc))
        | None -> None)
      tops
  in
  let top_refs = List.map (fun (name, vb) -> (name, idents_of_expr vb.pvb_expr)) tops in
  let top_defs = List.map (fun (name, vb) -> (name, fst (line_col vb.pvb_loc))) tops in
  {
    path;
    modname = modname_of_path path;
    source;
    structure;
    parse_error;
    sup;
    top_mutables;
    top_refs;
    top_defs;
  }

let env_of files =
  {
    globals =
      List.concat_map
        (fun f ->
          List.map
            (fun (name, line) -> (f.modname, name, f.path, line))
            f.top_mutables)
        files;
  }

(* ------------------------------------------------------------------ *)
(* Rules *)

let sort_fns =
  [
    "List.sort";
    "List.sort_uniq";
    "List.stable_sort";
    "List.fast_sort";
    "Array.sort";
    "Array.stable_sort";
    "Array.fast_sort";
  ]

let head_is_sort e =
  match head_path e with Some p -> List.mem p sort_fns | None -> false

let in_sorted_context ancestors =
  List.exists
    (fun a ->
      match a.pexp_desc with
      | Pexp_apply (f, args) -> (
        match path_of_expr f with
        | Some p when List.mem p sort_fns -> true
        | Some ("|>" | "@@") -> List.exists (fun (_, arg) -> head_is_sort arg) args
        | _ -> false)
      | _ -> false)
    ancestors

let rec is_compound e =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ -> true
  | Pexp_construct (_, Some _) -> true
  | Pexp_variant (_, Some _) -> true
  | Pexp_constraint (e, _) -> is_compound e
  | _ -> false

let printf_like path =
  let last =
    match String.rindex_opt path '.' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  let last = String.lowercase_ascii last in
  let contains_sub s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  contains_sub last "printf" || last = "failf" || last = "sprintf"

(* Conversion specs in a format literal that print floats without
   round-tripping.  Allowed: %h / %H always, and %g with precision
   exactly 17. *)
let bad_float_specs s =
  let n = String.length s in
  let bad = ref [] in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '%' then begin
      let start = !i in
      incr i;
      (* flags *)
      while
        !i < n
        && (match s.[!i] with
           | '-' | '+' | ' ' | '#' | '0' -> true
           | _ -> false)
      do
        incr i
      done;
      (* width *)
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do incr i done;
      if !i < n && s.[!i] = '*' then incr i;
      (* precision *)
      let precision = ref None in
      if !i < n && s.[!i] = '.' then begin
        incr i;
        let p0 = !i in
        while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do incr i done;
        precision := Some (String.sub s p0 (!i - p0))
      end;
      if !i < n then begin
        (match s.[!i] with
        | 'f' | 'F' | 'e' | 'E' ->
          bad := String.sub s start (!i - start + 1) :: !bad
        | 'g' | 'G' ->
          (match !precision with
          | Some "17" -> ()
          | Some _ | None ->
            bad := String.sub s start (!i - start + 1) :: !bad)
        | _ -> ());
        incr i
      end
    end
    else incr i
  done;
  List.rev !bad

let pool_entry_points path =
  match String.rindex_opt path '.' with
  | Some i ->
    let last = String.sub path (i + 1) (String.length path - i - 1) in
    let prefix = String.sub path 0 i in
    let pool =
      prefix = "Pool"
      || (String.length prefix >= 5
         && String.sub prefix (String.length prefix - 5) 5 = ".Pool")
      || starts_with ~prefix:"Runner.Pool" path
    in
    (pool && List.mem last [ "map"; "map_timed"; "run"; "run_batch" ])
    || path = "Domain.spawn"
  | None -> false

let dls_guarded refs =
  List.exists
    (fun r ->
      starts_with ~prefix:"Domain.DLS" r
      || starts_with ~prefix:"Mutex." r
      || starts_with ~prefix:"Atomic." r)
    refs

(* ------------------------------------------------------------------ *)

let check env ~enabled file =
  let diags = ref [] in
  let add ~loc rule message =
    let line, col = line_col loc in
    diags :=
      {
        Diag.file = file.path;
        line;
        col;
        rule = Rules.name rule;
        severity = Diag.Error;
        message;
      }
      :: !diags
  in
  let on = enabled in
  let defines_compare_before line =
    List.exists (fun (n, l) -> n = "compare" && l < line) file.top_defs
  in
  let check_capture ~loc ~callee arg_expr =
    (* Identifiers reachable from the closure, one level deep through
       same-file top-level bindings. *)
    let direct = idents_of_expr arg_expr in
    let via_top =
      List.concat_map
        (fun r ->
          match List.assoc_opt r file.top_refs with
          | Some refs -> refs
          | None -> [])
        direct
    in
    let refs = direct @ via_top in
    if not (dls_guarded refs) then begin
      let hits =
        List.filter_map
          (fun r ->
            let matches (m, n, _, _) =
              (r = n && m = file.modname) || r = m ^ "." ^ n
            in
            match List.find_opt matches env.globals with
            | Some (_, n, gfile, gline) -> Some (n, gfile, gline)
            | None -> None)
          refs
        |> List.sort_uniq (fun (a, af, al) (b, bf, bl) ->
               match String.compare a b with
               | 0 -> (
                 match String.compare af bf with
                 | 0 -> Int.compare al bl
                 | c -> c)
               | c -> c)
      in
      List.iter
        (fun (n, gfile, gline) ->
          add ~loc Rules.Domain_unsafe_capture
            (Printf.sprintf
               "closure passed to %s captures top-level mutable `%s` \
                (defined at %s:%d); route it through Domain.DLS, a mutex, \
                or pass it explicitly per task"
               callee n gfile gline))
        hits
    end
  in
  let ancestors = ref [] in
  let expr_rules e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
      let p = path_of_lid txt in
      if on Rules.Nondet_source then begin
        if starts_with ~prefix:"Random." p
           && not (starts_with ~prefix:"Random.State." p)
        then
          add ~loc Rules.Nondet_source
            (Printf.sprintf
               "`%s` draws from the ambient global RNG; derive a stream \
                from Sim.Rng instead" p)
        else if List.mem p [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]
        then
          add ~loc Rules.Nondet_source
            (Printf.sprintf
               "`%s` reads the wall clock; simulation logic must use the \
                sim clock (timing measurements need a suppression with \
                rationale)" p)
        else if List.mem p [ "Hashtbl.hash"; "Hashtbl.seeded_hash" ] then
          add ~loc Rules.Nondet_source
            (Printf.sprintf
               "`%s` is representation-sensitive (floats, cycles); use a \
                typed hash or suppress with a rationale" p)
      end;
      if on Rules.Poly_compare then begin
        match txt with
        | Longident.Lident "compare"
          when not (defines_compare_before (fst (line_col loc))) ->
          add ~loc Rules.Poly_compare
            "polymorphic `compare`; use a typed comparison \
             (Int.compare, Float.compare, a per-type compare, ...)"
        | _ when p = "Stdlib.compare" ->
          add ~loc Rules.Poly_compare
            "`Stdlib.compare` is polymorphic; use a typed comparison"
        | _ -> ()
      end)
    | Pexp_apply (f, args) -> (
      (match path_of_expr f with
      | Some p when on Rules.Iteration_order
                    && (p = "Hashtbl.iter" || p = "Hashtbl.fold") ->
        if not (in_sorted_context !ancestors) then
          add ~loc:e.pexp_loc Rules.Iteration_order
            (Printf.sprintf
               "`%s` enumerates in unspecified order; sort the result \
                before it feeds output or state (or suppress with a \
                rationale if the accumulation is order-insensitive)" p)
      | Some p when on Rules.Domain_unsafe_capture && pool_entry_points p ->
        List.iter
          (fun (_, arg) ->
            let rec closure_like a =
              match a.pexp_desc with
              | Pexp_fun _ | Pexp_function _ -> Some a
              | Pexp_constraint (a, _) -> closure_like a
              | Pexp_ident { txt = Longident.Lident n; _ }
                when List.mem_assoc n file.top_refs ->
                Some a
              | _ -> None
            in
            match closure_like arg with
            | Some a -> check_capture ~loc:a.pexp_loc ~callee:p a
            | None -> ())
          args
      | Some ("=" | "<>") when on Rules.Poly_compare ->
        if List.exists (fun (_, a) -> is_compound a) args then
          add ~loc:e.pexp_loc Rules.Poly_compare
            "polymorphic (=)/(<>) on a structured value; use a typed \
             equality"
      | Some p when on Rules.Float_format && printf_like p ->
        List.iter
          (fun (_, arg) ->
            match arg.pexp_desc with
            | Pexp_constant (Pconst_string (s, _, _)) ->
              (* Anchor at the call, not the literal: multi-line printf
                 applications keep the suppression next to the call. *)
              List.iter
                (fun spec ->
                  add ~loc:e.pexp_loc Rules.Float_format
                    (Printf.sprintf
                       "float printed with `%s`, which does not \
                        round-trip; schema output needs %%.17g or %%h \
                        (human-facing output needs a suppression with \
                        rationale)" spec))
                (bad_float_specs s)
            | _ -> ())
          args
      | _ -> ())
      [@warning "-4"])
    | _ -> ())
    [@warning "-4"]
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          expr_rules e;
          ancestors := e :: !ancestors;
          Ast_iterator.default_iterator.expr it e;
          ancestors := List.tl !ancestors);
    }
  in
  iter.structure iter file.structure;
  let parse = match file.parse_error with Some d -> [ d ] | None -> [] in
  let malformed =
    List.map
      (fun (line, msg) ->
        {
          Diag.file = file.path;
          line;
          col = 0;
          rule = "suppression-syntax";
          severity = Diag.Warning;
          message = "malformed dgmc-analyze comment: " ^ msg;
        })
      file.sup.Suppress.malformed
  in
  parse @ malformed @ List.rev !diags
