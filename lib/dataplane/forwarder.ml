type port = { mutable busy_until : float; mutable queued : int }

type t = {
  engine : Sim.Engine.t;
  graph : Net.Graph.t;
  bandwidth : float;
  queue_capacity : int;
  prop_of_weight : float -> float;
  ports : (int * int, port) Hashtbl.t;  (** keyed by (from, to): directed. *)
  mutable sent : int;
  mutable dropped : int;
}

let create ~engine ~graph ?(bandwidth = 100e6) ?(queue_capacity = 64)
    ?(prop_of_weight = fun w -> w *. 1e-4) () =
  if bandwidth <= 0.0 then invalid_arg "Forwarder.create: bandwidth <= 0";
  if queue_capacity < 1 then invalid_arg "Forwarder.create: queue_capacity < 1";
  {
    engine;
    graph;
    bandwidth;
    queue_capacity;
    prop_of_weight;
    ports = Hashtbl.create 64;
    sent = 0;
    dropped = 0;
  }

let port t u v =
  match Hashtbl.find_opt t.ports (u, v) with
  | Some p -> p
  | None ->
    let p = { busy_until = 0.0; queued = 0 } in
    Hashtbl.replace t.ports (u, v) p;
    p

(* Transmit one packet from [u] to [v]; [k] runs at arrival time (or
   never, if the packet is dropped or the link is down). *)
let transmit t ~u ~v ~size_bits k =
  t.sent <- t.sent + 1;
  if not (Net.Graph.link_is_up t.graph u v) then t.dropped <- t.dropped + 1
  else begin
    let p = port t u v in
    if p.queued >= t.queue_capacity then t.dropped <- t.dropped + 1
    else begin
      let now = Sim.Engine.now t.engine in
      let tx_time = size_bits /. t.bandwidth in
      let start = Float.max now p.busy_until in
      p.busy_until <- start +. tx_time;
      p.queued <- p.queued + 1;
      let done_at = start +. tx_time in
      ignore
        (Sim.Engine.schedule_at t.engine ~time:done_at (fun () ->
             p.queued <- p.queued - 1));
      let arrival = done_at +. t.prop_of_weight (Net.Graph.weight t.graph u v) in
      ignore (Sim.Engine.schedule_at t.engine ~time:arrival (fun () -> k ()))
    end
  end

let multicast t ~tree ~src ~size_bits ~on_deliver =
  if not (Mctree.Tree.mem_node tree src) then
    invalid_arg "Forwarder.multicast: source not on tree";
  let rec forward ~at_node ~from =
    if Mctree.Tree.is_terminal tree at_node && at_node <> src then
      on_deliver ~receiver:at_node ~at:(Sim.Engine.now t.engine);
    Mctree.Tree.Int_set.iter
      (fun next ->
        if (match from with Some p -> p <> next | None -> true) then
          transmit t ~u:at_node ~v:next ~size_bits (fun () ->
              forward ~at_node:next ~from:(Some at_node)))
      (Mctree.Tree.neighbors tree at_node)
  in
  forward ~at_node:src ~from:None

let unicast t ~path ~size_bits ~on_deliver =
  match path with
  | [] -> invalid_arg "Forwarder.unicast: empty path"
  | [ _ ] -> on_deliver ~at:(Sim.Engine.now t.engine)
  | first :: _ ->
    let rec hop = function
      | u :: (v :: _ as rest) ->
        transmit t ~u ~v ~size_bits (fun () -> hop rest)
      | [ _ ] | [] -> on_deliver ~at:(Sim.Engine.now t.engine)
    in
    ignore first;
    hop path

let packets_sent t = t.sent

let packets_dropped t = t.dropped

let reset_counters t =
  t.sent <- 0;
  t.dropped <- 0

module Sink = struct
  type sink = { mutable arrivals : float list }

  let create () = { arrivals = [] }

  let record s ~at = s.arrivals <- at :: s.arrivals

  let received s = List.length s.arrivals

  let gaps s =
    let sorted = List.sort Float.compare (List.rev s.arrivals) in
    let rec pairwise = function
      | a :: (b :: _ as rest) -> (b -. a) :: pairwise rest
      | [ _ ] | [] -> []
    in
    pairwise sorted

  let mean_gap s =
    match gaps s with [] -> 0.0 | gs -> Metrics.Stats.mean gs

  let jitter s =
    match gaps s with
    | [] -> 0.0
    | gs ->
      let m = Metrics.Stats.mean gs in
      Metrics.Stats.mean (List.map (fun g -> Float.abs (g -. m)) gs)
end

let cbr t ~tree ~src ~rate_pps ~size_bits ~count ~sinks =
  if rate_pps <= 0.0 then invalid_arg "Forwarder.cbr: rate <= 0";
  let interval = 1.0 /. rate_pps in
  let deliver ~receiver ~at =
    match List.assoc_opt receiver sinks with
    | Some sink -> Sink.record sink ~at
    | None -> ()
  in
  for i = 0 to count - 1 do
    ignore
      (Sim.Engine.schedule t.engine
         ~delay:(float_of_int i *. interval)
         (fun () -> multicast t ~tree ~src ~size_bits ~on_deliver:deliver))
  done
