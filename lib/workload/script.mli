(** Scenario scripts: drive a simulation from a plain-text description.

    The CLI's [script] subcommand runs files in this format; tests and
    bug reports can thus describe a reproducible scenario without
    writing OCaml.  Format, one directive per line ([#] comments and
    blank lines ignored):

    {v
    # network and regime
    graph waxman 30 seed=5        # or: grid R C | ring N | line N | star N
    config atm                    # or: wan

    # optional fault plan; its presence switches flooding to Reliable
    faults drop=0.3 dup=0.1 reorder=0.2 jitter=0.5 seed=7

    # connections: id and type
    mc 1 symmetric                # or: receiver-only | asymmetric

    # timed events; time is seconds, or rounds with an 'r' suffix
    at 0    join 3 mc=1           # role defaults by MC type
    at 0.1r join 5 mc=1 role=sender
    at 2r   leave 3 mc=1
    at 3r   linkdown 2 7
    at 4r   linkup 2 7

    # mobility churn: walkers whose attachment point roams, link-fade
    # waves that always heal ({!Churn}); expands into ordinary events
    churn mc=1 members=3 moves=4 period=1r waves=2 wave-links=1 wave-period=3r seed=9
    v}

    Times with the [r] suffix are multiples of the protocol round
    ([Tf + Tc]) of the scripted graph and regime; [churn]'s [period],
    [start] and [wave-period] take the same literals ([period] defaults
    to [1r], [wave-period] to [period]). *)

type t = {
  graph : Net.Graph.t;
  config : Dgmc.Config.t;
  mcs : Dgmc.Mc_id.t list;
  events : Events.t list;
  faults : Faults.Plan.spec option;
      (** When set, {!build} runs the network under this fault plan with
          [Reliable] flooding (overriding [config.flood_mode]). *)
  fault_seed : int;  (** Seed of the fault plan's random stream. *)
  health : Health.Config.t option;
      (** When set (a [health] directive), {!build} enables the
          link-health layer: scripted link events become ground truth
          the hello detectors must discover. *)
}

val parse : string -> (t, string) result
(** Parse a script from its text.  The error carries the line number and
    a description. *)

val graph_of_args : line:int -> string list -> (Net.Graph.t, string) result
(** Build the graph a [graph] directive's arguments denote (e.g.
    [["ring"; "6"]]).  Shared with the scenario linter ([Check.
    Scenario_lint]) so linting and running agree on the network. *)

val faults_of_args :
  line:int -> string list -> (Faults.Plan.spec * int, string) result
(** Parse a [faults] directive's arguments (e.g. [["drop=0.3"; "seed=7"]])
    into a fault spec and plan seed.  Shared with the linter. *)

type churn_directive = {
  churn_mc : Dgmc.Mc_id.t;
  churn_members : int;
  churn_moves : int;
  churn_period : float * bool;  (** (value, round-denominated?). *)
  churn_start : float * bool;
  churn_waves : int;
  churn_wave_links : int;
  churn_wave_period : (float * bool) option;  (** [None]: one [period]. *)
  churn_seed : int;
}
(** A [churn] directive as written — times unresolved, since the round
    length needs the graph and regime. *)

val churn_allowed_keys : string list
(** The option keys a [churn] directive accepts. *)

val churn_of_args :
  line:int ->
  mcs:Dgmc.Mc_id.t list ->
  string list ->
  (churn_directive, string) result
(** Parse a [churn] directive's [key=value] arguments against the MCs
    declared so far.  Shared with the linter. *)

val churn_spec :
  graph:Net.Graph.t -> config:Dgmc.Config.t -> churn_directive -> Churn.spec
(** Resolve the directive's round-denominated times against the graph
    and regime.  [Churn.generate] with [Sim.Rng.create churn_seed] then
    yields exactly the events {!parse} appends. *)

type health_directive = {
  h_period : float * bool;  (** (value, round-denominated?). *)
  h_grace : (float * bool) option;
  h_detector : Health.Detector.kind;
  h_reup : int option;
  h_damping : bool;
  h_damp_penalty : float;
  h_damp_suppress : float;
  h_damp_reuse : float;
  h_damp_half_life : (float * bool) option;  (** [None]: 4 rounds. *)
  h_pace : (float * bool) option;  (** Min-interval; presence enables pacing. *)
  h_pace_cap : int;
  h_horizon : (float * bool) option;  (** [None]: derived from the events. *)
}
(** A [health] directive as written — times unresolved. *)

val health_allowed_keys : string list
(** The option keys a [health] directive accepts. *)

val health_of_args :
  line:int -> string list -> (health_directive, string) result
(** Parse a [health] directive's [key=value] arguments (defaults:
    [period=0.5r], [detector=k:3], no damping, no pacing).  Shared with
    the linter and the CLI's [--health] flag. *)

val last_event_time : Events.t list -> float
(** Time of the latest event, 0 when the list is empty — the anchor for
    {!health_config}'s derived horizon. *)

val health_config :
  graph:Net.Graph.t ->
  config:Dgmc.Config.t ->
  last_event:float ->
  health_directive ->
  Health.Config.t
(** Resolve round-denominated times against the graph and regime.  When
    no explicit horizon was given, it is placed past [last_event] by
    three detection bounds plus ten rounds of convergence slack. *)

val load : string -> (t, string) result
(** Read and parse a file. *)

val build :
  ?trace:Sim.Trace.t -> ?metrics:Metrics.Registry.t -> t -> Dgmc.Protocol.t
(** Create the protocol instance and schedule every event {e without}
    running — so callers can attach observers (e.g. [Check.Monitor])
    before the first transition, then [Dgmc.Protocol.run] it.
    [trace]/[metrics] are forwarded to {!Dgmc.Protocol.create}. *)

val run :
  ?trace:Sim.Trace.t -> ?metrics:Metrics.Registry.t -> t -> Dgmc.Protocol.t
(** Build the protocol instance, schedule every event, and run to
    quiescence. *)
