type action =
  | Join of { switch : int; mc : Dgmc.Mc_id.t; role : Dgmc.Member.role }
  | Leave of { switch : int; mc : Dgmc.Mc_id.t }
  | Link_down of int * int
  | Link_up of int * int

type t = { time : float; action : action }

let sort list = List.stable_sort (fun a b -> Float.compare a.time b.time) list

let count = List.length

let is_membership e =
  match e.action with
  | Join _ | Leave _ -> true
  | Link_down _ | Link_up _ -> false

let membership_count list = List.length (List.filter is_membership list)

let span = function
  | [] | [ _ ] -> 0.0
  | list ->
    let times = List.map (fun e -> e.time) list in
    List.fold_left Float.max neg_infinity times
    -. List.fold_left Float.min infinity times

let mcs list =
  List.filter_map
    (fun e ->
      match e.action with
      | Join { mc; _ } | Leave { mc; _ } -> Some mc
      | Link_down _ | Link_up _ -> None)
    list
  |> List.sort_uniq Dgmc.Mc_id.compare

let apply_dgmc net list =
  List.iter
    (fun e ->
      match e.action with
      | Join { switch; mc; role } ->
        Dgmc.Protocol.schedule_join net ~at:e.time ~switch mc role
      | Leave { switch; mc } -> Dgmc.Protocol.schedule_leave net ~at:e.time ~switch mc
      | Link_down (u, v) -> Dgmc.Protocol.schedule_link_down net ~at:e.time u v
      | Link_up (u, v) -> Dgmc.Protocol.schedule_link_up net ~at:e.time u v)
    list

let pp ppf e =
  let describe =
    match e.action with
    | Join { switch; mc; role } ->
      Format.asprintf "join switch=%d %a (%s)" switch Dgmc.Mc_id.pp mc
        (Dgmc.Member.role_to_string role)
    | Leave { switch; mc } -> Format.asprintf "leave switch=%d %a" switch Dgmc.Mc_id.pp mc
    | Link_down (u, v) -> Printf.sprintf "link-down (%d, %d)" u v
    | Link_up (u, v) -> Printf.sprintf "link-up (%d, %d)" u v
  in
  (* dgmc-analyze: allow float-format — human-readable event listing *)
  Format.fprintf ppf "@[<h>[%g] %s@]" e.time describe
