type t = {
  graph : Net.Graph.t;
  config : Dgmc.Config.t;
  mcs : Dgmc.Mc_id.t list;
  events : Events.t list;
  faults : Faults.Plan.spec option;
  fault_seed : int;
  health : Health.Config.t option;
}

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

(* key=value option lookup within a directive's trailing tokens. *)
let opt_value opts key =
  List.find_map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i when String.sub tok 0 i = key ->
        Some (String.sub tok (i + 1) (String.length tok - i - 1))
      | _ -> None)
    opts

(* Every trailing token must be a known key=value option; a typo like
   [role sender] or [mc=1x] surfacing as a silently-defaulted run is far
   worse than a parse error. *)
let check_opts lineno ~allowed opts =
  List.iter
    (fun tok ->
      match String.index_opt tok '=' with
      | None -> fail lineno "unexpected token %S (options are key=value)" tok
      | Some i ->
        let key = String.sub tok 0 i in
        if not (List.mem key allowed) then
          fail lineno "unknown option %S (allowed: %s)" key
            (String.concat ", " allowed))
    opts

let parse_int lineno what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail lineno "%s: expected an integer, got %S" what s

let parse_graph lineno args =
  let num = parse_int lineno "graph size" in
  match args with
  | [ "waxman"; n ] -> Net.Topo_gen.waxman (Sim.Rng.create 1) ~n:(num n) ~target_degree:3.5 ()
  | "waxman" :: n :: opts ->
    check_opts lineno ~allowed:[ "seed" ] opts;
    let seed =
      match opt_value opts "seed" with
      | Some s -> parse_int lineno "seed" s
      | None -> 1
    in
    Net.Topo_gen.waxman (Sim.Rng.create seed) ~n:(num n) ~target_degree:3.5 ()
  | [ "grid"; rows; cols ] -> Net.Topo_gen.grid ~rows:(num rows) ~cols:(num cols) ()
  | [ "ring"; n ] -> Net.Topo_gen.ring (num n)
  | [ "line"; n ] -> Net.Topo_gen.line (num n)
  | [ "star"; n ] -> Net.Topo_gen.star (num n)
  | [ "complete"; n ] -> Net.Topo_gen.complete (num n)
  | kind :: _ -> fail lineno "unknown graph kind %S" kind
  | [] -> fail lineno "graph: missing arguments"

let parse_config lineno = function
  | [ "atm" ] -> Dgmc.Config.atm_lan
  | [ "wan" ] -> Dgmc.Config.wan
  | args -> fail lineno "config: expected 'atm' or 'wan', got %S" (String.concat " " args)

let parse_kind lineno = function
  | "symmetric" -> Dgmc.Mc_id.Symmetric
  | "receiver-only" -> Dgmc.Mc_id.Receiver_only
  | "asymmetric" -> Dgmc.Mc_id.Asymmetric
  | s -> fail lineno "unknown MC type %S" s

let parse_role lineno = function
  | "sender" -> Dgmc.Member.Sender
  | "receiver" -> Dgmc.Member.Receiver
  | "both" -> Dgmc.Member.Both
  | s -> fail lineno "unknown role %S" s

let default_role = function
  | Dgmc.Mc_id.Symmetric -> Dgmc.Member.Both
  | Dgmc.Mc_id.Receiver_only -> Dgmc.Member.Receiver
  | Dgmc.Mc_id.Asymmetric -> Dgmc.Member.Receiver

(* Time literals: plain seconds, or "<x>r" for protocol rounds. *)
let parse_time lineno s =
  let rounds = String.length s > 1 && s.[String.length s - 1] = 'r' in
  let body = if rounds then String.sub s 0 (String.length s - 1) else s in
  match float_of_string_opt body with
  | Some v when v >= 0.0 -> (v, rounds)
  | Some _ -> fail lineno "time must be non-negative"
  | None -> fail lineno "bad time literal %S" s

let find_mc lineno mcs opts =
  match opt_value opts "mc" with
  | None -> fail lineno "event needs mc=<id>"
  | Some id_s ->
    let id = parse_int lineno "mc id" id_s in
    (match List.find_opt (fun (m : Dgmc.Mc_id.t) -> m.id = id) mcs with
    | Some m -> m
    | None -> fail lineno "mc %d not declared (use a 'mc %d <type>' line first)" id id)

let graph_of_args ~line args =
  match parse_graph line args with
  | g -> Ok g
  | exception Parse_error (_, m) -> Error m

type churn_directive = {
  churn_mc : Dgmc.Mc_id.t;
  churn_members : int;
  churn_moves : int;
  churn_period : float * bool;
  churn_start : float * bool;
  churn_waves : int;
  churn_wave_links : int;
  churn_wave_period : (float * bool) option;
  churn_seed : int;
}

let churn_allowed_keys =
  [ "mc"; "members"; "moves"; "period"; "start"; "waves"; "wave-links";
    "wave-period"; "seed" ]

let parse_churn lineno mcs opts =
  check_opts lineno ~allowed:churn_allowed_keys opts;
  let mc = find_mc lineno mcs opts in
  let int_opt key default =
    match opt_value opts key with
    | Some s -> parse_int lineno key s
    | None -> default
  in
  let members =
    match opt_value opts "members" with
    | Some s -> parse_int lineno "members" s
    | None -> fail lineno "churn needs members=<count>"
  in
  let time_opt key default =
    match opt_value opts key with
    | Some s -> parse_time lineno s
    | None -> default
  in
  {
    churn_mc = mc;
    churn_members = members;
    churn_moves = int_opt "moves" 0;
    (* Defaults are round-denominated so one script fits every regime. *)
    churn_period = time_opt "period" (1.0, true);
    churn_start = time_opt "start" (0.0, false);
    churn_waves = int_opt "waves" 0;
    churn_wave_links = int_opt "wave-links" 1;
    churn_wave_period = Option.map (parse_time lineno) (opt_value opts "wave-period");
    churn_seed = int_opt "seed" 1;
  }

let churn_of_args ~line ~mcs args =
  match parse_churn line mcs args with
  | d -> Ok d
  | exception Parse_error (_, m) -> Error m

let churn_spec ~graph ~config d =
  let round = Dgmc.Config.round_length config ~graph in
  let resolve (v, rounds) = if rounds then v *. round else v in
  let period = resolve d.churn_period in
  {
    Churn.mc = d.churn_mc;
    members = d.churn_members;
    moves = d.churn_moves;
    period;
    start = resolve d.churn_start;
    waves = d.churn_waves;
    wave_links = d.churn_wave_links;
    wave_period =
      (match d.churn_wave_period with Some wp -> resolve wp | None -> period);
  }

(* "health period=0.5r detector=k:3 damp=on pace=0.2r" — link-health
   layer configuration; time-valued options take the same second/round
   literals as [at].  Resolution to a [Health.Config.t] waits until the
   graph and regime (hence round length) and the full event list (hence
   the default horizon) are known. *)
type health_directive = {
  h_period : float * bool;
  h_grace : (float * bool) option;
  h_detector : Health.Detector.kind;
  h_reup : int option;
  h_damping : bool;
  h_damp_penalty : float;
  h_damp_suppress : float;
  h_damp_reuse : float;
  h_damp_half_life : (float * bool) option;
  h_pace : (float * bool) option;
  h_pace_cap : int;
  h_horizon : (float * bool) option;
}

let health_allowed_keys =
  [ "period"; "grace"; "detector"; "reup"; "damp"; "damp-penalty";
    "damp-suppress"; "damp-reuse"; "damp-half-life"; "pace"; "pace-cap";
    "horizon" ]

let parse_float lineno what s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail lineno "%s: expected a number, got %S" what s

let parse_detector lineno s =
  match String.split_on_char ':' s with
  | [ ("k" | "k-missed"); k ] -> Health.Detector.K_missed (parse_int lineno "detector k" k)
  | [ "phi"; window; threshold ] ->
    Health.Detector.Phi
      {
        window = parse_int lineno "phi window" window;
        threshold = parse_float lineno "phi threshold" threshold;
      }
  | _ ->
    fail lineno "unknown detector %S (use k:<n> or phi:<window>:<threshold>)" s

let parse_health lineno opts =
  check_opts lineno ~allowed:health_allowed_keys opts;
  let time_opt key = Option.map (parse_time lineno) (opt_value opts key) in
  let float_opt key default =
    match opt_value opts key with
    | Some s -> parse_float lineno key s
    | None -> default
  in
  let damp_keys =
    [ "damp-penalty"; "damp-suppress"; "damp-reuse"; "damp-half-life" ]
  in
  let damping =
    (match opt_value opts "damp" with
    | Some "on" -> true
    | Some "off" -> false
    | Some s -> fail lineno "damp: expected on or off, got %S" s
    | None -> false)
    || List.exists (fun k -> opt_value opts k <> None) damp_keys
  in
  {
    h_period =
      (match time_opt "period" with
      | Some p -> p
      | None -> (0.5, true) (* half a protocol round *));
    h_grace = time_opt "grace";
    h_detector =
      (match opt_value opts "detector" with
      | Some s -> parse_detector lineno s
      | None -> Health.Detector.K_missed 3);
    h_reup = Option.map (parse_int lineno "reup") (opt_value opts "reup");
    h_damping = damping;
    h_damp_penalty = float_opt "damp-penalty" 1.0;
    h_damp_suppress = float_opt "damp-suppress" 3.0;
    h_damp_reuse = float_opt "damp-reuse" 0.75;
    h_damp_half_life = time_opt "damp-half-life";
    h_pace = time_opt "pace";
    h_pace_cap =
      (match opt_value opts "pace-cap" with
      | Some s -> parse_int lineno "pace-cap" s
      | None -> 16);
    h_horizon = time_opt "horizon";
  }

let health_of_args ~line args =
  match parse_health line args with
  | d -> Ok d
  | exception Parse_error (_, m) -> Error m

let last_event_time events =
  List.fold_left (fun acc (e : Events.t) -> Float.max acc e.time) 0.0 events

let health_config ~graph ~config ~last_event d =
  let round = Dgmc.Config.round_length config ~graph in
  let resolve (v, rounds) = if rounds then v *. round else v in
  let damping =
    if d.h_damping then
      Some
        {
          Health.Config.d_penalty = d.h_damp_penalty;
          d_suppress = d.h_damp_suppress;
          d_reuse = d.h_damp_reuse;
          d_half_life =
            (match d.h_damp_half_life with
            | Some hl -> resolve hl
            | None -> 4.0 *. round);
        }
    else None
  in
  let pacing =
    Option.map
      (fun mi ->
        { Health.Config.p_min_interval = resolve mi; p_cap = d.h_pace_cap })
      d.h_pace
  in
  let partial =
    Health.Config.make ~period:(resolve d.h_period)
      ?grace:(Option.map resolve d.h_grace) ~detector:d.h_detector
      ?reup:d.h_reup ?damping ?pacing ~horizon:1.0 ()
  in
  let horizon =
    match d.h_horizon with
    | Some hz -> resolve hz
    | None ->
      (* Past the last scripted event by three detection bounds plus
         convergence slack: enough for the slowest discovery (down, or
         up through reup hellos), then quiescence. *)
      last_event +. (3.0 *. Health.Config.detect_bound partial) +. (10.0 *. round)
  in
  { partial with Health.Config.horizon }

(* "faults drop=0.3 dup=0.1 seed=7" — fault keys go to Faults.Plan's
   parser; [seed] is handled here.  Shared with the linter. *)
let faults_of_args ~line args =
  match
    let seed = ref 1 in
    let fault_args =
      List.filter
        (fun tok ->
          match String.index_opt tok '=' with
          | Some i when String.sub tok 0 i = "seed" ->
            seed :=
              parse_int line "seed"
                (String.sub tok (i + 1) (String.length tok - i - 1));
            false
          | _ -> true)
        args
    in
    match Faults.Plan.spec_of_string (String.concat "," fault_args) with
    | Ok spec -> Ok (spec, !seed)
    | Error m -> raise (Parse_error (line, m))
  with
  | result -> result
  | exception Parse_error (_, m) -> Error m

let parse text =
  try
    let graph = ref None in
    let config = ref Dgmc.Config.atm_lan in
    let faults = ref None in
    let fault_seed = ref 1 in
    let mcs = ref [] in
    let health = ref None in
    (* (time, rounds?, action builder) — resolved once graph+config known. *)
    let events = ref [] in
    (* churn directives expand once the graph and round length are known. *)
    let churns = ref [] in
    List.iteri
      (fun i raw ->
        let lineno = i + 1 in
        let line =
          match String.index_opt raw '#' with
          | Some j -> String.sub raw 0 j
          | None -> raw
        in
        match tokens line with
        | [] -> ()
        | "graph" :: args -> graph := Some (parse_graph lineno args)
        | "config" :: args -> config := parse_config lineno args
        | "faults" :: args -> (
          match faults_of_args ~line:lineno args with
          | Ok (spec, seed) ->
            faults := Some spec;
            fault_seed := seed
          | Error m -> fail lineno "%s" m)
        | [ "mc"; id; kind ] ->
          let id = parse_int lineno "mc id" id in
          if List.exists (fun (m : Dgmc.Mc_id.t) -> m.id = id) !mcs then
            fail lineno "mc %d declared twice" id;
          mcs := Dgmc.Mc_id.make (parse_kind lineno kind) id :: !mcs
        | "at" :: time :: action ->
          let time = parse_time lineno time in
          let act =
            match action with
            | "join" :: sw :: opts ->
              check_opts lineno ~allowed:[ "mc"; "role" ] opts;
              let sw = parse_int lineno "switch" sw in
              let mc = find_mc lineno !mcs opts in
              let role =
                match opt_value opts "role" with
                | Some r -> parse_role lineno r
                | None -> default_role mc.kind
              in
              Events.Join { switch = sw; mc; role }
            | "leave" :: sw :: opts ->
              check_opts lineno ~allowed:[ "mc" ] opts;
              Events.Leave
                {
                  switch = parse_int lineno "switch" sw;
                  mc = find_mc lineno !mcs opts;
                }
            | [ "linkdown"; u; v ] ->
              Events.Link_down (parse_int lineno "u" u, parse_int lineno "v" v)
            | [ "linkup"; u; v ] ->
              Events.Link_up (parse_int lineno "u" u, parse_int lineno "v" v)
            | verb :: _ -> fail lineno "unknown event %S" verb
            | [] -> fail lineno "at: missing event"
          in
          events := (lineno, time, act) :: !events
        | "churn" :: opts -> churns := (lineno, parse_churn lineno !mcs opts) :: !churns
        | "health" :: opts -> health := Some (parse_health lineno opts)
        | verb :: _ -> fail lineno "unknown directive %S" verb)
      (String.split_on_char '\n' text);
    let graph =
      match !graph with
      | Some g -> g
      | None -> raise (Parse_error (0, "missing 'graph' directive"))
    in
    let config = !config in
    (* Validate event targets against the graph, reporting the offending
       line. *)
    let n = Net.Graph.n_nodes graph in
    List.iter
      (fun (lineno, _, action) ->
        match action with
        | Events.Join { switch; _ } | Events.Leave { switch; _ } ->
          if switch < 0 || switch >= n then
            fail lineno "switch %d out of range (graph has %d switches)" switch n
        | Events.Link_down (u, v) | Events.Link_up (u, v) ->
          if not (Net.Graph.has_edge graph u v) then
            fail lineno "no link (%d, %d) in the graph" u v)
      !events;
    let round = Dgmc.Config.round_length config ~graph in
    let churn_events =
      List.concat_map
        (fun (lineno, d) ->
          match
            Churn.generate
              (Sim.Rng.create d.churn_seed)
              ~graph
              (churn_spec ~graph ~config d)
          with
          | evs -> evs
          | exception Invalid_argument m -> fail lineno "%s" m)
        (List.rev !churns)
    in
    let scripted =
      List.rev_map
        (fun (_, (v, rounds), action) ->
          let time = if rounds then v *. round else v in
          { Events.time; action })
        !events
    in
    let events = Events.sort (scripted @ churn_events) in
    let health =
      Option.map
        (fun d ->
          health_config ~graph ~config ~last_event:(last_event_time events) d)
        !health
    in
    Ok
      {
        graph;
        config;
        mcs = List.rev !mcs;
        events;
        faults = !faults;
        fault_seed = !fault_seed;
        health;
      }
  with Parse_error (line, msg) ->
    Error (if line = 0 then msg else Printf.sprintf "line %d: %s" line msg)

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    parse text

let build ?trace ?metrics t =
  (* A scenario with faults needs reliable flooding: the lossless modes
     have no recovery from an injected drop, and the run would diverge
     for reasons that say nothing about the protocol. *)
  let config, faults =
    match t.faults with
    | None -> (t.config, None)
    | Some spec ->
      ( { t.config with flood_mode = Lsr.Flooding.Reliable },
        Some (Faults.Plan.create ~spec ~seed:t.fault_seed ()) )
  in
  let config =
    match t.health with
    | None -> config
    | Some hc -> { config with Dgmc.Config.health = Some hc }
  in
  let net =
    Dgmc.Protocol.create ~graph:t.graph ~config ?faults ?trace ?metrics ()
  in
  Events.apply_dgmc net t.events;
  net

let run ?trace ?metrics t =
  let net = build ?trace ?metrics t in
  Dgmc.Protocol.run net;
  net
