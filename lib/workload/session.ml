type phases = {
  arrivals : Events.t list;
  churn : Events.t list;
  departures : Events.t list;
}

let members_after events =
  List.fold_left
    (fun members (e : Events.t) ->
      match e.action with
      | Events.Join { switch; _ } -> List.sort_uniq Int.compare (switch :: members)
      | Events.Leave { switch; _ } -> List.filter (fun x -> x <> switch) members
      | Events.Link_down _ | Events.Link_up _ -> members)
    [] (Events.sort events)

let lifecycle rng ~n ~mc ~participants ~arrival_window ~churn_events
    ~churn_mean_gap ~departure_window () =
  let arrivals =
    Bursty.joins rng ~n ~mc ~members:participants ~window:arrival_window ()
  in
  let initial = members_after arrivals in
  let churn_start = 2.0 *. arrival_window in
  (* Poisson.membership would emit join events for its [initial] seed;
     those switches are already members, so generate with the seed set
     baked in and drop the seed events. *)
  let churn =
    Poisson.membership rng ~n ~mc ~events:churn_events ~mean_gap:churn_mean_gap
      ~initial ~start:churn_start ()
    |> List.filter (fun (e : Events.t) -> e.time > churn_start)
  in
  let after_churn = members_after (arrivals @ churn) in
  let last_churn =
    List.fold_left (fun acc (e : Events.t) -> Float.max acc e.time) churn_start churn
  in
  let departure_start = last_churn +. churn_mean_gap in
  let departures =
    List.map
      (fun switch ->
        {
          Events.time = departure_start +. Sim.Rng.float rng departure_window;
          action = Events.Leave { switch; mc };
        })
      after_churn
    |> Events.sort
  in
  { arrivals; churn; departures }

let all { arrivals; churn; departures } =
  Events.sort (arrivals @ churn @ departures)
