let membership rng ~n ~mc ~events ~mean_gap ?(initial = []) ?(start = 0.0) () =
  if events < 0 then invalid_arg "Poisson.membership: negative event count";
  if mean_gap <= 0.0 then invalid_arg "Poisson.membership: mean_gap must be positive";
  List.iter
    (fun x ->
      if x < 0 || x >= n then invalid_arg "Poisson.membership: initial out of range")
    initial;
  let role order =
    match mc.Dgmc.Mc_id.kind with
    | Dgmc.Mc_id.Symmetric -> Dgmc.Member.Both
    | Dgmc.Mc_id.Receiver_only -> Dgmc.Member.Receiver
    | Dgmc.Mc_id.Asymmetric ->
      if order = 0 then Dgmc.Member.Sender else Dgmc.Member.Receiver
  in
  let seed_events =
    List.mapi
      (fun order switch ->
        { Events.time = start; action = Events.Join { switch; mc; role = role order } })
      initial
  in
  let members = ref (List.sort_uniq Int.compare initial) in
  let order = ref (List.length initial) in
  let rec generate acc time remaining =
    if remaining = 0 then List.rev acc
    else begin
      let time = time +. Sim.Rng.exponential rng ~mean:mean_gap in
      let non_members =
        List.filter (fun x -> not (List.mem x !members)) (List.init n (fun i -> i))
      in
      let can_join = non_members <> [] in
      let can_leave = List.length !members > 1 in
      let do_join =
        if can_join && can_leave then Sim.Rng.bool rng
        else if can_join then true
        else if can_leave then false
        else true (* n = 1 member and nothing to join: skip below *)
      in
      if do_join && can_join then begin
        let switch = Sim.Rng.pick rng non_members in
        members := List.sort Int.compare (switch :: !members);
        incr order;
        let e =
          {
            Events.time;
            action = Events.Join { switch; mc; role = role (!order - 1) };
          }
        in
        generate (e :: acc) time (remaining - 1)
      end
      else if (not do_join) && can_leave then begin
        let switch = Sim.Rng.pick rng !members in
        members := List.filter (fun x -> x <> switch) !members;
        let e = { Events.time; action = Events.Leave { switch; mc } } in
        generate (e :: acc) time (remaining - 1)
      end
      else List.rev acc
    end
  in
  seed_events @ generate [] start events
