type spec = {
  mc : Dgmc.Mc_id.t;
  members : int;
  moves : int;
  period : float;
  start : float;
  waves : int;
  wave_links : int;
  wave_period : float;
}

let initial_role (mc : Dgmc.Mc_id.t) order =
  match mc.kind with
  | Dgmc.Mc_id.Symmetric -> Dgmc.Member.Both
  | Dgmc.Mc_id.Receiver_only -> Dgmc.Member.Receiver
  | Dgmc.Mc_id.Asymmetric ->
    if order = 0 then Dgmc.Member.Sender else Dgmc.Member.Receiver

(* Is the graph still connected with [cut] (a sorted (u, v) list, u < v)
   removed?  Works on the static edge set — waves never overlap, so at
   any instant only the current wave's links are down. *)
let connected_without graph cut =
  let n = Net.Graph.n_nodes graph in
  if n = 0 then true
  else begin
    let adj = Array.make n [] in
    List.iter
      (fun (e : Net.Graph.edge) ->
        if not (List.mem (e.u, e.v) cut) then begin
          adj.(e.u) <- e.v :: adj.(e.u);
          adj.(e.v) <- e.u :: adj.(e.v)
        end)
      (Net.Graph.edges graph);
    let seen = Array.make n false in
    let rec visit i =
      if not seen.(i) then begin
        seen.(i) <- true;
        List.iter visit adj.(i)
      end
    in
    visit 0;
    Array.for_all Fun.id seen
  end

let validate ~graph spec =
  let n = Net.Graph.n_nodes graph in
  if spec.members < 1 || spec.members > n then
    invalid_arg "Churn.generate: bad member count";
  if spec.moves < 0 then invalid_arg "Churn.generate: negative moves";
  if spec.moves > 0 && spec.members >= n then
    invalid_arg "Churn.generate: moves need a free switch to walk to";
  if spec.period <= 0.0 then invalid_arg "Churn.generate: period must be positive";
  if spec.start < 0.0 then invalid_arg "Churn.generate: negative start";
  if spec.waves < 0 then invalid_arg "Churn.generate: negative waves";
  if spec.waves > 0 && spec.wave_links < 1 then
    invalid_arg "Churn.generate: waves need wave_links >= 1";
  if spec.waves > 0 && spec.wave_period <= 0.0 then
    invalid_arg "Churn.generate: wave_period must be positive"

let generate rng ~graph spec =
  validate ~graph spec;
  let n = Net.Graph.n_nodes graph in
  let all = List.init n (fun i -> i) in
  (* Arrivals: members appear over one period. *)
  let seats = Sim.Rng.sample rng spec.members all in
  let walkers =
    (* (current switch, role, movable).  The asymmetric primary sender is
       the session anchor: everyone else roams around it. *)
    List.mapi
      (fun order switch ->
        let role = initial_role spec.mc order in
        let anchor =
          match spec.mc.Dgmc.Mc_id.kind with
          | Dgmc.Mc_id.Asymmetric -> order = 0
          | Dgmc.Mc_id.Symmetric | Dgmc.Mc_id.Receiver_only -> false
        in
        ref (switch, role, not anchor))
      seats
  in
  let arrivals =
    List.map
      (fun w ->
        let switch, role, _ = !w in
        {
          Events.time = spec.start +. Sim.Rng.float rng spec.period;
          action = Events.Join { switch; mc = spec.mc; role };
        })
      walkers
  in
  (* Moves: a walker migrates its attachment point to an adjacent free
     switch (radio handover); if none is adjacent, it re-appears at any
     free switch (long-range move). *)
  let occupied () = List.map (fun w -> let s, _, _ = !w in s) walkers in
  let moves = ref [] in
  for k = 0 to spec.moves - 1 do
    let time = spec.start +. (spec.period *. float_of_int (k + 1)) in
    let movable = List.filter (fun w -> let _, _, m = !w in m) walkers in
    if movable <> [] then begin
      let w = Sim.Rng.pick rng movable in
      let switch, role, m = !w in
      let taken = occupied () in
      let free x = not (List.mem x taken) in
      let adjacent =
        List.filter free (List.map fst (Net.Graph.neighbors graph switch))
      in
      let candidates = if adjacent <> [] then adjacent else List.filter free all in
      match candidates with
      | [] -> () (* every switch occupied: checked away by validate *)
      | _ ->
        let dst = Sim.Rng.pick rng candidates in
        w := (dst, role, m);
        moves :=
          { Events.time; action = Events.Join { switch = dst; mc = spec.mc; role } }
          :: { Events.time; action = Events.Leave { switch; mc = spec.mc } }
          :: !moves
    end
  done;
  (* Waves: bundles of simultaneous link fades, each healing after half a
     wave period, each chosen to keep the network connected — agreement
     at quiescence is only a fair demand on a connected, healed network,
     and every down has its up, so the schedule always ends healed. *)
  let waves = ref [] in
  for wv = 0 to spec.waves - 1 do
    let time = spec.start +. (spec.wave_period *. float_of_int (wv + 1)) in
    let heal = time +. (spec.wave_period /. 2.0) in
    let cut = ref [] in
    for _ = 1 to spec.wave_links do
      let candidates =
        List.filter
          (fun (e : Net.Graph.edge) ->
            (not (List.mem (e.u, e.v) !cut))
            && connected_without graph ((e.u, e.v) :: !cut))
          (Net.Graph.edges graph)
      in
      match candidates with
      | [] -> () (* no further link can fade without partitioning *)
      | _ ->
        let e = Sim.Rng.pick rng candidates in
        cut := (e.u, e.v) :: !cut;
        waves :=
          { Events.time = heal; action = Events.Link_up (e.u, e.v) }
          :: { Events.time; action = Events.Link_down (e.u, e.v) }
          :: !waves
    done
  done;
  Events.sort (arrivals @ List.rev !moves @ List.rev !waves)
