(** Mobility-grade churn: attachment points that roam and links that fade.

    The other generators treat membership as a set that grows and
    shrinks in place.  Mobile hosts behave differently — an OLSR-style
    node keeps its session while its {e attachment point} migrates
    across the network, and radio fades take whole bundles of links
    down and back up underneath it.  This generator produces both
    patterns as an ordinary {!Events} schedule, so the same mobility
    workload drives the simulator, the monitor, and every baseline:

    - {b Arrivals}: [members] walkers join over one [period] at sampled
      seats (asymmetric MCs seat their primary sender first).
    - {b Moves}: every [period], one walker hands over — a [leave] at
      its seat and a [join] with the same role at an adjacent free
      switch (any free switch when boxed in).  The asymmetric primary
      sender anchors the session and never moves.
    - {b Waves}: every [wave_period], [wave_links] links fade together
      and heal half a period later.  Faded links are chosen to keep the
      network connected, and every down has its up, so the schedule
      ends healed and connected — the precondition for demanding
      agreement at quiescence. *)

type spec = {
  mc : Dgmc.Mc_id.t;
  members : int;  (** Walkers (1 to n; below n when [moves > 0]). *)
  moves : int;  (** Total attachment-point handovers. *)
  period : float;  (** Arrival window and per-move spacing, seconds. *)
  start : float;  (** Schedule origin. *)
  waves : int;  (** Link-fade waves (0 for membership churn only). *)
  wave_links : int;  (** Links fading per wave. *)
  wave_period : float;  (** Wave spacing; each fade heals at half. *)
}

val generate : Sim.Rng.t -> graph:Net.Graph.t -> spec -> Events.t list
(** The schedule, sorted.  Deterministic for a given rng state and
    graph.  Raises [Invalid_argument] on a spec the graph cannot host
    (more walkers than switches, moves with no free switch, or
    non-positive periods). *)
