(** Shared JSON fragment helpers for the machine-diffed outputs of this
    library.  Kept here (rather than depending on [Sim.Json]) because
    Metrics deliberately has no dependency on Sim. *)

val num : float -> string
(** Round-trip float rendering: integral floats below 2{^53} print as
    integers, everything else as [%.17g] (non-finite values as ["0"]) —
    so a printed value parses back to the same float and the JSON stays
    byte-diffable. *)

val escape : string -> string
(** Escape a string for inclusion between JSON double quotes. *)
