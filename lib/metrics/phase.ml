(* Scoped per-phase wall/allocation attribution.  [enter]/[leave] bracket
   a named phase; nested phases accumulate into their parent's child
   totals so snapshots can report self time (= total - children).  The
   disabled singleton makes both calls a single branch with zero
   allocation, so instrumented kernels (Dijkstra, MST, Steiner, flooding
   dispatch, resync) cost nothing in ordinary runs. *)

type cell = {
  mutable c_calls : int;
  mutable c_wall : float;
  mutable c_minor : float;  (* minor words allocated, inclusive *)
  mutable c_child_wall : float;
  mutable c_child_minor : float;
}

type frame = {
  f_name : string;
  f_t0 : float;
  f_m0 : float;
  mutable f_child_wall : float;
  mutable f_child_minor : float;
}

type t = {
  on : bool;
  cells : (string, cell) Hashtbl.t;
  mutable stack : frame list;
  mutable unbalanced : int;
}

let disabled =
  { on = false; cells = Hashtbl.create 1; stack = []; unbalanced = 0 }

let create () =
  { on = true; cells = Hashtbl.create 16; stack = []; unbalanced = 0 }

let enabled t = t.on

let cell_of t name =
  match Hashtbl.find_opt t.cells name with
  | Some c -> c
  | None ->
    let c =
      {
        c_calls = 0;
        c_wall = 0.0;
        c_minor = 0.0;
        c_child_wall = 0.0;
        c_child_minor = 0.0;
      }
    in
    Hashtbl.replace t.cells name c;
    c

let enter t name =
  if t.on then begin
    (* dgmc-analyze: allow nondet-source — wall-clock phase attribution;
       never feeds simulation state *)
    let f_t0 = Unix.gettimeofday () in
    let f_m0 = Gc.minor_words () in
    t.stack <-
      { f_name = name; f_t0; f_m0; f_child_wall = 0.0; f_child_minor = 0.0 }
      :: t.stack
  end

let leave t =
  if t.on then begin
    match t.stack with
    | [] -> t.unbalanced <- t.unbalanced + 1
    | f :: rest ->
      t.stack <- rest;
      (* dgmc-analyze: allow nondet-source — wall-clock phase attribution *)
      let wall = Unix.gettimeofday () -. f.f_t0 in
      let minor = Gc.minor_words () -. f.f_m0 in
      let c = cell_of t f.f_name in
      c.c_calls <- c.c_calls + 1;
      c.c_wall <- c.c_wall +. wall;
      c.c_minor <- c.c_minor +. minor;
      c.c_child_wall <- c.c_child_wall +. f.f_child_wall;
      c.c_child_minor <- c.c_child_minor +. f.f_child_minor;
      (match rest with
      | parent :: _ ->
        parent.f_child_wall <- parent.f_child_wall +. wall;
        parent.f_child_minor <- parent.f_child_minor +. minor
      | [] -> ())
  end

let span t name f =
  enter t name;
  match f () with
  | v ->
    leave t;
    v
  | exception e ->
    leave t;
    raise e

let unbalanced_leaves t = t.unbalanced

let depth t = List.length t.stack

(* ------------------------------------------------------------------ *)
(* Ambient probe: kernels deep in the call graph (Dijkstra, Steiner, …)
   have no [t] parameter to thread; they read the domain-local ambient
   probe instead, which defaults to [disabled]. *)

let ambient_key = Domain.DLS.new_key (fun () -> ref disabled)

let ambient () = !(Domain.DLS.get ambient_key)

let set_ambient t = Domain.DLS.get ambient_key := t

let with_ambient t f =
  let r = Domain.DLS.get ambient_key in
  let saved = !r in
  r := t;
  Fun.protect ~finally:(fun () -> r := saved) f

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type row = {
  r_name : string;
  r_calls : int;
  r_wall_s : float;
  r_self_wall_s : float;
  r_minor_words : float;
  r_self_minor_words : float;
}

let snapshot t =
  Hashtbl.fold (fun name c acc -> (name, c) :: acc) t.cells []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (name, c) ->
         {
           r_name = name;
           r_calls = c.c_calls;
           r_wall_s = c.c_wall;
           r_self_wall_s = Float.max 0.0 (c.c_wall -. c.c_child_wall);
           r_minor_words = c.c_minor;
           r_self_minor_words = Float.max 0.0 (c.c_minor -. c.c_child_minor);
         })

let row_json r =
  Printf.sprintf
    "{\"phase\": \"%s\", \"calls\": %d, \"wall_s\": %s, \"self_wall_s\": %s, \
     \"minor_words\": %s, \"self_minor_words\": %s}"
    (Jsonf.escape r.r_name) r.r_calls (Jsonf.num r.r_wall_s)
    (Jsonf.num r.r_self_wall_s) (Jsonf.num r.r_minor_words)
    (Jsonf.num r.r_self_minor_words)

let to_json t =
  Printf.sprintf "{\"unbalanced\": %d, \"phases\": [\n      %s\n    ]}"
    t.unbalanced
    (String.concat ",\n      " (List.map row_json (snapshot t)))
