type summary = { n : int; mean : float; stddev : float; ci95 : float }

let mean = function
  | [] -> invalid_arg "Stats.mean: empty sample"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] -> invalid_arg "Stats.stddev: empty sample"
  | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (List.length xs - 1))

(* Two-sided 95% critical values of the Student t distribution. *)
let t_table =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let t_critical df =
  if df < 1 then invalid_arg "Stats.t_critical: df must be >= 1";
  if df <= Array.length t_table then t_table.(df - 1) else 1.96

let summarize xs =
  let n = List.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let m = mean xs in
  let sd = stddev xs in
  let ci95 =
    if n < 2 then 0.0 else t_critical (n - 1) *. sd /. sqrt (float_of_int n)
  in
  { n; mean = m; stddev = sd; ci95 }

let percentile xs p =
  if xs = [] then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.of_list (List.sort Float.compare xs) in
  let k = Array.length sorted in
  if k = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (k - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (k - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

(* dgmc-analyze: allow float-format — table/console summary, not schema output *)
let pp_summary ppf s = Format.fprintf ppf "%.3f ± %.3f" s.mean s.ci95
