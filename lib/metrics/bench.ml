type cell = {
  series : string;
  size : int;
  seed : int;
  wall_s : float;
}

type section = {
  name : string;
  elapsed_s : float;
  seq_estimate_s : float;
  domains : int;
  cells : cell list;
}

type meta = {
  commit : string;
  master_seed : int;
  domains : int;
  quick : bool;
}

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Round-trip float rendering: dgmc-bench/1 is machine-diffed, so wall
   times must survive print → parse exactly. *)
let num f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* dgmc-analyze: allow float-format — %.0f on an exactly-integral float
       below 2^53 round-trips *)
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else "0"

let speedup ~seq ~elapsed = if elapsed > 0.0 then seq /. elapsed else 1.0

let cell_json c =
  Printf.sprintf {|{"series": "%s", "size": %d, "seed": %d, "wall_s": %s}|}
    (escape c.series) c.size c.seed (num c.wall_s)

let section_json s =
  let cells = String.concat ",\n        " (List.map cell_json s.cells) in
  Printf.sprintf
    {|    {
      "name": "%s",
      "elapsed_s": %s,
      "seq_estimate_s": %s,
      "speedup_vs_sequential": %s,
      "domains": %d,
      "cells": [
        %s
      ]
    }|}
    (escape s.name) (num s.elapsed_s) (num s.seq_estimate_s)
    (num (speedup ~seq:s.seq_estimate_s ~elapsed:s.elapsed_s))
    s.domains cells

let to_string ~meta ?metrics sections =
  let elapsed = List.fold_left (fun a s -> a +. s.elapsed_s) 0.0 sections in
  let seq = List.fold_left (fun a s -> a +. s.seq_estimate_s) 0.0 sections in
  let metrics_field =
    match metrics with
    | None -> ""
    | Some snap ->
      Printf.sprintf "  \"metrics\": %s,\n" (Registry.snapshot_json snap)
  in
  Printf.sprintf
    {|{
  "schema": "dgmc-bench/1",
  "commit": "%s",
  "master_seed": %d,
  "domains": %d,
  "quick": %b,
  "elapsed_s": %s,
  "seq_estimate_s": %s,
  "speedup_vs_sequential": %s,
%s  "figures": [
%s
  ]
}
|}
    (escape meta.commit) meta.master_seed meta.domains meta.quick (num elapsed)
    (num seq)
    (num (speedup ~seq ~elapsed))
    metrics_field
    (String.concat ",\n" (List.map section_json sections))

let write ~path ~meta ?metrics sections =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~meta ?metrics sections))
