type cell = {
  series : string;
  size : int;
  seed : int;
  wall_s : float;
}

type section = {
  name : string;
  elapsed_s : float;
  seq_estimate_s : float;
  domains : int;
  cells : cell list;
}

type meta = {
  commit : string;
  master_seed : int;
  domains : int;
  quick : bool;
}

let escape = Jsonf.escape

(* Round-trip float rendering: dgmc-bench/1 is machine-diffed, so wall
   times must survive print → parse exactly. *)
let num = Jsonf.num

let speedup ~seq ~elapsed = if elapsed > 0.0 then seq /. elapsed else 1.0

let cell_json c =
  Printf.sprintf {|{"series": "%s", "size": %d, "seed": %d, "wall_s": %s}|}
    (escape c.series) c.size c.seed (num c.wall_s)

let section_json s =
  let cells = String.concat ",\n        " (List.map cell_json s.cells) in
  Printf.sprintf
    {|    {
      "name": "%s",
      "elapsed_s": %s,
      "seq_estimate_s": %s,
      "speedup_vs_sequential": %s,
      "domains": %d,
      "cells": [
        %s
      ]
    }|}
    (escape s.name) (num s.elapsed_s) (num s.seq_estimate_s)
    (num (speedup ~seq:s.seq_estimate_s ~elapsed:s.elapsed_s))
    s.domains cells

let to_string ~meta ?metrics ?series ?sli ?phase sections =
  let elapsed = List.fold_left (fun a s -> a +. s.elapsed_s) 0.0 sections in
  let seq = List.fold_left (fun a s -> a +. s.seq_estimate_s) 0.0 sections in
  let field name body = Printf.sprintf "  \"%s\": %s,\n" name body in
  let opt_field name render = function
    | None -> ""
    | Some v -> field name (render v)
  in
  let metrics_field = opt_field "metrics" Registry.snapshot_json metrics in
  (* Telemetry sections of the flight recorder: windowed series and SLI
     windows are simulation-time data (byte-identical for a fixed seed at
     any --domains); the phase table is host wall/alloc attribution and
     varies run to run by nature. *)
  let series_field = opt_field "series" Series.to_json series in
  let sli_field = opt_field "sli" Sli.to_json sli in
  let phase_field = opt_field "phase" Phase.to_json phase in
  Printf.sprintf
    {|{
  "schema": "dgmc-bench/1",
  "commit": "%s",
  "master_seed": %d,
  "domains": %d,
  "quick": %b,
  "elapsed_s": %s,
  "seq_estimate_s": %s,
  "speedup_vs_sequential": %s,
%s%s%s%s  "figures": [
%s
  ]
}
|}
    (escape meta.commit) meta.master_seed meta.domains meta.quick (num elapsed)
    (num seq)
    (num (speedup ~seq ~elapsed))
    metrics_field series_field sli_field phase_field
    (String.concat ",\n" (List.map section_json sections))

let write ~path ~meta ?metrics ?series ?sli ?phase sections =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ~meta ?metrics ?series ?sli ?phase sections))
