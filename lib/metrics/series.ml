(* Ring-buffered, sim-time-bucketed time series: the flight recorder's
   windowed view of a run.  One [series] per (name, switch) key; each
   holds [cap] pre-allocated buckets of [width] seconds of simulated
   time, addressed by bucket index modulo [cap] — recording never
   allocates after the first sample of a key, and old buckets are
   overwritten (counted, never silently) once the window wraps. *)

type bucket = {
  mutable b_index : int;  (* time bucket held, or [empty_index] *)
  mutable b_count : int;
  mutable b_sum : float;
  mutable b_min : float;
  mutable b_max : float;
  mutable b_last : float;
}

let empty_index = min_int

type key = { k_name : string; k_switch : int option }

type series = {
  ring : bucket array;
  mutable s_newest : int;  (* largest bucket index seen; [empty_index] fresh *)
  mutable s_evicted : int;  (* buckets overwritten after the window wrapped *)
  mutable s_late : int;  (* samples older than the retained window, dropped *)
}

type t = {
  on : bool;
  width : float;
  cap : int;
  tbl : (key, series) Hashtbl.t;
}

let disabled =
  { on = false; width = 1.0; cap = 1; tbl = Hashtbl.create 1 }

let create ?(bucket = 1.0) ?(cap = 512) () =
  if not (bucket > 0.0 && Float.is_finite bucket) then
    invalid_arg "Metrics.Series.create: bucket width must be positive";
  if cap < 1 then invalid_arg "Metrics.Series.create: cap must be >= 1";
  { on = true; width = bucket; cap; tbl = Hashtbl.create 32 }

let enabled t = t.on

let bucket_width t = t.width

let capacity t = t.cap

let bucket_index t time = int_of_float (Float.floor (time /. t.width))

let fresh_series t =
  {
    ring =
      Array.init t.cap (fun _ ->
          {
            b_index = empty_index;
            b_count = 0;
            b_sum = 0.0;
            b_min = Float.infinity;
            b_max = Float.neg_infinity;
            b_last = 0.0;
          });
    s_newest = empty_index;
    s_evicted = 0;
    s_late = 0;
  }

let series_of t key =
  match Hashtbl.find_opt t.tbl key with
  | Some s -> s
  | None ->
    let s = fresh_series t in
    Hashtbl.replace t.tbl key s;
    s

let add t ?switch ~name ~time v =
  if t.on then begin
    let idx = bucket_index t time in
    let s = series_of t { k_name = name; k_switch = switch } in
    if s.s_newest <> empty_index && idx <= s.s_newest - t.cap then
      (* Older than anything the window can still hold: the slot it
         would land in belongs to a newer bucket.  Count, don't corrupt. *)
      s.s_late <- s.s_late + 1
    else begin
      let slot = ((idx mod t.cap) + t.cap) mod t.cap in
      let b = s.ring.(slot) in
      if b.b_index <> idx then begin
        (* Within the retained window two distinct indices can never
           share a slot, so a mismatch means the occupant (if any) just
           fell out of the window. *)
        if b.b_index <> empty_index then s.s_evicted <- s.s_evicted + 1;
        b.b_index <- idx;
        b.b_count <- 0;
        b.b_sum <- 0.0;
        b.b_min <- Float.infinity;
        b.b_max <- Float.neg_infinity;
        b.b_last <- 0.0
      end;
      b.b_count <- b.b_count + 1;
      b.b_sum <- b.b_sum +. v;
      if v < b.b_min then b.b_min <- v;
      if v > b.b_max then b.b_max <- v;
      b.b_last <- v;
      if s.s_newest = empty_index || idx > s.s_newest then s.s_newest <- idx
    end
  end

(* ------------------------------------------------------------------ *)
(* Reading *)

type point = {
  p_bucket : int;
  p_time : float;  (** Bucket start, [p_bucket * width]. *)
  p_count : int;
  p_sum : float;
  p_min : float;
  p_max : float;
  p_last : float;
}

type line = {
  l_name : string;
  l_switch : int option;
  l_evicted : int;
  l_late : int;
  l_points : point list;
}

let compare_key a b =
  match String.compare a.k_name b.k_name with
  | 0 -> (
    match (a.k_switch, b.k_switch) with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some x, Some y -> Int.compare x y)
  | c -> c

let points_of t s =
  Array.to_list s.ring
  |> List.filter_map (fun b ->
         if b.b_index = empty_index then None
         else
           Some
             {
               p_bucket = b.b_index;
               p_time = float_of_int b.b_index *. t.width;
               p_count = b.b_count;
               p_sum = b.b_sum;
               p_min = b.b_min;
               p_max = b.b_max;
               p_last = b.b_last;
             })
  |> List.sort (fun a b -> Int.compare a.p_bucket b.p_bucket)

let lines t =
  Hashtbl.fold (fun key s acc -> (key, s) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare_key a b)
  |> List.map (fun (key, s) ->
         {
           l_name = key.k_name;
           l_switch = key.k_switch;
           l_evicted = s.s_evicted;
           l_late = s.s_late;
           l_points = points_of t s;
         })

let is_empty t = Hashtbl.length t.tbl = 0

(* ------------------------------------------------------------------ *)
(* Rendering *)

let point_json p =
  Printf.sprintf
    {|{"bucket": %d, "time_s": %s, "count": %d, "sum": %s, "min": %s, "max": %s, "last": %s}|}
    p.p_bucket (Jsonf.num p.p_time) p.p_count (Jsonf.num p.p_sum)
    (Jsonf.num p.p_min) (Jsonf.num p.p_max) (Jsonf.num p.p_last)

let line_json l =
  Printf.sprintf
    "{\"name\": \"%s\", \"switch\": %s, \"evicted\": %d, \"late\": %d, \
     \"points\": [%s]}"
    (Jsonf.escape l.l_name)
    (match l.l_switch with Some s -> string_of_int s | None -> "null")
    l.l_evicted l.l_late
    (String.concat ", " (List.map point_json l.l_points))

let to_json t =
  Printf.sprintf
    "{\"bucket_s\": %s, \"cap\": %d, \"series\": [\n      %s\n    ]}"
    (Jsonf.num t.width) t.cap
    (String.concat ",\n      " (List.map line_json (lines t)))

let csv_rows t =
  List.concat_map
    (fun l ->
      let switch =
        match l.l_switch with Some s -> string_of_int s | None -> ""
      in
      List.map
        (fun p ->
          [
            "series";
            l.l_name;
            switch;
            Jsonf.num p.p_time;
            Jsonf.num (p.p_time +. t.width);
            string_of_int p.p_count;
            Jsonf.num p.p_sum;
            Jsonf.num p.p_min;
            Jsonf.num p.p_max;
            Jsonf.num p.p_last;
          ])
        l.l_points)
    (lines t)
