(** Protocol service-level indicators: per-MC reconfiguration windows.

    The paper's central claims are about {e dynamics} — how fast a
    multipoint connection reconverges after a membership or link event
    and how much control traffic that costs.  This module reduces a
    run's observations to exactly those figures: observations on one MC
    are sessionized by a time gap (consecutive observations closer than
    [gap] belong to the same {e window}), each window must contain at
    least one {e anchor} (a local join/leave/link event), opens at its
    first anchor and closes at its last topology install — and the
    window population yields convergence-latency and control-cost
    distributions with exact p50/p90/p99 (via {!Stats.percentile}, not
    the {!Registry} bucket approximation).

    The module is trace-agnostic: callers reduce whatever causal record
    they have to {!obs} values ([Report.Run_report] holds the
    [Sim.Trace] adapter).  All inputs are simulated times, so summaries
    over deterministic runs are byte-identical across domain counts. *)

type kind =
  | Anchor  (** A local membership/link event: opens/extends a window. *)
  | Control  (** One control message (LSA origination or per-link hop). *)
  | Install  (** A topology install: the last one closes the window. *)

type obs = { o_mc : string; o_time : float; o_kind : kind }

val anchor : mc:string -> time:float -> obs

val control : mc:string -> time:float -> obs

val install : mc:string -> time:float -> obs

type window = {
  w_mc : string;
  w_start : float;  (** First anchor of the session. *)
  w_end : float;
      (** Last install at or after the first anchor; [w_start] when the
          window never converged. *)
  w_anchors : int;
  w_installs : int;
  w_control : int;  (** Control observations from the anchor on. *)
}

val latency : window -> float
(** [w_end -. w_start]; [0.] for an unconverged window. *)

val converged : window -> bool
(** At least one install. *)

val windows : gap:float -> obs list -> window list
(** Sessionize per MC (input order is irrelevant; ties at equal times
    keep input order) and keep the sessions containing an anchor.
    Sorted by MC name, then window start.  [gap] must be positive. *)

type dist = {
  d_count : int;
  d_mean : float;
  d_p50 : float;
  d_p90 : float;
  d_p99 : float;
  d_max : float;
}

type summary = {
  s_gap : float;
  s_windows : window list;
  s_latency : dist;  (** Convergence latency, over converged windows. *)
  s_control : dist;  (** Control messages per window, over all windows. *)
  s_unconverged : int;
}

val summarize : gap:float -> obs list -> summary

val to_json : summary -> string
(** A JSON object embedded by {!Bench} as the [sli] section of
    [dgmc-bench/1]; floats round-trip exact. *)

val csv_rows : summary -> string list list
(** One row per window under the shared telemetry CSV header
    [record,name,switch,start_s,end_s,count,sum,min,max,last], mapped as
    [record = "sli-window"], [name] = MC, [count] = installs,
    [sum] = control messages, [min] = anchors, [max] = latency. *)
