(** Ring-buffered, simulation-time-bucketed time series — the flight
    recorder's windowed view of a run.

    Where {!Registry} aggregates over a whole run, a [Series.t] keeps
    {e when} things happened: each sample is routed to the bucket
    [floor (time / bucket_width)] of its (name, switch) series, and each
    bucket accumulates count / sum / min / max / last.  Consumers derive
    rates (count per bucket) or levels (last / max per bucket) as they
    see fit.

    Storage is a pre-allocated ring of [cap] buckets per series,
    addressed by bucket index modulo [cap]: recording allocates nothing
    after a key's first sample, old buckets are overwritten once the
    window wraps (counted per series as [evicted], never silently), and
    samples older than the retained window are dropped and counted as
    [late].

    The discipline mirrors [Sim.Trace]: {!disabled} is a shared
    singleton, call sites guard with [if Series.enabled s then ...], and
    {!add} on a disabled series is one branch with zero allocation.
    Bucketing uses simulated time only, so recorded contents are
    byte-identical across [--domains] counts. *)

type t

val disabled : t
(** A shared series sink that drops everything. *)

val create : ?bucket:float -> ?cap:int -> unit -> t
(** [create ()] — [bucket] is the bucket width in simulated seconds
    (default [1.0], must be positive); [cap] the per-series ring size in
    buckets (default [512], must be at least 1). *)

val enabled : t -> bool
(** [true] unless the series is {!disabled}.  Guard sample construction
    with this so the disabled hot path stays one branch. *)

val bucket_width : t -> float

val capacity : t -> int

val bucket_index : t -> float -> int
(** The bucket a sample at the given time lands in:
    [floor (time / bucket_width)]. *)

val add : t -> ?switch:int -> name:string -> time:float -> float -> unit
(** Record one sample at a simulated time.  No-op on {!disabled}. *)

(** {2 Reading} *)

type point = {
  p_bucket : int;
  p_time : float;  (** Bucket start time, [p_bucket * bucket_width]. *)
  p_count : int;
  p_sum : float;
  p_min : float;
  p_max : float;
  p_last : float;
}

type line = {
  l_name : string;
  l_switch : int option;
  l_evicted : int;  (** Buckets overwritten after the window wrapped. *)
  l_late : int;  (** Samples older than the retained window, dropped. *)
  l_points : point list;  (** Retained buckets, oldest first. *)
}

val lines : t -> line list
(** Every series, sorted by (name, switch label) then bucket index —
    deterministic regardless of insertion order. *)

val is_empty : t -> bool

(** {2 Rendering} *)

val to_json : t -> string
(** A JSON object [{"bucket_s": w, "cap": n, "series": [...]}] — embedded
    by {!Bench} as the [series] section of [dgmc-bench/1].  Floats render
    round-trip exact ({!Jsonf.num}), so deterministic inputs yield
    byte-identical output. *)

val csv_rows : t -> string list list
(** One row per retained bucket, under the shared telemetry CSV header
    [record,name,switch,start_s,end_s,count,sum,min,max,last] with
    [record = "series"]. *)
