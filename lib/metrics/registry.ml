(* Log-scale histogram: geometric buckets with ratio 2^(1/8), so any
   quantile is recovered within ~4.4% relative error from the bucket
   midpoint, while storage stays O(distinct magnitudes). *)

let log_base = Float.log 2.0 /. 8.0

type hist = {
  mutable h_n : int;
  mutable h_sum : float;
  mutable h_lo : float;
  mutable h_hi : float;
  mutable nonpos : int;  (* samples <= 0 sort below every bucket *)
  buckets : (int, int ref) Hashtbl.t;
}

type cell = Counter of int ref | Gauge of float ref | Hist of hist

type key = { name : string; switch : int option }

type t = { cells : (key, cell) Hashtbl.t; owner : int }

let create () = { cells = Hashtbl.create 64; owner = (Domain.self () :> int) }

let is_empty t = Hashtbl.length t.cells = 0

(* The cell table and the cells themselves are unsynchronised, so all
   mutation is pinned to the creating domain; recording from a worker
   domain is a bug (racy counts), not a best-effort degradation. *)
let check_owner t =
  let self = (Domain.self () :> int) in
  if not (Int.equal self t.owner) then
    invalid_arg
      (Printf.sprintf
         "Metrics.Registry: mutation from domain %d, but the registry is \
          owned by domain %d (collect on the owner domain instead)"
         self t.owner)

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let cell_of t ?switch name ~make ~check =
  check_owner t;
  let key = { name; switch } in
  match Hashtbl.find_opt t.cells key with
  | Some c ->
    check c;
    c
  | None ->
    let c = make () in
    Hashtbl.replace t.cells key c;
    c

let wrong_kind name want got =
  invalid_arg
    (Printf.sprintf "Metrics.Registry: %s is a %s, not a %s" name
       (kind_name got) want)

let incr t ?switch ?(by = 1) name =
  match
    cell_of t ?switch name
      ~make:(fun () -> Counter (ref 0))
      ~check:(function Counter _ -> () | c -> wrong_kind name "counter" c)
  with
  | Counter r -> r := !r + by
  | _ -> assert false

let set_gauge t ?switch name v =
  match
    cell_of t ?switch name
      ~make:(fun () -> Gauge (ref 0.0))
      ~check:(function Gauge _ -> () | c -> wrong_kind name "gauge" c)
  with
  | Gauge r -> r := v
  | _ -> assert false

let bucket_of v = int_of_float (Float.floor (Float.log v /. log_base))

let bucket_mid i = Float.exp ((float_of_int i +. 0.5) *. log_base)

let observe t ?switch name v =
  match
    cell_of t ?switch name
      ~make:(fun () ->
        Hist
          {
            h_n = 0;
            h_sum = 0.0;
            h_lo = Float.infinity;
            h_hi = Float.neg_infinity;
            nonpos = 0;
            buckets = Hashtbl.create 16;
          })
      ~check:(function Hist _ -> () | c -> wrong_kind name "histogram" c)
  with
  | Hist h ->
    h.h_n <- h.h_n + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_lo then h.h_lo <- v;
    if v > h.h_hi then h.h_hi <- v;
    if v <= 0.0 then h.nonpos <- h.nonpos + 1
    else begin
      let b = bucket_of v in
      match Hashtbl.find_opt h.buckets b with
      | Some r -> r := !r + 1
      | None -> Hashtbl.replace h.buckets b (ref 1)
    end
  | _ -> assert false

let counter_value t ?switch name =
  match Hashtbl.find_opt t.cells { name; switch } with
  | Some (Counter r) -> !r
  | Some c -> wrong_kind name "counter" c
  | None -> 0

let gauge_value t ?switch name =
  match Hashtbl.find_opt t.cells { name; switch } with
  | Some (Gauge r) -> Some !r
  | Some c -> wrong_kind name "gauge" c
  | None -> None

let hist_quantile h q =
  if h.h_n = 0 then Float.nan
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.h_n))) in
    let sorted =
      Hashtbl.fold (fun b r acc -> (b, !r) :: acc) h.buckets []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    let estimate =
      if rank <= h.nonpos then h.h_lo
      else begin
        let rec walk cum = function
          | [] -> h.h_hi
          | (b, n) :: rest ->
            let cum = cum + n in
            if cum >= rank then bucket_mid b else walk cum rest
        in
        walk h.nonpos sorted
      end
    in
    (* Exact extrema are tracked, so clamping can only help. *)
    Float.min h.h_hi (Float.max h.h_lo estimate)
  end

type histogram = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

let stats_of_hist h =
  {
    h_count = h.h_n;
    h_sum = h.h_sum;
    h_min = (if h.h_n = 0 then 0.0 else h.h_lo);
    h_max = (if h.h_n = 0 then 0.0 else h.h_hi);
    h_p50 = hist_quantile h 0.50;
    h_p90 = hist_quantile h 0.90;
    h_p99 = hist_quantile h 0.99;
  }

let histogram_stats t ?switch name =
  match Hashtbl.find_opt t.cells { name; switch } with
  | Some (Hist h) -> Some (stats_of_hist h)
  | Some c -> wrong_kind name "histogram" c
  | None -> None

let quantile t ?switch name q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Metrics.Registry.quantile: q outside [0, 1]";
  match Hashtbl.find_opt t.cells { name; switch } with
  | Some (Hist h) when h.h_n > 0 -> Some (hist_quantile h q)
  | Some (Hist _) | None -> None
  | Some c -> wrong_kind name "histogram" c

(* ------------------------------------------------------------------ *)
(* Snapshots: deterministic order regardless of insertion history *)

type snapshot = {
  counters : (key * int) list;
  gauges : (key * float) list;
  histograms : (key * histogram) list;
}

let compare_key a b =
  match String.compare a.name b.name with
  | 0 -> (
    match (a.switch, b.switch) with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some x, Some y -> Int.compare x y)
  | c -> c

let snapshot t =
  let cells =
    Hashtbl.fold (fun key cell acc -> (key, cell) :: acc) t.cells []
    |> List.sort (fun (a, _) (b, _) -> compare_key a b)
  in
  {
    counters =
      List.filter_map (function k, Counter r -> Some (k, !r) | _ -> None) cells;
    gauges =
      List.filter_map (function k, Gauge r -> Some (k, !r) | _ -> None) cells;
    histograms =
      List.filter_map
        (function k, Hist h -> Some (k, stats_of_hist h) | _ -> None)
        cells;
  }

(* ------------------------------------------------------------------ *)
(* Merging *)

(* Fold a quiescent source registry into [into]: counters add, histograms
   merge bucket-exactly (bucket counts, n, sum and nonpos add; lo/hi take
   min/max), and gauges combine by [Float.max] — the only order-free
   choice short of keeping every sample.  Counter and histogram merges
   are commutative and associative, so merging per-worker registries in
   worker-slot order yields the same totals whatever the work-stealing
   schedule was; iteration over the source is sorted so even error
   surfacing (kind mismatches) is stable. *)
let merge ~into src =
  check_owner into;
  let cells =
    Hashtbl.fold (fun key cell acc -> (key, cell) :: acc) src.cells []
    |> List.sort (fun (a, _) (b, _) -> compare_key a b)
  in
  List.iter
    (fun (k, c) ->
      match c with
      | Counter r -> incr into ?switch:k.switch ~by:!r k.name
      | Gauge r ->
        let v =
          match gauge_value into ?switch:k.switch k.name with
          | Some old -> Float.max old !r
          | None -> !r
        in
        set_gauge into ?switch:k.switch k.name v
      | Hist h -> (
        match
          cell_of into ?switch:k.switch k.name
            ~make:(fun () ->
              Hist
                {
                  h_n = 0;
                  h_sum = 0.0;
                  h_lo = Float.infinity;
                  h_hi = Float.neg_infinity;
                  nonpos = 0;
                  buckets = Hashtbl.create 16;
                })
            ~check:(function
              | Hist _ -> () | c -> wrong_kind k.name "histogram" c)
        with
        | Hist dst ->
          dst.h_n <- dst.h_n + h.h_n;
          dst.h_sum <- dst.h_sum +. h.h_sum;
          if h.h_lo < dst.h_lo then dst.h_lo <- h.h_lo;
          if h.h_hi > dst.h_hi then dst.h_hi <- h.h_hi;
          dst.nonpos <- dst.nonpos + h.nonpos;
          Hashtbl.fold (fun b r acc -> (b, !r) :: acc) h.buckets []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
          |> List.iter (fun (b, n) ->
                 match Hashtbl.find_opt dst.buckets b with
                 | Some r -> r := !r + n
                 | None -> Hashtbl.replace dst.buckets b (ref n))
        | _ -> assert false))
    cells

(* ------------------------------------------------------------------ *)
(* Rendering *)

(* dgmc-analyze: allow float-format — console rendering only; JSON goes
   through [json_num] below *)
let num f = if Float.is_finite f then Printf.sprintf "%.6g" f else "0"

(* Round-trip float rendering for the JSON snapshot. *)
let json_num = Jsonf.num

let key_json k =
  Printf.sprintf {|"name": "%s", "switch": %s|} k.name
    (match k.switch with Some s -> string_of_int s | None -> "null")

let snapshot_json s =
  let counter (k, v) = Printf.sprintf "{%s, \"value\": %d}" (key_json k) v in
  let gauge (k, v) =
    Printf.sprintf "{%s, \"value\": %s}" (key_json k) (json_num v)
  in
  let histo (k, h) =
    Printf.sprintf
      "{%s, \"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \"p50\": %s, \
       \"p90\": %s, \"p99\": %s}"
      (key_json k) h.h_count (json_num h.h_sum) (json_num h.h_min)
      (json_num h.h_max) (json_num h.h_p50) (json_num h.h_p90)
      (json_num h.h_p99)
  in
  let list f xs = String.concat ",\n      " (List.map f xs) in
  Printf.sprintf
    {|{
    "counters": [
      %s
    ],
    "gauges": [
      %s
    ],
    "histograms": [
      %s
    ]
  }|}
    (list counter s.counters) (list gauge s.gauges) (list histo s.histograms)

let key_label k =
  match k.switch with
  | None -> k.name
  | Some s -> Printf.sprintf "%s{switch=%d}" k.name s

let pp ppf t =
  let s = snapshot t in
  List.iter
    (fun (k, v) -> Format.fprintf ppf "counter %-42s %d@." (key_label k) v)
    s.counters;
  List.iter
    (fun (k, v) -> Format.fprintf ppf "gauge   %-42s %s@." (key_label k) (num v))
    s.gauges;
  List.iter
    (fun (k, h) ->
      Format.fprintf ppf
        "hist    %-42s n=%d sum=%s min=%s p50=%s p90=%s p99=%s max=%s@."
        (key_label k) h.h_count (num h.h_sum) (num h.h_min) (num h.h_p50)
        (num h.h_p90) (num h.h_p99) (num h.h_max))
    s.histograms
