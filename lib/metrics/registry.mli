(** Named counters, gauges, and log-scale histograms with per-switch
    labels.

    A registry is a bag of metric cells keyed by [(name, switch)] — the
    [switch] label is optional, so the same name can exist both as a
    network-wide aggregate and per switch.  Counters and gauges are
    exact; histograms use geometric buckets with ratio [2^(1/8)] (any
    quantile is within ~4.4% relative error, exact min/max/sum/count are
    kept alongside, and quantile estimates are clamped into
    [\[min, max\]]).

    Cells are created on first use; using one name with two different
    metric kinds raises [Invalid_argument].  A registry is {e not}
    domain-safe and is pinned to the domain that created it: any
    recording call ({!incr}, {!set_gauge}, {!observe}) from another
    domain raises [Invalid_argument] naming both domains.  Collect
    results on worker domains and record them on the owner (the pool
    observes task stats after collecting them on the calling domain).

    {!snapshot} ordering is deterministic (sorted by name, then label),
    so rendered output is stable across runs and domain counts. *)

type t

val create : unit -> t

val is_empty : t -> bool

(** {2 Recording} *)

val incr : t -> ?switch:int -> ?by:int -> string -> unit
(** Bump a counter (default [by = 1]). *)

val set_gauge : t -> ?switch:int -> string -> float -> unit

val observe : t -> ?switch:int -> string -> float -> unit
(** Add one sample to a histogram. *)

(** {2 Reading} *)

val counter_value : t -> ?switch:int -> string -> int
(** [0] for a counter that was never bumped. *)

val gauge_value : t -> ?switch:int -> string -> float option

type histogram = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

val histogram_stats : t -> ?switch:int -> string -> histogram option

val quantile : t -> ?switch:int -> string -> float -> float option
(** [quantile t name q] for [q] in [\[0, 1\]]; [None] when the histogram
    is missing or empty. *)

(** {2 Merging} *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds every cell of [src] into [into]: counters
    add, histograms merge bucket-exactly (counts/sums add, min/max take
    the extremes), and gauges combine by [Float.max].  Counter and
    histogram merges are commutative and associative, so per-worker
    registries merged in worker-slot order yield deterministic totals
    whatever the scheduling was (gauges are deterministic only when at
    most one side set them, or under the max interpretation).

    [into] must be owned by the calling domain ([Invalid_argument]
    otherwise, as for any mutation); [src] must be quiescent — its owner
    domain joined, as [Runner.Pool] guarantees before merging worker
    registries.  A name carrying different cell kinds in the two
    registries raises [Invalid_argument]. *)

(** {2 Snapshots and rendering} *)

type key = { name : string; switch : int option }

type snapshot = {
  counters : (key * int) list;
  gauges : (key * float) list;
  histograms : (key * histogram) list;
}

val snapshot : t -> snapshot
(** Deterministically sorted by (name, label). *)

val snapshot_json : snapshot -> string
(** A JSON object [{"counters": [...], "gauges": [...], "histograms":
    [...]}] — embedded by {!Bench} as the [metrics] section of
    [dgmc-bench/1]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump, one line per cell, deterministic order. *)
