(** BENCH_dgmc.json emission — the repository's performance trajectory.

    One record per bench invocation: metadata (commit, master seed,
    domain count), whole-run wall clock, and a per-figure breakdown down
    to individual (series × size × seed) cell timings.  The speedup
    figures compare the parallel wall clock against the sequential
    estimate (the sum of per-cell wall times, i.e. what [--domains 1]
    would have spent modulo scheduling noise).

    The writer is plain stdlib string building: no JSON dependency, and
    the output is stable, diffable, and parseable by anything. *)

type cell = {
  series : string;  (** Sweep the cell belongs to (e.g. protocol name). *)
  size : int;
  seed : int;
  wall_s : float;
}

type section = {
  name : string;  (** "fig6", "fig7", "fig8", "compare", ... *)
  elapsed_s : float;
  seq_estimate_s : float;
  domains : int;
  cells : cell list;
}

type meta = {
  commit : string;
  master_seed : int;
  domains : int;
  quick : bool;
}

val to_string :
  meta:meta ->
  ?metrics:Registry.snapshot ->
  ?series:Series.t ->
  ?sli:Sli.summary ->
  ?phase:Phase.t ->
  section list ->
  string
(** The full JSON document, with run-level elapsed/speedup aggregated
    over the sections.  [metrics], when given, serializes a
    {!Registry.snapshot} as an additional [metrics] section; [series],
    [sli] and [phase] likewise embed the flight-recorder telemetry
    ({!Series.to_json}, {!Sli.to_json}, {!Phase.to_json}).  Series and
    SLI data are simulation-time figures — byte-identical for a fixed
    seed at any domain count; the phase table reports host wall/alloc
    and varies run to run (diff tooling treats it as informational). *)

val write :
  path:string ->
  meta:meta ->
  ?metrics:Registry.snapshot ->
  ?series:Series.t ->
  ?sli:Sli.summary ->
  ?phase:Phase.t ->
  section list ->
  unit
