(* Shared JSON fragment rendering for the machine-diffed outputs of this
   library (dgmc-bench/1 and the telemetry sections embedded in it).
   Mirrors Sim.Json.number/escape; Metrics deliberately has no dependency
   on Sim. *)

let num f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* dgmc-analyze: allow float-format — %.0f on an exactly-integral float
       below 2^53 round-trips *)
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else "0"

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b
