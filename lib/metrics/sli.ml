(* Protocol service-level indicators: reconfiguration windows.

   A window is one burst of activity on one MC — anchored by a local
   membership/link event and closed by the last topology install of the
   burst — sessionized by a time gap: observations on the same MC closer
   than [gap] belong to the same window.  From the windows we report the
   paper's dynamics as distributions: convergence latency (anchor to last
   install) and control cost (control messages per window).

   The module is deliberately trace-agnostic: callers reduce whatever
   causal record they have (Sim.Trace entries, live callbacks) to [obs]
   values; Report.Run_report holds the trace adapter. *)

type kind = Anchor | Control | Install

type obs = { o_mc : string; o_time : float; o_kind : kind }

let anchor ~mc ~time = { o_mc = mc; o_time = time; o_kind = Anchor }

let control ~mc ~time = { o_mc = mc; o_time = time; o_kind = Control }

let install ~mc ~time = { o_mc = mc; o_time = time; o_kind = Install }

type window = {
  w_mc : string;
  w_start : float;  (** First anchor of the session. *)
  w_end : float;  (** Last install at or after the anchor; [w_start] if none. *)
  w_anchors : int;
  w_installs : int;
  w_control : int;
}

let latency w = w.w_end -. w.w_start

let converged w = w.w_installs > 0

(* Split one MC's time-sorted observations into sessions: maximal runs
   whose consecutive gaps stay under [gap]. *)
let sessions ~gap obs =
  match obs with
  | [] -> []
  | first :: _ ->
    let flush cur acc = List.rev cur :: acc in
    let rec walk prev_t cur acc = function
      | [] -> List.rev (flush cur acc)
      | o :: rest ->
        if o.o_time -. prev_t < gap then walk o.o_time (o :: cur) acc rest
        else walk o.o_time [ o ] (flush cur acc) rest
    in
    walk first.o_time [] [] obs

let window_of mc session =
  match List.find_opt (fun o -> o.o_kind = Anchor) session with
  | None -> None  (* ambient control/install activity with no local event *)
  | Some a0 ->
    let within = List.filter (fun o -> o.o_time >= a0.o_time) session in
    let count k = List.length (List.filter (fun o -> o.o_kind = k) within) in
    let w_end =
      List.fold_left
        (fun acc o -> if o.o_kind = Install then Float.max acc o.o_time else acc)
        a0.o_time within
    in
    Some
      {
        w_mc = mc;
        w_start = a0.o_time;
        w_end;
        w_anchors = count Anchor;
        w_installs = count Install;
        w_control = count Control;
      }

let windows ~gap obs =
  if not (gap > 0.0 && Float.is_finite gap) then
    invalid_arg "Metrics.Sli.windows: gap must be positive and finite";
  let mcs = List.sort_uniq String.compare (List.map (fun o -> o.o_mc) obs) in
  List.concat_map
    (fun mc ->
      let os =
        List.filter (fun o -> o.o_mc = mc) obs
        |> List.stable_sort (fun a b -> Float.compare a.o_time b.o_time)
      in
      List.filter_map (window_of mc) (sessions ~gap os))
    mcs

(* ------------------------------------------------------------------ *)
(* Distributions *)

type dist = {
  d_count : int;
  d_mean : float;
  d_p50 : float;
  d_p90 : float;
  d_p99 : float;
  d_max : float;
}

let dist_of samples =
  match samples with
  | [] ->
    { d_count = 0; d_mean = 0.0; d_p50 = 0.0; d_p90 = 0.0; d_p99 = 0.0;
      d_max = 0.0 }
  | _ ->
    {
      d_count = List.length samples;
      d_mean = Stats.mean samples;
      d_p50 = Stats.percentile samples 50.0;
      d_p90 = Stats.percentile samples 90.0;
      d_p99 = Stats.percentile samples 99.0;
      d_max = List.fold_left Float.max Float.neg_infinity samples;
    }

type summary = {
  s_gap : float;
  s_windows : window list;
  s_latency : dist;  (** Convergence latency over converged windows. *)
  s_control : dist;  (** Control messages per window, all windows. *)
  s_unconverged : int;  (** Windows with an anchor but no install. *)
}

let summarize ~gap obs =
  let ws = windows ~gap obs in
  let converged_ws = List.filter converged ws in
  {
    s_gap = gap;
    s_windows = ws;
    s_latency = dist_of (List.map latency converged_ws);
    s_control = dist_of (List.map (fun w -> float_of_int w.w_control) ws);
    s_unconverged = List.length (List.filter (fun w -> not (converged w)) ws);
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let window_json w =
  Printf.sprintf
    {|{"mc": "%s", "start_s": %s, "end_s": %s, "latency_s": %s, "anchors": %d, "installs": %d, "control_msgs": %d}|}
    (Jsonf.escape w.w_mc) (Jsonf.num w.w_start) (Jsonf.num w.w_end)
    (Jsonf.num (latency w))
    w.w_anchors w.w_installs w.w_control

let dist_json d =
  Printf.sprintf
    {|{"count": %d, "mean": %s, "p50": %s, "p90": %s, "p99": %s, "max": %s}|}
    d.d_count (Jsonf.num d.d_mean) (Jsonf.num d.d_p50) (Jsonf.num d.d_p90)
    (Jsonf.num d.d_p99) (Jsonf.num d.d_max)

let to_json s =
  Printf.sprintf
    "{\"gap_s\": %s, \"unconverged\": %d, \"latency_s\": %s, \"control_msgs\": \
     %s, \"windows\": [\n      %s\n    ]}"
    (Jsonf.num s.s_gap) s.s_unconverged (dist_json s.s_latency)
    (dist_json s.s_control)
    (String.concat ",\n      " (List.map window_json s.s_windows))

let csv_rows s =
  List.map
    (fun w ->
      [
        "sli-window";
        w.w_mc;
        "";
        Jsonf.num w.w_start;
        Jsonf.num w.w_end;
        string_of_int w.w_installs;
        string_of_int w.w_control;
        string_of_int w.w_anchors;
        Jsonf.num (latency w);
        "";
      ])
    s.s_windows
