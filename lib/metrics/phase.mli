(** Scoped per-phase wall-clock and allocation attribution.

    {!enter}/{!leave} bracket a named phase; a phase entered while
    another is open is its child, and its wall/allocation totals roll up
    into the parent's child totals — so a {!snapshot} reports both
    inclusive and {e self} (= inclusive − children) figures per phase.
    Allocation is measured in minor words ([Gc.minor_words] deltas).

    The discipline mirrors [Sim.Trace]: {!disabled} is a shared
    singleton and both {!enter} and {!leave} on it are a single branch
    with zero allocation, so permanently-instrumented kernels (Dijkstra,
    MST, Steiner, CBT grafting, flooding dispatch, resync) cost nothing
    in ordinary runs.  Hot call sites use the closure-free pattern

    {[
      let run g src =
        let ph = Metrics.Phase.ambient () in
        Metrics.Phase.enter ph "net.dijkstra";
        match run_impl g src with
        | v -> Metrics.Phase.leave ph; v
        | exception e -> Metrics.Phase.leave ph; raise e
    ]}

    rather than {!span} (whose thunk would allocate a closure even when
    profiling is off).

    Wall times are host-clock measurements: they vary run to run and are
    {e reported}, never fed back into simulation state, so determinism
    guarantees are untouched.

    A probe is not domain-safe; like [Registry], use one per domain.
    The {e ambient} probe is domain-local storage (defaulting to
    {!disabled}), which is how kernels deep in the call graph find the
    probe without threading a parameter through every signature. *)

type t

val disabled : t
(** A shared probe that ignores everything. *)

val create : unit -> t

val enabled : t -> bool

val enter : t -> string -> unit
(** Open a phase.  No-op (one branch, zero allocation) on {!disabled}. *)

val leave : t -> unit
(** Close the innermost open phase and charge its wall/allocation to the
    phase's cell (and to its parent's child totals).  A [leave] with no
    open phase is counted in {!unbalanced_leaves} rather than raising —
    a profiling bug must never kill a run. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] = {!enter}; [f ()]; {!leave} (also on exceptions).
    Convenience for cold paths and tests; the thunk allocates, so hot
    kernels use the explicit pattern above instead. *)

val unbalanced_leaves : t -> int

val depth : t -> int
(** Number of currently open phases. *)

(** {2 Ambient probe} *)

val ambient : unit -> t
(** The calling domain's ambient probe; {!disabled} unless set. *)

val set_ambient : t -> unit

val with_ambient : t -> (unit -> 'a) -> 'a
(** Run with the ambient probe set to [t], restoring the previous probe
    afterwards (also on exceptions). *)

(** {2 Snapshots} *)

type row = {
  r_name : string;
  r_calls : int;
  r_wall_s : float;  (** Inclusive wall seconds. *)
  r_self_wall_s : float;  (** Inclusive minus children, clamped at 0. *)
  r_minor_words : float;  (** Inclusive minor-heap words allocated. *)
  r_self_minor_words : float;
}

val snapshot : t -> row list
(** One row per phase name, sorted by name. *)

val to_json : t -> string
(** A JSON object [{"unbalanced": n, "phases": [...]}] — embedded by
    {!Bench} as the [phase] section of [dgmc-bench/1].  Wall and
    allocation figures vary run to run by nature; diff tooling treats
    them as informational. *)
