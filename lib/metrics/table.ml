type align = Left | Right

let cell_f x =
  (* dgmc-analyze: allow float-format — console table cell, not schema output *)
  let s = Printf.sprintf "%.3f" x in
  (* Trim trailing zeros but keep at least one decimal digit. *)
  let rec trim i = if i > 0 && s.[i] = '0' && s.[i - 1] <> '.' then trim (i - 1) else i in
  String.sub s 0 (trim (String.length s - 1) + 1)

let cell_ci ~mean ~ci = Printf.sprintf "%s ± %s" (cell_f mean) (cell_f ci)

let pad align width s =
  let fill = width - String.length s in
  if fill <= 0 then s
  else
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s

let render ?align ~headers rows =
  let n_cols =
    List.fold_left (fun acc row -> max acc (List.length row)) (List.length headers) rows
  in
  let get list i = match List.nth_opt list i with Some x -> x | None -> "" in
  let align_of i =
    match align with
    | Some a -> ( match List.nth_opt a i with Some x -> x | None -> Right)
    | None -> Right
  in
  let widths =
    Array.init n_cols (fun i ->
        List.fold_left
          (fun acc row -> max acc (String.length (get row i)))
          (String.length (get headers i))
          rows)
  in
  let render_row row =
    String.concat "  "
      (List.init n_cols (fun i -> pad (align_of i) widths.(i) (get row i)))
  in
  let rule =
    String.concat "  "
      (List.init n_cols (fun i -> String.make widths.(i) '-'))
  in
  String.concat "\n" (render_row headers :: rule :: List.map render_row rows)

let print ?align ~headers rows =
  print_string (render ?align ~headers rows);
  print_newline ()
