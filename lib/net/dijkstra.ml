type result = { dist : float array; pred : int option array }

let run_impl g src =
  let n = Graph.n_nodes g in
  let dist = Array.make n infinity in
  let pred = Array.make n None in
  let settled = Array.make n false in
  dist.(src) <- 0.0;
  let heap = Sim.Heap.create ~cmp:(fun (da, _) (db, _) -> Float.compare da db) in
  Sim.Heap.add heap (0.0, src);
  let rec loop () =
    match Sim.Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        let relax (v, w) =
          let candidate = d +. w in
          if candidate < dist.(v) then begin
            dist.(v) <- candidate;
            pred.(v) <- Some u;
            Sim.Heap.add heap (candidate, v)
          end
        in
        List.iter relax (Graph.neighbors g u)
      end;
      loop ()
  in
  loop ();
  { dist; pred }

(* Phase attribution reads the ambient recorder; the wrapper is written
   out (no closure) so a disabled recorder costs two branches and zero
   allocation per call. *)
let run g src =
  let ph = Metrics.Phase.ambient () in
  Metrics.Phase.enter ph "net.dijkstra";
  match run_impl g src with
  | r ->
    Metrics.Phase.leave ph;
    r
  | exception e ->
    Metrics.Phase.leave ph;
    raise e

let distance g src dst = (run g src).dist.(dst)

let path_of_result r ~src ~dst =
  if not (Float.is_finite r.dist.(dst)) then None
  else begin
    let rec walk v acc =
      if v = src then v :: acc
      else
        match r.pred.(v) with
        | Some p -> walk p (v :: acc)
        | None -> assert false (* finite distance implies a pred chain *)
    in
    Some (walk dst [])
  end

let path g ~src ~dst = path_of_result (run g src) ~src ~dst

let all_pairs g =
  Array.init (Graph.n_nodes g) (fun src -> (run g src).dist)
