let mem_undirected list u v =
  List.exists (fun (a, b) -> (a = u && b = v) || (a = v && b = u)) list

let graph ?(highlight = []) ?(mark = []) ?(name = "network") g =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "graph %s {\n" name;
  out "  node [shape=circle, fontsize=10];\n";
  for v = 0 to Graph.n_nodes g - 1 do
    if List.mem v mark then
      out "  %d [style=filled, fillcolor=lightblue];\n" v
    else out "  %d;\n" v
  done;
  List.iter
    (fun ((e : Graph.edge), up) ->
      (* dgmc-analyze: allow float-format — Graphviz edge label for human viewing *)
      let attrs = ref [ Printf.sprintf "label=\"%.3g\"" e.weight ] in
      if not up then attrs := "style=dashed" :: "color=red" :: !attrs;
      if mem_undirected highlight e.u e.v then
        attrs := "penwidth=3" :: "color=blue" :: !attrs;
      out "  %d -- %d [%s];\n" e.u e.v (String.concat ", " !attrs))
    (Graph.all_edges g);
  out "}\n";
  Buffer.contents buf
