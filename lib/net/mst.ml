let sorted_edges edges =
  List.sort
    (fun (a : Graph.edge) b ->
      let c = Float.compare a.weight b.weight in
      match c with
      | 0 -> (
        match Int.compare a.u b.u with 0 -> Int.compare a.v b.v | c -> c)
      | c -> c)
    edges

let kruskal_impl g =
  let uf = Union_find.create (Graph.n_nodes g) in
  List.filter
    (fun (e : Graph.edge) -> Union_find.union uf e.u e.v)
    (sorted_edges (Graph.edges g))

(* Closure-free phase wrapper; see Dijkstra.run. *)
let kruskal g =
  let ph = Metrics.Phase.ambient () in
  Metrics.Phase.enter ph "net.mst";
  match kruskal_impl g with
  | r ->
    Metrics.Phase.leave ph;
    r
  | exception e ->
    Metrics.Phase.leave ph;
    raise e

let cost edges =
  List.fold_left (fun acc (e : Graph.edge) -> acc +. e.weight) 0.0 edges

let spans g edges =
  let n = Graph.n_nodes g in
  n <= 1
  ||
  let uf = Union_find.create n in
  List.iter (fun (e : Graph.edge) -> ignore (Union_find.union uf e.u e.v)) edges;
  Union_find.n_sets uf = 1

let mst_of_matrix_impl m =
  let n = Array.length m in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Float.is_finite m.(u).(v) then
        edges := ({ u; v; weight = m.(u).(v) } : Graph.edge) :: !edges
    done
  done;
  let uf = Union_find.create n in
  List.filter_map
    (fun (e : Graph.edge) ->
      if Union_find.union uf e.u e.v then Some (e.u, e.v, e.weight) else None)
    (sorted_edges !edges)

let mst_of_matrix m =
  let ph = Metrics.Phase.ambient () in
  Metrics.Phase.enter ph "net.mst";
  match mst_of_matrix_impl m with
  | r ->
    Metrics.Phase.leave ph;
    r
  | exception e ->
    Metrics.Phase.leave ph;
    raise e
