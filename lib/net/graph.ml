type edge = { u : int; v : int; weight : float }

type link = { w : float; mutable up : bool }

type t = {
  n : int;
  (* adj.(u) maps each neighbour v to the shared link record, so flipping
     a link's state is visible from both endpoints. *)
  adj : (int, link) Hashtbl.t array;
  (* Sorted adjacency rows (neighbour id ascending), built lazily from
     [adj] and invalidated by [add_edge] only: [set_link] mutates the
     shared [link] records the rows reference, so [up] reads stay live.
     The cache keeps the sort out of hot loops — [neighbors] is called
     per settled node inside Dijkstra — while giving every enumeration a
     deterministic order. *)
  mutable rows : (int * link) list option array;
}

let create n =
  if n < 0 then invalid_arg "Graph.create: negative node count";
  {
    n;
    adj = Array.init n (fun _ -> Hashtbl.create 4);
    rows = Array.make n None;
  }

let n_nodes t = t.n

let check_node t x =
  if x < 0 || x >= t.n then
    invalid_arg (Printf.sprintf "Graph: node %d out of range [0, %d)" x t.n)

let add_edge t u v ~weight =
  check_node t u;
  check_node t v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if weight <= 0.0 || not (Float.is_finite weight) then
    invalid_arg "Graph.add_edge: weight must be finite and positive";
  if Hashtbl.mem t.adj.(u) v then
    invalid_arg (Printf.sprintf "Graph.add_edge: edge (%d, %d) exists" u v);
  let link = { w = weight; up = true } in
  Hashtbl.replace t.adj.(u) v link;
  Hashtbl.replace t.adj.(v) u link;
  t.rows.(u) <- None;
  t.rows.(v) <- None

let row t u =
  match t.rows.(u) with
  | Some r -> r
  | None ->
    let r =
      Hashtbl.fold (fun v l acc -> (v, l) :: acc) t.adj.(u) []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    t.rows.(u) <- Some r;
    r

let of_edges n list =
  let t = create n in
  List.iter (fun (u, v, w) -> add_edge t u v ~weight:w) list;
  t

let find_link t u v =
  check_node t u;
  check_node t v;
  Hashtbl.find_opt t.adj.(u) v

let has_edge t u v = find_link t u v <> None

let weight t u v =
  match find_link t u v with Some l -> l.w | None -> raise Not_found

let link_is_up t u v =
  match find_link t u v with Some l -> l.up | None -> false

let set_link t u v ~up =
  match find_link t u v with
  | Some l -> l.up <- up
  | None -> raise Not_found

let neighbors t u =
  check_node t u;
  List.filter_map (fun (v, l) -> if l.up then Some (v, l.w) else None) (row t u)

let degree t u =
  check_node t u;
  List.fold_left (fun acc (_, l) -> if l.up then acc + 1 else acc) 0 (row t u)

(* Every enumeration goes through the sorted rows, so every consumer —
   including non-associative accumulators such as [total_weight]'s float
   sum via [fold_edges] — sees a deterministic edge order. *)
let fold_all f t init =
  let acc = ref init in
  for u = 0 to t.n - 1 do
    List.iter
      (fun (v, l) -> if u < v then acc := f { u; v; weight = l.w } l.up !acc)
      (row t u)
  done;
  !acc

let compare_endpoints a b =
  match Int.compare a.u b.u with 0 -> Int.compare a.v b.v | c -> c

let edges t =
  fold_all (fun e up acc -> if up then e :: acc else acc) t []
  |> List.sort compare_endpoints

let all_edges t =
  fold_all (fun e up acc -> (e, up) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare_endpoints a b)

let n_edges t = fold_all (fun _ up acc -> if up then acc + 1 else acc) t 0

let fold_edges f t init =
  fold_all (fun e up acc -> if up then f e acc else acc) t init

let total_weight t = fold_edges (fun e acc -> acc +. e.weight) t 0.0

let copy t =
  let fresh = create t.n in
  List.iter
    (fun (e, up) ->
      add_edge fresh e.u e.v ~weight:e.weight;
      if not up then set_link fresh e.u e.v ~up:false)
    (all_edges t);
  fresh

let equal a b =
  a.n = b.n
  &&
  let ea = all_edges a and eb = all_edges b in
  List.length ea = List.length eb
  && List.for_all2
       (fun (x, upx) (y, upy) ->
         x.u = y.u && x.v = y.v && Float.equal x.weight y.weight && upx = upy)
       ea eb

let pp ppf t =
  Format.fprintf ppf "@[<v>graph %d nodes, %d live edges" t.n (n_edges t);
  List.iter
    (fun (e, up) ->
      (* dgmc-analyze: allow float-format — debug pretty-printer, not schema output *)
      Format.fprintf ppf "@,  %d -- %d  w=%.4g%s" e.u e.v e.weight
        (if up then "" else "  (down)"))
    (all_edges t);
  Format.fprintf ppf "@]"
