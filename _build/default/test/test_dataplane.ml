(* Tests for the packet-level data plane (lib/dataplane). *)

let check = Alcotest.check

(* Convenient setup: a line graph with unit weights, 1 Mb/s links,
   propagation 1e-4 s per weight unit. *)
let setup ?(n = 4) ?(bandwidth = 1e6) ?(queue_capacity = 64) () =
  let engine = Sim.Engine.create () in
  let graph = Net.Topo_gen.line n in
  let fw =
    Dataplane.Forwarder.create ~engine ~graph ~bandwidth ~queue_capacity ()
  in
  (engine, graph, fw)

let tree_of graph terminals = Mctree.Steiner.sph graph terminals

(* ------------------------------------------------------------------ *)
(* Timing model *)

let test_single_hop_timing () =
  let engine, graph, fw = setup ~n:2 () in
  let tree = tree_of graph [ 0; 1 ] in
  let arrival = ref nan in
  Dataplane.Forwarder.multicast fw ~tree ~src:0 ~size_bits:1000.0
    ~on_deliver:(fun ~receiver:_ ~at -> arrival := at);
  Sim.Engine.run engine;
  (* tx = 1000 / 1e6 = 1 ms; prop = 1.0 * 1e-4 = 0.1 ms. *)
  check Alcotest.(float 1e-9) "tx + prop" 0.0011 !arrival

let test_multi_hop_timing () =
  let engine, graph, fw = setup ~n:4 () in
  let tree = tree_of graph [ 0; 3 ] in
  let arrival = ref nan in
  Dataplane.Forwarder.multicast fw ~tree ~src:0 ~size_bits:1000.0
    ~on_deliver:(fun ~receiver:_ ~at -> arrival := at);
  Sim.Engine.run engine;
  (* Store-and-forward: 3 hops x (1 ms + 0.1 ms). *)
  check Alcotest.(float 1e-9) "3 store-and-forward hops" 0.0033 !arrival

let test_queueing_serializes () =
  let engine, graph, fw = setup ~n:2 () in
  let tree = tree_of graph [ 0; 1 ] in
  let arrivals = ref [] in
  for _ = 1 to 3 do
    Dataplane.Forwarder.multicast fw ~tree ~src:0 ~size_bits:1000.0
      ~on_deliver:(fun ~receiver:_ ~at -> arrivals := at :: !arrivals)
  done;
  Sim.Engine.run engine;
  let sorted = List.sort compare !arrivals in
  check
    Alcotest.(list (float 1e-9))
    "back-to-back transmissions space by tx time"
    [ 0.0011; 0.0021; 0.0031 ] sorted

let test_queue_overflow_drops () =
  let engine, graph, fw = setup ~n:2 ~queue_capacity:2 () in
  let tree = tree_of graph [ 0; 1 ] in
  let delivered = ref 0 in
  for _ = 1 to 5 do
    Dataplane.Forwarder.multicast fw ~tree ~src:0 ~size_bits:1000.0
      ~on_deliver:(fun ~receiver:_ ~at:_ -> incr delivered)
  done;
  Sim.Engine.run engine;
  check Alcotest.int "queue holds 2" 2 !delivered;
  check Alcotest.int "3 dropped" 3 (Dataplane.Forwarder.packets_dropped fw);
  check Alcotest.int "5 attempted" 5 (Dataplane.Forwarder.packets_sent fw)

let test_down_link_drops () =
  let engine, graph, fw = setup ~n:2 () in
  let tree = tree_of graph [ 0; 1 ] in
  Net.Graph.set_link graph 0 1 ~up:false;
  let delivered = ref 0 in
  Dataplane.Forwarder.multicast fw ~tree ~src:0 ~size_bits:1000.0
    ~on_deliver:(fun ~receiver:_ ~at:_ -> incr delivered);
  Sim.Engine.run engine;
  check Alcotest.int "nothing delivered" 0 !delivered;
  check Alcotest.int "drop counted" 1 (Dataplane.Forwarder.packets_dropped fw)

(* ------------------------------------------------------------------ *)
(* Multicast semantics *)

let test_fanout_duplicates () =
  let engine = Sim.Engine.create () in
  let graph = Net.Topo_gen.star 4 in
  (* hub 0, leaves 1..3 *)
  let fw = Dataplane.Forwarder.create ~engine ~graph () in
  let tree = tree_of graph [ 1; 2; 3 ] in
  let received = ref [] in
  Dataplane.Forwarder.multicast fw ~tree ~src:1 ~size_bits:1000.0
    ~on_deliver:(fun ~receiver ~at:_ -> received := receiver :: !received);
  Sim.Engine.run engine;
  check Alcotest.(list int) "both other leaves" [ 2; 3 ]
    (List.sort compare !received);
  (* Copies: 1->0, then 0->2 and 0->3. *)
  check Alcotest.int "three link transmissions" 3
    (Dataplane.Forwarder.packets_sent fw)

let test_source_must_be_on_tree () =
  let engine, graph, fw = setup ~n:4 () in
  let tree = tree_of graph [ 0; 1 ] in
  ignore engine;
  ignore graph;
  Alcotest.check_raises "off-tree source"
    (Invalid_argument "Forwarder.multicast: source not on tree") (fun () ->
      Dataplane.Forwarder.multicast fw ~tree ~src:3 ~size_bits:1.0
        ~on_deliver:(fun ~receiver:_ ~at:_ -> ()))

let test_unicast_path () =
  let engine, _, fw = setup ~n:4 () in
  let at = ref nan in
  Dataplane.Forwarder.unicast fw ~path:[ 0; 1; 2 ] ~size_bits:1000.0
    ~on_deliver:(fun ~at:t -> at := t);
  Sim.Engine.run engine;
  check Alcotest.(float 1e-9) "two hops" 0.0022 !at

(* ------------------------------------------------------------------ *)
(* CBR sources and sinks *)

let test_sink_statistics () =
  let s = Dataplane.Forwarder.Sink.create () in
  List.iter (fun t -> Dataplane.Forwarder.Sink.record s ~at:t) [ 0.0; 1.0; 2.0; 4.0 ];
  check Alcotest.int "received" 4 (Dataplane.Forwarder.Sink.received s);
  (* gaps 1, 1, 2: mean 4/3; deviations 1/3, 1/3, 2/3: jitter 4/9. *)
  check Alcotest.(float 1e-9) "mean gap" (4.0 /. 3.0)
    (Dataplane.Forwarder.Sink.mean_gap s);
  check Alcotest.(float 1e-9) "jitter" (4.0 /. 9.0)
    (Dataplane.Forwarder.Sink.jitter s)

let test_cbr_uncongested_is_smooth () =
  let engine, graph, fw = setup ~n:3 ~bandwidth:1e8 () in
  let tree = tree_of graph [ 0; 2 ] in
  let sink = Dataplane.Forwarder.Sink.create () in
  Dataplane.Forwarder.cbr fw ~tree ~src:0 ~rate_pps:100.0 ~size_bits:8000.0
    ~count:20 ~sinks:[ (2, sink) ];
  Sim.Engine.run engine;
  check Alcotest.int "all delivered" 20 (Dataplane.Forwarder.Sink.received sink);
  check Alcotest.(float 1e-9) "paced at the source rate" 0.01
    (Dataplane.Forwarder.Sink.mean_gap sink);
  check Alcotest.bool "no jitter" true
    (Dataplane.Forwarder.Sink.jitter sink < 1e-12);
  check Alcotest.int "no drops" 0 (Dataplane.Forwarder.packets_dropped fw)

let test_cbr_overload_drops () =
  (* 1000 pps x 8000 bits = 8 Mb/s into a 1 Mb/s link: most packets
     must drop once the queue fills. *)
  let engine, graph, fw = setup ~n:2 ~bandwidth:1e6 ~queue_capacity:8 () in
  let tree = tree_of graph [ 0; 1 ] in
  let sink = Dataplane.Forwarder.Sink.create () in
  Dataplane.Forwarder.cbr fw ~tree ~src:0 ~rate_pps:1000.0 ~size_bits:8000.0
    ~count:100 ~sinks:[ (1, sink) ];
  Sim.Engine.run engine;
  check Alcotest.bool "drops happened" true
    (Dataplane.Forwarder.packets_dropped fw > 0);
  check Alcotest.int "conservation" 100
    (Dataplane.Forwarder.Sink.received sink
    + Dataplane.Forwarder.packets_dropped fw);
  (* Delivered stream is paced by the bottleneck: 8 ms per packet. *)
  check Alcotest.(float 1e-6) "bottleneck pacing" 0.008
    (Dataplane.Forwarder.Sink.mean_gap sink)

let test_cross_traffic_adds_jitter () =
  (* A smooth CBR flow shares its first link with a bursty competitor:
     the flow arrives with jitter it did not have alone. *)
  let engine = Sim.Engine.create () in
  let graph = Net.Topo_gen.line 3 in
  let fw = Dataplane.Forwarder.create ~engine ~graph ~bandwidth:1e6 () in
  let tree = tree_of graph [ 0; 2 ] in
  let sink = Dataplane.Forwarder.Sink.create () in
  Dataplane.Forwarder.cbr fw ~tree ~src:0 ~rate_pps:50.0 ~size_bits:8000.0
    ~count:20 ~sinks:[ (2, sink) ];
  (* Competitor: bursts of packets on link 0-1 every 60 ms. *)
  for burst = 0 to 10 do
    ignore
      (Sim.Engine.schedule engine
         ~delay:(float_of_int burst *. 0.06)
         (fun () ->
           for _ = 1 to 4 do
             Dataplane.Forwarder.unicast fw ~path:[ 0; 1 ] ~size_bits:8000.0
               ~on_deliver:(fun ~at:_ -> ())
           done))
  done;
  Sim.Engine.run engine;
  check Alcotest.int "flow still delivered" 20
    (Dataplane.Forwarder.Sink.received sink);
  check Alcotest.bool "jitter induced by cross traffic" true
    (Dataplane.Forwarder.Sink.jitter sink > 1e-4)

let () =
  Alcotest.run "dataplane"
    [
      ( "timing",
        [
          Alcotest.test_case "single hop" `Quick test_single_hop_timing;
          Alcotest.test_case "store and forward" `Quick test_multi_hop_timing;
          Alcotest.test_case "queueing serializes" `Quick test_queueing_serializes;
          Alcotest.test_case "queue overflow drops" `Quick test_queue_overflow_drops;
          Alcotest.test_case "down link drops" `Quick test_down_link_drops;
        ] );
      ( "multicast",
        [
          Alcotest.test_case "fan-out duplication" `Quick test_fanout_duplicates;
          Alcotest.test_case "off-tree source rejected" `Quick
            test_source_must_be_on_tree;
          Alcotest.test_case "unicast path" `Quick test_unicast_path;
        ] );
      ( "cbr",
        [
          Alcotest.test_case "sink statistics" `Quick test_sink_statistics;
          Alcotest.test_case "uncongested smooth" `Quick
            test_cbr_uncongested_is_smooth;
          Alcotest.test_case "overload drops" `Quick test_cbr_overload_drops;
          Alcotest.test_case "cross traffic jitter" `Quick
            test_cross_traffic_adds_jitter;
        ] );
    ]
