(* Tests for the multicast-tree substrate (lib/mctree). *)

let check = Alcotest.check

let tree_t = Alcotest.testable Mctree.Tree.pp Mctree.Tree.equal

let house () =
  Net.Graph.of_edges 5
    [ (0, 1, 1.0); (1, 2, 1.0); (0, 3, 4.0); (2, 4, 1.0); (3, 4, 1.0) ]

(* A 3x3 grid with unit weights; node ids row-major. *)
let grid () = Net.Topo_gen.grid ~rows:3 ~cols:3 ()

let random_graph seed n = Net.Topo_gen.waxman (Sim.Rng.create seed) ~n ~target_degree:3.5 ()

(* ------------------------------------------------------------------ *)
(* Tree *)

let test_tree_empty () =
  let t = Mctree.Tree.empty in
  check Alcotest.int "no edges" 0 (Mctree.Tree.n_edges t);
  check Alcotest.bool "is tree" true (Mctree.Tree.is_tree t);
  check Alcotest.bool "spans trivially" true (Mctree.Tree.spans_terminals t)

let test_tree_edges () =
  let t = Mctree.Tree.of_edges ~terminals:[ 0; 2 ] [ (0, 1); (2, 1) ] in
  check Alcotest.(list (pair int int)) "normalized sorted edges"
    [ (0, 1); (1, 2) ] (Mctree.Tree.edges t);
  check Alcotest.bool "mem either direction" true (Mctree.Tree.mem_edge t 1 0);
  check Alcotest.int "degree" 2 (Mctree.Tree.degree t 1);
  check Alcotest.bool "node membership" true (Mctree.Tree.mem_node t 1);
  check Alcotest.bool "terminal flag" true (Mctree.Tree.is_terminal t 0);
  check Alcotest.bool "non-terminal" false (Mctree.Tree.is_terminal t 1)

let test_tree_add_remove () =
  let t = Mctree.Tree.add_edge Mctree.Tree.empty 3 7 in
  let t = Mctree.Tree.add_edge t 3 7 in
  check Alcotest.int "idempotent add" 1 (Mctree.Tree.n_edges t);
  let t = Mctree.Tree.remove_edge t 7 3 in
  check Alcotest.int "removed" 0 (Mctree.Tree.n_edges t);
  Alcotest.check_raises "self loop" (Invalid_argument "Tree.add_edge: self-loop")
    (fun () -> ignore (Mctree.Tree.add_edge Mctree.Tree.empty 1 1))

let test_tree_add_path () =
  let t = Mctree.Tree.add_path Mctree.Tree.empty [ 0; 1; 2; 3 ] in
  check Alcotest.int "3 edges" 3 (Mctree.Tree.n_edges t);
  check Alcotest.bool "is tree" true (Mctree.Tree.is_tree t)

let test_tree_is_tree () =
  let path = Mctree.Tree.add_path Mctree.Tree.empty [ 0; 1; 2 ] in
  check Alcotest.bool "path is tree" true (Mctree.Tree.is_tree path);
  let cycle = Mctree.Tree.add_edge path 2 0 in
  check Alcotest.bool "cycle is not" false (Mctree.Tree.is_tree cycle);
  let forest =
    Mctree.Tree.add_edge (Mctree.Tree.add_edge Mctree.Tree.empty 0 1) 2 3
  in
  check Alcotest.bool "forest is not a tree" false (Mctree.Tree.is_tree forest)

let test_tree_spans () =
  let t = Mctree.Tree.of_edges ~terminals:[ 0; 2 ] [ (0, 1); (1, 2) ] in
  check Alcotest.bool "spans" true (Mctree.Tree.spans_terminals t);
  let t' = Mctree.Tree.add_terminal t 5 in
  check Alcotest.bool "disconnected terminal" false (Mctree.Tree.spans_terminals t');
  let single = Mctree.Tree.of_terminals [ 9 ] in
  check Alcotest.bool "single member spans" true (Mctree.Tree.spans_terminals single)

let test_tree_prune () =
  (* 0-1-2 with a dangling branch 1-5-6; terminals 0, 2. *)
  let t =
    Mctree.Tree.of_edges ~terminals:[ 0; 2 ] [ (0, 1); (1, 2); (1, 5); (5, 6) ]
  in
  let pruned = Mctree.Tree.prune t in
  check Alcotest.(list (pair int int)) "branch removed" [ (0, 1); (1, 2) ]
    (Mctree.Tree.edges pruned)

let test_tree_prune_keeps_terminal_leaves () =
  let t = Mctree.Tree.of_edges ~terminals:[ 0; 2; 6 ] [ (0, 1); (1, 2); (1, 6) ] in
  check tree_t "terminal leaf kept" t (Mctree.Tree.prune t)

let test_tree_path_between () =
  let t =
    Mctree.Tree.of_edges ~terminals:[ 0; 4 ] [ (0, 1); (1, 2); (2, 3); (2, 4) ]
  in
  check Alcotest.(option (list int)) "unique path" (Some [ 0; 1; 2; 4 ])
    (Mctree.Tree.path_between t 0 4);
  check Alcotest.(option (list int)) "self path" (Some [ 3 ])
    (Mctree.Tree.path_between t 3 3);
  check Alcotest.(option (list int)) "absent node" None
    (Mctree.Tree.path_between t 0 9)

let test_tree_dfs_order () =
  let t = Mctree.Tree.of_edges ~terminals:[] [ (0, 1); (0, 2); (2, 3) ] in
  check Alcotest.(list int) "deterministic dfs" [ 0; 1; 2; 3 ]
    (Mctree.Tree.dfs_order t ~root:0)

let test_tree_cost () =
  let g = house () in
  let t = Mctree.Tree.of_edges ~terminals:[ 0; 4 ] [ (0, 1); (1, 2); (2, 4) ] in
  check Alcotest.(float 0.0) "cost" 3.0 (Mctree.Tree.cost g t)

let test_tree_equality_and_compare () =
  let a = Mctree.Tree.of_edges ~terminals:[ 1 ] [ (1, 2) ] in
  let b = Mctree.Tree.of_edges ~terminals:[ 1 ] [ (2, 1) ] in
  check Alcotest.bool "normalized equal" true (Mctree.Tree.equal a b);
  check Alcotest.int "compare zero" 0 (Mctree.Tree.compare a b);
  let c = Mctree.Tree.add_terminal a 2 in
  check Alcotest.bool "terminals matter" false (Mctree.Tree.equal a c)

let test_tree_is_embedded () =
  let g = house () in
  let t = Mctree.Tree.of_edges ~terminals:[ 0; 2 ] [ (0, 1); (1, 2) ] in
  check Alcotest.bool "embedded" true (Mctree.Tree.is_embedded g t);
  Net.Graph.set_link g 0 1 ~up:false;
  check Alcotest.bool "down link breaks embedding" false (Mctree.Tree.is_embedded g t);
  let t' = Mctree.Tree.of_edges ~terminals:[ 0; 4 ] [ (0, 4) ] in
  check Alcotest.bool "non-edge" false (Mctree.Tree.is_embedded g t')

(* ------------------------------------------------------------------ *)
(* Steiner heuristics *)

let assert_valid_topology g terminals tree =
  check Alcotest.bool "is valid MC topology" true
    (Mctree.Tree.is_valid_mc_topology g tree);
  check Alcotest.(list int) "terminal set preserved"
    (List.sort compare terminals)
    (Mctree.Tree.Int_set.elements (Mctree.Tree.terminals tree))

let test_steiner_two_terminals_is_shortest_path () =
  let g = house () in
  List.iter
    (fun algo ->
      let t = algo g [ 0; 4 ] in
      assert_valid_topology g [ 0; 4 ] t;
      check Alcotest.(float 1e-9) "cost equals shortest path"
        (Net.Dijkstra.distance g 0 4)
        (Mctree.Tree.cost g t))
    [ Mctree.Steiner.kmb; Mctree.Steiner.sph ]

let test_steiner_single_terminal () =
  let g = house () in
  let t = Mctree.Steiner.kmb g [ 3 ] in
  check Alcotest.int "no edges" 0 (Mctree.Tree.n_edges t);
  check Alcotest.bool "valid" true (Mctree.Tree.is_valid_mc_topology g t)

let test_steiner_grid_known () =
  (* Corners of a 3x3 unit grid need at least 6 edges; both heuristics
     should find a 6-edge tree (e.g. through the middle row/column). *)
  let g = grid () in
  let corners = [ 0; 2; 6; 8 ] in
  List.iter
    (fun algo ->
      let t = algo g corners in
      assert_valid_topology g corners t;
      check Alcotest.(float 0.0) "optimal corner tree" 6.0 (Mctree.Tree.cost g t))
    [ Mctree.Steiner.kmb; Mctree.Steiner.sph ]

let test_steiner_validation () =
  let g = house () in
  Alcotest.check_raises "empty" (Failure "Steiner: empty terminal set") (fun () ->
      ignore (Mctree.Steiner.kmb g []));
  Alcotest.check_raises "duplicates" (Failure "Steiner: duplicate terminals")
    (fun () -> ignore (Mctree.Steiner.kmb g [ 1; 1 ]));
  Alcotest.check_raises "range" (Failure "Steiner: terminal 9 out of range")
    (fun () -> ignore (Mctree.Steiner.kmb g [ 9 ]))

let test_steiner_unreachable () =
  let g = Net.Graph.of_edges 4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
  Alcotest.check_raises "partitioned terminals"
    (Failure "Steiner: terminals not mutually reachable") (fun () ->
      ignore (Mctree.Steiner.kmb g [ 0; 2 ]))

let test_steiner_random_validity_and_quality () =
  for seed = 1 to 10 do
    let g = random_graph seed 40 in
    let rng = Sim.Rng.create (seed * 100) in
    let terminals = Sim.Rng.sample rng 8 (List.init 40 (fun i -> i)) in
    let lb = Mctree.Steiner.lower_bound g terminals in
    List.iter
      (fun (name, algo) ->
        let t = algo g terminals in
        assert_valid_topology g terminals t;
        let cost = Mctree.Tree.cost g t in
        (* KMB/SPH guarantee a factor-2 approximation. *)
        if cost > (2.0 *. lb) +. 1e-6 then
          Alcotest.failf "%s cost %.3f exceeds 2x lower bound %.3f (seed %d)"
            name cost lb seed)
      [ ("kmb", Mctree.Steiner.kmb); ("sph", Mctree.Steiner.sph) ]
  done

(* ------------------------------------------------------------------ *)
(* Source-rooted trees *)

let test_spt_distances () =
  (* The defining property: the tree path from the root to each receiver
     costs exactly the shortest-path distance. *)
  let g = random_graph 3 30 in
  let receivers = [ 4; 9; 17; 22; 28 ] in
  let t = Mctree.Spt.source_rooted g ~root:0 ~receivers in
  assert_valid_topology g (0 :: receivers) t;
  List.iter
    (fun (receiver, delay) ->
      check Alcotest.(float 1e-9) "tree delay = shortest path"
        (Net.Dijkstra.distance g 0 receiver)
        delay)
    (Mctree.Spt.receivers_cost g t ~root:0)

let test_spt_root_is_receiver () =
  let g = house () in
  let t = Mctree.Spt.source_rooted g ~root:0 ~receivers:[ 0; 2 ] in
  check Alcotest.bool "valid" true (Mctree.Tree.is_valid_mc_topology g t)

let test_spt_depth () =
  let g = Net.Topo_gen.line 5 in
  let t = Mctree.Spt.source_rooted g ~root:0 ~receivers:[ 4 ] in
  check Alcotest.int "depth" 4 (Mctree.Spt.depth t ~root:0);
  check Alcotest.int "depth from absent root" 0 (Mctree.Spt.depth t ~root:9)

let test_spt_unreachable () =
  let g = Net.Graph.of_edges 3 [ (0, 1, 1.0) ] in
  Alcotest.check_raises "unreachable receiver"
    (Failure "Spt: receiver 2 unreachable") (fun () ->
      ignore (Mctree.Spt.source_rooted g ~root:0 ~receivers:[ 2 ]))

(* ------------------------------------------------------------------ *)
(* Incremental maintenance *)

let test_incremental_join () =
  let g = grid () in
  let t = Mctree.Steiner.sph g [ 0; 2 ] in
  let t' = Mctree.Incremental.join g t 8 in
  check Alcotest.bool "valid after join" true (Mctree.Tree.is_valid_mc_topology g t');
  check Alcotest.bool "new terminal present" true (Mctree.Tree.is_terminal t' 8)

let test_incremental_join_first_member () =
  let g = grid () in
  let t = Mctree.Incremental.join g Mctree.Tree.empty 4 in
  check Alcotest.int "no edges yet" 0 (Mctree.Tree.n_edges t);
  check Alcotest.bool "terminal recorded" true (Mctree.Tree.is_terminal t 4)

let test_incremental_join_existing_node () =
  let g = Net.Topo_gen.line 4 in
  (* Tree spans 0..3; node 1 is an intermediate switch. *)
  let t = Mctree.Steiner.sph g [ 0; 3 ] in
  let t' = Mctree.Incremental.join g t 1 in
  check Alcotest.int "no new edges needed" (Mctree.Tree.n_edges t)
    (Mctree.Tree.n_edges t');
  check Alcotest.bool "terminal added" true (Mctree.Tree.is_terminal t' 1)

let test_incremental_leave () =
  let g = Net.Topo_gen.line 5 in
  let t = Mctree.Steiner.sph g [ 0; 2; 4 ] in
  let t' = Mctree.Incremental.leave g t 4 in
  check Alcotest.bool "valid after leave" true (Mctree.Tree.is_valid_mc_topology g t');
  check Alcotest.bool "branch pruned" false (Mctree.Tree.mem_node t' 4);
  check Alcotest.int "line tree shrinks" 2 (Mctree.Tree.n_edges t')

let test_incremental_leave_interior () =
  (* Removing an interior member keeps its switch as a relay. *)
  let g = Net.Topo_gen.line 5 in
  let t = Mctree.Steiner.sph g [ 0; 2; 4 ] in
  let t' = Mctree.Incremental.leave g t 2 in
  check Alcotest.bool "still spans 0 and 4" true (Mctree.Tree.spans_terminals t');
  check Alcotest.bool "2 still relays" true (Mctree.Tree.mem_node t' 2)

let test_incremental_repair () =
  let g = grid () in
  let t = Mctree.Steiner.sph g [ 0; 8 ] in
  let u, v = List.hd (Mctree.Tree.edges t) in
  Net.Graph.set_link g u v ~up:false;
  (match Mctree.Incremental.repair g t with
  | Some t' ->
    check Alcotest.bool "valid after repair" true
      (Mctree.Tree.is_valid_mc_topology g t')
  | None -> Alcotest.fail "grid stays connected; repair must succeed");
  Net.Graph.set_link g u v ~up:true

let test_incremental_repair_partition () =
  let g = Net.Topo_gen.line 4 in
  let t = Mctree.Steiner.sph g [ 0; 3 ] in
  Net.Graph.set_link g 1 2 ~up:false;
  check Alcotest.bool "partition detected" true (Mctree.Incremental.repair g t = None)

let test_incremental_repair_noop () =
  let g = grid () in
  let t = Mctree.Steiner.sph g [ 0; 8 ] in
  match Mctree.Incremental.repair g t with
  | Some t' -> check tree_t "healthy tree unchanged" t t'
  | None -> Alcotest.fail "healthy tree must repair to itself"

let test_incremental_drift () =
  let g = grid () in
  let good = Mctree.Steiner.sph g [ 0; 2 ] in
  check Alcotest.bool "fresh tree has drift ~1" true
    (Mctree.Incremental.drift g good < 1.0 +. 1e-9);
  (* A deliberately bad tree for {0, 2}: the long way around. *)
  let bad =
    Mctree.Tree.of_edges ~terminals:[ 0; 2 ]
      [ (0, 3); (3, 6); (6, 7); (7, 8); (8, 5); (5, 2) ]
  in
  check Alcotest.bool "detour detected" true (Mctree.Incremental.drift g bad > 2.0);
  check Alcotest.bool "needs recompute" true (Mctree.Incremental.needs_recompute g bad);
  check Alcotest.bool "good tree does not" false
    (Mctree.Incremental.needs_recompute g good)

(* ------------------------------------------------------------------ *)
(* Delivery *)

let test_delivery_multicast () =
  let g = Net.Topo_gen.line 4 in
  let t = Mctree.Steiner.sph g [ 0; 3 ] in
  let report = Mctree.Delivery.multicast g t ~src:0 in
  check Alcotest.int "one delivery" 1 (List.length report.deliveries);
  let d = List.hd report.deliveries in
  check Alcotest.int "receiver" 3 d.receiver;
  check Alcotest.(float 0.0) "delay" 3.0 d.delay;
  check Alcotest.int "hops" 3 d.hops;
  check Alcotest.(list (pair int int)) "links" [ (0, 1); (1, 2); (2, 3) ]
    report.links_used

let test_delivery_multicast_excludes_sender () =
  let g = grid () in
  let terminals = [ 0; 2; 8 ] in
  let t = Mctree.Steiner.sph g terminals in
  let report = Mctree.Delivery.multicast g t ~src:2 in
  check Alcotest.(list int) "other members only" [ 0; 8 ]
    (List.map (fun (d : Mctree.Delivery.delivery) -> d.receiver) report.deliveries)

let test_delivery_multicast_requires_tree_node () =
  let g = grid () in
  let t = Mctree.Steiner.sph g [ 0; 2 ] in
  Alcotest.check_raises "off-tree sender"
    (Failure "Delivery.multicast: sender not on tree") (fun () ->
      ignore (Mctree.Delivery.multicast g t ~src:8))

let test_delivery_two_stage () =
  let g = Net.Topo_gen.line 6 in
  (* Tree spans 0..2; sender at 5 contacts node 2. *)
  let t = Mctree.Steiner.sph g [ 0; 2 ] in
  let report = Mctree.Delivery.two_stage g t ~src:5 in
  check Alcotest.(option int) "contact is nearest tree node" (Some 2) report.contact;
  let to0 =
    List.find (fun (d : Mctree.Delivery.delivery) -> d.receiver = 0)
      report.deliveries
  in
  check Alcotest.(float 0.0) "delay includes unicast stage" 5.0 to0.delay;
  check Alcotest.int "hops include unicast stage" 5 to0.hops;
  (* Contact node 2 is itself a terminal and must be delivered to. *)
  check Alcotest.bool "contact delivered" true
    (List.exists (fun (d : Mctree.Delivery.delivery) -> d.receiver = 2)
       report.deliveries)

let test_delivery_two_stage_on_tree () =
  let g = Net.Topo_gen.line 4 in
  let t = Mctree.Steiner.sph g [ 0; 3 ] in
  let report = Mctree.Delivery.two_stage g t ~src:1 in
  check Alcotest.(option int) "sender itself is the contact" (Some 1) report.contact

let test_delivery_loads () =
  let g = Net.Topo_gen.line 4 in
  let t = Mctree.Steiner.sph g [ 0; 3 ] in
  let loads = Hashtbl.create 8 in
  Mctree.Delivery.accumulate_loads loads (Mctree.Delivery.multicast g t ~src:0);
  Mctree.Delivery.accumulate_loads loads (Mctree.Delivery.multicast g t ~src:0);
  check Alcotest.int "max load" 2 (Mctree.Delivery.max_load loads);
  check Alcotest.int "each link loaded" 3 (Hashtbl.length loads)

(* ------------------------------------------------------------------ *)
(* Algorithm registry *)

let test_algo_lookup () =
  check Alcotest.bool "kmb" true (Mctree.Algo.of_string "kmb" <> None);
  check Alcotest.bool "sph" true (Mctree.Algo.of_string "sph" <> None);
  check Alcotest.bool "spt" true (Mctree.Algo.of_string "spt" <> None);
  check Alcotest.bool "unknown" true (Mctree.Algo.of_string "nope" = None);
  check Alcotest.int "registry size" 3 (List.length Mctree.Algo.all)

let test_algo_all_compute_valid () =
  let g = random_graph 9 30 in
  let members = [ 3; 11; 20; 27 ] in
  List.iter
    (fun (a : Mctree.Algo.t) ->
      let t = a.compute g members in
      check Alcotest.bool
        (a.name ^ " computes valid topology")
        true
        (Mctree.Tree.is_valid_mc_topology g t))
    Mctree.Algo.all

(* ------------------------------------------------------------------ *)
(* Forest (multi-sender asymmetric) *)

let test_forest_build () =
  let g = grid () in
  let f = Mctree.Forest.build g ~senders:[ 0; 8 ] ~receivers:[ 2; 6 ] in
  check Alcotest.(list int) "senders" [ 0; 8 ] (Mctree.Forest.senders f);
  check Alcotest.(list int) "receivers" [ 2; 6 ] (Mctree.Forest.receivers f);
  List.iter
    (fun s ->
      let tree = Mctree.Forest.tree_of f ~sender:s in
      check Alcotest.bool "valid" true (Mctree.Tree.is_valid_mc_topology g tree);
      (* SPT invariant per sender. *)
      List.iter
        (fun (receiver, delay) ->
          check Alcotest.(float 1e-9) "spt delay"
            (Net.Dijkstra.distance g s receiver)
            delay)
        (Mctree.Spt.receivers_cost g tree ~root:s))
    [ 0; 8 ]

let test_forest_receiver_churn () =
  let g = grid () in
  let f = Mctree.Forest.build g ~senders:[ 0 ] ~receivers:[ 2 ] in
  let f = Mctree.Forest.add_receiver g f 8 in
  check Alcotest.(list int) "receiver added" [ 2; 8 ] (Mctree.Forest.receivers f);
  let tree = Mctree.Forest.tree_of f ~sender:0 in
  check Alcotest.bool "8 spanned" true (Mctree.Tree.is_terminal tree 8);
  check Alcotest.(float 1e-9) "spt preserved" (Net.Dijkstra.distance g 0 8)
    (List.assoc 8 (Mctree.Spt.receivers_cost g tree ~root:0));
  let f = Mctree.Forest.remove_receiver g f 8 in
  let tree = Mctree.Forest.tree_of f ~sender:0 in
  check Alcotest.bool "8 pruned" false (Mctree.Tree.mem_node tree 8)

let test_forest_sender_churn () =
  let g = grid () in
  let f = Mctree.Forest.build g ~senders:[ 0 ] ~receivers:[ 4 ] in
  let f = Mctree.Forest.add_sender g f 8 in
  check Alcotest.(list int) "two senders" [ 0; 8 ] (Mctree.Forest.senders f);
  let f = Mctree.Forest.remove_sender f 0 in
  check Alcotest.(list int) "one left" [ 8 ] (Mctree.Forest.senders f);
  Alcotest.check_raises "tree_of removed sender" Not_found (fun () ->
      ignore (Mctree.Forest.tree_of f ~sender:0))

let test_forest_costs_and_loads () =
  let g = Net.Topo_gen.line 4 in
  (* Senders at both ends, receiver in the middle: the two SPTs overlap
     on nothing (0-1-2 vs 3-2). *)
  let f = Mctree.Forest.build g ~senders:[ 0; 3 ] ~receivers:[ 2 ] in
  check Alcotest.(float 1e-9) "total cost" 3.0 (Mctree.Forest.total_cost g f);
  let occ = Mctree.Forest.link_occurrences f in
  check
    Alcotest.(list (pair (pair int int) int))
    "occurrences" [ ((0, 1), 1); ((1, 2), 1); ((2, 3), 1) ] occ;
  let report = Mctree.Forest.deliver g f ~sender:0 in
  check Alcotest.(list int) "delivery from 0" [ 2 ]
    (List.map (fun (d : Mctree.Delivery.delivery) -> d.receiver) report.deliveries)

let test_forest_overlapping_roles () =
  let g = grid () in
  (* A switch that is both sender and receiver. *)
  let f = Mctree.Forest.build g ~senders:[ 0; 4 ] ~receivers:[ 4; 8 ] in
  let t0 = Mctree.Forest.tree_of f ~sender:0 in
  check Alcotest.bool "sender 0 reaches receiver 4" true
    (Mctree.Tree.is_terminal t0 4);
  let t4 = Mctree.Forest.tree_of f ~sender:4 in
  check Alcotest.bool "4's own tree spans 8" true (Mctree.Tree.is_terminal t4 8)

let () =
  Alcotest.run "mctree"
    [
      ( "tree",
        [
          Alcotest.test_case "empty" `Quick test_tree_empty;
          Alcotest.test_case "edges" `Quick test_tree_edges;
          Alcotest.test_case "add/remove" `Quick test_tree_add_remove;
          Alcotest.test_case "add_path" `Quick test_tree_add_path;
          Alcotest.test_case "is_tree" `Quick test_tree_is_tree;
          Alcotest.test_case "spans_terminals" `Quick test_tree_spans;
          Alcotest.test_case "prune" `Quick test_tree_prune;
          Alcotest.test_case "prune keeps terminal leaves" `Quick
            test_tree_prune_keeps_terminal_leaves;
          Alcotest.test_case "path_between" `Quick test_tree_path_between;
          Alcotest.test_case "dfs order" `Quick test_tree_dfs_order;
          Alcotest.test_case "cost" `Quick test_tree_cost;
          Alcotest.test_case "equality and compare" `Quick
            test_tree_equality_and_compare;
          Alcotest.test_case "is_embedded" `Quick test_tree_is_embedded;
        ] );
      ( "steiner",
        [
          Alcotest.test_case "two terminals = shortest path" `Quick
            test_steiner_two_terminals_is_shortest_path;
          Alcotest.test_case "single terminal" `Quick test_steiner_single_terminal;
          Alcotest.test_case "grid corners" `Quick test_steiner_grid_known;
          Alcotest.test_case "input validation" `Quick test_steiner_validation;
          Alcotest.test_case "unreachable terminals" `Quick test_steiner_unreachable;
          Alcotest.test_case "random validity and quality" `Quick
            test_steiner_random_validity_and_quality;
        ] );
      ( "spt",
        [
          Alcotest.test_case "shortest-path distances" `Quick test_spt_distances;
          Alcotest.test_case "root as receiver" `Quick test_spt_root_is_receiver;
          Alcotest.test_case "depth" `Quick test_spt_depth;
          Alcotest.test_case "unreachable receiver" `Quick test_spt_unreachable;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "join" `Quick test_incremental_join;
          Alcotest.test_case "join first member" `Quick
            test_incremental_join_first_member;
          Alcotest.test_case "join existing node" `Quick
            test_incremental_join_existing_node;
          Alcotest.test_case "leave" `Quick test_incremental_leave;
          Alcotest.test_case "leave interior member" `Quick
            test_incremental_leave_interior;
          Alcotest.test_case "repair" `Quick test_incremental_repair;
          Alcotest.test_case "repair detects partition" `Quick
            test_incremental_repair_partition;
          Alcotest.test_case "repair no-op" `Quick test_incremental_repair_noop;
          Alcotest.test_case "drift" `Quick test_incremental_drift;
        ] );
      ( "delivery",
        [
          Alcotest.test_case "multicast" `Quick test_delivery_multicast;
          Alcotest.test_case "sender excluded" `Quick
            test_delivery_multicast_excludes_sender;
          Alcotest.test_case "off-tree sender rejected" `Quick
            test_delivery_multicast_requires_tree_node;
          Alcotest.test_case "two-stage" `Quick test_delivery_two_stage;
          Alcotest.test_case "two-stage on-tree sender" `Quick
            test_delivery_two_stage_on_tree;
          Alcotest.test_case "load accounting" `Quick test_delivery_loads;
        ] );
      ( "algo",
        [
          Alcotest.test_case "lookup" `Quick test_algo_lookup;
          Alcotest.test_case "all compute valid trees" `Quick
            test_algo_all_compute_valid;
        ] );
      ( "forest",
        [
          Alcotest.test_case "build" `Quick test_forest_build;
          Alcotest.test_case "receiver churn" `Quick test_forest_receiver_churn;
          Alcotest.test_case "sender churn" `Quick test_forest_sender_churn;
          Alcotest.test_case "costs and loads" `Quick test_forest_costs_and_loads;
          Alcotest.test_case "overlapping roles" `Quick
            test_forest_overlapping_roles;
        ] );
    ]
