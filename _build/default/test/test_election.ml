(* Tests for the leader-election layer (lib/election). *)

let check = Alcotest.check

let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1

(* Two triangles joined by one bridge. *)
let dumbbell () =
  Net.Graph.of_edges 6
    [
      (0, 1, 1.0); (1, 2, 1.0); (0, 2, 1.0);
      (3, 4, 1.0); (4, 5, 1.0); (3, 5, 1.0);
      (2, 3, 1.0);
    ]

let setup members =
  let net = Dgmc.Protocol.create ~graph:(dumbbell ()) ~config:Dgmc.Config.atm_lan () in
  List.iter
    (fun s -> Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:s mc Dgmc.Member.Both)
    members;
  Dgmc.Protocol.run net;
  net

let test_agreement_after_convergence () =
  let net = setup [ 4; 1; 5 ] in
  check Alcotest.(option int) "smallest member leads" (Some 1)
    (Election.Leader.agreed_leader net mc);
  List.iter
    (fun (s, l) ->
      check Alcotest.(option int) (Printf.sprintf "view of %d" s) (Some 1) l)
    (Election.Leader.leaders_by_view net mc)

let test_no_members_no_leader () =
  let net = Dgmc.Protocol.create ~graph:(dumbbell ()) ~config:Dgmc.Config.atm_lan () in
  check Alcotest.(option int) "no leader" None (Election.Leader.agreed_leader net mc);
  check Alcotest.(option int) "per-switch none" None
    (Election.Leader.leader_at net ~switch:0 mc)

let test_leader_leaves () =
  let net = setup [ 1; 4 ] in
  Dgmc.Protocol.leave net ~switch:1 mc;
  Dgmc.Protocol.run net;
  check Alcotest.(option int) "next smallest takes over" (Some 4)
    (Election.Leader.agreed_leader net mc)

let test_smaller_member_joins () =
  let net = setup [ 4; 5 ] in
  check Alcotest.(option int) "initial" (Some 4)
    (Election.Leader.agreed_leader net mc);
  Dgmc.Protocol.join net ~switch:0 mc Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  check Alcotest.(option int) "new smallest leads" (Some 0)
    (Election.Leader.agreed_leader net mc)

let test_partition_elects_per_side () =
  (* Members 1 (left) and 4 (right); leader 1.  Cutting the bridge makes
     1 unreachable from the right side, which elects 4. *)
  let net = setup [ 1; 4 ] in
  Dgmc.Protocol.link_down net 2 3;
  Dgmc.Protocol.run net;
  List.iter
    (fun s ->
      check Alcotest.(option int) (Printf.sprintf "left view %d" s) (Some 1)
        (Election.Leader.leader_at net ~switch:s mc))
    [ 0; 1; 2 ];
  List.iter
    (fun s ->
      check Alcotest.(option int) (Printf.sprintf "right view %d" s) (Some 4)
        (Election.Leader.leader_at net ~switch:s mc))
    [ 3; 4; 5 ];
  check Alcotest.(option int) "no global agreement" None
    (Election.Leader.agreed_leader net mc)

let test_heal_restores_single_leader () =
  let net = setup [ 1; 4 ] in
  Dgmc.Protocol.link_down net 2 3;
  Dgmc.Protocol.run net;
  Dgmc.Protocol.link_up net 2 3;
  Dgmc.Protocol.run net;
  check Alcotest.(option int) "reunified" (Some 1)
    (Election.Leader.agreed_leader net mc)

let test_monitor_records_transitions () =
  let net = Dgmc.Protocol.create ~graph:(dumbbell ()) ~config:Dgmc.Config.atm_lan () in
  let m = Election.Leader.monitor net ~switch:5 mc in
  check Alcotest.(option int) "initially none" None (Election.Leader.current m);
  Dgmc.Protocol.join net ~switch:4 mc Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  Dgmc.Protocol.join net ~switch:1 mc Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  Dgmc.Protocol.leave net ~switch:1 mc;
  Dgmc.Protocol.run net;
  check Alcotest.(option int) "final" (Some 4) (Election.Leader.current m);
  let seq =
    List.map
      (fun (tr : Election.Leader.transition) -> tr.current)
      (Election.Leader.transitions m)
  in
  check
    Alcotest.(list (option int))
    "observed sequence"
    [ Some 4; Some 1; Some 4 ]
    seq;
  (* Transition timestamps are monotone. *)
  let times =
    List.map (fun (tr : Election.Leader.transition) -> tr.at)
      (Election.Leader.transitions m)
  in
  check Alcotest.bool "monotone times" true (List.sort compare times = times)

let test_monitor_sees_partition_failover () =
  let net = setup [ 1; 4 ] in
  let m = Election.Leader.monitor net ~switch:5 mc in
  check Alcotest.(option int) "before cut" (Some 1) (Election.Leader.current m);
  Dgmc.Protocol.link_down net 2 3;
  Dgmc.Protocol.run net;
  check Alcotest.(option int) "failover to local member" (Some 4)
    (Election.Leader.current m);
  Dgmc.Protocol.link_up net 2 3;
  Dgmc.Protocol.run net;
  check Alcotest.(option int) "back after heal" (Some 1)
    (Election.Leader.current m)

let () =
  Alcotest.run "election"
    [
      ( "leader",
        [
          Alcotest.test_case "agreement after convergence" `Quick
            test_agreement_after_convergence;
          Alcotest.test_case "no members, no leader" `Quick
            test_no_members_no_leader;
          Alcotest.test_case "leader leaves" `Quick test_leader_leaves;
          Alcotest.test_case "smaller member joins" `Quick
            test_smaller_member_joins;
          Alcotest.test_case "partition elects per side" `Quick
            test_partition_elects_per_side;
          Alcotest.test_case "heal restores single leader" `Quick
            test_heal_restores_single_leader;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "records transitions" `Quick
            test_monitor_records_transitions;
          Alcotest.test_case "partition failover" `Quick
            test_monitor_sees_partition_failover;
        ] );
    ]
