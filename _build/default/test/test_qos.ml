(* Tests for the QoS admission extension (lib/qos). *)

let check = Alcotest.check

let members_of ids = Dgmc.Member.of_list (List.map (fun x -> (x, Dgmc.Member.Both)) ids)

(* A 4-node diamond: two disjoint paths 0-1-3 and 0-2-3. *)
let diamond () =
  Net.Graph.of_edges 4 [ (0, 1, 1.0); (1, 3, 1.0); (0, 2, 1.0); (2, 3, 1.0) ]

(* ------------------------------------------------------------------ *)
(* Capacity accounting *)

let test_capacity_defaults () =
  let cap = Qos.Capacity.create (diamond ()) ~default_capacity:10.0 in
  check Alcotest.(float 0.0) "capacity" 10.0 (Qos.Capacity.capacity cap 0 1);
  check Alcotest.(float 0.0) "reserved" 0.0 (Qos.Capacity.reserved cap 0 1);
  check Alcotest.(float 0.0) "residual" 10.0 (Qos.Capacity.residual cap 0 1);
  check Alcotest.(float 0.0) "utilization" 0.0 (Qos.Capacity.utilization cap)

let test_capacity_override () =
  let cap = Qos.Capacity.create (diamond ()) ~default_capacity:10.0 in
  Qos.Capacity.set_capacity cap 0 1 2.0;
  check Alcotest.(float 0.0) "override" 2.0 (Qos.Capacity.capacity cap 0 1);
  check Alcotest.(float 0.0) "others keep default" 10.0 (Qos.Capacity.capacity cap 0 2);
  Alcotest.check_raises "non-edge" Not_found (fun () ->
      ignore (Qos.Capacity.capacity cap 0 3))

let test_reserve_and_release () =
  let cap = Qos.Capacity.create (diamond ()) ~default_capacity:10.0 in
  let tree = Mctree.Tree.of_edges ~terminals:[ 0; 3 ] [ (0, 1); (1, 3) ] in
  Qos.Capacity.reserve_tree cap ~key:1 ~bandwidth:4.0 tree;
  check Alcotest.(float 0.0) "reserved on tree" 4.0 (Qos.Capacity.reserved cap 0 1);
  check Alcotest.(float 0.0) "residual shrank" 6.0 (Qos.Capacity.residual cap 0 1);
  check Alcotest.(float 0.0) "off-tree untouched" 0.0 (Qos.Capacity.reserved cap 0 2);
  check Alcotest.bool "reservation recorded" true
    (Qos.Capacity.reservation cap ~key:1 <> None);
  Qos.Capacity.release cap ~key:1;
  check Alcotest.(float 0.0) "released" 0.0 (Qos.Capacity.reserved cap 0 1);
  Qos.Capacity.release cap ~key:1 (* idempotent *)

let test_reserve_all_or_nothing () =
  let cap = Qos.Capacity.create (diamond ()) ~default_capacity:10.0 in
  Qos.Capacity.set_capacity cap 1 3 2.0;
  let tree = Mctree.Tree.of_edges ~terminals:[ 0; 3 ] [ (0, 1); (1, 3) ] in
  (try
     Qos.Capacity.reserve_tree cap ~key:1 ~bandwidth:4.0 tree;
     Alcotest.fail "must refuse"
   with Failure _ -> ());
  check Alcotest.(float 0.0) "nothing reserved on failure" 0.0
    (Qos.Capacity.reserved cap 0 1)

let test_reserve_duplicate_key () =
  let cap = Qos.Capacity.create (diamond ()) ~default_capacity:10.0 in
  let tree = Mctree.Tree.of_edges ~terminals:[ 0; 1 ] [ (0, 1) ] in
  Qos.Capacity.reserve_tree cap ~key:1 ~bandwidth:1.0 tree;
  Alcotest.check_raises "duplicate key"
    (Invalid_argument "Capacity.reserve_tree: key already reserved") (fun () ->
      Qos.Capacity.reserve_tree cap ~key:1 ~bandwidth:1.0 tree)

let test_set_capacity_below_reserved () =
  let cap = Qos.Capacity.create (diamond ()) ~default_capacity:10.0 in
  let tree = Mctree.Tree.of_edges ~terminals:[ 0; 1 ] [ (0, 1) ] in
  Qos.Capacity.reserve_tree cap ~key:1 ~bandwidth:6.0 tree;
  Alcotest.check_raises "below reservations"
    (Invalid_argument "Capacity.set_capacity: below current reservations")
    (fun () -> Qos.Capacity.set_capacity cap 0 1 5.0)

let test_constrained_image () =
  let cap = Qos.Capacity.create (diamond ()) ~default_capacity:10.0 in
  Qos.Capacity.set_capacity cap 0 1 3.0;
  let image = Qos.Capacity.constrained_image cap ~bandwidth:5.0 in
  check Alcotest.bool "thin link excluded" false (Net.Graph.has_edge image 0 1);
  check Alcotest.bool "fat links kept" true (Net.Graph.has_edge image 0 2);
  check Alcotest.int "three links remain" 3 (Net.Graph.n_edges image)

let test_residual_respects_link_state () =
  let g = diamond () in
  let cap = Qos.Capacity.create g ~default_capacity:10.0 in
  Net.Graph.set_link g 0 1 ~up:false;
  check Alcotest.(float 0.0) "down link has no residual" 0.0
    (Qos.Capacity.residual cap 0 1);
  let image = Qos.Capacity.constrained_image cap ~bandwidth:1.0 in
  check Alcotest.bool "down link excluded from image" false
    (Net.Graph.has_edge image 0 1)

let test_utilization () =
  let cap = Qos.Capacity.create (diamond ()) ~default_capacity:10.0 in
  let tree = Mctree.Tree.of_edges ~terminals:[ 0; 3 ] [ (0, 1); (1, 3) ] in
  Qos.Capacity.reserve_tree cap ~key:1 ~bandwidth:5.0 tree;
  (* 10 of 40 total reserved. *)
  check Alcotest.(float 1e-9) "mean utilization" 0.25 (Qos.Capacity.utilization cap);
  check Alcotest.(float 1e-9) "max utilization" 0.5 (Qos.Capacity.max_utilization cap)

(* ------------------------------------------------------------------ *)
(* Admission *)

let test_admit_reserves () =
  let cap = Qos.Capacity.create (diamond ()) ~default_capacity:10.0 in
  match
    Qos.Admission.admit cap ~key:1 ~kind:Dgmc.Mc_id.Symmetric ~bandwidth:4.0
      ~members:(members_of [ 0; 3 ])
  with
  | Ok tree ->
    check Alcotest.bool "valid tree" true
      (Mctree.Tree.is_valid_mc_topology (Qos.Capacity.graph cap) tree);
    List.iter
      (fun (u, v) ->
        check Alcotest.(float 0.0) "bandwidth reserved" 4.0
          (Qos.Capacity.reserved cap u v))
      (Mctree.Tree.edges tree)
  | Error r ->
    Alcotest.failf "rejected: %s" (Format.asprintf "%a" Qos.Admission.pp_rejection r)

let test_admit_routes_around_congestion () =
  let cap = Qos.Capacity.create (diamond ()) ~default_capacity:10.0 in
  (* Saturate the cheap path 0-1-3. *)
  Qos.Capacity.set_capacity cap 0 1 1.0;
  match
    Qos.Admission.admit cap ~key:1 ~kind:Dgmc.Mc_id.Symmetric ~bandwidth:4.0
      ~members:(members_of [ 0; 3 ])
  with
  | Ok tree ->
    check Alcotest.bool "detour used" true (Mctree.Tree.mem_edge tree 0 2);
    check Alcotest.bool "thin link avoided" false (Mctree.Tree.mem_edge tree 0 1)
  | Error _ -> Alcotest.fail "feasible demand rejected"

let test_admit_rejects_when_full () =
  let cap = Qos.Capacity.create (diamond ()) ~default_capacity:10.0 in
  let members = members_of [ 0; 3 ] in
  (* Two 4-unit sessions fit (one per path); the third cannot. *)
  check Alcotest.bool "first" true
    (Qos.Admission.admit cap ~key:1 ~kind:Dgmc.Mc_id.Symmetric ~bandwidth:7.0
       ~members
    |> Result.is_ok);
  check Alcotest.bool "second" true
    (Qos.Admission.admit cap ~key:2 ~kind:Dgmc.Mc_id.Symmetric ~bandwidth:7.0
       ~members
    |> Result.is_ok);
  (match
     Qos.Admission.admit cap ~key:3 ~kind:Dgmc.Mc_id.Symmetric ~bandwidth:7.0
       ~members
   with
  | Error Qos.Admission.No_feasible_tree -> ()
  | Ok _ -> Alcotest.fail "over-admitted"
  | Error _ -> Alcotest.fail "wrong rejection");
  (* Releasing one admits the next. *)
  Qos.Admission.release cap ~key:1;
  check Alcotest.bool "after release" true
    (Qos.Admission.admit cap ~key:3 ~kind:Dgmc.Mc_id.Symmetric ~bandwidth:7.0
       ~members
    |> Result.is_ok)

let test_admit_duplicate_key () =
  let cap = Qos.Capacity.create (diamond ()) ~default_capacity:10.0 in
  let members = members_of [ 0; 1 ] in
  ignore
    (Qos.Admission.admit cap ~key:1 ~kind:Dgmc.Mc_id.Symmetric ~bandwidth:1.0
       ~members);
  match
    Qos.Admission.admit cap ~key:1 ~kind:Dgmc.Mc_id.Symmetric ~bandwidth:1.0
      ~members
  with
  | Error Qos.Admission.Already_admitted -> ()
  | _ -> Alcotest.fail "duplicate key must be rejected"

let test_readmit_after_membership_change () =
  let cap = Qos.Capacity.create (diamond ()) ~default_capacity:10.0 in
  ignore
    (Qos.Admission.admit cap ~key:1 ~kind:Dgmc.Mc_id.Symmetric ~bandwidth:4.0
       ~members:(members_of [ 0; 3 ]));
  match
    Qos.Admission.readmit cap ~key:1 ~kind:Dgmc.Mc_id.Symmetric ~bandwidth:4.0
      ~members:(members_of [ 0; 2; 3 ])
  with
  | Ok tree ->
    check Alcotest.(list int) "new member spanned" [ 0; 2; 3 ]
      (Mctree.Tree.Int_set.elements (Mctree.Tree.terminals tree))
  | Error _ -> Alcotest.fail "readmission failed"

let test_feasibility_probe () =
  let cap = Qos.Capacity.create (diamond ()) ~default_capacity:10.0 in
  let members = members_of [ 0; 3 ] in
  check Alcotest.bool "feasible" true
    (Qos.Admission.feasible cap ~kind:Dgmc.Mc_id.Symmetric ~bandwidth:10.0 ~members);
  check Alcotest.bool "infeasible" false
    (Qos.Admission.feasible cap ~kind:Dgmc.Mc_id.Symmetric ~bandwidth:11.0 ~members);
  (* Probing reserves nothing. *)
  check Alcotest.(float 0.0) "no side effects" 0.0 (Qos.Capacity.utilization cap)

let test_admit_asymmetric () =
  let g = Net.Topo_gen.grid ~rows:3 ~cols:3 () in
  let cap = Qos.Capacity.create g ~default_capacity:5.0 in
  let members =
    Dgmc.Member.of_list
      [ (4, Dgmc.Member.Sender); (0, Dgmc.Member.Receiver); (8, Dgmc.Member.Receiver) ]
  in
  match
    Qos.Admission.admit cap ~key:9 ~kind:Dgmc.Mc_id.Asymmetric ~bandwidth:2.0
      ~members
  with
  | Ok tree ->
    (* Source-rooted shape: receivers at shortest-path distance. *)
    List.iter
      (fun (receiver, delay) ->
        check Alcotest.(float 1e-9) "spt distances"
          (Net.Dijkstra.distance g 4 receiver)
          delay)
      (Mctree.Spt.receivers_cost g tree ~root:4)
  | Error _ -> Alcotest.fail "asymmetric admission failed"

let test_admission_sequence_respects_capacity_invariant () =
  (* Random admissions/releases: reserved never exceeds capacity. *)
  let g = Experiments.Harness.graph_for ~seed:5 ~n:25 in
  let cap = Qos.Capacity.create g ~default_capacity:10.0 in
  let rng = Sim.Rng.create 44 in
  let live = ref [] in
  for key = 1 to 60 do
    if List.length !live > 5 && Sim.Rng.bool rng then begin
      let victim = Sim.Rng.pick rng !live in
      Qos.Admission.release cap ~key:victim;
      live := List.filter (fun k -> k <> victim) !live
    end
    else begin
      let members = members_of (Sim.Rng.sample rng 4 (List.init 25 (fun i -> i))) in
      match
        Qos.Admission.admit cap ~key ~kind:Dgmc.Mc_id.Symmetric
          ~bandwidth:(1.0 +. Sim.Rng.float rng 3.0)
          ~members
      with
      | Ok _ -> live := key :: !live
      | Error _ -> ()
    end;
    if Qos.Capacity.max_utilization cap > 1.0 +. 1e-9 then
      Alcotest.fail "capacity exceeded"
  done;
  check Alcotest.bool "some sessions admitted" true (!live <> [])

let () =
  Alcotest.run "qos"
    [
      ( "capacity",
        [
          Alcotest.test_case "defaults" `Quick test_capacity_defaults;
          Alcotest.test_case "override" `Quick test_capacity_override;
          Alcotest.test_case "reserve and release" `Quick test_reserve_and_release;
          Alcotest.test_case "all-or-nothing" `Quick test_reserve_all_or_nothing;
          Alcotest.test_case "duplicate key" `Quick test_reserve_duplicate_key;
          Alcotest.test_case "capacity below reservations" `Quick
            test_set_capacity_below_reserved;
          Alcotest.test_case "constrained image" `Quick test_constrained_image;
          Alcotest.test_case "link state respected" `Quick
            test_residual_respects_link_state;
          Alcotest.test_case "utilization" `Quick test_utilization;
        ] );
      ( "admission",
        [
          Alcotest.test_case "admit reserves" `Quick test_admit_reserves;
          Alcotest.test_case "routes around congestion" `Quick
            test_admit_routes_around_congestion;
          Alcotest.test_case "rejects when full" `Quick test_admit_rejects_when_full;
          Alcotest.test_case "duplicate key" `Quick test_admit_duplicate_key;
          Alcotest.test_case "readmit on membership change" `Quick
            test_readmit_after_membership_change;
          Alcotest.test_case "feasibility probe" `Quick test_feasibility_probe;
          Alcotest.test_case "asymmetric admission" `Quick test_admit_asymmetric;
          Alcotest.test_case "random sequence invariant" `Quick
            test_admission_sequence_respects_capacity_invariant;
        ] );
    ]
