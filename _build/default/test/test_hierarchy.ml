(* Tests for the hierarchical D-GMC extension (lib/hierarchy). *)

let check = Alcotest.check

let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1

let assert_converged name h =
  match Hierarchy.Hmc.divergence h mc with
  | [] -> ()
  | reasons -> Alcotest.failf "%s: %s" name (String.concat "; " reasons)

let make ?(seed = 5) ?(areas = 4) ?(per_area = 8) () =
  let rng = Sim.Rng.create seed in
  let graph, partition = Net.Topo_gen.clustered rng ~areas ~per_area () in
  (graph, partition, Hierarchy.Hmc.create ~graph ~partition ~config:Dgmc.Config.atm_lan ())

(* ------------------------------------------------------------------ *)
(* Clustered topology generator *)

let test_clustered_shape () =
  let rng = Sim.Rng.create 1 in
  let graph, partition = Net.Topo_gen.clustered rng ~areas:5 ~per_area:6 () in
  check Alcotest.int "nodes" 30 (Net.Graph.n_nodes graph);
  check Alcotest.int "areas" 5 (Array.length partition);
  check Alcotest.bool "connected" true (Net.Bfs.is_connected graph);
  Array.iteri
    (fun a members ->
      check Alcotest.int "area size" 6 (List.length members);
      List.iter
        (fun s ->
          check Alcotest.int "contiguous ids" a (s / 6))
        members)
    partition

let test_clustered_inter_links () =
  let rng = Sim.Rng.create 2 in
  let graph, partition = Net.Topo_gen.clustered rng ~areas:3 ~per_area:5 ~inter_links:2 () in
  let area_of s = s / 5 in
  let inter =
    List.filter
      (fun (e : Net.Graph.edge) -> area_of e.u <> area_of e.v)
      (Net.Graph.edges graph)
  in
  (* A ring of 3 areas with 2 links per adjacency => 6 inter links (a
     few may collide and be dropped, never more than 6). *)
  check Alcotest.bool "inter-link count in range" true
    (List.length inter >= 3 && List.length inter <= 6);
  ignore partition

(* ------------------------------------------------------------------ *)
(* Construction validation *)

let test_create_validation () =
  let graph = Net.Topo_gen.grid ~rows:2 ~cols:4 () in
  Alcotest.check_raises "overlap" (Invalid_argument "Hmc: switch 0 in two areas")
    (fun () ->
      ignore
        (Hierarchy.Hmc.create ~graph
           ~partition:[| [ 0; 1; 2; 3 ]; [ 0; 4; 5; 6 ] |]
           ~config:Dgmc.Config.atm_lan ()));
  Alcotest.check_raises "not covering"
    (Invalid_argument "Hmc: partition does not cover the graph") (fun () ->
      ignore
        (Hierarchy.Hmc.create ~graph
           ~partition:[| [ 0; 1; 2 ]; [ 4; 5; 6 ] |]
           ~config:Dgmc.Config.atm_lan ()))

let test_logical_graph_built () =
  let _, partition, h = make () in
  let lg = Hierarchy.Hmc.logical_graph h in
  check Alcotest.int "one node per area" (Array.length partition)
    (Net.Graph.n_nodes lg);
  (* The clustered generator rings the areas, so the logical graph is
     connected. *)
  check Alcotest.bool "logical connected" true (Net.Bfs.is_connected lg);
  check Alcotest.int "leaders are lowest ids" 0 (Hierarchy.Hmc.leader h 0)

(* ------------------------------------------------------------------ *)
(* Protocol behaviour *)

let test_single_area_mc () =
  (* All members in one area: no logical edges, no gateways. *)
  let _, partition, h = make () in
  let members =
    match partition.(1) with a :: b :: _ -> [ a; b ] | _ -> assert false
  in
  List.iter (fun s -> Hierarchy.Hmc.join h ~switch:s mc Dgmc.Member.Both) members;
  Hierarchy.Hmc.run h;
  assert_converged "single-area MC" h;
  let totals = Hierarchy.Hmc.totals h in
  check Alcotest.int "no gateways needed" 0 totals.gateway_instructions;
  let tree = Option.get (Hierarchy.Hmc.global_tree h mc) in
  check Alcotest.(list int) "terminals" (List.sort compare members)
    (Mctree.Tree.Int_set.elements (Mctree.Tree.terminals tree))

let test_cross_area_mc () =
  let graph, partition, h = make () in
  let pick a = List.nth partition.(a) 2 in
  let members = [ pick 0; pick 2 ] in
  List.iter (fun s -> Hierarchy.Hmc.join h ~switch:s mc Dgmc.Member.Both) members;
  Hierarchy.Hmc.run h;
  assert_converged "cross-area MC" h;
  let tree = Option.get (Hierarchy.Hmc.global_tree h mc) in
  check Alcotest.bool "valid stitched tree" true
    (Mctree.Tree.is_valid_mc_topology graph
       (Mctree.Tree.with_terminals tree (List.sort compare members)));
  let totals = Hierarchy.Hmc.totals h in
  check Alcotest.bool "gateways instructed" true (totals.gateway_instructions > 0);
  check Alcotest.bool "logical level active" true (totals.logical_floodings > 0)

let test_all_areas_mc () =
  let graph, partition, h = make ~areas:5 ~per_area:6 () in
  let members = Array.to_list (Array.map (fun l -> List.nth l 1) partition) in
  List.iter (fun s -> Hierarchy.Hmc.join h ~switch:s mc Dgmc.Member.Both) members;
  Hierarchy.Hmc.run h;
  assert_converged "all-areas MC" h;
  let tree = Option.get (Hierarchy.Hmc.global_tree h mc) in
  check Alcotest.bool "spans all areas' members" true
    (Mctree.Tree.is_valid_mc_topology graph tree)

let test_leave_shrinks () =
  let _, partition, h = make () in
  let pick a i = List.nth partition.(a) i in
  List.iter
    (fun s -> Hierarchy.Hmc.join h ~switch:s mc Dgmc.Member.Both)
    [ pick 0 1; pick 0 2; pick 3 1 ];
  Hierarchy.Hmc.run h;
  assert_converged "before leave" h;
  (* The only member of area 3 leaves: the logical MC shrinks and area
     3's gateways retire. *)
  Hierarchy.Hmc.leave h ~switch:(pick 3 1) mc;
  Hierarchy.Hmc.run h;
  assert_converged "after remote area emptied" h;
  let tree = Option.get (Hierarchy.Hmc.global_tree h mc) in
  check Alcotest.(list int) "terminals shrank"
    (List.sort compare [ pick 0 1; pick 0 2 ])
    (Mctree.Tree.Int_set.elements (Mctree.Tree.terminals tree))

let test_full_drain () =
  let _, partition, h = make () in
  let members = [ List.nth partition.(0) 1; List.nth partition.(2) 1 ] in
  List.iter (fun s -> Hierarchy.Hmc.join h ~switch:s mc Dgmc.Member.Both) members;
  Hierarchy.Hmc.run h;
  List.iter
    (fun s ->
      Hierarchy.Hmc.leave h ~switch:s mc;
      Hierarchy.Hmc.run h)
    members;
  assert_converged "after drain" h;
  check Alcotest.bool "no global tree" true (Hierarchy.Hmc.global_tree h mc = None);
  let totals = Hierarchy.Hmc.totals h in
  check Alcotest.int "events" 4 totals.events

let test_member_also_gateway () =
  (* A switch that is both a real member and a gateway must stay in the
     MC when its host leaves while it still relays, and vice versa. *)
  let graph, partition, h = make () in
  ignore graph;
  (* Put a member at every switch of area 1 likely to include the
     gateway, plus a member in area 3 to force inter-area structure. *)
  List.iter
    (fun s -> Hierarchy.Hmc.join h ~switch:s mc Dgmc.Member.Both)
    (partition.(1) @ [ List.nth partition.(3) 1 ]);
  Hierarchy.Hmc.run h;
  assert_converged "dense area + remote member" h;
  (* Now every area-1 host leaves; gateways (if any in area 1) must
     persist exactly while the logical tree needs them. *)
  List.iter (fun s -> Hierarchy.Hmc.leave h ~switch:s mc) partition.(1);
  Hierarchy.Hmc.run h;
  assert_converged "area-1 hosts gone" h

let test_churn_convergence () =
  let _, partition, h = make ~areas:5 ~per_area:6 ~seed:9 () in
  let rng = Sim.Rng.create 33 in
  let all = Array.to_list partition |> List.concat in
  let members = ref [] in
  for _ = 1 to 30 do
    let s = Sim.Rng.pick rng all in
    if List.mem s !members then begin
      members := List.filter (fun x -> x <> s) !members;
      Hierarchy.Hmc.leave h ~switch:s mc
    end
    else begin
      members := s :: !members;
      Hierarchy.Hmc.join h ~switch:s mc Dgmc.Member.Both
    end;
    Hierarchy.Hmc.run h;
    assert_converged "churn step" h
  done

let test_signaling_stays_local () =
  (* An event in area 0, with the MC confined to areas 0 and 1, must not
     flood areas 2 and 3 — the scalability claim. *)
  let _, partition, h = make ~areas:4 ~per_area:8 () in
  let pick a i = List.nth partition.(a) i in
  List.iter
    (fun s -> Hierarchy.Hmc.join h ~switch:s mc Dgmc.Member.Both)
    [ pick 0 1; pick 1 1 ];
  Hierarchy.Hmc.run h;
  assert_converged "setup" h;
  Hierarchy.Hmc.reset_counters h;
  (* Another join in area 0: purely intra-area (area already a logical
     member, gateways unchanged). *)
  Hierarchy.Hmc.join h ~switch:(pick 0 3) mc Dgmc.Member.Both;
  Hierarchy.Hmc.run h;
  assert_converged "local join" h;
  let totals = Hierarchy.Hmc.totals h in
  check Alcotest.int "no logical signaling" 0 totals.logical_floodings;
  check Alcotest.bool "intra signaling only in one area" true
    (totals.switches_touched <= List.length partition.(0))

let test_reset_counters () =
  let _, partition, h = make () in
  Hierarchy.Hmc.join h ~switch:(List.nth partition.(0) 1) mc Dgmc.Member.Both;
  Hierarchy.Hmc.run h;
  Hierarchy.Hmc.reset_counters h;
  let t = Hierarchy.Hmc.totals h in
  check Alcotest.int "events" 0 t.events;
  check Alcotest.int "intra floods" 0 t.intra_floodings;
  check Alcotest.int "logical floods" 0 t.logical_floodings;
  check Alcotest.int "gateway instructions" 0 t.gateway_instructions;
  check Alcotest.int "computations" 0 t.computations

let test_logical_t_hop_parameter () =
  (* A slower logical level must not affect correctness, only timing. *)
  let rng = Sim.Rng.create 5 in
  let graph, partition = Net.Topo_gen.clustered rng ~areas:4 ~per_area:8 () in
  let h =
    Hierarchy.Hmc.create ~graph ~partition ~config:Dgmc.Config.atm_lan
      ~logical_t_hop:(50.0 *. Dgmc.Config.atm_lan.t_hop)
      ()
  in
  List.iter
    (fun s -> Hierarchy.Hmc.join h ~switch:s mc Dgmc.Member.Both)
    [ List.nth partition.(0) 1; List.nth partition.(2) 1 ];
  Hierarchy.Hmc.run h;
  assert_converged "slow logical level" h

let () =
  Alcotest.run "hierarchy"
    [
      ( "clustered-topology",
        [
          Alcotest.test_case "shape" `Quick test_clustered_shape;
          Alcotest.test_case "inter links" `Quick test_clustered_inter_links;
        ] );
      ( "construction",
        [
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "logical graph" `Quick test_logical_graph_built;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "single-area MC" `Quick test_single_area_mc;
          Alcotest.test_case "cross-area MC" `Quick test_cross_area_mc;
          Alcotest.test_case "all-areas MC" `Quick test_all_areas_mc;
          Alcotest.test_case "leave shrinks" `Quick test_leave_shrinks;
          Alcotest.test_case "full drain" `Quick test_full_drain;
          Alcotest.test_case "member doubling as gateway" `Quick
            test_member_also_gateway;
          Alcotest.test_case "churn" `Quick test_churn_convergence;
          Alcotest.test_case "signaling stays local" `Quick
            test_signaling_stays_local;
          Alcotest.test_case "counter reset" `Quick test_reset_counters;
          Alcotest.test_case "logical t_hop" `Quick test_logical_t_hop_parameter;
        ] );
    ]
