(* Tests for the hardening extensions documented in DESIGN.md §3:
   deterministic tie-breaks, event-counter tombstones, member-snapshot
   adoption, and link-up database resynchronisation. *)

let check = Alcotest.check

let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1

let assert_converged name net =
  match Dgmc.Protocol.divergence net mc with
  | [] -> ()
  | reasons -> Alcotest.failf "%s: %s" name (String.concat "; " reasons)

(* Two triangles joined by one bridge; cutting 2-3 partitions. *)
let dumbbell () =
  Net.Graph.of_edges 6
    [
      (0, 1, 1.0); (1, 2, 1.0); (0, 2, 1.0);
      (3, 4, 1.0); (4, 5, 1.0); (3, 5, 1.0);
      (2, 3, 1.0);
    ]

(* ------------------------------------------------------------------ *)
(* Timestamp raise_to *)

let test_raise_to () =
  let ts = Dgmc.Timestamp.of_array in
  let a = ts [| 2; 0; 1 |] in
  check Alcotest.bool "raises" true
    (Dgmc.Timestamp.equal (ts [| 2; 3; 1 |]) (Dgmc.Timestamp.raise_to a 1 3));
  check Alcotest.bool "never lowers" true
    (Dgmc.Timestamp.equal a (Dgmc.Timestamp.raise_to a 0 1));
  check Alcotest.bool "equal is no-op" true
    (Dgmc.Timestamp.equal a (Dgmc.Timestamp.raise_to a 0 2));
  Alcotest.check_raises "range" (Invalid_argument "Timestamp.raise_to: out of range")
    (fun () -> ignore (Dgmc.Timestamp.raise_to a 3 1))

(* ------------------------------------------------------------------ *)
(* Tombstones: event numbering survives state deletion *)

let test_rejoin_after_full_drain () =
  (* The MC dies completely (all state deleted), then the same switch
     rejoins: its event numbering must continue, and the new incarnation
     must converge. *)
  let net = Dgmc.Protocol.create ~graph:(dumbbell ()) ~config:Dgmc.Config.atm_lan () in
  Dgmc.Protocol.join net ~switch:0 mc Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  Dgmc.Protocol.leave net ~switch:0 mc;
  Dgmc.Protocol.run net;
  (* All state gone. *)
  for i = 0 to 5 do
    check Alcotest.bool "state deleted" true
      (Dgmc.Switch.members (Dgmc.Protocol.switch net i) mc = None)
  done;
  Dgmc.Protocol.join net ~switch:0 mc Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  assert_converged "after rejoin" net;
  (* The rejoin is switch 0's third event: counters resumed. *)
  let r, _, _ = Option.get (Dgmc.Switch.stamps (Dgmc.Protocol.switch net 0) mc) in
  check Alcotest.int "event numbering continues" 3 (Dgmc.Timestamp.get r 0)

let test_leave_racing_remote_join () =
  (* The scenario that motivated tombstones: switch 0 joins and leaves
     before it has heard that switch 5 joined concurrently (5 is three
     hops away), so 0 transiently sees an empty member list.  Later 0
     rejoins; the rejoin must not read as a stale replay anywhere. *)
  let graph = dumbbell () in
  let config = Dgmc.Config.wan in
  let net = Dgmc.Protocol.create ~graph ~config () in
  let round = Dgmc.Config.round_length config ~graph in
  Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:0 mc Dgmc.Member.Both;
  Dgmc.Protocol.schedule_join net ~at:(round /. 100.0) ~switch:5 mc Dgmc.Member.Both;
  (* 0 leaves before 5's join can possibly have arrived. *)
  Dgmc.Protocol.schedule_leave net ~at:(round /. 50.0) ~switch:0 mc;
  (* ... and rejoins much later. *)
  Dgmc.Protocol.schedule_join net ~at:(10.0 *. round) ~switch:0 mc Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  assert_converged "rejoin not lost" net;
  let m = Option.get (Dgmc.Switch.members (Dgmc.Protocol.switch net 3) mc) in
  check Alcotest.(list int) "both members present" [ 0; 5 ] (Dgmc.Member.ids m)

let test_mc_id_reuse_across_incarnations () =
  (* Create, destroy and recreate the same MC id several times with
     different memberships; each incarnation must converge cleanly. *)
  let net = Dgmc.Protocol.create ~graph:(dumbbell ()) ~config:Dgmc.Config.atm_lan () in
  List.iter
    (fun members ->
      List.iter
        (fun s -> Dgmc.Protocol.join net ~switch:s mc Dgmc.Member.Both)
        members;
      Dgmc.Protocol.run net;
      assert_converged "incarnation up" net;
      let m = Option.get (Dgmc.Switch.members (Dgmc.Protocol.switch net 1) mc) in
      check Alcotest.(list int) "members" (List.sort compare members)
        (Dgmc.Member.ids m);
      List.iter (fun s -> Dgmc.Protocol.leave net ~switch:s mc) members;
      Dgmc.Protocol.run net;
      assert_converged "incarnation down" net)
    [ [ 0; 4 ]; [ 1; 5 ]; [ 2; 3; 0 ] ]

(* ------------------------------------------------------------------ *)
(* Snapshot adoption *)

let test_snapshot_carried_on_proposals () =
  (* Proposal LSAs carry the proposer's member list; a receiver applies
     it only when the stamp covers everything it expects. *)
  let st = Dgmc.Mc_state.create ~n:3 in
  ignore st;
  (* Integration-level check: a switch that missed a membership event
     recovers it from the next accepted proposal.  Covered end-to-end by
     resync tests below; here we check the LSA structure itself. *)
  let lsa =
    Dgmc.Mc_lsa.make ~src:0 ~event:Dgmc.Mc_lsa.No_event ~mc
      ~proposal:(Mctree.Tree.of_terminals [ 0 ])
      ~members:(Dgmc.Member.of_list [ (0, Dgmc.Member.Both) ])
      ~stamp:(Dgmc.Timestamp.of_array [| 1; 0; 0 |])
      ()
  in
  check Alcotest.bool "members attached" true (lsa.members <> None);
  check Alcotest.bool "not an event" false (Dgmc.Mc_lsa.is_event lsa)

(* ------------------------------------------------------------------ *)
(* Partition + resynchronisation *)

let partitioned_net () =
  let graph = dumbbell () in
  let net = Dgmc.Protocol.create ~graph ~config:Dgmc.Config.atm_lan () in
  List.iter
    (fun s -> Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:s mc Dgmc.Member.Both)
    [ 0; 5 ];
  Dgmc.Protocol.run net;
  Dgmc.Protocol.link_down net 2 3;
  Dgmc.Protocol.run net;
  net

let test_heal_without_new_events () =
  (* The pure resync case: after the cut heals, the database exchange
     alone (no further membership events) restores global agreement. *)
  let net = partitioned_net () in
  Dgmc.Protocol.link_up net 2 3;
  Dgmc.Protocol.run net;
  assert_converged "heal by resync alone" net;
  let tree = Option.get (Dgmc.Protocol.agreed_topology net mc) in
  check Alcotest.(list int) "both members spanned" [ 0; 5 ]
    (Mctree.Tree.Int_set.elements (Mctree.Tree.terminals tree))

let test_heal_with_membership_changes_during_partition () =
  (* Memberships change on BOTH sides while partitioned; healing must
     reconcile the union view. *)
  let net = partitioned_net () in
  Dgmc.Protocol.join net ~switch:1 mc Dgmc.Member.Both;
  (* left side *)
  Dgmc.Protocol.join net ~switch:4 mc Dgmc.Member.Both;
  (* right side *)
  Dgmc.Protocol.run net;
  Dgmc.Protocol.link_up net 2 3;
  Dgmc.Protocol.run net;
  assert_converged "heal reconciles both sides' changes" net;
  let m = Option.get (Dgmc.Switch.members (Dgmc.Protocol.switch net 2) mc) in
  check Alcotest.(list int) "union membership" [ 0; 1; 4; 5 ] (Dgmc.Member.ids m)

let test_heal_with_leave_during_partition () =
  (* A member leaves while partitioned; after healing the other side
     must learn the departure through resync. *)
  let net = partitioned_net () in
  Dgmc.Protocol.leave net ~switch:5 mc;
  Dgmc.Protocol.run net;
  Dgmc.Protocol.link_up net 2 3;
  Dgmc.Protocol.run net;
  assert_converged "departure propagates through heal" net;
  let m = Option.get (Dgmc.Switch.members (Dgmc.Protocol.switch net 0) mc) in
  check Alcotest.(list int) "only 0 remains" [ 0 ] (Dgmc.Member.ids m)

let test_resync_noop_when_consistent () =
  (* A link-up on an already-consistent network must not disturb state
     or trigger computations. *)
  let graph = dumbbell () in
  let net = Dgmc.Protocol.create ~graph ~config:Dgmc.Config.atm_lan () in
  List.iter
    (fun s -> Dgmc.Protocol.join net ~switch:s mc Dgmc.Member.Both)
    [ 0; 5 ];
  Dgmc.Protocol.run net;
  let before = Option.get (Dgmc.Protocol.agreed_topology net mc) in
  (* Take a non-tree, non-bridge link down and up: 0-1 is in a triangle. *)
  let offtree =
    List.find
      (fun (e : Net.Graph.edge) -> not (Mctree.Tree.mem_edge before e.u e.v))
      (Net.Graph.edges graph)
  in
  Dgmc.Protocol.link_down net offtree.u offtree.v;
  Dgmc.Protocol.run net;
  Dgmc.Protocol.reset_counters net;
  Dgmc.Protocol.link_up net offtree.u offtree.v;
  Dgmc.Protocol.run net;
  assert_converged "still consistent" net;
  let totals = Dgmc.Protocol.totals net in
  check Alcotest.int "no MC signaling" 0 totals.mc_floodings;
  check Alcotest.int "no computations" 0 totals.computations;
  check Alcotest.bool "topology untouched" true
    (Mctree.Tree.equal before (Option.get (Dgmc.Protocol.agreed_topology net mc)))

let test_direct_resync_call () =
  (* Unit-level: pulling from a better-informed peer adopts its view. *)
  let graph = dumbbell () in
  let net = Dgmc.Protocol.create ~graph ~config:Dgmc.Config.atm_lan () in
  Dgmc.Protocol.join net ~switch:0 mc Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  let informed = Dgmc.Protocol.switch net 0 in
  (* Forge an ignorant peer by resyncing a fresh, isolated switch. *)
  let blank =
    Dgmc.Switch.create ~id:5 ~n:6 ~config:Dgmc.Config.atm_lan
      ~engine:(Dgmc.Protocol.engine net) ~graph ()
  in
  Dgmc.Switch.set_flood blank (fun _ -> ());
  check Alcotest.bool "blank has no state" true (Dgmc.Switch.members blank mc = None);
  Dgmc.Switch.resync blank ~peer:informed;
  (match Dgmc.Switch.members blank mc with
  | Some m -> check Alcotest.(list int) "membership pulled" [ 0 ] (Dgmc.Member.ids m)
  | None -> Alcotest.fail "resync must create state");
  let r_blank, _, _ = Option.get (Dgmc.Switch.stamps blank mc) in
  let r_peer, _, _ = Option.get (Dgmc.Switch.stamps informed mc) in
  check Alcotest.bool "R merged" true (Dgmc.Timestamp.geq r_blank r_peer)

(* ------------------------------------------------------------------ *)
(* Tie-break determinism *)

let test_equal_stamp_tiebreak_is_order_independent () =
  (* Feed the same two equal-stamp proposals to two switches in opposite
     orders: both must end on the Tree.compare-minimal one. *)
  let graph = Net.Topo_gen.grid ~rows:2 ~cols:3 () in
  let run order =
    let engine = Sim.Engine.create () in
    let sw =
      Dgmc.Switch.create ~id:5 ~n:6 ~config:Dgmc.Config.atm_lan ~engine ~graph ()
    in
    Dgmc.Switch.set_flood sw (fun _ -> ());
    let stamp = Dgmc.Timestamp.of_array [| 1; 1; 0; 0; 0; 0 |] in
    let members =
      Dgmc.Member.of_list [ (0, Dgmc.Member.Both); (1, Dgmc.Member.Both) ]
    in
    (* Two different valid trees for {0, 1}: direct edge vs the detour
       through 3 and 4. *)
    let tree_a = Mctree.Tree.of_edges ~terminals:[ 0; 1 ] [ (0, 1) ] in
    let tree_b =
      Mctree.Tree.of_edges ~terminals:[ 0; 1 ] [ (0, 3); (3, 4); (1, 4) ]
    in
    let lsa src tree =
      Dgmc.Mc_lsa.make ~src
        ~event:(if src = 0 then Dgmc.Mc_lsa.Join Dgmc.Member.Both else Dgmc.Mc_lsa.Join Dgmc.Member.Both)
        ~mc ~proposal:tree ~members ~stamp ()
    in
    List.iter (Dgmc.Switch.receive sw)
      (match order with
      | `AB -> [ lsa 0 tree_a; lsa 1 tree_b ]
      | `BA -> [ lsa 0 tree_b; lsa 1 tree_a ]);
    Sim.Engine.run engine;
    Option.get (Dgmc.Switch.topology sw mc)
  in
  let t_ab = run `AB and t_ba = run `BA in
  check Alcotest.bool "same winner regardless of order" true
    (Mctree.Tree.equal t_ab t_ba)

let () =
  Alcotest.run "dgmc-hardening"
    [
      ("timestamp", [ Alcotest.test_case "raise_to" `Quick test_raise_to ]);
      ( "tombstones",
        [
          Alcotest.test_case "rejoin after full drain" `Quick
            test_rejoin_after_full_drain;
          Alcotest.test_case "leave racing remote join" `Quick
            test_leave_racing_remote_join;
          Alcotest.test_case "MC id reuse" `Quick test_mc_id_reuse_across_incarnations;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "proposals carry member snapshots" `Quick
            test_snapshot_carried_on_proposals;
        ] );
      ( "resync",
        [
          Alcotest.test_case "heal without new events" `Quick
            test_heal_without_new_events;
          Alcotest.test_case "heal with changes on both sides" `Quick
            test_heal_with_membership_changes_during_partition;
          Alcotest.test_case "heal with leave during partition" `Quick
            test_heal_with_leave_during_partition;
          Alcotest.test_case "no-op on consistent network" `Quick
            test_resync_noop_when_consistent;
          Alcotest.test_case "direct resync pull" `Quick test_direct_resync_call;
        ] );
      ( "tie-break",
        [
          Alcotest.test_case "order independence" `Quick
            test_equal_stamp_tiebreak_is_order_independent;
        ] );
    ]
