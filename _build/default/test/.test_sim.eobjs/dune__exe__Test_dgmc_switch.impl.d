test/test_dgmc_switch.ml: Alcotest Array Dgmc List Mctree Net Option Sim
