test/test_dgmc_switch.mli:
