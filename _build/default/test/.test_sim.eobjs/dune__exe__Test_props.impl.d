test/test_props.ml: Alcotest Array Dataplane Dgmc Experiments Float Hierarchy List Lsr Mctree Net Printf QCheck2 QCheck_alcotest Qos Sim String
