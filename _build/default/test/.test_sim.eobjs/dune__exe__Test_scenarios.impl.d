test/test_scenarios.ml: Alcotest Array Dgmc Filename Format List String Sys Workload
