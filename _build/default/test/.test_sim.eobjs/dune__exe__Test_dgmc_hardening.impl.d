test/test_dgmc_hardening.ml: Alcotest Dgmc List Mctree Net Option Sim String
