test/test_net.ml: Alcotest Array List Net Sim String
