test/test_metrics.ml: Alcotest Filename Format List Metrics String Sys
