test/test_sim.ml: Alcotest Array Engine Event_queue Float Heap List Option Rng Sim Trace
