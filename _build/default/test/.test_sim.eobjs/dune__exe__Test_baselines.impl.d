test/test_baselines.ml: Alcotest Baselines Dgmc List Mctree Net Option Sim
