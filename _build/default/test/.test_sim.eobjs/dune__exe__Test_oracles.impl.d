test/test_oracles.ml: Alcotest Array Float Hashtbl List Lsr Mctree Net Printf Sim
