test/test_workload.ml: Alcotest Dgmc Experiments Float Format List Net Option Sim String Workload
