test/test_integration.ml: Alcotest Dgmc Experiments Float List Lsr Mctree Metrics Net Option Sim String Workload
