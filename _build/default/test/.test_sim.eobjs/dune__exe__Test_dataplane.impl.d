test/test_dataplane.ml: Alcotest Dataplane List Mctree Net Sim
