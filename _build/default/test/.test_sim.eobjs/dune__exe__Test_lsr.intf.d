test/test_lsr.mli:
