test/test_dgmc_hardening.mli:
