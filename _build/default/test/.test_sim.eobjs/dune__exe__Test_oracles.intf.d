test/test_oracles.mli:
