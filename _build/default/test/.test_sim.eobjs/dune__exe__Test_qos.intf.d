test/test_qos.mli:
