test/test_dgmc_unit.mli:
