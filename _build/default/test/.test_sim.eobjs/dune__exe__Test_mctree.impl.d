test/test_mctree.ml: Alcotest Hashtbl List Mctree Net Sim
