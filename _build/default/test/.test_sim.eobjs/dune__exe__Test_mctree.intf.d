test/test_mctree.mli:
