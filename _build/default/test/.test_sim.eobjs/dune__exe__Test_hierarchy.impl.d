test/test_hierarchy.ml: Alcotest Array Dgmc Hierarchy List Mctree Net Option Sim String
