test/test_dgmc_protocol.ml: Alcotest Dgmc Experiments List Lsr Mctree Net Option Printf Sim String
