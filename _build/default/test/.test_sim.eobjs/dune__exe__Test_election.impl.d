test/test_election.ml: Alcotest Dgmc Election List Net Printf
