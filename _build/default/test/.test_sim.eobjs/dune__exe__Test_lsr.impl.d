test/test_lsr.ml: Alcotest Array List Lsr Net Sim
