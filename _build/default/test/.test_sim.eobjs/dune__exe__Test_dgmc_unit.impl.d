test/test_dgmc_unit.ml: Alcotest Array Dgmc List Mctree Net QCheck2 QCheck_alcotest
