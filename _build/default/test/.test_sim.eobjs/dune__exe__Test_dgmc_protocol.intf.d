test/test_dgmc_protocol.mli:
