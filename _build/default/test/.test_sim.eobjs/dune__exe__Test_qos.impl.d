test/test_qos.ml: Alcotest Dgmc Experiments Format List Mctree Net Qos Result Sim
