(* Tests for the comparison protocols (lib/baselines): brute-force LSR
   multicast, MOSPF, CBT, and core selection. *)

let check = Alcotest.check

let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1

let grid33 () = Net.Topo_gen.grid ~rows:3 ~cols:3 ()

(* ------------------------------------------------------------------ *)
(* Brute force *)

let test_brute_computations_scale_with_n () =
  let graph = grid33 () in
  let bf = Baselines.Brute_force.create ~graph ~config:Dgmc.Config.atm_lan () in
  Baselines.Brute_force.join bf ~switch:0 mc Dgmc.Member.Both;
  Baselines.Brute_force.run bf;
  let t = Baselines.Brute_force.totals bf in
  check Alcotest.int "events" 1 t.events;
  (* Every one of the 9 switches recomputes per membership LSA. *)
  check Alcotest.int "n computations per event" 9 t.computations;
  check Alcotest.int "one flooding" 1 t.floodings

let test_brute_converges () =
  let graph = grid33 () in
  let bf = Baselines.Brute_force.create ~graph ~config:Dgmc.Config.atm_lan () in
  List.iteri
    (fun i s ->
      Baselines.Brute_force.schedule_join bf
        ~at:(float_of_int i *. 1e-5)
        ~switch:s mc Dgmc.Member.Both)
    [ 0; 4; 8 ];
  Baselines.Brute_force.run bf;
  check Alcotest.bool "agreement" true (Baselines.Brute_force.converged bf mc);
  match Baselines.Brute_force.topology bf ~switch:0 mc with
  | Some tree ->
    check Alcotest.bool "valid topology" true
      (Mctree.Tree.is_valid_mc_topology graph tree);
    check Alcotest.(list int) "terminals" [ 0; 4; 8 ]
      (Mctree.Tree.Int_set.elements (Mctree.Tree.terminals tree))
  | None -> Alcotest.fail "no topology at switch 0"

let test_brute_leave () =
  let graph = grid33 () in
  let bf = Baselines.Brute_force.create ~graph ~config:Dgmc.Config.atm_lan () in
  Baselines.Brute_force.join bf ~switch:0 mc Dgmc.Member.Both;
  Baselines.Brute_force.run bf;
  Baselines.Brute_force.join bf ~switch:8 mc Dgmc.Member.Both;
  Baselines.Brute_force.run bf;
  Baselines.Brute_force.leave bf ~switch:8 mc;
  Baselines.Brute_force.run bf;
  check Alcotest.bool "agreement" true (Baselines.Brute_force.converged bf mc);
  let tree = Option.get (Baselines.Brute_force.topology bf ~switch:4 mc) in
  check Alcotest.(list int) "member left" [ 0 ]
    (Mctree.Tree.Int_set.elements (Mctree.Tree.terminals tree))

let test_brute_reset_counters () =
  let graph = grid33 () in
  let bf = Baselines.Brute_force.create ~graph ~config:Dgmc.Config.atm_lan () in
  Baselines.Brute_force.join bf ~switch:0 mc Dgmc.Member.Both;
  Baselines.Brute_force.run bf;
  Baselines.Brute_force.reset_counters bf;
  let t = Baselines.Brute_force.totals bf in
  check Alcotest.int "events reset" 0 t.events;
  check Alcotest.int "computations reset" 0 t.computations

(* ------------------------------------------------------------------ *)
(* MOSPF *)

let test_mospf_membership_propagates () =
  let graph = grid33 () in
  let m = Baselines.Mospf.create ~graph ~config:Dgmc.Config.atm_lan () in
  Baselines.Mospf.join m ~switch:2 ~group:1;
  Baselines.Mospf.join m ~switch:7 ~group:1;
  Baselines.Mospf.run m;
  for sw = 0 to 8 do
    check Alcotest.(list int) "member list at every router" [ 2; 7 ]
      (Baselines.Mospf.members m ~switch:sw ~group:1)
  done;
  check Alcotest.int "no computation without data" 0
    (Baselines.Mospf.totals m).computations

let test_mospf_data_driven_computation () =
  let graph = grid33 () in
  let m = Baselines.Mospf.create ~graph ~config:Dgmc.Config.atm_lan () in
  Baselines.Mospf.join m ~switch:0 ~group:1;
  Baselines.Mospf.join m ~switch:8 ~group:1;
  Baselines.Mospf.run m;
  Baselines.Mospf.send_packet m ~src:0 ~group:1;
  Baselines.Mospf.run m;
  let t = Baselines.Mospf.totals m in
  (* Every router on the (0, 1) source tree computed once.  The SPT from
     0 to 8 in the grid has 5 nodes on its path. *)
  let tree = Mctree.Spt.source_rooted graph ~root:0 ~receivers:[ 8 ] in
  check Alcotest.int "computations = on-tree routers"
    (Mctree.Tree.Int_set.cardinal (Mctree.Tree.nodes tree))
    t.computations;
  check Alcotest.bool "packets forwarded" true (t.packets_forwarded > 0)

let test_mospf_cache_hit_no_recompute () =
  let graph = grid33 () in
  let m = Baselines.Mospf.create ~graph ~config:Dgmc.Config.atm_lan () in
  Baselines.Mospf.join m ~switch:0 ~group:1;
  Baselines.Mospf.join m ~switch:8 ~group:1;
  Baselines.Mospf.run m;
  Baselines.Mospf.send_packet m ~src:0 ~group:1;
  Baselines.Mospf.run m;
  let after_first = (Baselines.Mospf.totals m).computations in
  Baselines.Mospf.send_packet m ~src:0 ~group:1;
  Baselines.Mospf.run m;
  check Alcotest.int "second packet rides the cache" after_first
    (Baselines.Mospf.totals m).computations

let test_mospf_membership_change_invalidates () =
  let graph = grid33 () in
  let m = Baselines.Mospf.create ~graph ~config:Dgmc.Config.atm_lan () in
  Baselines.Mospf.join m ~switch:0 ~group:1;
  Baselines.Mospf.join m ~switch:8 ~group:1;
  Baselines.Mospf.run m;
  Baselines.Mospf.send_packet m ~src:0 ~group:1;
  Baselines.Mospf.run m;
  let after_first = (Baselines.Mospf.totals m).computations in
  Baselines.Mospf.join m ~switch:2 ~group:1;
  Baselines.Mospf.run m;
  Baselines.Mospf.send_packet m ~src:0 ~group:1;
  Baselines.Mospf.run m;
  check Alcotest.bool "caches flushed => recomputation" true
    ((Baselines.Mospf.totals m).computations > after_first)

let test_mospf_cache_size () =
  let graph = grid33 () in
  let m = Baselines.Mospf.create ~graph ~config:Dgmc.Config.atm_lan () in
  Baselines.Mospf.join m ~switch:8 ~group:1;
  Baselines.Mospf.run m;
  check Alcotest.int "cold cache" 0 (Baselines.Mospf.cache_size m ~switch:0);
  Baselines.Mospf.send_packet m ~src:0 ~group:1;
  Baselines.Mospf.run m;
  check Alcotest.int "entry cached at source router" 1
    (Baselines.Mospf.cache_size m ~switch:0)

(* ------------------------------------------------------------------ *)
(* CBT *)

let test_cbt_join_grafts_toward_core () =
  let graph = Net.Topo_gen.line 5 in
  let cbt = Baselines.Cbt.create ~graph ~core:0 () in
  Baselines.Cbt.join cbt 4;
  let tree = Baselines.Cbt.tree cbt in
  check Alcotest.(list (pair int int)) "whole line grafted"
    [ (0, 1); (1, 2); (2, 3); (3, 4) ]
    (Mctree.Tree.edges tree);
  (* 4 hops out, 4 acks back. *)
  check Alcotest.int "control messages" 8 (Baselines.Cbt.control_messages cbt)

let test_cbt_join_stops_at_tree () =
  let graph = Net.Topo_gen.line 5 in
  let cbt = Baselines.Cbt.create ~graph ~core:0 () in
  Baselines.Cbt.join cbt 4;
  let before = Baselines.Cbt.control_messages cbt in
  (* 2 is already an on-tree switch: joining costs nothing on the wire. *)
  Baselines.Cbt.join cbt 2;
  check Alcotest.int "no new messages" before (Baselines.Cbt.control_messages cbt);
  check Alcotest.bool "member recorded" true (Baselines.Cbt.is_member cbt 2)

let test_cbt_join_idempotent () =
  let graph = Net.Topo_gen.line 3 in
  let cbt = Baselines.Cbt.create ~graph ~core:0 () in
  Baselines.Cbt.join cbt 2;
  let msgs = Baselines.Cbt.control_messages cbt in
  Baselines.Cbt.join cbt 2;
  check Alcotest.int "re-join is a no-op" msgs (Baselines.Cbt.control_messages cbt)

let test_cbt_leave_prunes () =
  let graph = Net.Topo_gen.line 5 in
  let cbt = Baselines.Cbt.create ~graph ~core:0 () in
  Baselines.Cbt.join cbt 2;
  Baselines.Cbt.join cbt 4;
  Baselines.Cbt.leave cbt 4;
  check Alcotest.(list (pair int int)) "pruned back to member 2"
    [ (0, 1); (1, 2) ]
    (Mctree.Tree.edges (Baselines.Cbt.tree cbt));
  check Alcotest.(list int) "members" [ 2 ] (Baselines.Cbt.members cbt)

let test_cbt_leave_keeps_relay () =
  let graph = Net.Topo_gen.line 5 in
  let cbt = Baselines.Cbt.create ~graph ~core:0 () in
  Baselines.Cbt.join cbt 2;
  Baselines.Cbt.join cbt 4;
  (* 2 leaves but still relays 4's branch. *)
  Baselines.Cbt.leave cbt 2;
  check Alcotest.int "tree unchanged in size" 4
    (Mctree.Tree.n_edges (Baselines.Cbt.tree cbt))

let test_cbt_deliver_reaches_members () =
  let graph = grid33 () in
  let cbt = Baselines.Cbt.create ~graph ~core:4 () in
  List.iter (Baselines.Cbt.join cbt) [ 0; 8 ];
  let report = Baselines.Cbt.deliver cbt ~src:2 in
  check Alcotest.(list int) "both members" [ 0; 8 ]
    (List.map (fun (d : Mctree.Delivery.delivery) -> d.receiver) report.deliveries);
  (* The contact must sit on the unicast route from 2 toward core 4. *)
  match report.contact with
  | Some c ->
    let route = Option.get (Net.Dijkstra.path graph ~src:2 ~dst:4) in
    check Alcotest.bool "contact on core-ward route" true (List.mem c route)
  | None -> Alcotest.fail "two-stage delivery must name a contact"

let test_cbt_link_down_rejoins () =
  let graph = grid33 () in
  let cbt = Baselines.Cbt.create ~graph ~core:0 () in
  List.iter (Baselines.Cbt.join cbt) [ 6; 8 ];
  let tree = Baselines.Cbt.tree cbt in
  let u, v = List.hd (Mctree.Tree.edges tree) in
  Net.Graph.set_link graph u v ~up:false;
  Baselines.Cbt.handle_link_down cbt u v;
  let tree' = Baselines.Cbt.tree cbt in
  check Alcotest.bool "valid after recovery" true
    (Mctree.Tree.is_valid_mc_topology graph tree');
  check Alcotest.(list int) "members kept" [ 6; 8 ] (Baselines.Cbt.members cbt)

let test_cbt_core_unreachable () =
  let graph = Net.Graph.of_edges 4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
  let cbt = Baselines.Cbt.create ~graph ~core:0 () in
  Alcotest.check_raises "join across partition" (Failure "Cbt: core unreachable")
    (fun () -> Baselines.Cbt.join cbt 3)

(* ------------------------------------------------------------------ *)
(* Core selection *)

let test_core_first_member () =
  check Alcotest.int "smallest id" 2 (Baselines.Core_select.first_member [ 7; 2; 9 ])

let test_core_center_median_line () =
  let graph = Net.Topo_gen.line 7 in
  (* Members at the two ends: the 1-center is the midpoint.  (The median
     objective is constant along the path between two members, so it is
     only discriminating with three or more members — next test.) *)
  check Alcotest.int "center" 3
    (Baselines.Core_select.center graph ~members:[ 0; 6 ]);
  (* Members 0, 2, 6: distance sums are 8, 7, 6, 7, 8, 9, 10 => node 2. *)
  check Alcotest.int "median" 2
    (Baselines.Core_select.median graph ~members:[ 0; 2; 6 ])

let test_core_median_weighted () =
  (* Median counts total distance: with three members clustered at one
     end, it moves toward the cluster; center stays midway. *)
  let graph = Net.Topo_gen.line 7 in
  let members = [ 0; 1; 2; 6 ] in
  let median = Baselines.Core_select.median graph ~members in
  let center = Baselines.Core_select.center graph ~members in
  check Alcotest.bool "median near cluster" true (median <= 2);
  check Alcotest.int "center midway" 3 center

let test_core_random_in_range () =
  let graph = grid33 () in
  let rng = Sim.Rng.create 3 in
  for _ = 1 to 20 do
    let c = Baselines.Core_select.random rng graph in
    if c < 0 || c > 8 then Alcotest.failf "core out of range: %d" c
  done

let () =
  Alcotest.run "baselines"
    [
      ( "brute-force",
        [
          Alcotest.test_case "n computations per event" `Quick
            test_brute_computations_scale_with_n;
          Alcotest.test_case "converges" `Quick test_brute_converges;
          Alcotest.test_case "leave" `Quick test_brute_leave;
          Alcotest.test_case "counter reset" `Quick test_brute_reset_counters;
        ] );
      ( "mospf",
        [
          Alcotest.test_case "membership propagates" `Quick
            test_mospf_membership_propagates;
          Alcotest.test_case "data-driven computation" `Quick
            test_mospf_data_driven_computation;
          Alcotest.test_case "cache hits" `Quick test_mospf_cache_hit_no_recompute;
          Alcotest.test_case "invalidation on change" `Quick
            test_mospf_membership_change_invalidates;
          Alcotest.test_case "cache size" `Quick test_mospf_cache_size;
        ] );
      ( "cbt",
        [
          Alcotest.test_case "join grafts toward core" `Quick
            test_cbt_join_grafts_toward_core;
          Alcotest.test_case "join stops at tree" `Quick test_cbt_join_stops_at_tree;
          Alcotest.test_case "join idempotent" `Quick test_cbt_join_idempotent;
          Alcotest.test_case "leave prunes" `Quick test_cbt_leave_prunes;
          Alcotest.test_case "leave keeps relay" `Quick test_cbt_leave_keeps_relay;
          Alcotest.test_case "delivery" `Quick test_cbt_deliver_reaches_members;
          Alcotest.test_case "link-down recovery" `Quick test_cbt_link_down_rejoins;
          Alcotest.test_case "core unreachable" `Quick test_cbt_core_unreachable;
        ] );
      ( "core-select",
        [
          Alcotest.test_case "first member" `Quick test_core_first_member;
          Alcotest.test_case "center and median on a line" `Quick
            test_core_center_median_line;
          Alcotest.test_case "median weighting" `Quick test_core_median_weighted;
          Alcotest.test_case "random in range" `Quick test_core_random_in_range;
        ] );
    ]
