(* Oracle tests: the production algorithms checked against independent
   reference implementations (different algorithm, same answer).

   - Dijkstra vs a Bellman-Ford oracle;
   - Kruskal vs a Prim oracle;
   - the Steiner heuristics vs the EXACT optimum on small instances
     (Hakimi enumeration: the optimal Steiner tree is the cheapest MST
     of an induced subgraph over terminals ∪ S for some Steiner set S);
   - unicast next-hops vs the distance-decrease characterisation. *)

let check = Alcotest.check

let random_graph seed n =
  Net.Topo_gen.waxman (Sim.Rng.create seed) ~n ~target_degree:3.5 ()

(* ------------------------------------------------------------------ *)
(* Bellman-Ford oracle *)

let bellman_ford g src =
  let n = Net.Graph.n_nodes g in
  let dist = Array.make n infinity in
  dist.(src) <- 0.0;
  for _ = 1 to n - 1 do
    List.iter
      (fun (e : Net.Graph.edge) ->
        if dist.(e.u) +. e.weight < dist.(e.v) then
          dist.(e.v) <- dist.(e.u) +. e.weight;
        if dist.(e.v) +. e.weight < dist.(e.u) then
          dist.(e.u) <- dist.(e.v) +. e.weight)
      (Net.Graph.edges g)
  done;
  dist

let test_dijkstra_vs_bellman_ford () =
  for seed = 1 to 15 do
    let g = random_graph seed 25 in
    let src = seed mod 25 in
    let d = (Net.Dijkstra.run g src).dist in
    let bf = bellman_ford g src in
    Array.iteri
      (fun v dv ->
        if Float.abs (dv -. bf.(v)) > 1e-9 then
          Alcotest.failf "seed %d: dist to %d differs (%f vs %f)" seed v dv bf.(v))
      d
  done

(* ------------------------------------------------------------------ *)
(* Prim oracle *)

let prim_cost g =
  let n = Net.Graph.n_nodes g in
  let in_tree = Array.make n false in
  let best = Array.make n infinity in
  best.(0) <- 0.0;
  let total = ref 0.0 in
  for _ = 1 to n do
    (* Cheapest fringe node. *)
    let u = ref (-1) in
    for v = 0 to n - 1 do
      if (not in_tree.(v)) && (!u = -1 || best.(v) < best.(!u)) then u := v
    done;
    let u = !u in
    if Float.is_finite best.(u) then begin
      in_tree.(u) <- true;
      total := !total +. best.(u);
      List.iter
        (fun (v, w) -> if (not in_tree.(v)) && w < best.(v) then best.(v) <- w)
        (Net.Graph.neighbors g u)
    end
  done;
  !total

let test_kruskal_vs_prim () =
  for seed = 1 to 15 do
    let g = random_graph seed 30 in
    let kruskal = Net.Mst.cost (Net.Mst.kruskal g) in
    let prim = prim_cost g in
    check Alcotest.(float 1e-9) (Printf.sprintf "seed %d" seed) prim kruskal
  done

(* ------------------------------------------------------------------ *)
(* Exact Steiner oracle (small instances) *)

(* Optimal Steiner tree cost by enumerating Steiner-point sets: for each
   S ⊆ V \ terminals, if G[terminals ∪ S] is connected, its MST is a
   candidate; the optimum is the cheapest candidate (Hakimi 1971). *)
let exact_steiner_cost g terminals =
  let n = Net.Graph.n_nodes g in
  let others =
    List.filter (fun v -> not (List.mem v terminals)) (List.init n (fun i -> i))
  in
  let k = List.length others in
  let best = ref infinity in
  for mask = 0 to (1 lsl k) - 1 do
    let steiner_points =
      List.filteri (fun i _ -> mask land (1 lsl i) <> 0) others
    in
    let nodes = List.sort compare (terminals @ steiner_points) in
    (* Induced subgraph, relabelled 0..|nodes|-1. *)
    let index = Hashtbl.create 8 in
    List.iteri (fun i v -> Hashtbl.add index v i) nodes;
    let sub = Net.Graph.create (List.length nodes) in
    List.iter
      (fun (e : Net.Graph.edge) ->
        match (Hashtbl.find_opt index e.u, Hashtbl.find_opt index e.v) with
        | Some a, Some b -> Net.Graph.add_edge sub a b ~weight:e.weight
        | _ -> ())
      (Net.Graph.edges g);
    if Net.Bfs.is_connected sub then begin
      let mst = Net.Mst.kruskal sub in
      if List.length mst = List.length nodes - 1 then
        best := Float.min !best (Net.Mst.cost mst)
    end
  done;
  !best

let test_heuristics_vs_exact_steiner () =
  (* Random small graphs where enumeration is cheap. *)
  for seed = 1 to 12 do
    let g = random_graph seed 9 in
    let rng = Sim.Rng.create (seed * 31) in
    let terminals = Sim.Rng.sample rng 4 (List.init 9 (fun i -> i)) in
    let opt = exact_steiner_cost g (List.sort compare terminals) in
    List.iter
      (fun (name, algo) ->
        let cost = Mctree.Tree.cost g (algo g terminals) in
        if cost +. 1e-9 < opt then
          Alcotest.failf "seed %d: %s beat the optimum?! (%f < %f)" seed name
            cost opt;
        if cost > (2.0 *. opt) +. 1e-9 then
          Alcotest.failf "seed %d: %s exceeded 2x optimum (%f > 2 * %f)" seed
            name cost opt)
      [ ("kmb", Mctree.Steiner.kmb); ("sph", Mctree.Steiner.sph) ]
  done

let test_exact_oracle_sanity () =
  (* On the 3x3 grid corners the optimum is known to be 6. *)
  let g = Net.Topo_gen.grid ~rows:3 ~cols:3 () in
  check Alcotest.(float 1e-9) "grid corners optimum" 6.0
    (exact_steiner_cost g [ 0; 2; 6; 8 ]);
  (* Two terminals: optimum = shortest path. *)
  let g2 = random_graph 5 8 in
  check Alcotest.(float 1e-9) "two terminals = shortest path"
    (Net.Dijkstra.distance g2 0 7)
    (exact_steiner_cost g2 [ 0; 7 ])

(* ------------------------------------------------------------------ *)
(* Unicast next-hop characterisation *)

let test_next_hop_decreases_distance () =
  (* u's next hop h toward d satisfies dist(h, d) = dist(u, d) - w(u, h):
     the defining property of shortest-path forwarding. *)
  for seed = 1 to 8 do
    let g = random_graph seed 20 in
    let t = Lsr.Unicast.compute g in
    for u = 0 to 19 do
      for d = 0 to 19 do
        if u <> d then
          match Lsr.Unicast.next_hop t ~src:u ~dst:d with
          | Some h ->
            let expected =
              Lsr.Unicast.distance t ~src:u ~dst:d -. Net.Graph.weight g u h
            in
            if Float.abs (Lsr.Unicast.distance t ~src:h ~dst:d -. expected) > 1e-9
            then Alcotest.failf "seed %d: bad next hop %d->%d via %d" seed u d h
          | None -> Alcotest.failf "seed %d: unreachable %d->%d" seed u d
      done
    done
  done

let () =
  Alcotest.run "oracles"
    [
      ( "shortest-paths",
        [
          Alcotest.test_case "dijkstra vs bellman-ford" `Quick
            test_dijkstra_vs_bellman_ford;
          Alcotest.test_case "next-hop characterisation" `Quick
            test_next_hop_decreases_distance;
        ] );
      ( "mst",
        [ Alcotest.test_case "kruskal vs prim" `Quick test_kruskal_vs_prim ] );
      ( "steiner",
        [
          Alcotest.test_case "oracle sanity" `Quick test_exact_oracle_sanity;
          Alcotest.test_case "heuristics vs exact optimum" `Slow
            test_heuristics_vs_exact_steiner;
        ] );
    ]
