(* Scenario tests for the D-GMC protocol (lib/core: Switch + Protocol).
   These exercise the EventHandler/ReceiveLSA machinery of the paper's
   Figures 4 and 5 end to end on small networks. *)

let check = Alcotest.check

let mc_sym = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1

let make_net ?(config = Dgmc.Config.atm_lan) graph =
  Dgmc.Protocol.create ~graph ~config ()

let assert_converged ?(msg = "network-wide agreement") net mc =
  if not (Dgmc.Protocol.converged net mc) then
    Alcotest.failf "%s: %s" msg
      (String.concat "; " (Dgmc.Protocol.divergence net mc))

let grid33 () = Net.Topo_gen.grid ~rows:3 ~cols:3 ()

(* ------------------------------------------------------------------ *)
(* Creation, single events *)

let test_single_join_creates_mc_everywhere () =
  let net = make_net (grid33 ()) in
  Dgmc.Protocol.join net ~switch:4 mc_sym Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  assert_converged net mc_sym;
  for i = 0 to 8 do
    match Dgmc.Switch.members (Dgmc.Protocol.switch net i) mc_sym with
    | Some m -> check Alcotest.(list int) "member list" [ 4 ] (Dgmc.Member.ids m)
    | None -> Alcotest.failf "switch %d has no state" i
  done

let test_single_join_costs_one_computation_one_flooding () =
  let net = make_net (grid33 ()) in
  Dgmc.Protocol.join net ~switch:4 mc_sym Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  let t = Dgmc.Protocol.totals net in
  check Alcotest.int "events" 1 t.events;
  check Alcotest.int "one computation" 1 t.computations;
  check Alcotest.int "one flooding" 1 t.mc_floodings;
  check Alcotest.int "no withdrawals" 0 t.computations_withdrawn

let test_two_members_topology_is_path () =
  let net = make_net (Net.Topo_gen.line 5) in
  Dgmc.Protocol.join net ~switch:0 mc_sym Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  Dgmc.Protocol.join net ~switch:4 mc_sym Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  assert_converged net mc_sym;
  let tree = Option.get (Dgmc.Protocol.agreed_topology net mc_sym) in
  check
    Alcotest.(list (pair int int))
    "path tree"
    [ (0, 1); (1, 2); (2, 3); (3, 4) ]
    (Mctree.Tree.edges tree)

let test_sequential_joins_converge () =
  let net = make_net (grid33 ()) in
  List.iter
    (fun s ->
      Dgmc.Protocol.join net ~switch:s mc_sym Dgmc.Member.Both;
      Dgmc.Protocol.run net;
      assert_converged ~msg:(Printf.sprintf "after join %d" s) net mc_sym)
    [ 0; 8; 2; 6; 4 ]

let test_simultaneous_joins_converge () =
  let net = make_net (grid33 ()) in
  (* All joins at exactly t = 0: maximal conflict. *)
  List.iter
    (fun s -> Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:s mc_sym Dgmc.Member.Both)
    [ 0; 2; 6; 8 ];
  Dgmc.Protocol.run net;
  assert_converged net mc_sym;
  let m = Option.get (Dgmc.Switch.members (Dgmc.Protocol.switch net 1) mc_sym) in
  check Alcotest.(list int) "all four members" [ 0; 2; 6; 8 ] (Dgmc.Member.ids m)

let test_leave_updates_topology () =
  let net = make_net (Net.Topo_gen.line 5) in
  List.iter
    (fun s ->
      Dgmc.Protocol.join net ~switch:s mc_sym Dgmc.Member.Both;
      Dgmc.Protocol.run net)
    [ 0; 2; 4 ];
  Dgmc.Protocol.leave net ~switch:4 mc_sym;
  Dgmc.Protocol.run net;
  assert_converged net mc_sym;
  let tree = Option.get (Dgmc.Protocol.agreed_topology net mc_sym) in
  check Alcotest.(list (pair int int)) "branch pruned" [ (0, 1); (1, 2) ]
    (Mctree.Tree.edges tree)

let test_full_drain_deletes_state () =
  let net = make_net (grid33 ()) in
  List.iter
    (fun s ->
      Dgmc.Protocol.join net ~switch:s mc_sym Dgmc.Member.Both;
      Dgmc.Protocol.run net)
    [ 0; 4; 8 ];
  List.iter
    (fun s ->
      Dgmc.Protocol.leave net ~switch:s mc_sym;
      Dgmc.Protocol.run net)
    [ 0; 4; 8 ];
  assert_converged net mc_sym;
  for i = 0 to 8 do
    check Alcotest.bool
      (Printf.sprintf "switch %d state deleted" i)
      true
      (Dgmc.Switch.members (Dgmc.Protocol.switch net i) mc_sym = None)
  done

let test_simultaneous_drain_deletes_state () =
  let net = make_net (grid33 ()) in
  List.iter
    (fun s -> Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:s mc_sym Dgmc.Member.Both)
    [ 0; 4; 8 ];
  Dgmc.Protocol.run net;
  let t1 = Sim.Engine.now (Dgmc.Protocol.engine net) +. 1.0 in
  List.iter
    (fun s -> Dgmc.Protocol.schedule_leave net ~at:t1 ~switch:s mc_sym)
    [ 0; 4; 8 ];
  Dgmc.Protocol.run net;
  assert_converged net mc_sym;
  for i = 0 to 8 do
    check Alcotest.bool "deleted" true
      (Dgmc.Switch.members (Dgmc.Protocol.switch net i) mc_sym = None)
  done

(* ------------------------------------------------------------------ *)
(* Timestamps at quiescence *)

let test_stamps_settle_equal () =
  let net = make_net (grid33 ()) in
  List.iter
    (fun s -> Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:s mc_sym Dgmc.Member.Both)
    [ 0; 8 ];
  Dgmc.Protocol.run net;
  assert_converged net mc_sym;
  let r0, e0, c0 = Option.get (Dgmc.Switch.stamps (Dgmc.Protocol.switch net 0) mc_sym) in
  check Alcotest.bool "R = E at quiescence" true (Dgmc.Timestamp.equal r0 e0);
  check Alcotest.bool "C <= R" true (Dgmc.Timestamp.geq r0 c0);
  for i = 1 to 8 do
    let r, _, _ = Option.get (Dgmc.Switch.stamps (Dgmc.Protocol.switch net i) mc_sym) in
    check Alcotest.bool "all R equal" true (Dgmc.Timestamp.equal r r0)
  done

(* ------------------------------------------------------------------ *)
(* MC types *)

let test_receiver_only_mc () =
  let net = make_net (grid33 ()) in
  let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Receiver_only 5 in
  List.iter
    (fun s -> Dgmc.Protocol.join net ~switch:s mc Dgmc.Member.Receiver)
    [ 0; 8 ];
  Dgmc.Protocol.run net;
  assert_converged net mc;
  (* A non-member can reach the agreed tree by two-stage delivery. *)
  let tree = Option.get (Dgmc.Protocol.agreed_topology net mc) in
  let report = Mctree.Delivery.two_stage (Dgmc.Protocol.graph net) tree ~src:2 in
  check Alcotest.(list int) "both receivers reached" [ 0; 8 ]
    (List.map (fun (d : Mctree.Delivery.delivery) -> d.receiver) report.deliveries)

let test_asymmetric_mc () =
  let net = make_net (grid33 ()) in
  let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Asymmetric 6 in
  Dgmc.Protocol.join net ~switch:4 mc Dgmc.Member.Sender;
  List.iter
    (fun s -> Dgmc.Protocol.join net ~switch:s mc Dgmc.Member.Receiver)
    [ 0; 2; 6; 8 ];
  Dgmc.Protocol.run net;
  assert_converged net mc;
  let tree = Option.get (Dgmc.Protocol.agreed_topology net mc) in
  (* Source-rooted: every receiver sits at its shortest-path distance
     from the sender. *)
  List.iter
    (fun (receiver, delay) ->
      check Alcotest.(float 1e-9) "spt distance"
        (Net.Dijkstra.distance (Dgmc.Protocol.graph net) 4 receiver)
        delay)
    (Mctree.Spt.receivers_cost (Dgmc.Protocol.graph net) tree ~root:4)

let test_independent_mcs () =
  let net = make_net (grid33 ()) in
  let mc_a = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1 in
  let mc_b = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 2 in
  Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:0 mc_a Dgmc.Member.Both;
  Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:8 mc_a Dgmc.Member.Both;
  Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:2 mc_b Dgmc.Member.Both;
  Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:6 mc_b Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  assert_converged ~msg:"mc_a" net mc_a;
  assert_converged ~msg:"mc_b" net mc_b;
  let members mc i =
    Dgmc.Member.ids (Option.get (Dgmc.Switch.members (Dgmc.Protocol.switch net i) mc))
  in
  check Alcotest.(list int) "mc_a members" [ 0; 8 ] (members mc_a 3);
  check Alcotest.(list int) "mc_b members" [ 2; 6 ] (members mc_b 3)

(* ------------------------------------------------------------------ *)
(* Link events *)

let test_link_failure_repairs_topology () =
  let net = make_net (grid33 ()) in
  List.iter
    (fun s -> Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:s mc_sym Dgmc.Member.Both)
    [ 0; 8 ];
  Dgmc.Protocol.run net;
  let tree = Option.get (Dgmc.Protocol.agreed_topology net mc_sym) in
  let u, v = List.hd (Mctree.Tree.edges tree) in
  Dgmc.Protocol.link_down net u v;
  Dgmc.Protocol.run net;
  assert_converged net mc_sym;
  let tree' = Option.get (Dgmc.Protocol.agreed_topology net mc_sym) in
  check Alcotest.bool "dead link absent" false (Mctree.Tree.mem_edge tree' u v);
  check Alcotest.bool "valid repair" true
    (Mctree.Tree.is_valid_mc_topology (Dgmc.Protocol.graph net) tree')

let test_link_failure_off_tree_is_ignored_by_mc () =
  let net = make_net (grid33 ()) in
  List.iter
    (fun s -> Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:s mc_sym Dgmc.Member.Both)
    [ 0; 1 ];
  Dgmc.Protocol.run net;
  let tree = Option.get (Dgmc.Protocol.agreed_topology net mc_sym) in
  (* Find a link not on the tree. *)
  let off =
    List.find
      (fun (e : Net.Graph.edge) -> not (Mctree.Tree.mem_edge tree e.u e.v))
      (Net.Graph.edges (Dgmc.Protocol.graph net))
  in
  Dgmc.Protocol.reset_counters net;
  Dgmc.Protocol.link_down net off.u off.v;
  Dgmc.Protocol.run net;
  let t = Dgmc.Protocol.totals net in
  check Alcotest.int "non-MC LSAs flooded" 2 t.link_floodings;
  check Alcotest.int "no MC LSAs" 0 t.mc_floodings;
  check Alcotest.int "no computations" 0 t.computations;
  assert_converged net mc_sym

let test_link_recovery_floods_but_keeps_topology () =
  let net = make_net (grid33 ()) in
  List.iter
    (fun s -> Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:s mc_sym Dgmc.Member.Both)
    [ 0; 8 ];
  Dgmc.Protocol.run net;
  let tree = Option.get (Dgmc.Protocol.agreed_topology net mc_sym) in
  let u, v = List.hd (Mctree.Tree.edges tree) in
  Dgmc.Protocol.link_down net u v;
  Dgmc.Protocol.run net;
  let repaired = Option.get (Dgmc.Protocol.agreed_topology net mc_sym) in
  Dgmc.Protocol.reset_counters net;
  Dgmc.Protocol.link_up net u v;
  Dgmc.Protocol.run net;
  assert_converged net mc_sym;
  let t = Dgmc.Protocol.totals net in
  check Alcotest.int "recovery advertised" 2 t.link_floodings;
  check Alcotest.int "no reactive MC work" 0 t.mc_floodings;
  check Alcotest.bool "repaired topology kept" true
    (Mctree.Tree.equal repaired
       (Option.get (Dgmc.Protocol.agreed_topology net mc_sym)))

let test_figure2_lsa_accounting () =
  (* Figure 2: a link event produces one non-MC LSA per detecting
     endpoint plus one MC LSA per affected connection per detector. *)
  let graph = Net.Topo_gen.grid ~rows:3 ~cols:3 () in
  let net = make_net graph in
  let k = 4 in
  let mcs = List.init k (fun i -> Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric (i + 1)) in
  (* All k MCs share members 0 and 8, hence (given determinism) the same
     tree and the same links. *)
  List.iter
    (fun m ->
      Dgmc.Protocol.join net ~switch:0 m Dgmc.Member.Both;
      Dgmc.Protocol.join net ~switch:8 m Dgmc.Member.Both;
      Dgmc.Protocol.run net)
    mcs;
  List.iter (fun m -> assert_converged ~msg:"setup" net m) mcs;
  let tree = Option.get (Dgmc.Protocol.agreed_topology net (List.hd mcs)) in
  let u, v = List.hd (Mctree.Tree.edges tree) in
  Dgmc.Protocol.reset_counters net;
  Dgmc.Protocol.link_down net u v;
  Dgmc.Protocol.run net;
  List.iter (fun m -> assert_converged ~msg:"repair" net m) mcs;
  let t = Dgmc.Protocol.totals net in
  check Alcotest.int "one non-MC LSA per endpoint" 2 t.link_floodings;
  (* Each endpoint raises one link event per affected MC; every one of
     those event LSAs is flooded (with or without a proposal). *)
  check Alcotest.bool "at least one MC LSA per MC" true (t.mc_floodings >= k);
  check Alcotest.bool "MC LSAs bounded by detectors x MCs + reconciliation" true
    (t.mc_floodings <= 4 * k);
  (* Activity is per-MC independent: computations happened for each. *)
  check Alcotest.bool "computations for every MC" true (t.computations >= k)

let test_partition_converges_per_side () =
  (* Two triangles joined by one bridge: cutting it partitions. *)
  let g =
    Net.Graph.of_edges 6
      [
        (0, 1, 1.0); (1, 2, 1.0); (0, 2, 1.0);
        (3, 4, 1.0); (4, 5, 1.0); (3, 5, 1.0);
        (2, 3, 1.0);
      ]
  in
  let net = make_net g in
  List.iter
    (fun s -> Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:s mc_sym Dgmc.Member.Both)
    [ 0; 5 ];
  Dgmc.Protocol.run net;
  assert_converged net mc_sym;
  Dgmc.Protocol.link_down net 2 3;
  Dgmc.Protocol.run net;
  (* Global agreement is impossible; each side must agree internally. *)
  check Alcotest.bool "left side agrees" true
    (Dgmc.Protocol.converged_among net mc_sym [ 0; 1; 2 ]);
  check Alcotest.bool "right side agrees" true
    (Dgmc.Protocol.converged_among net mc_sym [ 3; 4; 5 ]);
  (* Each side's topology must cover only its own member. *)
  let topo i =
    Option.get (Dgmc.Switch.topology (Dgmc.Protocol.switch net i) mc_sym)
  in
  check Alcotest.(list int) "left terminals" [ 0 ]
    (Mctree.Tree.Int_set.elements (Mctree.Tree.terminals (topo 0)));
  check Alcotest.(list int) "right terminals" [ 5 ]
    (Mctree.Tree.Int_set.elements (Mctree.Tree.terminals (topo 5)))

let test_partition_heals () =
  let g =
    Net.Graph.of_edges 6
      [
        (0, 1, 1.0); (1, 2, 1.0); (0, 2, 1.0);
        (3, 4, 1.0); (4, 5, 1.0); (3, 5, 1.0);
        (2, 3, 1.0);
      ]
  in
  let net = make_net g in
  List.iter
    (fun s -> Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:s mc_sym Dgmc.Member.Both)
    [ 0; 5 ];
  Dgmc.Protocol.run net;
  Dgmc.Protocol.link_down net 2 3;
  Dgmc.Protocol.run net;
  Dgmc.Protocol.link_up net 2 3;
  Dgmc.Protocol.run net;
  (* Healing the cut floods link-up non-MC LSAs; the split-brain MC
     state reconciles on the next membership event. *)
  Dgmc.Protocol.join net ~switch:1 mc_sym Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  assert_converged ~msg:"after heal + event" net mc_sym

(* ------------------------------------------------------------------ *)
(* Overhead accounting *)

let test_sparse_events_cost_one_computation_each () =
  let graph = grid33 () in
  let config = Dgmc.Config.atm_lan in
  let net = make_net ~config graph in
  let round = Dgmc.Config.round_length config ~graph in
  (* Events spaced 50 rounds apart: no conflicts, so exactly one
     computation and one flooding per event (Experiment 3's claim). *)
  List.iteri
    (fun i s ->
      Dgmc.Protocol.schedule_join net
        ~at:(float_of_int (i + 1) *. 50.0 *. round)
        ~switch:s mc_sym Dgmc.Member.Both)
    [ 0; 2; 6; 8; 4 ];
  Dgmc.Protocol.run net;
  assert_converged net mc_sym;
  let t = Dgmc.Protocol.totals net in
  check Alcotest.int "events" 5 t.events;
  check Alcotest.int "computations = events" 5 t.computations;
  check Alcotest.int "floodings = events" 5 t.mc_floodings;
  check Alcotest.int "nothing withdrawn" 0 t.computations_withdrawn;
  check Alcotest.int "no triggered proposals" 0
    (t.mc_floodings - t.proposals_flooded)

let test_bursty_overhead_is_bounded () =
  let graph = Experiments.Harness.graph_for ~seed:2 ~n:40 in
  let net = make_net graph in
  List.iter
    (fun s -> Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:s mc_sym Dgmc.Member.Both)
    [ 0; 5; 11; 17; 23; 29; 35; 39 ];
  Dgmc.Protocol.run net;
  assert_converged net mc_sym;
  let t = Dgmc.Protocol.totals net in
  let per_event x = float_of_int x /. float_of_int t.events in
  (* The paper's headline: single-digit overhead per event even in
     bursts, versus n for the brute-force protocol. *)
  check Alcotest.bool "computations/event bounded" true
    (per_event t.computations < 10.0);
  check Alcotest.bool "floodings/event bounded" true
    (per_event t.mc_floodings < 10.0)

let test_counters_reset () =
  let net = make_net (grid33 ()) in
  Dgmc.Protocol.join net ~switch:0 mc_sym Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  Dgmc.Protocol.reset_counters net;
  let t = Dgmc.Protocol.totals net in
  check Alcotest.int "events" 0 t.events;
  check Alcotest.int "computations" 0 t.computations;
  check Alcotest.int "floodings" 0 t.mc_floodings;
  check Alcotest.int "messages" 0 t.messages;
  check Alcotest.bool "clock markers cleared" true
    (Dgmc.Protocol.first_event_time net = None
    && Dgmc.Protocol.last_change_time net = None)

let test_convergence_rounds_measured () =
  let net = make_net (grid33 ()) in
  Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:0 mc_sym Dgmc.Member.Both;
  Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:8 mc_sym Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  match Dgmc.Protocol.convergence_rounds net with
  | Some r ->
    if r <= 0.0 || r > 20.0 then Alcotest.failf "implausible convergence: %f" r
  | None -> Alcotest.fail "convergence must be measurable"

(* ------------------------------------------------------------------ *)
(* Robustness details *)

let test_rejoin_after_leave () =
  let net = make_net (grid33 ()) in
  Dgmc.Protocol.join net ~switch:0 mc_sym Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  Dgmc.Protocol.join net ~switch:8 mc_sym Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  Dgmc.Protocol.leave net ~switch:8 mc_sym;
  Dgmc.Protocol.run net;
  Dgmc.Protocol.join net ~switch:8 mc_sym Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  assert_converged net mc_sym;
  let m = Option.get (Dgmc.Switch.members (Dgmc.Protocol.switch net 3) mc_sym) in
  check Alcotest.(list int) "rejoined" [ 0; 8 ] (Dgmc.Member.ids m)

let test_role_change_is_an_event () =
  let net = make_net (grid33 ()) in
  let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Asymmetric 3 in
  Dgmc.Protocol.join net ~switch:0 mc Dgmc.Member.Sender;
  Dgmc.Protocol.join net ~switch:8 mc Dgmc.Member.Receiver;
  Dgmc.Protocol.run net;
  (* Switch 8 upgrades to sender+receiver. *)
  Dgmc.Protocol.join net ~switch:8 mc Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  assert_converged net mc;
  let m = Option.get (Dgmc.Switch.members (Dgmc.Protocol.switch net 4) mc) in
  check Alcotest.bool "role propagated" true
    (Dgmc.Member.role m 8 = Some Dgmc.Member.Both)

let test_quiescent_reports_pending_work () =
  let net = make_net (grid33 ()) in
  Dgmc.Protocol.join net ~switch:0 mc_sym Dgmc.Member.Both;
  (* Before running, the joining switch has an in-flight computation. *)
  check Alcotest.bool "not quiescent mid-event" false
    (Dgmc.Switch.quiescent (Dgmc.Protocol.switch net 0) mc_sym);
  Dgmc.Protocol.run net;
  check Alcotest.bool "quiescent after run" true
    (Dgmc.Switch.quiescent (Dgmc.Protocol.switch net 0) mc_sym)

let test_trace_records_protocol_activity () =
  let trace = Sim.Trace.create () in
  let net =
    Dgmc.Protocol.create ~graph:(grid33 ()) ~config:Dgmc.Config.atm_lan ~trace ()
  in
  Dgmc.Protocol.join net ~switch:0 mc_sym Dgmc.Member.Both;
  Dgmc.Protocol.join net ~switch:8 mc_sym Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  check Alcotest.bool "computations traced" true
    (Sim.Trace.count_category trace "compute" > 0);
  check Alcotest.bool "floods traced" true
    (Sim.Trace.count_category trace "flood" > 0);
  (* Timestamps in the trace are monotone. *)
  let times =
    List.map (fun (e : Sim.Trace.entry) -> e.time) (Sim.Trace.entries trace)
  in
  check Alcotest.bool "monotone" true (List.sort compare times = times);
  Dgmc.Protocol.leave net ~switch:0 mc_sym;
  Dgmc.Protocol.leave net ~switch:8 mc_sym;
  Dgmc.Protocol.run net;
  check Alcotest.bool "deletions traced" true
    (Sim.Trace.count_category trace "mc-delete" > 0)

let test_wan_regime_converges () =
  let net = make_net ~config:Dgmc.Config.wan (grid33 ()) in
  List.iter
    (fun s -> Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:s mc_sym Dgmc.Member.Both)
    [ 0; 2; 4; 6; 8 ];
  Dgmc.Protocol.run net;
  assert_converged net mc_sym

let test_ideal_flooding_mode_converges () =
  let config =
    { Dgmc.Config.atm_lan with flood_mode = Lsr.Flooding.Ideal }
  in
  let net = make_net ~config (grid33 ()) in
  List.iter
    (fun s -> Dgmc.Protocol.schedule_join net ~at:0.0 ~switch:s mc_sym Dgmc.Member.Both)
    [ 0; 2; 4; 6; 8 ];
  Dgmc.Protocol.run net;
  assert_converged net mc_sym

let () =
  Alcotest.run "dgmc-protocol"
    [
      ( "membership",
        [
          Alcotest.test_case "single join reaches everyone" `Quick
            test_single_join_creates_mc_everywhere;
          Alcotest.test_case "single join costs 1+1" `Quick
            test_single_join_costs_one_computation_one_flooding;
          Alcotest.test_case "two members form a path" `Quick
            test_two_members_topology_is_path;
          Alcotest.test_case "sequential joins" `Quick test_sequential_joins_converge;
          Alcotest.test_case "simultaneous joins" `Quick
            test_simultaneous_joins_converge;
          Alcotest.test_case "leave prunes" `Quick test_leave_updates_topology;
          Alcotest.test_case "full drain deletes state" `Quick
            test_full_drain_deletes_state;
          Alcotest.test_case "simultaneous drain" `Quick
            test_simultaneous_drain_deletes_state;
          Alcotest.test_case "rejoin after leave" `Quick test_rejoin_after_leave;
          Alcotest.test_case "role change" `Quick test_role_change_is_an_event;
        ] );
      ( "timestamps",
        [ Alcotest.test_case "stamps settle equal" `Quick test_stamps_settle_equal ] );
      ( "mc-types",
        [
          Alcotest.test_case "receiver-only" `Quick test_receiver_only_mc;
          Alcotest.test_case "asymmetric" `Quick test_asymmetric_mc;
          Alcotest.test_case "independent MCs" `Quick test_independent_mcs;
        ] );
      ( "link-events",
        [
          Alcotest.test_case "failure repairs topology" `Quick
            test_link_failure_repairs_topology;
          Alcotest.test_case "off-tree failure ignored" `Quick
            test_link_failure_off_tree_is_ignored_by_mc;
          Alcotest.test_case "recovery keeps topology" `Quick
            test_link_recovery_floods_but_keeps_topology;
          Alcotest.test_case "figure-2 LSA accounting" `Quick
            test_figure2_lsa_accounting;
          Alcotest.test_case "partition: per-side agreement" `Quick
            test_partition_converges_per_side;
          Alcotest.test_case "partition heals" `Quick test_partition_heals;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "sparse events cost 1 each" `Quick
            test_sparse_events_cost_one_computation_each;
          Alcotest.test_case "bursty overhead bounded" `Quick
            test_bursty_overhead_is_bounded;
          Alcotest.test_case "counter reset" `Quick test_counters_reset;
          Alcotest.test_case "convergence measured" `Quick
            test_convergence_rounds_measured;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "quiescence reporting" `Quick
            test_quiescent_reports_pending_work;
          Alcotest.test_case "tracing" `Quick test_trace_records_protocol_activity;
          Alcotest.test_case "wan regime" `Quick test_wan_regime_converges;
          Alcotest.test_case "ideal flooding mode" `Quick
            test_ideal_flooding_mode_converges;
        ] );
    ]
