(* Unit tests for the D-GMC building blocks (lib/core): vector
   timestamps, identifiers, member lists, LSAs, configuration and the
   topology-computation entry point. *)

let check = Alcotest.check

let ts = Dgmc.Timestamp.of_array

let stamp_t = Alcotest.testable Dgmc.Timestamp.pp Dgmc.Timestamp.equal

(* ------------------------------------------------------------------ *)
(* Timestamp *)

let test_stamp_zero () =
  let z = Dgmc.Timestamp.zero 4 in
  check Alcotest.int "size" 4 (Dgmc.Timestamp.size z);
  for i = 0 to 3 do
    check Alcotest.int "component" 0 (Dgmc.Timestamp.get z i)
  done;
  check Alcotest.int "sum" 0 (Dgmc.Timestamp.sum z)

let test_stamp_bump () =
  let z = Dgmc.Timestamp.zero 3 in
  let b = Dgmc.Timestamp.bump z 1 in
  check stamp_t "bumped" (ts [| 0; 1; 0 |]) b;
  check stamp_t "original untouched" (ts [| 0; 0; 0 |]) z;
  check Alcotest.int "sum" 1 (Dgmc.Timestamp.sum b)

let test_stamp_merge () =
  let a = ts [| 1; 5; 0 |] and b = ts [| 3; 2; 0 |] in
  check stamp_t "pointwise max" (ts [| 3; 5; 0 |]) (Dgmc.Timestamp.merge a b)

let test_stamp_order () =
  let a = ts [| 1; 2 |] and b = ts [| 1; 1 |] and c = ts [| 0; 3 |] in
  check Alcotest.bool "geq reflexive" true (Dgmc.Timestamp.geq a a);
  check Alcotest.bool "a >= b" true (Dgmc.Timestamp.geq a b);
  check Alcotest.bool "b >= a fails" false (Dgmc.Timestamp.geq b a);
  check Alcotest.bool "a > b" true (Dgmc.Timestamp.gt a b);
  check Alcotest.bool "not a > a" false (Dgmc.Timestamp.gt a a);
  check Alcotest.bool "concurrent" true (Dgmc.Timestamp.order a c = `Concurrent);
  check Alcotest.bool "gt order" true (Dgmc.Timestamp.order a b = `Gt);
  check Alcotest.bool "lt order" true (Dgmc.Timestamp.order b a = `Lt);
  check Alcotest.bool "eq order" true (Dgmc.Timestamp.order a a = `Eq)

let test_stamp_validation () =
  Alcotest.check_raises "zero size"
    (Invalid_argument "Timestamp.zero: size must be positive") (fun () ->
      ignore (Dgmc.Timestamp.zero 0));
  Alcotest.check_raises "negative component"
    (Invalid_argument "Timestamp.of_array: negative") (fun () ->
      ignore (ts [| 1; -1 |]));
  Alcotest.check_raises "size mismatch" (Invalid_argument "Timestamp: size mismatch")
    (fun () -> ignore (Dgmc.Timestamp.merge (Dgmc.Timestamp.zero 2) (Dgmc.Timestamp.zero 3)));
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Timestamp.get: out of range") (fun () ->
      ignore (Dgmc.Timestamp.get (Dgmc.Timestamp.zero 2) 2))

let test_stamp_to_array_copies () =
  let a = ts [| 1; 2 |] in
  let arr = Dgmc.Timestamp.to_array a in
  arr.(0) <- 99;
  check Alcotest.int "immutability preserved" 1 (Dgmc.Timestamp.get a 0)

(* qcheck: lattice and partial-order laws. *)
let stamp_gen =
  QCheck2.Gen.(
    map
      (fun l -> ts (Array.of_list l))
      (list_size (int_range 1 8) (int_range 0 5)))

let stamp_pair_gen =
  QCheck2.Gen.(
    bind (int_range 1 8) (fun size ->
        let component = int_range 0 5 in
        let one = map (fun l -> ts (Array.of_list l)) (list_size (return size) component) in
        pair one one))

let stamp_triple_gen =
  QCheck2.Gen.(
    bind (int_range 1 8) (fun size ->
        let component = int_range 0 5 in
        let one = map (fun l -> ts (Array.of_list l)) (list_size (return size) component) in
        triple one one one))

let prop_merge_commutative =
  QCheck2.Test.make ~name:"merge commutative" ~count:200 stamp_pair_gen
    (fun (a, b) ->
      Dgmc.Timestamp.equal (Dgmc.Timestamp.merge a b) (Dgmc.Timestamp.merge b a))

let prop_merge_associative =
  QCheck2.Test.make ~name:"merge associative" ~count:200 stamp_triple_gen
    (fun (a, b, c) ->
      Dgmc.Timestamp.equal
        (Dgmc.Timestamp.merge a (Dgmc.Timestamp.merge b c))
        (Dgmc.Timestamp.merge (Dgmc.Timestamp.merge a b) c))

let prop_merge_idempotent =
  QCheck2.Test.make ~name:"merge idempotent" ~count:200 stamp_gen (fun a ->
      Dgmc.Timestamp.equal (Dgmc.Timestamp.merge a a) a)

let prop_merge_is_lub =
  QCheck2.Test.make ~name:"merge is an upper bound" ~count:200 stamp_pair_gen
    (fun (a, b) ->
      let m = Dgmc.Timestamp.merge a b in
      Dgmc.Timestamp.geq m a && Dgmc.Timestamp.geq m b)

let prop_geq_antisymmetric =
  QCheck2.Test.make ~name:"geq antisymmetric" ~count:200 stamp_pair_gen
    (fun (a, b) ->
      if Dgmc.Timestamp.geq a b && Dgmc.Timestamp.geq b a then
        Dgmc.Timestamp.equal a b
      else true)

let prop_geq_transitive =
  QCheck2.Test.make ~name:"geq transitive" ~count:200 stamp_triple_gen
    (fun (a, b, c) ->
      if Dgmc.Timestamp.geq a b && Dgmc.Timestamp.geq b c then
        Dgmc.Timestamp.geq a c
      else true)

let prop_bump_strictly_increases =
  QCheck2.Test.make ~name:"bump strictly increases" ~count:200 stamp_gen
    (fun a ->
      let i = Dgmc.Timestamp.size a - 1 in
      Dgmc.Timestamp.gt (Dgmc.Timestamp.bump a i) a)

(* ------------------------------------------------------------------ *)
(* Mc_id *)

let test_mc_id () =
  let a = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1 in
  let b = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1 in
  let c = Dgmc.Mc_id.make Dgmc.Mc_id.Asymmetric 1 in
  let d = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 2 in
  check Alcotest.bool "equal" true (Dgmc.Mc_id.equal a b);
  check Alcotest.bool "kind distinguishes" false (Dgmc.Mc_id.equal a c);
  check Alcotest.bool "id distinguishes" false (Dgmc.Mc_id.equal a d);
  check Alcotest.int "hash consistent" (Dgmc.Mc_id.hash a) (Dgmc.Mc_id.hash b);
  check Alcotest.bool "compare orders by id first" true (Dgmc.Mc_id.compare a d < 0);
  check Alcotest.string "kind names" "receiver-only"
    (Dgmc.Mc_id.kind_to_string Dgmc.Mc_id.Receiver_only)

(* ------------------------------------------------------------------ *)
(* Member *)

let test_member_basic () =
  let m = Dgmc.Member.empty in
  check Alcotest.bool "empty" true (Dgmc.Member.is_empty m);
  let m = Dgmc.Member.join m 3 Dgmc.Member.Both in
  let m = Dgmc.Member.join m 1 Dgmc.Member.Sender in
  let m = Dgmc.Member.join m 7 Dgmc.Member.Receiver in
  check Alcotest.int "cardinal" 3 (Dgmc.Member.cardinal m);
  check Alcotest.(list int) "ids sorted" [ 1; 3; 7 ] (Dgmc.Member.ids m);
  check Alcotest.(list int) "senders" [ 1; 3 ] (Dgmc.Member.senders m);
  check Alcotest.(list int) "receivers" [ 3; 7 ] (Dgmc.Member.receivers m);
  check Alcotest.bool "mem" true (Dgmc.Member.mem m 3);
  let m = Dgmc.Member.leave m 3 in
  check Alcotest.bool "left" false (Dgmc.Member.mem m 3);
  check Alcotest.int "cardinal after leave" 2 (Dgmc.Member.cardinal m)

let test_member_role_overwrite () =
  let m = Dgmc.Member.join Dgmc.Member.empty 2 Dgmc.Member.Receiver in
  let m = Dgmc.Member.join m 2 Dgmc.Member.Both in
  check Alcotest.int "still one member" 1 (Dgmc.Member.cardinal m);
  check Alcotest.bool "role updated" true
    (Dgmc.Member.role m 2 = Some Dgmc.Member.Both)

let test_member_equal () =
  let a = Dgmc.Member.of_list [ (1, Dgmc.Member.Both); (2, Dgmc.Member.Sender) ] in
  let b = Dgmc.Member.of_list [ (2, Dgmc.Member.Sender); (1, Dgmc.Member.Both) ] in
  check Alcotest.bool "order irrelevant" true (Dgmc.Member.equal a b);
  let c = Dgmc.Member.of_list [ (1, Dgmc.Member.Both); (2, Dgmc.Member.Both) ] in
  check Alcotest.bool "roles matter" false (Dgmc.Member.equal a c)

let test_member_leave_absent () =
  let m = Dgmc.Member.of_list [ (1, Dgmc.Member.Both) ] in
  check Alcotest.bool "leave absent is noop" true
    (Dgmc.Member.equal m (Dgmc.Member.leave m 9))

(* ------------------------------------------------------------------ *)
(* Mc_lsa *)

let test_mc_lsa_predicates () =
  let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1 in
  let stamp = Dgmc.Timestamp.zero 4 in
  let join = Dgmc.Mc_lsa.make ~src:0 ~event:(Dgmc.Mc_lsa.Join Dgmc.Member.Both) ~mc ~stamp () in
  let leave = Dgmc.Mc_lsa.make ~src:0 ~event:Dgmc.Mc_lsa.Leave ~mc ~stamp () in
  let link = Dgmc.Mc_lsa.make ~src:0 ~event:Dgmc.Mc_lsa.Link ~mc ~stamp () in
  let none = Dgmc.Mc_lsa.make ~src:0 ~event:Dgmc.Mc_lsa.No_event ~mc ~stamp () in
  check Alcotest.bool "join is event" true (Dgmc.Mc_lsa.is_event join);
  check Alcotest.bool "none is not" false (Dgmc.Mc_lsa.is_event none);
  check Alcotest.bool "join is membership" true (Dgmc.Mc_lsa.is_membership_event join);
  check Alcotest.bool "leave is membership" true (Dgmc.Mc_lsa.is_membership_event leave);
  check Alcotest.bool "link is not membership" false
    (Dgmc.Mc_lsa.is_membership_event link);
  check Alcotest.string "event naming" "join:both" (Dgmc.Mc_lsa.event_to_string join.event);
  check Alcotest.bool "no proposal by default" true (join.proposal = None)

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_presets () =
  let atm = Dgmc.Config.atm_lan and wan = Dgmc.Config.wan in
  check Alcotest.bool "atm: computation dominates" true (atm.tc > atm.t_hop);
  check Alcotest.bool "wan: communication dominates" true (wan.t_hop > wan.tc)

let test_config_round_length () =
  let g = Net.Topo_gen.line 5 in
  (* hop diameter 4 *)
  let config = { Dgmc.Config.atm_lan with tc = 1.0; t_hop = 0.5 } in
  check Alcotest.(float 1e-9) "tf + tc" 3.0 (Dgmc.Config.round_length config ~graph:g)

(* ------------------------------------------------------------------ *)
(* Compute *)

let members_of ids role = Dgmc.Member.of_list (List.map (fun x -> (x, role)) ids)

let test_compute_empty_members () =
  let g = Net.Topo_gen.grid ~rows:3 ~cols:3 () in
  let t =
    Dgmc.Compute.topology Dgmc.Config.atm_lan Dgmc.Mc_id.Symmetric g
      Dgmc.Member.empty ~self:0 ~current:None
  in
  check Alcotest.bool "empty tree" true (Mctree.Tree.equal t Mctree.Tree.empty)

let test_compute_symmetric_scratch () =
  let g = Net.Topo_gen.grid ~rows:3 ~cols:3 () in
  let members = members_of [ 0; 2; 6; 8 ] Dgmc.Member.Both in
  let t =
    Dgmc.Compute.topology Dgmc.Config.atm_lan Dgmc.Mc_id.Symmetric g members
      ~self:0 ~current:None
  in
  check Alcotest.bool "valid" true (Mctree.Tree.is_valid_mc_topology g t);
  check Alcotest.bool "from scratch" false (Dgmc.Compute.was_incremental ())

let test_compute_asymmetric_root () =
  let g = Net.Topo_gen.grid ~rows:3 ~cols:3 () in
  let members =
    Dgmc.Member.of_list
      [ (5, Dgmc.Member.Sender); (0, Dgmc.Member.Receiver); (7, Dgmc.Member.Receiver) ]
  in
  let t =
    Dgmc.Compute.topology Dgmc.Config.atm_lan Dgmc.Mc_id.Asymmetric g members
      ~self:0 ~current:None
  in
  check Alcotest.bool "valid" true (Mctree.Tree.is_valid_mc_topology g t);
  (* The tree is rooted at the sender: every receiver's tree path to 5
     has shortest-path cost. *)
  List.iter
    (fun (receiver, delay) ->
      check Alcotest.(float 1e-9) "spt property"
        (Net.Dijkstra.distance g 5 receiver)
        delay)
    (Mctree.Spt.receivers_cost g t ~root:5)

let test_compute_incremental_join_used () =
  let g = Net.Topo_gen.grid ~rows:3 ~cols:3 () in
  let current =
    Dgmc.Compute.topology Dgmc.Config.atm_lan Dgmc.Mc_id.Symmetric g
      (members_of [ 0; 2 ] Dgmc.Member.Both)
      ~self:0 ~current:None
  in
  let t =
    Dgmc.Compute.topology Dgmc.Config.atm_lan Dgmc.Mc_id.Symmetric g
      (members_of [ 0; 2; 8 ] Dgmc.Member.Both)
      ~self:0 ~current:(Some current)
  in
  check Alcotest.bool "incremental path taken" true (Dgmc.Compute.was_incremental ());
  check Alcotest.bool "valid" true (Mctree.Tree.is_valid_mc_topology g t);
  check Alcotest.(list int) "terminals" [ 0; 2; 8 ]
    (Mctree.Tree.Int_set.elements (Mctree.Tree.terminals t))

let test_compute_incremental_disabled () =
  let g = Net.Topo_gen.grid ~rows:3 ~cols:3 () in
  let config = { Dgmc.Config.atm_lan with incremental = false } in
  let current =
    Dgmc.Compute.topology config Dgmc.Mc_id.Symmetric g
      (members_of [ 0; 2 ] Dgmc.Member.Both)
      ~self:0 ~current:None
  in
  ignore
    (Dgmc.Compute.topology config Dgmc.Mc_id.Symmetric g
       (members_of [ 0; 2; 8 ] Dgmc.Member.Both)
       ~self:0 ~current:(Some current));
  check Alcotest.bool "scratch when disabled" false (Dgmc.Compute.was_incremental ())

let test_compute_leave_and_repair () =
  let g = Net.Topo_gen.grid ~rows:3 ~cols:3 () in
  let members = members_of [ 0; 2; 8 ] Dgmc.Member.Both in
  let current =
    Dgmc.Compute.topology Dgmc.Config.atm_lan Dgmc.Mc_id.Symmetric g members
      ~self:0 ~current:None
  in
  (* Kill a tree link and drop one member at the same time. *)
  let u, v = List.hd (Mctree.Tree.edges current) in
  Net.Graph.set_link g u v ~up:false;
  let t =
    Dgmc.Compute.topology Dgmc.Config.atm_lan Dgmc.Mc_id.Symmetric g
      (members_of [ 0; 2 ] Dgmc.Member.Both)
      ~self:0 ~current:(Some current)
  in
  check Alcotest.bool "valid after repair+leave" true
    (Mctree.Tree.is_valid_mc_topology g t);
  check Alcotest.(list int) "terminals shrank" [ 0; 2 ]
    (Mctree.Tree.Int_set.elements (Mctree.Tree.terminals t))

let test_compute_partition_fallback () =
  (* Members on both sides of a cut: the computation covers the side of
     the smallest member instead of failing. *)
  let g = Net.Graph.of_edges 4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
  let t =
    Dgmc.Compute.topology Dgmc.Config.atm_lan Dgmc.Mc_id.Symmetric g
      (members_of [ 0; 1; 3 ] Dgmc.Member.Both)
      ~self:0 ~current:None
  in
  check Alcotest.(list int) "reachable side covered" [ 0; 1 ]
    (Mctree.Tree.Int_set.elements (Mctree.Tree.terminals t));
  check Alcotest.bool "still a tree" true (Mctree.Tree.is_tree t)

let () =
  Alcotest.run "dgmc-unit"
    [
      ( "timestamp",
        [
          Alcotest.test_case "zero" `Quick test_stamp_zero;
          Alcotest.test_case "bump" `Quick test_stamp_bump;
          Alcotest.test_case "merge" `Quick test_stamp_merge;
          Alcotest.test_case "ordering" `Quick test_stamp_order;
          Alcotest.test_case "validation" `Quick test_stamp_validation;
          Alcotest.test_case "to_array copies" `Quick test_stamp_to_array_copies;
          QCheck_alcotest.to_alcotest prop_merge_commutative;
          QCheck_alcotest.to_alcotest prop_merge_associative;
          QCheck_alcotest.to_alcotest prop_merge_idempotent;
          QCheck_alcotest.to_alcotest prop_merge_is_lub;
          QCheck_alcotest.to_alcotest prop_geq_antisymmetric;
          QCheck_alcotest.to_alcotest prop_geq_transitive;
          QCheck_alcotest.to_alcotest prop_bump_strictly_increases;
        ] );
      ("mc-id", [ Alcotest.test_case "identity" `Quick test_mc_id ]);
      ( "member",
        [
          Alcotest.test_case "basics" `Quick test_member_basic;
          Alcotest.test_case "role overwrite" `Quick test_member_role_overwrite;
          Alcotest.test_case "equality" `Quick test_member_equal;
          Alcotest.test_case "leave absent" `Quick test_member_leave_absent;
        ] );
      ("mc-lsa", [ Alcotest.test_case "predicates" `Quick test_mc_lsa_predicates ]);
      ( "config",
        [
          Alcotest.test_case "presets" `Quick test_config_presets;
          Alcotest.test_case "round length" `Quick test_config_round_length;
        ] );
      ( "compute",
        [
          Alcotest.test_case "empty members" `Quick test_compute_empty_members;
          Alcotest.test_case "symmetric from scratch" `Quick
            test_compute_symmetric_scratch;
          Alcotest.test_case "asymmetric rooted at sender" `Quick
            test_compute_asymmetric_root;
          Alcotest.test_case "incremental join used" `Quick
            test_compute_incremental_join_used;
          Alcotest.test_case "incremental disabled" `Quick
            test_compute_incremental_disabled;
          Alcotest.test_case "leave and repair" `Quick test_compute_leave_and_repair;
          Alcotest.test_case "partition fallback" `Quick
            test_compute_partition_fallback;
        ] );
    ]
