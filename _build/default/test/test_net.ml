(* Tests for the network substrate (lib/net): graphs, searches, MSTs and
   topology generators. *)

let check = Alcotest.check

(* Minimal substring search used by the DOT tests. *)
module Astring_like = struct
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    nn = 0 || go 0
end

(* A small weighted graph used by several suites:

       0 --1.0-- 1 --1.0-- 2
       |                   |
      4.0                 1.0
       |                   |
       3 -------1.0------- 4
*)
let house () =
  Net.Graph.of_edges 5
    [ (0, 1, 1.0); (1, 2, 1.0); (0, 3, 4.0); (2, 4, 1.0); (3, 4, 1.0) ]

(* ------------------------------------------------------------------ *)
(* Graph *)

let test_graph_basic () =
  let g = house () in
  check Alcotest.int "nodes" 5 (Net.Graph.n_nodes g);
  check Alcotest.int "edges" 5 (Net.Graph.n_edges g);
  check Alcotest.bool "has edge" true (Net.Graph.has_edge g 0 1);
  check Alcotest.bool "symmetric" true (Net.Graph.has_edge g 1 0);
  check Alcotest.bool "absent" false (Net.Graph.has_edge g 0 4);
  check Alcotest.(float 0.0) "weight" 4.0 (Net.Graph.weight g 0 3);
  check Alcotest.(float 0.0) "weight symmetric" 4.0 (Net.Graph.weight g 3 0)

let test_graph_neighbors () =
  let g = house () in
  check
    Alcotest.(list (pair int (float 0.0)))
    "neighbors sorted" [ (1, 1.0); (3, 4.0) ] (Net.Graph.neighbors g 0);
  check Alcotest.int "degree" 2 (Net.Graph.degree g 0)

let test_graph_link_state () =
  let g = house () in
  Net.Graph.set_link g 0 1 ~up:false;
  check Alcotest.bool "down" false (Net.Graph.link_is_up g 0 1);
  check Alcotest.bool "edge persists" true (Net.Graph.has_edge g 0 1);
  check Alcotest.int "live edges" 4 (Net.Graph.n_edges g);
  check Alcotest.int "degree excludes down" 1 (Net.Graph.degree g 0);
  check
    Alcotest.(list (pair int (float 0.0)))
    "neighbors exclude down" [ (3, 4.0) ] (Net.Graph.neighbors g 0);
  Net.Graph.set_link g 0 1 ~up:true;
  check Alcotest.bool "up again" true (Net.Graph.link_is_up g 0 1);
  check Alcotest.(float 0.0) "weight preserved" 1.0 (Net.Graph.weight g 0 1)

let test_graph_validation () =
  let g = Net.Graph.create 3 in
  Net.Graph.add_edge g 0 1 ~weight:1.0;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Graph.add_edge: edge (0, 1) exists") (fun () ->
      Net.Graph.add_edge g 0 1 ~weight:2.0);
  Alcotest.check_raises "self-loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Net.Graph.add_edge g 2 2 ~weight:1.0);
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Graph.add_edge: weight must be finite and positive")
    (fun () -> Net.Graph.add_edge g 1 2 ~weight:0.0);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph: node 5 out of range [0, 3)") (fun () ->
      Net.Graph.add_edge g 1 5 ~weight:1.0)

let test_graph_copy_independent () =
  let g = house () in
  let g' = Net.Graph.copy g in
  Net.Graph.set_link g' 0 1 ~up:false;
  check Alcotest.bool "original unaffected" true (Net.Graph.link_is_up g 0 1);
  check Alcotest.bool "copy changed" false (Net.Graph.link_is_up g' 0 1)

let test_graph_equal () =
  let a = house () and b = house () in
  check Alcotest.bool "equal copies" true (Net.Graph.equal a b);
  Net.Graph.set_link b 0 1 ~up:false;
  check Alcotest.bool "state matters" false (Net.Graph.equal a b)

let test_graph_edges_listing () =
  let g = house () in
  Net.Graph.set_link g 3 4 ~up:false;
  let live = Net.Graph.edges g in
  check Alcotest.int "live listing" 4 (List.length live);
  List.iter
    (fun (e : Net.Graph.edge) ->
      check Alcotest.bool "u < v" true (e.u < e.v))
    live;
  check Alcotest.int "all listing includes down" 5
    (List.length (Net.Graph.all_edges g));
  check Alcotest.(float 0.01) "total weight live" 7.0 (Net.Graph.total_weight g)

(* ------------------------------------------------------------------ *)
(* Union-find *)

let test_union_find () =
  let uf = Net.Union_find.create 6 in
  check Alcotest.int "initial sets" 6 (Net.Union_find.n_sets uf);
  check Alcotest.bool "union merges" true (Net.Union_find.union uf 0 1);
  check Alcotest.bool "redundant union" false (Net.Union_find.union uf 1 0);
  ignore (Net.Union_find.union uf 2 3);
  ignore (Net.Union_find.union uf 0 3);
  check Alcotest.bool "transitive" true (Net.Union_find.same uf 1 2);
  check Alcotest.bool "separate" false (Net.Union_find.same uf 0 4);
  check Alcotest.int "set count" 3 (Net.Union_find.n_sets uf)

(* ------------------------------------------------------------------ *)
(* BFS *)

let test_bfs_hops_line () =
  let g = Net.Topo_gen.line 5 in
  check Alcotest.(list int) "hops from 0" [ 0; 1; 2; 3; 4 ]
    (Array.to_list (Net.Bfs.hops g 0))

let test_bfs_hops_ring () =
  let g = Net.Topo_gen.ring 6 in
  check Alcotest.(list int) "hops wrap" [ 0; 1; 2; 3; 2; 1 ]
    (Array.to_list (Net.Bfs.hops g 0))

let test_bfs_unreachable () =
  let g = Net.Graph.of_edges 4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
  let hops = Net.Bfs.hops g 0 in
  check Alcotest.int "reachable" 1 hops.(1);
  check Alcotest.bool "unreachable marked" true (hops.(2) = max_int);
  check Alcotest.bool "disconnected" false (Net.Bfs.is_connected g);
  check
    Alcotest.(list (list int))
    "components" [ [ 0; 1 ]; [ 2; 3 ] ] (Net.Bfs.components g)

let test_bfs_connectivity_after_failure () =
  let g = Net.Topo_gen.ring 5 in
  Net.Graph.set_link g 0 1 ~up:false;
  check Alcotest.bool "ring minus one link still connected" true
    (Net.Bfs.is_connected g);
  Net.Graph.set_link g 2 3 ~up:false;
  check Alcotest.bool "two failures split the ring" false (Net.Bfs.is_connected g)

let test_bfs_diameter () =
  check Alcotest.int "line diameter" 6 (Net.Bfs.hop_diameter (Net.Topo_gen.line 7));
  check Alcotest.int "ring diameter" 3 (Net.Bfs.hop_diameter (Net.Topo_gen.ring 6));
  check Alcotest.int "star diameter" 2 (Net.Bfs.hop_diameter (Net.Topo_gen.star 8));
  check Alcotest.int "complete diameter" 1
    (Net.Bfs.hop_diameter (Net.Topo_gen.complete 5))

let test_bfs_eccentricity () =
  let g = Net.Topo_gen.line 5 in
  check Alcotest.int "end node" 4 (Net.Bfs.eccentricity g 0);
  check Alcotest.int "middle node" 2 (Net.Bfs.eccentricity g 2)

(* ------------------------------------------------------------------ *)
(* Dijkstra *)

let test_dijkstra_house () =
  let g = house () in
  let r = Net.Dijkstra.run g 0 in
  check Alcotest.(float 0.0) "to 1" 1.0 r.dist.(1);
  check Alcotest.(float 0.0) "to 2" 2.0 r.dist.(2);
  check Alcotest.(float 0.0) "to 4" 3.0 r.dist.(4);
  (* 0-3 direct costs 4.0 but 0-1-2-4-3 also costs 4.0; either is fine,
     the distance must be 4.0. *)
  check Alcotest.(float 0.0) "to 3" 4.0 r.dist.(3)

let test_dijkstra_path () =
  let g = house () in
  check
    Alcotest.(option (list int))
    "path follows cheap edges"
    (Some [ 0; 1; 2; 4 ])
    (Net.Dijkstra.path g ~src:0 ~dst:4)

let test_dijkstra_path_valid () =
  let rng = Sim.Rng.create 21 in
  let g = Net.Topo_gen.waxman rng ~n:40 ~target_degree:3.5 () in
  let r = Net.Dijkstra.run g 0 in
  for dst = 0 to 39 do
    match Net.Dijkstra.path_of_result r ~src:0 ~dst with
    | Some p ->
      check Alcotest.bool "path valid" true (Net.Path.is_valid g p);
      check Alcotest.(float 1e-9) "path cost equals dist" r.dist.(dst)
        (Net.Path.cost g p)
    | None -> Alcotest.fail "connected graph must have a path"
  done

let test_dijkstra_unreachable () =
  let g = Net.Graph.of_edges 3 [ (0, 1, 1.0) ] in
  check Alcotest.bool "infinite" true
    (Net.Dijkstra.distance g 0 2 = infinity);
  check Alcotest.(option (list int)) "no path" None (Net.Dijkstra.path g ~src:0 ~dst:2)

let test_dijkstra_respects_link_state () =
  let g = house () in
  let before = Net.Dijkstra.distance g 0 1 in
  Net.Graph.set_link g 0 1 ~up:false;
  check Alcotest.bool "detour is longer" true
    (Net.Dijkstra.distance g 0 1 > before)

let test_dijkstra_reroute_value () =
  (* With 0-1 down the best route is 0-3-4-2-1 = 4 + 1 + 1 + 1. *)
  let g = house () in
  Net.Graph.set_link g 0 1 ~up:false;
  check Alcotest.(float 0.0) "exact detour cost" 7.0 (Net.Dijkstra.distance g 0 1)

let test_dijkstra_unit_weights_match_bfs () =
  let rng = Sim.Rng.create 31 in
  let g = Net.Topo_gen.erdos_renyi rng ~n:30 ~min_weight:1.0 ~max_weight:1.0 () in
  let hops = Net.Bfs.hops g 0 in
  let r = Net.Dijkstra.run g 0 in
  Array.iteri
    (fun v h ->
      if h <> max_int then
        check Alcotest.(float 1e-9) "dijkstra = bfs on unit weights"
          (float_of_int h) r.dist.(v))
    hops

let test_dijkstra_all_pairs_symmetric () =
  let rng = Sim.Rng.create 41 in
  let g = Net.Topo_gen.waxman rng ~n:25 () in
  let d = Net.Dijkstra.all_pairs g in
  for u = 0 to 24 do
    for v = 0 to 24 do
      check Alcotest.(float 1e-9) "symmetric" d.(u).(v) d.(v).(u)
    done;
    check Alcotest.(float 0.0) "diagonal" 0.0 d.(u).(u)
  done

(* ------------------------------------------------------------------ *)
(* MST *)

let test_mst_house () =
  let g = house () in
  let mst = Net.Mst.kruskal g in
  check Alcotest.int "n-1 edges" 4 (List.length mst);
  check Alcotest.bool "spans" true (Net.Mst.spans g mst);
  check Alcotest.(float 0.0) "cost avoids the 4.0 edge" 4.0 (Net.Mst.cost mst)

let test_mst_disconnected_forest () =
  let g = Net.Graph.of_edges 4 [ (0, 1, 1.0); (2, 3, 2.0) ] in
  let mst = Net.Mst.kruskal g in
  check Alcotest.int "forest edges" 2 (List.length mst);
  check Alcotest.bool "cannot span disconnected" false (Net.Mst.spans g mst)

let test_mst_random_spans () =
  let rng = Sim.Rng.create 51 in
  for seed = 1 to 10 do
    ignore seed;
    let g = Net.Topo_gen.waxman rng ~n:30 () in
    let mst = Net.Mst.kruskal g in
    check Alcotest.int "tree size" 29 (List.length mst);
    check Alcotest.bool "spans" true (Net.Mst.spans g mst)
  done

let test_mst_of_matrix () =
  let m =
    [|
      [| 0.0; 1.0; 5.0 |];
      [| 1.0; 0.0; 2.0 |];
      [| 5.0; 2.0; 0.0 |];
    |]
  in
  let mst = Net.Mst.mst_of_matrix m in
  check Alcotest.int "two edges" 2 (List.length mst);
  let cost = List.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 mst in
  check Alcotest.(float 0.0) "min cost" 3.0 cost

let test_mst_minimality_vs_random_tree () =
  (* The MST cost never exceeds the cost of a random spanning tree built
     by BFS. *)
  let rng = Sim.Rng.create 61 in
  let g = Net.Topo_gen.waxman rng ~n:25 () in
  let mst_cost = Net.Mst.cost (Net.Mst.kruskal g) in
  (* BFS tree from node 0. *)
  let r = Net.Dijkstra.run g 0 in
  let bfs_cost = ref 0.0 in
  Array.iteri
    (fun v pred ->
      match pred with
      | Some p -> bfs_cost := !bfs_cost +. Net.Graph.weight g p v
      | None -> ignore v)
    r.pred;
  check Alcotest.bool "mst <= sp-tree" true (mst_cost <= !bfs_cost +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Topology generators *)

let test_topo_waxman_connected () =
  for seed = 1 to 10 do
    let rng = Sim.Rng.create seed in
    let g = Net.Topo_gen.waxman rng ~n:50 () in
    check Alcotest.bool "connected" true (Net.Bfs.is_connected g);
    check Alcotest.int "node count" 50 (Net.Graph.n_nodes g)
  done

let test_topo_waxman_deterministic () =
  let g1 = Net.Topo_gen.waxman (Sim.Rng.create 5) ~n:30 () in
  let g2 = Net.Topo_gen.waxman (Sim.Rng.create 5) ~n:30 () in
  check Alcotest.bool "same seed, same graph" true (Net.Graph.equal g1 g2)

let test_topo_waxman_target_degree () =
  List.iter
    (fun n ->
      let degrees =
        List.map
          (fun seed ->
            let rng = Sim.Rng.create seed in
            let g = Net.Topo_gen.waxman rng ~n ~target_degree:3.5 () in
            2.0 *. float_of_int (Net.Graph.n_edges g) /. float_of_int n)
          [ 1; 2; 3; 4; 5 ]
      in
      let avg = List.fold_left ( +. ) 0.0 degrees /. 5.0 in
      if avg < 2.3 || avg > 5.0 then
        Alcotest.failf "degree calibration off at n=%d: %.2f" n avg)
    [ 20; 60; 100 ]

let test_topo_erdos_renyi () =
  for seed = 1 to 5 do
    let rng = Sim.Rng.create seed in
    let g = Net.Topo_gen.erdos_renyi rng ~n:40 () in
    check Alcotest.bool "connected" true (Net.Bfs.is_connected g);
    List.iter
      (fun (e : Net.Graph.edge) ->
        if e.weight < 1.0 || e.weight > 10.0 +. 1e-6 then
          Alcotest.failf "weight out of range: %f" e.weight)
      (Net.Graph.edges g)
  done

let test_topo_regular_shapes () =
  check Alcotest.int "ring edges" 6 (Net.Graph.n_edges (Net.Topo_gen.ring 6));
  check Alcotest.int "line edges" 5 (Net.Graph.n_edges (Net.Topo_gen.line 6));
  check Alcotest.int "star edges" 5 (Net.Graph.n_edges (Net.Topo_gen.star 6));
  check Alcotest.int "complete edges" 15
    (Net.Graph.n_edges (Net.Topo_gen.complete 6));
  check Alcotest.int "grid edges" 12
    (Net.Graph.n_edges (Net.Topo_gen.grid ~rows:3 ~cols:3 ()));
  check Alcotest.int "binary tree edges" 6
    (Net.Graph.n_edges (Net.Topo_gen.binary_tree 7));
  List.iter
    (fun g -> check Alcotest.bool "connected" true (Net.Bfs.is_connected g))
    [
      Net.Topo_gen.ring 6;
      Net.Topo_gen.line 6;
      Net.Topo_gen.star 6;
      Net.Topo_gen.complete 6;
      Net.Topo_gen.grid ~rows:3 ~cols:4 ();
      Net.Topo_gen.binary_tree 10;
    ]

let test_topo_grid_structure () =
  let g = Net.Topo_gen.grid ~rows:2 ~cols:3 () in
  (* 0 1 2 / 3 4 5 *)
  check Alcotest.bool "right neighbor" true (Net.Graph.has_edge g 0 1);
  check Alcotest.bool "down neighbor" true (Net.Graph.has_edge g 1 4);
  check Alcotest.bool "no diagonal" false (Net.Graph.has_edge g 0 4)

let test_topo_invalid () =
  Alcotest.check_raises "ring too small"
    (Invalid_argument "Topo_gen.ring: need at least 3 nodes") (fun () ->
      ignore (Net.Topo_gen.ring 2))

(* ------------------------------------------------------------------ *)
(* Path *)

let test_path_operations () =
  let g = house () in
  let p = [ 0; 1; 2; 4 ] in
  check Alcotest.bool "valid" true (Net.Path.is_valid g p);
  check Alcotest.(float 0.0) "cost" 3.0 (Net.Path.cost g p);
  check Alcotest.int "hops" 3 (Net.Path.hops p);
  check
    Alcotest.(list (pair int int))
    "edges" [ (0, 1); (1, 2); (2, 4) ] (Net.Path.edges p);
  check Alcotest.bool "mem_edge undirected" true (Net.Path.mem_edge p 2 1);
  check Alcotest.bool "mem_edge absent" false (Net.Path.mem_edge p 0 4)

let test_path_invalid_cases () =
  let g = house () in
  check Alcotest.bool "empty invalid" false (Net.Path.is_valid g []);
  check Alcotest.bool "singleton valid" true (Net.Path.is_valid g [ 2 ]);
  check Alcotest.bool "non-edge hop" false (Net.Path.is_valid g [ 0; 4 ]);
  Net.Graph.set_link g 0 1 ~up:false;
  check Alcotest.bool "down link invalidates" false (Net.Path.is_valid g [ 0; 1 ])

(* ------------------------------------------------------------------ *)
(* DOT export *)

let test_dot_structure () =
  let g = house () in
  let dot = Net.Dot.graph g in
  check Alcotest.bool "graph block" true
    (String.length dot > 0
    && String.sub dot 0 5 = "graph");
  (* One line per node and per edge. *)
  List.iter
    (fun needle ->
      if not (List.exists (fun line ->
          let line = String.trim line in
          String.length line >= String.length needle
          && String.sub line 0 (String.length needle) = needle)
          (String.split_on_char '\n' dot))
      then Alcotest.failf "missing %S in dot output" needle)
    [ "0 --"; "3 -- 4" ]

let test_dot_highlight_and_mark () =
  let g = house () in
  let dot = Net.Dot.graph ~highlight:[ (1, 0) ] ~mark:[ 2 ] g in
  check Alcotest.bool "highlight drawn bold" true
    (Astring_like.contains dot "penwidth=3");
  check Alcotest.bool "marked node filled" true
    (Astring_like.contains dot "fillcolor=lightblue")

let test_dot_down_link_dashed () =
  let g = house () in
  Net.Graph.set_link g 0 1 ~up:false;
  check Alcotest.bool "dashed" true
    (Astring_like.contains (Net.Dot.graph g) "style=dashed")

let () =
  Alcotest.run "net"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basic;
          Alcotest.test_case "neighbors" `Quick test_graph_neighbors;
          Alcotest.test_case "link state" `Quick test_graph_link_state;
          Alcotest.test_case "validation" `Quick test_graph_validation;
          Alcotest.test_case "copy independence" `Quick test_graph_copy_independent;
          Alcotest.test_case "equality" `Quick test_graph_equal;
          Alcotest.test_case "edge listings" `Quick test_graph_edges_listing;
        ] );
      ("union-find", [ Alcotest.test_case "operations" `Quick test_union_find ]);
      ( "bfs",
        [
          Alcotest.test_case "hops on a line" `Quick test_bfs_hops_line;
          Alcotest.test_case "hops on a ring" `Quick test_bfs_hops_ring;
          Alcotest.test_case "unreachable and components" `Quick test_bfs_unreachable;
          Alcotest.test_case "connectivity after failures" `Quick
            test_bfs_connectivity_after_failure;
          Alcotest.test_case "diameters" `Quick test_bfs_diameter;
          Alcotest.test_case "eccentricity" `Quick test_bfs_eccentricity;
        ] );
      ( "dijkstra",
        [
          Alcotest.test_case "known distances" `Quick test_dijkstra_house;
          Alcotest.test_case "path extraction" `Quick test_dijkstra_path;
          Alcotest.test_case "paths valid on random graph" `Quick
            test_dijkstra_path_valid;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "respects link state" `Quick
            test_dijkstra_respects_link_state;
          Alcotest.test_case "reroute cost" `Quick test_dijkstra_reroute_value;
          Alcotest.test_case "matches bfs on unit weights" `Quick
            test_dijkstra_unit_weights_match_bfs;
          Alcotest.test_case "all-pairs symmetric" `Quick
            test_dijkstra_all_pairs_symmetric;
        ] );
      ( "mst",
        [
          Alcotest.test_case "known mst" `Quick test_mst_house;
          Alcotest.test_case "forest on disconnected" `Quick
            test_mst_disconnected_forest;
          Alcotest.test_case "random graphs span" `Quick test_mst_random_spans;
          Alcotest.test_case "matrix closure mst" `Quick test_mst_of_matrix;
          Alcotest.test_case "minimality" `Quick test_mst_minimality_vs_random_tree;
        ] );
      ( "topo-gen",
        [
          Alcotest.test_case "waxman connected" `Quick test_topo_waxman_connected;
          Alcotest.test_case "waxman deterministic" `Quick
            test_topo_waxman_deterministic;
          Alcotest.test_case "waxman degree calibration" `Quick
            test_topo_waxman_target_degree;
          Alcotest.test_case "erdos-renyi" `Quick test_topo_erdos_renyi;
          Alcotest.test_case "regular shapes" `Quick test_topo_regular_shapes;
          Alcotest.test_case "grid structure" `Quick test_topo_grid_structure;
          Alcotest.test_case "invalid sizes" `Quick test_topo_invalid;
        ] );
      ( "path",
        [
          Alcotest.test_case "operations" `Quick test_path_operations;
          Alcotest.test_case "invalid cases" `Quick test_path_invalid_cases;
        ] );
      ( "dot",
        [
          Alcotest.test_case "structure" `Quick test_dot_structure;
          Alcotest.test_case "highlight and mark" `Quick test_dot_highlight_and_mark;
          Alcotest.test_case "down link dashed" `Quick test_dot_down_link_dashed;
        ] );
    ]
