lib/hierarchy/hmc.ml: Array Dgmc Format Hashtbl Int List Lsr Mctree Net Option Printf Set Sim
