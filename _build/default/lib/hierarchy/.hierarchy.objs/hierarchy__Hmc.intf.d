lib/hierarchy/hmc.mli: Dgmc Mctree Net Sim
