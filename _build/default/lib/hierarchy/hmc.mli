(** Hierarchical D-GMC — the scalability extension the paper sketches.

    "LSR itself is generally intended for use in … an Autonomous System…
    Scalability can be addressed by introducing a routing hierarchy into
    large networks.  The combination of an LSR protocol and routing
    hierarchy is under consideration for the ATM PNNI standard.  In this
    paper, we present the basic D-GMC protocol; its extension to
    hierarchical networks is part of our ongoing work." (§2)

    This module is that extension, in the PNNI two-level style:

    - switches are statically grouped into {e areas}; every area runs
      the plain D-GMC protocol internally, flooding scoped to the area;
    - a {e logical network} with one node per area (connected where real
      inter-area links exist) runs a second D-GMC instance among
      designated {e area leaders} (lowest switch id — a leader-election
      protocol would pick one dynamically);
    - an area joins the logical MC while it has real members; the agreed
      logical topology is a tree of areas, each logical edge mapped to a
      concrete inter-area link;
    - each leader reads the logical tree and instructs the local
      endpoints of its incident mapped links — the {e gateways} — to join
      the area's MC, so the intra-area trees stitch into one global
      delivery tree: union of area trees plus mapped inter-area links.

    The scalability gain measured by the benchmarks: a membership event
    floods its own area (and the k-node logical level when area
    membership flips), not all n switches.

    Scope (documented restrictions): the area partition and inter-area
    links are static (no inter-area link failures; intra-area topology
    events would be handled by the per-area D-GMC but are not wired to
    an injection API here), and leaders are designated, not elected. *)

type t

val create :
  graph:Net.Graph.t ->
  partition:int list array ->
  config:Dgmc.Config.t ->
  ?logical_t_hop:float ->
  unit ->
  t
(** [create ~graph ~partition ~config ()] — [partition.(a)] lists area
    [a]'s switches; areas must be non-empty, disjoint, cover the graph,
    and each induce a connected subgraph.  Every pair of areas used by
    the logical level must be joined by at least one real link; the
    cheapest such link realises the logical edge.  [logical_t_hop]
    (default [3 *. config.t_hop]) is the per-hop delay of logical-level
    flooding (logical LSAs traverse several real hops). *)

val engine : t -> Sim.Engine.t

val n_areas : t -> int

val area_of : t -> int -> int

val leader : t -> int -> int
(** The designated leader switch of an area. *)

val logical_graph : t -> Net.Graph.t

(** {1 Events} *)

val join : t -> switch:int -> Dgmc.Mc_id.t -> Dgmc.Member.role -> unit

val leave : t -> switch:int -> Dgmc.Mc_id.t -> unit

val schedule_join :
  t -> at:float -> switch:int -> Dgmc.Mc_id.t -> Dgmc.Member.role -> unit

val schedule_leave : t -> at:float -> switch:int -> Dgmc.Mc_id.t -> unit

val run : ?until:float -> ?max_events:int -> t -> unit

(** {1 Measurements} *)

type totals = {
  events : int;  (** Host join/leave events injected. *)
  intra_floodings : int;  (** Area-scoped MC LSA floods. *)
  logical_floodings : int;  (** Logical-level MC LSA floods. *)
  intra_messages : int;  (** Link transmissions inside areas. *)
  logical_messages : int;  (** Logical-level link transmissions. *)
  computations : int;  (** Topology computations, both levels. *)
  gateway_instructions : int;  (** Leader→gateway join/leave commands. *)
  switches_touched : int;
      (** Upper bound on distinct switches that processed any signaling:
          area sizes of areas that flooded, plus leaders.  The flat
          protocol touches all n switches on every event. *)
}

val totals : t -> totals

val reset_counters : t -> unit

(** {1 Agreement} *)

val global_tree : t -> Dgmc.Mc_id.t -> Mctree.Tree.t option
(** The stitched delivery tree: union of the agreed per-area trees plus
    the mapped inter-area links of the agreed logical tree.  [None]
    while inconsistent. *)

val divergence : t -> Dgmc.Mc_id.t -> string list
(** Reasons the hierarchy has not converged: per-area disagreement,
    logical-level disagreement, logical membership not matching which
    areas hold real members, gateway sets not matching the logical
    tree, or an invalid stitched global tree. *)

val converged : t -> Dgmc.Mc_id.t -> bool
