(** Per-source tree sets for multi-sender asymmetric connections.

    The paper's asymmetric example is MOSPF: "source-rooted
    shortest-path trees destined for a common IP multicast address …
    form a typical asymmetric MC" — i.e. the connection's topology is
    one tree {e per sender}, all reaching the same receivers.  The D-GMC
    protocol proper carries a single shared tree per proposal (its
    single-sender asymmetric mode); this module provides the
    multi-sender structure for analysis and data-plane use: building,
    updating, and measuring a family of SPTs over one receiver set. *)

type t

val build : Net.Graph.t -> senders:int list -> receivers:int list -> t
(** One source-rooted shortest-path tree per sender, each spanning the
    receivers.  Senders and receivers may overlap.  Raises [Failure]
    when a receiver is unreachable from some sender. *)

val senders : t -> int list

val receivers : t -> int list

val tree_of : t -> sender:int -> Tree.t
(** Raises [Not_found] for a non-sender. *)

val add_receiver : Net.Graph.t -> t -> int -> t
(** Extend every sender's tree to the new receiver (incremental
    graft). *)

val remove_receiver : Net.Graph.t -> t -> int -> t
(** Drop the receiver and prune every tree. *)

val add_sender : Net.Graph.t -> t -> int -> t
(** Compute the new sender's tree. *)

val remove_sender : t -> int -> t

val total_cost : Net.Graph.t -> t -> float
(** Sum of the trees' costs — the state the network must carry, the
    quantity the paper's §5 holds against ATM's one-connection-per-
    sender model. *)

val link_occurrences : t -> ((int * int) * int) list
(** Each link used by at least one tree with the number of trees using
    it, sorted — the load-spreading picture versus a shared tree. *)

val deliver : Net.Graph.t -> t -> sender:int -> Delivery.report
(** Multicast from a sender over {e its own} tree. *)
