(** Named topology-computation algorithms.

    The D-GMC protocol is deliberately independent of how MC topologies
    are computed (paper §3.5); a switch just calls {e some} function from
    members to a tree.  This registry gives those functions stable names
    so configurations, the CLI and benchmark tables can refer to them. *)

type t = {
  name : string;
  compute : Net.Graph.t -> int list -> Tree.t;
      (** From-scratch computation over the (sorted, duplicate-free)
          member list. *)
}

val kmb : t
(** {!Steiner.kmb}. *)

val sph : t
(** {!Steiner.sph}. *)

val spt : t
(** Source-rooted shortest-path tree rooted at the smallest member id —
    models single-source asymmetric MCs where the root is the
    distinguished sender. *)

val all : t list
(** Every registered algorithm. *)

val of_string : string -> t option
(** Look up by {!field-name}. *)

val pp : Format.formatter -> t -> unit
