lib/mctree/incremental.mli: Net Tree
