lib/mctree/tree.mli: Format Map Net Set
