lib/mctree/spt.mli: Net Tree
