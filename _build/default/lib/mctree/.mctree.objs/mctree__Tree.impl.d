lib/mctree/tree.ml: Format Int List Map Net Option Set Stdlib
