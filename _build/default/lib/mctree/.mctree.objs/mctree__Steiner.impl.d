lib/mctree/steiner.ml: Array Float List Net Printf Tree
