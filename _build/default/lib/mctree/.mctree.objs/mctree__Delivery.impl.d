lib/mctree/delivery.ml: Array Float Hashtbl List Net Option Tree
