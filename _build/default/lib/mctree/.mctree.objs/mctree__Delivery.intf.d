lib/mctree/delivery.mli: Hashtbl Net Tree
