lib/mctree/incremental.ml: Array Float List Net Steiner Tree
