lib/mctree/algo.mli: Format Net Tree
