lib/mctree/forest.ml: Delivery Hashtbl Int List Map Option Spt Tree
