lib/mctree/steiner.mli: Net Tree
