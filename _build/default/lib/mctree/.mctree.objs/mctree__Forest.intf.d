lib/mctree/forest.mli: Delivery Net Tree
