lib/mctree/spt.ml: List Net Printf Tree
