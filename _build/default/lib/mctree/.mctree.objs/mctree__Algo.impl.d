lib/mctree/algo.ml: Format List Net Spt Steiner String Tree
