let graft g tree x =
  (* Cheapest live path from [x] to any node of [tree] other than [x]
     itself ([x] may already be recorded as a terminal). *)
  let r = Net.Dijkstra.run g x in
  let best = ref None in
  Tree.Int_set.iter
    (fun v ->
      let d = r.dist.(v) in
      let better = match !best with Some (_, d') -> d < d' | None -> true in
      if v <> x && Float.is_finite d && better then
        match Net.Dijkstra.path_of_result r ~src:x ~dst:v with
        | Some p -> best := Some (p, d)
        | None -> ())
    (Tree.Int_set.remove x (Tree.nodes tree));
  match !best with
  | Some (path, _) -> Tree.add_path tree path
  | None -> failwith "Incremental.join: member cannot reach the tree"

let join g tree x =
  let tree = Tree.add_terminal tree x in
  if Tree.Int_set.is_empty (Tree.nodes (Tree.remove_terminal tree x)) then tree
  else if Tree.mem_node (Tree.remove_terminal tree x) x then tree
  else graft g tree x

let leave _g tree x = Tree.prune (Tree.remove_terminal tree x)

(* The connected fragment of [t]'s edge set containing [seed], declared
   with [seed] as its only terminal so that {!graft} targets genuinely
   connected nodes only. *)
let fragment t seed =
  let keep = Tree.Int_set.of_list (Tree.dfs_order t ~root:seed) in
  List.fold_left
    (fun acc (u, v) ->
      if Tree.Int_set.mem u keep && Tree.Int_set.mem v keep then
        Tree.add_edge acc u v
      else acc)
    (Tree.of_terminals [ seed ])
    (Tree.edges t)

let repair g tree =
  let live =
    List.fold_left
      (fun t (u, v) ->
        if Net.Graph.link_is_up g u v then t else Tree.remove_edge t u v)
      tree (Tree.edges tree)
  in
  let terminals = Tree.Int_set.elements (Tree.terminals live) in
  match terminals with
  | [] -> Some Tree.empty
  | [ only ] -> Some (Tree.of_terminals [ only ])
  | seed :: rest -> (
    (* Keep the fragment still holding [seed]; re-attach every terminal
       that fell off via its cheapest live path to the growing tree.  A
       nearest-tree-node shortest path touches the tree only at its
       endpoint (weights are positive), so no cycles arise. *)
    try
      let result =
        List.fold_left
          (fun t x ->
            let t = if Tree.mem_node t x then t else graft g t x in
            Tree.add_terminal t x)
          (fragment live seed) rest
      in
      let result = Tree.prune (Tree.with_terminals result terminals) in
      if Tree.is_valid_mc_topology g result then Some result
      else Some (Steiner.sph g terminals)
    with Failure _ -> (
      try Some (Steiner.sph g terminals) with Failure _ -> None))

let drift g tree =
  let terminals = Tree.Int_set.elements (Tree.terminals tree) in
  if List.length terminals < 2 then 1.0
  else begin
    let fresh = Steiner.sph g terminals in
    let fresh_cost = Tree.cost g fresh in
    if fresh_cost <= 0.0 then 1.0 else Tree.cost g tree /. fresh_cost
  end

let needs_recompute ?(threshold = 1.5) g tree = drift g tree > threshold
