(** Source-rooted shortest-path trees, for asymmetric connections.

    This is the topology MOSPF computes per (source, group) pair and the
    natural choice for single-source asymmetric MCs such as video
    broadcast: the union of shortest paths from the root to every
    receiver, pruned to the receivers actually present. *)

val source_rooted : Net.Graph.t -> root:int -> receivers:int list -> Tree.t
(** [source_rooted g ~root ~receivers] — tree of shortest paths from
    [root] to each receiver.  The terminal set of the result is
    [root :: receivers].  Receivers already equal to [root] are allowed.
    Raises [Failure] if some receiver is unreachable. *)

val depth : Tree.t -> root:int -> int
(** Longest hop distance from the root to any tree node. *)

val receivers_cost : Net.Graph.t -> Tree.t -> root:int -> (int * float) list
(** Delay from the root to each terminal along tree paths (terminals
    other than the root), sorted by node id. *)
