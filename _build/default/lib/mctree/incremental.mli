(** Incremental topology maintenance (paper §3.5).

    Full Steiner recomputation per membership change is too expensive, so
    an implementation "should invoke an incremental update algorithm,
    which adds a tree branch to reach a new member or removes a branch
    from a leaving member", recomputing from scratch only "when the
    network configuration changes adversely and/or the present topology
    deviates significantly from an optimal one".  This module provides
    exactly those operations. *)

val join : Net.Graph.t -> Tree.t -> int -> Tree.t
(** [join g tree x] — add terminal [x], grafted onto the existing tree by
    the cheapest live path from [x] to any current tree node (greedy
    dynamic-Steiner step of Imase & Waxman).  If the tree has no nodes
    yet, the result is the single-terminal tree.  Raises [Failure] when
    [x] cannot reach the tree. *)

val leave : Net.Graph.t -> Tree.t -> int -> Tree.t
(** [leave g tree x] — remove terminal [x] and prune the now-useless
    branch (non-terminal leaves). *)

val repair : Net.Graph.t -> Tree.t -> Tree.t option
(** [repair g tree] — drop tree edges whose links are down, then
    reconnect the fragments along cheapest live paths.  [None] when the
    terminals are no longer mutually reachable (network partition). *)

val drift : Net.Graph.t -> Tree.t -> float
(** [drift g tree] — ratio of the tree's cost to the cost of a fresh
    {!Steiner.sph} tree over the same terminals ([1.0] = optimal w.r.t.
    the heuristic, larger = worse).  [1.0] for trees with fewer than two
    terminals. *)

val needs_recompute : ?threshold:float -> Net.Graph.t -> Tree.t -> bool
(** [true] when {!drift} exceeds [threshold] (default [1.5]) — the
    paper's "deviates significantly from an optimal" trigger. *)
