(** Steiner-tree heuristics for symmetric multipoint connections.

    Finding a minimum-cost tree spanning a given terminal set (the
    Steiner problem) is NP-hard; the paper relies on standard heuristics
    (its reference [9]).  Two classics are provided:

    - {!kmb} — Kou, Markowsky & Berman (1981): MST of the terminals'
      metric closure, re-expanded into the graph.  2(1 - 1/|T|)
      approximation.
    - {!sph} — Takahashi & Matsuyama (1980) shortest-path heuristic:
      grow the tree by repeatedly attaching the closest remaining
      terminal.  Same worst-case ratio, usually slightly better trees,
      and the natural basis for incremental member addition.

    Both return topologies satisfying {!Tree.is_valid_mc_topology} when
    all terminals are mutually reachable over live links, and raise
    [Failure] otherwise. *)

val kmb : Net.Graph.t -> int list -> Tree.t
(** [kmb g terminals] — KMB heuristic.  [terminals] must be non-empty,
    within range and duplicate-free. *)

val sph : Net.Graph.t -> int list -> Tree.t
(** [sph g terminals] — shortest-path heuristic, seeded at the smallest
    terminal id for determinism. *)

val lower_bound : Net.Graph.t -> int list -> float
(** A cheap lower bound on the optimal Steiner tree cost: the maximum of
    (a) the largest terminal-to-terminal shortest-path distance (any
    spanning tree contains such a path) and (b) half the metric-closure
    MST cost (the classic KMB-analysis bound: doubling an optimal
    Steiner tree yields a closure spanning walk).  Used by tests and the
    heuristic-quality ablation; the true optimum lies between this bound
    and the heuristics' results. *)
