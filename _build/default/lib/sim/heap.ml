type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let grow h x =
  (* The array slots beyond [size] hold arbitrary previously-stored values;
     [x] is only used to seed a fresh backing array. *)
  let capacity = Array.length h.data in
  if h.size = capacity then
    if capacity = 0 then h.data <- Array.make 8 x
    else begin
      let data = Array.make (2 * capacity) x in
      Array.blit h.data 0 data 0 capacity;
      h.data <- data
    end

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && h.cmp h.data.(left) h.data.(!smallest) < 0 then
    smallest := left;
  if right < h.size && h.cmp h.data.(right) h.data.(!smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let add h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h = h.size <- 0

let to_sorted_list h =
  let copy = { h with data = Array.sub h.data 0 h.size } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []

let of_list ~cmp xs =
  let h = create ~cmp in
  List.iter (add h) xs;
  h
