(** Simulation calendar: a time-ordered queue of pending actions.

    Ties in time are broken FIFO (by insertion order), which keeps runs
    deterministic.  Scheduled actions can be cancelled through their
    handle; cancellation is lazy (O(1)) and cancelled entries are skipped
    when popped. *)

type 'a t
(** A calendar whose entries carry payloads of type ['a]. *)

type handle
(** Identifies a scheduled entry, for cancellation and status queries. *)

val create : unit -> 'a t

val schedule : 'a t -> time:float -> 'a -> handle
(** [schedule q ~time x] enqueues [x] to fire at [time].  Raises
    [Invalid_argument] on a non-finite time. *)

val cancel : handle -> unit
(** Cancel the entry; popping will silently skip it.  Idempotent. *)

val is_cancelled : handle -> bool

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest live entry, or [None] if the queue
    holds no live entries. *)

val peek_time : 'a t -> float option
(** Fire time of the earliest live entry, discarding any cancelled entries
    encountered along the way. *)

val length : 'a t -> int
(** Number of live (non-cancelled) entries. *)

val is_empty : 'a t -> bool

val clear : 'a t -> unit
