lib/sim/rng.mli:
