lib/sim/event_queue.ml: Float Heap List
