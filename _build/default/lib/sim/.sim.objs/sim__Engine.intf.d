lib/sim/engine.mli: Event_queue
