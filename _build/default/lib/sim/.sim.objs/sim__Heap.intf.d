lib/sim/heap.mli:
