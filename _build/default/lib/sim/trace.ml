type entry = { time : float; category : string; message : string }

type t = { keep : bool; echo : bool; mutable entries : entry list; mutable n : int }

let create ?(keep = true) ?(echo = false) () = { keep; echo; entries = []; n = 0 }

let disabled = { keep = false; echo = false; entries = []; n = 0 }

let enabled t = t.keep || t.echo

let pp_entry ppf e =
  Format.fprintf ppf "[%12.6f] %-10s %s" e.time e.category e.message

let record t ~time ~category message =
  if enabled t then begin
    let e = { time; category; message } in
    if t.echo then Format.eprintf "%a@." pp_entry e;
    if t.keep then begin
      t.entries <- e :: t.entries;
      t.n <- t.n + 1
    end
  end

let recordf t ~time ~category fmt =
  if enabled t then
    Format.kasprintf (fun message -> record t ~time ~category message) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let entries t = List.rev t.entries

let count t = t.n

let count_category t category =
  List.length (List.filter (fun e -> String.equal e.category category) t.entries)

let clear t =
  t.entries <- [];
  t.n <- 0
