(** Lightweight structured trace of simulation activity.

    A trace records (time, category, message) triples in order.  Protocol
    code emits trace points unconditionally; whether they are retained
    and/or printed is decided by the trace's configuration, so the hot
    path costs one branch when tracing is off. *)

type t

type entry = { time : float; category : string; message : string }

val create : ?keep:bool -> ?echo:bool -> unit -> t
(** [create ~keep ~echo ()] — [keep] retains entries in memory (default
    [true]); [echo] additionally prints each entry to stderr as it is
    recorded (default [false]). *)

val disabled : t
(** A shared trace that drops everything. *)

val enabled : t -> bool
(** [true] when the trace retains or echoes entries. *)

val record : t -> time:float -> category:string -> string -> unit
(** Record one entry (if the trace is enabled). *)

val recordf :
  t -> time:float -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the format arguments are not evaluated when the
    trace is disabled. *)

val entries : t -> entry list
(** All retained entries, oldest first. *)

val count : t -> int
(** Number of retained entries. *)

val count_category : t -> string -> int
(** Retained entries in the given category. *)

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit
