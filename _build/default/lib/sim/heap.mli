(** Array-backed binary min-heap.

    The heap is polymorphic in its element type; the ordering is fixed at
    creation time by a [cmp] function ([cmp a b < 0] means [a] is closer to
    the top).  Used by {!Event_queue} as the simulation calendar, and by
    {!Net.Dijkstra} / {!Net.Mst} as a priority queue. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp]. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit
(** [add h x] inserts [x].  O(log n). *)

val peek : 'a t -> 'a option
(** Smallest element, if any, without removing it.  O(1). *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element.  O(log n). *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but raises [Invalid_argument] on an empty heap. *)

val clear : 'a t -> unit
(** Remove all elements. *)

val to_sorted_list : 'a t -> 'a list
(** Non-destructively list all elements in ascending order.  O(n log n);
    intended for tests and debugging. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
