lib/qos/admission.mli: Capacity Dgmc Format Mctree Stdlib
