lib/qos/admission.ml: Capacity Dgmc Format Mctree Stdlib
