lib/qos/capacity.mli: Mctree Net
