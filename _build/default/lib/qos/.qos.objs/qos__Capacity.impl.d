lib/qos/capacity.ml: Float Hashtbl List Mctree Net Option Printf
