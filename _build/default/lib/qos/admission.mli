(** Bandwidth-aware MC admission — QoS negotiation before data flows.

    "An on-demand approach cannot be applied if quality of service (QoS)
    negotiation is needed prior to data transmission" (§2): MOSPF only
    computes when a datagram arrives, so there is nothing to negotiate
    against; D-GMC computes and agrees a topology first, and that
    computation can run on a capacity-constrained image of the network.
    This module is that admission step, usable standalone or as the
    topology computation a D-GMC switch invokes.

    Admission is all-or-nothing: a connection is admitted with a tree
    whose every link has the demanded residual bandwidth reserved, or
    rejected without side effects. *)

type rejection =
  | No_feasible_tree
      (** The members cannot be spanned by links with enough residual
          capacity. *)
  | Already_admitted  (** The key already holds a reservation. *)

type result = (Mctree.Tree.t, rejection) Stdlib.result

val admit :
  Capacity.t ->
  key:int ->
  kind:Dgmc.Mc_id.kind ->
  bandwidth:float ->
  members:Dgmc.Member.t ->
  result
(** Compute a topology for the members on the bandwidth-constrained
    image (same algorithm selection as the protocol: Steiner tree for
    symmetric/receiver-only, source-rooted tree for asymmetric) and
    reserve it under [key]. *)

val readmit :
  Capacity.t ->
  key:int ->
  kind:Dgmc.Mc_id.kind ->
  bandwidth:float ->
  members:Dgmc.Member.t ->
  result
(** Release [key] (if held) and admit the new member set — the
    membership-change path.  On rejection the old reservation is {e not}
    restored (the connection was torn down to make the attempt); callers
    wanting transactional behaviour should check feasibility with
    {!feasible} first. *)

val release : Capacity.t -> key:int -> unit

val feasible :
  Capacity.t -> kind:Dgmc.Mc_id.kind -> bandwidth:float -> members:Dgmc.Member.t -> bool
(** Would {!admit} succeed right now (ignoring [Already_admitted])? *)

val pp_rejection : Format.formatter -> rejection -> unit
