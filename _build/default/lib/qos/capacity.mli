(** Link capacities and bandwidth reservations.

    The paper's §2 argues that data-driven protocols (MOSPF) cannot
    negotiate quality of service before data flows, whereas D-GMC's
    proposal-before-data model can: a topology is computed, admitted
    against link capacities, and agreed network-wide before the first
    packet.  This module is the capacity substrate: a network whose
    links carry bandwidth budgets, with per-connection reservations. *)

type t

val create : Net.Graph.t -> default_capacity:float -> t
(** Wrap a graph; every live link starts with the given capacity.
    The graph is referenced, not copied: topology changes (link state)
    are visible; capacities are tracked here. *)

val graph : t -> Net.Graph.t

val set_capacity : t -> int -> int -> float -> unit
(** Override one link's capacity.  Raises [Not_found] for non-edges,
    [Invalid_argument] for negative capacity or when the link already
    has more reserved than the new capacity. *)

val capacity : t -> int -> int -> float
(** Total capacity of a link.  Raises [Not_found] for non-edges. *)

val reserved : t -> int -> int -> float
(** Bandwidth currently reserved on a link (0 for non-edges). *)

val residual : t -> int -> int -> float
(** [capacity - reserved]; 0 for down or absent links. *)

val reserve_tree : t -> key:int -> bandwidth:float -> Mctree.Tree.t -> unit
(** Reserve [bandwidth] on every link of the tree under the given
    reservation key.  All-or-nothing: raises [Failure] (reserving
    nothing) if any link lacks residual capacity, [Invalid_argument] if
    the key is already present (release first). *)

val release : t -> key:int -> unit
(** Release a reservation; no-op for unknown keys. *)

val reservation : t -> key:int -> (float * Mctree.Tree.t) option
(** The bandwidth and tree held under a key. *)

val constrained_image : t -> bandwidth:float -> Net.Graph.t
(** A copy of the graph containing only live links whose residual
    capacity is at least [bandwidth] — the image a constrained topology
    computation runs on. *)

val utilization : t -> float
(** Total reserved bandwidth divided by total capacity over live links
    (0 when capacity is 0). *)

val max_utilization : t -> float
(** The most loaded live link's reserved/capacity ratio. *)
