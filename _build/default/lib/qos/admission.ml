type rejection = No_feasible_tree | Already_admitted

type result = (Mctree.Tree.t, rejection) Stdlib.result

let compute_constrained cap ~kind ~bandwidth ~members =
  let image = Capacity.constrained_image cap ~bandwidth in
  (* Reuse the protocol's algorithm selection; the partition fallback of
     Compute.topology is unwanted here — a tree that fails to span the
     members is a rejection, not a best effort. *)
  let config = { Dgmc.Config.atm_lan with incremental = false } in
  match Dgmc.Member.ids members with
  | [] -> None
  | first :: _ ->
    let tree =
      Dgmc.Compute.topology config kind image members ~self:first ~current:None
    in
    let spans =
      Mctree.Tree.Int_set.elements (Mctree.Tree.terminals tree)
      = Dgmc.Member.ids members
      && Mctree.Tree.is_valid_mc_topology image tree
    in
    if spans then Some tree else None

let admit cap ~key ~kind ~bandwidth ~members =
  if Capacity.reservation cap ~key <> None then Error Already_admitted
  else
    match compute_constrained cap ~kind ~bandwidth ~members with
    | None -> Error No_feasible_tree
    | Some tree ->
      Capacity.reserve_tree cap ~key ~bandwidth tree;
      Ok tree

let release cap ~key = Capacity.release cap ~key

let readmit cap ~key ~kind ~bandwidth ~members =
  release cap ~key;
  admit cap ~key ~kind ~bandwidth ~members

let feasible cap ~kind ~bandwidth ~members =
  compute_constrained cap ~kind ~bandwidth ~members <> None

let pp_rejection ppf = function
  | No_feasible_tree ->
    Format.pp_print_string ppf "no tree with sufficient residual bandwidth"
  | Already_admitted -> Format.pp_print_string ppf "key already admitted"
