(** Single-source shortest paths over live links (Dijkstra's algorithm).

    Weights are the graph's link costs.  This powers the simulated
    unicast routing tables ({!Lsr.Unicast}) and every multicast tree
    algorithm in [Mctree]. *)

type result = {
  dist : float array;  (** [dist.(v)] is the cost from the source to [v];
                           [infinity] when unreachable. *)
  pred : int option array;
      (** [pred.(v)] is [v]'s predecessor on a shortest path from the
          source; [None] for the source itself and unreachable nodes. *)
}

val run : Graph.t -> int -> result
(** [run g src] computes shortest paths from [src] to all nodes.
    Deterministic: among equal-cost paths the one through the
    lowest-numbered relaxing edge encountered first is kept. *)

val distance : Graph.t -> int -> int -> float
(** Cost of a shortest path, [infinity] if unreachable. *)

val path : Graph.t -> src:int -> dst:int -> int list option
(** Node sequence of a shortest path from [src] to [dst], inclusive of
    both; [None] when unreachable. *)

val path_of_result : result -> src:int -> dst:int -> int list option
(** Extract a path from a precomputed {!result}. *)

val all_pairs : Graph.t -> float array array
(** [all_pairs g] is the full distance matrix ([n] Dijkstra runs). *)
