(** Network topology generators.

    The paper evaluates D-GMC on "randomly generated graphs" of up to 100
    switches.  We use Waxman graphs — the standard random-topology model
    of the 1990s multicast-routing literature (cf. the paper's Imase &
    Waxman reference) — as the default, plus Erdős–Rényi and a family of
    regular topologies for tests and examples.  All generators return
    connected graphs and draw exclusively from the supplied {!Sim.Rng.t},
    so a (generator, seed) pair fully determines the topology. *)

val waxman :
  Sim.Rng.t ->
  n:int ->
  ?alpha:float ->
  ?beta:float ->
  ?scale:float ->
  ?target_degree:float ->
  unit ->
  Graph.t
(** Waxman (1988) random graph: [n] points placed uniformly in the unit
    square; an edge joins [u] and [v] with probability
    [alpha * exp (-d(u,v) / (beta * l))] where [d] is Euclidean distance
    and [l] the maximum pairwise distance.  Edge weight is
    [scale * d(u,v)].  Components are then connected by their closest
    node pairs so the result is always connected.
    Defaults: [alpha = 0.25], [beta = 0.2], [scale = 10.0].

    In the plain model the mean degree grows with [n]; passing
    [target_degree] overrides [alpha] with the value that makes the
    {e expected} number of edges equal [n * target_degree / 2] for the
    drawn node placement, keeping graphs of different sizes comparable —
    which is what the paper's size sweeps need. *)

val clustered :
  Sim.Rng.t ->
  areas:int ->
  per_area:int ->
  ?inter_links:int ->
  ?target_degree:float ->
  ?inter_weight:float ->
  unit ->
  Graph.t * int list array
(** A two-level topology for hierarchical-routing experiments: [areas]
    Waxman clusters of [per_area] switches each, joined by
    [inter_links] (default 2) long links between every pair of adjacent
    areas on a ring of areas — dense inside, sparse between, like an
    internetwork of domains.  Node ids are contiguous per area
    ([area k] owns [k*per_area .. (k+1)*per_area - 1]); the returned
    array lists each area's switches.  [inter_weight] (default [20.0])
    is the inter-area link cost. *)

val erdos_renyi :
  Sim.Rng.t -> n:int -> ?p:float -> ?min_weight:float -> ?max_weight:float -> unit -> Graph.t
(** G(n, p) with uniform random weights in [[min_weight, max_weight]],
    made connected the same way.  Defaults: [p = 3.0 /. float n] (mean
    degree ≈ 3), weights in [[1, 10]]. *)

val ring : ?weight:float -> int -> Graph.t
(** Cycle on [n >= 3] nodes; every edge has the given weight
    (default [1.0]). *)

val line : ?weight:float -> int -> Graph.t
(** Path graph on [n >= 2] nodes. *)

val star : ?weight:float -> int -> Graph.t
(** Node 0 joined to all others; [n >= 2]. *)

val grid : ?weight:float -> rows:int -> cols:int -> unit -> Graph.t
(** [rows × cols] mesh; node ids are [row * cols + col]. *)

val complete : ?weight:float -> int -> Graph.t
(** Complete graph on [n >= 2] nodes. *)

val binary_tree : ?weight:float -> int -> Graph.t
(** Complete binary tree shape on [n >= 1] nodes (node [i]'s children are
    [2i+1], [2i+2]). *)
