let connect_components g positions weight_of =
  (* Repeatedly join the two closest nodes lying in different components.
     [positions] gives coordinates when available (geometric generators);
     otherwise the node pair with the smallest weight_of value is used. *)
  let rec join () =
    match Bfs.components g with
    | [] | [ _ ] -> ()
    | comps ->
      let best = ref None in
      let consider u v =
        let w = weight_of u v in
        match !best with
        | Some (_, _, w') when w' <= w -> ()
        | _ -> best := Some (u, v, w)
      in
      let rec pairs = function
        | [] -> ()
        | comp :: rest ->
          List.iter
            (fun u ->
              List.iter (fun comp' -> List.iter (fun v -> consider u v) comp') rest)
            comp;
          pairs rest
      in
      pairs comps;
      (match !best with
      | Some (u, v, w) -> Graph.add_edge g u v ~weight:w
      | None -> assert false);
      join ()
  in
  ignore positions;
  join ()

let waxman rng ~n ?(alpha = 0.25) ?(beta = 0.2) ?(scale = 10.0) ?target_degree () =
  if n < 1 then invalid_arg "Topo_gen.waxman: n must be positive";
  let pos = Array.init n (fun _ ->
      let x = Sim.Rng.float rng 1.0 in
      let y = Sim.Rng.float rng 1.0 in
      (x, y))
  in
  let dist u v =
    let xu, yu = pos.(u) and xv, yv = pos.(v) in
    sqrt (((xu -. xv) ** 2.0) +. ((yu -. yv) ** 2.0))
  in
  let l = ref 0.0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if dist u v > !l then l := dist u v
    done
  done;
  let l = if !l = 0.0 then 1.0 else !l in
  let alpha =
    match target_degree with
    | None -> alpha
    | Some degree ->
      (* Solve  Σ_pairs α·exp(-d/βl) = n·degree/2  for α. *)
      let sum = ref 0.0 in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          sum := !sum +. exp (-.dist u v /. (beta *. l))
        done
      done;
      if !sum <= 0.0 then alpha
      else Float.min 1.0 (float_of_int n *. degree /. (2.0 *. !sum))
  in
  let g = Graph.create n in
  (* Weights are distances scaled away from zero: two coincident points
     would otherwise produce a zero-weight edge, which Graph rejects. *)
  let weight_of u v = Float.max 1e-6 (scale *. dist u v) in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let p = alpha *. exp (-.dist u v /. (beta *. l)) in
      if Sim.Rng.float rng 1.0 < p then Graph.add_edge g u v ~weight:(weight_of u v)
    done
  done;
  connect_components g (Some pos) weight_of;
  g

let clustered rng ~areas ~per_area ?(inter_links = 2) ?(target_degree = 3.5)
    ?(inter_weight = 20.0) () =
  if areas < 2 then invalid_arg "Topo_gen.clustered: need at least 2 areas";
  if per_area < 2 then invalid_arg "Topo_gen.clustered: need at least 2 per area";
  if inter_links < 1 then invalid_arg "Topo_gen.clustered: need inter links";
  if inter_weight <= 0.0 then invalid_arg "Topo_gen.clustered: bad inter weight";
  let n = areas * per_area in
  let g = Graph.create n in
  let partition =
    Array.init areas (fun a -> List.init per_area (fun i -> (a * per_area) + i))
  in
  (* Dense Waxman cluster inside each area, ids offset per area. *)
  Array.iteri
    (fun a members ->
      let sub = waxman rng ~n:per_area ~target_degree () in
      let base = a * per_area in
      List.iter
        (fun (e : Graph.edge) -> Graph.add_edge g (base + e.u) (base + e.v) ~weight:e.weight)
        (Graph.edges sub);
      ignore members)
    partition;
  (* Sparse long links between consecutive areas on a ring. *)
  for a = 0 to areas - 1 do
    let b = (a + 1) mod areas in
    let picked = ref [] in
    let attempts = ref 0 in
    while List.length !picked < inter_links && !attempts < 100 do
      incr attempts;
      let u = (a * per_area) + Sim.Rng.int rng per_area in
      let v = (b * per_area) + Sim.Rng.int rng per_area in
      if (not (Graph.has_edge g u v)) && not (List.mem (u, v) !picked) then begin
        picked := (u, v) :: !picked;
        Graph.add_edge g u v ~weight:inter_weight
      end
    done
  done;
  (g, partition)

let erdos_renyi rng ~n ?p ?(min_weight = 1.0) ?(max_weight = 10.0) () =
  if n < 1 then invalid_arg "Topo_gen.erdos_renyi: n must be positive";
  if min_weight <= 0.0 || max_weight < min_weight then
    invalid_arg "Topo_gen.erdos_renyi: bad weight range";
  let p = match p with Some p -> p | None -> 3.0 /. float_of_int n in
  let g = Graph.create n in
  let draw_weight () =
    if max_weight = min_weight then min_weight
    else min_weight +. Sim.Rng.float rng (max_weight -. min_weight)
  in
  (* Pre-drawn weights keep the rng stream identical whether or not an edge
     appears, and provide weights for the connecting step. *)
  let weight_of u v = ignore u; ignore v; draw_weight () in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Sim.Rng.float rng 1.0 < p then Graph.add_edge g u v ~weight:(draw_weight ())
    done
  done;
  connect_components g None weight_of;
  g

let check_weight w = if w <= 0.0 then invalid_arg "Topo_gen: weight must be positive"

let ring ?(weight = 1.0) n =
  check_weight weight;
  if n < 3 then invalid_arg "Topo_gen.ring: need at least 3 nodes";
  let g = Graph.create n in
  for i = 0 to n - 1 do
    Graph.add_edge g i ((i + 1) mod n) ~weight
  done;
  g

let line ?(weight = 1.0) n =
  check_weight weight;
  if n < 2 then invalid_arg "Topo_gen.line: need at least 2 nodes";
  let g = Graph.create n in
  for i = 0 to n - 2 do
    Graph.add_edge g i (i + 1) ~weight
  done;
  g

let star ?(weight = 1.0) n =
  check_weight weight;
  if n < 2 then invalid_arg "Topo_gen.star: need at least 2 nodes";
  let g = Graph.create n in
  for i = 1 to n - 1 do
    Graph.add_edge g 0 i ~weight
  done;
  g

let grid ?(weight = 1.0) ~rows ~cols () =
  check_weight weight;
  if rows < 1 || cols < 1 then invalid_arg "Topo_gen.grid: empty grid";
  let g = Graph.create (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let id = (r * cols) + c in
      if c + 1 < cols then Graph.add_edge g id (id + 1) ~weight;
      if r + 1 < rows then Graph.add_edge g id (id + cols) ~weight
    done
  done;
  g

let complete ?(weight = 1.0) n =
  check_weight weight;
  if n < 2 then invalid_arg "Topo_gen.complete: need at least 2 nodes";
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Graph.add_edge g u v ~weight
    done
  done;
  g

let binary_tree ?(weight = 1.0) n =
  check_weight weight;
  if n < 1 then invalid_arg "Topo_gen.binary_tree: need at least 1 node";
  let g = Graph.create n in
  for i = 0 to n - 1 do
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    if left < n then Graph.add_edge g i left ~weight;
    if right < n then Graph.add_edge g i right ~weight
  done;
  g
