type t = int list

let rec edges = function
  | [] | [ _ ] -> []
  | u :: (v :: _ as rest) -> (u, v) :: edges rest

let is_valid g = function
  | [] -> false
  | path -> List.for_all (fun (u, v) -> Graph.link_is_up g u v) (edges path)

let cost g path =
  List.fold_left (fun acc (u, v) -> acc +. Graph.weight g u v) 0.0 (edges path)

let hops path = max 0 (List.length path - 1)

let mem_edge path u v =
  List.exists (fun (a, b) -> (a = u && b = v) || (a = v && b = u)) (edges path)

let pp ppf path =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
       Format.pp_print_int)
    path
