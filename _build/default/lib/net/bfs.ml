let hops g src =
  let n = Graph.n_nodes g in
  let dist = Array.make n max_int in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun (v, _) ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      (Graph.neighbors g u)
  done;
  dist

let reachable g src = Array.map (fun d -> d <> max_int) (hops g src)

let is_connected g =
  let n = Graph.n_nodes g in
  n <= 1 || Array.for_all (fun r -> r) (reachable g 0)

let components g =
  let n = Graph.n_nodes g in
  let seen = Array.make n false in
  let comps = ref [] in
  for src = 0 to n - 1 do
    if not seen.(src) then begin
      let members = ref [] in
      let r = reachable g src in
      for v = 0 to n - 1 do
        if r.(v) then begin
          seen.(v) <- true;
          members := v :: !members
        end
      done;
      comps := List.rev !members :: !comps
    end
  done;
  List.rev !comps

let eccentricity g src =
  Array.fold_left
    (fun acc d -> if d <> max_int && d > acc then d else acc)
    0 (hops g src)

let hop_diameter g =
  let n = Graph.n_nodes g in
  let best = ref 0 in
  for src = 0 to n - 1 do
    let e = eccentricity g src in
    if e > !best then best := e
  done;
  !best
