(** Node-sequence paths and their validity/cost against a graph. *)

type t = int list
(** A path as the list of visited nodes, e.g. [[3; 1; 4]] for
    3 → 1 → 4.  A single node is a valid (empty) path. *)

val is_valid : Graph.t -> t -> bool
(** Every consecutive pair is joined by a live link, and the path is
    non-empty. *)

val cost : Graph.t -> t -> float
(** Sum of link weights along the path.  Raises [Not_found] if some hop
    has no edge (up or down). *)

val hops : t -> int
(** Number of links traversed. *)

val edges : t -> (int * int) list
(** Consecutive pairs, in path order. *)

val mem_edge : t -> int -> int -> bool
(** [true] iff the (undirected) edge appears in the path. *)

val pp : Format.formatter -> t -> unit
