(** Disjoint-set forest with union by rank and path compression.
    Used by Kruskal's algorithm and connectivity checks. *)

type t

val create : int -> t
(** [create n] is [n] singleton sets [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> bool
(** Merge the two sets.  Returns [false] if they were already one set. *)

val same : t -> int -> int -> bool

val n_sets : t -> int
(** Number of disjoint sets remaining. *)
