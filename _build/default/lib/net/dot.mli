(** Graphviz (DOT) export of network graphs, optionally highlighting an
    embedded structure such as an MC topology.

    [dune exec bin/dgmc_sim.exe -- topo --dot | dot -Tsvg] renders a
    generated topology; tests and examples use it to produce inspectable
    artifacts. *)

val graph :
  ?highlight:(int * int) list ->
  ?mark:int list ->
  ?name:string ->
  Graph.t ->
  string
(** [graph g] is a DOT [graph] document with one node per switch and one
    edge per link (down links dashed, weights as labels).  [highlight]
    edges are drawn bold (undirected match); [mark] nodes are drawn
    filled — pass an MC's tree edges and member switches to visualise a
    connection. *)
