(** Breadth-first search over live links: hop counts and connectivity.

    Hop distances determine flooding propagation times (each LSA hop costs
    one per-hop delay), as opposed to {!Dijkstra} weights which determine
    unicast routes. *)

val hops : Graph.t -> int -> int array
(** [hops g src] gives the hop distance from [src] to every node over live
    links; unreachable nodes get [max_int]. *)

val reachable : Graph.t -> int -> bool array
(** Nodes reachable from the source over live links. *)

val is_connected : Graph.t -> bool
(** [true] iff every node is reachable from node 0 (vacuously true for
    graphs with fewer than two nodes). *)

val components : Graph.t -> int list list
(** Connected components over live links, each sorted ascending; the list
    of components is sorted by smallest member. *)

val eccentricity : Graph.t -> int -> int
(** Greatest hop distance from the node to any reachable node. *)

val hop_diameter : Graph.t -> int
(** Greatest hop distance between any two mutually reachable nodes; [0]
    for graphs with fewer than two nodes. *)
