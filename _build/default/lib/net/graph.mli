(** Undirected weighted network graph with link up/down state.

    Nodes are switch identifiers [0 .. n_nodes - 1].  Edge weights model
    the link cost used by routing (e.g. propagation delay); they are
    strictly positive.  Links can be taken down and brought back up
    without losing their weight, which models link failures as seen by a
    link-state routing protocol. *)

type t

type edge = { u : int; v : int; weight : float }
(** An undirected edge; [u < v] in all values returned by this module. *)

val create : int -> t
(** [create n] is an edgeless graph on nodes [0 .. n-1]. *)

val of_edges : int -> (int * int * float) list -> t
(** [of_edges n edges] builds a graph; raises [Invalid_argument] on
    duplicate edges, self-loops, out-of-range nodes or non-positive
    weights. *)

val copy : t -> t
(** Independent deep copy (mutations do not propagate). *)

val n_nodes : t -> int

val add_edge : t -> int -> int -> weight:float -> unit
(** Adds an (up) edge.  Raises [Invalid_argument] if the edge exists,
    [u = v], a node is out of range, or [weight <= 0]. *)

val has_edge : t -> int -> int -> bool
(** [true] iff the edge exists, up {e or} down. *)

val weight : t -> int -> int -> float
(** Weight of an existing edge (up or down).  Raises [Not_found]. *)

val link_is_up : t -> int -> int -> bool
(** [true] iff the edge exists and is up. *)

val set_link : t -> int -> int -> up:bool -> unit
(** Change the operational state of an existing edge.
    Raises [Not_found] if the edge does not exist. *)

val neighbors : t -> int -> (int * float) list
(** Live neighbours of a node with the connecting link's weight, in
    ascending node order. *)

val degree : t -> int -> int
(** Number of live incident links. *)

val edges : t -> edge list
(** All live edges, each reported once with [u < v]. *)

val all_edges : t -> (edge * bool) list
(** All edges with their up/down state. *)

val n_edges : t -> int
(** Number of live edges. *)

val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over live edges. *)

val total_weight : t -> float
(** Sum of live edge weights. *)

val equal : t -> t -> bool
(** Same node count, same edges with equal weights and states. *)

val pp : Format.formatter -> t -> unit
