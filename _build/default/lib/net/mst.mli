(** Minimum spanning tree / forest over live links (Kruskal).

    The KMB Steiner heuristic builds an MST of the complete distance graph
    over the connection members; topology generators also use MSTs to make
    random graphs connected. *)

val kruskal : Graph.t -> Graph.edge list
(** Edges of a minimum spanning forest (a tree when the graph is
    connected).  Deterministic: ties are broken by edge endpoints. *)

val cost : Graph.edge list -> float
(** Sum of edge weights. *)

val spans : Graph.t -> Graph.edge list -> bool
(** [true] iff the edges connect every node of the graph. *)

val mst_of_matrix : float array array -> (int * int * float) list
(** Kruskal over a symmetric distance matrix (a complete graph given
    implicitly); entries of [infinity] denote absent edges.  Used on the
    metric-closure step of the KMB heuristic. *)
