lib/net/topo_gen.ml: Array Bfs Float Graph List Sim
