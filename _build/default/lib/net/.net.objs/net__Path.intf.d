lib/net/path.mli: Format Graph
