lib/net/graph.mli: Format
