lib/net/graph.ml: Array Float Format Hashtbl List Printf
