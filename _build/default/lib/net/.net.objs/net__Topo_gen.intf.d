lib/net/topo_gen.mli: Graph Sim
