lib/net/bfs.ml: Array Graph List Queue
