lib/net/path.ml: Format Graph List
