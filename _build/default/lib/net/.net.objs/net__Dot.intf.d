lib/net/dot.mli: Graph
