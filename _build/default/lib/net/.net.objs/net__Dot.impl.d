lib/net/dot.ml: Buffer Graph List Printf String
