lib/net/bfs.mli: Graph
