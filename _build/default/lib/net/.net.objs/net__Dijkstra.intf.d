lib/net/dijkstra.mli: Graph
