lib/net/dijkstra.ml: Array Float Graph List Sim
