lib/net/mst.ml: Array Float Graph List Union_find
