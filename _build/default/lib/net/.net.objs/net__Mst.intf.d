lib/net/mst.mli: Graph
