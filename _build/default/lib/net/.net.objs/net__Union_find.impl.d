lib/net/union_find.ml: Array
