lib/net/union_find.mli:
