type mode = Hop_by_hop | Ideal

type 'a t = {
  engine : Sim.Engine.t;
  graph : Net.Graph.t;
  t_hop : float;
  mode : mode;
  deliver : switch:int -> 'a Lsa.t -> unit;
  seen : (int * int, unit) Hashtbl.t array;
      (** Per switch: (origin, seq) pairs already received. *)
  mutable floods : int;
  mutable messages : int;
}

let create ~engine ~graph ~t_hop ?(mode = Hop_by_hop) ~deliver () =
  if t_hop <= 0.0 then invalid_arg "Flooding.create: t_hop must be positive";
  {
    engine;
    graph;
    t_hop;
    mode;
    deliver;
    seen = Array.init (Net.Graph.n_nodes graph) (fun _ -> Hashtbl.create 64);
    floods = 0;
    messages = 0;
  }

let rec receive t lsa ~at:switch ~from =
  let key = Lsa.id lsa in
  if not (Hashtbl.mem t.seen.(switch) key) then begin
    Hashtbl.replace t.seen.(switch) key ();
    t.deliver ~switch lsa;
    (* Forward on every live link except the arrival link.  Link state is
       re-checked at arrival time, so an LSA in flight over a link that
       fails is lost, as on a real wire. *)
    List.iter
      (fun (next, _) ->
        if next <> from then begin
          t.messages <- t.messages + 1;
          ignore
            (Sim.Engine.schedule t.engine ~delay:t.t_hop (fun () ->
                 if Net.Graph.link_is_up t.graph switch next then
                   receive t lsa ~at:next ~from:switch))
        end)
      (Net.Graph.neighbors t.graph switch)
  end

let flood t lsa =
  t.floods <- t.floods + 1;
  let origin = lsa.Lsa.origin in
  match t.mode with
  | Hop_by_hop ->
    Hashtbl.replace t.seen.(origin) (Lsa.id lsa) ();
    List.iter
      (fun (next, _) ->
        t.messages <- t.messages + 1;
        ignore
          (Sim.Engine.schedule t.engine ~delay:t.t_hop (fun () ->
               if Net.Graph.link_is_up t.graph origin next then
                 receive t lsa ~at:next ~from:origin)))
      (Net.Graph.neighbors t.graph origin)
  | Ideal ->
    let hops = Net.Bfs.hops t.graph origin in
    Array.iteri
      (fun switch h ->
        if switch <> origin && h <> max_int then begin
          t.messages <- t.messages + 1;
          ignore
            (Sim.Engine.schedule t.engine
               ~delay:(float_of_int h *. t.t_hop)
               (fun () -> t.deliver ~switch lsa))
        end)
      hops

let floods_started t = t.floods

let messages_sent t = t.messages

let reset_counters t =
  t.floods <- 0;
  t.messages <- 0

let flood_diameter ~graph ~t_hop =
  float_of_int (Net.Bfs.hop_diameter graph) *. t_hop
