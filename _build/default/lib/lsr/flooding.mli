(** Reliable flooding of LSAs over the network.

    The default mode propagates hop by hop: each switch, on first receipt
    of an (origin, seq) pair, delivers the LSA locally and forwards it on
    every live incident link except the arrival link, each hop taking
    [t_hop] of simulated time.  This is classic LSR flooding; an LSA
    reaches a switch after (hop distance × [t_hop]), and a partitioned
    switch does not receive it at all.

    [Ideal] mode schedules deliveries directly at hop-distance times,
    computed when the flood starts — faster to simulate and identical in
    delivery times on a static graph; it differs only under mid-flood
    topology changes.

    The instance also keeps the two signaling-overhead counters the
    paper's evaluation reports: flooding operations and per-link message
    transmissions. *)

type mode = Hop_by_hop | Ideal

type 'a t

val create :
  engine:Sim.Engine.t ->
  graph:Net.Graph.t ->
  t_hop:float ->
  ?mode:mode ->
  deliver:(switch:int -> 'a Lsa.t -> unit) ->
  unit ->
  'a t
(** [deliver] is invoked once per switch (except the origin) per flooded
    LSA, at the simulated arrival time.  [t_hop] must be positive. *)

val flood : 'a t -> 'a Lsa.t -> unit
(** Start flooding from the LSA's origin at the current simulated time.
    The origin is {e not} delivered its own LSA. *)

val floods_started : 'a t -> int
(** Number of {!flood} calls. *)

val messages_sent : 'a t -> int
(** Total link transmissions (hop-by-hop mode) or deliveries (ideal
    mode). *)

val reset_counters : 'a t -> unit

val flood_diameter : graph:Net.Graph.t -> t_hop:float -> float
(** Worst-case time for a flood to reach every switch: hop diameter of
    the graph times [t_hop].  This is the paper's [Tf]. *)
