type 'a t = { origin : int; seq : int; payload : 'a }

let make ~origin ~seq payload = { origin; seq; payload }

let id t = (t.origin, t.seq)

let map f t = { origin = t.origin; seq = t.seq; payload = f t.payload }

let pp pp_payload ppf t =
  Format.fprintf ppf "@[<h>lsa(origin=%d, seq=%d, %a)@]" t.origin t.seq
    pp_payload t.payload

module Seq = struct
  type counter = { mutable next_value : int }

  let create () = { next_value = 0 }

  let next c =
    let v = c.next_value in
    c.next_value <- v + 1;
    v
end
