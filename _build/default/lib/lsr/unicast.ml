type t = { results : Net.Dijkstra.result array }

let compute g =
  { results = Array.init (Net.Graph.n_nodes g) (fun src -> Net.Dijkstra.run g src) }

let distance t ~src ~dst = t.results.(src).dist.(dst)

let route t ~src ~dst = Net.Dijkstra.path_of_result t.results.(src) ~src ~dst

let next_hop t ~src ~dst =
  if src = dst then None
  else
    match route t ~src ~dst with
    | Some (_ :: hop :: _) -> Some hop
    | Some _ | None -> None
