lib/lsr/lsa.mli: Format
