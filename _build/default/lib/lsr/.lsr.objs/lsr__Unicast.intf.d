lib/lsr/unicast.mli: Net
