lib/lsr/flooding.ml: Array Hashtbl List Lsa Net Sim
