lib/lsr/lsa.ml: Format
