lib/lsr/lsdb.ml: Format Net
