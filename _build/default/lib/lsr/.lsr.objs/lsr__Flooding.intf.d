lib/lsr/flooding.mli: Lsa Net Sim
