lib/lsr/unicast.ml: Array Net
