lib/lsr/lsdb.mli: Format Net
