(** Unicast routing tables computed from a link-state image.

    This is the OSPF-style forwarding state the MC protocols lean on:
    MOSPF routes datagrams toward groups, CBT forwards join requests
    hop-by-hop toward the core, and receiver-only delivery unicasts to a
    contact node.  Tables are plain shortest-path next-hops. *)

type t

val compute : Net.Graph.t -> t
(** Routing tables for every source at once (n Dijkstra runs). *)

val next_hop : t -> src:int -> dst:int -> int option
(** First hop on a shortest path from [src] to [dst]; [None] when
    unreachable or [src = dst]. *)

val route : t -> src:int -> dst:int -> int list option
(** Full node path [src; ...; dst] obtained by chaining next hops. *)

val distance : t -> src:int -> dst:int -> float
(** Shortest-path cost; [infinity] when unreachable. *)
