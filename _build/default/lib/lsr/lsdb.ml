type link_event = { u : int; v : int; up : bool }

type t = { image : Net.Graph.t }

let create g = { image = Net.Graph.copy g }

let graph t = t.image

let apply t { u; v; up } =
  if Net.Graph.has_edge t.image u v then Net.Graph.set_link t.image u v ~up

let pp_link_event ppf { u; v; up } =
  Format.fprintf ppf "link(%d, %d) %s" u v (if up then "up" else "down")
