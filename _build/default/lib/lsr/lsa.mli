(** Link-state advertisement envelopes.

    An LSA is identified by its originating switch and a per-origin
    sequence number; flooding uses the pair for duplicate suppression,
    exactly as OSPF does.  The payload is left polymorphic: the unicast
    substrate floods link events, while the D-GMC layer floods MC LSAs
    (paper §3.1) — both reuse this envelope and the same flooding
    machinery. *)

type 'a t = { origin : int; seq : int; payload : 'a }

val make : origin:int -> seq:int -> 'a -> 'a t

val id : 'a t -> int * int
(** The (origin, seq) identity used for duplicate suppression. *)

val map : ('a -> 'b) -> 'a t -> 'b t

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit

(** Per-switch sequence-number allocator. *)
module Seq : sig
  type counter

  val create : unit -> counter

  val next : counter -> int
  (** Strictly increasing from 0. *)
end
