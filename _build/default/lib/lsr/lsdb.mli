(** Per-switch link-state database: the switch's local image of the
    network.

    Under link-state routing every switch maintains a complete picture of
    the topology, learned from flooded link-event LSAs (paper §1).  A
    switch's D-GMC topology computations run against {e its own} image —
    which may briefly lag reality while link events propagate — so each
    simulated switch owns an independent copy of the graph. *)

type link_event = { u : int; v : int; up : bool }
(** Payload of a non-MC LSA: the operational state change of one link
    (the paper's event description [D]). *)

type t

val create : Net.Graph.t -> t
(** [create g] — local image initialised to a deep copy of [g] (switches
    boot with a converged unicast database). *)

val graph : t -> Net.Graph.t
(** The switch's current image.  Callers must not mutate it. *)

val apply : t -> link_event -> unit
(** Update the image.  Unknown links are ignored (robustness against
    reordered information about links this image never had). *)

val pp_link_event : Format.formatter -> link_event -> unit
