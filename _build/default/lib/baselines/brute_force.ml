module Mc_table = Hashtbl.Make (struct
  type t = Dgmc.Mc_id.t

  let equal = Dgmc.Mc_id.equal

  let hash = Dgmc.Mc_id.hash
end)

type membership_lsa = {
  src : int;
  mc : Dgmc.Mc_id.t;
  change : [ `Join of Dgmc.Member.role | `Leave ];
}

type mc_state = {
  mutable members : Dgmc.Member.t;
  mutable topology : Mctree.Tree.t;
}

type totals = {
  events : int;
  computations : int;
  floodings : int;
  messages : int;
}

type t = {
  engine : Sim.Engine.t;
  graph : Net.Graph.t;
  config : Dgmc.Config.t;
  flooding : membership_lsa Lsr.Flooding.t;
  seqs : Lsr.Lsa.Seq.counter array;
  states : mc_state Mc_table.t array;  (** Per switch. *)
  mutable events : int;
  mutable computations : int;
}

let state_of t switch mc =
  match Mc_table.find_opt t.states.(switch) mc with
  | Some st -> st
  | None ->
    let st = { members = Dgmc.Member.empty; topology = Mctree.Tree.empty } in
    Mc_table.replace t.states.(switch) mc st;
    st

(* Every switch recomputes from scratch on every membership LSA: this is
   precisely the redundancy D-GMC removes, so no incremental shortcuts
   here. *)
let recompute t switch mc (st : mc_state) =
  ignore
    (Sim.Engine.schedule t.engine ~delay:t.config.Dgmc.Config.tc (fun () ->
         t.computations <- t.computations + 1;
         st.topology <-
           Dgmc.Compute.topology
             { t.config with Dgmc.Config.incremental = false }
             mc.Dgmc.Mc_id.kind t.graph st.members ~self:switch ~current:None))

let apply_change st change src =
  match change with
  | `Join role -> st.members <- Dgmc.Member.join st.members src role
  | `Leave -> st.members <- Dgmc.Member.leave st.members src

let create ~graph ~config ?(trace = Sim.Trace.disabled) () =
  ignore trace;
  let n = Net.Graph.n_nodes graph in
  if n < 2 then invalid_arg "Brute_force.create: need at least 2 switches";
  let engine = Sim.Engine.create () in
  let states = Array.init n (fun _ -> Mc_table.create 4) in
  let holder = ref None in
  let deliver ~switch (lsa : membership_lsa Lsr.Lsa.t) =
    match !holder with
    | None -> assert false
    | Some t ->
      let { src; mc; change } = lsa.payload in
      let st = state_of t switch mc in
      apply_change st change src;
      recompute t switch mc st
  in
  let flooding =
    Lsr.Flooding.create ~engine ~graph ~t_hop:config.Dgmc.Config.t_hop
      ~mode:config.Dgmc.Config.flood_mode ~deliver ()
  in
  let t =
    {
      engine;
      graph;
      config;
      flooding;
      seqs = Array.init n (fun _ -> Lsr.Lsa.Seq.create ());
      states;
      events = 0;
      computations = 0;
    }
  in
  holder := Some t;
  t

let engine t = t.engine

let local_event t ~switch mc change =
  t.events <- t.events + 1;
  let st = state_of t switch mc in
  apply_change st change switch;
  recompute t switch mc st;
  let seq = Lsr.Lsa.Seq.next t.seqs.(switch) in
  Lsr.Flooding.flood t.flooding
    (Lsr.Lsa.make ~origin:switch ~seq { src = switch; mc; change })

let join t ~switch mc role = local_event t ~switch mc (`Join role)

let leave t ~switch mc = local_event t ~switch mc `Leave

let schedule_join t ~at ~switch mc role =
  ignore (Sim.Engine.schedule_at t.engine ~time:at (fun () -> join t ~switch mc role))

let schedule_leave t ~at ~switch mc =
  ignore (Sim.Engine.schedule_at t.engine ~time:at (fun () -> leave t ~switch mc))

let run ?until ?max_events t = Sim.Engine.run ?until ?max_events t.engine

let totals t =
  {
    events = t.events;
    computations = t.computations;
    floodings = Lsr.Flooding.floods_started t.flooding;
    messages = Lsr.Flooding.messages_sent t.flooding;
  }

let reset_counters t =
  t.events <- 0;
  t.computations <- 0;
  Lsr.Flooding.reset_counters t.flooding

let topology t ~switch mc =
  Option.map (fun st -> st.topology) (Mc_table.find_opt t.states.(switch) mc)

let converged t mc =
  let reference = ref None in
  Array.for_all
    (fun table ->
      match Mc_table.find_opt table mc with
      | None -> true
      | Some st -> (
        match !reference with
        | None ->
          reference := Some st;
          true
        | Some r ->
          Dgmc.Member.equal r.members st.members
          && Mctree.Tree.equal r.topology st.topology))
    t.states
