(** Core placement strategies for CBT (paper §5).

    "The selection of the core switch presents another problem: a good
    choice depends on the locations of connection members … selection of
    a good core node may be impossible."  These strategies let the
    benchmarks quantify exactly how much core placement matters — the
    oracle strategies peek at the full topology (which a real CBT
    deployment cannot), the blind ones do not. *)

val first_member : int list -> int
(** The smallest member id — the blind choice CBT realistically makes.
    Raises [Invalid_argument] on an empty member list. *)

val random : Sim.Rng.t -> Net.Graph.t -> int
(** Any switch, members ignored. *)

val center : Net.Graph.t -> members:int list -> int
(** Oracle: the switch minimising the maximum shortest-path distance to
    the members (graph 1-center restricted to the member set). *)

val median : Net.Graph.t -> members:int list -> int
(** Oracle: the switch minimising the {e sum} of shortest-path distances
    to the members. *)
