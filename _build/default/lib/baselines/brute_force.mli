(** The brute-force LSR-based MC protocol (paper §2).

    The naive way to extend link-state routing to multipoint
    connections: membership changes are flooded in LSAs and {e every}
    switch, upon receiving one, recomputes the MC topology against its
    local database.  The protocol is trivially correct and as general as
    D-GMC, but "in a network with n switches, a single event could
    trigger n redundant computations for every existing MC" — the
    overhead D-GMC is designed to eliminate.  This implementation exists
    to reproduce that comparison.

    The same simulation engine, flooding substrate and topology
    algorithms as D-GMC are used, so the counters are directly
    comparable. *)

type t

val create :
  graph:Net.Graph.t -> config:Dgmc.Config.t -> ?trace:Sim.Trace.t -> unit -> t

val engine : t -> Sim.Engine.t

(** {1 Events} *)

val join : t -> switch:int -> Dgmc.Mc_id.t -> Dgmc.Member.role -> unit

val leave : t -> switch:int -> Dgmc.Mc_id.t -> unit

val schedule_join :
  t -> at:float -> switch:int -> Dgmc.Mc_id.t -> Dgmc.Member.role -> unit

val schedule_leave : t -> at:float -> switch:int -> Dgmc.Mc_id.t -> unit

val run : ?until:float -> ?max_events:int -> t -> unit

(** {1 Measurements (same meanings as {!Dgmc.Protocol.totals})} *)

type totals = {
  events : int;
  computations : int;
  floodings : int;
  messages : int;
}

val totals : t -> totals

val reset_counters : t -> unit

val converged : t -> Dgmc.Mc_id.t -> bool
(** All switches agree on members and topology for the MC. *)

val topology : t -> switch:int -> Dgmc.Mc_id.t -> Mctree.Tree.t option
