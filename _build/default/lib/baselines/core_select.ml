let first_member = function
  | [] -> invalid_arg "Core_select.first_member: no members"
  | members -> List.fold_left min max_int members

let random rng graph = Sim.Rng.int rng (Net.Graph.n_nodes graph)

let by_objective graph ~members score =
  if members = [] then invalid_arg "Core_select: no members";
  let best = ref None in
  for candidate = 0 to Net.Graph.n_nodes graph - 1 do
    let dist = (Net.Dijkstra.run graph candidate).dist in
    let s = score dist in
    match !best with
    | Some (_, s') when s' <= s -> ()
    | _ -> if Float.is_finite s then best := Some (candidate, s)
  done;
  match !best with
  | Some (c, _) -> c
  | None -> invalid_arg "Core_select: members unreachable"

let center graph ~members =
  by_objective graph ~members (fun dist ->
      List.fold_left (fun acc m -> Float.max acc dist.(m)) 0.0 members)

let median graph ~members =
  by_objective graph ~members (fun dist ->
      List.fold_left (fun acc m -> acc +. dist.(m)) 0.0 members)
