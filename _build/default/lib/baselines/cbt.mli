(** Core-based trees (Ballardie; paper §2 and §5).

    CBT builds one shared, receiver-only tree per group, anchored at a
    distinguished {e core} switch.  A joining switch sends a join
    request hop-by-hop along the unicast route toward the core; the
    request stops at the first on-tree switch and the traversed path is
    grafted.  Leaving prunes the branch back to the nearest fork, member
    or core.  There is no flooding and no topology computation — only
    unicast forwarding state — which is CBT's advantage; its documented
    drawbacks, reproduced by this model and measured in the benchmarks,
    are {e traffic concentration} around the core and the {e core
    placement} problem (a good core needs topology knowledge that
    networks do not reveal).

    Senders (members or not) deliver packets by unicasting toward the
    core until the packet hits the tree, then flooding over the tree —
    the paper's two-stage receiver-only delivery with the contact
    restricted to the core-ward path. *)

type t

val create : graph:Net.Graph.t -> core:int -> unit -> t
(** A fresh group anchored at [core].  The core is on the tree from the
    start (RFC-style primary core). *)

val core : t -> int

val tree : t -> Mctree.Tree.t
(** Current shared tree; terminals are the member switches (plus the
    core, which anchors the tree even when memberless). *)

val members : t -> int list

val is_member : t -> int -> bool

val join : t -> int -> unit
(** Graft the switch; no-op when already a member.  Counts one control
    message per hop of the join request (and its ack back). *)

val leave : t -> int -> unit
(** Prune; no-op when not a member. *)

val control_messages : t -> int
(** Join/prune messages sent so far (hop-granular). *)

val deliver : t -> src:int -> Mctree.Delivery.report
(** Send one data packet from [src]: unicast toward the core to the
    first on-tree switch, then along the tree. *)

val handle_link_down : t -> int -> int -> unit
(** React to a link failure: downstream members whose path to the core
    died re-join through live routes (the flush-and-rejoin recovery of
    CBT).  Counts the control messages this costs. *)
