lib/baselines/brute_force.mli: Dgmc Mctree Net Sim
