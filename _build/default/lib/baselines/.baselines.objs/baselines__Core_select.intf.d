lib/baselines/core_select.mli: Net Sim
