lib/baselines/cbt.mli: Mctree Net
