lib/baselines/core_select.ml: Array Float List Net Sim
