lib/baselines/cbt.ml: Int List Mctree Net Set
