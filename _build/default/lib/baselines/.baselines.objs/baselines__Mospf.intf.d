lib/baselines/mospf.mli: Dgmc Net Sim
