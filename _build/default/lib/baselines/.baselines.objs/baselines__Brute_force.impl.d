lib/baselines/brute_force.ml: Array Dgmc Hashtbl Lsr Mctree Net Option Sim
