lib/baselines/mospf.ml: Array Dgmc Hashtbl Int List Lsr Mctree Net Option Set Sim
