(** MOSPF-style multicast (RFC 1584 semantics; paper §2 and §5).

    MOSPF extends OSPF: group membership is flooded in group-membership
    LSAs and every router keeps complete member lists, but topology
    computation is {e on-demand and data-driven} — when a datagram for
    group [G] from source [S] reaches a router with no cached (S, G)
    entry, the router computes the shortest-path tree rooted at [S]
    pruned to [G]'s members, caches it, and forwards along it; the
    forwarding triggers the same computation at the next routers.

    Consequences the paper highlights, all reproduced here:
    - a membership change invalidates cached entries, so the {e next}
      packet from each active source triggers one computation {e at
      every on-tree router} — computations per event grow with both the
      tree size and the number of sources;
    - receiver-only delivery cannot be triggered by senders (a packet
      must already flow), and QoS negotiation before data flow is
      impossible — modelled here by computation happening only inside
      {!send_packet}. *)

type t

val create :
  graph:Net.Graph.t -> config:Dgmc.Config.t -> unit -> t

val engine : t -> Sim.Engine.t

(** {1 Membership (group-membership LSAs)} *)

val join : t -> switch:int -> group:int -> unit

val leave : t -> switch:int -> group:int -> unit

val schedule_join : t -> at:float -> switch:int -> group:int -> unit

val schedule_leave : t -> at:float -> switch:int -> group:int -> unit

(** {1 Data plane} *)

val send_packet : t -> src:int -> group:int -> unit
(** Inject one datagram now: it is forwarded hop-by-hop along the
    source-rooted tree; every router whose (src, group) cache entry is
    missing or stale pays a [tc]-long computation before forwarding. *)

val schedule_packet : t -> at:float -> src:int -> group:int -> unit

val run : ?until:float -> ?max_events:int -> t -> unit

(** {1 Measurements} *)

type totals = {
  events : int;  (** Membership events injected. *)
  computations : int;  (** SPT computations across all routers. *)
  floodings : int;  (** Group-membership LSA floodings. *)
  messages : int;  (** Flooding link transmissions. *)
  packets_forwarded : int;  (** Data-packet link transmissions. *)
}

val totals : t -> totals

val reset_counters : t -> unit

val members : t -> switch:int -> group:int -> int list
(** The member list router [switch] currently holds, ascending. *)

val cache_size : t -> switch:int -> int
(** Live (S, G) routing-cache entries at the router. *)
