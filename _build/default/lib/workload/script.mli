(** Scenario scripts: drive a simulation from a plain-text description.

    The CLI's [script] subcommand runs files in this format; tests and
    bug reports can thus describe a reproducible scenario without
    writing OCaml.  Format, one directive per line ([#] comments and
    blank lines ignored):

    {v
    # network and regime
    graph waxman 30 seed=5        # or: grid R C | ring N | line N | star N
    config atm                    # or: wan

    # connections: id and type
    mc 1 symmetric                # or: receiver-only | asymmetric

    # timed events; time is seconds, or rounds with an 'r' suffix
    at 0    join 3 mc=1           # role defaults by MC type
    at 0.1r join 5 mc=1 role=sender
    at 2r   leave 3 mc=1
    at 3r   linkdown 2 7
    at 4r   linkup 2 7
    v}

    Times with the [r] suffix are multiples of the protocol round
    ([Tf + Tc]) of the scripted graph and regime. *)

type t = {
  graph : Net.Graph.t;
  config : Dgmc.Config.t;
  mcs : Dgmc.Mc_id.t list;
  events : Events.t list;
}

val parse : string -> (t, string) result
(** Parse a script from its text.  The error carries the line number and
    a description. *)

val load : string -> (t, string) result
(** Read and parse a file. *)

val run : ?trace:Sim.Trace.t -> t -> Dgmc.Protocol.t
(** Build the protocol instance, schedule every event, and run to
    quiescence. *)
