(** Whole-session lifecycles: arrival burst, steady churn, departure.

    Combines {!Bursty} and {!Poisson} into the life of one multi-party
    conversation — the workload shape the paper's introduction motivates
    (conferences, video distribution, replicated services): everybody
    arrives within a short window, membership churns slowly during the
    session, and the session drains at the end. *)

type phases = {
  arrivals : Events.t list;
  churn : Events.t list;
  departures : Events.t list;
}

val lifecycle :
  Sim.Rng.t ->
  n:int ->
  mc:Dgmc.Mc_id.t ->
  participants:int ->
  arrival_window:float ->
  churn_events:int ->
  churn_mean_gap:float ->
  departure_window:float ->
  unit ->
  phases
(** Arrival burst starts at time 0; churn starts one arrival window
    later; departures (of whoever is a member by then) fill a final
    window after the churn.  The phases are returned separately so a
    harness can quiesce and reset counters between them, and
    concatenate them when it wants the full schedule. *)

val all : phases -> Events.t list
(** The three phases concatenated in time order. *)

val members_after : Events.t list -> int list
(** The member set implied by replaying a schedule's join/leave events
    (sorted).  Useful to seed the next phase or check ground truth. *)
