let default_role (mc : Dgmc.Mc_id.t) order _switch =
  match mc.kind with
  | Dgmc.Mc_id.Symmetric -> Dgmc.Member.Both
  | Dgmc.Mc_id.Receiver_only -> Dgmc.Member.Receiver
  | Dgmc.Mc_id.Asymmetric ->
    if order = 0 then Dgmc.Member.Sender else Dgmc.Member.Receiver

let joins rng ~n ~mc ~members ~window ?role ?(start = 0.0) () =
  if members < 1 || members > n then invalid_arg "Bursty.joins: bad member count";
  if window <= 0.0 then invalid_arg "Bursty.joins: window must be positive";
  let all = List.init n (fun i -> i) in
  let chosen = Sim.Rng.sample rng members all in
  List.mapi
    (fun order switch ->
      let role =
        match role with
        | Some f -> f switch
        | None -> default_role mc order switch
      in
      {
        Events.time = start +. Sim.Rng.float rng window;
        action = Events.Join { switch; mc; role };
      })
    chosen
  |> Events.sort

let churn rng ~current ~n ~mc ~joins:n_joins ~leaves:n_leaves ~window ?(start = 0.0)
    () =
  if window <= 0.0 then invalid_arg "Bursty.churn: window must be positive";
  if n_leaves > List.length current then
    invalid_arg "Bursty.churn: more leaves than members";
  let outsiders =
    List.filter (fun x -> not (List.mem x current)) (List.init n (fun i -> i))
  in
  if n_joins > List.length outsiders then
    invalid_arg "Bursty.churn: more joins than non-members";
  let leavers = Sim.Rng.sample rng n_leaves current in
  let joiners = Sim.Rng.sample rng n_joins outsiders in
  let leave_events =
    List.map
      (fun switch ->
        {
          Events.time = start +. Sim.Rng.float rng window;
          action = Events.Leave { switch; mc };
        })
      leavers
  in
  let join_events =
    List.mapi
      (fun order switch ->
        {
          Events.time = start +. Sim.Rng.float rng window;
          action = Events.Join { switch; mc; role = default_role mc (order + 1) switch };
        })
      joiners
  in
  Events.sort (leave_events @ join_events)
