lib/workload/script.mli: Dgmc Events Net Sim
