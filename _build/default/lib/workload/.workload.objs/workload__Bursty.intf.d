lib/workload/bursty.mli: Dgmc Events Sim
