lib/workload/events.ml: Dgmc Float Format List Printf
