lib/workload/poisson.ml: Dgmc Events List Sim
