lib/workload/bursty.ml: Dgmc Events List Sim
