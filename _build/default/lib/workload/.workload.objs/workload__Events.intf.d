lib/workload/events.mli: Dgmc Format
