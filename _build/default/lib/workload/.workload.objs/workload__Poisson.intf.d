lib/workload/poisson.mli: Dgmc Events Sim
