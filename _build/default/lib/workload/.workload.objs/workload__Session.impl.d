lib/workload/session.ml: Bursty Events Float List Poisson Sim
