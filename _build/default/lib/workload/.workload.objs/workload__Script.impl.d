lib/workload/script.ml: Dgmc Events List Net Printf Sim String
