lib/workload/session.mli: Dgmc Events Sim
