(** Bursty event generation (paper §4.1, first method).

    "Events are clustered in a short period of time and conflict with
    each other.  Such very busy periods may be found at the beginning
    period of a multi-party conversation."  The generators place many
    membership events inside one small window, so switches keep
    detecting events while other switches' proposals are still in
    flight — the cascading-reaction regime the protocol must keep under
    control. *)

val joins :
  Sim.Rng.t ->
  n:int ->
  mc:Dgmc.Mc_id.t ->
  members:int ->
  window:float ->
  ?role:(int -> Dgmc.Member.role) ->
  ?start:float ->
  unit ->
  Events.t list
(** [joins rng ~n ~mc ~members ~window ()] — [members] distinct switches
    (chosen uniformly among the [n]) join [mc] at independent uniform
    times in [\[start, start + window)].  [role] maps a switch to its
    role (default: [Both] for symmetric MCs, [Receiver] for
    receiver-only, first chosen switch [Sender] and the rest [Receiver]
    for asymmetric). *)

val churn :
  Sim.Rng.t ->
  current:int list ->
  n:int ->
  mc:Dgmc.Mc_id.t ->
  joins:int ->
  leaves:int ->
  window:float ->
  ?start:float ->
  unit ->
  Events.t list
(** A conflicting burst against an established MC: [leaves] members
    drawn from [current] leave while [joins] non-members join, all
    inside the window.  Raises [Invalid_argument] when there are not
    enough members/non-members. *)
