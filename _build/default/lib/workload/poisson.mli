(** "Normal" traffic periods (paper §4.1, second method): events spread
    out in time.

    Membership events arrive with exponentially distributed gaps whose
    mean is large relative to a protocol round, so "most of the events
    are sufficiently separated that they are handled individually" —
    the regime of Experiment 3, where both overhead ratios should be
    minimal. *)

val membership :
  Sim.Rng.t ->
  n:int ->
  mc:Dgmc.Mc_id.t ->
  events:int ->
  mean_gap:float ->
  ?initial:int list ->
  ?start:float ->
  unit ->
  Events.t list
(** [membership rng ~n ~mc ~events ~mean_gap ()] — a sequence of
    [events] join/leave events.  The generator tracks the member set:
    each event joins a uniformly chosen non-member or removes a member
    (50/50 when both are possible, forced otherwise, and never removes
    the last member so the MC stays alive for the whole run).
    [initial] (default [[]]) seeds the member set with switches assumed
    already joined; they produce join events at time [start] only when
    the list is non-empty.  Roles follow the MC kind as in {!Bursty}. *)
