(** Timed network-event schedules — the protocol-independent description
    of a workload.

    Generators ({!Bursty}, {!Poisson}, {!Session}) produce schedules;
    adapters inject them into a protocol instance.  Keeping the schedule
    first-class lets the same workload drive D-GMC and every baseline,
    which is what makes the comparison benchmarks fair. *)

type action =
  | Join of { switch : int; mc : Dgmc.Mc_id.t; role : Dgmc.Member.role }
  | Leave of { switch : int; mc : Dgmc.Mc_id.t }
  | Link_down of int * int
  | Link_up of int * int

type t = { time : float; action : action }

val sort : t list -> t list
(** Stable sort by time. *)

val count : t list -> int

val membership_count : t list -> int
(** Join/leave events only. *)

val span : t list -> float
(** Latest event time minus earliest (0 for fewer than two events). *)

val mcs : t list -> Dgmc.Mc_id.t list
(** Every MC mentioned, sorted, without duplicates. *)

val apply_dgmc : Dgmc.Protocol.t -> t list -> unit
(** Schedule every event on the protocol's engine.  Link events are
    applied to the protocol's real graph at their scheduled time. *)

val pp : Format.formatter -> t -> unit
