(** Ablation studies of the design choices DESIGN.md calls out.

    The protocol is parameterised along several axes the paper discusses
    but does not sweep; these experiments quantify each choice so a user
    can pick deliberately:

    - §3.5 incremental updates vs from-scratch computation — tree quality
      given up for the cheaper updates;
    - KMB vs SPH Steiner heuristics — cost/cpu trade-off;
    - the drift threshold triggering from-scratch recomputation;
    - hop-by-hop vs ideal flooding simulation — outcome equivalence and
      simulator speed. *)

type incremental_row = {
  label : string;  (** "incremental" or "from-scratch". *)
  mean_cost_ratio : float;
      (** Mean over seeds of (final tree cost / fresh KMB cost for the
          same members): 1.0 = no quality loss. *)
  all_converged : bool;
}

val incremental_vs_scratch :
  ?seeds:int list -> ?n:int -> ?churn_events:int -> unit -> incremental_row list
(** Session workload (burst + churn) once with incremental updates and
    once forcing every computation from scratch. *)

type heuristic_row = {
  algo : string;
  members : int;
  mean_cost_vs_bound : float;  (** Mean cost / Steiner lower bound. *)
  mean_time_us : float;  (** Mean wall-clock per computation. *)
}

val steiner_heuristics :
  ?seeds:int list -> ?n:int -> ?member_counts:int list -> unit -> heuristic_row list
(** KMB vs SPH cost and cpu across member-set sizes. *)

type drift_row = {
  threshold : float;
  final_cost_ratio : float;  (** Final tree cost / fresh KMB cost. *)
  d_converged : bool;
}

val drift_threshold :
  ?seeds:int list -> ?n:int -> ?thresholds:float list -> unit -> drift_row list
(** Sweep of the drift threshold over a churn-heavy session. *)

type flooding_row = {
  mode : string;
  same_topology_as_hop_by_hop : bool;
  wall_time_ms : float;  (** Host time to simulate the scenario. *)
  sim_events : int;  (** Engine events executed. *)
}

val flooding_modes : ?seed:int -> ?n:int -> unit -> flooding_row list
(** Hop-by-hop vs ideal flooding on the same bursty scenario: identical
    protocol outcome on a static topology, different simulation cost. *)
