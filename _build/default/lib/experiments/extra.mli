(** Extension experiments beyond the paper's three: sensitivity sweeps
    the evaluation section implies but does not run.

    - {!burst_size}: Experiment 1 fixes the burst at one session's
      arrivals; here the burst size itself sweeps, showing how the
      conflict-resolution overhead scales with the degree of conflict
      (the paper's "very busy periods" axis).
    - {!mc_independence}: §3.1 claims "protocol activities associated
      with different MCs proceed independently"; this measures per-MC
      overhead while the number of concurrently-bursting MCs grows —
      independence means the per-MC cost stays flat. *)

type burst_row = {
  members : int;  (** Burst size. *)
  proposals_per_event : Metrics.Stats.summary;
  floodings_per_event : Metrics.Stats.summary;
  convergence_rounds : Metrics.Stats.summary;
  all_converged : bool;
}

val burst_size :
  ?seeds:int list -> ?n:int -> ?sizes:int list -> unit -> burst_row list
(** Defaults: n = 60, burst sizes 2, 5, 10, 20, 30, seeds 1-10,
    computation-dominated regime. *)

type independence_row = {
  mcs : int;  (** Concurrently bursting connections. *)
  per_mc_computations : Metrics.Stats.summary;
      (** Computations per event of one MC (total / mcs / events-per-mc). *)
  per_mc_floodings : Metrics.Stats.summary;
  i_all_converged : bool;
}

val mc_independence :
  ?seeds:int list -> ?n:int -> ?counts:int list -> ?members:int -> unit ->
  independence_row list
(** Defaults: n = 60, 1/2/4/8 concurrent MCs, 6 members each. *)
