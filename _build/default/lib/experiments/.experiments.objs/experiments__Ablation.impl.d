lib/experiments/ablation.ml: Dgmc Figures Harness List Lsr Mctree Metrics Option Sim Sys Workload
