lib/experiments/extra.mli: Metrics
