lib/experiments/harness.ml: Baselines Dgmc Float List Lsr Net Sim Workload
