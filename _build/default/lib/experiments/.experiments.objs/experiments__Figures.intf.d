lib/experiments/figures.mli: Metrics
