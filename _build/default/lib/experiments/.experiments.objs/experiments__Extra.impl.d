lib/experiments/extra.ml: Dgmc Figures Float Harness List Lsr Metrics Option Sim Workload
