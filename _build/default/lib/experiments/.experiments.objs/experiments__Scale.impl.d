lib/experiments/scale.ml: Array Dgmc Hierarchy List Metrics Net Sim
