lib/experiments/ablation.mli:
