lib/experiments/harness.mli: Dgmc Net
