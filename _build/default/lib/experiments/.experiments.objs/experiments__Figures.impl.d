lib/experiments/figures.ml: Baselines Dgmc Harness Hashtbl List Mctree Metrics Option Sim
