lib/experiments/scale.mli:
