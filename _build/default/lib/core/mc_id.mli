(** Multipoint-connection identities and the three MC types (paper §1).

    An MC identifier travels in every MC LSA (the paper's [G] field) and
    carries the connection's type, since the type dictates both the
    membership semantics and the topology-computation strategy:

    - {e Symmetric}: every member both sends and receives (e.g. a
      teleconference); topology is a Steiner-style shared tree.
    - {e Receiver-only}: members are receivers of one or more sessions;
      non-member senders reach the tree through a contact node
      (two-stage delivery, as in CBT).
    - {e Asymmetric}: members are senders and/or receivers (e.g. video
      broadcast); topology is a source-rooted shortest-path tree. *)

type kind = Symmetric | Receiver_only | Asymmetric

type t = { id : int; kind : kind }

val make : kind -> int -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val kind_to_string : kind -> string

val pp : Format.formatter -> t -> unit
