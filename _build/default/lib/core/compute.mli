(** Topology computation as invoked by the protocol (paper §3.5).

    The protocol is independent of the algorithm; this module is the
    single entry point a switch calls when it needs a topology proposal.
    It chooses between incremental update and from-scratch computation:

    - asymmetric MCs always get a fresh source-rooted shortest-path tree
      (one Dijkstra — already cheap);
    - shared trees (symmetric, receiver-only) are updated incrementally
      — repair dead branches, graft joined members, prune left members —
      unless the current tree is unusable or has drifted past the
      configured threshold, in which case the configured Steiner
      heuristic runs from scratch.

    When some members are unreachable on the switch's network image (a
    partition, which the paper leaves to future work), the computation
    covers the members reachable from the computing switch itself, so
    each side of a partition keeps serving its own survivors. *)

val topology :
  Config.t ->
  Mc_id.kind ->
  Net.Graph.t ->
  Member.t ->
  self:int ->
  current:Mctree.Tree.t option ->
  Mctree.Tree.t
(** [topology config kind image members ~self ~current] is the proposal
    switch [self] computes from its local image.  Empty membership
    yields {!Mctree.Tree.empty}. *)

val was_incremental : unit -> bool
(** [true] when the most recent {!topology} call on this domain took the
    incremental path — exposed for tests and ablation benchmarks. *)
