(** MC LSA payloads (paper §3.1).

    An MC LSA is the tuple [(S, F, V, G, P, T)]: source switch [S], the
    MC flag [F] (encoded here by the payload type itself — see
    {!Protocol} — exactly as the paper distinguishes MC from non-MC
    LSAs), an event [V], the connection [G], an optional topology
    proposal [P], and a vector timestamp [T]. *)

type event =
  | Join of Member.role  (** The source switch joins the MC. *)
  | Leave  (** The source switch leaves the MC. *)
  | Link  (** A link/nodal event affected this MC's topology. *)
  | No_event
      (** Triggered LSA: carries a topology proposal but no event
          (paper's [none]). *)

type t = {
  src : int;  (** [S]: originating switch. *)
  event : event;  (** [V]. *)
  mc : Mc_id.t;  (** [G]. *)
  proposal : Mctree.Tree.t option;  (** [P]: complete topology description. *)
  members : Member.t option;
      (** Member-list snapshot as of [stamp], attached to every LSA that
          carries a proposal.  The paper's [P] is "a complete topological
          description of the MC"; carrying the member roles alongside the
          tree lets a switch that missed events (e.g. across a healed
          partition) resynchronise from any accepted proposal. *)
  stamp : Timestamp.t;  (** [T]. *)
}

val make :
  src:int ->
  event:event ->
  mc:Mc_id.t ->
  ?proposal:Mctree.Tree.t ->
  ?members:Member.t ->
  stamp:Timestamp.t ->
  unit ->
  t

val is_event : t -> bool
(** [true] unless [event = No_event]. *)

val is_membership_event : t -> bool
(** [true] for [Join]/[Leave] — the events that modify member lists
    (the paper's "if V ≠ link" at Figure 5 line 8). *)

val event_to_string : event -> string

val pp : Format.formatter -> t -> unit
