(** Per-MC member lists with sender/receiver roles.

    A switch is a member when at least one of its attached hosts takes
    part in the connection (paper §1).  Roles matter only for asymmetric
    MCs; symmetric members are implicitly [Both] and receiver-only
    members [Receiver]. *)

type role = Sender | Receiver | Both

type t

val empty : t

val is_empty : t -> bool

val cardinal : t -> int

val join : t -> int -> role -> t
(** Add a member; joining again overwrites the role (the switch's hosts'
    aggregate interest changed). *)

val leave : t -> int -> t
(** Remove a member entirely; no-op when absent. *)

val mem : t -> int -> bool

val role : t -> int -> role option

val ids : t -> int list
(** All member switch ids, ascending. *)

val senders : t -> int list
(** Members with role [Sender] or [Both], ascending. *)

val receivers : t -> int list
(** Members with role [Receiver] or [Both], ascending. *)

val of_list : (int * role) list -> t

val equal : t -> t -> bool

val role_to_string : role -> string

val pp : Format.formatter -> t -> unit
