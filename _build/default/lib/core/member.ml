module Int_map = Map.Make (Int)

type role = Sender | Receiver | Both

type t = role Int_map.t

let empty = Int_map.empty

let is_empty = Int_map.is_empty

let cardinal = Int_map.cardinal

let join t x role = Int_map.add x role t

let leave t x = Int_map.remove x t

let mem t x = Int_map.mem x t

let role t x = Int_map.find_opt x t

let ids t = List.map fst (Int_map.bindings t)

let senders t =
  Int_map.bindings t
  |> List.filter_map (fun (x, r) ->
         match r with Sender | Both -> Some x | Receiver -> None)

let receivers t =
  Int_map.bindings t
  |> List.filter_map (fun (x, r) ->
         match r with Receiver | Both -> Some x | Sender -> None)

let of_list list =
  List.fold_left (fun t (x, r) -> join t x r) empty list

let equal a b = Int_map.equal (fun (x : role) y -> x = y) a b

let role_to_string = function
  | Sender -> "sender"
  | Receiver -> "receiver"
  | Both -> "both"

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (x, r) -> Format.fprintf ppf "%d:%s" x (role_to_string r)))
    (Int_map.bindings t)
