(** Protocol and simulation parameters.

    The paper's experiments are characterised by the relation between
    [tc] (time to compute a topology) and [tf] (the flooding diameter,
    itself [t_hop × hop-diameter]); presets for the two published regimes
    are provided.  A {e round} is [tf + tc] and is the unit in which
    convergence time is reported. *)

type steiner = Kmb | Sph

type t = {
  tc : float;  (** Topology-computation latency at a switch (seconds). *)
  t_hop : float;  (** Per-hop LSA transmission time (seconds). *)
  flood_mode : Lsr.Flooding.mode;
  steiner : steiner;
      (** From-scratch heuristic for shared trees (symmetric and
          receiver-only MCs). *)
  incremental : bool;
      (** Use incremental branch add/remove when possible (§3.5);
          [false] forces every computation from scratch. *)
  drift_threshold : float;
      (** Incrementally maintained trees are recomputed from scratch
          when their cost exceeds this multiple of a fresh heuristic
          tree's cost (§3.5's "deviates significantly"). *)
}

val default : t
(** [atm_lan] with hop-by-hop flooding. *)

val atm_lan : t
(** Experiment-1 regime: computation dominates communication
    ([t_hop = 4 µs], [tc = 400 µs]), from the authors' ATM testbed
    measurements. *)

val wan : t
(** Experiment-2 regime: communication dominates computation
    ([t_hop = 5 ms], [tc = 100 µs]). *)

val round_length : t -> graph:Net.Graph.t -> float
(** [tf + tc] for the given network (paper §4.1). *)

val pp : Format.formatter -> t -> unit
