lib/core/member.mli: Format
