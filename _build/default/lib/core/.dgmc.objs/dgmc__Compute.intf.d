lib/core/compute.mli: Config Mc_id Mctree Member Net
