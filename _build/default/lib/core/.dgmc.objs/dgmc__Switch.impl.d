lib/core/switch.ml: Array Compute Config Format Hashtbl Lazy List Lsr Mc_id Mc_lsa Mc_state Mctree Member Option Queue Sim Timestamp
