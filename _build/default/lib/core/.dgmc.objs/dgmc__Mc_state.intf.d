lib/core/mc_state.mli: Format Mc_lsa Mctree Member Queue Sim Timestamp
