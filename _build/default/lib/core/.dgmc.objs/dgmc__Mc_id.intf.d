lib/core/mc_id.mli: Format
