lib/core/timestamp.ml: Array Format
