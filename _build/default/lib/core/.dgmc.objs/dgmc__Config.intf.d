lib/core/config.mli: Format Lsr Net
