lib/core/mc_lsa.ml: Format Mc_id Mctree Member Timestamp
