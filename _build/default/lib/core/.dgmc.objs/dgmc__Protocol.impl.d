lib/core/protocol.ml: Array Config Format Hashtbl List Lsr Mc_id Mc_lsa Mctree Member Net Option Printf Sim Switch
