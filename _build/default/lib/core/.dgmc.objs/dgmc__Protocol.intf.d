lib/core/protocol.mli: Config Lsr Mc_id Mc_lsa Mctree Member Net Sim Switch
