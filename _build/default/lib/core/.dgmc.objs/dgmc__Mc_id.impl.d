lib/core/mc_id.ml: Format Hashtbl Int Stdlib
