lib/core/member.ml: Format Int List Map
