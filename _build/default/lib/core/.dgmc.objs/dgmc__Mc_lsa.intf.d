lib/core/mc_lsa.mli: Format Mc_id Mctree Member Timestamp
