lib/core/config.ml: Format Lsr
