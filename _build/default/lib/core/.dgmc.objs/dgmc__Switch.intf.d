lib/core/switch.mli: Config Mc_id Mc_lsa Mctree Member Net Sim Timestamp
