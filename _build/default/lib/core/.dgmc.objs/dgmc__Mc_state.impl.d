lib/core/mc_state.ml: Array Format List Mc_lsa Mctree Member Queue Sim Timestamp
