lib/core/compute.ml: Array Config List Mc_id Mctree Member Net
