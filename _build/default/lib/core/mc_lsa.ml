type event = Join of Member.role | Leave | Link | No_event

type t = {
  src : int;
  event : event;
  mc : Mc_id.t;
  proposal : Mctree.Tree.t option;
  members : Member.t option;
  stamp : Timestamp.t;
}

let make ~src ~event ~mc ?proposal ?members ~stamp () =
  { src; event; mc; proposal; members; stamp }

let is_event t = t.event <> No_event

let is_membership_event t =
  match t.event with Join _ | Leave -> true | Link | No_event -> false

let event_to_string = function
  | Join r -> "join:" ^ Member.role_to_string r
  | Leave -> "leave"
  | Link -> "link"
  | No_event -> "none"

let pp ppf t =
  Format.fprintf ppf "@[<h>mc-lsa(src=%d, %s, %a, %s, T=%a)@]" t.src
    (event_to_string t.event) Mc_id.pp t.mc
    (match t.proposal with Some _ -> "proposal" | None -> "no-proposal")
    Timestamp.pp t.stamp
