lib/metrics/table.ml: Array List Printf String
