lib/metrics/csv.mli:
