lib/metrics/csv.ml: List String
