lib/metrics/table.mli:
