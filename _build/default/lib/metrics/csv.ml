let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let line fields = String.concat "," (List.map escape fields) ^ "\n"

let render ~headers rows =
  String.concat "" (line headers :: List.map line rows)

let write ~path ~headers rows =
  let oc = open_out path in
  output_string oc (render ~headers rows);
  close_out oc
