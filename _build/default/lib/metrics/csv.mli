(** Minimal CSV writing (RFC 4180 quoting) for exporting benchmark
    series to plotting tools. *)

val escape : string -> string
(** Quote a field when it contains commas, quotes or newlines. *)

val render : headers:string list -> string list list -> string
(** Header line plus one line per row, [\n]-terminated. *)

val write : path:string -> headers:string list -> string list list -> unit
(** {!render} to a file (truncating). *)
