(** Monospace table rendering for benchmark output.

    The benchmark harness prints every figure of the paper as a plain
    table (one row per x-axis point, one column per series); this keeps
    the output greppable and diffable across runs. *)

type align = Left | Right

val render :
  ?align:align list ->
  headers:string list ->
  string list list ->
  string
(** [render ~headers rows] lays the rows out in columns sized to the
    widest cell, with a rule under the header.  Missing cells render
    empty; [align] defaults to [Right] for every column. *)

val print :
  ?align:align list -> headers:string list -> string list list -> unit
(** {!render} to stdout, followed by a newline. *)

val cell_f : float -> string
(** Format a float compactly ([%.3f] with trailing-zero trim). *)

val cell_ci : mean:float -> ci:float -> string
(** ["m ± c"] cell. *)
