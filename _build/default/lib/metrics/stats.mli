(** Sample statistics with 95% confidence intervals.

    The paper presents every bursty-workload data point as a mean over
    10 random graphs with its 95% confidence interval; this module
    reproduces that reduction using the Student t distribution (the
    samples are small, so the normal approximation would understate the
    intervals). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** Sample standard deviation (n-1 denominator). *)
  ci95 : float;
      (** Half-width of the 95% confidence interval of the mean;
          [0.] for fewer than two samples. *)
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on an empty sample. *)

val mean : float list -> float

val stddev : float list -> float

val t_critical : int -> float
(** [t_critical df] is the two-sided 97.5th-percentile Student-t value
    for [df] degrees of freedom (exact table for df ≤ 30, 1.96
    asymptote beyond).  [df >= 1]. *)

val percentile : float list -> float -> float
(** [percentile xs p] for [p] in [\[0, 100\]], by linear interpolation
    on the sorted sample. *)

val pp_summary : Format.formatter -> summary -> unit
(** Renders as ["mean ± ci"]. *)
