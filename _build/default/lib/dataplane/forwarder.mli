(** Packet-level data plane: timed forwarding over MC topologies.

    The protocol layer decides {e which} tree carries a connection; this
    module answers {e how the tree behaves under load}, with the
    store-and-forward link model the paper's ATM motivation implies:

    - each direction of a link is a transmitter with a bandwidth, a
      propagation delay (derived from the link weight), and a bounded
      FIFO queue;
    - a packet occupies the transmitter for [size / bandwidth], waits
      behind queued packets, and is dropped when it arrives at a full
      queue;
    - multicast duplicates the packet at tree fan-out, exactly as a
      switch fabric would.

    Used by the media-session example and the jitter/loss tests; the
    signaling experiments do not depend on it (the paper measures
    signaling cost analytically, as do we). *)

type t

val create :
  engine:Sim.Engine.t ->
  graph:Net.Graph.t ->
  ?bandwidth:float ->
  ?queue_capacity:int ->
  ?prop_of_weight:(float -> float) ->
  unit ->
  t
(** [bandwidth] is in bits per second of each link direction (default
    [100e6]); [queue_capacity] in packets per direction (default [64]);
    [prop_of_weight] maps a link weight to propagation seconds (default
    [fun w -> w *. 1e-4], i.e. a weight-10 link ≈ 1 ms). *)

val multicast :
  t ->
  tree:Mctree.Tree.t ->
  src:int ->
  size_bits:float ->
  on_deliver:(receiver:int -> at:float -> unit) ->
  unit
(** Inject one packet at [src] (which must be on the tree) now; it is
    forwarded along tree edges with full timing, [on_deliver] firing for
    every terminal reached (excluding [src]).  Drops are counted, not
    reported per packet. *)

val unicast :
  t ->
  path:int list ->
  size_bits:float ->
  on_deliver:(at:float -> unit) ->
  unit
(** Send one packet along an explicit node path. *)

val packets_sent : t -> int
(** Link transmissions attempted (per hop, per copy). *)

val packets_dropped : t -> int
(** Transmissions refused because a queue was full. *)

val reset_counters : t -> unit

(** {1 Constant-bit-rate sources and receiver statistics} *)

module Sink : sig
  type sink

  val create : unit -> sink

  val record : sink -> at:float -> unit
  (** Feed from an [on_deliver] callback. *)

  val received : sink -> int

  val mean_gap : sink -> float
  (** Mean inter-arrival gap (0 with fewer than two packets). *)

  val jitter : sink -> float
  (** Mean absolute deviation of inter-arrival gaps from their mean —
      0 for a perfectly paced stream. *)
end

val cbr :
  t ->
  tree:Mctree.Tree.t ->
  src:int ->
  rate_pps:float ->
  size_bits:float ->
  count:int ->
  sinks:(int * Sink.sink) list ->
  unit
(** Schedule [count] packets at fixed [1 / rate_pps] intervals starting
    now, delivering into the per-receiver sinks (receivers without a
    sink are delivered silently). *)
