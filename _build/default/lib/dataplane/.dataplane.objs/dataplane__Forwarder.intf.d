lib/dataplane/forwarder.mli: Mctree Net Sim
