lib/dataplane/forwarder.ml: Float Hashtbl List Mctree Metrics Net Sim
