(** Group leader election on top of D-GMC membership.

    Many group applications need a distinguished member — a session
    chair, a sequencer, the core of a shared structure.  Huang &
    McKinley's companion work ("Group Leader Election under Link-State
    Routing") builds election on the same foundation as D-GMC: every
    switch holds complete knowledge (the agreed member list and the
    link-state image), so leadership can be {e computed locally} by a
    deterministic rule instead of negotiated with extra message rounds —
    consensus on the inputs gives consensus on the leader.

    This module implements that model.  The rule: the leader of an MC,
    as seen from switch [s], is the smallest member switch reachable
    from [s] on [s]'s link-state image.  Under normal operation every
    switch sees the same members and a connected image, so all agree;
    when the network partitions, each side deterministically elects its
    smallest {e reachable} member — the "leader unreachable → new
    consensus" transition of the companion paper's leadership consensus
    machine — and re-merges to a single leader when D-GMC's state
    reconciles after healing.

    A {!monitor} watches one switch's view and records leadership
    transitions, which is what an application process sitting on that
    switch would observe. *)

val leader_at : Dgmc.Protocol.t -> switch:int -> Dgmc.Mc_id.t -> int option
(** The leader as computed by the given switch from its own MC state and
    link-state image; [None] if the switch has no members recorded. *)

val agreed_leader : Dgmc.Protocol.t -> Dgmc.Mc_id.t -> int option
(** The network-wide leader when every switch's computation agrees;
    [None] when views differ (convergence in progress or partition) or
    no members exist. *)

val leaders_by_view : Dgmc.Protocol.t -> Dgmc.Mc_id.t -> (int * int option) list
(** [(switch, leader-as-seen-by-switch)] for every switch, ascending —
    the raw data behind {!agreed_leader}, useful for asserting per-side
    agreement under partition. *)

(** {1 Observing transitions} *)

type transition = {
  at : float;  (** Simulated time. *)
  previous : int option;
  current : int option;
}

type monitor

val monitor : Dgmc.Protocol.t -> switch:int -> Dgmc.Mc_id.t -> monitor
(** Attach to a switch: every subsequent protocol state change at any
    switch re-evaluates this switch's leader and records a transition
    when it moved.  (Piggy-backs on the protocol's change notifications;
    multiple monitors compose.) *)

val current : monitor -> int option

val transitions : monitor -> transition list
(** Oldest first. *)

val pp_transition : Format.formatter -> transition -> unit
