lib/election/leader.mli: Dgmc Format
