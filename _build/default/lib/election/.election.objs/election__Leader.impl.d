lib/election/leader.ml: Array Dgmc Format List Net Sim
