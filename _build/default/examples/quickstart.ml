(* Quickstart: the three MC types of the paper's Figure 1, built with the
   D-GMC protocol on a small network.

     dune exec examples/quickstart.exe

   Walks through: building a topology, running a protocol instance,
   joining members of each MC type, and inspecting the agreed topology. *)

let print_tree net mc =
  match Dgmc.Protocol.agreed_topology net mc with
  | Some tree ->
    Format.printf "  agreed topology: %a@." Mctree.Tree.pp tree;
    Format.printf "  cost: %.2f, valid: %b@."
      (Mctree.Tree.cost (Dgmc.Protocol.graph net) tree)
      (Mctree.Tree.is_valid_mc_topology (Dgmc.Protocol.graph net) tree)
  | None -> Format.printf "  (no agreed topology)@."

let () =
  (* A deterministic 12-switch Waxman network. *)
  let rng = Sim.Rng.create 2024 in
  let graph = Net.Topo_gen.waxman rng ~n:12 ~target_degree:3.5 () in
  Format.printf "network: %d switches, %d links, hop diameter %d@.@."
    (Net.Graph.n_nodes graph) (Net.Graph.n_edges graph)
    (Net.Bfs.hop_diameter graph);

  let net = Dgmc.Protocol.create ~graph ~config:Dgmc.Config.default () in

  (* 1. A symmetric MC — every member can speak and listen (Figure 1a).
     Five switches join in one burst; D-GMC converges on a shared
     Steiner-style tree. *)
  let conference = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1 in
  Format.printf "symmetric MC (teleconference), members 0 2 5 7 9:@.";
  List.iter
    (fun sw -> Dgmc.Protocol.join net ~switch:sw conference Dgmc.Member.Both)
    [ 0; 2; 5; 7; 9 ];
  Dgmc.Protocol.run net;
  assert (Dgmc.Protocol.converged net conference);
  print_tree net conference;

  (* 2. A receiver-only MC (Figure 1b) — members are receivers; any
     sender reaches them through a contact node on the tree. *)
  let subscribers = Dgmc.Mc_id.make Dgmc.Mc_id.Receiver_only 2 in
  Format.printf "@.receiver-only MC (subscribers), members 1 4 8:@.";
  List.iter
    (fun sw -> Dgmc.Protocol.join net ~switch:sw subscribers Dgmc.Member.Receiver)
    [ 1; 4; 8 ];
  Dgmc.Protocol.run net;
  assert (Dgmc.Protocol.converged net subscribers);
  print_tree net subscribers;
  (match Dgmc.Protocol.agreed_topology net subscribers with
  | Some tree ->
    (* A non-member (switch 11) publishes: two-stage delivery. *)
    let report = Mctree.Delivery.two_stage graph tree ~src:11 in
    Format.printf "  two-stage delivery from non-member 11 (contact %s):@."
      (match report.contact with Some c -> string_of_int c | None -> "-");
    List.iter
      (fun (d : Mctree.Delivery.delivery) ->
        Format.printf "    -> receiver %d: delay %.2f, %d hops@." d.receiver
          d.delay d.hops)
      report.deliveries
  | None -> ());

  (* 3. An asymmetric MC (Figure 1c) — one sender broadcasts to
     receivers over a source-rooted shortest-path tree. *)
  let broadcast = Dgmc.Mc_id.make Dgmc.Mc_id.Asymmetric 3 in
  Format.printf "@.asymmetric MC (broadcast), sender 3, receivers 6 10 11:@.";
  Dgmc.Protocol.join net ~switch:3 broadcast Dgmc.Member.Sender;
  List.iter
    (fun sw -> Dgmc.Protocol.join net ~switch:sw broadcast Dgmc.Member.Receiver)
    [ 6; 10; 11 ];
  Dgmc.Protocol.run net;
  assert (Dgmc.Protocol.converged net broadcast);
  print_tree net broadcast;

  (* The signaling bill for everything above. *)
  let totals = Dgmc.Protocol.totals net in
  Format.printf
    "@.signaling totals: %d events, %d topology computations, %d MC \
     floodings, %d link messages@."
    totals.events totals.computations totals.mc_floodings totals.messages;
  Format.printf "convergence of the last burst: %s@."
    (match Dgmc.Protocol.convergence_rounds net with
    | Some r -> Format.asprintf "%.2f rounds" r
    | None -> "n/a")
