(* QoS-negotiated sessions: admission before data transmission.

   The paper's §2 notes that a data-driven protocol like MOSPF "cannot
   be applied if quality of service (QoS) negotiation is needed prior to
   data transmission" — the topology only exists once packets flow.
   D-GMC computes and agrees topologies ahead of data, so the
   computation can run on a bandwidth-constrained view of the network
   and reserve capacity.  This example fills a network with video
   sessions until admission control starts rejecting, then frees
   capacity and retries.

     dune exec examples/qos_admission.exe *)

let () =
  let rng = Sim.Rng.create 31 in
  let graph = Net.Topo_gen.waxman rng ~n:30 ~target_degree:3.5 () in
  (* Every link carries 100 Mb/s. *)
  let cap = Qos.Capacity.create graph ~default_capacity:100.0 in
  Format.printf "network: %d switches, %d links at 100 Mb/s each@.@."
    (Net.Graph.n_nodes graph) (Net.Graph.n_edges graph);

  (* Conference sessions of 4-6 members, each demanding 25 Mb/s. *)
  let demand = 25.0 in
  let admitted = ref [] and rejected = ref [] in
  for key = 1 to 14 do
    let size = 4 + Sim.Rng.int rng 3 in
    let members =
      Dgmc.Member.of_list
        (List.map
           (fun s -> (s, Dgmc.Member.Both))
           (Sim.Rng.sample rng size (List.init 30 (fun i -> i))))
    in
    match
      Qos.Admission.admit cap ~key ~kind:Dgmc.Mc_id.Symmetric ~bandwidth:demand
        ~members
    with
    | Ok tree ->
      admitted := key :: !admitted;
      Format.printf
        "session %2d ADMITTED  (%d members, tree %2d links)   network \
         utilization %4.1f%%, hottest link %5.1f%%@."
        key (Dgmc.Member.cardinal members) (Mctree.Tree.n_edges tree)
        (100.0 *. Qos.Capacity.utilization cap)
        (100.0 *. Qos.Capacity.max_utilization cap)
    | Error reason ->
      rejected := key :: !rejected;
      Format.printf "session %2d REJECTED  (%a)@." key Qos.Admission.pp_rejection
        reason
  done;

  Format.printf "@.%d sessions admitted, %d rejected by admission control@."
    (List.length !admitted) (List.length !rejected);

  (* Sessions end; capacity returns; a rejected session retries. *)
  (match (!admitted, List.rev !rejected) with
  | k1 :: k2 :: _, retry :: _ ->
    Qos.Admission.release cap ~key:k1;
    Qos.Admission.release cap ~key:k2;
    Format.printf
      "@.sessions %d and %d ended; utilization back to %.1f%%; retrying \
       session %d...@."
      k1 k2
      (100.0 *. Qos.Capacity.utilization cap)
      retry;
    let members =
      Dgmc.Member.of_list
        (List.map
           (fun s -> (s, Dgmc.Member.Both))
           (Sim.Rng.sample rng 5 (List.init 30 (fun i -> i))))
    in
    (match
       Qos.Admission.admit cap ~key:retry ~kind:Dgmc.Mc_id.Symmetric
         ~bandwidth:demand ~members
     with
    | Ok _ -> Format.printf "session %d now ADMITTED@." retry
    | Error r -> Format.printf "session %d still rejected (%a)@." retry
                   Qos.Admission.pp_rejection r)
  | _ -> ());

  Format.printf
    "@.(MOSPF could not have made these decisions: its trees only come \
     into@. existence when data arrives — after the moment QoS must be \
     negotiated.)@."
