(* Replicated file service: replicas subscribe to an update feed as a
   receiver-only MC (paper Figure 1b); any client may publish an update
   from anywhere via two-stage delivery.  Compares the D-GMC shared tree
   (contact = nearest tree node) against CBT (contact = core-ward path),
   reproducing the §5 trade-off discussion.

     dune exec examples/replicated_service.exe *)

let () =
  let seed = 5 in
  let n = 40 in
  let graph = Experiments.Harness.graph_for ~seed ~n in
  let net = Dgmc.Protocol.create ~graph ~config:Dgmc.Config.atm_lan () in
  let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Receiver_only 7 in
  let rng = Sim.Rng.create seed in

  let replicas = Sim.Rng.sample rng 8 (List.init n (fun i -> i)) in
  Format.printf "replicas at switches: %s@.@."
    (String.concat ", " (List.map string_of_int replicas));

  List.iter
    (fun r -> Dgmc.Protocol.join net ~switch:r mc Dgmc.Member.Receiver)
    replicas;
  Dgmc.Protocol.run net;
  assert (Dgmc.Protocol.converged net mc);
  let tree = Option.get (Dgmc.Protocol.agreed_topology net mc) in
  Format.printf "update-feed tree (D-GMC receiver-only MC): cost %.2f@.@."
    (Mctree.Tree.cost graph tree);

  (* Clients publish updates from random non-replica switches. *)
  let clients =
    List.filter (fun x -> not (List.mem x replicas)) (List.init n (fun i -> i))
    |> Sim.Rng.sample rng 5
  in
  Format.printf "publishing one update from each client %s:@."
    (String.concat ", " (List.map string_of_int clients));
  let dgmc_loads = Hashtbl.create 32 in
  List.iter
    (fun client ->
      let report = Mctree.Delivery.two_stage graph tree ~src:client in
      Mctree.Delivery.accumulate_loads dgmc_loads report;
      let worst =
        List.fold_left
          (fun acc (d : Mctree.Delivery.delivery) -> Float.max acc d.delay)
          0.0 report.deliveries
      in
      Format.printf "  client %2d -> contact %s, worst replica delay %.2f@."
        client
        (match report.contact with Some c -> string_of_int c | None -> "-")
        worst)
    clients;

  (* The same service on CBT, with its core chosen blind (first member)
     versus by an oracle (median). *)
  let run_cbt label core =
    let cbt = Baselines.Cbt.create ~graph ~core () in
    List.iter (Baselines.Cbt.join cbt) replicas;
    let loads = Hashtbl.create 32 in
    let delays = ref [] in
    List.iter
      (fun client ->
        let report = Baselines.Cbt.deliver cbt ~src:client in
        Mctree.Delivery.accumulate_loads loads report;
        List.iter
          (fun (d : Mctree.Delivery.delivery) -> delays := d.delay :: !delays)
          report.deliveries)
      clients;
    Format.printf
      "  %-24s core=%2d  tree cost %6.2f  mean delay %5.2f  control msgs %3d@."
      label core
      (Mctree.Tree.cost graph (Baselines.Cbt.tree cbt))
      (Metrics.Stats.mean !delays)
      (Baselines.Cbt.control_messages cbt)
  in
  Format.printf "@.the same service over CBT:@.";
  run_cbt "cbt (median core)" (Baselines.Core_select.median graph ~members:replicas);
  run_cbt "cbt (first-member core)" (Baselines.Core_select.first_member replicas);
  Format.printf
    "@.(D-GMC needs no core at all: any switch can be the contact, and the@.";
  Format.printf
    " tree is optimised against the full topology every switch already has)@."
