(* Hierarchical D-GMC: the scalability extension sketched in the paper's
   §2 ("its extension to hierarchical networks is part of our ongoing
   work").  A 6x12 = 72-switch internetwork of areas; a conference
   spans three areas; membership events flood only their own area and,
   when an area's membership flips, the 6-node logical level.

     dune exec examples/hierarchical.exe *)

let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1

let () =
  let rng = Sim.Rng.create 21 in
  let graph, partition = Net.Topo_gen.clustered rng ~areas:6 ~per_area:12 () in
  Format.printf
    "internetwork: %d switches in %d areas, %d links (%d inter-area)@.@."
    (Net.Graph.n_nodes graph) (Array.length partition) (Net.Graph.n_edges graph)
    (List.length
       (List.filter
          (fun (e : Net.Graph.edge) -> e.u / 12 <> e.v / 12)
          (Net.Graph.edges graph)));

  let h = Hierarchy.Hmc.create ~graph ~partition ~config:Dgmc.Config.atm_lan () in

  (* A conference with participants in areas 0, 2 and 4. *)
  let members = [ 2; 5; 26; 29; 50 ] in
  Format.printf "participants: %s (areas %s)@."
    (String.concat ", " (List.map string_of_int members))
    (String.concat ", "
       (List.sort_uniq compare
          (List.map (fun s -> string_of_int (Hierarchy.Hmc.area_of h s)) members)));
  List.iter (fun s -> Hierarchy.Hmc.join h ~switch:s mc Dgmc.Member.Both) members;
  Hierarchy.Hmc.run h;
  assert (Hierarchy.Hmc.converged h mc);

  let tree = Option.get (Hierarchy.Hmc.global_tree h mc) in
  Format.printf "@.stitched global tree: %d links, cost %.2f, valid %b@."
    (Mctree.Tree.n_edges tree)
    (Mctree.Tree.cost graph tree)
    (Mctree.Tree.is_valid_mc_topology graph tree);
  let totals = Hierarchy.Hmc.totals h in
  Format.printf
    "setup signaling: %d intra floods + %d logical floods, %d gateway \
     instructions@."
    totals.intra_floodings totals.logical_floodings totals.gateway_instructions;

  (* The scalability effect: one more participant in area 0. *)
  Hierarchy.Hmc.reset_counters h;
  Hierarchy.Hmc.join h ~switch:7 mc Dgmc.Member.Both;
  Hierarchy.Hmc.run h;
  assert (Hierarchy.Hmc.converged h mc);
  let totals = Hierarchy.Hmc.totals h in
  Format.printf
    "@.one intra-area join afterwards: %d intra floods, %d logical floods, \
     ~%d switches touched (of %d)@."
    totals.intra_floodings totals.logical_floodings totals.switches_touched
    (Net.Graph.n_nodes graph);

  (* Area 4's only member hangs up: the area retires from the logical
     tree and its gateways withdraw. *)
  Hierarchy.Hmc.reset_counters h;
  Hierarchy.Hmc.leave h ~switch:50 mc;
  Hierarchy.Hmc.run h;
  assert (Hierarchy.Hmc.converged h mc);
  let tree' = Option.get (Hierarchy.Hmc.global_tree h mc) in
  Format.printf
    "@.area 4 retires: global tree now %d links (%d before), logical floods %d@."
    (Mctree.Tree.n_edges tree') (Mctree.Tree.n_edges tree)
    (Hierarchy.Hmc.totals h).logical_floodings;

  (* Everyone leaves; the whole structure evaporates. *)
  List.iter
    (fun s -> Hierarchy.Hmc.leave h ~switch:s mc)
    [ 2; 5; 7; 26; 29 ];
  Hierarchy.Hmc.run h;
  assert (Hierarchy.Hmc.converged h mc);
  assert (Hierarchy.Hmc.global_tree h mc = None);
  Format.printf "@.conference over; all state cleaned up across both levels.@."
