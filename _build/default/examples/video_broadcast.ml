(* Video broadcast: a single-source asymmetric MC (paper Figure 1c).
   One station transmits; viewers tune in and out.  Shows the
   source-rooted shortest-path topology D-GMC maintains for asymmetric
   connections, the per-viewer delivery delays, and what it would cost
   to run the same session over a shared tree instead.

     dune exec examples/video_broadcast.exe *)

let () =
  let seed = 11 in
  let n = 50 in
  let graph = Experiments.Harness.graph_for ~seed ~n in
  let net = Dgmc.Protocol.create ~graph ~config:Dgmc.Config.atm_lan () in
  let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Asymmetric 9 in
  let rng = Sim.Rng.create seed in

  let station = 0 in
  let viewers = Sim.Rng.sample rng 10 (List.init (n - 1) (fun i -> i + 1)) in
  Format.printf "station at switch %d, %d viewers on a %d-switch network@.@."
    station (List.length viewers) n;

  Dgmc.Protocol.join net ~switch:station mc Dgmc.Member.Sender;
  List.iter (fun v -> Dgmc.Protocol.join net ~switch:v mc Dgmc.Member.Receiver) viewers;
  Dgmc.Protocol.run net;
  assert (Dgmc.Protocol.converged net mc);

  let tree = Option.get (Dgmc.Protocol.agreed_topology net mc) in
  Format.printf "source-rooted tree: cost %.2f, depth %d hops@."
    (Mctree.Tree.cost graph tree)
    (Mctree.Spt.depth tree ~root:station);
  List.iter
    (fun (viewer, delay) -> Format.printf "  viewer %2d: delay %.2f@." viewer delay)
    (Mctree.Spt.receivers_cost graph tree ~root:station);

  (* Viewers churn: two leave, three join. *)
  let leavers = [ List.nth viewers 0; List.nth viewers 1 ] in
  let joiners =
    List.filter
      (fun x -> x <> station && not (List.mem x viewers))
      (List.init n (fun i -> i))
    |> Sim.Rng.sample rng 3
  in
  List.iter (fun v -> Dgmc.Protocol.leave net ~switch:v mc) leavers;
  List.iter (fun v -> Dgmc.Protocol.join net ~switch:v mc Dgmc.Member.Receiver) joiners;
  Dgmc.Protocol.run net;
  assert (Dgmc.Protocol.converged net mc);
  let tree' = Option.get (Dgmc.Protocol.agreed_topology net mc) in
  Format.printf "@.after churn (-%d +%d viewers): cost %.2f, depth %d hops@."
    (List.length leavers) (List.length joiners)
    (Mctree.Tree.cost graph tree')
    (Mctree.Spt.depth tree' ~root:station);

  (* What the same audience costs on each topology style: the SPT
     minimizes per-viewer latency; a Steiner tree minimizes total
     bandwidth.  D-GMC supports both — that is the point of its
     generality. *)
  let members =
    Mctree.Tree.Int_set.elements (Mctree.Tree.terminals tree')
  in
  let shared = Mctree.Steiner.kmb graph members in
  let spt_delays =
    List.map snd (Mctree.Spt.receivers_cost graph tree' ~root:station)
  in
  let shared_delays =
    List.map snd (Mctree.Spt.receivers_cost graph shared ~root:station)
  in
  Format.printf "@.topology style comparison for the same audience:@.";
  Format.printf "  source-rooted: cost %6.2f   mean delay %5.2f   max delay %5.2f@."
    (Mctree.Tree.cost graph tree')
    (Metrics.Stats.mean spt_delays)
    (List.fold_left Float.max 0.0 spt_delays);
  Format.printf "  shared (kmb):  cost %6.2f   mean delay %5.2f   max delay %5.2f@."
    (Mctree.Tree.cost graph shared)
    (Metrics.Stats.mean shared_delays)
    (List.fold_left Float.max 0.0 shared_delays)
