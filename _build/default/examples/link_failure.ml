(* Fault tolerance (paper Figure 2 and §6): a link used by two MCs goes
   down while membership is changing.  Shows the event->LSA cascade —
   one non-MC LSA from each detecting endpoint plus one MC LSA per
   affected connection — and the protocol repairing both topologies.

     dune exec examples/link_failure.exe *)

let show net mc label =
  match Dgmc.Protocol.agreed_topology net mc with
  | Some tree ->
    Format.printf "  %s: %a@.    cost %.2f, valid %b@." label Mctree.Tree.pp tree
      (Mctree.Tree.cost (Dgmc.Protocol.graph net) tree)
      (Mctree.Tree.is_valid_mc_topology (Dgmc.Protocol.graph net) tree)
  | None -> Format.printf "  %s: no agreement@." label

let () =
  let seed = 13 in
  let n = 30 in
  let graph = Experiments.Harness.graph_for ~seed ~n in
  let net = Dgmc.Protocol.create ~graph ~config:Dgmc.Config.atm_lan () in
  let c1 = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 1 in
  let c2 = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 2 in
  let rng = Sim.Rng.create seed in

  (* Two established conferences. *)
  let members1 = Sim.Rng.sample rng 8 (List.init n (fun i -> i)) in
  let members2 = Sim.Rng.sample rng 8 (List.init n (fun i -> i)) in
  List.iter (fun s -> Dgmc.Protocol.join net ~switch:s c1 Dgmc.Member.Both) members1;
  List.iter (fun s -> Dgmc.Protocol.join net ~switch:s c2 Dgmc.Member.Both) members2;
  Dgmc.Protocol.run net;
  assert (Dgmc.Protocol.converged net c1 && Dgmc.Protocol.converged net c2);
  Format.printf "before the failure:@.";
  show net c1 "C1";
  show net c2 "C2";

  (* Find a link both trees use and that does not partition the network;
     fall back to any shared or C1 link. *)
  let t1 = Option.get (Dgmc.Protocol.agreed_topology net c1) in
  let t2 = Option.get (Dgmc.Protocol.agreed_topology net c2) in
  let keeps_connected (u, v) =
    let g = Net.Graph.copy graph in
    Net.Graph.set_link g u v ~up:false;
    Net.Bfs.is_connected g
  in
  let shared =
    List.filter (fun (u, v) -> Mctree.Tree.mem_edge t2 u v) (Mctree.Tree.edges t1)
  in
  let candidates = if shared = [] then Mctree.Tree.edges t1 else shared in
  let u, v =
    match List.find_opt keeps_connected candidates with
    | Some e -> e
    | None -> List.hd candidates
  in
  Dgmc.Protocol.reset_counters net;

  (* The Figure-2 scenario: a join to C1 and a leave from C2 land in the
     same instant the link dies. *)
  let joiner =
    List.find (fun x -> not (List.mem x members1)) (List.init n (fun i -> i))
  in
  let leaver = List.hd members2 in
  Format.printf
    "@.simultaneous events: link (%d,%d) down, switch %d joins C1, switch %d \
     leaves C2@.@."
    u v joiner leaver;
  Dgmc.Protocol.link_down net u v;
  Dgmc.Protocol.join net ~switch:joiner c1 Dgmc.Member.Both;
  Dgmc.Protocol.leave net ~switch:leaver c2;
  Dgmc.Protocol.run net;

  let totals = Dgmc.Protocol.totals net in
  Format.printf
    "signaling: %d events -> %d non-MC floodings, %d MC floodings, %d \
     computations@.@."
    totals.events totals.link_floodings totals.mc_floodings totals.computations;

  Format.printf "after repair:@.";
  show net c1 "C1";
  show net c2 "C2";
  assert (Dgmc.Protocol.converged net c1);
  assert (Dgmc.Protocol.converged net c2);

  (* The link comes back; unicast routing learns it, MC topologies are
     left as they are (they are still valid). *)
  Dgmc.Protocol.link_up net u v;
  Dgmc.Protocol.run net;
  assert (Dgmc.Protocol.converged net c1 && Dgmc.Protocol.converged net c2);
  Format.printf "@.link restored; both connections still consistent.@."
