(* Session chair election: a conference needs a distinguished member
   (floor control, mixing, sequencing).  Built on D-GMC's
   complete-knowledge model as in Huang & McKinley's companion work on
   group leader election: every switch derives the chair locally from
   the agreed member list and its link-state image, so no extra election
   rounds are needed — and when the network partitions, each side
   deterministically picks its own chair and re-merges after healing.

     dune exec examples/session_chair.exe *)

let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 11

let show_chair net label =
  match Election.Leader.agreed_leader net mc with
  | Some l -> Format.printf "%-28s chair = switch %d@." label l
  | None -> Format.printf "%-28s no network-wide agreement on a chair@." label

let () =
  (* Two campuses joined by one long link. *)
  let graph =
    Net.Graph.of_edges 8
      [
        (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (0, 3, 1.0);
        (4, 5, 1.0); (5, 6, 1.0); (6, 7, 1.0); (4, 7, 1.0);
        (3, 4, 8.0);
      ]
  in
  let net = Dgmc.Protocol.create ~graph ~config:Dgmc.Config.atm_lan () in
  let observer = Election.Leader.monitor net ~switch:6 mc in

  Format.printf "conference: participants 2, 5, 7 (campuses joined by link 3-4)@.@.";
  List.iter
    (fun s -> Dgmc.Protocol.join net ~switch:s mc Dgmc.Member.Both)
    [ 5; 7; 2 ];
  Dgmc.Protocol.run net;
  show_chair net "after everyone joined:";

  (* The chair hangs up. *)
  Dgmc.Protocol.leave net ~switch:2 mc;
  Dgmc.Protocol.run net;
  show_chair net "chair left:";

  (* A participant with a smaller id dials in. *)
  Dgmc.Protocol.join net ~switch:1 mc Dgmc.Member.Both;
  Dgmc.Protocol.run net;
  show_chair net "switch 1 joined:";

  (* The inter-campus link dies: each side keeps a working chair. *)
  Dgmc.Protocol.link_down net 3 4;
  Dgmc.Protocol.run net;
  show_chair net "inter-campus link down:";
  List.iter
    (fun s ->
      Format.printf "  switch %d sees chair %s@." s
        (match Election.Leader.leader_at net ~switch:s mc with
        | Some l -> string_of_int l
        | None -> "-"))
    [ 1; 5 ];

  (* The link heals; D-GMC resynchronises and the chairs merge. *)
  Dgmc.Protocol.link_up net 3 4;
  Dgmc.Protocol.run net;
  show_chair net "link restored:";

  Format.printf "@.what an application at switch 6 observed:@.";
  List.iter
    (fun tr -> Format.printf "  %a@." Election.Leader.pp_transition tr)
    (Election.Leader.transitions observer)
