(* A media session end to end: D-GMC agrees the tree (control plane),
   audio flows over it with real transmission/queueing/propagation
   timing (data plane), a link dies mid-call, the protocol repairs the
   topology, and the stream resumes on the new tree.

     dune exec examples/media_session.exe *)

let mc = Dgmc.Mc_id.make Dgmc.Mc_id.Symmetric 7

let pp_ms v = Printf.sprintf "%.2f ms" (v *. 1e3)

let () =
  let rng = Sim.Rng.create 17 in
  let graph = Net.Topo_gen.waxman rng ~n:24 ~target_degree:3.5 () in
  let net = Dgmc.Protocol.create ~graph ~config:Dgmc.Config.atm_lan () in

  (* Control plane: the conference forms. *)
  let speaker = 3 in
  let listeners = [ 8; 14; 21 ] in
  List.iter
    (fun s -> Dgmc.Protocol.join net ~switch:s mc Dgmc.Member.Both)
    (speaker :: listeners);
  Dgmc.Protocol.run net;
  assert (Dgmc.Protocol.converged net mc);
  let tree = Option.get (Dgmc.Protocol.agreed_topology net mc) in
  Format.printf "conference tree agreed: %d links, cost %.2f@.@."
    (Mctree.Tree.n_edges tree)
    (Mctree.Tree.cost graph tree);

  (* Data plane on the same engine and graph: 10 Mb/s links. *)
  let engine = Dgmc.Protocol.engine net in
  let fw =
    Dataplane.Forwarder.create ~engine ~graph ~bandwidth:10e6
      ~prop_of_weight:(fun w -> w *. 1e-4) ()
  in
  let stream label tree =
    (* One second of 50 pps / 1600-bit audio from the speaker. *)
    let sinks =
      List.map (fun l -> (l, Dataplane.Forwarder.Sink.create ())) listeners
    in
    Dataplane.Forwarder.reset_counters fw;
    Dataplane.Forwarder.cbr fw ~tree ~src:speaker ~rate_pps:50.0
      ~size_bits:1600.0 ~count:50 ~sinks;
    Sim.Engine.run engine;
    Format.printf "%s@." label;
    List.iter
      (fun (l, sink) ->
        Format.printf
          "  listener %2d: %2d/50 packets, mean gap %s, jitter %s@." l
          (Dataplane.Forwarder.Sink.received sink)
          (pp_ms (Dataplane.Forwarder.Sink.mean_gap sink))
          (pp_ms (Dataplane.Forwarder.Sink.jitter sink)))
      sinks;
    Format.printf "  link transmissions %d, drops %d@.@."
      (Dataplane.Forwarder.packets_sent fw)
      (Dataplane.Forwarder.packets_dropped fw)
  in

  stream "clean second of audio:" tree;

  (* A tree link dies mid-call; D-GMC repairs; the stream switches to
     the repaired topology. *)
  let u, v =
    match
      List.find_opt
        (fun (u, v) ->
          let g = Net.Graph.copy graph in
          Net.Graph.set_link g u v ~up:false;
          Net.Bfs.is_connected g)
        (Mctree.Tree.edges tree)
    with
    | Some e -> e
    | None -> List.hd (Mctree.Tree.edges tree)
  in
  Format.printf "link (%d, %d) fails...@." u v;
  Dgmc.Protocol.link_down net u v;
  Dgmc.Protocol.run net;
  assert (Dgmc.Protocol.converged net mc);
  let tree' = Option.get (Dgmc.Protocol.agreed_topology net mc) in
  Format.printf "repaired tree: %d links, cost %.2f (was %.2f)@.@."
    (Mctree.Tree.n_edges tree')
    (Mctree.Tree.cost graph tree')
    (Mctree.Tree.cost graph tree);

  stream "audio on the repaired tree:" tree';

  (* What would have happened without the repair: the old tree leaks
     every packet into the dead link. *)
  let sink = Dataplane.Forwarder.Sink.create () in
  Dataplane.Forwarder.reset_counters fw;
  Dataplane.Forwarder.cbr fw ~tree ~src:speaker ~rate_pps:50.0 ~size_bits:1600.0
    ~count:10
    ~sinks:[ (List.hd listeners, sink) ];
  Sim.Engine.run engine;
  Format.printf
    "(sanity: the pre-failure tree now drops %d of its transmissions)@."
    (Dataplane.Forwarder.packets_dropped fw)
