examples/qos_admission.ml: Dgmc Format List Mctree Net Qos Sim
