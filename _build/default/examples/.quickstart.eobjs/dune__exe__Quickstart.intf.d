examples/quickstart.mli:
