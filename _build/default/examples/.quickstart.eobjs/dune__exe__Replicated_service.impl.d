examples/replicated_service.ml: Baselines Dgmc Experiments Float Format Hashtbl List Mctree Metrics Option Sim String
