examples/link_failure.ml: Dgmc Experiments Format List Mctree Net Option Sim
