examples/video_broadcast.ml: Dgmc Experiments Float Format List Mctree Metrics Option Sim
