examples/hierarchical.ml: Array Dgmc Format Hierarchy List Mctree Net Option Sim String
