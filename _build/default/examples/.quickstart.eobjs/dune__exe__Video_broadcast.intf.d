examples/video_broadcast.mli:
